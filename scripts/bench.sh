#!/bin/sh
# bench.sh — run the benchmark suite with -benchmem and maintain BENCH.json.
#
#   scripts/bench.sh emit    run benchmarks, rewrite BENCH.json (new baseline)
#   scripts/bench.sh check   run benchmarks, fail if any benchmark regressed
#                            beyond the tolerance band vs the committed
#                            BENCH.json (±20% + small absolute slack)
#
# Environment:
#   BENCH_PATTERN  -bench regexp          (default: .)
#   BENCH_TIME     -benchtime             (default: 1s)
#   BENCH_COUNT    -count                 (default: 1; repeats are averaged)
#   ANDORSCHED_BENCH_TOL  tolerance for check (default: 0.20)
#
# See docs/BENCHMARKS.md.
set -eu
cd "$(dirname "$0")/.."

mode="${1:-emit}"
raw="$(mktemp /tmp/andorsched-bench.XXXXXX)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "${BENCH_PATTERN:-.}" -benchmem \
    -benchtime "${BENCH_TIME:-1s}" -count "${BENCH_COUNT:-1}" . | tee "$raw"

case "$mode" in
emit)
    go run ./cmd/benchregress -emit -in "$raw" -out BENCH.json
    ;;
check)
    ANDORSCHED_BENCH_NEW="$raw" go test ./internal/benchregress \
        -run TestGuardAgainstCommittedBaseline -count=1 -v
    ;;
*)
    echo "usage: scripts/bench.sh [emit|check]" >&2
    exit 2
    ;;
esac
