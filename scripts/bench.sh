#!/bin/sh
# bench.sh — run the benchmark suite with -benchmem and maintain BENCH.json.
#
#   scripts/bench.sh emit    run benchmarks, rewrite BENCH.json (new baseline)
#   scripts/bench.sh check   run benchmarks, fail if any benchmark regressed
#                            beyond the tolerance band vs the committed
#                            BENCH.json (±20% + small absolute slack)
#
# Environment:
#   BENCH_PATTERN  -bench regexp          (default: .)
#   BENCH_TIME     -benchtime             (default: 1s)
#   BENCH_COUNT    -count                 (default: 1; repeats are averaged)
#   BENCH_CPUS     -cpu sweep for the scaling stage (default: 1,2,4)
#   ANDORSCHED_BENCH_TOL  tolerance for check (default: 0.20)
#
# emit additionally runs the per-core scaling stage: the parallel warmed
# serve benchmark swept across GOMAXPROCS (BENCH_CPUS), recorded under
# "scaling" in BENCH.json. The table is a record of the measuring machine
# (honestly flat on a 1-CPU container), not a regression gate — the
# conditional multi-core gate is scripts/loadtest.sh's scaling stage.
#
# See docs/BENCHMARKS.md.
set -eu
cd "$(dirname "$0")/.."

mode="${1:-emit}"
raw="$(mktemp /tmp/andorsched-bench.XXXXXX)"
sweep="$(mktemp /tmp/andorsched-bench-sweep.XXXXXX)"
trap 'rm -f "$raw" "$sweep"' EXIT

go test -run '^$' -bench "${BENCH_PATTERN:-.}" -benchmem \
    -benchtime "${BENCH_TIME:-1s}" -count "${BENCH_COUNT:-1}" . | tee "$raw"

case "$mode" in
emit)
    go test -run '^$' -bench 'ServeRunWarmParallel' -benchmem \
        -benchtime "${BENCH_TIME:-1s}" -cpu "${BENCH_CPUS:-1,2,4}" . | tee "$sweep"
    go run ./cmd/benchregress -emit -in "$raw" -scaling "$sweep" -out BENCH.json
    ;;
check)
    ANDORSCHED_BENCH_NEW="$raw" go test ./internal/benchregress \
        -run TestGuardAgainstCommittedBaseline -count=1 -v
    ;;
*)
    echo "usage: scripts/bench.sh [emit|check]" >&2
    exit 2
    ;;
esac
