#!/bin/sh
# loadtest.sh — build andord + andorload, run a closed-loop load test
# against a real daemon, then drain it with SIGTERM and verify the drain
# completes cleanly. Exit status is non-zero if any request failed, any
# accepted stream was dropped, or the drain was unclean.
#
#   scripts/loadtest.sh [duration] [concurrency]
#
# Environment:
#   LOADTEST_ADDR     listen address        (default 127.0.0.1:18080)
#   LOADTEST_RUNS     runs per request      (default 4; >1 streams NDJSON)
#   LOADTEST_SCHEMES  scheme mix            (default: all eight)
set -eu
cd "$(dirname "$0")/.."

duration="${1:-10s}"
conc="${2:-8}"
addr="${LOADTEST_ADDR:-127.0.0.1:18080}"
runs="${LOADTEST_RUNS:-4}"
schemes="${LOADTEST_SCHEMES:-NPM,SPM,GSS,SS1,SS2,AS,CLV,ASP,ORA}"

bin="$(mktemp -d /tmp/andorsched-loadtest.XXXXXX)"
trap 'kill "$daemon" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/andord" ./cmd/andord
go build -o "$bin/andorload" ./cmd/andorload

"$bin/andord" -addr "$addr" &
daemon=$!

# Wait for the daemon to accept requests.
i=0
until "$bin/andorload" -base "http://$addr" -n 1 -c 1 >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "loadtest: andord did not come up on $addr" >&2
        exit 1
    fi
    sleep 0.1
done

"$bin/andorload" -base "http://$addr" -duration "$duration" -c "$conc" \
    -runs "$runs" -schemes "$schemes"

# Trace stage: a traced run must surface the slowest request's trace ID
# and fetch its per-phase breakdown from the daemon's flight recorder —
# end-to-end proof that traceparent propagation, X-Trace-Id answers and
# /debug/requests/{id} retrieval all work against a real daemon.
echo "loadtest: trace stage"
"$bin/andorload" -base "http://$addr" -n 200 -c 4 -runs "$runs" \
    -schemes "$schemes" -trace | tee "$bin/trace.out"
if ! grep -q '^slowest    trace ' "$bin/trace.out"; then
    echo "loadtest: traced run reported no slowest trace ID" >&2
    exit 1
fi
if ! grep -q '^slowest request ' "$bin/trace.out"; then
    echo "loadtest: slowest trace's phase breakdown was not retrieved" >&2
    exit 1
fi

# Batch smoke: the same mix through /v1/batch must also finish with zero
# failed/incomplete responses.
echo "loadtest: batch smoke"
"$bin/andorload" -base "http://$addr" -n 50 -c 4 -batch 16 -schemes "$schemes"

# Graceful drain: SIGTERM must complete in-flight work and exit 0.
kill -TERM "$daemon"
if ! wait "$daemon"; then
    echo "loadtest: andord drain was unclean" >&2
    exit 1
fi
echo "loadtest: ok (clean drain)"

# Per-core scaling stage: the shared-nothing serve path (per-worker plan
# and schedule-cache shards, warm hits executed from published snapshots
# on any worker — see docs/SERVER.md) must scale with cores. The same
# closed-loop mix runs against daemons pinned to GOMAXPROCS 1, 2 and 4;
# ok/s and ok/s-per-core are reported for each. Speedup thresholds
# (>=1.8x for 1->2 cores, >=3.0x for 1->4) are enforced only when the
# host actually has that many CPUs: a 1-CPU container still prints the
# table — honestly flat — without failing the build.
echo "loadtest: per-core scaling stage"
ncpu="$( (nproc || getconf _NPROCESSORS_ONLN) 2>/dev/null || echo 1 )"
scale_dur="${LOADTEST_SCALE_DURATION:-6s}"
rate1= rate2= rate4=
for procs in 1 2 4; do
    GOMAXPROCS="$procs" "$bin/andord" -addr "$addr" -trace-off &
    daemon=$!
    i=0
    until "$bin/andorload" -base "http://$addr" -n 1 -c 1 >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "loadtest: andord (GOMAXPROCS=$procs) did not come up on $addr" >&2
            exit 1
        fi
        sleep 0.1
    done
    # Warm every scheme's plan so the measured window is pure warm path.
    "$bin/andorload" -base "http://$addr" -n 32 -c 8 -runs "$runs" \
        -schemes "$schemes" >/dev/null
    "$bin/andorload" -base "http://$addr" -duration "$scale_dur" -c 16 \
        -runs "$runs" -schemes "$schemes" >"$bin/scale.$procs.out"
    rate="$(awk '/^requests/{gsub(/[()]/,""); print $(NF-1)}' "$bin/scale.$procs.out")"
    kill -TERM "$daemon"
    if ! wait "$daemon"; then
        echo "loadtest: andord (GOMAXPROCS=$procs) drain was unclean" >&2
        exit 1
    fi
    if [ -z "$rate" ]; then
        echo "loadtest: no throughput line for GOMAXPROCS=$procs" >&2
        exit 1
    fi
    percore="$(awk -v r="$rate" -v p="$procs" 'BEGIN{printf "%.1f", r/p}')"
    echo "loadtest: GOMAXPROCS=$procs  $rate ok/s  ($percore ok/s/core)"
    eval "rate$procs=\$rate"
done
check_speedup() { # base-rate rate threshold label
    if ! awk -v a="$1" -v b="$2" -v t="$3" 'BEGIN{exit !(b >= t*a)}'; then
        echo "loadtest: scaling $4: $2 ok/s is below ${3}x of $1 ok/s" >&2
        exit 1
    fi
}
if [ "$ncpu" -ge 2 ]; then
    check_speedup "$rate1" "$rate2" 1.8 "1->2 cores"
fi
if [ "$ncpu" -ge 4 ]; then
    check_speedup "$rate1" "$rate4" 3.0 "1->4 cores"
fi
if [ "$ncpu" -lt 2 ]; then
    echo "loadtest: host has $ncpu CPU(s); speedup thresholds not enforced"
fi
echo "loadtest: ok (per-core scaling)"

# Chunked-run stage: a single large /v1/run must get faster when the
# server splits it across workers (chunks:0 = auto) than when forced
# serial (chunks:1). One closed-loop worker (-c 1) issues runs=1000
# requests back to back, so ok/s is exactly 1/latency and the serial vs
# chunked ok/s ratio IS the per-request latency speedup. The daemon runs
# with the host's full GOMAXPROCS; thresholds (>=1.8x with 2 CPUs,
# >=3.0x with 4) are enforced only when the host has the cores — byte
# identity of the two responses is the differential test's job
# (TestChunkedRunDifferential); this stage gates the speedup.
echo "loadtest: chunked run stage"
chunk_n="${LOADTEST_CHUNK_REQUESTS:-100}"
"$bin/andord" -addr "$addr" -trace-off &
daemon=$!
i=0
until "$bin/andorload" -base "http://$addr" -n 1 -c 1 >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "loadtest: andord (chunked stage) did not come up on $addr" >&2
        exit 1
    fi
    sleep 0.1
done
# Warm the plan so both measured passes are pure warm-path simulation.
"$bin/andorload" -base "http://$addr" -n 4 -c 1 -runs 1000 -schemes GSS >/dev/null
rate_serial= rate_chunked=
for mode in 1 0; do
    "$bin/andorload" -base "http://$addr" -n "$chunk_n" -c 1 -runs 1000 \
        -schemes GSS -chunks "$mode" >"$bin/chunk.$mode.out"
    rate="$(awk '/^requests/{gsub(/[()]/,""); print $(NF-1)}' "$bin/chunk.$mode.out")"
    if [ -z "$rate" ]; then
        echo "loadtest: no throughput line for chunks=$mode" >&2
        exit 1
    fi
    if [ "$mode" -eq 1 ]; then
        rate_serial="$rate"
        echo "loadtest: chunks=1 (serial)   $rate req/s"
    else
        rate_chunked="$rate"
        echo "loadtest: chunks=0 (chunked)  $rate req/s"
    fi
done
kill -TERM "$daemon"
if ! wait "$daemon"; then
    echo "loadtest: andord (chunked stage) drain was unclean" >&2
    exit 1
fi
if [ "$ncpu" -ge 4 ]; then
    check_speedup "$rate_serial" "$rate_chunked" 3.0 "chunked run, 4 cores"
elif [ "$ncpu" -ge 2 ]; then
    check_speedup "$rate_serial" "$rate_chunked" 1.8 "chunked run, 2 cores"
else
    echo "loadtest: host has $ncpu CPU(s); chunked speedup not enforced"
fi
echo "loadtest: ok (chunked run)"

# Rate-limited two-tenant smoke: restart the daemon with per-tenant
# admission on, drive a compliant tenant inside its quota and a noisy one
# far beyond it, concurrently. The compliant tenant must see zero
# rejections; the noisy one may be rejected (clean 429s) but must never
# see a failed or half-delivered response — andorload's exit status
# enforces that.
echo "loadtest: two-tenant rate-limit smoke"
"$bin/andord" -addr "$addr" -tenant-rate 100 -tenant-run-rate 2000 &
daemon=$!
i=0
until "$bin/andorload" -base "http://$addr" -n 1 -c 1 -api-key probe >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "loadtest: rate-limited andord did not come up on $addr" >&2
        exit 1
    fi
    sleep 0.1
done

"$bin/andorload" -base "http://$addr" -duration 5s -c 8 -api-key noisy \
    -schemes "$schemes" >"$bin/noisy.out" 2>&1 &
noisy=$!
"$bin/andorload" -base "http://$addr" -n 100 -c 2 -rps 50 -api-key polite \
    -schemes "$schemes" | tee "$bin/polite.out"
if ! wait "$noisy"; then
    echo "loadtest: noisy tenant saw non-429 failures" >&2
    cat "$bin/noisy.out" >&2
    exit 1
fi
polite_rej="$(awk '/^rejected/{print $2}' "$bin/polite.out")"
noisy_rej="$(awk '/^rejected/{print $2}' "$bin/noisy.out")"
if [ "${polite_rej:-1}" -ne 0 ]; then
    echo "loadtest: compliant tenant was rejected under contention ($polite_rej)" >&2
    exit 1
fi
if [ "${noisy_rej:-0}" -eq 0 ]; then
    echo "loadtest: noisy tenant was never rate-limited" >&2
    cat "$bin/noisy.out" >&2
    exit 1
fi

kill -TERM "$daemon"
if ! wait "$daemon"; then
    echo "loadtest: rate-limited andord drain was unclean" >&2
    exit 1
fi
echo "loadtest: ok (tenant smoke + clean drain)"
