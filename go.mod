module andorsched

go 1.22
