// Package andorsched's root benchmark harness regenerates every table and
// figure of the paper's evaluation (§5) as testing.B benchmarks:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark runs the corresponding experiment (reduced to
// benchRuns simulated executions per point; set ANDORSCHED_BENCH_RUNS=1000
// for the paper's fidelity), logs the regenerated data table, and reports
// the mid-sweep normalized energy of the headline schemes as custom
// metrics. Micro-benchmarks cover the engine, the off-line phase and a
// single on-line run. EXPERIMENTS.md records paper-vs-measured shapes.
package andorsched

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/core/schedcache"
	"andorsched/internal/exectime"
	"andorsched/internal/experiments"
	"andorsched/internal/obs"
	"andorsched/internal/power"
	"andorsched/internal/serve"
	"andorsched/internal/sim"
	"andorsched/internal/workload"
)

// benchRuns is the number of simulated executions per data point in the
// figure benchmarks (the paper averages 1000; the default here keeps
// `go test -bench=.` quick). Override with ANDORSCHED_BENCH_RUNS.
func benchRuns() int {
	if s := os.Getenv("ANDORSCHED_BENCH_RUNS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 60
}

// benchExperiment regenerates one experiment per iteration and logs the
// resulting table once.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	runs := benchRuns()
	var se *experiments.Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se, err = e.Run(runs, 2002)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("%s (%d runs/point)\n%s", e.Title, runs, se.Table())
	mid := se.Points[len(se.Points)/2]
	for _, s := range se.Schemes {
		b.ReportMetric(mid.NormEnergy[s], s.String()+"@mid")
	}
}

// ---- Tables 1 and 2: the platform voltage/speed settings ----

func BenchmarkTable1Transmeta(b *testing.B) {
	var p *power.Platform
	for i := 0; i < b.N; i++ {
		p = power.Transmeta5400()
	}
	b.Logf("\n%s", experiments.PlatformTable(p))
	b.ReportMetric(float64(p.NumLevels()), "levels")
}

func BenchmarkTable2XScale(b *testing.B) {
	var p *power.Platform
	for i := 0; i < b.N; i++ {
		p = power.IntelXScale()
	}
	b.Logf("\n%s", experiments.PlatformTable(p))
	b.ReportMetric(float64(p.NumLevels()), "levels")
}

// ---- Figures 4–6: the paper's energy results ----

// Figure 4: normalized energy vs load, ATR on dual-processor systems.
func BenchmarkFigure4aEnergyVsLoadATR2Transmeta(b *testing.B) { benchExperiment(b, "4a") }
func BenchmarkFigure4bEnergyVsLoadATR2XScale(b *testing.B)    { benchExperiment(b, "4b") }

// Figure 5: the same on 6-processor systems.
func BenchmarkFigure5aEnergyVsLoadATR6Transmeta(b *testing.B) { benchExperiment(b, "5a") }
func BenchmarkFigure5bEnergyVsLoadATR6XScale(b *testing.B)    { benchExperiment(b, "5b") }

// The 4-processor configuration the text reports without a figure.
func BenchmarkFigureText4ProcATRTransmeta(b *testing.B) { benchExperiment(b, "4p4") }

// Figure 6: normalized energy vs α, synthetic application, 2 processors.
func BenchmarkFigure6aEnergyVsAlphaSynthetic2Transmeta(b *testing.B) { benchExperiment(b, "6a") }
func BenchmarkFigure6bEnergyVsAlphaSynthetic2XScale(b *testing.B)    { benchExperiment(b, "6b") }

// ---- Ablations: the paper's stated future work (§6) ----

func BenchmarkAblationFminRatio(b *testing.B)   { benchExperiment(b, "fmin") }
func BenchmarkAblationSpeedLevels(b *testing.B) { benchExperiment(b, "levels") }
func BenchmarkAblationOverhead(b *testing.B)    { benchExperiment(b, "overhead") }
func BenchmarkAblationProcessors(b *testing.B)  { benchExperiment(b, "procs") }

// BenchmarkAblationClairvoyantBound compares every scheme (including the
// per-PMP speculation extension) against the clairvoyant single-speed
// oracle over load.
func BenchmarkAblationClairvoyantBound(b *testing.B) { benchExperiment(b, "clv") }

// BenchmarkAblationStructure sweeps the OR-fork density of random
// applications: how much path slack the AND/OR extension unlocks.
func BenchmarkAblationStructure(b *testing.B) { benchExperiment(b, "structure") }

// BenchmarkAblationVoltageSlew sweeps the voltage-slew transition cost
// (the Burd & Brodersen model the paper cites as [3]).
func BenchmarkAblationVoltageSlew(b *testing.B) { benchExperiment(b, "slew") }

// BenchmarkSpeedChangeCounts reports the quantity the speculative schemes
// are designed to reduce: mean voltage/speed changes per run (§1, §4).
func BenchmarkSpeedChangeCounts(b *testing.B) {
	e, err := experiments.ByID("4a")
	if err != nil {
		b.Fatal(err)
	}
	runs := benchRuns()
	var se *experiments.Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se, err = e.Run(runs, 2002)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("\n%s", se.ChangesTable())
	mid := se.Points[len(se.Points)/2]
	for _, s := range se.Schemes {
		b.ReportMetric(mid.SpeedChanges[s], s.String()+"-changes@mid")
	}
}

// ---- Micro-benchmarks: the machinery itself ----

// BenchmarkOfflinePlanATR measures the off-line phase (canonical
// schedules, aggregation, shifting) for the ATR application.
func BenchmarkOfflinePlanATR(b *testing.B) {
	g := workload.ATR(workload.DefaultATRConfig())
	plat := power.Transmeta5400()
	ov := power.DefaultOverheads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPlan(g, 2, plat, ov); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewPlanCold measures a first-ever compile: every memo layer
// misses. The graph is cloned per iteration because validation and section
// decomposition are memoized on the Graph itself — reusing one graph
// object would leak warm-path work into the cold baseline. This is the
// pre-memoization cost and the denominator of the cold/warm speedup the
// compile cache claims.
func BenchmarkNewPlanCold(b *testing.B) {
	g := workload.ATR(workload.DefaultATRConfig())
	plat := power.Transmeta5400()
	ov := power.DefaultOverheads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPlanWithCache(g.Clone(), 2, plat, ov, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewPlanWarm measures the off-line phase with every memo layer
// warm — the steady state of experiment grids, sizing probes and serve
// plan-cache misses on recurring structures. Validation and decomposition
// are answered by the graph memo, every canonical simulation by the
// section-schedule cache; what remains is plan assembly.
func BenchmarkNewPlanWarm(b *testing.B) {
	g := workload.ATR(workload.DefaultATRConfig())
	plat := power.Transmeta5400()
	ov := power.DefaultOverheads()
	cache := schedcache.New(core.DefaultScheduleCacheCapacity)
	if _, err := core.NewPlanWithCache(g, 2, plat, ov, cache); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPlanWithCache(g, 2, plat, ov, cache); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSizeProcessors measures the processor-sizing search (compile at
// m = 1, 2, … until feasible), which recompiles the full plan per
// candidate m. The per-(section, m) schedules are distinct cache keys, so
// the first search populates the cache and repeated searches — the pattern
// of capacity planning sweeps — run entirely warm.
func BenchmarkSizeProcessors(b *testing.B) {
	g := workload.ATR(workload.DefaultATRConfig())
	plat := power.Transmeta5400()
	ov := power.DefaultOverheads()
	probe, err := core.NewPlanWithCache(g, 1, plat, ov, nil)
	if err != nil {
		b.Fatal(err)
	}
	deadline := probe.CTWorst * 0.6 // forces the search past m=1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.MinFeasibleProcs(g, plat, ov, deadline, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunGSSSynthetic measures one on-line execution (all sections,
// barrier handling, energy accounting) of the Figure 3 application.
func BenchmarkRunGSSSynthetic(b *testing.B) {
	plan, err := core.NewPlan(workload.Synthetic(), 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		b.Fatal(err)
	}
	d := plan.CTWorst / 0.5
	src := exectime.NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(core.RunConfig{
			Scheme: core.GSS, Deadline: d,
			Sampler: exectime.NewSampler(src.Fork()),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunGSSSyntheticArena is BenchmarkRunGSSSynthetic through a
// warmed per-caller arena with a reseeded source: the steady-state
// deployment of the experiments harness. allocs/op must stay at 0.
func BenchmarkRunGSSSyntheticArena(b *testing.B) {
	plan, err := core.NewPlan(workload.Synthetic(), 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		b.Fatal(err)
	}
	d := plan.CTWorst / 0.5
	src := exectime.NewSource(1)
	sampler := exectime.NewSampler(src)
	arena := core.NewArena()
	var res core.RunResult
	cfg := core.RunConfig{Scheme: core.GSS, Deadline: d, Sampler: sampler}
	if err := plan.RunInto(cfg, arena, &res); err != nil { // warm-up
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reseed(uint64(i))
		if err := plan.RunInto(cfg, arena, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunORA is BenchmarkRunGSSSyntheticArena under the online
// reclamation scheme: the estimator update after every section is the
// only extra work over AS, so ORA must stay within a few percent of the
// other dynamic schemes and keep allocs/op at 0 (the estimator lives in
// the arena, not the heap).
func BenchmarkRunORA(b *testing.B) {
	plan, err := core.NewPlan(workload.Synthetic(), 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		b.Fatal(err)
	}
	d := plan.CTWorst / 0.5
	src := exectime.NewSource(1)
	sampler := exectime.NewSampler(src)
	arena := core.NewArena()
	var res core.RunResult
	cfg := core.RunConfig{Scheme: core.ORA, Deadline: d, Sampler: sampler}
	if err := plan.RunInto(cfg, arena, &res); err != nil { // warm-up
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reseed(uint64(i))
		if err := plan.RunInto(cfg, arena, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHeteroPlacement regenerates the schemes × placement-
// policies grid on the big.LITTLE reference platform (the heterogeneous
// subsystem's headline ablation).
func BenchmarkAblationHeteroPlacement(b *testing.B) { benchExperiment(b, "hetero-biglittle") }

// BenchmarkOfflineHeteroPlanATR measures the heterogeneous off-line phase
// — per-class canonical schedules under a placement policy, class
// recording, per-class feasibility — for the ATR application on
// big.LITTLE. Hetero plans go through the process-wide section-schedule
// cache like homogeneous ones (keyed by platform mix, placement and
// `@class` tags), so after the first iteration this is the warm-compile
// cost.
func BenchmarkOfflineHeteroPlanATR(b *testing.B) {
	g := workload.ATR(workload.DefaultATRConfig())
	hp := power.BigLittle()
	ov := power.DefaultOverheads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewHeteroPlan(g, hp, ov, sim.EnergyGreedy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunHeteroAS is the steady-state heterogeneous on-line run
// (class-pinned dispatch, per-class level tables, per-processor energy
// accounting) through a warmed arena. allocs/op must stay at 0: the
// per-class policy state lives in the arena.
func BenchmarkRunHeteroAS(b *testing.B) {
	plan, err := core.NewHeteroPlan(workload.ATR(workload.DefaultATRConfig()),
		power.BigLittle(), power.DefaultOverheads(), sim.EnergyGreedy)
	if err != nil {
		b.Fatal(err)
	}
	d := plan.CTWorst / 0.5
	src := exectime.NewSource(1)
	sampler := exectime.NewSampler(src)
	arena := core.NewArena()
	var res core.RunResult
	cfg := core.RunConfig{Scheme: core.AS, Deadline: d, Sampler: sampler}
	if err := plan.RunInto(cfg, arena, &res); err != nil { // warm-up
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reseed(uint64(i))
		if err := plan.RunInto(cfg, arena, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScaling measures the event-driven engine across section
// sizes and processor counts (layered sections, 4-wide layers).
func BenchmarkEngineScaling(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, m := range []int{2, 8} {
			b.Run(fmt.Sprintf("tasks=%d/procs=%d", n, m), func(b *testing.B) {
				plat := power.Transmeta5400()
				tasks := make([]*sim.Task, n)
				for i := range tasks {
					t := &sim.Task{Name: "t", WorkW: 5e6, WorkA: 4e6, Order: i, LFT: 10}
					if i >= 4 {
						t.Preds = []int{i - 4}
						tasks[i-4].Succs = append(tasks[i-4].Succs, i)
					}
					tasks[i] = t
				}
				cfg := sim.Config{Platform: plat, Mode: sim.ByOrder, Procs: m}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sim.Run(cfg, tasks); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
			})
		}
	}
}

// BenchmarkOfflinePlanRandomLarge measures the off-line phase on a larger
// randomly generated application.
func BenchmarkOfflinePlanRandomLarge(b *testing.B) {
	opts := andor.DefaultRandomOpts()
	opts.MaxStages = 6
	opts.MaxWidth = 6
	g := workload.Random(17, opts)
	plat := power.Transmeta5400()
	ov := power.DefaultOverheads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPlan(g, 4, plat, ov); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.Len()), "nodes")
}

// BenchmarkStreamATR measures sustained frame-stream throughput (frames
// simulated per second of wall clock) under adaptive speculation.
func BenchmarkStreamATR(b *testing.B) {
	plan, err := core.NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		b.Fatal(err)
	}
	const frames = 200
	src := exectime.NewSource(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := plan.RunStream(core.StreamConfig{
			Scheme: core.AS, Period: plan.CTWorst / 0.6, Frames: frames,
			Sampler: exectime.NewSampler(src.Fork()), CarryLevels: true,
		})
		if err != nil || res.DeadlineMisses != 0 {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(frames)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkEngineSection measures the raw event-driven engine on a
// 64-task AND-parallel section across 4 processors.
func BenchmarkEngineSection(b *testing.B) {
	plat := power.Transmeta5400()
	const n = 64
	tasks := make([]*sim.Task, n)
	for i := range tasks {
		t := &sim.Task{Name: "t", WorkW: 5e6, WorkA: 4e6, Order: i}
		if i >= 4 {
			t.Preds = []int{i - 4}
			tasks[i-4].Succs = append(tasks[i-4].Succs, i)
		}
		t.LFT = 1 // ample
		tasks[i] = t
	}
	cfg := sim.Config{Platform: plat, Mode: sim.ByOrder, Procs: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, tasks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "tasks/run")
}

// BenchmarkEngineSectionArena is BenchmarkEngineSection through a warmed
// sim.Arena — the raw engine's zero-allocation steady state.
func BenchmarkEngineSectionArena(b *testing.B) {
	plat := power.Transmeta5400()
	const n = 64
	tasks := make([]*sim.Task, n)
	for i := range tasks {
		t := &sim.Task{Name: "t", WorkW: 5e6, WorkA: 4e6, Order: i, LFT: 1}
		if i >= 4 {
			t.Preds = []int{i - 4}
			tasks[i-4].Succs = append(tasks[i-4].Succs, i)
		}
		tasks[i] = t
	}
	cfg := sim.Config{Platform: plat, Mode: sim.ByOrder, Procs: 4}
	arena := sim.NewArena()
	if _, err := arena.Run(cfg, tasks); err != nil { // warm-up
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arena.Run(cfg, tasks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "tasks/run")
}

// BenchmarkEngineTracerOverhead compares the engine with observability
// disabled (the nil-tracer default), with a recording collector, and with a
// live metrics registry, on the same workload as BenchmarkEngineSection.
// The disabled case pays only one nil comparison per hook point, so "off"
// must stay within 2% of BenchmarkEngineSection. Measured on the CI
// container (linux/amd64, Xeon 2.10GHz, -benchtime 2s, median of 8):
//
//	EngineSection  ~5.9µs/op  19 allocs/op   (baseline, no hooks exercised)
//	off            ~6.0µs/op  19 allocs/op   (within run-to-run noise: in
//	                                          alternating isolated runs "off"
//	                                          beats the baseline as often as
//	                                          it trails it)
//	collector      ~10.2µs/op               (records 128 events per run)
//	metrics        ~13µs/op                 (atomic counters + histograms)
//
// Re-run with `go test -bench='EngineSection$|TracerOverhead' -count=10`
// when touching the dispatch loop.
func BenchmarkEngineTracerOverhead(b *testing.B) {
	plat := power.Transmeta5400()
	const n = 64
	tasks := make([]*sim.Task, n)
	for i := range tasks {
		t := &sim.Task{Name: "t", WorkW: 5e6, WorkA: 4e6, Order: i, LFT: 1}
		if i >= 4 {
			t.Preds = []int{i - 4}
			tasks[i-4].Succs = append(tasks[i-4].Succs, i)
		}
		tasks[i] = t
	}
	base := sim.Config{Platform: plat, Mode: sim.ByOrder, Procs: 4}

	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(base, tasks); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("collector", func(b *testing.B) {
		b.ReportAllocs()
		col := obs.NewCollector()
		cfg := base
		cfg.Tracer = col
		for i := 0; i < b.N; i++ {
			col.Reset()
			if _, err := sim.Run(cfg, tasks); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(col.Len()), "events/run")
	})
	b.Run("metrics", func(b *testing.B) {
		b.ReportAllocs()
		cfg := base
		cfg.Metrics = obs.NewMetrics()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg, tasks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeRun measures one warmed POST /v1/run request through the
// full service stack — middleware, plan cache hit, worker-pool dispatch,
// arena-backed simulation, JSON response — the steady-state request the
// andord daemon serves. Allocations are the per-request HTTP/encoding
// cost only; the simulation itself is allocation-free (see
// serve.TestWorkerRunZeroAlloc).
func BenchmarkServeRun(b *testing.B) {
	s := serve.New(serve.Config{Workers: 1, QueueSize: 8})
	defer s.Close()
	body := `{"workload":"atr","scheme":"GSS","seed":1,"load":0.5}`
	do := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w.Code
	}
	if code := do(); code != http.StatusOK { // compile the plan, warm the worker
		b.Fatalf("status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// benchRecorder is a minimal reusable ResponseWriter: unlike
// httptest.NewRecorder-per-iteration (see BenchmarkServeRun), its header
// map and body buffer survive across requests, so allocs/op counts the
// server's own per-request cost only.
type benchRecorder struct {
	hdr    http.Header
	body   strings.Builder
	status int
}

func (r *benchRecorder) Header() http.Header { return r.hdr }
func (r *benchRecorder) WriteHeader(c int)   { r.status = c }
func (r *benchRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(p)
}

// BenchmarkServeBatch measures POST /v1/batch carrying batchItems
// single-run items through the warmed service stack, reporting the
// amortized per-item cost (ns/item). One request pays one admission, one
// JSON decode and one response for the whole batch, and items execute in
// per-worker chunks across the pool, so ns/item must sit well below a
// warmed sequential /v1/run request (BenchmarkServeRunWarm); the target
// is 5×. Measured on the CI container (linux/amd64, Xeon 2.10GHz, ONE
// CPU, -benchtime 2s):
//
//	ServeRunWarm  ~12.6µs/request = ~10.2µs service overhead + ~2.4µs
//	              simulation (the raw arena run of the atr/GSS item)
//	ServeBatch    ~4.7µs/item     = ~2.3µs amortized overhead + the same
//	              ~2.4µs simulation
//
// Batching cuts the per-item service overhead ~4.5× (10.2µs → 2.3µs,
// dominated by encoding/json decode+encode of the item lines; admission,
// routing and pool dispatch amortize to noise). The wall-clock ratio on
// this 1-CPU box is 2.7× because the irreducible simulation term — which
// batching cannot amortize — is serialized; with the pool's default
// GOMAXPROCS workers on m ≥ 4 real cores that term divides by m and the
// end-to-end ratio clears 5×.
func BenchmarkServeBatch(b *testing.B) {
	const batchItems = 100
	s := serve.New(serve.Config{Workers: 0, QueueSize: 2 * batchItems})
	defer s.Close()
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i < batchItems; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"workload":"atr","scheme":"GSS","seed":%d,"load":0.5}`, i)
	}
	sb.WriteString(`]}`)
	body := sb.String()
	rd := strings.NewReader(body)
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", rd)
	w := &benchRecorder{hdr: make(http.Header, 4)}
	do := func() int {
		rd.Reset(body)
		w.body.Reset()
		w.status = 0
		s.Handler().ServeHTTP(w, req)
		return w.status
	}
	if code := do(); code != http.StatusOK { // compile the plan, warm the workers
		b.Fatalf("status %d: %s", code, w.body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
	b.StopTimer()
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/batchItems*1e9, "ns/item")
}

// BenchmarkServeRunWarm is BenchmarkServeRun with the test harness hoisted
// out of the measured path: one request object with a rewound body and a
// reusable recorder. With the pooled response encoder the warmed request is
// bounded by request plumbing (timeout context, body limiter, JSON decode)
// rather than response encoding; serve.TestRunRequestWarmAllocs asserts the
// bound.
//
// The NoTrace variant measures the same request with request tracing
// disabled; the pair bounds the tracing overhead (budget: tracing on stays
// within +5% latency and +8 allocs of off — the alloc half is asserted
// deterministically by serve.TestRunRequestWarmAllocs).
func BenchmarkServeRunWarm(b *testing.B) {
	benchServeRunWarm(b, serve.Config{Workers: 1, QueueSize: 8})
}

func BenchmarkServeRunWarmNoTrace(b *testing.B) {
	benchServeRunWarm(b, serve.Config{
		Workers: 1, QueueSize: 8, Trace: serve.TraceConfig{Disabled: true}})
}

func benchServeRunWarm(b *testing.B, cfg serve.Config) {
	s := serve.New(cfg)
	defer s.Close()
	const body = `{"workload":"atr","scheme":"GSS","seed":1,"load":0.5}`
	rd := strings.NewReader(body)
	req := httptest.NewRequest(http.MethodPost, "/v1/run", rd)
	w := &benchRecorder{hdr: make(http.Header, 4)}
	do := func() int {
		rd.Reset(body)
		w.body.Reset()
		w.status = 0
		s.Handler().ServeHTTP(w, req)
		return w.status
	}
	if code := do(); code != http.StatusOK { // compile the plan, warm the worker
		b.Fatalf("status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkServeRunWarmParallel drives warmed /v1/run requests from
// GOMAXPROCS closed-loop clients against the shared-nothing serve path
// with one pool worker per CPU. A warm key is resolved from the owning
// shard's published snapshot (a lock-free read on the handler goroutine)
// and executed on whichever worker picks it up, so with -cpu 1,2,4 the
// ns/op column is the per-core scaling table that scripts/bench.sh records
// under "scaling" in BENCH.json (and scripts/loadtest.sh gates end to end
// on multi-core hosts). Tracing is off: the flight recorder's ring is the
// one intentionally shared structure on the request path.
// BenchmarkServeRunChunked measures one warmed 1000-run /v1/run request
// end to end, serial (chunks:1) versus chunked across the pool (chunks
// auto-selected, one per worker with GOMAXPROCS workers). The two variants
// return byte-identical NDJSON bodies (TestChunkedRunDifferential), so the
// serial/chunked ns/op ratio is the request-latency speedup intra-request
// parallelism buys: ~1× on a single-core host (chunking degenerates to
// one chunk), approaching the core count on real multi-core machines —
// scripts/loadtest.sh's chunked stage gates ≥1.8× at 2 cores and ≥3× at 4.
func BenchmarkServeRunChunked(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	for _, variant := range []struct {
		name   string
		chunks int
	}{{"serial", 1}, {"chunked", 0}} {
		b.Run(variant.name, func(b *testing.B) {
			s := serve.New(serve.Config{
				Workers:   procs,
				QueueSize: 4 * procs,
				Trace:     serve.TraceConfig{Disabled: true},
			})
			defer s.Close()
			body := fmt.Sprintf(
				`{"workload":"atr","scheme":"GSS","seed":1,"load":0.5,"runs":1000,"chunks":%d}`,
				variant.chunks)
			rd := strings.NewReader(body)
			req := httptest.NewRequest(http.MethodPost, "/v1/run", rd)
			w := &benchRecorder{hdr: make(http.Header, 4)}
			do := func() int {
				rd.Reset(body)
				w.body.Reset()
				w.status = 0
				s.Handler().ServeHTTP(w, req)
				return w.status
			}
			if code := do(); code != http.StatusOK {
				b.Fatalf("status %d: %s", code, w.body.String())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if code := do(); code != http.StatusOK {
					b.Fatalf("status %d", code)
				}
			}
		})
	}
}

func BenchmarkServeRunWarmParallel(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	s := serve.New(serve.Config{
		QueueSize: 4 * procs,
		Trace:     serve.TraceConfig{Disabled: true},
	})
	defer s.Close()
	const body = `{"workload":"atr","scheme":"GSS","seed":1,"load":0.5}`
	{
		rd := strings.NewReader(body)
		req := httptest.NewRequest(http.MethodPost, "/v1/run", rd)
		w := &benchRecorder{hdr: make(http.Header, 4)}
		s.Handler().ServeHTTP(w, req) // compile the plan, publish the snapshot
		if w.status != http.StatusOK {
			b.Fatalf("warmup status %d: %s", w.status, w.body.String())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rd := strings.NewReader(body)
		req := httptest.NewRequest(http.MethodPost, "/v1/run", rd)
		w := &benchRecorder{hdr: make(http.Header, 4)}
		for pb.Next() {
			rd.Reset(body)
			w.body.Reset()
			w.status = 0
			s.Handler().ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Errorf("status %d", w.status)
				return
			}
		}
	})
}
