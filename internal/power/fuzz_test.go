package power

import (
	"math"
	"testing"
)

// FuzzPlatformSpec drives arbitrary bytes through ParseHeteroSpec — the
// decode path behind the -platform spec files and the /v1 hetero field —
// and checks the invariants every accepted platform must satisfy: bounded
// size, positive per-class speeds and effective rates, a consistent
// class-major processor numbering, and a stable content key. The corpus
// seeds the reference names, a spelled-out two-class spec, and the
// validation corner cases (zero speed, empty classes, trailing data).
func FuzzPlatformSpec(f *testing.F) {
	for _, seed := range []string{
		`"symmetric"`, `"biglittle"`, `"accel"`,
		`{"name":"lab","classes":[
			{"name":"fast","count":1,"platform":"transmeta"},
			{"name":"slow","count":2,"speed":0.5,"platform":"xscale"}]}`,
		`{"classes":[{"count":1,"levels":[{"mhz":100,"volt":0.7},{"mhz":200,"volt":0.9}]}]}`,
		`{"classes":[{"count":1,"platform":"transmeta","speed":0}]}`,
		`{"classes":[]}`,
		`{"classes":[{"count":1,"platform":"transmeta"}]} garbage`,
		`{`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHeteroSpec(data)
		if err != nil {
			if h != nil {
				t.Fatal("non-nil platform alongside an error")
			}
			return
		}
		if h.NumClasses() < 1 || h.NumClasses() > maxSpecClasses {
			t.Fatalf("accepted %d classes", h.NumClasses())
		}
		if h.NumProcs() < 1 || h.NumProcs() > maxSpecProcs {
			t.Fatalf("accepted %d processors", h.NumProcs())
		}
		for c := 0; c < h.NumClasses(); c++ {
			cl := h.Class(c)
			if !(cl.Speed > 0) || math.IsInf(cl.Speed, 0) {
				t.Fatalf("class %d accepted with speed %g", c, cl.Speed)
			}
			if cl.Count < 1 || cl.Plat.NumLevels() < 1 || cl.Plat.NumLevels() > maxSpecLevels {
				t.Fatalf("class %d accepted with count %d, %d levels", c, cl.Count, cl.Plat.NumLevels())
			}
			if !(cl.EffFmax() > 0) || !(cl.EnergyPerCycle() > 0) {
				t.Fatalf("class %d: EffFmax %g, EnergyPerCycle %g", c, cl.EffFmax(), cl.EnergyPerCycle())
			}
		}
		seen := 0
		for p := 0; p < h.NumProcs(); p++ {
			ci := h.ClassOf(p)
			if ci < 0 || ci >= h.NumClasses() {
				t.Fatalf("proc %d maps to class %d of %d", p, ci, h.NumClasses())
			}
			if ci > seen {
				if ci != seen+1 {
					t.Fatalf("proc numbering not class-major at proc %d", p)
				}
				seen = ci
			}
		}
		if h.RefFmax() <= 0 || h.RefClass() < 0 || h.RefClass() >= h.NumClasses() {
			t.Fatalf("reference class %d, RefFmax %g", h.RefClass(), h.RefFmax())
		}
		if k := h.Key(); k == "" || k != h.Key() {
			t.Fatal("content key empty or unstable")
		}
	})
}
