package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTransmeta5400Table(t *testing.T) {
	p := Transmeta5400()
	if p.NumLevels() != 16 {
		t.Fatalf("levels = %d, want 16 (Table 1)", p.NumLevels())
	}
	if got := p.Min(); !closeTo(got.Freq, 200e6) || !closeTo(got.Volt, 1.10) {
		t.Errorf("min level = %v, want 200MHz@1.10V", got)
	}
	if got := p.Max(); !closeTo(got.Freq, 700e6) || !closeTo(got.Volt, 1.65) {
		t.Errorf("max level = %v, want 700MHz@1.65V", got)
	}
	for i := 1; i < p.NumLevels(); i++ {
		if p.Levels()[i].Freq <= p.Levels()[i-1].Freq {
			t.Error("frequencies not strictly increasing")
		}
		if p.Levels()[i].Volt < p.Levels()[i-1].Volt {
			t.Error("voltages not monotone")
		}
	}
}

func TestIntelXScaleTable(t *testing.T) {
	p := IntelXScale()
	if p.NumLevels() != 5 {
		t.Fatalf("levels = %d, want 5 (Table 2)", p.NumLevels())
	}
	want := []Level{MHz(150, 0.75), MHz(400, 1.0), MHz(600, 1.3), MHz(800, 1.6), MHz(1000, 1.8)}
	for i, l := range p.Levels() {
		if l != want[i] {
			t.Errorf("level %d = %v, want %v", i, l, want[i])
		}
	}
	// The paper stresses that V(f) is non-linear for both platforms: check
	// the voltage step per MHz is not constant.
	l := p.Levels()
	s1 := (l[1].Volt - l[0].Volt) / (l[1].Freq - l[0].Freq)
	s2 := (l[2].Volt - l[1].Volt) / (l[2].Freq - l[1].Freq)
	if math.Abs(s1-s2) < 1e-12 {
		t.Error("XScale voltage curve should be non-linear")
	}
}

func TestQuantizeUp(t *testing.T) {
	p := IntelXScale()
	cases := []struct {
		f    float64
		want int
	}{
		{0, 0},     // below fmin → fmin
		{100e6, 0}, // below fmin → fmin
		{150e6, 0}, // exactly fmin
		{150.0001e6, 1},
		{399e6, 1},
		{400e6, 1},
		{401e6, 2},
		{999e6, 4},
		{1000e6, 4},
		{5000e6, 4}, // above fmax → clamp
	}
	for _, c := range cases {
		if got := p.QuantizeUp(c.f); got != c.want {
			t.Errorf("QuantizeUp(%g MHz) = %d, want %d", c.f/1e6, got, c.want)
		}
	}
}

func TestQuantizeDown(t *testing.T) {
	p := IntelXScale()
	cases := []struct {
		f    float64
		want int
	}{
		{100e6, 0}, // below fmin → fmin
		{150e6, 0},
		{399e6, 0},
		{400e6, 1},
		{650e6, 2},
		{1000e6, 4},
		{2000e6, 4},
	}
	for _, c := range cases {
		if got := p.QuantizeDown(c.f); got != c.want {
			t.Errorf("QuantizeDown(%g MHz) = %d, want %d", c.f/1e6, got, c.want)
		}
	}
}

// TestQuantizeProperties: up never under-allocates; down never exceeds;
// up ≥ down for any frequency.
func TestQuantizeProperties(t *testing.T) {
	plats := []*Platform{Transmeta5400(), IntelXScale(), Synthetic(7, 100, 900, 0.8, 1.7)}
	prop := func(raw float64) bool {
		f := math.Mod(math.Abs(raw), 1200e6)
		for _, p := range plats {
			up, down := p.QuantizeUp(f), p.QuantizeDown(f)
			if up < down {
				return false
			}
			if f <= p.Max().Freq && p.Levels()[up].Freq < f*(1-1e-9) {
				return false
			}
			if f >= p.Min().Freq && p.Levels()[down].Freq > f*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPowerFormula(t *testing.T) {
	p := IntelXScale()
	// P = Cef·V²·f with the default Cef of 1 nF.
	want := 1e-9 * 1.8 * 1.8 * 1000e6
	if got := p.MaxPower(); !closeTo(got, want) {
		t.Errorf("MaxPower = %g, want %g", got, want)
	}
	if got := p.IdlePower(); !closeTo(got, 0.05*want) {
		t.Errorf("IdlePower = %g, want %g", got, 0.05*want)
	}
	// Power is strictly increasing in level index.
	for i := 1; i < p.NumLevels(); i++ {
		if p.PowerAt(i) <= p.PowerAt(i-1) {
			t.Error("power not increasing with level")
		}
	}
}

func TestEnergyRatioQuadratic(t *testing.T) {
	p := IntelXScale()
	// Running fixed work at 400MHz/1.0V vs 1000MHz/1.8V costs
	// (1.0/1.8)² of the energy.
	want := (1.0 / 1.8) * (1.0 / 1.8)
	if got := p.EnergyRatio(1); !closeTo(got, want) {
		t.Errorf("EnergyRatio(1) = %g, want %g", got, want)
	}
	if got := p.EnergyRatio(p.MaxIndex()); !closeTo(got, 1) {
		t.Errorf("EnergyRatio(max) = %g, want 1", got)
	}
}

func TestWithCefAndIdleFrac(t *testing.T) {
	p := IntelXScale()
	q := p.WithCef(2e-9).WithIdleFrac(0.10)
	if q.Cef != 2e-9 || q.IdleFrac != 0.10 {
		t.Error("With* setters failed")
	}
	if p.Cef != DefaultCef || p.IdleFrac != DefaultIdleFrac {
		t.Error("With* mutated the receiver")
	}
	mustPanic(t, func() { p.WithCef(0) })
	mustPanic(t, func() { p.WithIdleFrac(-0.1) })
	mustPanic(t, func() { p.WithIdleFrac(1.1) })
}

func TestSynthetic(t *testing.T) {
	p := Synthetic(4, 100, 400, 1.0, 1.6)
	if p.NumLevels() != 4 {
		t.Fatalf("levels = %d", p.NumLevels())
	}
	if p.Min().Freq != 100e6 || p.Max().Freq != 400e6 {
		t.Error("synthetic range wrong")
	}
	if p.Levels()[1].Freq != 200e6 || !closeTo(p.Levels()[1].Volt, 1.2) {
		t.Errorf("interpolation wrong: %v", p.Levels()[1])
	}
	one := Synthetic(1, 0, 500, 0, 1.5)
	if one.NumLevels() != 1 || one.Max().Freq != 500e6 {
		t.Error("single-level synthetic wrong")
	}
	mustPanic(t, func() { Synthetic(0, 1, 2, 1, 2) })
	mustPanic(t, func() { Synthetic(3, 500, 100, 1, 2) })
}

func TestNewPlatformValidation(t *testing.T) {
	mustPanic(t, func() { NewPlatform("x", nil) })
	mustPanic(t, func() { NewPlatform("x", []Level{MHz(0, 1)}) })
	mustPanic(t, func() { NewPlatform("x", []Level{MHz(100, 1), MHz(100, 1.2)}) })
	// Levels are sorted regardless of input order.
	p := NewPlatform("x", []Level{MHz(300, 1.2), MHz(100, 1.0), MHz(200, 1.1)})
	if p.Min().Freq != 100e6 || p.Max().Freq != 300e6 {
		t.Error("levels not sorted")
	}
}

func TestOverheads(t *testing.T) {
	ov := DefaultOverheads()
	if ov.SpeedCompCycles != 600 || ov.SpeedChangeTime != 5e-6 {
		t.Errorf("DefaultOverheads = %+v", ov)
	}
	if got := ov.CompTime(600e6); !closeTo(got, 1e-6) {
		t.Errorf("CompTime(600MHz) = %g, want 1µs", got)
	}
	if NoOverheads().CompTime(1e6) != 0 {
		t.Error("NoOverheads CompTime should be 0")
	}
	p := IntelXScale()
	// PadTime = change + comp@fmin = 5µs + 600/150MHz = 9µs.
	if got := ov.PadTime(p); !closeTo(got, 9e-6) {
		t.Errorf("PadTime = %g, want 9µs", got)
	}
}

func TestVoltageSlewModel(t *testing.T) {
	ov := Overheads{SpeedChangeTime: 5e-6, VoltSlewTime: 100e-6} // 100µs per volt
	lo, hi := MHz(150, 0.75), MHz(1000, 1.80)
	// 5µs fixed + 100µs/V × 1.05V = 110µs; symmetric.
	if got := ov.ChangeTime(lo, hi); !closeTo(got, 110e-6) {
		t.Errorf("ChangeTime = %g, want 110µs", got)
	}
	if ov.ChangeTime(lo, hi) != ov.ChangeTime(hi, lo) {
		t.Error("slew cost must be symmetric")
	}
	// Same level: fixed cost only (the engine never charges it without a
	// change, but the function must be consistent).
	if got := ov.ChangeTime(lo, lo); !closeTo(got, 5e-6) {
		t.Errorf("zero-swing ChangeTime = %g", got)
	}
	p := IntelXScale()
	if got := ov.MaxChangeTime(p); !closeTo(got, 110e-6) {
		t.Errorf("MaxChangeTime = %g, want 110µs", got)
	}
	// PadTime budgets the worst swing: 110µs + 600c/150MHz = 114µs.
	pad := Overheads{SpeedCompCycles: 600, SpeedChangeTime: 5e-6, VoltSlewTime: 100e-6}
	if got := pad.PadTime(p); !closeTo(got, 114e-6) {
		t.Errorf("PadTime = %g, want 114µs", got)
	}
	// The paper's model (zero slew) charges the fixed cost for any swing.
	if got := DefaultOverheads().ChangeTime(lo, hi); !closeTo(got, 5e-6) {
		t.Errorf("default ChangeTime = %g, want 5µs", got)
	}
}

func TestLevelString(t *testing.T) {
	if got := MHz(600, 1.3).String(); got != "600MHz@1.3V" {
		t.Errorf("Level.String = %q", got)
	}
}

func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12+1e-9*math.Abs(b)
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
