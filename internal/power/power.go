// Package power models DVS (dynamic voltage scaling) processors: discrete
// voltage/frequency operating points, dynamic power dissipation, idle power
// and the costs of power management itself.
//
// Following §2.3 of the paper, processor power consumption is dominated by
// dynamic power dissipation
//
//	P = C_ef · V_dd² · f
//
// where C_ef is the effective switch capacitance, V_dd the supply voltage
// and f the clock frequency. Real processors expose a small set of discrete
// (f, V) operating points; this package ships the two configurations the
// paper evaluates — the Transmeta Crusoe TM5400 (Table 1) and the Intel
// XScale (Table 2) — plus synthetic platforms for the ablation studies the
// paper lists as future work (varying f_min/f_max and the number of levels).
//
// An idle processor consumes a fixed fraction (5% in the paper) of the
// maximum power level. Changing the operating point costs a fixed time
// overhead, and computing a new speed costs a fixed cycle count; both are
// captured by Overheads.
package power

import (
	"fmt"
	"math"
)

// Level is one discrete operating point of a DVS processor.
type Level struct {
	// Freq is the clock frequency in Hz.
	Freq float64
	// Volt is the supply voltage in volts.
	Volt float64
}

// MHz constructs a Level from a frequency in MHz and a voltage in volts.
func MHz(freqMHz, volt float64) Level {
	return Level{Freq: freqMHz * 1e6, Volt: volt}
}

// String renders the level as "600MHz@1.30V".
func (l Level) String() string {
	return fmt.Sprintf("%.4gMHz@%.3gV", l.Freq/1e6, l.Volt)
}

// Platform describes one DVS processor model. All processors of a
// simulated multiprocessor system are identical, so a single Platform is
// shared by the whole system. Platforms are immutable after construction.
type Platform struct {
	// Name labels the platform in reports ("Transmeta TM5400", ...).
	Name string
	// Cef is the effective switch capacitance in farads. Its absolute value
	// cancels in normalized energy comparisons; the default gives power in
	// plausible watts.
	Cef float64
	// IdleFrac is the idle power as a fraction of the maximum power level
	// (0.05 in the paper).
	IdleFrac float64

	levels []Level // ascending by frequency
}

// DefaultCef is the effective switching capacitance used when none is
// specified (1 nF, which puts maximum power in the low watts for the
// platforms modeled here).
const DefaultCef = 1e-9

// DefaultIdleFrac is the paper's idle power fraction: an idle processor
// consumes 5% of the maximal power level.
const DefaultIdleFrac = 0.05

// NewPlatform builds a platform from its operating points. Levels may be
// given in any order; they are sorted by frequency. It panics on an empty
// level list, duplicate frequencies, or non-positive frequency/voltage
// (platform tables are static program data, so these are programming
// errors, not runtime conditions).
func NewPlatform(name string, levels []Level) *Platform {
	if len(levels) == 0 {
		panic("power: platform needs at least one level")
	}
	ls := append([]Level(nil), levels...)
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j-1].Freq > ls[j].Freq; j-- {
			ls[j-1], ls[j] = ls[j], ls[j-1]
		}
	}
	for i, l := range ls {
		if l.Freq <= 0 || l.Volt <= 0 {
			panic(fmt.Sprintf("power: platform %q level %d has non-positive freq/volt", name, i))
		}
		if i > 0 && ls[i-1].Freq == l.Freq {
			panic(fmt.Sprintf("power: platform %q has duplicate frequency %v", name, l))
		}
	}
	return &Platform{Name: name, Cef: DefaultCef, IdleFrac: DefaultIdleFrac, levels: ls}
}

// Levels returns the operating points in ascending frequency order. The
// returned slice is owned by the platform and must not be modified.
func (p *Platform) Levels() []Level { return p.levels }

// NumLevels returns the number of operating points.
func (p *Platform) NumLevels() int { return len(p.levels) }

// Min returns the lowest-frequency operating point (f_min).
func (p *Platform) Min() Level { return p.levels[0] }

// Max returns the highest-frequency operating point (f_max).
func (p *Platform) Max() Level { return p.levels[len(p.levels)-1] }

// MinIndex and MaxIndex return the indices of the extreme levels.
func (p *Platform) MinIndex() int { return 0 }

// MaxIndex returns the index of the highest-frequency level.
func (p *Platform) MaxIndex() int { return len(p.levels) - 1 }

// quantizeTol absorbs floating-point noise when a requested frequency is
// mathematically equal to a level frequency.
const quantizeTol = 1e-9

// QuantizeUp returns the index of the slowest level whose frequency is at
// least f (within a relative tolerance). Requests below f_min return the
// minimum level (the paper: "when the desired speed is less than f_min, the
// CPU is set to run at f_min"); requests above f_max are clamped to the
// maximum level — the caller is responsible for having established that
// f_max suffices (the off-line feasibility test).
func (p *Platform) QuantizeUp(f float64) int {
	for i, l := range p.levels {
		if l.Freq >= f*(1-quantizeTol) {
			return i
		}
	}
	return len(p.levels) - 1
}

// QuantizeDown returns the index of the fastest level whose frequency is at
// most f (within tolerance), or the minimum level if f is below f_min.
func (p *Platform) QuantizeDown(f float64) int {
	for i := len(p.levels) - 1; i > 0; i-- {
		if p.levels[i].Freq <= f*(1+quantizeTol) {
			return i
		}
	}
	return 0
}

// Power returns the dynamic power dissipation in watts at the given level:
// C_ef · V² · f.
func (p *Platform) Power(l Level) float64 {
	return p.Cef * l.Volt * l.Volt * l.Freq
}

// PowerAt returns the dynamic power at the level with the given index.
func (p *Platform) PowerAt(i int) float64 { return p.Power(p.levels[i]) }

// MaxPower returns the power at the maximum level.
func (p *Platform) MaxPower() float64 { return p.Power(p.Max()) }

// IdlePower returns the power consumed by an idle processor:
// IdleFrac · MaxPower.
func (p *Platform) IdlePower() float64 { return p.IdleFrac * p.MaxPower() }

// EnergyRatio returns the ideal energy of running a fixed workload at level
// i relative to running it at f_max (both ignoring idle time): because
// execution time scales as 1/f, the ratio is (V_i²·f_i)/(V_max²·f_max) ·
// (f_max/f_i) = V_i²/V_max². It is the quadratic saving the paper quotes.
func (p *Platform) EnergyRatio(i int) float64 {
	v := p.levels[i].Volt / p.Max().Volt
	return v * v
}

// WithCef returns a copy of the platform with the given effective
// capacitance.
func (p *Platform) WithCef(cef float64) *Platform {
	if cef <= 0 || math.IsNaN(cef) {
		panic("power: non-positive Cef")
	}
	q := *p
	q.Cef = cef
	return &q
}

// WithIdleFrac returns a copy of the platform with the given idle power
// fraction (0 ≤ frac ≤ 1).
func (p *Platform) WithIdleFrac(frac float64) *Platform {
	if frac < 0 || frac > 1 {
		panic("power: idle fraction outside [0,1]")
	}
	q := *p
	q.IdleFrac = frac
	return &q
}
