package power

import (
	"math"
	"strings"
	"testing"
)

// TestNewHeteroValidation pins the error messages for invalid platforms:
// empty class lists, zero/negative processor counts and zero/negative
// per-processor speeds must all be rejected with a diagnosable message.
func TestNewHeteroValidation(t *testing.T) {
	tm := Transmeta5400()
	cases := []struct {
		name    string
		classes []Class
		want    string // substring of the error
	}{
		{"empty", nil, "is empty"},
		{"zero count", []Class{{Name: "a", Count: 0, Plat: tm, Speed: 1}}, "no processors (count 0)"},
		{"negative count", []Class{{Name: "a", Count: -3, Plat: tm, Speed: 1}}, "no processors (count -3)"},
		{"zero speed", []Class{{Name: "a", Count: 1, Plat: tm, Speed: 0}}, "non-positive speed 0"},
		{"negative speed", []Class{{Name: "a", Count: 2, Plat: tm, Speed: -0.5}}, "non-positive speed -0.5"},
		{"NaN speed", []Class{{Name: "a", Count: 1, Plat: tm, Speed: math.NaN()}}, "non-positive speed"},
		{"inf speed", []Class{{Name: "a", Count: 1, Plat: tm, Speed: math.Inf(1)}}, "non-positive speed"},
		{"nil table", []Class{{Name: "a", Count: 1, Speed: 1}}, "no DVS table"},
		{"dup name", []Class{
			{Name: "a", Count: 1, Plat: tm, Speed: 1},
			{Name: "a", Count: 1, Plat: tm, Speed: 2},
		}, `duplicate class name "a"`},
		// A later class must be validated even when earlier ones are fine.
		{"second class bad", []Class{
			{Name: "a", Count: 1, Plat: tm, Speed: 1},
			{Name: "b", Count: 1, Plat: tm, Speed: -1},
		}, `class "b" has non-positive speed`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewHetero("bad", tc.classes)
			if err == nil {
				t.Fatalf("NewHetero accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestHeteroSingleProc covers the smallest valid platform: one class with
// one processor.
func TestHeteroSingleProc(t *testing.T) {
	tm := Transmeta5400()
	h, err := NewHetero("uni", []Class{{Name: "cpu", Count: 1, Plat: tm, Speed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumProcs() != 1 || h.NumClasses() != 1 {
		t.Fatalf("got %d procs / %d classes, want 1/1", h.NumProcs(), h.NumClasses())
	}
	if h.ClassOf(0) != 0 || h.RefClass() != 0 {
		t.Fatalf("proc 0 class %d, ref class %d, want 0/0", h.ClassOf(0), h.RefClass())
	}
	if h.RefFmax() != tm.Max().Freq {
		t.Fatalf("RefFmax %g, want platform fmax %g", h.RefFmax(), tm.Max().Freq)
	}
	if h.MaxLevels() != tm.NumLevels() {
		t.Fatalf("MaxLevels %d, want %d", h.MaxLevels(), tm.NumLevels())
	}
}

// TestHomogeneousDegenerate pins the bit-level invariants the 1-class
// wrapper relies on: the reference rate and the overhead pad are exactly —
// not approximately — those of the wrapped identical platform.
func TestHomogeneousDegenerate(t *testing.T) {
	for _, p := range []*Platform{Transmeta5400(), IntelXScale()} {
		h, err := Homogeneous(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if h.NumProcs() != 3 {
			t.Fatalf("%s: NumProcs %d, want 3", p.Name, h.NumProcs())
		}
		if h.RefFmax() != p.Max().Freq {
			t.Fatalf("%s: RefFmax %v != fmax %v", p.Name, h.RefFmax(), p.Max().Freq)
		}
		ov := DefaultOverheads()
		if got, want := ov.PadTimeHetero(h), ov.PadTime(p); got != want {
			t.Fatalf("%s: PadTimeHetero %v != PadTime %v (must be bit-identical)", p.Name, got, want)
		}
		if c := h.Class(0); c.EffFmax() != p.Max().Freq {
			t.Fatalf("%s: EffFmax %v != fmax %v", p.Name, c.EffFmax(), p.Max().Freq)
		}
	}
	if _, err := Homogeneous(nil, 2); err == nil {
		t.Fatal("Homogeneous accepted a nil platform")
	}
	if _, err := Homogeneous(Transmeta5400(), 0); err == nil {
		t.Fatal("Homogeneous accepted zero processors")
	}
}

func TestHeteroClassLookup(t *testing.T) {
	h := BigLittle()
	if h.NumProcs() != 4 || h.NumClasses() != 2 {
		t.Fatalf("big.LITTLE: %d procs / %d classes", h.NumProcs(), h.NumClasses())
	}
	// Class-major numbering: procs 0,1 big; 2,3 little.
	for p, want := range []int{0, 0, 1, 1} {
		if h.ClassOf(p) != want {
			t.Fatalf("proc %d class %d, want %d", p, h.ClassOf(p), want)
		}
	}
	if h.ClassIndex("little") != 1 || h.ClassIndex("big") != 0 || h.ClassIndex("huge") != -1 {
		t.Fatal("ClassIndex lookup wrong")
	}
	// The energy-greedy premise: little cores are slower but cheaper per
	// cycle of work.
	big, little := h.Class(0), h.Class(1)
	if little.EffFmax() >= big.EffFmax() {
		t.Fatalf("little EffFmax %g not below big %g", little.EffFmax(), big.EffFmax())
	}
	if little.EnergyPerCycle() >= big.EnergyPerCycle() {
		t.Fatalf("little energy/cycle %g not below big %g", little.EnergyPerCycle(), big.EnergyPerCycle())
	}
}

func TestAccelOffloadReference(t *testing.T) {
	h := AccelOffload()
	ai := h.ClassIndex("accel")
	if ai < 0 {
		t.Fatal("no accel class")
	}
	// The accelerator's throughput multiplier makes it the reference class.
	if h.RefClass() != ai {
		t.Fatalf("ref class %d, want accel %d", h.RefClass(), ai)
	}
	if eff := h.Class(ai).EffFmax(); eff != 4*500e6 {
		t.Fatalf("accel EffFmax %g, want 2e9", eff)
	}
}

func TestParseHeteroSpec(t *testing.T) {
	good := `{
		"name": "test",
		"classes": [
			{"name": "big", "count": 2, "platform": "transmeta"},
			{"name": "small", "count": 1, "speed": 0.5,
			 "levels": [{"mhz": 100, "volt": 0.7}, {"mhz": 200, "volt": 0.9}]}
		]
	}`
	h, err := ParseHeteroSpec([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumProcs() != 3 || h.NumClasses() != 2 {
		t.Fatalf("got %d procs / %d classes, want 3/2", h.NumProcs(), h.NumClasses())
	}
	if s := h.Class(1); s.Speed != 0.5 || s.Plat.NumLevels() != 2 {
		t.Fatalf("small class wrong: speed %g, %d levels", s.Speed, s.Plat.NumLevels())
	}

	for _, ref := range []string{"symmetric", "biglittle", "accel"} {
		if _, err := ParseHeteroSpec([]byte(`"` + ref + `"`)); err != nil {
			t.Fatalf("reference %q: %v", ref, err)
		}
	}

	bad := []struct {
		name, spec, want string
	}{
		{"not json", `{`, "bad platform spec"},
		{"unknown ref", `"quantum"`, "unknown reference"},
		{"unknown field", `{"classes":[],"bogus":1}`, "bogus"},
		{"empty classes", `{"classes":[]}`, "is empty"},
		{"negative speed", `{"classes":[{"count":1,"platform":"transmeta","speed":-2}]}`, "non-positive speed"},
		// An explicit zero is a spec error, not the default: only an
		// absent speed field means 1.
		{"explicit zero speed", `{"classes":[{"count":1,"platform":"transmeta","speed":0}]}`, "non-positive speed 0"},
		{"zero count", `{"classes":[{"count":0,"platform":"transmeta"}]}`, "no processors"},
		{"no table", `{"classes":[{"count":1}]}`, "no DVS levels"},
		{"both tables", `{"classes":[{"count":1,"platform":"xscale","levels":[{"mhz":100,"volt":1}]}]}`, "both a named platform and explicit levels"},
		{"unknown platform", `{"classes":[{"count":1,"platform":"pentium"}]}`, "unknown platform"},
		{"bad level", `{"classes":[{"count":1,"levels":[{"mhz":-5,"volt":1}]}]}`, "non-positive frequency/voltage"},
		{"dup freq", `{"classes":[{"count":1,"levels":[{"mhz":100,"volt":1},{"mhz":100,"volt":1.2}]}]}`, "duplicate frequency"},
		{"too many procs", `{"classes":[{"count":100000,"platform":"transmeta"}]}`, "exceeds max"},
		{"bad idle frac", `{"classes":[{"count":1,"platform":"transmeta","idle_frac":1.5}]}`, "outside [0,1]"},
		{"trailing data", `{"classes":[{"count":1,"platform":"transmeta"}]} garbage`, "trailing data"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseHeteroSpec([]byte(tc.spec))
			if err == nil {
				t.Fatalf("spec accepted: %s", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestHeteroKey pins that the cache key is content-addressed: equal specs
// collide, any material difference (count, speed, table) separates, and
// the cosmetic name does not.
func TestHeteroKey(t *testing.T) {
	base := func() []Class {
		return []Class{
			{Name: "a", Count: 2, Plat: Transmeta5400(), Speed: 1},
			{Name: "b", Count: 1, Plat: IntelXScale(), Speed: 0.5},
		}
	}
	h1, _ := NewHetero("one", base())
	h2, _ := NewHetero("two", base()) // same content, different name
	if h1.Key() != h2.Key() {
		t.Fatal("platform name changed the content key")
	}
	variants := map[string]func(c []Class) []Class{
		"count": func(c []Class) []Class { c[0].Count = 3; return c },
		"speed": func(c []Class) []Class { c[1].Speed = 0.75; return c },
		"table": func(c []Class) []Class { c[1].Plat = Transmeta5400(); return c },
		"cef":   func(c []Class) []Class { c[0].Plat = c[0].Plat.WithCef(2e-9); return c },
		"idle":  func(c []Class) []Class { c[0].Plat = c[0].Plat.WithIdleFrac(0.1); return c },
	}
	for name, mut := range variants {
		hv, err := NewHetero("one", mut(base()))
		if err != nil {
			t.Fatal(err)
		}
		if hv.Key() == h1.Key() {
			t.Fatalf("changing %s did not change the key", name)
		}
	}
}
