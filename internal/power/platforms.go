package power

import "fmt"

// Transmeta5400 returns the Transmeta Crusoe TM5400 platform of the paper's
// Table 1: 16 voltage/frequency settings between 200 MHz at 1.10 V and
// 700 MHz at 1.65 V. The published table's interior values are not legible
// in the available copy of the paper, so frequencies are spaced evenly at
// 33⅓ MHz with linearly interpolated voltages — preserving the level count,
// the frequency range and the voltage range, which are what the evaluation
// depends on (many closely spaced levels).
func Transmeta5400() *Platform {
	const n = 16
	levels := make([]Level, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		levels[i] = MHz(200+frac*500, 1.10+frac*0.55)
	}
	return NewPlatform("Transmeta TM5400", levels)
}

// IntelXScale returns the Intel XScale platform of the paper's Table 2:
// few, widely spaced levels with a markedly non-linear voltage/frequency
// relation. The operating points are the standard XScale 80200 set used
// throughout this research group's work.
func IntelXScale() *Platform {
	return NewPlatform("Intel XScale", []Level{
		MHz(150, 0.75),
		MHz(400, 1.00),
		MHz(600, 1.30),
		MHz(800, 1.60),
		MHz(1000, 1.80),
	})
}

// Synthetic returns an artificial platform with n evenly spaced frequency
// levels between fminMHz and fmaxMHz and linearly interpolated voltages
// between vmin and vmax. It supports the ablation studies the paper lists
// as future work: the effect of the minimal speed (f_min/f_max ratio) and
// of the number of speed levels on each scheme's energy savings. n = 1
// yields a fixed-speed processor at fmaxMHz.
func Synthetic(n int, fminMHz, fmaxMHz, vmin, vmax float64) *Platform {
	if n < 1 {
		panic("power: Synthetic needs at least one level")
	}
	if n == 1 {
		return NewPlatform(fmt.Sprintf("Synthetic-1@%gMHz", fmaxMHz), []Level{MHz(fmaxMHz, vmax)})
	}
	if fminMHz >= fmaxMHz || vmin > vmax {
		panic("power: Synthetic needs fmin < fmax and vmin <= vmax")
	}
	levels := make([]Level, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		levels[i] = MHz(fminMHz+frac*(fmaxMHz-fminMHz), vmin+frac*(vmax-vmin))
	}
	return NewPlatform(fmt.Sprintf("Synthetic-%d[%g-%gMHz]", n, fminMHz, fmaxMHz), levels)
}

// Overheads captures the two costs of dynamic power management (§5):
// computing a new speed at each power management point, and actually
// changing the voltage/speed.
type Overheads struct {
	// SpeedCompCycles is the cycle count of the new-speed computation,
	// executed at the processor's current frequency before each speed
	// decision. The paper measured this on the SimpleScalar simulator; 600
	// cycles is used here (the exact figure is garbled in the available
	// copy; it is configurable and its effect is covered by an ablation).
	SpeedCompCycles float64
	// SpeedChangeTime is the fixed wall-clock cost in seconds of one
	// voltage/speed change. Current technology at the time needed tens to
	// hundreds of microseconds; the paper's experiments use 5 µs.
	SpeedChangeTime float64
	// VoltSlewTime extends the model with the converter-limited dV/dt of
	// Burd & Brodersen (the paper's reference [3]): an additional cost in
	// seconds per volt of supply-voltage swing, so a transition between
	// levels (V₁, V₂) costs SpeedChangeTime + VoltSlewTime·|V₂−V₁|.
	// Zero (the default, and the paper's model) makes every change cost
	// the same.
	VoltSlewTime float64
}

// DefaultOverheads returns the overhead configuration of the paper's
// experiments: 600 cycles of speed computation and 5 µs per speed change.
func DefaultOverheads() Overheads {
	return Overheads{SpeedCompCycles: 600, SpeedChangeTime: 5e-6}
}

// NoOverheads returns a zero-cost configuration (ideal power management).
func NoOverheads() Overheads { return Overheads{} }

// CompTime returns the speed-computation overhead in seconds when running
// at frequency f.
func (o Overheads) CompTime(f float64) float64 {
	if o.SpeedCompCycles == 0 {
		return 0
	}
	return o.SpeedCompCycles / f
}

// ChangeTime returns the cost in seconds of transitioning between the two
// operating points: the fixed cost plus the voltage-slew cost.
func (o Overheads) ChangeTime(from, to Level) float64 {
	dv := to.Volt - from.Volt
	if dv < 0 {
		dv = -dv
	}
	return o.SpeedChangeTime + o.VoltSlewTime*dv
}

// MaxChangeTime returns the worst transition cost on the platform (a full
// V_min↔V_max swing) — what the scheduler must budget before it knows
// which level it will pick.
func (o Overheads) MaxChangeTime(p *Platform) float64 {
	return o.SpeedChangeTime + o.VoltSlewTime*(p.Max().Volt-p.Min().Volt)
}

// PadTime returns the per-task worst-case allowance the off-line phase
// reserves so that power management costs can never cause a deadline miss:
// one worst-case speed change plus one speed computation at the platform's
// slowest frequency. Inflating each task's WCET by this amount in the
// canonical schedules guarantees that, at run time, paying the overheads
// still leaves at least the task's true WCET of budget (see internal/core).
func (o Overheads) PadTime(p *Platform) float64 {
	return o.MaxChangeTime(p) + o.CompTime(p.Min().Freq)
}
