package power_test

import (
	"fmt"

	"andorsched/internal/power"
)

// Example shows the paper's power model on the Intel XScale table: running
// the same work at a lower operating point costs quadratically less energy
// (the V² factor) while only linearly extending execution time.
func Example() {
	p := power.IntelXScale()
	fmt.Printf("%s: %d levels, f_min %s, f_max %s\n",
		p.Name, p.NumLevels(), p.Min(), p.Max())
	fmt.Printf("P(f_max) = %.2f W, idle = %.3f W\n", p.MaxPower(), p.IdlePower())

	// A task needing 400 Mcycles with 2 s of allocation: 200 MHz would
	// do, but the platform's next level up is 400 MHz at 1.0 V.
	idx := p.QuantizeUp(200e6)
	lv := p.Levels()[idx]
	fmt.Printf("200 MHz requested -> %s\n", lv)
	fmt.Printf("energy vs f_max for the same work: %.2f\n", p.EnergyRatio(idx))
	// Output:
	// Intel XScale: 5 levels, f_min 150MHz@0.75V, f_max 1000MHz@1.8V
	// P(f_max) = 3.24 W, idle = 0.162 W
	// 200 MHz requested -> 400MHz@1V
	// energy vs f_max for the same work: 0.31
}

// ExampleOverheads_ChangeTime demonstrates the two transition-cost models:
// the paper's fixed cost and the voltage-slew extension.
func ExampleOverheads_ChangeTime() {
	paper := power.DefaultOverheads() // fixed 5 µs
	slew := power.Overheads{SpeedChangeTime: 5e-6, VoltSlewTime: 100e-6}
	lo := power.MHz(150, 0.75)
	hi := power.MHz(1000, 1.80)
	fmt.Printf("paper model:  %.0f µs for any change\n", paper.ChangeTime(lo, hi)*1e6)
	fmt.Printf("slew model:   %.0f µs for the full 1.05 V swing\n", slew.ChangeTime(lo, hi)*1e6)
	fmt.Printf("slew model:   %.0f µs for a 0.2 V step\n",
		slew.ChangeTime(power.MHz(600, 1.3), power.MHz(800, 1.5))*1e6)
	// Output:
	// paper model:  5 µs for any change
	// slew model:   110 µs for the full 1.05 V swing
	// slew model:   25 µs for a 0.2 V step
}
