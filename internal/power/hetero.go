package power

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
)

// Class is one processor class of a heterogeneous platform: some number of
// identical processors sharing a DVS table and a speed multiplier.
//
// Speed models microarchitectural throughput (IPC, specialized datapaths):
// a class running at level frequency f retires work at the effective rate
// Speed·f cycles per second, while paying the power P(f) of its own table.
// An accelerator is a class with Speed > 1; a little core is a class with a
// low-voltage table and/or Speed < 1. The identical platforms of the paper
// are the degenerate single class with Speed == 1.
type Class struct {
	// Name labels the class in reports and is the target of `@class`
	// affinity tags in .andor workloads.
	Name string
	// Count is the number of processors of this class (≥ 1).
	Count int
	// Plat is the class's own DVS table: its f_max, its P(f) curve, its
	// idle fraction.
	Plat *Platform
	// Speed is the work-throughput multiplier (> 0). Effective execution
	// rate at level frequency f is Speed·f.
	Speed float64
}

// EffFmax returns the class's maximal effective execution rate in cycles
// per second: Speed · f_max.
func (c *Class) EffFmax() float64 { return c.Speed * c.Plat.Max().Freq }

// EnergyPerCycle returns the minimal achievable energy per unit of work on
// this class: min over levels of P(f)/(Speed·f) = C_ef·V²/Speed at the
// lowest-voltage level. It is what an energy-greedy placement compares.
func (c *Class) EnergyPerCycle() float64 {
	best := math.Inf(1)
	for i := range c.Plat.Levels() {
		l := c.Plat.Levels()[i]
		if e := c.Plat.Power(l) / (c.Speed * l.Freq); e < best {
			best = e
		}
	}
	return best
}

// Hetero describes a heterogeneous multiprocessor platform as an ordered
// list of processor classes. Processors are numbered class-major: class 0's
// processors first, then class 1's, and so on. Hetero values are immutable
// after construction.
type Hetero struct {
	// Name labels the platform in reports.
	Name string

	classes []Class
	procCls []int // per-processor class index, class-major
	ref     int   // index of the class with the highest EffFmax
}

// NewHetero validates the class list and builds a platform. Unlike
// NewPlatform, it returns errors rather than panicking: heterogeneous specs
// arrive from workload files and service requests, so bad values are
// runtime conditions, not programming errors.
func NewHetero(name string, classes []Class) (*Hetero, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("power: heterogeneous platform %q is empty: needs at least one processor class", name)
	}
	h := &Hetero{Name: name, classes: append([]Class(nil), classes...)}
	for i := range h.classes {
		c := &h.classes[i]
		if c.Name == "" {
			c.Name = fmt.Sprintf("class%d", i)
		}
		if c.Count < 1 {
			return nil, fmt.Errorf("power: class %q has no processors (count %d): each class needs at least one", c.Name, c.Count)
		}
		if c.Speed <= 0 || math.IsNaN(c.Speed) || math.IsInf(c.Speed, 0) {
			return nil, fmt.Errorf("power: class %q has non-positive speed %g: per-processor speeds must be > 0", c.Name, c.Speed)
		}
		if c.Plat == nil {
			return nil, fmt.Errorf("power: class %q has no DVS table", c.Name)
		}
		for j := 0; j < i; j++ {
			if h.classes[j].Name == c.Name {
				return nil, fmt.Errorf("power: duplicate class name %q", c.Name)
			}
		}
		for p := 0; p < c.Count; p++ {
			h.procCls = append(h.procCls, i)
		}
		if c.EffFmax() > h.classes[h.ref].EffFmax() {
			h.ref = i
		}
	}
	return h, nil
}

// Homogeneous wraps an identical-processor platform as the degenerate
// 1-class heterogeneous platform: m processors of one class at Speed 1.
// Schedules on the result are bit-identical to the identical-platform path
// (differential-tested in internal/core).
func Homogeneous(p *Platform, m int) (*Hetero, error) {
	if p == nil {
		return nil, fmt.Errorf("power: Homogeneous needs a platform")
	}
	return NewHetero(p.Name, []Class{{Name: "cpu", Count: m, Plat: p, Speed: 1}})
}

// NumProcs returns the total processor count across all classes.
func (h *Hetero) NumProcs() int { return len(h.procCls) }

// NumClasses returns the number of processor classes.
func (h *Hetero) NumClasses() int { return len(h.classes) }

// Class returns the i-th class. The result is owned by the platform.
func (h *Hetero) Class(i int) *Class { return &h.classes[i] }

// ClassOf returns the class index of processor p (class-major numbering).
func (h *Hetero) ClassOf(p int) int { return h.procCls[p] }

// ClassIndex returns the index of the class with the given name, or -1.
func (h *Hetero) ClassIndex(name string) int {
	for i := range h.classes {
		if h.classes[i].Name == name {
			return i
		}
	}
	return -1
}

// RefFmax returns the platform's reference execution rate: the maximal
// effective rate Speed·f_max over all classes. Task work is measured in
// cycles at this rate — a task with WCET w seconds carries w·RefFmax cycles
// of worst-case work, and only the fastest class can retire it in w
// seconds.
func (h *Hetero) RefFmax() float64 { return h.classes[h.ref].EffFmax() }

// RefClass returns the index of the class attaining RefFmax (lowest index
// on ties).
func (h *Hetero) RefClass() int { return h.ref }

// MaxLevels returns the largest DVS-table size over all classes.
func (h *Hetero) MaxLevels() int {
	n := 0
	for i := range h.classes {
		if l := h.classes[i].Plat.NumLevels(); l > n {
			n = l
		}
	}
	return n
}

// Key returns a content-addressed digest of the platform: identical specs
// (classes, counts, speeds, DVS tables, capacitances, idle fractions —
// names excluded) yield identical keys. Plan caches use it so compiled
// plans never cross platforms.
func (h *Hetero) Key() string {
	hash := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		hash.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(len(h.classes)))
	for i := range h.classes {
		c := &h.classes[i]
		u64(uint64(c.Count))
		f64(c.Speed)
		f64(c.Plat.Cef)
		f64(c.Plat.IdleFrac)
		u64(uint64(c.Plat.NumLevels()))
		for _, l := range c.Plat.Levels() {
			f64(l.Freq)
			f64(l.Volt)
		}
	}
	return "hetero:" + hex.EncodeToString(hash.Sum(nil))
}

// PadTimeHetero is the heterogeneous counterpart of PadTime: the worst-case
// per-task power-management allowance over all classes — one worst speed
// change plus one speed computation at the class's slowest effective rate.
func (o Overheads) PadTimeHetero(h *Hetero) float64 {
	worst := 0.0
	for i := 0; i < h.NumClasses(); i++ {
		c := h.Class(i)
		if p := o.MaxChangeTime(c.Plat) + o.CompTime(c.Plat.Min().Freq*c.Speed); p > worst {
			worst = p
		}
	}
	return worst
}

// mustHetero builds a reference platform from static data; errors are
// programming errors.
func mustHetero(name string, classes []Class) *Hetero {
	h, err := NewHetero(name, classes)
	if err != nil {
		panic(err)
	}
	return h
}

// littleCore is the low-voltage DVS table of the BigLittle reference
// platform: 100–400 MHz at 0.70–1.05 V. Its minimal energy per cycle
// (C_ef·0.70²) is 2.5× below the big cores' (C_ef·1.10²).
func littleCore() *Platform {
	const n = 8
	levels := make([]Level, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		levels[i] = MHz(100+frac*300, 0.70+frac*0.35)
	}
	return NewPlatform("LittleCore", levels)
}

// SymmetricHetero returns the first reference platform: m identical
// Transmeta TM5400 processors as one class — the paper's own configuration
// expressed in the heterogeneous model.
func SymmetricHetero(m int) *Hetero {
	return mustHetero("symmetric", []Class{
		{Name: "cpu", Count: m, Plat: Transmeta5400(), Speed: 1},
	})
}

// BigLittle returns the second reference platform: two full-speed Transmeta
// cores plus two low-voltage little cores at 100–400 MHz. Little cores are
// slower (EffFmax 400 MHz vs 700 MHz) but far cheaper per cycle of work, so
// an energy-greedy placement that proves a task's deadline feasible on a
// little core saves energy over fastest-first.
func BigLittle() *Hetero {
	return mustHetero("big.LITTLE", []Class{
		{Name: "big", Count: 2, Plat: Transmeta5400(), Speed: 1},
		{Name: "little", Count: 2, Plat: littleCore(), Speed: 1},
	})
}

// AccelOffload returns the third reference platform: two general-purpose
// Transmeta cores plus one accelerator class — a narrow DVS table at
// moderate voltage with a 4× throughput multiplier, modeling a specialized
// datapath. Tasks tagged `@accel` in a workload are steered to it by the
// class-affinity placement.
func AccelOffload() *Hetero {
	return mustHetero("accel-offload", []Class{
		{Name: "cpu", Count: 2, Plat: Transmeta5400(), Speed: 1},
		{Name: "accel", Count: 1, Speed: 4, Plat: NewPlatform("Accel", []Level{
			MHz(300, 1.00),
			MHz(400, 1.10),
			MHz(500, 1.20),
		})},
	})
}

// ReferenceHetero resolves a reference heterogeneous platform by name:
// "symmetric" (4× Transmeta), "biglittle", or "accel".
func ReferenceHetero(name string) (*Hetero, error) {
	switch name {
	case "symmetric":
		return SymmetricHetero(4), nil
	case "biglittle", "big.LITTLE":
		return BigLittle(), nil
	case "accel", "accel-offload":
		return AccelOffload(), nil
	}
	return nil, fmt.Errorf("power: unknown reference heterogeneous platform %q (want symmetric, biglittle or accel)", name)
}

// HeteroSpec is the JSON wire form of a heterogeneous platform, accepted by
// the -platform flag (as a file) and the /v1 request schema (inline).
type HeteroSpec struct {
	Name    string      `json:"name,omitempty"`
	Classes []ClassSpec `json:"classes"`
}

// ClassSpec is one class of a HeteroSpec. Exactly one of Platform (a named
// homogeneous table: "transmeta" or "xscale") or Levels must be given.
type ClassSpec struct {
	Name     string      `json:"name,omitempty"`
	Count    int         `json:"count"`
	Speed    *float64    `json:"speed,omitempty"` // default 1; must be > 0 when given
	Platform string      `json:"platform,omitempty"`
	Levels   []LevelSpec `json:"levels,omitempty"`
	Cef      float64     `json:"cef,omitempty"`
	IdleFrac *float64    `json:"idle_frac,omitempty"`
}

// LevelSpec is one DVS operating point of a ClassSpec.
type LevelSpec struct {
	MHz  float64 `json:"mhz"`
	Volt float64 `json:"volt"`
}

// Spec caps keep adversarial inputs (fuzzing, the public /v1 schema) from
// allocating unbounded platforms.
const (
	maxSpecClasses = 64
	maxSpecLevels  = 256
	maxSpecProcs   = 4096
)

// ParseHeteroSpec decodes and validates a heterogeneous platform spec. The
// input is either a JSON string naming a reference platform ("symmetric",
// "biglittle", "accel") or a HeteroSpec object. Unknown fields are
// rejected.
func ParseHeteroSpec(data []byte) (*Hetero, error) {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		return ReferenceHetero(name)
	}
	var spec HeteroSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("power: bad platform spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("power: bad platform spec: trailing data after JSON object")
	}
	return spec.Build()
}

// Build validates the spec and constructs the platform.
func (s *HeteroSpec) Build() (*Hetero, error) {
	if len(s.Classes) > maxSpecClasses {
		return nil, fmt.Errorf("power: platform spec has %d classes (max %d)", len(s.Classes), maxSpecClasses)
	}
	name := s.Name
	if name == "" {
		name = "custom"
	}
	procs := 0
	classes := make([]Class, 0, len(s.Classes))
	for i, cs := range s.Classes {
		cname := cs.Name
		if cname == "" {
			cname = fmt.Sprintf("class%d", i)
		}
		if cs.Count > maxSpecProcs {
			return nil, fmt.Errorf("power: class %q count %d exceeds max %d", cname, cs.Count, maxSpecProcs)
		}
		procs += cs.Count
		if procs > maxSpecProcs {
			return nil, fmt.Errorf("power: platform spec has more than %d processors", maxSpecProcs)
		}
		// An explicit "speed": 0 is a spec error, not a request for the
		// default: only an absent field means Speed 1 (NewHetero rejects
		// the zero below with a targeted message).
		speed := 1.0
		if cs.Speed != nil {
			speed = *cs.Speed
		}
		plat, err := cs.table(cname)
		if err != nil {
			return nil, err
		}
		if cs.Cef != 0 {
			if cs.Cef < 0 || math.IsNaN(cs.Cef) || math.IsInf(cs.Cef, 0) {
				return nil, fmt.Errorf("power: class %q has non-positive cef %g", cname, cs.Cef)
			}
			plat = plat.WithCef(cs.Cef)
		}
		if cs.IdleFrac != nil {
			f := *cs.IdleFrac
			if f < 0 || f > 1 || math.IsNaN(f) {
				return nil, fmt.Errorf("power: class %q idle_frac %g outside [0,1]", cname, f)
			}
			plat = plat.WithIdleFrac(f)
		}
		classes = append(classes, Class{Name: cname, Count: cs.Count, Plat: plat, Speed: speed})
	}
	return NewHetero(name, classes)
}

// table resolves the class's DVS table from either the named platform or
// the explicit level list, validating spec-supplied levels (NewPlatform
// panics on bad data; spec data must error instead).
func (cs *ClassSpec) table(cname string) (*Platform, error) {
	if cs.Platform != "" {
		if len(cs.Levels) != 0 {
			return nil, fmt.Errorf("power: class %q gives both a named platform and explicit levels", cname)
		}
		switch cs.Platform {
		case "transmeta":
			return Transmeta5400(), nil
		case "xscale":
			return IntelXScale(), nil
		}
		return nil, fmt.Errorf("power: class %q names unknown platform %q (want transmeta or xscale)", cname, cs.Platform)
	}
	if len(cs.Levels) == 0 {
		return nil, fmt.Errorf("power: class %q has no DVS levels and no named platform", cname)
	}
	if len(cs.Levels) > maxSpecLevels {
		return nil, fmt.Errorf("power: class %q has %d levels (max %d)", cname, len(cs.Levels), maxSpecLevels)
	}
	levels := make([]Level, len(cs.Levels))
	seen := make(map[float64]bool, len(cs.Levels))
	for i, ls := range cs.Levels {
		if ls.MHz <= 0 || ls.Volt <= 0 || math.IsNaN(ls.MHz) || math.IsNaN(ls.Volt) ||
			math.IsInf(ls.MHz, 0) || math.IsInf(ls.Volt, 0) {
			return nil, fmt.Errorf("power: class %q level %d has non-positive frequency/voltage", cname, i)
		}
		if seen[ls.MHz] {
			return nil, fmt.Errorf("power: class %q has duplicate frequency %gMHz", cname, ls.MHz)
		}
		seen[ls.MHz] = true
		levels[i] = MHz(ls.MHz, ls.Volt)
	}
	return NewPlatform(cname, levels), nil
}
