package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"andorsched/internal/power"
)

// chromeEvent is one Trace Event Format record ("X" = complete event),
// loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace renders a schedule as Chrome Trace Event Format JSON: one
// lane per processor (tid), one complete event per task execution, plus
// shaded events for power-management overheads. Open the result in
// chrome://tracing or https://ui.perfetto.dev.
func ChromeTrace(platform *power.Platform, entries []GanttEntry) ([]byte, error) {
	events := make([]chromeEvent, 0, 2*len(entries))
	for _, e := range entries {
		lv := platform.Levels()[e.Level]
		if oh := e.CompOH + e.ChangeOH; oh > 0 {
			events = append(events, chromeEvent{
				Name: "dvs-overhead", Ph: "X",
				Ts: e.Dispatch * 1e6, Dur: oh * 1e6,
				Pid: 0, Tid: e.Proc,
				Args: map[string]string{
					"comp_us":   fmt.Sprintf("%.2f", e.CompOH*1e6),
					"change_us": fmt.Sprintf("%.2f", e.ChangeOH*1e6),
				},
			})
		}
		start := e.Dispatch + e.CompOH + e.ChangeOH
		events = append(events, chromeEvent{
			Name: e.Name, Ph: "X",
			Ts: start * 1e6, Dur: (e.Finish - start) * 1e6,
			Pid: 0, Tid: e.Proc,
			Args: map[string]string{
				"level": lv.String(),
				"power": fmt.Sprintf("%.3gW", platform.PowerAt(e.Level)),
			},
		})
	}
	return json.Marshal(events)
}

// svgLane is the pixel height of one processor lane.
const (
	svgLane   = 34
	svgHeader = 24
	svgWidth  = 960
	svgMargin = 60
)

// SVG renders a schedule as a self-contained SVG timeline: one lane per
// processor, task blocks shaded by voltage/speed level (darker = faster),
// overhead slivers in red, and a dashed deadline marker. Suitable for
// embedding in reports; no external assets.
func SVG(platform *power.Platform, entries []GanttEntry, deadline float64) string {
	if len(entries) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40"><text x="8" y="24">empty schedule</text></svg>`
	}
	maxProc := 0
	end := deadline
	for _, e := range entries {
		if e.Proc > maxProc {
			maxProc = e.Proc
		}
		if e.Finish > end {
			end = e.Finish
		}
	}
	lanes := maxProc + 1
	height := svgHeader + lanes*svgLane + 22
	x := func(t float64) float64 {
		return svgMargin + (float64(svgWidth-svgMargin-10))*t/end
	}
	shade := func(level int) string {
		// Interpolate light blue (slow) to dark blue (fast).
		n := platform.NumLevels()
		frac := 0.0
		if n > 1 {
			frac = float64(level) / float64(n-1)
		}
		r := int(200 - 150*frac)
		g := int(220 - 150*frac)
		return fmt.Sprintf("rgb(%d,%d,235)", r, g)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`,
		svgWidth, height)
	fmt.Fprintf(&b, `<text x="%d" y="14">%s — %d processors, %.3f ms</text>`,
		svgMargin, platform.Name, lanes, end*1e3)
	sorted := append([]GanttEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Dispatch < sorted[j].Dispatch })
	for p := 0; p < lanes; p++ {
		y := svgHeader + p*svgLane
		fmt.Fprintf(&b, `<text x="4" y="%d">P%d</text>`, y+svgLane/2+4, p)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ccc"/>`,
			svgMargin, y+svgLane-4, svgWidth-10, y+svgLane-4)
	}
	for _, e := range sorted {
		y := svgHeader + e.Proc*svgLane
		if oh := e.CompOH + e.ChangeOH; oh > 0 {
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.2f" height="%d" fill="#d33"/>`,
				x(e.Dispatch), y+4, maxf(x(e.Dispatch+oh)-x(e.Dispatch), 0.5), svgLane-10)
		}
		start := e.Dispatch + e.CompOH + e.ChangeOH
		w := maxf(x(e.Finish)-x(start), 0.5)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.2f" height="%d" fill="%s" stroke="#456"><title>%s @ %s [%.3f–%.3f ms]</title></rect>`,
			x(start), y+4, w, svgLane-10, shade(e.Level),
			e.Name, platform.Levels()[e.Level], start*1e3, e.Finish*1e3)
		if w > 34 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#123">%s</text>`,
				x(start)+2, y+svgLane/2+4, e.Name)
		}
	}
	if deadline > 0 {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#d33" stroke-dasharray="4,3"/>`,
			x(deadline), svgHeader-6, x(deadline), height-18)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#d33">D=%.2fms</text>`,
			x(deadline)-30, height-4, deadline*1e3)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
