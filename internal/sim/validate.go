package sim

import (
	"fmt"
	"math"
	"sort"

	"andorsched/internal/power"
)

// valTol absorbs floating-point accumulation in schedule arithmetic.
const valTol = 1e-9

// ValidateResult is an independent oracle that cross-checks an engine run
// against the machine model's invariants. It is used by tests (and by
// core.RunConfig.Validate) to catch scheduling bugs structurally rather
// than through aggregate outcomes. It verifies that:
//
//   - every task executed exactly once, at a valid level, not before start;
//   - each record's arithmetic holds: Start = Dispatch + overheads and
//     Finish − Start = WorkA / f(level);
//   - no two records overlap on the same processor;
//   - every task was dispatched only after all its predecessors finished;
//   - in ByOrder mode, dispatch times are non-decreasing in task order
//     (the order-gate discipline);
//   - the per-processor busy/overhead totals match the records.
func ValidateResult(platform *power.Platform, mode Mode, start float64, tasks []*Task, res *Result) error {
	return validateResult(func(int) (*power.Platform, float64) { return platform, 1 },
		mode, start, tasks, res)
}

// ValidateResultHetero is ValidateResult for heterogeneous runs: each
// record's level bound and duration are checked against its processor
// class's own DVS table and effective rate Speed·f.
func ValidateResultHetero(h *power.Hetero, mode Mode, start float64, tasks []*Task, res *Result) error {
	return validateResult(func(proc int) (*power.Platform, float64) {
		c := h.Class(h.ClassOf(proc))
		return c.Plat, c.Speed
	}, mode, start, tasks, res)
}

// procModel returns the DVS table and speed multiplier of a processor; the
// proc index has been bounds-checked against the result.
func validateResult(procModel func(proc int) (*power.Platform, float64), mode Mode, start float64, tasks []*Task, res *Result) error {
	if len(res.Records) != len(tasks) {
		return fmt.Errorf("sim: %d records for %d tasks", len(res.Records), len(tasks))
	}
	byTask := make([]*Record, len(tasks))
	for i := range res.Records {
		r := &res.Records[i]
		if r.Task < 0 || r.Task >= len(tasks) {
			return fmt.Errorf("sim: record references task %d", r.Task)
		}
		if byTask[r.Task] != nil {
			return fmt.Errorf("sim: task %q executed twice", tasks[r.Task].Name)
		}
		byTask[r.Task] = r
		if r.Proc < 0 || r.Proc >= len(res.BusyTime) {
			return fmt.Errorf("sim: record on unknown processor %d", r.Proc)
		}
		platform, speed := procModel(r.Proc)
		if r.Level < 0 || r.Level >= platform.NumLevels() {
			return fmt.Errorf("sim: task %q ran at invalid level %d", tasks[r.Task].Name, r.Level)
		}
		if r.Dispatch < start-valTol {
			return fmt.Errorf("sim: task %q dispatched at %g before start %g", tasks[r.Task].Name, r.Dispatch, start)
		}
		if math.Abs(r.Start-(r.Dispatch+r.CompOH+r.ChangeOH)) > valTol {
			return fmt.Errorf("sim: task %q start %g ≠ dispatch %g + overheads %g",
				tasks[r.Task].Name, r.Start, r.Dispatch, r.CompOH+r.ChangeOH)
		}
		wantDur := tasks[r.Task].WorkA / (platform.Levels()[r.Level].Freq * speed)
		if math.Abs((r.Finish-r.Start)-wantDur) > valTol {
			return fmt.Errorf("sim: task %q duration %g ≠ work/freq %g",
				tasks[r.Task].Name, r.Finish-r.Start, wantDur)
		}
	}

	// Processor occupancy: records on one processor must not overlap.
	byProc := map[int][]*Record{}
	for i := range res.Records {
		r := &res.Records[i]
		byProc[r.Proc] = append(byProc[r.Proc], r)
	}
	busy := map[int]float64{}
	oh := map[int]float64{}
	for proc, rs := range byProc {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Dispatch < rs[j].Dispatch })
		for i, r := range rs {
			if i > 0 && r.Dispatch < rs[i-1].Finish-valTol {
				return fmt.Errorf("sim: processor %d runs %q before %q finished",
					proc, tasks[r.Task].Name, tasks[rs[i-1].Task].Name)
			}
			busy[proc] += r.Finish - r.Start
			oh[proc] += r.CompOH + r.ChangeOH
		}
	}
	for proc := range byProc {
		if proc < 0 || proc >= len(res.BusyTime) {
			return fmt.Errorf("sim: record on unknown processor %d", proc)
		}
		if math.Abs(busy[proc]-res.BusyTime[proc]) > valTol || math.Abs(oh[proc]-res.OverheadTime[proc]) > valTol {
			return fmt.Errorf("sim: processor %d busy/overhead totals disagree with records", proc)
		}
	}

	// Precedence: a task may not be dispatched before its predecessors
	// finished.
	for ti, t := range tasks {
		for _, pi := range t.Preds {
			if byTask[ti].Dispatch < byTask[pi].Finish-valTol {
				return fmt.Errorf("sim: task %q dispatched at %g before predecessor %q finished at %g",
					t.Name, byTask[ti].Dispatch, tasks[pi].Name, byTask[pi].Finish)
			}
		}
	}

	// Order gate: dispatch instants must be non-decreasing in task order.
	if mode == ByOrder {
		inOrder := make([]*Record, len(tasks))
		for ti, t := range tasks {
			inOrder[t.Order] = byTask[ti]
		}
		for i := 1; i < len(inOrder); i++ {
			if inOrder[i].Dispatch < inOrder[i-1].Dispatch-valTol {
				return fmt.Errorf("sim: order gate violated: order %d dispatched at %g before order %d at %g",
					i, inOrder[i].Dispatch, i-1, inOrder[i-1].Dispatch)
			}
		}
	}
	return nil
}
