package sim

import (
	"math"
	"os"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// layeredTasks builds the 4-wide layered section used by the engine
// benchmarks: n tasks, each depending on the task 4 positions earlier.
func layeredTasks(n int) []*Task {
	tasks := make([]*Task, n)
	for i := range tasks {
		t := &Task{Name: "t", WorkW: 5e6, WorkA: 4e6, Order: i, LFT: 10}
		if i >= 4 {
			t.Preds = []int{i - 4}
			tasks[i-4].Succs = append(tasks[i-4].Succs, i)
		}
		tasks[i] = t
	}
	return tasks
}

// TestArenaRunZeroAllocs asserts the tentpole property at the engine level:
// a warmed arena run allocates nothing, in both dispatch modes.
func TestArenaRunZeroAllocs(t *testing.T) {
	plat := power.Transmeta5400()
	tasks := layeredTasks(64)
	for _, mode := range []Mode{ByPriority, ByOrder} {
		cfg := Config{Platform: plat, Mode: mode, Procs: 4, Policy: fixedPolicy(1),
			Overheads: power.DefaultOverheads()}
		a := NewArena()
		if _, err := a.Run(cfg, tasks); err != nil { // warm-up sizes the buffers
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := a.Run(cfg, tasks); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("mode %d: warmed arena run allocates %.1f times, want 0", mode, allocs)
		}
	}
}

// TestArenaRunMatchesFresh asserts bit-identical results between the
// package-level Run and a heavily reused arena, including when the arena
// was previously used on a larger workload (stale buffer contents).
func TestArenaRunMatchesFresh(t *testing.T) {
	plat := power.IntelXScale()
	big := layeredTasks(128)
	small := layeredTasks(16)
	cfgFor := func(mode Mode) Config {
		return Config{Platform: plat, Mode: mode, Procs: 3, Policy: fixedPolicy(2),
			Overheads: power.DefaultOverheads(), Start: 0.25}
	}
	a := NewArena()
	for _, mode := range []Mode{ByPriority, ByOrder} {
		cfg := cfgFor(mode)
		if _, err := a.Run(cfg, big); err != nil { // dirty the buffers
			t.Fatal(err)
		}
		want, err := Run(cfg, small)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 100; rep++ {
			got, err := a.Run(cfg, small)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsIdentical(t, want, got)
			if t.Failed() {
				t.Fatalf("mode %d, reuse %d: arena diverged from fresh run", mode, rep)
			}
		}
	}
}

// assertResultsIdentical compares two engine results for exact (==, not
// tolerance) equality of every schedule and energy field.
func assertResultsIdentical(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.Records) != len(got.Records) {
		t.Errorf("records: %d vs %d", len(want.Records), len(got.Records))
		return
	}
	for i := range want.Records {
		if want.Records[i] != got.Records[i] {
			t.Errorf("record %d: %+v vs %+v", i, want.Records[i], got.Records[i])
		}
	}
	if want.Finish != got.Finish {
		t.Errorf("Finish: %v vs %v", want.Finish, got.Finish)
	}
	if want.ActiveEnergy != got.ActiveEnergy || want.OverheadEnergy != got.OverheadEnergy {
		t.Errorf("energy: (%v,%v) vs (%v,%v)",
			want.ActiveEnergy, want.OverheadEnergy, got.ActiveEnergy, got.OverheadEnergy)
	}
	if want.SpeedChanges != got.SpeedChanges {
		t.Errorf("SpeedChanges: %d vs %d", want.SpeedChanges, got.SpeedChanges)
	}
	for i := range want.BusyTime {
		if want.BusyTime[i] != got.BusyTime[i] || want.OverheadTime[i] != got.OverheadTime[i] {
			t.Errorf("proc %d busy/overhead differ", i)
		}
	}
	for i := range want.FinalLevels {
		if want.FinalLevels[i] != got.FinalLevels[i] {
			t.Errorf("FinalLevels[%d]: %d vs %d", i, want.FinalLevels[i], got.FinalLevels[i])
		}
	}
}

// ---- Fuzz differential: fresh engine vs reused arena vs naive reference ----

// fuzzPlats are the platforms a fuzz workload can select.
func fuzzPlats() []*power.Platform {
	return []*power.Platform{testPlat(), power.Transmeta5400(), power.IntelXScale()}
}

// encodeWorkload serializes an order-gated workload for the fuzz corpus:
//
//	[m][plat][level][n] then per task (in dispatch order):
//	[flags][workW:2 (1e5-cycle units)][workAfrac][npreds] [npreds × pred delta]
//
// Tasks must be sorted by Order; preds must reference earlier tasks.
func encodeWorkload(m, plat, level int, tasks []*Task) []byte {
	data := []byte{byte(m), byte(plat), byte(level), byte(len(tasks))}
	for i, t := range tasks {
		var flags byte
		if t.Dummy {
			flags |= 1
		}
		wu := int(math.Round(t.WorkW / 1e5))
		if wu > 65535 {
			wu = 65535
		}
		frac := 0
		if t.WorkW > 0 {
			frac = int(math.Round(t.WorkA / t.WorkW * 255))
			if frac > 255 {
				frac = 255
			}
		}
		preds := t.Preds
		if len(preds) > 15 {
			preds = preds[:15]
		}
		data = append(data, flags, byte(wu>>8), byte(wu&0xff), byte(frac), byte(len(preds)))
		for _, p := range preds {
			data = append(data, byte(i-1-p))
		}
	}
	return data
}

// decodeWorkload is the tolerant inverse of encodeWorkload: any byte slice
// yields either a valid order-gated workload or ok=false. Out-of-range
// values are reduced modulo their domain.
func decodeWorkload(data []byte) (cfg Config, tasks []*Task, ok bool) {
	if len(data) < 4 {
		return cfg, nil, false
	}
	m := int(data[0]%8) + 1
	plat := fuzzPlats()[int(data[1])%3]
	level := int(data[2]) % plat.NumLevels()
	n := int(data[3]%96) + 1
	pos := 4
	for i := 0; i < n; i++ {
		if pos+5 > len(data) {
			break
		}
		flags := data[pos]
		wu := int(data[pos+1])<<8 | int(data[pos+2])
		frac := float64(data[pos+3]) / 255
		np := int(data[pos+4] % 16)
		pos += 5
		t := &Task{Name: "f", Node: i, Order: i}
		if flags&1 == 0 {
			t.WorkW = float64(wu) * 1e5
			t.WorkA = t.WorkW * frac
			t.LFT = 1e9
		} else {
			t.Dummy = true
		}
		for j := 0; j < np && pos < len(data); j++ {
			d := int(data[pos])
			pos++
			if i > 0 {
				t.Preds = append(t.Preds, i-1-d%i)
			}
		}
		tasks = append(tasks, t)
	}
	if len(tasks) == 0 {
		return cfg, nil, false
	}
	for i, t := range tasks {
		for _, p := range t.Preds {
			tasks[p].Succs = append(tasks[p].Succs, i)
		}
	}
	cfg = Config{
		Platform: plat,
		Overheads: power.Overheads{
			SpeedCompCycles: float64(data[2]) * 8,
			SpeedChangeTime: float64(data[0]) * 1e-6,
		},
		Mode:   ByOrder,
		Procs:  m,
		Policy: fixedPolicy(level),
		Start:  float64(data[3]%16) / 16,
	}
	return cfg, tasks, true
}

// graphSectionWorkloads converts every program section of an AND/OR graph
// into encoded engine workloads, assigning dispatch orders with the same
// canonical longest-task-first schedule the off-line phase uses. Each
// section is emitted twice: with raw WCET work, and with the overhead pad
// the off-line phase adds (power.Overheads.PadTime) — the padded variant
// reproduces bit-for-bit the work values that flow through the compile
// cache's canonical runs, so the fuzzer's corpus covers the memoized
// schedules as well as the raw ones.
func graphSectionWorkloads(tb testing.TB, g *andor.Graph, m int) [][]byte {
	tb.Helper()
	secs, err := andor.Decompose(g)
	if err != nil {
		tb.Fatal(err)
	}
	plat := power.Transmeta5400()
	fmax := plat.Max().Freq
	pads := []float64{0, power.DefaultOverheads().PadTime(plat)}
	var out [][]byte
	for _, sec := range secs.All {
		if len(sec.Nodes) == 0 {
			continue
		}
		for _, pad := range pads {
			out = append(out, encodeSectionWorkload(tb, g, sec, m, plat, fmax, pad))
		}
	}
	return out
}

// encodeSectionWorkload builds one section's canonical workload with the
// given per-task worst-case pad.
func encodeSectionWorkload(tb testing.TB, g *andor.Graph, sec *andor.Section,
	m int, plat *power.Platform, fmax, pad float64) []byte {
	tb.Helper()
	local := make(map[*andor.Node]int, len(sec.Nodes))
	for i, n := range sec.Nodes {
		local[n] = i
	}
	tasks := make([]*Task, len(sec.Nodes))
	for i, n := range sec.Nodes {
		t := &Task{Node: n.ID, Name: n.Name, Dummy: n.Kind == andor.And}
		if n.Kind == andor.Compute {
			t.WorkW = (n.WCET + pad) * fmax
			t.WorkA = t.WorkW * 2 / 3
			t.LFT = 1e9
		}
		for _, pr := range n.Preds() {
			if j, found := local[pr]; found {
				t.Preds = append(t.Preds, j)
			}
		}
		for _, su := range n.Succs() {
			if j, found := local[su]; found {
				t.Succs = append(t.Succs, j)
			}
		}
		tasks[i] = t
	}
	res, err := Run(Config{Platform: plat, Mode: ByPriority, Procs: m}, tasks)
	if err != nil {
		tb.Fatalf("canonical schedule of %s section %d: %v", g.Name, sec.ID, err)
	}
	// Renumber tasks in dispatch order so Order is the identity and
	// predecessors reference earlier indices, as the encoding needs.
	perm := make([]int, len(tasks)) // perm[old] = new
	sorted := make([]*Task, len(tasks))
	for k, rec := range res.Records {
		perm[rec.Task] = k
		sorted[k] = tasks[rec.Task]
	}
	for k, t := range sorted {
		t.Order = k
		for i := range t.Preds {
			t.Preds[i] = perm[t.Preds[i]]
		}
		t.Succs = nil
		_ = k
	}
	return encodeWorkload(m, 1, 2, sorted)
}

// FuzzEngineArenaDifferential cross-checks three implementations of the
// ByOrder dispatch semantics on fuzzed workloads: the event-driven engine
// with fresh state, the same engine on a reused arena (run three times to
// exercise buffer recycling), and the naive sequential reference scheduler.
// The corpus is seeded with the paper's Figure-3 synthetic application and
// the radar.andor workload, section by section, plus the ATR application —
// each section in both its raw and its overhead-padded form, the latter
// being exactly the workload the compile cache's canonical runs see.
func FuzzEngineArenaDifferential(f *testing.F) {
	for _, g := range []*andor.Graph{workload.Synthetic(), workload.ATR(workload.DefaultATRConfig())} {
		for _, m := range []int{2, 4} {
			for _, data := range graphSectionWorkloads(f, g, m) {
				f.Add(data)
			}
		}
	}
	if src, err := os.ReadFile("../../workloads/radar.andor"); err == nil {
		if g, err := andor.ParseText(string(src)); err == nil {
			for _, data := range graphSectionWorkloads(f, g, 3) {
				f.Add(data)
			}
		}
	}
	f.Add([]byte{2, 0, 1, 3, 0, 0, 50, 128, 0, 1, 0, 40, 200, 1, 0})
	// Reclamation-stressing seed (also committed to testdata/fuzz): one
	// section mixing near-empty and huge tasks at α ≈ 0.1 (frac 25/255),
	// chained through a dummy barrier — the high-variance, slack-rich
	// workload shape ORA's online reclamation reacts to most strongly.
	f.Add([]byte{2, 1, 3, 6,
		0, 0, 2, 25, 0,
		0, 0xEA, 0x60, 25, 1, 0,
		0, 0, 1, 25, 0,
		0, 0x75, 0x30, 25, 1, 1,
		1, 0, 0, 0, 2, 0, 2,
		0, 0x4E, 0x20, 25, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, tasks, ok := decodeWorkload(data)
		if !ok {
			t.Skip()
		}
		fresh, err := Run(cfg, tasks)
		if err != nil {
			t.Fatalf("engine rejected decoded workload: %v", err)
		}
		wantD, wantF, wantP := referenceRun(cfg, tasks)
		for _, r := range fresh.Records {
			if math.Abs(r.Dispatch-wantD[r.Task]) > 1e-9 ||
				math.Abs(r.Finish-wantF[r.Task]) > 1e-9 ||
				r.Proc != wantP[r.Task] {
				t.Fatalf("task %d: engine (d=%g f=%g p=%d) vs reference (d=%g f=%g p=%d)",
					r.Task, r.Dispatch, r.Finish, r.Proc,
					wantD[r.Task], wantF[r.Task], wantP[r.Task])
			}
		}
		a := NewArena()
		for rep := 0; rep < 3; rep++ {
			got, err := a.Run(cfg, tasks)
			if err != nil {
				t.Fatalf("arena reuse %d: %v", rep, err)
			}
			assertResultsIdentical(t, fresh, got)
			if t.Failed() {
				t.Fatalf("arena reuse %d diverged from fresh engine", rep)
			}
		}
	})
}
