package sim

import (
	"fmt"
	"sort"
	"strings"

	"andorsched/internal/power"
)

// GanttEntry is one row of a rendered schedule. Entries are produced from
// Records by the run driver (which knows task names across sections).
type GanttEntry struct {
	Proc             int
	Name             string
	Dispatch, Finish float64
	Level            int
	CompOH, ChangeOH float64
}

// Entries converts one engine run's records to Gantt entries using the
// run's task slice for names.
func Entries(tasks []*Task, records []Record) []GanttEntry {
	out := make([]GanttEntry, len(records))
	for i, r := range records {
		out[i] = GanttEntry{
			Proc: r.Proc, Name: tasks[r.Task].Name,
			Dispatch: r.Dispatch, Finish: r.Finish,
			Level: r.Level, CompOH: r.CompOH, ChangeOH: r.ChangeOH,
		}
	}
	return out
}

// Gantt renders entries as a per-processor text timeline, one line per task
// execution, for debugging and the example programs:
//
//	P0  [    0.000ms ->     5.210ms] B            467MHz@1.39V
//
// Entries from several engine runs (sections) may be concatenated; they are
// sorted by dispatch time within each processor.
func Gantt(platform *power.Platform, entries []GanttEntry) string {
	byProc := map[int][]GanttEntry{}
	var procs []int
	for _, e := range entries {
		if _, ok := byProc[e.Proc]; !ok {
			procs = append(procs, e.Proc)
		}
		byProc[e.Proc] = append(byProc[e.Proc], e)
	}
	sort.Ints(procs)
	var b strings.Builder
	for _, p := range procs {
		es := byProc[p]
		sort.Slice(es, func(i, j int) bool { return es[i].Dispatch < es[j].Dispatch })
		for _, e := range es {
			lv := platform.Levels()[e.Level]
			fmt.Fprintf(&b, "P%-2d [%9.3fms -> %9.3fms] %-12s %4.0fMHz@%.2fV",
				p, e.Dispatch*1e3, e.Finish*1e3, e.Name, lv.Freq/1e6, lv.Volt)
			if e.CompOH > 0 || e.ChangeOH > 0 {
				fmt.Fprintf(&b, "  (+comp %.1fµs, +change %.1fµs)", e.CompOH*1e6, e.ChangeOH*1e6)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
