package sim

import (
	"math/rand"
	"testing"
)

// pushLinear is the pre-optimization reference insertion: scan for the
// first queued task the new one must precede. The binary-search push must
// land every task in exactly this position.
func pushLinear(rq *readyQueue, ti int) {
	t := rq.tasks[ti]
	pos := len(rq.pq)
	for i := rq.pqHead; i < len(rq.pq); i++ {
		o := rq.tasks[rq.pq[i]]
		if t.WorkW > o.WorkW || (t.WorkW == o.WorkW && t.Node < o.Node) {
			pos = i
			break
		}
	}
	rq.pq = append(rq.pq, 0)
	copy(rq.pq[pos+1:], rq.pq[pos:])
	rq.pq[pos] = ti
}

// TestReadyQueuePushMatchesLinear drives two ByPriority queues through
// identical random push/pop interleavings — with heavy WorkW ties so the
// node-ID tie-break and the after-equals insertion rule are both exercised —
// and requires identical queue contents at every step. This is the
// differential proof that sort.Search insertion preserves the engine's
// dispatch order exactly.
func TestReadyQueuePushMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(40)
		tasks := make([]*Task, n)
		for i := range tasks {
			// Few distinct work values → many ties; a few duplicated node
			// IDs would be invalid input, so IDs stay unique but arrive in
			// random order.
			tasks[i] = &Task{Node: i, WorkW: float64(1 + rng.Intn(4))}
		}
		perm := rng.Perm(n)

		var got, want readyQueue
		got.reset(ByPriority, tasks)
		want.reset(ByPriority, tasks)
		for _, ti := range perm {
			got.push(ti)
			pushLinear(&want, ti)
			// Interleave pops to shift pqHead mid-sequence.
			if rng.Intn(3) == 0 {
				g, okG := got.peek()
				w, okW := want.peek()
				if okG != okW || (okG && g != w) {
					t.Fatalf("trial %d: peek diverged: (%d,%v) vs (%d,%v)", trial, g, okG, w, okW)
				}
				if okG {
					got.pop()
					want.pop()
				}
			}
			if len(got.pq) != len(want.pq) || got.pqHead != want.pqHead {
				t.Fatalf("trial %d: shape diverged: len %d/%d head %d/%d",
					trial, len(got.pq), len(want.pq), got.pqHead, want.pqHead)
			}
			for i := got.pqHead; i < len(got.pq); i++ {
				if got.pq[i] != want.pq[i] {
					t.Fatalf("trial %d: pq[%d] = %d, want %d (queue %v vs %v)",
						trial, i, got.pq[i], want.pq[i], got.pq[got.pqHead:], want.pq[want.pqHead:])
				}
			}
		}
		// Drain both; dispatch order must agree to the end.
		for {
			g, okG := got.peek()
			w, okW := want.peek()
			if okG != okW {
				t.Fatalf("trial %d: drain length diverged", trial)
			}
			if !okG {
				break
			}
			if g != w {
				t.Fatalf("trial %d: drain order diverged: %d vs %d", trial, g, w)
			}
			got.pop()
			want.pop()
		}
	}
}
