package sim

import (
	"math"
	"testing"
	"testing/quick"

	"andorsched/internal/power"
)

// referenceRun is an independent, deliberately naive implementation of the
// ByOrder dispatch semantics, used for differential testing against the
// event-driven engine. Because dispatch is strictly ordered, the schedule
// can be computed sequentially: task k (in order) is dispatched at
//
//	max(dispatch of task k−1, ready time, earliest processor free time)
//
// on the processor that has been idle longest. It returns dispatch/finish
// times and processor assignments.
func referenceRun(cfg Config, tasks []*Task) (dispatch, finish []float64, proc []int) {
	m := cfg.Procs
	if cfg.InitialLevels != nil {
		m = len(cfg.InitialLevels)
	}
	levels := make([]int, m)
	for i := range levels {
		levels[i] = cfg.Platform.MaxIndex()
	}
	if cfg.InitialLevels != nil {
		copy(levels, cfg.InitialLevels)
	}
	freeAt := make([]float64, m)
	for i := range freeAt {
		freeAt[i] = cfg.Start
	}
	n := len(tasks)
	dispatch = make([]float64, n)
	finish = make([]float64, n)
	proc = make([]int, n)

	byOrder := make([]int, n)
	for ti, t := range tasks {
		byOrder[t.Order] = ti
	}
	prevDispatch := cfg.Start
	for k := 0; k < n; k++ {
		ti := byOrder[k]
		t := tasks[ti]
		ready := cfg.Start
		for _, p := range t.Preds {
			if finish[p] > ready {
				ready = finish[p]
			}
		}
		// Earliest processor availability; tie-break lowest index. The
		// dispatching processor is the one idle longest at dispatch time,
		// which equals the min-freeAt processor.
		best := 0
		for i := 1; i < m; i++ {
			if freeAt[i] < freeAt[best] {
				best = i
			}
		}
		d := math.Max(prevDispatch, math.Max(ready, freeAt[best]))
		prevDispatch = d
		var compT, changeT float64
		lvl := levels[best]
		if !t.Dummy {
			compT = cfg.Overheads.CompTime(cfg.Platform.Levels()[lvl].Freq)
			if cfg.Policy != nil {
				lvl = cfg.Policy.PickLevel(t, d, levels[best])
			} else {
				lvl = cfg.Platform.MaxIndex()
				compT = 0
			}
			if lvl != levels[best] {
				changeT = cfg.Overheads.ChangeTime(cfg.Platform.Levels()[levels[best]], cfg.Platform.Levels()[lvl])
			}
		}
		exec := 0.0
		if t.WorkA > 0 {
			exec = t.WorkA / cfg.Platform.Levels()[lvl].Freq
		}
		dispatch[ti] = d
		finish[ti] = d + compT + changeT + exec
		proc[ti] = best
		levels[best] = lvl
		freeAt[best] = finish[ti]
	}
	return dispatch, finish, proc
}

// TestEngineMatchesReference differentially tests the event-driven engine
// against the sequential reference on random order-gated workloads. Every
// workload also runs through a shared, reused Arena so the reference
// cross-checks the pooled engine path as well.
func TestEngineMatchesReference(t *testing.T) {
	plats := []*power.Platform{testPlat(), power.IntelXScale(), power.Transmeta5400()}
	arena := NewArena()
	prop := func(seed int64) bool {
		rnd := newLCG(uint64(seed))
		plat := plats[int(rnd.next()%3)]
		m := 1 + int(rnd.next()%4)
		n := 1 + int(rnd.next()%24)
		tasks := make([]*Task, n)
		for i := 0; i < n; i++ {
			w := 1e6 + float64(rnd.next()%400)*1e6
			tasks[i] = &Task{
				Name: "t", Node: i, Order: i,
				WorkW: w, WorkA: w * (0.3 + 0.7*rnd.float()),
				LFT: 1e9, // not exercised by fixed policies
			}
			if rnd.next()%4 == 0 {
				tasks[i].Dummy = true
				tasks[i].WorkW, tasks[i].WorkA = 0, 0
			}
			// Random predecessors among earlier tasks (respecting order).
			for j := 0; j < i; j++ {
				if rnd.next()%7 == 0 {
					tasks[i].Preds = append(tasks[i].Preds, j)
					tasks[j].Succs = append(tasks[j].Succs, i)
				}
			}
		}
		cfg := Config{
			Platform: plat,
			Overheads: power.Overheads{
				SpeedCompCycles: float64(rnd.next() % 2000),
				SpeedChangeTime: rnd.float() * 1e-4,
			},
			Mode:   ByOrder,
			Procs:  m,
			Policy: fixedPolicy(int(rnd.next()) % plat.NumLevels()),
			Start:  rnd.float(),
		}
		if cfg.Policy.(fixedPolicy) < 0 {
			cfg.Policy = fixedPolicy(-int(cfg.Policy.(fixedPolicy)))
		}
		res, err := Run(cfg, tasks)
		if err != nil {
			t.Logf("seed %d: engine: %v", seed, err)
			return false
		}
		wantD, wantF, wantP := referenceRun(cfg, tasks)
		for _, r := range res.Records {
			if math.Abs(r.Dispatch-wantD[r.Task]) > 1e-9 ||
				math.Abs(r.Finish-wantF[r.Task]) > 1e-9 ||
				r.Proc != wantP[r.Task] {
				t.Logf("seed %d task %d: engine (d=%g f=%g p=%d) vs reference (d=%g f=%g p=%d)",
					seed, r.Task, r.Dispatch, r.Finish, r.Proc,
					wantD[r.Task], wantF[r.Task], wantP[r.Task])
				return false
			}
		}
		pooled, err := arena.Run(cfg, tasks)
		if err != nil {
			t.Logf("seed %d: arena: %v", seed, err)
			return false
		}
		assertResultsIdentical(t, res, pooled)
		if t.Failed() {
			t.Logf("seed %d: pooled engine diverged from fresh engine", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// lcg is a tiny generator for the differential test's inputs.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }
func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 11
}
func (l *lcg) float() float64 { return float64(l.next()%1e9) / 1e9 }
