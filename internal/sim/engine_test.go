package sim

import (
	"math"
	"strings"
	"testing"

	"andorsched/internal/power"
)

// testPlat is a simple 3-level platform: 100/200/400 MHz.
func testPlat() *power.Platform {
	return power.NewPlatform("test", []power.Level{
		power.MHz(100, 1.0), power.MHz(200, 1.2), power.MHz(400, 1.5),
	})
}

// fixedPolicy always picks one level.
type fixedPolicy int

func (f fixedPolicy) PickLevel(*Task, float64, int) int { return int(f) }

// task builds a compute task with work in mega-cycles.
func task(name string, workW, workA float64, preds, succs []int) *Task {
	return &Task{Name: name, WorkW: workW * 1e6, WorkA: workA * 1e6, Preds: preds, Succs: succs}
}

func TestSingleTaskTimingAndEnergy(t *testing.T) {
	p := testPlat()
	// 400 mega-cycles at 400MHz → 1s.
	res, err := Run(Config{Platform: p, Mode: ByPriority, Procs: 1}, []*Task{
		task("a", 400, 400, nil, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(res.Finish, 1.0) {
		t.Errorf("Finish = %g, want 1", res.Finish)
	}
	if !closeTo(res.BusyTime[0], 1.0) {
		t.Errorf("BusyTime = %g", res.BusyTime[0])
	}
	wantE := p.PowerAt(2) * 1.0
	if !closeTo(res.ActiveEnergy, wantE) {
		t.Errorf("ActiveEnergy = %g, want %g", res.ActiveEnergy, wantE)
	}
	if res.SpeedChanges != 0 || res.OverheadEnergy != 0 {
		t.Error("no-overhead run should have no changes or overhead energy")
	}
	if len(res.Records) != 1 || res.Records[0].Level != 2 {
		t.Errorf("records = %+v", res.Records)
	}
}

func TestPolicyLevelAndChangeOverhead(t *testing.T) {
	p := testPlat()
	ov := power.Overheads{SpeedCompCycles: 100e6, SpeedChangeTime: 0.25}
	// Two sequential tasks at level 0 (100MHz). Processor starts at max
	// (level 2, 400MHz).
	tasks := []*Task{
		task("a", 100, 100, nil, []int{1}),
		task("b", 100, 100, []int{0}, nil),
	}
	res, err := Run(Config{
		Platform: p, Overheads: ov, Mode: ByPriority, Procs: 1,
		Policy: fixedPolicy(0),
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Task a: comp 100Mc at 400MHz = 0.25s, change 0.25s, exec 100Mc at
	// 100MHz = 1s → finish 1.5. Task b: comp 100Mc at 100MHz = 1s, no
	// change, exec 1s → finish 3.5.
	if !closeTo(res.Finish, 3.5) {
		t.Errorf("Finish = %g, want 3.5", res.Finish)
	}
	if res.SpeedChanges != 1 {
		t.Errorf("SpeedChanges = %d, want 1", res.SpeedChanges)
	}
	ra, rb := res.Records[0], res.Records[1]
	if !closeTo(ra.CompOH, 0.25) || !closeTo(ra.ChangeOH, 0.25) || !closeTo(ra.Start, 0.5) {
		t.Errorf("record a = %+v", ra)
	}
	if !closeTo(rb.CompOH, 1.0) || rb.ChangeOH != 0 || !closeTo(rb.Start, 2.5) {
		t.Errorf("record b = %+v", rb)
	}
	// Energy: active 2s at P0; overhead: comp a at P2 (0.25s), change at
	// max(P2,P0)=P2 (0.25s), comp b at P0 (1s).
	wantActive := 2 * p.PowerAt(0)
	wantOver := 0.5*p.PowerAt(2) + 1*p.PowerAt(0)
	if !closeTo(res.ActiveEnergy, wantActive) {
		t.Errorf("ActiveEnergy = %g, want %g", res.ActiveEnergy, wantActive)
	}
	if !closeTo(res.OverheadEnergy, wantOver) {
		t.Errorf("OverheadEnergy = %g, want %g", res.OverheadEnergy, wantOver)
	}
	if res.FinalLevels[0] != 0 {
		t.Errorf("FinalLevels = %v", res.FinalLevels)
	}
}

func TestVoltageSlewCharged(t *testing.T) {
	p := testPlat() // volts 1.0 / 1.2 / 1.5
	ov := power.Overheads{SpeedChangeTime: 0.1, VoltSlewTime: 1.0}
	// One task forced from the max level (1.5V) to level 0 (1.0V):
	// change = 0.1 + 1.0×0.5 = 0.6s; exec 100Mc at 100MHz = 1s.
	res, err := Run(Config{
		Platform: p, Overheads: ov, Mode: ByPriority, Procs: 1,
		Policy: fixedPolicy(0),
	}, []*Task{task("a", 100, 100, nil, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(res.Records[0].ChangeOH, 0.6) {
		t.Errorf("ChangeOH = %g, want 0.6 (fixed + slew)", res.Records[0].ChangeOH)
	}
	if !closeTo(res.Finish, 1.6) {
		t.Errorf("Finish = %g, want 1.6", res.Finish)
	}
}

func TestLTFPriority(t *testing.T) {
	// Three ready tasks, one processor: longest goes first.
	tasks := []*Task{
		task("short", 100, 100, nil, nil),
		task("long", 400, 400, nil, nil),
		task("mid", 200, 200, nil, nil),
	}
	res, err := Run(Config{Platform: testPlat(), Mode: ByPriority, Procs: 1}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{}
	for _, r := range res.Records {
		got = append(got, tasks[r.Task].Name)
	}
	if strings.Join(got, ",") != "long,mid,short" {
		t.Errorf("dispatch order = %v, want longest first", got)
	}
}

func TestLTFTieBreakByNodeID(t *testing.T) {
	tasks := []*Task{
		{Node: 5, Name: "n5", WorkW: 100, WorkA: 100},
		{Node: 2, Name: "n2", WorkW: 100, WorkA: 100},
	}
	res, err := Run(Config{Platform: testPlat(), Mode: ByPriority, Procs: 1}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[res.Records[0].Task].Name != "n2" {
		t.Error("equal-length tie should break by node ID")
	}
}

func TestTwoProcessorsRunInParallel(t *testing.T) {
	tasks := []*Task{
		task("a", 400, 400, nil, nil),
		task("b", 400, 400, nil, nil),
	}
	res, err := Run(Config{Platform: testPlat(), Mode: ByPriority, Procs: 2}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(res.Finish, 1.0) {
		t.Errorf("parallel Finish = %g, want 1", res.Finish)
	}
	if res.Records[0].Proc == res.Records[1].Proc {
		t.Error("tasks should run on different processors")
	}
}

func TestPrecedenceRespected(t *testing.T) {
	// b depends on a; even with two processors, b starts after a ends.
	tasks := []*Task{
		task("a", 200, 200, nil, []int{1}),
		task("b", 200, 200, []int{0}, nil),
	}
	res, err := Run(Config{Platform: testPlat(), Mode: ByPriority, Procs: 2}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(res.Finish, 1.0) { // 2×(200Mc at 400MHz = .5s)
		t.Errorf("Finish = %g, want 1", res.Finish)
	}
}

func TestOrderGateForcesSleep(t *testing.T) {
	// Order 0 = "slowgate" (long), order 1 = "blocked" depends on nothing,
	// order 2 = "after". With 2 processors and ByOrder: t0 dispatches
	// slowgate on P0; blocked (order 1) is ready and dispatches on P1.
	// Make instead: order 1 NOT ready until slowgate finishes, while
	// order 2 IS ready: P1 must sleep rather than run order 2 early.
	tasks := []*Task{
		{Name: "gate", WorkW: 400e6, WorkA: 400e6, Order: 0, Succs: []int{1}},
		{Name: "mid", WorkW: 100e6, WorkA: 100e6, Order: 1, Preds: []int{0}},
		{Name: "free", WorkW: 100e6, WorkA: 100e6, Order: 2},
	}
	res, err := Run(Config{Platform: testPlat(), Mode: ByOrder, Procs: 2}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	var midDispatch, freeDispatch float64
	for _, r := range res.Records {
		switch tasks[r.Task].Name {
		case "mid":
			midDispatch = r.Dispatch
		case "free":
			freeDispatch = r.Dispatch
		}
	}
	if freeDispatch < midDispatch {
		t.Errorf("order gate violated: free dispatched at %g before mid at %g", freeDispatch, midDispatch)
	}
	if !closeTo(freeDispatch, 1.0) { // both wait for gate (1s at 400MHz)
		t.Errorf("free dispatched at %g, want 1.0", freeDispatch)
	}
}

func TestByPriorityWouldViolateOrder(t *testing.T) {
	// Contrast with the above: ByPriority runs "free" immediately.
	tasks := []*Task{
		{Name: "gate", WorkW: 400e6, WorkA: 400e6, Succs: []int{1}},
		{Name: "mid", WorkW: 100e6, WorkA: 100e6, Preds: []int{0}},
		{Name: "free", WorkW: 100e6, WorkA: 100e6},
	}
	res, err := Run(Config{Platform: testPlat(), Mode: ByPriority, Procs: 2}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if tasks[r.Task].Name == "free" && r.Dispatch != 0 {
			t.Errorf("free should dispatch at 0 in priority mode, got %g", r.Dispatch)
		}
	}
}

func TestDummyTasksTakeNoTime(t *testing.T) {
	// a → and → b: the And node is transparent.
	tasks := []*Task{
		{Name: "a", WorkW: 200e6, WorkA: 200e6, Order: 0, Succs: []int{1}},
		{Name: "and", Dummy: true, Order: 1, Preds: []int{0}, Succs: []int{2}},
		{Name: "b", WorkW: 200e6, WorkA: 200e6, Order: 2, Preds: []int{1}},
	}
	ov := power.Overheads{SpeedCompCycles: 1e9, SpeedChangeTime: 10}
	res, err := Run(Config{
		Platform: testPlat(), Overheads: ov, Mode: ByOrder, Procs: 1,
		Policy: fixedPolicy(2),
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	// comp overhead: 1e9 cycles at 400MHz = 2.5s per compute task; no
	// change (policy keeps max). Dummy adds nothing.
	if !closeTo(res.Finish, 2*(2.5+0.5)) {
		t.Errorf("Finish = %g, want 6", res.Finish)
	}
	for _, r := range res.Records {
		if tasks[r.Task].Dummy && (r.CompOH != 0 || r.ChangeOH != 0 || r.Finish != r.Dispatch) {
			t.Errorf("dummy task charged time: %+v", r)
		}
	}
}

func TestStartTimeAndInitialLevels(t *testing.T) {
	p := testPlat()
	tasks := []*Task{task("a", 100, 100, nil, nil)}
	res, err := Run(Config{
		Platform: p, Mode: ByPriority, Start: 5.0,
		InitialLevels: []int{0}, // 100MHz
		Policy:        fixedPolicy(0),
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(res.Finish, 6.0) {
		t.Errorf("Finish = %g, want 6 (start 5 + 1s at 100MHz)", res.Finish)
	}
	if res.SpeedChanges != 0 {
		t.Error("no change expected when initial level matches policy")
	}
}

func TestErrors(t *testing.T) {
	p := testPlat()
	t.Run("no processors", func(t *testing.T) {
		if _, err := Run(Config{Platform: p}, nil); err == nil {
			t.Error("want error")
		}
	})
	t.Run("cyclic preds deadlock", func(t *testing.T) {
		tasks := []*Task{
			{Name: "a", WorkW: 1e6, WorkA: 1e6, Preds: []int{1}, Succs: []int{1}},
			{Name: "b", WorkW: 1e6, WorkA: 1e6, Preds: []int{0}, Succs: []int{0}},
		}
		if _, err := Run(Config{Platform: p, Mode: ByPriority, Procs: 1}, tasks); err == nil {
			t.Error("want deadlock error")
		}
	})
	t.Run("bad order permutation", func(t *testing.T) {
		tasks := []*Task{
			{Name: "a", WorkW: 1e6, WorkA: 1e6, Order: 0},
			{Name: "b", WorkW: 1e6, WorkA: 1e6, Order: 0},
		}
		if _, err := Run(Config{Platform: p, Mode: ByOrder, Procs: 1}, tasks); err == nil {
			t.Error("want order error")
		}
	})
	t.Run("actual exceeds worst", func(t *testing.T) {
		tasks := []*Task{{Name: "a", WorkW: 1e6, WorkA: 2e6}}
		if _, err := Run(Config{Platform: p, Mode: ByPriority, Procs: 1}, tasks); err == nil {
			t.Error("want work error")
		}
	})
	t.Run("bad pred index", func(t *testing.T) {
		tasks := []*Task{{Name: "a", WorkW: 1e6, WorkA: 1e6, Preds: []int{9}}}
		if _, err := Run(Config{Platform: p, Mode: ByPriority, Procs: 1}, tasks); err == nil {
			t.Error("want index error")
		}
	})
	t.Run("empty task list", func(t *testing.T) {
		res, err := Run(Config{Platform: p, Mode: ByOrder, Procs: 2, Start: 3}, nil)
		if err != nil || res.Finish != 3 {
			t.Errorf("empty run: %v finish=%v", err, res.Finish)
		}
	})
	t.Run("procs disagree with initial levels", func(t *testing.T) {
		tasks := []*Task{task("a", 100, 100, nil, nil)}
		_, err := Run(Config{Platform: p, Mode: ByPriority, Procs: 3, InitialLevels: []int{0, 1}}, tasks)
		if err == nil || !strings.Contains(err.Error(), "disagrees with len(InitialLevels)") {
			t.Errorf("want mismatch error, got %v", err)
		}
	})
	t.Run("initial level out of range", func(t *testing.T) {
		tasks := []*Task{task("a", 100, 100, nil, nil)}
		for _, lv := range []int{-1, p.NumLevels()} {
			_, err := Run(Config{Platform: p, Mode: ByPriority, InitialLevels: []int{lv}}, tasks)
			if err == nil || !strings.Contains(err.Error(), "outside the platform") {
				t.Errorf("InitialLevels=[%d]: want range error, got %v", lv, err)
			}
		}
	})
	t.Run("procs matching initial levels ok", func(t *testing.T) {
		tasks := []*Task{task("a", 100, 100, nil, nil)}
		res, err := Run(Config{Platform: p, Mode: ByPriority, Procs: 2, InitialLevels: []int{0, 1}}, tasks)
		if err != nil {
			t.Fatalf("matching Procs/InitialLevels rejected: %v", err)
		}
		if len(res.BusyTime) != 2 {
			t.Errorf("got %d processors, want 2", len(res.BusyTime))
		}
	})
}

func TestTimeConservation(t *testing.T) {
	// Busy + overhead per processor never exceeds finish − start, and the
	// recorded intervals are consistent.
	p := testPlat()
	ov := power.Overheads{SpeedCompCycles: 10e6, SpeedChangeTime: 0.01}
	tasks := []*Task{
		{Name: "a", WorkW: 200e6, WorkA: 150e6, Order: 0, Succs: []int{2}},
		{Name: "b", WorkW: 300e6, WorkA: 200e6, Order: 1},
		{Name: "c", WorkW: 100e6, WorkA: 80e6, Order: 2, Preds: []int{0}},
	}
	res, err := Run(Config{
		Platform: p, Overheads: ov, Mode: ByOrder, Procs: 2,
		Policy: fixedPolicy(1), Start: 1,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.BusyTime {
		if res.BusyTime[i]+res.OverheadTime[i] > res.Finish-1+1e-12 {
			t.Errorf("proc %d used more time than elapsed", i)
		}
	}
	var busyFromRecords, ohFromRecords float64
	for _, r := range res.Records {
		busyFromRecords += r.Finish - r.Start
		ohFromRecords += r.CompOH + r.ChangeOH
		if r.Start < r.Dispatch || r.Finish < r.Start {
			t.Errorf("inconsistent record %+v", r)
		}
	}
	if !closeTo(busyFromRecords, sum(res.BusyTime)) || !closeTo(ohFromRecords, sum(res.OverheadTime)) {
		t.Error("record intervals disagree with per-proc totals")
	}
}

func TestGantt(t *testing.T) {
	p := testPlat()
	tasks := []*Task{task("alpha", 400, 400, nil, nil)}
	res, err := Run(Config{Platform: p, Mode: ByPriority, Procs: 1}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(p, Entries(tasks, res.Records))
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "P0") || !strings.Contains(out, "400MHz") {
		t.Errorf("Gantt output wrong:\n%s", out)
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9+1e-9*math.Abs(b)
}
