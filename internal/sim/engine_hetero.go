package sim

import (
	"fmt"
	"math"

	"andorsched/internal/obs"
)

// placeTol absorbs floating-point noise in the feasibility guard's rate
// comparisons, mirroring the quantization tolerance in internal/power.
const placeTol = 1e-9

// setupHetero prepares the per-class state of a heterogeneous run: the
// processor→class map, the class property tables the placement policies
// rank by, and the level policy (each class's own maximum when none is
// configured).
func (rs *runState) setupHetero(cfg *Config, m int) error {
	if rs.policy != nil {
		hp, ok := rs.policy.(HeteroPolicy)
		if !ok {
			return fmt.Errorf("sim: policy %T cannot drive a heterogeneous platform (no PickLevelHetero)", rs.policy)
		}
		rs.hpol = hp
	} else {
		rs.maxHPol.maxIdx = ensureInts(rs.maxHPol.maxIdx, rs.hp.NumClasses())
		for i := range rs.maxHPol.maxIdx {
			rs.maxHPol.maxIdx[i] = rs.hp.Class(i).Plat.MaxIndex()
		}
		rs.hpol = &rs.maxHPol
	}
	rs.place = cfg.Placement
	if rs.place == nil {
		rs.place = FastestFirst
	}
	nc := rs.hp.NumClasses()
	rs.clsEff = ensureFloats(rs.clsEff, nc)
	rs.clsEPC = ensureFloats(rs.clsEPC, nc)
	rs.clsPad = ensureFloats(rs.clsPad, nc)
	for c := 0; c < nc; c++ {
		cl := rs.hp.Class(c)
		rs.clsEff[c] = cl.EffFmax()
		rs.clsEPC[c] = cl.EnergyPerCycle()
		// The guard budgets a worst speed change plus one speed computation
		// at the class's slowest effective rate before the task's work.
		rs.clsPad[c] = cfg.Overheads.MaxChangeTime(cl.Plat) +
			cfg.Overheads.CompTime(cl.Plat.Min().Freq*cl.Speed)
	}
	rs.cls = ensureInts(rs.cls, m)
	for i := 0; i < m; i++ {
		rs.cls[i] = rs.hp.ClassOf(i)
	}
	if cap(rs.elig) < m {
		rs.elig = make([]ProcView, 0, m)
	}
	return nil
}

// dispatchReady routes to the machine model's dispatch loop.
func (rs *runState) dispatchReady() {
	if rs.hp != nil {
		rs.dispatchHetero()
	} else {
		rs.dispatch()
	}
}

// classOK is the per-class feasibility guard: may task t be placed on a
// processor of class ci right now? Canonical (ByPriority) runs admit every
// class — that is where the placement policy shapes the schedule and each
// task's class is decided. Online (ByOrder) runs pin every task to the
// class its canonical schedule ran it on: within a class the processors
// are identical, so the paper's Theorem-1 induction applies class by class
// and no task starts after its class-relative latest start time. Admitting
// any other class online — even a strictly faster one — is unsafe: a task
// migrated up and slowed to its (slow-class-derived) latest finish time
// squats on a fast processor that later tasks' canonical schedule needs,
// and the lateness cascades (a Graham timing anomaly). Dummy barrier tasks
// carry zero work and may complete on any processor.
func (rs *runState) classOK(t *Task, ci int) bool {
	if t.Dummy || rs.cfg.Mode == ByPriority {
		return true
	}
	return ci == t.CanonClass
}

// pickProcHetero chooses the processor for t: the placement policy decides
// among idle processors passing the feasibility guard. Returns -1 when no
// admissible processor is idle; the task then waits even if foreign-class
// processors sit idle (see classOK — waiting is what keeps Theorem 1's
// induction sound, and the task's own class must free up because it is
// running strictly earlier-ordered tasks).
func (rs *runState) pickProcHetero(t *Task) int {
	rs.elig = rs.elig[:0]
	for i := 0; i < rs.m; i++ {
		if rs.busy[i] {
			continue
		}
		ci := rs.cls[i]
		if !rs.classOK(t, ci) {
			continue
		}
		rs.elig = append(rs.elig, ProcView{
			Proc: i, Class: ci, FreeAt: rs.freeAt[i],
			EffFmax: rs.clsEff[ci], EnergyPerCycle: rs.clsEPC[ci],
		})
	}
	if len(rs.elig) == 0 {
		return -1
	}
	k := rs.place.Pick(t, rs.now, rs.elig)
	if k < 0 || k >= len(rs.elig) {
		panic(fmt.Sprintf("sim: placement %q returned pick %d of %d eligible", rs.place.Name(), k, len(rs.elig)))
	}
	return rs.elig[k].Proc
}

// dispatchHetero is the heterogeneous twin of dispatch: the processor is
// chosen by the placement policy, and all frequency, power and overhead
// arithmetic uses the processor class's own DVS table with work retiring at
// the effective rate Speed·f. With one class at Speed 1 every expression
// reduces bit-identically to the homogeneous loop (x·1.0 == x exactly).
func (rs *runState) dispatchHetero() {
	cfg := &rs.cfg
	res := &rs.res
	for {
		ti, ok := rs.rq.peek()
		if !ok {
			return
		}
		t := rs.tasks[ti]
		proc := rs.pickProcHetero(t)
		if proc < 0 {
			return
		}
		rs.rq.pop()
		ci := rs.cls[proc]
		c := rs.hp.Class(ci)
		plat := c.Plat
		lv := plat.Levels()
		now := rs.now
		cur := rs.levels[proc]
		lvl := cur
		var compT, changeT float64
		if !t.Dummy {
			compT = cfg.Overheads.CompTime(lv[cur].Freq * c.Speed)
			lvl = rs.hpol.PickLevelHetero(t, now, cur, ci)
			if lvl < 0 || lvl >= plat.NumLevels() {
				panic(fmt.Sprintf("sim: policy returned invalid level %d for task %q on class %q", lvl, t.Name, c.Name))
			}
			if lvl != cur {
				changeT = cfg.Overheads.ChangeTime(lv[cur], lv[lvl])
				res.SpeedChanges++
			}
		}
		var execT float64
		if t.WorkA > 0 {
			execT = t.WorkA / (lv[lvl].Freq * c.Speed)
		}
		start := now + compT + changeT
		finish := start + execT
		if rs.tracer != nil {
			if idle := now - rs.freeAt[proc]; idle > 0 {
				rs.tracer.Event(obs.Event{
					Kind: obs.EvIdle, Time: now, Proc: proc,
					Task: -1, Node: -1, Value: idle,
				})
			}
			rs.tracer.Event(obs.Event{
				Kind: obs.EvTaskDispatch, Time: now, Proc: proc,
				Task: ti, Node: t.Node, Name: t.Name,
				Level: lvl, Prev: cur, Value: compT + changeT,
			})
			if lvl != cur {
				rs.tracer.Event(obs.Event{
					Kind: obs.EvSpeedChange, Time: now, Proc: proc,
					Task: ti, Node: t.Node, Name: t.Name,
					Level: lvl, Prev: cur, Value: changeT,
				})
			}
		}
		if rs.met != nil {
			if t.Dummy {
				rs.met.dummies.Inc()
			} else {
				rs.met.tasks.Inc()
				rs.met.exec.Observe(execT)
			}
			if lvl != cur {
				rs.met.changes.Inc()
				rs.met.procChanges[proc].Inc()
			}
			if idle := now - rs.freeAt[proc]; idle > 0 {
				rs.met.idle.Observe(idle)
			}
		}
		res.Records = append(res.Records, Record{
			Task: ti, Proc: proc,
			Dispatch: now, Start: start, Finish: finish,
			Level: lvl, CompOH: compT, ChangeOH: changeT,
		})
		res.BusyTime[proc] += execT
		res.OverheadTime[proc] += compT + changeT
		// The per-class decomposition repeats each term (rather than sharing
		// a subtotal) so the scalar accumulation keeps its exact float
		// association — the 1-class degenerate case stays bit-identical to
		// the homogeneous loop.
		res.ActiveEnergy += plat.PowerAt(lvl) * execT
		res.ClassActiveEnergy[ci] += plat.PowerAt(lvl) * execT
		// Same transition-power convention as the homogeneous loop: the
		// speed computation runs at the old level, the transition at the
		// higher-powered of the two.
		res.OverheadEnergy += plat.PowerAt(cur) * compT
		res.OverheadEnergy += math.Max(plat.PowerAt(cur), plat.PowerAt(lvl)) * changeT
		res.ClassOverheadEnergy[ci] += plat.PowerAt(cur) * compT
		res.ClassOverheadEnergy[ci] += math.Max(plat.PowerAt(cur), plat.PowerAt(lvl)) * changeT
		rs.levels[proc] = lvl
		if finish == now {
			rs.complete(proc, ti, now)
			if rs.dispatchErr != nil {
				return
			}
			continue
		}
		rs.busy[proc] = true
		rs.events.push(event{time: finish, seq: rs.seq, proc: proc, task: ti})
		rs.seq++
	}
}
