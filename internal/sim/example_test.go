package sim_test

import (
	"fmt"

	"andorsched/internal/power"
	"andorsched/internal/sim"
)

// Example runs the engine directly on a tiny order-gated section: two
// parallel 200-megacycle tasks and a dependent 100-megacycle task, on two
// 400 MHz processors (the higher layers in internal/core normally drive
// this for you).
func Example() {
	plat := power.NewPlatform("demo", []power.Level{power.MHz(400, 1.2)})
	tasks := []*sim.Task{
		{Name: "a", WorkW: 200e6, WorkA: 200e6, Order: 0, Succs: []int{2}},
		{Name: "b", WorkW: 200e6, WorkA: 200e6, Order: 1},
		{Name: "c", WorkW: 100e6, WorkA: 100e6, Order: 2, Preds: []int{0}},
	}
	res, err := sim.Run(sim.Config{Platform: plat, Mode: sim.ByOrder, Procs: 2}, tasks)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("finish %.2fs after %d dispatches\n", res.Finish, len(res.Records))
	for _, r := range res.Records {
		fmt.Printf("%s on P%d [%.2f, %.2f]\n", tasks[r.Task].Name, r.Proc, r.Dispatch, r.Finish)
	}
	// Output:
	// finish 0.75s after 3 dispatches
	// a on P0 [0.00, 0.50]
	// b on P1 [0.00, 0.50]
	// c on P0 [0.50, 0.75]
}
