package sim

import (
	"fmt"
	"math"
	"sort"

	"andorsched/internal/obs"
	"andorsched/internal/power"
)

// engineMetrics holds the engine's pre-resolved instruments so the dispatch
// loop never takes the registry lock or formats metric names.
type engineMetrics struct {
	tasks, dummies, changes *obs.Counter
	exec, idle              *obs.Histogram
	procChanges             []*obs.Counter
}

func newEngineMetrics(m *obs.Metrics, procs int) *engineMetrics {
	em := &engineMetrics{
		tasks:       m.Counter(MetricTasks),
		dummies:     m.Counter(MetricDummies),
		changes:     m.Counter(MetricSpeedChanges),
		exec:        m.Histogram(MetricExecSeconds, obs.DefaultTimeBuckets),
		idle:        m.Histogram(MetricIdleSeconds, obs.DefaultTimeBuckets),
		procChanges: make([]*obs.Counter, procs),
	}
	for i := range em.procChanges {
		em.procChanges[i] = m.Counter(MetricProcSpeedChanges(i))
	}
	return em
}

// Run simulates the execution of one program section's tasks on the
// configured multiprocessor and returns the schedule and energy breakdown.
// It is deterministic: identical inputs produce identical results.
//
// It returns an error when the input cannot execute to completion —
// cyclic dependences, an Order field that is not a permutation of 0..n-1
// in ByOrder mode, or inconsistent Preds/Succs.
//
// Run allocates fresh state per call, so the Result is independent of later
// calls. Hot loops that run many simulations should hold an Arena and call
// (*Arena).Run, which reuses the scratch state and allocates nothing in the
// steady state.
func Run(cfg Config, tasks []*Task) (*Result, error) {
	var rs runState
	return rs.run(cfg, tasks)
}

// runState is the engine's complete per-run scratch state. A fresh zero
// value is used by the package-level Run; an Arena retains one across runs
// so that its buffers are reused. All slices are resized (never shrunk) at
// the start of each run.
type runState struct {
	cfg    Config
	tasks  []*Task
	policy Policy
	maxPol maxPolicy // backing store when cfg.Policy is nil
	tracer obs.Tracer
	met    *engineMetrics

	// Heterogeneous machine state; hp == nil selects the homogeneous
	// dispatch path, byte-for-byte the original single-platform engine.
	hp      *power.Hetero
	hpol    HeteroPolicy
	maxHPol maxHeteroPolicy // backing store when cfg.Policy is nil
	place   PlacementPolicy
	cls     []int      // per-processor class index
	clsEff  []float64  // per-class effective f_max (Speed·f_max)
	clsEPC  []float64  // per-class minimal energy per cycle
	clsPad  []float64  // per-class feasibility-guard overhead pad
	elig    []ProcView // placement scratch

	m      int
	levels []int
	busy   []bool
	freeAt []float64
	npreds []int
	seen   []bool // checkTasks order-permutation scratch

	rq        readyQueue
	events    eventHeap
	seq       int
	remaining int
	now       float64

	res         Result
	dispatchErr error
}

func (rs *runState) run(cfg Config, tasks []*Task) (*Result, error) {
	m := cfg.Procs
	if cfg.Hetero != nil {
		m = cfg.Hetero.NumProcs()
		if cfg.Procs > 0 && cfg.Procs != m {
			return nil, fmt.Errorf("sim: Procs=%d disagrees with the heterogeneous platform's %d processors",
				cfg.Procs, m)
		}
		if cfg.InitialLevels != nil {
			if len(cfg.InitialLevels) != m {
				return nil, fmt.Errorf("sim: len(InitialLevels)=%d disagrees with the heterogeneous platform's %d processors",
					len(cfg.InitialLevels), m)
			}
			for i, lv := range cfg.InitialLevels {
				if n := cfg.Hetero.Class(cfg.Hetero.ClassOf(i)).Plat.NumLevels(); lv < 0 || lv >= n {
					return nil, fmt.Errorf("sim: InitialLevels[%d]=%d outside its class's %d levels", i, lv, n)
				}
			}
		}
	} else if cfg.InitialLevels != nil {
		if cfg.Procs > 0 && cfg.Procs != len(cfg.InitialLevels) {
			return nil, fmt.Errorf("sim: Procs=%d disagrees with len(InitialLevels)=%d; set one or make them match",
				cfg.Procs, len(cfg.InitialLevels))
		}
		m = len(cfg.InitialLevels)
		for i, lv := range cfg.InitialLevels {
			if lv < 0 || lv >= cfg.Platform.NumLevels() {
				return nil, fmt.Errorf("sim: InitialLevels[%d]=%d outside the platform's %d levels",
					i, lv, cfg.Platform.NumLevels())
			}
		}
	}
	if m <= 0 {
		return nil, fmt.Errorf("sim: no processors configured")
	}
	if err := rs.checkTasks(cfg, tasks); err != nil {
		return nil, err
	}

	rs.cfg = cfg
	rs.tasks = tasks
	rs.m = m
	rs.policy = cfg.Policy
	rs.hp = cfg.Hetero
	rs.hpol = nil
	rs.place = nil
	if rs.hp != nil {
		if err := rs.setupHetero(&cfg, m); err != nil {
			return nil, err
		}
	} else if rs.policy == nil {
		rs.maxPol = maxPolicy{cfg.Platform.MaxIndex()}
		rs.policy = &rs.maxPol
	}

	// Processor state. The copy below is safe even when InitialLevels
	// aliases a previous run's FinalLevels from this same arena: ensureInts
	// preserves the backing array's contents.
	rs.levels = ensureInts(rs.levels, m)
	switch {
	case cfg.InitialLevels != nil:
		copy(rs.levels, cfg.InitialLevels)
	case cfg.Hetero != nil:
		for i := range rs.levels {
			rs.levels[i] = cfg.Hetero.Class(rs.cls[i]).Plat.MaxIndex()
		}
	default:
		for i := range rs.levels {
			rs.levels[i] = cfg.Platform.MaxIndex()
		}
	}
	rs.busy = ensureBools(rs.busy, m)
	rs.freeAt = ensureFloats(rs.freeAt, m)
	for i := range rs.freeAt {
		rs.freeAt[i] = cfg.Start
	}

	res := &rs.res
	res.Records = res.Records[:0]
	res.BusyTime = ensureFloats(res.BusyTime, m)
	res.OverheadTime = ensureFloats(res.OverheadTime, m)
	for i := 0; i < m; i++ {
		res.BusyTime[i] = 0
		res.OverheadTime[i] = 0
	}
	res.Finish = cfg.Start
	res.ActiveEnergy = 0
	res.OverheadEnergy = 0
	if cfg.Hetero != nil {
		nc := cfg.Hetero.NumClasses()
		res.ClassActiveEnergy = ensureFloats(res.ClassActiveEnergy, nc)
		res.ClassOverheadEnergy = ensureFloats(res.ClassOverheadEnergy, nc)
		for i := 0; i < nc; i++ {
			res.ClassActiveEnergy[i] = 0
			res.ClassOverheadEnergy[i] = 0
		}
	} else {
		res.ClassActiveEnergy, res.ClassOverheadEnergy = nil, nil
	}
	res.SpeedChanges = 0
	res.FinalLevels = nil
	res.Metrics = nil

	// Observability: both hooks are nil-gated so the default run pays one
	// pointer comparison per hook point and allocates nothing.
	rs.tracer = cfg.Tracer
	rs.met = nil
	if cfg.Metrics != nil {
		rs.met = newEngineMetrics(cfg.Metrics, m)
	}

	// Dependence bookkeeping.
	rs.npreds = ensureInts(rs.npreds, len(tasks))
	for i, t := range tasks {
		rs.npreds[i] = len(t.Preds)
	}

	rs.rq.reset(cfg.Mode, tasks)
	for i, t := range tasks {
		if len(t.Preds) == 0 {
			rs.rq.push(i)
		}
	}

	rs.events.h = rs.events.h[:0]
	rs.seq = 0
	rs.remaining = len(tasks)
	rs.now = cfg.Start
	rs.dispatchErr = nil

	rs.dispatchReady()
	for rs.remaining > 0 {
		if rs.dispatchErr != nil {
			return nil, rs.dispatchErr
		}
		ev, ok := rs.events.pop()
		if !ok {
			return nil, fmt.Errorf("sim: deadlock with %d tasks unfinished (bad precedence or order gating)", rs.remaining)
		}
		rs.now = ev.time
		rs.complete(ev.proc, ev.task, ev.time)
		// Drain every completion at this same instant before dispatching,
		// so that simultaneously freed processors compete for the next
		// task deterministically (idle-longest first, ties by index).
		for {
			next, ok := rs.events.peek()
			if !ok || next.time != rs.now {
				break
			}
			ev, _ = rs.events.pop()
			rs.complete(ev.proc, ev.task, ev.time)
		}
		if rs.dispatchErr != nil {
			return nil, rs.dispatchErr
		}
		rs.dispatchReady()
	}
	if rs.dispatchErr != nil {
		return nil, rs.dispatchErr
	}

	res.FinalLevels = rs.levels
	if cfg.Metrics != nil {
		for i := 0; i < m; i++ {
			cfg.Metrics.Gauge(MetricProcBusy(i)).Add(res.BusyTime[i])
			cfg.Metrics.Gauge(MetricProcOverhead(i)).Add(res.OverheadTime[i])
		}
		snap := cfg.Metrics.Snapshot()
		res.Metrics = &snap
	}
	return res, nil
}

// complete marks task's execution on proc finished at time at, releasing
// the processor and its successors.
func (rs *runState) complete(proc, task int, at float64) {
	tasks := rs.tasks
	if rs.tracer != nil {
		rs.tracer.Event(obs.Event{
			Kind: obs.EvTaskFinish, Time: at, Proc: proc,
			Task: task, Node: tasks[task].Node, Name: tasks[task].Name,
			Level: rs.levels[proc], Prev: rs.levels[proc],
		})
	}
	rs.busy[proc] = false
	rs.freeAt[proc] = at
	if at > rs.res.Finish {
		rs.res.Finish = at
	}
	for _, s := range tasks[task].Succs {
		rs.npreds[s]--
		if rs.npreds[s] == 0 {
			rs.rq.push(s)
		}
		if rs.npreds[s] < 0 && rs.dispatchErr == nil {
			rs.dispatchErr = fmt.Errorf("sim: task %q completed more predecessors than it has", tasks[s].Name)
		}
	}
	rs.remaining--
}

// pickProc returns the idle processor that has been idle longest
// (lowest freeAt, ties by index), or -1.
func (rs *runState) pickProc() int {
	best := -1
	for i := 0; i < rs.m; i++ {
		if rs.busy[i] {
			continue
		}
		if best == -1 || rs.freeAt[i] < rs.freeAt[best] {
			best = i
		}
	}
	return best
}

// dispatch assigns ready tasks to idle processors until one side runs out.
func (rs *runState) dispatch() {
	cfg := &rs.cfg
	res := &rs.res
	for {
		ti, ok := rs.rq.peek()
		if !ok {
			return
		}
		proc := rs.pickProc()
		if proc < 0 {
			return
		}
		rs.rq.pop()
		t := rs.tasks[ti]
		now := rs.now
		cur := rs.levels[proc]
		lvl := cur
		var compT, changeT float64
		if !t.Dummy {
			compT = cfg.Overheads.CompTime(cfg.Platform.Levels()[cur].Freq)
			lvl = rs.policy.PickLevel(t, now, cur)
			if lvl < 0 || lvl >= cfg.Platform.NumLevels() {
				panic(fmt.Sprintf("sim: policy returned invalid level %d for task %q", lvl, t.Name))
			}
			if lvl != cur {
				changeT = cfg.Overheads.ChangeTime(cfg.Platform.Levels()[cur], cfg.Platform.Levels()[lvl])
				res.SpeedChanges++
			}
		}
		var execT float64
		if t.WorkA > 0 {
			execT = t.WorkA / cfg.Platform.Levels()[lvl].Freq
		}
		start := now + compT + changeT
		finish := start + execT
		if rs.tracer != nil {
			if idle := now - rs.freeAt[proc]; idle > 0 {
				rs.tracer.Event(obs.Event{
					Kind: obs.EvIdle, Time: now, Proc: proc,
					Task: -1, Node: -1, Value: idle,
				})
			}
			rs.tracer.Event(obs.Event{
				Kind: obs.EvTaskDispatch, Time: now, Proc: proc,
				Task: ti, Node: t.Node, Name: t.Name,
				Level: lvl, Prev: cur, Value: compT + changeT,
			})
			if lvl != cur {
				rs.tracer.Event(obs.Event{
					Kind: obs.EvSpeedChange, Time: now, Proc: proc,
					Task: ti, Node: t.Node, Name: t.Name,
					Level: lvl, Prev: cur, Value: changeT,
				})
			}
		}
		if rs.met != nil {
			if t.Dummy {
				rs.met.dummies.Inc()
			} else {
				rs.met.tasks.Inc()
				rs.met.exec.Observe(execT)
			}
			if lvl != cur {
				rs.met.changes.Inc()
				rs.met.procChanges[proc].Inc()
			}
			if idle := now - rs.freeAt[proc]; idle > 0 {
				rs.met.idle.Observe(idle)
			}
		}
		res.Records = append(res.Records, Record{
			Task: ti, Proc: proc,
			Dispatch: now, Start: start, Finish: finish,
			Level: lvl, CompOH: compT, ChangeOH: changeT,
		})
		res.BusyTime[proc] += execT
		res.OverheadTime[proc] += compT + changeT
		res.ActiveEnergy += cfg.Platform.PowerAt(lvl) * execT
		// The speed computation runs at the old level; the transition
		// is charged at the higher-powered of the two levels (the
		// paper does not specify transition power; this choice is
		// conservative and documented in DESIGN.md).
		res.OverheadEnergy += cfg.Platform.PowerAt(cur) * compT
		res.OverheadEnergy += math.Max(cfg.Platform.PowerAt(cur), cfg.Platform.PowerAt(lvl)) * changeT
		rs.levels[proc] = lvl
		if finish == now {
			// Instantaneous work (synchronization nodes): the paper's
			// scheduler handles them and immediately looks for the
			// next task, so the processor never appears busy.
			rs.complete(proc, ti, now)
			if rs.dispatchErr != nil {
				return
			}
			continue
		}
		rs.busy[proc] = true
		rs.events.push(event{time: finish, seq: rs.seq, proc: proc, task: ti})
		rs.seq++
	}
}

func (rs *runState) checkTasks(cfg Config, tasks []*Task) error {
	n := len(tasks)
	if cfg.Mode == ByOrder {
		rs.seen = ensureBools(rs.seen, n)
		for _, t := range tasks {
			if t.Order < 0 || t.Order >= n || rs.seen[t.Order] {
				return fmt.Errorf("sim: task %q has invalid or duplicate order %d", t.Name, t.Order)
			}
			rs.seen[t.Order] = true
		}
	}
	for _, t := range tasks {
		if !t.Dummy && t.WorkA > t.WorkW*(1+1e-9) {
			return fmt.Errorf("sim: task %q actual work %g exceeds worst case %g", t.Name, t.WorkA, t.WorkW)
		}
		for _, p := range t.Preds {
			if p < 0 || p >= n {
				return fmt.Errorf("sim: task %q has out-of-range predecessor %d", t.Name, p)
			}
		}
		for _, s := range t.Succs {
			if s < 0 || s >= n {
				return fmt.Errorf("sim: task %q has out-of-range successor %d", t.Name, s)
			}
		}
	}
	return nil
}

// event is a task-completion event.
type event struct {
	time float64
	seq  int // FIFO tie-break for simultaneous events
	proc int
	task int
}

// eventHeap is a binary min-heap of events ordered by (time, seq).
type eventHeap struct{ h []event }

func (e *eventHeap) less(i, j int) bool {
	if e.h[i].time != e.h[j].time {
		return e.h[i].time < e.h[j].time
	}
	return e.h[i].seq < e.h[j].seq
}

func (e *eventHeap) push(ev event) {
	e.h = append(e.h, ev)
	i := len(e.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.h[i], e.h[parent] = e.h[parent], e.h[i]
		i = parent
	}
}

func (e *eventHeap) peek() (event, bool) {
	if len(e.h) == 0 {
		return event{}, false
	}
	return e.h[0], true
}

func (e *eventHeap) pop() (event, bool) {
	if len(e.h) == 0 {
		return event{}, false
	}
	top := e.h[0]
	last := len(e.h) - 1
	e.h[0] = e.h[last]
	e.h = e.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(e.h) && e.less(l, small) {
			small = l
		}
		if r < len(e.h) && e.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		e.h[i], e.h[small] = e.h[small], e.h[i]
		i = small
	}
	return top, true
}

// readyQueue is the global ready queue. In ByOrder mode only the task with
// the next expected execution order is dispatchable (the order gate); in
// ByPriority mode the longest ready task goes first.
type readyQueue struct {
	mode  Mode
	tasks []*Task

	// ByOrder: readyByOrder[o] is the index of the ready task with order o.
	readyByOrder []int
	nextOrder    int

	// ByPriority: pq[pqHead:] is the sorted queue of ready task indices,
	// longest WCET first, ties by node ID then arrival. The head index
	// replaces re-slicing on pop so the backing array survives reuse.
	pq     []int
	pqHead int
}

// reset prepares the queue for a new run, reusing buffers.
func (rq *readyQueue) reset(mode Mode, tasks []*Task) {
	rq.mode = mode
	rq.tasks = tasks
	rq.nextOrder = 0
	rq.pq = rq.pq[:0]
	rq.pqHead = 0
	if mode == ByOrder {
		rq.readyByOrder = ensureInts(rq.readyByOrder, len(tasks))
		for i := range rq.readyByOrder {
			rq.readyByOrder[i] = -1
		}
	}
}

func (rq *readyQueue) push(ti int) {
	if rq.mode == ByOrder {
		rq.readyByOrder[rq.tasks[ti].Order] = ti
		return
	}
	// Ordered insertion: place ti before the first queued task it must
	// precede (strictly longer WCET, ties by lower node ID), after any
	// equal tasks — exactly where a stable sort of the appended element
	// would land it. The queue is sorted under this strict weak ordering,
	// so "t precedes pq[i]" is monotone in i and sort.Search finds the
	// same position the linear scan did, in O(log n) comparisons.
	t := rq.tasks[ti]
	n := len(rq.pq) - rq.pqHead
	pos := rq.pqHead + sort.Search(n, func(i int) bool {
		o := rq.tasks[rq.pq[rq.pqHead+i]]
		return t.WorkW > o.WorkW || (t.WorkW == o.WorkW && t.Node < o.Node)
	})
	rq.pq = append(rq.pq, 0)
	copy(rq.pq[pos+1:], rq.pq[pos:])
	rq.pq[pos] = ti
}

// peek returns the next dispatchable task, honoring the order gate.
func (rq *readyQueue) peek() (int, bool) {
	if rq.mode == ByOrder {
		if rq.nextOrder >= len(rq.readyByOrder) {
			return 0, false
		}
		ti := rq.readyByOrder[rq.nextOrder]
		if ti < 0 {
			return 0, false
		}
		return ti, true
	}
	if rq.pqHead >= len(rq.pq) {
		return 0, false
	}
	return rq.pq[rq.pqHead], true
}

func (rq *readyQueue) pop() {
	if rq.mode == ByOrder {
		rq.nextOrder++
		return
	}
	rq.pqHead++
}
