package sim

import (
	"fmt"
	"math"
	"sort"

	"andorsched/internal/obs"
)

// engineMetrics holds the engine's pre-resolved instruments so the dispatch
// loop never takes the registry lock or formats metric names.
type engineMetrics struct {
	tasks, dummies, changes *obs.Counter
	exec, idle              *obs.Histogram
	procChanges             []*obs.Counter
}

func newEngineMetrics(m *obs.Metrics, procs int) *engineMetrics {
	em := &engineMetrics{
		tasks:       m.Counter(MetricTasks),
		dummies:     m.Counter(MetricDummies),
		changes:     m.Counter(MetricSpeedChanges),
		exec:        m.Histogram(MetricExecSeconds, obs.DefaultTimeBuckets),
		idle:        m.Histogram(MetricIdleSeconds, obs.DefaultTimeBuckets),
		procChanges: make([]*obs.Counter, procs),
	}
	for i := range em.procChanges {
		em.procChanges[i] = m.Counter(MetricProcSpeedChanges(i))
	}
	return em
}

// Run simulates the execution of one program section's tasks on the
// configured multiprocessor and returns the schedule and energy breakdown.
// It is deterministic: identical inputs produce identical results.
//
// It returns an error when the input cannot execute to completion —
// cyclic dependences, an Order field that is not a permutation of 0..n-1
// in ByOrder mode, or inconsistent Preds/Succs.
func Run(cfg Config, tasks []*Task) (*Result, error) {
	m := cfg.Procs
	if cfg.InitialLevels != nil {
		if cfg.Procs > 0 && cfg.Procs != len(cfg.InitialLevels) {
			return nil, fmt.Errorf("sim: Procs=%d disagrees with len(InitialLevels)=%d; set one or make them match",
				cfg.Procs, len(cfg.InitialLevels))
		}
		m = len(cfg.InitialLevels)
		for i, lv := range cfg.InitialLevels {
			if lv < 0 || lv >= cfg.Platform.NumLevels() {
				return nil, fmt.Errorf("sim: InitialLevels[%d]=%d outside the platform's %d levels",
					i, lv, cfg.Platform.NumLevels())
			}
		}
	}
	if m <= 0 {
		return nil, fmt.Errorf("sim: no processors configured")
	}
	if err := checkTasks(cfg, tasks); err != nil {
		return nil, err
	}

	policy := cfg.Policy
	if policy == nil {
		policy = maxPolicy{cfg.Platform.MaxIndex()}
	}

	// Processor state.
	levels := make([]int, m)
	if cfg.InitialLevels != nil {
		copy(levels, cfg.InitialLevels)
	} else {
		for i := range levels {
			levels[i] = cfg.Platform.MaxIndex()
		}
	}
	busy := make([]bool, m)
	freeAt := make([]float64, m)
	for i := range freeAt {
		freeAt[i] = cfg.Start
	}

	res := &Result{
		BusyTime:     make([]float64, m),
		OverheadTime: make([]float64, m),
		Finish:       cfg.Start,
	}

	// Observability: both hooks are nil-gated so the default run pays one
	// pointer comparison per hook point and allocates nothing.
	tracer := cfg.Tracer
	var met *engineMetrics
	if cfg.Metrics != nil {
		met = newEngineMetrics(cfg.Metrics, m)
	}

	// Dependence bookkeeping.
	npreds := make([]int, len(tasks))
	for i, t := range tasks {
		npreds[i] = len(t.Preds)
	}

	rq := newReadyQueue(cfg.Mode, tasks)
	for i, t := range tasks {
		if len(t.Preds) == 0 {
			rq.push(i)
		}
	}

	var events eventHeap
	seq := 0
	remaining := len(tasks)
	now := cfg.Start

	var dispatchErr error
	complete := func(proc, task int, at float64) {
		if tracer != nil {
			tracer.Event(obs.Event{
				Kind: obs.EvTaskFinish, Time: at, Proc: proc,
				Task: task, Node: tasks[task].Node, Name: tasks[task].Name,
				Level: levels[proc], Prev: levels[proc],
			})
		}
		busy[proc] = false
		freeAt[proc] = at
		if at > res.Finish {
			res.Finish = at
		}
		for _, s := range tasks[task].Succs {
			npreds[s]--
			if npreds[s] == 0 {
				rq.push(s)
			}
			if npreds[s] < 0 && dispatchErr == nil {
				dispatchErr = fmt.Errorf("sim: task %q completed more predecessors than it has", tasks[s].Name)
			}
		}
		remaining--
	}

	// pickProc returns the idle processor that has been idle longest
	// (lowest freeAt, ties by index), or -1.
	pickProc := func() int {
		best := -1
		for i := 0; i < m; i++ {
			if busy[i] {
				continue
			}
			if best == -1 || freeAt[i] < freeAt[best] {
				best = i
			}
		}
		return best
	}

	dispatch := func() {
		for {
			ti, ok := rq.peek()
			if !ok {
				return
			}
			proc := pickProc()
			if proc < 0 {
				return
			}
			rq.pop()
			t := tasks[ti]
			cur := levels[proc]
			lvl := cur
			var compT, changeT float64
			if !t.Dummy {
				compT = cfg.Overheads.CompTime(cfg.Platform.Levels()[cur].Freq)
				lvl = policy.PickLevel(t, now, cur)
				if lvl < 0 || lvl >= cfg.Platform.NumLevels() {
					panic(fmt.Sprintf("sim: policy returned invalid level %d for task %q", lvl, t.Name))
				}
				if lvl != cur {
					changeT = cfg.Overheads.ChangeTime(cfg.Platform.Levels()[cur], cfg.Platform.Levels()[lvl])
					res.SpeedChanges++
				}
			}
			var execT float64
			if t.WorkA > 0 {
				execT = t.WorkA / cfg.Platform.Levels()[lvl].Freq
			}
			start := now + compT + changeT
			finish := start + execT
			if tracer != nil {
				if idle := now - freeAt[proc]; idle > 0 {
					tracer.Event(obs.Event{
						Kind: obs.EvIdle, Time: now, Proc: proc,
						Task: -1, Node: -1, Value: idle,
					})
				}
				tracer.Event(obs.Event{
					Kind: obs.EvTaskDispatch, Time: now, Proc: proc,
					Task: ti, Node: t.Node, Name: t.Name,
					Level: lvl, Prev: cur, Value: compT + changeT,
				})
				if lvl != cur {
					tracer.Event(obs.Event{
						Kind: obs.EvSpeedChange, Time: now, Proc: proc,
						Task: ti, Node: t.Node, Name: t.Name,
						Level: lvl, Prev: cur, Value: changeT,
					})
				}
			}
			if met != nil {
				if t.Dummy {
					met.dummies.Inc()
				} else {
					met.tasks.Inc()
					met.exec.Observe(execT)
				}
				if lvl != cur {
					met.changes.Inc()
					met.procChanges[proc].Inc()
				}
				if idle := now - freeAt[proc]; idle > 0 {
					met.idle.Observe(idle)
				}
			}
			res.Records = append(res.Records, Record{
				Task: ti, Proc: proc,
				Dispatch: now, Start: start, Finish: finish,
				Level: lvl, CompOH: compT, ChangeOH: changeT,
			})
			res.BusyTime[proc] += execT
			res.OverheadTime[proc] += compT + changeT
			res.ActiveEnergy += cfg.Platform.PowerAt(lvl) * execT
			// The speed computation runs at the old level; the transition
			// is charged at the higher-powered of the two levels (the
			// paper does not specify transition power; this choice is
			// conservative and documented in DESIGN.md).
			res.OverheadEnergy += cfg.Platform.PowerAt(cur) * compT
			res.OverheadEnergy += math.Max(cfg.Platform.PowerAt(cur), cfg.Platform.PowerAt(lvl)) * changeT
			levels[proc] = lvl
			if finish == now {
				// Instantaneous work (synchronization nodes): the paper's
				// scheduler handles them and immediately looks for the
				// next task, so the processor never appears busy.
				complete(proc, ti, now)
				if dispatchErr != nil {
					return
				}
				continue
			}
			busy[proc] = true
			events.push(event{time: finish, seq: seq, proc: proc, task: ti})
			seq++
		}
	}

	dispatch()
	for remaining > 0 {
		if dispatchErr != nil {
			return nil, dispatchErr
		}
		ev, ok := events.pop()
		if !ok {
			return nil, fmt.Errorf("sim: deadlock with %d tasks unfinished (bad precedence or order gating)", remaining)
		}
		now = ev.time
		complete(ev.proc, ev.task, ev.time)
		// Drain every completion at this same instant before dispatching,
		// so that simultaneously freed processors compete for the next
		// task deterministically (idle-longest first, ties by index).
		for {
			next, ok := events.peek()
			if !ok || next.time != now {
				break
			}
			ev, _ = events.pop()
			complete(ev.proc, ev.task, ev.time)
		}
		if dispatchErr != nil {
			return nil, dispatchErr
		}
		dispatch()
	}
	if dispatchErr != nil {
		return nil, dispatchErr
	}

	res.FinalLevels = levels
	if cfg.Metrics != nil {
		for i := 0; i < m; i++ {
			cfg.Metrics.Gauge(MetricProcBusy(i)).Add(res.BusyTime[i])
			cfg.Metrics.Gauge(MetricProcOverhead(i)).Add(res.OverheadTime[i])
		}
		snap := cfg.Metrics.Snapshot()
		res.Metrics = &snap
	}
	return res, nil
}

func checkTasks(cfg Config, tasks []*Task) error {
	n := len(tasks)
	if cfg.Mode == ByOrder {
		seen := make([]bool, n)
		for _, t := range tasks {
			if t.Order < 0 || t.Order >= n || seen[t.Order] {
				return fmt.Errorf("sim: task %q has invalid or duplicate order %d", t.Name, t.Order)
			}
			seen[t.Order] = true
		}
	}
	for _, t := range tasks {
		if !t.Dummy && t.WorkA > t.WorkW*(1+1e-9) {
			return fmt.Errorf("sim: task %q actual work %g exceeds worst case %g", t.Name, t.WorkA, t.WorkW)
		}
		for _, p := range t.Preds {
			if p < 0 || p >= n {
				return fmt.Errorf("sim: task %q has out-of-range predecessor %d", t.Name, p)
			}
		}
		for _, s := range t.Succs {
			if s < 0 || s >= n {
				return fmt.Errorf("sim: task %q has out-of-range successor %d", t.Name, s)
			}
		}
	}
	return nil
}

// event is a task-completion event.
type event struct {
	time float64
	seq  int // FIFO tie-break for simultaneous events
	proc int
	task int
}

// eventHeap is a binary min-heap of events ordered by (time, seq).
type eventHeap struct{ h []event }

func (e *eventHeap) less(i, j int) bool {
	if e.h[i].time != e.h[j].time {
		return e.h[i].time < e.h[j].time
	}
	return e.h[i].seq < e.h[j].seq
}

func (e *eventHeap) push(ev event) {
	e.h = append(e.h, ev)
	i := len(e.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.h[i], e.h[parent] = e.h[parent], e.h[i]
		i = parent
	}
}

func (e *eventHeap) peek() (event, bool) {
	if len(e.h) == 0 {
		return event{}, false
	}
	return e.h[0], true
}

func (e *eventHeap) pop() (event, bool) {
	if len(e.h) == 0 {
		return event{}, false
	}
	top := e.h[0]
	last := len(e.h) - 1
	e.h[0] = e.h[last]
	e.h = e.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(e.h) && e.less(l, small) {
			small = l
		}
		if r < len(e.h) && e.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		e.h[i], e.h[small] = e.h[small], e.h[i]
		i = small
	}
	return top, true
}

// readyQueue is the global ready queue. In ByOrder mode only the task with
// the next expected execution order is dispatchable (the order gate); in
// ByPriority mode the longest ready task goes first.
type readyQueue struct {
	mode  Mode
	tasks []*Task

	// ByOrder: readyByOrder[o] is the index of the ready task with order o.
	readyByOrder []int
	nextOrder    int

	// ByPriority: sorted slice of ready task indices, longest WCET first,
	// ties by node ID then index.
	pq []int
}

func newReadyQueue(mode Mode, tasks []*Task) *readyQueue {
	rq := &readyQueue{mode: mode, tasks: tasks}
	if mode == ByOrder {
		rq.readyByOrder = make([]int, len(tasks))
		for i := range rq.readyByOrder {
			rq.readyByOrder[i] = -1
		}
	}
	return rq
}

func (rq *readyQueue) push(ti int) {
	if rq.mode == ByOrder {
		rq.readyByOrder[rq.tasks[ti].Order] = ti
		return
	}
	rq.pq = append(rq.pq, ti)
	sort.SliceStable(rq.pq, func(a, b int) bool {
		ta, tb := rq.tasks[rq.pq[a]], rq.tasks[rq.pq[b]]
		if ta.WorkW != tb.WorkW {
			return ta.WorkW > tb.WorkW
		}
		return ta.Node < tb.Node
	})
}

// peek returns the next dispatchable task, honoring the order gate.
func (rq *readyQueue) peek() (int, bool) {
	if rq.mode == ByOrder {
		if rq.nextOrder >= len(rq.readyByOrder) {
			return 0, false
		}
		ti := rq.readyByOrder[rq.nextOrder]
		if ti < 0 {
			return 0, false
		}
		return ti, true
	}
	if len(rq.pq) == 0 {
		return 0, false
	}
	return rq.pq[0], true
}

func (rq *readyQueue) pop() {
	if rq.mode == ByOrder {
		rq.nextOrder++
		return
	}
	rq.pq = rq.pq[1:]
}
