package sim

import (
	"strings"
	"testing"
)

func TestTimeline(t *testing.T) {
	p, entries := exportEntries(t)
	_ = p
	var horizon float64
	for _, e := range entries {
		if e.Finish > horizon {
			horizon = e.Finish
		}
	}
	out := Timeline(entries, horizon, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // P0, P1, axis, legend
		t.Fatalf("timeline lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "P0") || !strings.Contains(lines[0], "|") ||
		!strings.HasPrefix(lines[1], "P1") {
		t.Errorf("processor rows malformed:\n%s", out)
	}
	if !strings.Contains(out, "a=alpha") || !strings.Contains(out, "b=beta") {
		t.Errorf("legend missing:\n%s", out)
	}
	// Overheads appear as '!' (the test fixture charges comp + change).
	if !strings.Contains(out, "!") {
		t.Errorf("overhead marks missing:\n%s", out)
	}
	// Both task letters appear in the rows.
	if !strings.Contains(lines[0]+lines[1], "a") || !strings.Contains(lines[0]+lines[1], "b") {
		t.Errorf("task bars missing:\n%s", out)
	}
	if got := Timeline(nil, 1, 60); !strings.Contains(got, "empty") {
		t.Error("empty timeline placeholder missing")
	}
}
