package sim

// Arena owns every piece of per-run scratch state the engine needs: the
// processor tables (levels, busy, freeAt), the dependence counters, the
// ready queue, the event heap, and the Result's record/timeline buffers.
// Acquiring one Arena per worker and reusing it across runs makes
// steady-state engine runs allocation-free: after a warm-up run on the
// largest section, (*Arena).Run performs zero heap allocations as long as
// Config.Tracer and Config.Metrics are nil.
//
// An Arena is not safe for concurrent use; use one per goroutine. Results
// are bit-identical to the package-level Run for any reuse pattern: the
// arena only recycles memory, never state.
type Arena struct {
	rs runState
}

// NewArena returns an empty Arena. Buffers grow on first use and are
// retained across runs.
func NewArena() *Arena { return &Arena{} }

// Run is the arena-threaded form of the package-level Run: identical
// semantics and bit-identical results, but all scratch state comes from the
// arena. The returned Result and every slice it references (Records,
// BusyTime, OverheadTime, FinalLevels) are owned by the arena and valid
// only until the next Run on the same arena; callers that need the data
// longer must copy it.
func (a *Arena) Run(cfg Config, tasks []*Task) (*Result, error) {
	return a.rs.run(cfg, tasks)
}

// ensureInts returns buf resized to n, reusing its backing array when the
// capacity suffices. Contents are unspecified; callers overwrite.
func ensureInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// ensureFloats is ensureInts for float64 slices.
func ensureFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// ensureBools returns buf resized to n with every element false.
func ensureBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}
