package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"andorsched/internal/power"
)

func exportEntries(t *testing.T) (*power.Platform, []GanttEntry) {
	t.Helper()
	p := testPlat()
	ov := power.Overheads{SpeedCompCycles: 10e6, SpeedChangeTime: 0.01}
	tasks := []*Task{
		{Name: "alpha", WorkW: 200e6, WorkA: 150e6, Order: 0, LFT: 10},
		{Name: "beta", WorkW: 300e6, WorkA: 200e6, Order: 1, LFT: 10},
	}
	res, err := Run(Config{
		Platform: p, Overheads: ov, Mode: ByOrder, Procs: 2, Policy: fixedPolicy(0),
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	return p, Entries(tasks, res.Records)
}

func TestChromeTrace(t *testing.T) {
	p, entries := exportEntries(t)
	data, err := ChromeTrace(p, entries)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 task events + 2 overhead events (both tasks change speed from max
	// to level 0 and pay computation overhead).
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	names := map[string]int{}
	for _, e := range events {
		names[e["name"].(string)]++
		if e["ph"] != "X" {
			t.Errorf("event phase = %v", e["ph"])
		}
		if e["dur"].(float64) <= 0 {
			t.Error("non-positive duration")
		}
	}
	if names["alpha"] != 1 || names["beta"] != 1 || names["dvs-overhead"] != 2 {
		t.Errorf("event names = %v", names)
	}
}

func TestSVG(t *testing.T) {
	p, entries := exportEntries(t)
	svg := SVG(p, entries, 5.0)
	for _, want := range []string{
		"<svg", "</svg>", "P0", "P1", "alpha", "beta", "D=5000.00ms", "rect",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Overheads render as red slivers.
	if !strings.Contains(svg, "#d33") {
		t.Error("SVG missing overhead markers")
	}
}

func TestSVGEmpty(t *testing.T) {
	p, _ := exportEntries(t)
	svg := SVG(p, nil, 0)
	if !strings.Contains(svg, "empty schedule") {
		t.Error("empty SVG placeholder missing")
	}
}
