package sim

import (
	"strings"
	"testing"

	"andorsched/internal/power"
)

// runValid produces a correct result for corruption-based negative tests.
func runValid(t *testing.T) (*power.Platform, []*Task, *Result) {
	t.Helper()
	p := testPlat()
	ov := power.Overheads{SpeedCompCycles: 10e6, SpeedChangeTime: 0.01}
	tasks := []*Task{
		{Name: "a", WorkW: 200e6, WorkA: 150e6, Order: 0, Succs: []int{2}, LFT: 100},
		{Name: "b", WorkW: 300e6, WorkA: 200e6, Order: 1, LFT: 100},
		{Name: "and", Dummy: true, Order: 2, Preds: []int{0}, Succs: []int{3}, LFT: 100},
		{Name: "c", WorkW: 100e6, WorkA: 80e6, Order: 3, Preds: []int{2}, LFT: 100},
	}
	res, err := Run(Config{
		Platform: p, Overheads: ov, Mode: ByOrder, Procs: 2,
		Policy: fixedPolicy(1), Start: 2,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	return p, tasks, res
}

func TestValidateAcceptsEngineOutput(t *testing.T) {
	p, tasks, res := runValid(t)
	if err := ValidateResult(p, ByOrder, 2, tasks, res); err != nil {
		t.Fatal(err)
	}
}

// TestValidateCatchesCorruption corrupts one aspect at a time and expects
// the oracle to flag each.
func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(tasks []*Task, res *Result)
		wantSub string
	}{
		{"missing record", func(ts []*Task, r *Result) { r.Records = r.Records[1:] }, "records for"},
		{"duplicate task", func(ts []*Task, r *Result) { r.Records[1] = r.Records[0] }, "twice"},
		{"bad level", func(ts []*Task, r *Result) { r.Records[0].Level = 99 }, "invalid level"},
		{"before start", func(ts []*Task, r *Result) { r.Records[0].Dispatch = 0 }, "before start"},
		{"overhead math", func(ts []*Task, r *Result) { r.Records[0].CompOH += 1 }, "overheads"},
		{"duration math", func(ts []*Task, r *Result) { r.Records[0].Finish += 1; r.BusyTime[r.Records[0].Proc] += 1 }, "work/freq"},
		{"busy totals", func(ts []*Task, r *Result) { r.BusyTime[0] += 5 }, "totals disagree"},
		{"order gate", func(ts []*Task, r *Result) {
			// Swap the order fields of b (dispatched first) and c
			// (dispatched last): the recorded dispatch sequence now
			// contradicts the order gate without touching any record.
			ts[1].Order, ts[3].Order = ts[3].Order, ts[1].Order
		}, "order gate"},
		{"precedence", func(ts []*Task, r *Result) {
			// Make c dispatch before its predecessor "and" finishes.
			var andFinish float64
			for _, rec := range r.Records {
				if rec.Task == 2 {
					andFinish = rec.Finish
				}
			}
			for i := range r.Records {
				rec := &r.Records[i]
				if rec.Task == 3 {
					d := rec.Finish - rec.Start
					rec.Dispatch = andFinish - 1
					rec.Start = rec.Dispatch + rec.CompOH + rec.ChangeOH
					rec.Finish = rec.Start + d
				}
			}
		}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, tasks, res := runValid(t)
			c.corrupt(tasks, res)
			err := ValidateResult(p, ByOrder, 2, tasks, res)
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

// TestValidateByPrioritySkipsOrderGate: the order-gate check applies only
// to ByOrder mode.
func TestValidateByPrioritySkipsOrderGate(t *testing.T) {
	p := testPlat()
	tasks := []*Task{
		task("long", 400, 400, nil, nil),
		task("short", 100, 100, nil, nil),
	}
	res, err := Run(Config{Platform: p, Mode: ByPriority, Procs: 1}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateResult(p, ByPriority, 0, tasks, res); err != nil {
		t.Fatal(err)
	}
}
