// Package sim implements the shared-memory multiprocessor machine model of
// the paper (§2.3) as a deterministic discrete-event simulator.
//
// The simulated system has m identical DVS processors and a global ready
// queue kept in shared memory. Each processor runs the scheduler
// independently: when idle it tries to fetch the next task from the queue;
// if the task it expects is not ready yet it goes to sleep and is woken
// when the task becomes available (the wait()/signal() protocol of the
// paper's Figure 2). The engine supports two dispatch disciplines:
//
//   - ByPriority: tasks are dequeued highest-priority-first (longest task
//     first) as soon as they are ready — used by the off-line phase to
//     build canonical schedules;
//   - ByOrder: tasks are dequeued strictly in a precomputed execution
//     order — the on-line discipline that makes greedy slack sharing safe
//     on multiprocessors (a processor sleeps while the next expected task
//     is not ready, even if later-ordered tasks are).
//
// Speed selection is delegated to a Policy; the engine charges the speed
// computation overhead (cycles at the current frequency) and, when the
// chosen level differs from the processor's current one, the voltage/speed
// change overhead, and it integrates active, overhead and idle energy using
// the power model.
//
// The engine simulates one program section at a time (between Or
// synchronization barriers); the driver in internal/core chains sections
// together and resolves Or branches.
package sim

import (
	"fmt"

	"andorsched/internal/obs"
	"andorsched/internal/power"
)

// Task is one schedulable unit handed to the engine: a computation node or
// a dummy And synchronization node of one program section. Work is measured
// in processor cycles (seconds-at-f_max × f_max), so execution time at
// frequency f is work/f.
type Task struct {
	// Node is the graph node ID, for reporting only.
	Node int
	// Name labels the task in traces.
	Name string
	// Dummy marks And synchronization nodes: zero work, dispatched like a
	// task (the paper treats synchronization nodes as dummy tasks) but with
	// no speed computation and no overheads.
	Dummy bool
	// WorkW is the task's worst-case work in cycles.
	WorkW float64
	// WorkA is the actual work in cycles for this run (0 < WorkA ≤ WorkW
	// for computation tasks; 0 for dummies).
	WorkA float64
	// LFT is the task's absolute latest finish time: the instant by which
	// the task is guaranteed to finish in the shifted canonical schedule.
	// Policies derive the slack-sharing allocation as LFT − now. Unused in
	// ByPriority mode.
	LFT float64
	// Order is the task's canonical dispatch order within its section
	// (0-based, unique). Used in ByOrder mode.
	Order int
	// SpecRemain is a policy-owned statistic the engine carries but never
	// interprets: the off-line average-case time from this task's
	// canonical dispatch to the end of its section (used by the per-PMP
	// speculation scheme).
	SpecRemain float64
	// Affinity is the task's preferred processor class plus one; zero
	// means no preference. Only the class-affinity placement policy on
	// heterogeneous platforms reads it (assigned from `@class` tags in
	// .andor workloads).
	Affinity int
	// CanonClass is the class the task ran on in the canonical schedule.
	// The heterogeneous engine's feasibility guard pins online (ByOrder)
	// dispatch to exactly this class: within a class processors are
	// identical, which is what carries the Theorem-1 safety induction to
	// unequal processors. Zero (class 0) on homogeneous platforms and in
	// canonical (ByPriority) runs, which ignore it.
	CanonClass int
	// Preds and Succs are indices into the engine's task slice.
	Preds, Succs []int
}

// Record reports one task execution.
type Record struct {
	// Task is the index of the task in the engine's input slice.
	Task int
	// Proc is the executing processor index.
	Proc int
	// Dispatch is the time the task was dequeued.
	Dispatch float64
	// Start is the time execution proper began (after overheads).
	Start float64
	// Finish is the completion time.
	Finish float64
	// Level is the platform level index the task ran at.
	Level int
	// CompOH and ChangeOH are the speed-computation and speed-change
	// overhead durations charged before Start, in seconds.
	CompOH, ChangeOH float64
}

// Result aggregates one engine run (one program section).
type Result struct {
	// Records lists task executions in dispatch order.
	Records []Record
	// Finish is the completion time of the last task (the section end).
	Finish float64
	// BusyTime and OverheadTime are per-processor seconds spent executing
	// tasks and paying power-management overheads.
	BusyTime, OverheadTime []float64
	// ActiveEnergy and OverheadEnergy are the corresponding joules. Idle
	// energy depends on the accounting horizon and is added by the caller.
	ActiveEnergy, OverheadEnergy float64
	// ClassActiveEnergy and ClassOverheadEnergy decompose the two energies
	// by processor class on heterogeneous runs (indexed by class, summing
	// exactly to the scalars above term by term); nil on homogeneous runs.
	ClassActiveEnergy, ClassOverheadEnergy []float64
	// SpeedChanges counts voltage/speed transitions.
	SpeedChanges int
	// FinalLevels is each processor's level index after the run, to carry
	// into the next section.
	FinalLevels []int
	// Metrics is a snapshot of Config.Metrics taken when the run finished;
	// nil unless a registry was configured. When the registry is shared
	// across sections or runs the snapshot reflects the accumulated state.
	Metrics *obs.Snapshot
}

// Mode selects the dispatch discipline.
type Mode uint8

const (
	// ByPriority dispatches ready tasks highest-priority-first (longest
	// task first, ties by node ID): the canonical-schedule discipline.
	ByPriority Mode = iota
	// ByOrder dispatches tasks strictly in Task.Order: the on-line
	// discipline.
	ByOrder
)

// Policy chooses the operating level for each computation task at dispatch
// time. Implementations live in internal/core (the paper's schemes).
type Policy interface {
	// PickLevel returns the platform level index to run task t, dispatched
	// at time now on a processor currently at level cur. The engine charges
	// the speed-change overhead if the returned level differs from cur.
	PickLevel(t *Task, now float64, cur int) int
}

// HeteroPolicy chooses operating levels on heterogeneous platforms, where
// a level index is only meaningful relative to a processor class's own DVS
// table. A Policy used with Config.Hetero must also implement this
// interface; Run rejects configurations where it does not.
type HeteroPolicy interface {
	// PickLevelHetero returns the level index — into the class's own
	// table — to run task t, dispatched at time now on a processor of the
	// given class currently at level cur.
	PickLevelHetero(t *Task, now float64, cur int, class int) int
}

// maxPolicy runs everything at the platform's maximum level.
type maxPolicy struct{ idx int }

func (m maxPolicy) PickLevel(*Task, float64, int) int { return m.idx }

// maxHeteroPolicy runs everything at each class's own maximum level.
type maxHeteroPolicy struct{ maxIdx []int }

func (m *maxHeteroPolicy) PickLevelHetero(_ *Task, _ float64, _ int, class int) int {
	return m.maxIdx[class]
}

// Config parameterizes an engine run.
type Config struct {
	// Platform is the processors' DVS model. Ignored when Hetero is set.
	Platform *power.Platform
	// Hetero, when non-nil, selects the heterogeneous machine model: each
	// processor belongs to a class with its own DVS table and speed
	// multiplier, processors are picked by the Placement policy behind a
	// per-class feasibility guard, and Policy (if non-nil) must implement
	// HeteroPolicy. Platform is ignored; the processor count is the
	// platform's.
	Hetero *power.Hetero
	// Placement picks the processor each ready task is dispatched on when
	// Hetero is set; nil defaults to FastestFirst (which on a single class
	// is exactly the homogeneous idle-longest-first pick). Ignored on
	// homogeneous runs.
	Placement PlacementPolicy
	// Overheads are the power-management costs. Zero values disable them
	// (used for canonical schedules and for the static schemes, which
	// perform no run-time speed computation).
	Overheads power.Overheads
	// Mode is the dispatch discipline.
	Mode Mode
	// Policy chooses levels; nil runs everything at the maximum level with
	// no overheads (canonical schedules, NPM).
	Policy Policy
	// Start is the simulation start time (the section's begin).
	Start float64
	// Procs is the processor count; used when InitialLevels is nil.
	Procs int
	// InitialLevels, if non-nil, gives each processor's level at Start and
	// implies the processor count. When Procs is also set the two must
	// agree; Run rejects mismatches.
	InitialLevels []int
	// Tracer, if non-nil, receives structured events (task dispatch/finish,
	// speed changes, idle intervals) as the simulation progresses. The nil
	// default keeps the hot path free of tracing work and allocations.
	Tracer obs.Tracer
	// Metrics, if non-nil, is updated with engine counters and histograms
	// (see the sim.Metric* name helpers); a snapshot is attached to the
	// Result. Sharing one registry across sections accumulates.
	Metrics *obs.Metrics
}

// Metrics names used by the engine. Per-processor instruments embed the
// processor index; use the helper functions to construct them.
const (
	// MetricTasks counts non-dummy task dispatches (counter).
	MetricTasks = "sim.tasks.dispatched"
	// MetricDummies counts dummy (And synchronization) dispatches (counter).
	MetricDummies = "sim.tasks.dummy"
	// MetricSpeedChanges counts voltage/speed transitions (counter).
	MetricSpeedChanges = "sim.speed.changes"
	// MetricExecSeconds is the per-task execution time histogram.
	MetricExecSeconds = "sim.task.exec_seconds"
	// MetricIdleSeconds is the per-interval processor idle time histogram.
	MetricIdleSeconds = "sim.idle.seconds"
)

// MetricProcBusy names the gauge accumulating processor i's busy seconds.
func MetricProcBusy(i int) string { return fmt.Sprintf("sim.proc.%d.busy_seconds", i) }

// MetricProcOverhead names the gauge accumulating processor i's
// power-management overhead seconds.
func MetricProcOverhead(i int) string { return fmt.Sprintf("sim.proc.%d.overhead_seconds", i) }

// MetricProcSpeedChanges names the counter of processor i's voltage/speed
// transitions.
func MetricProcSpeedChanges(i int) string { return fmt.Sprintf("sim.proc.%d.speed_changes", i) }
