package sim

import (
	"testing"
	"testing/quick"

	"andorsched/internal/power"
)

// fixedHeteroPolicy picks min(level, class max) on any class — a fixed
// policy usable on both machine models for differential testing.
type fixedHeteroPolicy struct {
	h   *power.Hetero
	lvl int
}

func (f fixedHeteroPolicy) PickLevel(*Task, float64, int) int { return f.lvl }
func (f fixedHeteroPolicy) PickLevelHetero(_ *Task, _ float64, _ int, class int) int {
	if max := f.h.Class(class).Plat.MaxIndex(); f.lvl > max {
		return max
	}
	return f.lvl
}

// TestHetero1ClassSimDifferential pins the degenerate-case contract at the
// engine level: a 1-class heterogeneous platform at Speed 1 produces
// bit-identical records, energies and level trajectories to the
// homogeneous engine, across random order-gated workloads, both dispatch
// modes, and both the fixed-level and nil (max-level) policies.
func TestHetero1ClassSimDifferential(t *testing.T) {
	plats := []*power.Platform{testPlat(), power.IntelXScale(), power.Transmeta5400()}
	prop := func(seed int64) bool {
		rnd := newLCG(uint64(seed))
		plat := plats[int(rnd.next()%3)]
		m := 1 + int(rnd.next()%4)
		hp, err := power.Homogeneous(plat, m)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + int(rnd.next()%24)
		tasks := make([]*Task, n)
		for i := 0; i < n; i++ {
			w := 1e6 + float64(rnd.next()%400)*1e6
			tasks[i] = &Task{
				Name: "t", Node: i, Order: i,
				WorkW: w, WorkA: w * (0.3 + 0.7*rnd.float()),
				LFT: 1e9,
			}
			if rnd.next()%4 == 0 {
				tasks[i].Dummy = true
				tasks[i].WorkW, tasks[i].WorkA = 0, 0
			}
			for j := 0; j < i; j++ {
				if rnd.next()%7 == 0 {
					tasks[i].Preds = append(tasks[i].Preds, j)
					tasks[j].Succs = append(tasks[j].Succs, i)
				}
			}
		}
		cfg := Config{
			Platform: plat,
			Overheads: power.Overheads{
				SpeedCompCycles: float64(rnd.next() % 2000),
				SpeedChangeTime: rnd.float() * 1e-4,
			},
			Mode:  Mode(rnd.next() % 2),
			Procs: m,
			Start: rnd.float(),
		}
		if rnd.next()%3 != 0 {
			cfg.Policy = fixedPolicy(int(rnd.next() % uint64(plat.NumLevels())))
		}
		want, err := Run(cfg, tasks)
		if err != nil {
			t.Logf("seed %d: homogeneous: %v", seed, err)
			return false
		}

		hcfg := cfg
		hcfg.Platform = nil
		hcfg.Procs = 0
		hcfg.Hetero = hp
		if cfg.Policy != nil {
			hcfg.Policy = fixedHeteroPolicy{hp, int(cfg.Policy.(fixedPolicy))}
		}
		got, err := Run(hcfg, tasks)
		if err != nil {
			t.Logf("seed %d: heterogeneous: %v", seed, err)
			return false
		}
		assertResultsIdentical(t, want, got)
		if t.Failed() {
			t.Logf("seed %d: 1-class heterogeneous run diverged from homogeneous", seed)
			return false
		}
		if err := ValidateResultHetero(hp, hcfg.Mode, hcfg.Start, tasks, got); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// bigLittlePair is a two-class test platform: one fast core and one slow
// low-voltage core with a cheaper energy-per-cycle.
func bigLittlePair() *power.Hetero {
	h, err := power.NewHetero("pair", []power.Class{
		{Name: "big", Count: 1, Plat: testPlat(), Speed: 1}, // 100–400 MHz, up to 1.5 V
		{Name: "little", Count: 1, Speed: 1, Plat: power.NewPlatform("little", []power.Level{
			power.MHz(100, 0.8),
		})},
	})
	if err != nil {
		panic(err)
	}
	return h
}

func onlineTask(workMcycles, lft float64) *Task {
	w := workMcycles * 1e6
	return &Task{Name: "t", WorkW: w, WorkA: w, LFT: lft}
}

// TestPlacementPolicyRanking exercises the three policies directly on
// synthetic processor views.
func TestPlacementPolicyRanking(t *testing.T) {
	views := []ProcView{
		{Proc: 0, Class: 0, FreeAt: 3, EffFmax: 4e8, EnergyPerCycle: 2e-9},
		{Proc: 1, Class: 0, FreeAt: 1, EffFmax: 4e8, EnergyPerCycle: 2e-9},
		{Proc: 2, Class: 1, FreeAt: 0, EffFmax: 1e8, EnergyPerCycle: 0.5e-9},
	}
	task := &Task{}
	if got := FastestFirst.Pick(task, 5, views); got != 1 {
		t.Errorf("fastest-first picked %d, want 1 (fastest class, idle longest)", got)
	}
	if got := EnergyGreedy.Pick(task, 5, views); got != 2 {
		t.Errorf("energy-greedy picked %d, want 2 (cheapest per cycle)", got)
	}
	tagged := &Task{Affinity: 2} // prefers class 1
	if got := ClassAffinity.Pick(tagged, 5, views); got != 2 {
		t.Errorf("class-affinity picked %d, want 2 (tagged class)", got)
	}
	noClass := &Task{Affinity: 7} // class absent: degrade to fastest-first
	if got := ClassAffinity.Pick(noClass, 5, views); got != 1 {
		t.Errorf("class-affinity fallback picked %d, want 1", got)
	}
	// Equal speeds: fastest-first must reduce to idle-longest, ties by
	// index — the homogeneous engine's processor pick.
	flat := []ProcView{
		{Proc: 0, Class: 0, FreeAt: 2, EffFmax: 4e8},
		{Proc: 1, Class: 0, FreeAt: 2, EffFmax: 4e8},
	}
	if got := FastestFirst.Pick(task, 5, flat); got != 0 {
		t.Errorf("fastest-first tie-break picked %d, want 0", got)
	}
}

// TestHeteroFeasibilityGuard pins the per-class guard: online (ByOrder)
// dispatch places every task only on its canonical class — even when the
// placement policy would prefer another class, and even when the only idle
// processors are elsewhere (the task waits; cross-class migration is what
// admits timing anomalies). Canonical (ByPriority) runs admit every class:
// there the placement policy decides, and the classes it picks become the
// tasks' pins.
func TestHeteroFeasibilityGuard(t *testing.T) {
	hp := bigLittlePair()
	run := func(mode Mode, place PlacementPolicy, canon int) int {
		tk := onlineTask(400, 10.0) // 1 s at big f_max, 4 s on the little core
		tk.CanonClass = canon
		res, err := Run(Config{
			Hetero: hp, Placement: place, Mode: mode,
			Policy: fixedHeteroPolicy{hp, testPlat().MaxIndex()},
		}, []*Task{tk})
		if err != nil {
			t.Fatal(err)
		}
		return res.Records[0].Proc
	}
	// Online: pinned to the canonical class, whatever the policy prefers.
	if proc := run(ByOrder, EnergyGreedy, 0); proc != 0 {
		t.Errorf("online big-pinned task placed on proc %d, want big core 0", proc)
	}
	if proc := run(ByOrder, FastestFirst, 1); proc != 1 {
		t.Errorf("online little-pinned task placed on proc %d, want little core 1", proc)
	}
	// Canonical: the policy decides freely.
	if proc := run(ByPriority, EnergyGreedy, 0); proc != 1 {
		t.Errorf("canonical energy-greedy run placed on proc %d, want little core 1", proc)
	}

	// A pinned task waits for its class even while the other class idles:
	// two big-pinned tasks share the single big core back to back.
	a := onlineTask(400, 10.0)
	a.Node, a.Order = 0, 0
	b := onlineTask(400, 10.0)
	b.Node, b.Order = 1, 1
	res, err := Run(Config{
		Hetero: hp, Placement: FastestFirst, Mode: ByOrder,
		Policy: fixedHeteroPolicy{hp, testPlat().MaxIndex()},
	}, []*Task{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Proc != 0 {
			t.Errorf("big-pinned task %d ran on proc %d, want 0", r.Task, r.Proc)
		}
	}
	if d := res.Records[1].Dispatch; d != res.Records[0].Finish {
		t.Errorf("second pinned task dispatched at %g, want %g (when the big core freed)",
			d, res.Records[0].Finish)
	}
}

// TestHeteroConfigErrors covers the heterogeneous configuration checks.
func TestHeteroConfigErrors(t *testing.T) {
	hp := bigLittlePair()
	tk := onlineTask(10, 1e9)
	if _, err := Run(Config{Hetero: hp, Procs: 5}, []*Task{tk}); err == nil {
		t.Error("Procs mismatch accepted")
	}
	if _, err := Run(Config{Hetero: hp, InitialLevels: []int{0}}, []*Task{tk}); err == nil {
		t.Error("short InitialLevels accepted")
	}
	// Level 1 is valid on the big core's table but not the little core's.
	if _, err := Run(Config{Hetero: hp, InitialLevels: []int{1, 1}}, []*Task{tk}); err == nil {
		t.Error("per-class out-of-range initial level accepted")
	}
	if _, err := Run(Config{Hetero: hp, Policy: fixedPolicy(0)}, []*Task{tk}); err == nil {
		t.Error("non-hetero policy accepted on a heterogeneous platform")
	}
	if _, err := Run(Config{Hetero: hp, InitialLevels: []int{2, 0}}, []*Task{tk}); err != nil {
		t.Errorf("valid heterogeneous config rejected: %v", err)
	}
}

// TestClassAffinitySteering runs a two-task section on the accelerator
// reference platform: the tagged task must land on the accelerator and
// finish 4× faster than its frequency alone would allow.
func TestClassAffinitySteering(t *testing.T) {
	hp := power.AccelOffload()
	ai := hp.ClassIndex("accel")
	w := 2e9 // 2 Gcycles: 1 s on the accelerator (4 × 500 MHz), ~2.9 s on a cpu
	tagged := &Task{Name: "a", Node: 0, Order: 0, WorkW: w, WorkA: w, Affinity: ai + 1, CanonClass: ai}
	plain := &Task{Name: "b", Node: 1, Order: 1, WorkW: w, WorkA: w}
	res, err := Run(Config{Hetero: hp, Placement: ClassAffinity, Mode: ByOrder}, []*Task{tagged, plain})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Task == 0 {
			if hp.ClassOf(r.Proc) != ai {
				t.Errorf("tagged task ran on class %d, want accel %d", hp.ClassOf(r.Proc), ai)
			}
			if dur := r.Finish - r.Start; dur != w/(4*500e6) {
				t.Errorf("accelerated duration %g, want %g", dur, w/(4*500e6))
			}
		}
	}
	if err := ValidateResultHetero(hp, ByOrder, 0, []*Task{tagged, plain}, res); err != nil {
		t.Error(err)
	}
}
