package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline renders entries as a compact per-processor ASCII bar, width
// columns wide, for terminal use: each task occupies a run of a repeated
// letter, power-management overheads show as '!', idle time as '.'. A
// legend maps letters back to task names.
//
//	P0 |aaaaaaaaaa!bbbbbb......|
//	P1 |...ccccccccccccc.......|
func Timeline(entries []GanttEntry, horizon float64, width int) string {
	if len(entries) == 0 || horizon <= 0 || width < 10 {
		return "(empty timeline)\n"
	}
	byProc := map[int][]GanttEntry{}
	maxProc := 0
	for _, e := range entries {
		byProc[e.Proc] = append(byProc[e.Proc], e)
		if e.Proc > maxProc {
			maxProc = e.Proc
		}
	}
	col := func(t float64) int {
		c := int(t / horizon * float64(width))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}

	// Stable letter assignment in dispatch order; repeats cycle a–z then
	// A–Z.
	letters := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	sorted := append([]GanttEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Dispatch < sorted[j].Dispatch })
	letterOf := map[string]byte{}
	var legend []string
	for _, e := range sorted {
		if _, ok := letterOf[e.Name]; !ok {
			l := letters[len(letterOf)%len(letters)]
			letterOf[e.Name] = l
			legend = append(legend, fmt.Sprintf("%c=%s", l, e.Name))
		}
	}

	var b strings.Builder
	for p := 0; p <= maxProc; p++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range byProc[p] {
			start := e.Dispatch + e.CompOH + e.ChangeOH
			for c := col(e.Dispatch); c < col(start); c++ {
				row[c] = '!'
			}
			from, to := col(start), col(e.Finish)
			if to == from && to < width {
				to++ // zero-width slots still visible
			}
			for c := from; c < to; c++ {
				row[c] = letterOf[e.Name]
			}
		}
		fmt.Fprintf(&b, "P%-2d |%s|\n", p, row)
	}
	b.WriteString("     ")
	fmt.Fprintf(&b, "0ms%s%.1fms\n", strings.Repeat(" ", width-12), horizon*1e3)
	b.WriteString("legend: " + strings.Join(legend, " ") + "\n")
	return b.String()
}
