package sim

import "fmt"

// ProcView is the per-processor state the engine exposes to a placement
// policy when it asks where to dispatch a task: the processor's identity
// and class plus the class properties placements rank by. Views are only
// built for processors that are idle and pass the engine's per-class
// feasibility guard, so a policy is free to pick any entry.
type ProcView struct {
	// Proc is the processor index.
	Proc int
	// Class is the processor's class index on the heterogeneous platform.
	Class int
	// FreeAt is the instant the processor last became idle.
	FreeAt float64
	// EffFmax is the class's maximal effective execution rate (Speed·f_max)
	// in cycles per second.
	EffFmax float64
	// EnergyPerCycle is the class's minimal achievable energy per cycle of
	// work, min over levels of P(f)/(Speed·f).
	EnergyPerCycle float64
}

// PlacementPolicy picks the processor a ready task is dispatched on. It is
// the pluggable queue-selection axis of the heterogeneous machine model:
// the engine keeps one logical ready queue per processor group and asks the
// policy which group's head processor takes the next task.
//
// Policies must be deterministic pure functions of their arguments —
// schedules are replayed and differential-tested bit-for-bit.
type PlacementPolicy interface {
	// Name returns the policy's stable identifier ("fastest-first", ...).
	Name() string
	// Pick returns the index into eligible of the processor to dispatch t
	// on. eligible is non-empty, ordered by processor index, and contains
	// only idle processors that pass the feasibility guard.
	Pick(t *Task, now float64, eligible []ProcView) int
}

// fasterView reports whether a should be preferred over b under the
// fastest-first ordering: higher effective f_max, then longer idle (lower
// FreeAt), then lower processor index. With a single class this reduces
// exactly to the homogeneous engine's idle-longest-first processor pick.
func fasterView(a, b *ProcView) bool {
	if a.EffFmax != b.EffFmax {
		return a.EffFmax > b.EffFmax
	}
	if a.FreeAt != b.FreeAt {
		return a.FreeAt < b.FreeAt
	}
	return a.Proc < b.Proc
}

// fastestOf returns the index of the best view under fasterView, scanning a
// subset selected by keep (nil keeps all). Returns -1 if nothing kept.
func fastestOf(eligible []ProcView, keep func(*ProcView) bool) int {
	best := -1
	for i := range eligible {
		if keep != nil && !keep(&eligible[i]) {
			continue
		}
		if best < 0 || fasterView(&eligible[i], &eligible[best]) {
			best = i
		}
	}
	return best
}

// fastestFirst always places on the fastest eligible class — the default
// policy, and on a 1-class platform exactly the homogeneous behavior.
type fastestFirst struct{}

func (fastestFirst) Name() string { return "fastest-first" }

func (fastestFirst) Pick(t *Task, now float64, eligible []ProcView) int {
	return fastestOf(eligible, nil)
}

// energyGreedy places on the eligible class with the lowest energy per
// cycle of work — accepting a slower processor whenever the feasibility
// guard proves the task still meets its latest finish time there. Ties fall
// back to the fastest-first ordering.
type energyGreedy struct{}

func (energyGreedy) Name() string { return "energy-greedy" }

func (energyGreedy) Pick(t *Task, now float64, eligible []ProcView) int {
	best := 0
	for i := 1; i < len(eligible); i++ {
		a, b := &eligible[i], &eligible[best]
		if a.EnergyPerCycle != b.EnergyPerCycle {
			if a.EnergyPerCycle < b.EnergyPerCycle {
				best = i
			}
			continue
		}
		if fasterView(a, b) {
			best = i
		}
	}
	return best
}

// classAffinity honors the task's class-affinity tag (Task.Affinity,
// assigned from `@class` annotations in the workload): among eligible
// processors of the preferred class it picks fastest-first; when none is
// eligible — the class is busy, absent, or infeasible for this task — it
// degrades to fastest-first over everything eligible.
type classAffinity struct{}

func (classAffinity) Name() string { return "class-affinity" }

func (classAffinity) Pick(t *Task, now float64, eligible []ProcView) int {
	if t.Affinity > 0 {
		want := t.Affinity - 1
		if i := fastestOf(eligible, func(v *ProcView) bool { return v.Class == want }); i >= 0 {
			return i
		}
	}
	return fastestOf(eligible, nil)
}

// The placement policies. All are stateless; the package-level values are
// safe for concurrent use.
var (
	FastestFirst  PlacementPolicy = fastestFirst{}
	EnergyGreedy  PlacementPolicy = energyGreedy{}
	ClassAffinity PlacementPolicy = classAffinity{}
)

// PlacementNames lists the recognized placement-policy names in display
// order.
var PlacementNames = []string{"fastest-first", "energy-greedy", "class-affinity"}

// ParsePlacement resolves a placement policy by name; the empty string
// selects the default (fastest-first).
func ParsePlacement(name string) (PlacementPolicy, error) {
	switch name {
	case "", "fastest-first":
		return FastestFirst, nil
	case "energy-greedy":
		return EnergyGreedy, nil
	case "class-affinity":
		return ClassAffinity, nil
	}
	return nil, fmt.Errorf("sim: unknown placement policy %q (want fastest-first, energy-greedy or class-affinity)", name)
}
