// Package workload builds the applications used in the paper's evaluation
// (§5): the automated target recognition (ATR) application, the synthetic
// AND/OR application of Figure 3, and random applications for property
// testing and ablations.
//
// The paper does not print the ATR dependence graph ("due to space
// limitation") and the available copy of Figure 3 is partially garbled, so
// both are reconstructions that preserve everything legible — the task
// execution-time pairs, the OR branch probabilities, the loop iteration
// distribution and the AND/OR structure the text describes. DESIGN.md §4
// records the substitutions.
package workload

import (
	"andorsched/internal/andor"
	"andorsched/internal/exectime"
)

// Random returns a random valid AND/OR application generated from the given
// seed, plus forwarding to andor.RandomGraph for custom options.
func Random(seed uint64, opts andor.RandomOpts) *andor.Graph {
	return andor.RandomGraph(exectime.NewSource(seed), opts)
}

// Task is one entry of an independent task set.
type Task struct {
	Name       string
	WCET, ACET float64
}

// Independent builds an application of independent tasks — no precedence,
// no OR structure: the first of the two models of the paper's predecessor
// [20] ("Scheduling with Dynamic Voltage/Speed Adjustment Using Slack
// Reclamation", RTSS'01). In AND/OR terms it is a single section whose
// tasks are all roots, so the same off-line/on-line machinery (canonical
// LTF schedule, order-gated greedy slack sharing) applies unchanged.
func Independent(name string, tasks []Task) *andor.Graph {
	g := andor.NewGraph(name)
	for _, t := range tasks {
		g.AddTask(t.Name, t.WCET, t.ACET)
	}
	return g
}
