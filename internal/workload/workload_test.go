package workload

import (
	"math"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
)

func TestSyntheticValid(t *testing.T) {
	g := Synthetic()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The reconstruction's inventory: 19 computation tasks (A–K and S–V
	// plus 4 unrolled loop bodies), 4 And nodes, O1/O2/O4 plus the loop's
	// 4 Or nodes.
	if got := len(g.ComputeNodes()); got != 19 {
		t.Errorf("compute nodes = %d, want 19", got)
	}
	var ands, ors int
	for _, n := range g.Nodes() {
		switch n.Kind {
		case andor.And:
			ands++
		case andor.Or:
			ors++
		}
	}
	if ands != 4 {
		t.Errorf("And nodes = %d, want 4 (A1–A4)", ands)
	}
	if ors != 7 {
		t.Errorf("Or nodes = %d, want 7 (O1, O2, O4 + 4 loop ORs)", ors)
	}
	// Legible execution-time pairs from Figure 3.
	for _, c := range []struct {
		name       string
		wcet, acet float64
	}{
		{"A", 8e-3, 5e-3}, {"B", 5e-3, 3e-3}, {"C", 4e-3, 2e-3},
		{"F", 8e-3, 6e-3}, {"G", 5e-3, 3e-3}, {"H", 10e-3, 6e-3},
		{"I", 10e-3, 8e-3}, {"J", 10e-3, 8e-3}, {"K", 5e-3, 3e-3},
		{"L#1", 4e-3, 2e-3},
	} {
		n := g.NodeByName(c.name)
		if n == nil {
			t.Fatalf("task %q missing", c.name)
		}
		if n.WCET != c.wcet || n.ACET != c.acet {
			t.Errorf("%s = %g/%g, want %g/%g", c.name, n.WCET, n.ACET, c.wcet, c.acet)
		}
	}
	// O1 branches 30/70.
	o1 := g.NodeByName("O1")
	if !near(o1.BranchProb(0), 0.30) || !near(o1.BranchProb(1), 0.70) {
		t.Error("O1 probabilities wrong")
	}
	o4 := g.NodeByName("O4")
	if !near(o4.BranchProb(0), 0.35) || !near(o4.BranchProb(1), 0.65) {
		t.Error("O4 probabilities wrong")
	}
}

func TestSyntheticPaths(t *testing.T) {
	g := Synthetic()
	s, err := andor.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	// 2 (O1) × 4 (loop iterations) × 2 (O4) = 16 execution paths.
	if got := s.NumPaths(); got != 16 {
		t.Errorf("paths = %d, want 16", got)
	}
	paths, err := s.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range paths {
		sum += p.Prob
	}
	if !near(sum, 1) {
		t.Errorf("path probabilities sum to %g", sum)
	}
	// The longest path takes the H branch (28ms of section work), all 4
	// loop iterations (16ms) and the U→V finish: A(8)+H-branch(25... )
	// Just assert the structural extremes via work sums.
	var minW, maxW float64 = math.Inf(1), 0
	for _, p := range paths {
		w := p.WCETSum()
		minW = math.Min(minW, w)
		maxW = math.Max(maxW, w)
	}
	// Shortest: A+B+C+D(17... section0 is 8+5+4+5=22) + F+G(13) + E(5) +
	// L#1(4) + S(5) + T(4) = 53ms of work.
	if !near(minW, 53e-3) {
		t.Errorf("min path work = %g, want 53ms", minW)
	}
	// Longest: 22 + H+I+J+K(35) + E(5) + 4×L(16) + S(5) + U+V(14) = 97ms.
	if !near(maxW, 97e-3) {
		t.Errorf("max path work = %g, want 97ms", maxW)
	}
}

func TestATRDefaultValid(t *testing.T) {
	g := ATR(DefaultATRConfig())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := andor.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	// One path per ROI count.
	if got := s.NumPaths(); got != 4 {
		t.Errorf("ATR paths = %d, want 4", got)
	}
	// Compute-node count: Detect + Report + Σk (k ROIs × (extract +
	// 4 matches + classify)) = 2 + (1+2+3+4)·6 = 62.
	if got := len(g.ComputeNodes()); got != 62 {
		t.Errorf("ATR compute nodes = %d, want 62", got)
	}
	// α = 0.9 everywhere.
	for _, n := range g.ComputeNodes() {
		if !near(n.ACET, 0.9*n.WCET) {
			t.Errorf("task %q ACET/WCET = %g, want 0.9", n.Name, n.ACET/n.WCET)
		}
	}
}

func TestATRBranchWorkGrowsWithROIs(t *testing.T) {
	g := ATR(DefaultATRConfig())
	s, err := andor.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := s.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	// More ROIs ⇒ strictly more work; path order follows branch order.
	for i := 1; i < len(paths); i++ {
		if paths[i].WCETSum() <= paths[i-1].WCETSum() {
			t.Errorf("path %d work %g not greater than path %d work %g",
				i, paths[i].WCETSum(), i-1, paths[i-1].WCETSum())
		}
	}
	// Branch probabilities match the configuration.
	want := DefaultATRConfig().ROIProbs
	for i, p := range paths {
		if !near(p.Prob, want[i]) {
			t.Errorf("path %d prob = %g, want %g", i, p.Prob, want[i])
		}
	}
}

func TestATRConfigValidation(t *testing.T) {
	mustPanic(t, func() { ATR(ATRConfig{MaxROIs: 0, Templates: 1}) })
	cfg := DefaultATRConfig()
	cfg.ROIProbs = []float64{1}
	mustPanic(t, func() { ATR(cfg) })
	cfg = DefaultATRConfig()
	cfg.ROIProbs = []float64{0.5, 0.5, 0.5, 0.5}
	mustPanic(t, func() { ATR(cfg) })
	cfg = DefaultATRConfig()
	cfg.Alpha = 1.5
	mustPanic(t, func() { ATR(cfg) })
}

func TestATRParameterization(t *testing.T) {
	cfg := ATRConfig{
		MaxROIs: 2, ROIProbs: []float64{0.5, 0.5}, Templates: 3, Alpha: 0.5,
		DetectWCET: 1e-3, ExtractWCET: 1e-3, MatchWCET: 1e-3,
		ClassifyWCET: 1e-3, ReportWCET: 1e-3,
	}
	g := ATR(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 + (1+2)·(1+3+1) = 17 compute nodes.
	if got := len(g.ComputeNodes()); got != 17 {
		t.Errorf("compute nodes = %d, want 17", got)
	}
}

// TestWorkloadsSchedulable: both paper workloads plan and run end-to-end
// on every paper platform and processor count used in the figures.
func TestWorkloadsSchedulable(t *testing.T) {
	for _, g := range []*andor.Graph{Synthetic(), ATR(DefaultATRConfig())} {
		for _, m := range []int{2, 4, 6} {
			for _, plat := range []*power.Platform{power.Transmeta5400(), power.IntelXScale()} {
				plan, err := core.NewPlan(g, m, plat, power.DefaultOverheads())
				if err != nil {
					t.Fatalf("%s m=%d %s: %v", g.Name, m, plat.Name, err)
				}
				res, err := plan.Run(core.RunConfig{
					Scheme: core.GSS, Deadline: plan.CTWorst / 0.8,
					Sampler: exectime.NewSampler(exectime.NewSource(1)),
				})
				if err != nil || !res.MetDeadline {
					t.Fatalf("%s m=%d %s: run failed: %v", g.Name, m, plat.Name, err)
				}
			}
		}
	}
}

func TestRandomWorkload(t *testing.T) {
	g := Random(3, andor.DefaultRandomOpts())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	h := Random(3, andor.DefaultRandomOpts())
	if g.Len() != h.Len() {
		t.Error("Random not deterministic for equal seeds")
	}
}

func near(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12+1e-9*math.Abs(b)
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
