package workload

import (
	"fmt"
	"math"

	"andorsched/internal/andor"
)

// ATRConfig parameterizes the automated target recognition application.
// The paper motivates the AND/OR model with ATR: "the number of regions of
// interest (ROI) in one frame varies substantially — for some frames the
// number of detected ROIs may be maximum and all the tasks need to be
// executed, while in most cases ... part of the application can be
// skipped". Each detected ROI is compared with all templates.
type ATRConfig struct {
	// MaxROIs is the maximum number of regions of interest per frame.
	MaxROIs int
	// ROIProbs[k] is the probability that exactly k+1 ROIs are detected;
	// must have MaxROIs entries summing to 1.
	ROIProbs []float64
	// Templates is the number of templates each ROI is matched against.
	Templates int
	// Alpha is the ACET/WCET ratio of every task. The paper measured a
	// high ratio for ATR ("little slack from the tasks' run-time
	// behavior"), reproduced here as 0.9 by default.
	Alpha float64

	// Per-task worst-case execution times in seconds.
	DetectWCET   float64 // frame-wide ROI detection
	ExtractWCET  float64 // per-ROI extraction/normalization
	MatchWCET    float64 // one ROI-template comparison
	ClassifyWCET float64 // per-ROI classification from match scores
	ReportWCET   float64 // final result assembly
}

// DefaultATRConfig returns the configuration used by the experiments: up
// to 4 ROIs with a decreasing count distribution, 4 templates, α = 0.9 and
// millisecond-scale tasks.
func DefaultATRConfig() ATRConfig {
	return ATRConfig{
		MaxROIs:      4,
		ROIProbs:     []float64{0.40, 0.30, 0.20, 0.10},
		Templates:    4,
		Alpha:        0.9,
		DetectWCET:   8 * ms,
		ExtractWCET:  3 * ms,
		MatchWCET:    5 * ms,
		ClassifyWCET: 2 * ms,
		ReportWCET:   4 * ms,
	}
}

// ATR builds the automated target recognition application graph:
//
//	Detect → O_roi ─P(1)→ fork₁ → [1 ROI pipeline ] → done₁ ─→ O_done → Report
//	               ─P(2)→ fork₂ → [2 ROI pipelines] → done₂ ─↗
//	               ⋮
//
// where one ROI pipeline is
//
//	Extract → {Match×Templates in parallel} → join(And) → Classify
//
// and fork/done are And synchronization nodes. It panics on an invalid
// configuration (workload parameters are program data, not user input).
func ATR(cfg ATRConfig) *andor.Graph {
	if cfg.MaxROIs < 1 || cfg.Templates < 1 {
		panic("workload: ATR needs at least one ROI and one template")
	}
	if len(cfg.ROIProbs) != cfg.MaxROIs {
		panic(fmt.Sprintf("workload: ATR wants %d ROI probabilities, got %d", cfg.MaxROIs, len(cfg.ROIProbs)))
	}
	var sum float64
	for _, p := range cfg.ROIProbs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("workload: ATR ROI probabilities sum to %g, want 1", sum))
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		panic(fmt.Sprintf("workload: ATR alpha %g outside (0,1]", cfg.Alpha))
	}

	g := andor.NewGraph(fmt.Sprintf("atr-%droi-%dtpl", cfg.MaxROIs, cfg.Templates))
	task := func(name string, wcet float64) *andor.Node {
		return g.AddTask(name, wcet, cfg.Alpha*wcet)
	}

	detect := task("Detect", cfg.DetectWCET)
	oroi := g.AddOr("O_roi")
	g.AddEdge(detect, oroi)
	odone := g.AddOr("O_done")

	for k := 1; k <= cfg.MaxROIs; k++ {
		fork := g.AddAnd(fmt.Sprintf("fork%d", k))
		g.AddEdge(oroi, fork)
		done := g.AddAnd(fmt.Sprintf("done%d", k))
		for r := 1; r <= k; r++ {
			extract := task(fmt.Sprintf("Extract%d.%d", k, r), cfg.ExtractWCET)
			g.AddEdge(fork, extract)
			join := g.AddAnd(fmt.Sprintf("join%d.%d", k, r))
			for t := 1; t <= cfg.Templates; t++ {
				match := task(fmt.Sprintf("Match%d.%d.%d", k, r, t), cfg.MatchWCET)
				g.AddEdge(extract, match)
				g.AddEdge(match, join)
			}
			classify := task(fmt.Sprintf("Classify%d.%d", k, r), cfg.ClassifyWCET)
			g.AddEdge(join, classify)
			g.AddEdge(classify, done)
		}
		g.AddEdge(done, odone)
	}
	g.SetBranchProbs(oroi, cfg.ROIProbs...)

	report := task("Report", cfg.ReportWCET)
	g.AddEdge(odone, report)
	return g
}
