package workload

import (
	"os"
	"path/filepath"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/sim"
)

// TestWorkloadCorpus parses, validates, plans and runs every .andor file
// shipped in workloads/ — the corpus must stay loadable and schedulable as
// the language and scheduler evolve.
func TestWorkloadCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "workloads")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".andor" {
			continue
		}
		found++
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			g, err := andor.ParseText(string(data))
			if err != nil {
				t.Fatal(err)
			}
			m, err := andor.ComputeMetrics(g)
			if err != nil {
				t.Fatal(err)
			}
			if m.Tasks < 3 || m.OrNodes < 1 {
				t.Errorf("corpus file too trivial: %+v", m)
			}
			plan, err := core.NewPlan(g, 2, power.Transmeta5400(), power.DefaultOverheads())
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(0); seed < 10; seed++ {
				res, err := plan.Run(core.RunConfig{
					Scheme: core.AS, Deadline: plan.CTWorst / 0.7,
					Sampler:  exectime.NewSampler(exectime.NewSource(seed)),
					Validate: true,
				})
				if err != nil || !res.MetDeadline || res.LSTViolations != 0 {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
	if found < 3 {
		t.Errorf("workload corpus has %d .andor files, want ≥ 3", found)
	}
}

// TestPlatformSpecCorpus parses, plans and runs every .json heterogeneous
// platform spec shipped in workloads/ (the -platform example files): each
// must stay loadable and able to schedule the ATR application safely under
// every placement policy.
func TestPlatformSpecCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "workloads")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		found++
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			hp, err := power.ParseHeteroSpec(data)
			if err != nil {
				t.Fatal(err)
			}
			g := ATR(DefaultATRConfig())
			for _, place := range []sim.PlacementPolicy{sim.FastestFirst, sim.EnergyGreedy, sim.ClassAffinity} {
				plan, err := core.NewHeteroPlan(g, hp, power.DefaultOverheads(), place)
				if err != nil {
					t.Fatalf("%s: %v", place.Name(), err)
				}
				for seed := uint64(0); seed < 5; seed++ {
					res, err := plan.Run(core.RunConfig{
						Scheme: core.AS, Deadline: plan.CTWorst / 0.7,
						Sampler:  exectime.NewSampler(exectime.NewSource(seed)),
						Validate: true,
					})
					if err != nil || !res.MetDeadline || res.LSTViolations != 0 {
						t.Fatalf("%s seed %d: err=%v met=%v lst=%d",
							place.Name(), seed, err, res.MetDeadline, res.LSTViolations)
					}
				}
			}
		})
	}
	if found < 2 {
		t.Errorf("workload corpus has %d .json platform specs, want ≥ 2", found)
	}
}
