package workload

import "andorsched/internal/andor"

// ms converts milliseconds to seconds.
const ms = 1e-3

// Synthetic builds the synthetic application of the paper's Figure 3. The
// time unit for WCET/ACET is milliseconds (the paper: "the time unit for c
// and a is in the order of millisecond").
//
// The reconstruction (the figure is partially garbled in the available
// copy) keeps all legible elements:
//
//   - tasks with execution-time pairs 8/5, 5/3, 4/2, 5/4, 8/6, 10/6, 10/8,
//     10/8, 5/3, 4/2 (WCET/ACET, ms);
//   - AND fork/join parallelism (nodes A1–A4);
//   - an OR choice with 30%/70% branches and one with 35%/65%;
//   - a loop with at most 4 iterations taken 1, 2, 3 or 4 times with
//     probabilities 50%, 20%, 5% and 25%, expanded per §2.1.
//
// Shape:
//
//	A → A1 → {B, C, D} → A2 → O1
//	O1 ─30%→ F → G ──────────────→ O2
//	   └70%→ H → A3 → {I, J} → A4 → K → O2
//	O2 → E → L#1..L#4 (loop, ≤4 iters) → L.join → S → O4
//	O4 ─35%→ T            (short finish)
//	   └65%→ U → V        (long finish)
func Synthetic() *andor.Graph {
	g := andor.NewGraph("synthetic-fig3")

	a := g.AddTask("A", 8*ms, 5*ms)
	a1 := g.AddAnd("A1")
	b := g.AddTask("B", 5*ms, 3*ms)
	c := g.AddTask("C", 4*ms, 2*ms)
	d := g.AddTask("D", 5*ms, 4*ms)
	a2 := g.AddAnd("A2")
	o1 := g.AddOr("O1")
	g.AddEdge(a, a1)
	g.AddEdge(a1, b)
	g.AddEdge(a1, c)
	g.AddEdge(a1, d)
	g.AddEdge(b, a2)
	g.AddEdge(c, a2)
	g.AddEdge(d, a2)
	g.AddEdge(a2, o1)

	// Branch 1 (30%): F → G.
	f := g.AddTask("F", 8*ms, 6*ms)
	gg := g.AddTask("G", 5*ms, 3*ms)
	g.AddEdge(f, gg)
	// Branch 2 (70%): H → A3 → {I, J} → A4 → K.
	h := g.AddTask("H", 10*ms, 6*ms)
	a3 := g.AddAnd("A3")
	i := g.AddTask("I", 10*ms, 8*ms)
	j := g.AddTask("J", 10*ms, 8*ms)
	a4 := g.AddAnd("A4")
	k := g.AddTask("K", 5*ms, 3*ms)
	g.Chain(h, a3)
	g.AddEdge(a3, i)
	g.AddEdge(a3, j)
	g.AddEdge(i, a4)
	g.AddEdge(j, a4)
	g.AddEdge(a4, k)

	o2 := g.AddOr("O2")
	g.AddEdge(o1, f)
	g.AddEdge(o1, h)
	g.SetBranchProbs(o1, 0.30, 0.70)
	g.AddEdge(gg, o2)
	g.AddEdge(k, o2)

	// After the join: E feeds the loop L (≤4 iterations of a 4/2 task).
	e := g.AddTask("E", 5*ms, 4*ms)
	g.AddEdge(o2, e)
	lEntry, lJoin := andor.ExpandLoop(g, "L", 4*ms, 2*ms, []float64{0.50, 0.20, 0.05, 0.25})
	g.AddEdge(e, lEntry)

	// Final OR choice (35%/65%) between a short and a long finish.
	s := g.AddTask("S", 5*ms, 3*ms)
	g.AddEdge(lJoin, s)
	o4 := g.AddOr("O4")
	g.AddEdge(s, o4)
	t := g.AddTask("T", 4*ms, 2*ms)
	u := g.AddTask("U", 10*ms, 8*ms)
	v := g.AddTask("V", 4*ms, 2*ms)
	g.AddEdge(u, v)
	g.AddEdge(o4, t)
	g.AddEdge(o4, u)
	g.SetBranchProbs(o4, 0.35, 0.65)

	return g
}
