package exectime

// Biased wraps a TimeSampler and scales every task's average-case time by
// a fixed factor before delegating, clamped so the effective mean never
// exceeds the worst case. It models the execution behavior of a system
// whose off-line profile is wrong: the plan was compiled with one α while
// the actual runs center on factor·ACET. A factor below 1 makes runs
// lighter than assumed (the situation online slack reclamation exploits);
// a factor above 1 makes them heavier.
type Biased struct {
	inner  TimeSampler
	factor float64
}

// NewBiased wraps inner so sampled times center on factor·ACET. It panics
// on a non-positive factor (a zero mean has no sampling interpretation).
func NewBiased(inner TimeSampler, factor float64) *Biased {
	if factor <= 0 {
		panic("exectime: Biased factor must be positive")
	}
	return &Biased{inner: inner, factor: factor}
}

// Sample draws one actual execution time around the rescaled mean.
func (b *Biased) Sample(wcet, acet float64) float64 {
	a := b.factor * acet
	if a > wcet {
		a = wcet
	}
	return b.inner.Sample(wcet, a)
}

// Source returns the wrapped sampler's random source.
func (b *Biased) Source() *Source { return b.inner.Source() }
