package exectime

import (
	"fmt"
	"sort"
)

// Empirical is a distribution of execution-time *fractions* of the WCET,
// built from profiled samples. The paper's evaluation draws actual times
// from a normal distribution; when real profiling data exists (e.g. the
// per-frame times of an ATR run), an empirical distribution reproduces the
// measured behavior — multimodality included — instead of assuming a
// shape.
//
// Samples are stored as fractions in (0, 1] so one profile can drive tasks
// with different WCETs. Draws use inverse-transform sampling with linear
// interpolation between order statistics.
type Empirical struct {
	fracs []float64 // sorted ascending
}

// NewEmpirical builds a distribution from observed WCET fractions. It
// returns an error when no samples are given or any sample lies outside
// (0, 1] — an observation above the WCET would contradict the WCET.
func NewEmpirical(fracs []float64) (*Empirical, error) {
	if len(fracs) == 0 {
		return nil, fmt.Errorf("exectime: empirical distribution needs samples")
	}
	fs := append([]float64(nil), fracs...)
	for _, f := range fs {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("exectime: empirical sample %g outside (0,1]", f)
		}
	}
	sort.Float64s(fs)
	return &Empirical{fracs: fs}, nil
}

// NewEmpiricalFromTimes builds the distribution from absolute observed
// execution times of one task with the given WCET.
func NewEmpiricalFromTimes(times []float64, wcet float64) (*Empirical, error) {
	if wcet <= 0 {
		return nil, fmt.Errorf("exectime: non-positive WCET %g", wcet)
	}
	fracs := make([]float64, len(times))
	for i, t := range times {
		fracs[i] = t / wcet
	}
	return NewEmpirical(fracs)
}

// Mean returns the distribution's mean fraction — the α it induces.
func (e *Empirical) Mean() float64 {
	var sum float64
	for _, f := range e.fracs {
		sum += f
	}
	return sum / float64(len(e.fracs))
}

// quantile returns the u-th (0 ≤ u < 1) quantile by linear interpolation
// between the sorted samples.
func (e *Empirical) quantile(u float64) float64 {
	n := len(e.fracs)
	if n == 1 {
		return e.fracs[0]
	}
	pos := u * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return e.fracs[n-1]
	}
	frac := pos - float64(i)
	return e.fracs[i]*(1-frac) + e.fracs[i+1]*frac
}

// EmpiricalSampler adapts an Empirical distribution to the Sampler
// interface shape used by core.RunConfig: Sample draws an actual execution
// time for a task as quantile(U)·WCET, ignoring the task's ACET (the
// profile already encodes the average behavior).
type EmpiricalSampler struct {
	src  *Source
	dist *Empirical
}

// NewEmpiricalSampler couples a distribution with a random source.
func NewEmpiricalSampler(src *Source, dist *Empirical) *EmpiricalSampler {
	return &EmpiricalSampler{src: src, dist: dist}
}

// Sample draws one actual execution time in (0, wcet].
func (s *EmpiricalSampler) Sample(wcet, acet float64) float64 {
	return s.dist.quantile(s.src.Float64()) * wcet
}

// Source exposes the underlying random source (for OR branch selection).
func (s *EmpiricalSampler) Source() *Source { return s.src }
