package exectime

import "math"

// This file implements batched sampling: drawing a whole program section's
// actual execution times in one call. The serving layer's steady-state run
// path samples every task of a section back to back, so hoisting the
// Box–Muller spare-handling branch and the per-call indirection out of the
// loop amortizes the generator over the section. The batched entry points
// consume exactly the same random stream as their one-at-a-time
// counterparts — sequences are bit-identical, which the property tests in
// batch_test.go assert — so results never depend on which path a caller
// took.

// FillNorm fills dst with standard normal variates (mean 0, stddev 1). The
// values and the generator's final state are bit-identical to len(dst)
// successive NormFloat64 calls: a cached Box–Muller spare is consumed
// first, pairs are generated with the same draws and operations, and an
// odd trailing element leaves its partner cached as the next spare.
func (s *Source) FillNorm(dst []float64) {
	i := 0
	if s.haveSpare && len(dst) > 0 {
		s.haveSpare = false
		dst[0] = s.spare
		i = 1
	}
	for i < len(dst) {
		var u, v float64
		for {
			u = s.Float64()
			if u > 0 { // log(0) guard
				break
			}
		}
		v = s.Float64()
		r := math.Sqrt(-2 * math.Log(u))
		dst[i] = r * math.Cos(2*math.Pi*v)
		if i+1 < len(dst) {
			dst[i+1] = r * math.Sin(2*math.Pi*v)
		} else {
			s.spare = r * math.Sin(2*math.Pi*v)
			s.haveSpare = true
		}
		i += 2
	}
}

// BatchSampler is implemented by samplers that can draw a whole slice of
// actual execution times in one call. SampleBatch must be equivalent to
// calling Sample element-wise in index order — same values, same random
// stream — so callers may freely mix the two forms.
type BatchSampler interface {
	TimeSampler
	// SampleBatch sets dst[i] to one actual execution time for a task with
	// worst case wcet[i] and average case acet[i]. The three slices must
	// have equal length.
	SampleBatch(wcet, acet, dst []float64)
}

// SampleBatch draws one actual execution time per task, bit-identically to
// element-wise Sample calls but with the normal variates generated in one
// FillNorm pass. Tasks with ACET ≥ WCET (no variability) consume no
// randomness, exactly as in Sample. The scratch buffer is retained on the
// sampler, so steady-state calls allocate nothing once warmed.
func (sm *Sampler) SampleBatch(wcet, acet, dst []float64) {
	if len(wcet) != len(dst) || len(acet) != len(dst) {
		panic("exectime: SampleBatch slice length mismatch")
	}
	need := 0
	if sm.sigmaFactor > 0 {
		for i := range dst {
			if acet[i] < wcet[i] {
				need++
			}
		}
	}
	if cap(sm.norms) < need {
		sm.norms = make([]float64, need)
	}
	norms := sm.norms[:need]
	sm.src.FillNorm(norms)
	j := 0
	for i := range dst {
		w, a := wcet[i], acet[i]
		if a >= w {
			dst[i] = w // no run-time variability (α = 1)
			continue
		}
		sigma := sm.sigmaFactor * (w - a)
		if sigma == 0 {
			dst[i] = a
			continue
		}
		x := a + sigma*norms[j]
		j++
		lo := a - (w - a)
		if min := 0.01 * a; lo < min {
			lo = min
		}
		dst[i] = math.Min(w, math.Max(lo, x))
	}
}
