package exectime

import (
	"math"
	"testing"
)

func TestNewEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("want empty error")
	}
	if _, err := NewEmpirical([]float64{0.5, 1.2}); err == nil {
		t.Error("want out-of-range error")
	}
	if _, err := NewEmpirical([]float64{0}); err == nil {
		t.Error("want zero error")
	}
	if _, err := NewEmpiricalFromTimes([]float64{1, 2}, 0); err == nil {
		t.Error("want wcet error")
	}
	if _, err := NewEmpiricalFromTimes([]float64{5e-3, 9e-3}, 8e-3); err == nil {
		t.Error("observation above WCET must be rejected")
	}
}

func TestEmpiricalMeanAndQuantiles(t *testing.T) {
	e, err := NewEmpirical([]float64{0.2, 0.4, 0.6, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Mean(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Mean = %g, want 0.5", got)
	}
	// Quantile endpoints and interior interpolation.
	if got := e.quantile(0); got != 0.2 {
		t.Errorf("q(0) = %g", got)
	}
	if got := e.quantile(0.999999); math.Abs(got-0.8) > 1e-3 {
		t.Errorf("q(1⁻) = %g", got)
	}
	if got := e.quantile(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("q(0.5) = %g, want 0.5 (interpolated)", got)
	}
}

func TestEmpiricalSamplerBoundsAndMean(t *testing.T) {
	// A bimodal profile: 70% fast frames (~0.3 WCET), 30% slow (~0.9).
	fracs := make([]float64, 0, 100)
	for i := 0; i < 70; i++ {
		fracs = append(fracs, 0.28+0.04*float64(i)/70)
	}
	for i := 0; i < 30; i++ {
		fracs = append(fracs, 0.88+0.04*float64(i)/30)
	}
	dist, err := NewEmpirical(fracs)
	if err != nil {
		t.Fatal(err)
	}
	s := NewEmpiricalSampler(NewSource(5), dist)
	const wcet = 10e-3
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		x := s.Sample(wcet, 0 /* ignored */)
		if x <= 0 || x > wcet {
			t.Fatalf("sample %g out of bounds", x)
		}
		sum += x
	}
	wantMean := dist.Mean() * wcet
	if got := sum / n; math.Abs(got-wantMean) > 0.02*wantMean {
		t.Errorf("sample mean %g, want ~%g", got, wantMean)
	}
	if s.Source() == nil {
		t.Error("Source() nil")
	}
}

// TestTimeSamplerInterface: both samplers satisfy the interface used by the
// scheduler.
func TestTimeSamplerInterface(t *testing.T) {
	var _ TimeSampler = NewSampler(NewSource(1))
	dist, _ := NewEmpirical([]float64{0.5})
	var _ TimeSampler = NewEmpiricalSampler(NewSource(1), dist)
}
