// Package exectime provides the deterministic random number source and the
// actual-execution-time model used by the simulations.
//
// The paper's evaluation (§5) draws each task's actual execution time from
// a normal distribution around its average-case execution time and averages
// 1000 runs per data point. Reproducibility of every figure requires a
// seeded, stable generator, so this package implements its own small PRNG
// (SplitMix64) rather than depending on math/rand's unspecified stream
// evolution across Go releases.
package exectime

import "math"

// gamma is SplitMix64's Weyl-sequence increment. The generator's state
// after n steps is exactly seed + n·gamma (the output mixing is stateless),
// which is what makes O(1) skip-ahead — Skip, SeedAt — possible: any point
// of a stream can be reached without generating the prefix.
const gamma = 0x9e3779b97f4a7c15

// Source is a deterministic pseudo-random number generator (SplitMix64).
// It implements the subset of math/rand.Rand used by this repository —
// Float64, Intn, NormFloat64 — plus Fork for carving independent streams.
// A Source is not safe for concurrent use; Fork one per goroutine.
type Source struct {
	state uint64

	// Box–Muller generates normal variates in pairs; the spare is cached.
	haveSpare bool
	spare     float64
}

// NewSource returns a Source seeded with the given value. Distinct seeds
// yield statistically independent streams.
func NewSource(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits (SplitMix64 step).
func (s *Source) Uint64() uint64 {
	s.state += gamma
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("exectime: Intn with non-positive n")
	}
	// Modulo bias is negligible for the small n used here (branch and
	// iteration counts), and determinism matters more than perfection.
	return int(s.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using
// the Box–Muller transform.
func (s *Source) NormFloat64() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	var u, v float64
	for {
		u = s.Float64()
		if u > 0 { // log(0) guard
			break
		}
	}
	v = s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	s.spare = r * math.Sin(2*math.Pi*v)
	s.haveSpare = true
	return r * math.Cos(2*math.Pi*v)
}

// Fork returns a new Source whose stream is independent of the receiver's
// future output. It consumes one value from the receiver, so repeated Forks
// yield distinct children.
func (s *Source) Fork() *Source {
	return NewSource(s.Uint64())
}

// Reseed resets the receiver to the exact state of NewSource(seed),
// discarding any cached Box–Muller spare. It lets hot loops (one source per
// worker, reseeded per run) reproduce the stream a fresh source would
// produce without allocating.
func (s *Source) Reseed(seed uint64) {
	s.state = seed
	s.haveSpare = false
	s.spare = 0
}

// Skip advances the receiver by n Uint64 steps in O(1), discarding any
// cached Box–Muller spare — after Skip(n), the source produces exactly the
// outputs a fresh source at the same seed would produce after n Uint64
// calls. It is the chunk-stable seeding primitive: a worker handed runs
// [lo, hi) of a request reproduces the serial per-run seed stream with
// Reseed(seed); Skip(lo), so run i's stream is independent of how the
// request was chunked.
//
// Skip counts raw Uint64 draws, not derived variates: NormFloat64 consumes
// a variable number of uniforms, so skipping across anything but whole
// Uint64-aligned positions (like the per-run master seeds) is not
// meaningful.
func (s *Source) Skip(n uint64) {
	s.state += n * gamma
	s.haveSpare = false
	s.spare = 0
}

// SeedAt returns the i-th value (0-based) of NewSource(seed)'s Uint64
// stream in O(1) — the per-run seed a master source hands to run i. It
// exists so independent chunks (and batch items deriving per-item seeds)
// can agree on per-run seeds without sharing a generator.
func SeedAt(seed, i uint64) uint64 {
	s := Source{state: seed + i*gamma}
	return s.Uint64()
}

// Pick samples an index from the discrete distribution probs (which should
// sum to 1). Rounding residue goes to the last index, so Pick always
// returns a valid index for a non-empty distribution.
func (s *Source) Pick(probs []float64) int {
	if len(probs) == 0 {
		panic("exectime: Pick from empty distribution")
	}
	u := s.Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(probs) - 1
}
