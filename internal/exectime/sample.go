package exectime

import "math"

// TimeSampler is the interface the scheduler draws execution behavior
// from: Sample produces one actual execution time for a task, and Source
// exposes the random stream used for OR branch selection (one seed drives
// a whole run). Implemented by Sampler (the paper's truncated normal) and
// EmpiricalSampler (profile-driven).
type TimeSampler interface {
	// Sample draws one actual execution time in (0, wcet] for a task with
	// the given worst- and average-case times.
	Sample(wcet, acet float64) float64
	// Source returns the underlying random source.
	Source() *Source
}

// Sampler draws actual execution times for tasks. Per the paper (§5), "the
// actual execution time of a task follows a normal distribution around"
// its average-case execution time; the distribution's width is not given in
// the paper, so it is a documented parameter here.
type Sampler struct {
	src *Source
	// sigmaFactor scales the standard deviation: σ = sigmaFactor·(WCET−ACET).
	// The default (1/3) puts the WCET at 3σ above the mean, so nearly all of
	// the untruncated mass lies below the worst case.
	sigmaFactor float64
	// norms is SampleBatch's retained scratch for normal variates.
	norms []float64
}

// DefaultSigmaFactor is the default ratio of σ to (WCET − ACET).
const DefaultSigmaFactor = 1.0 / 3.0

// NewSampler returns a Sampler drawing from src with the default width.
func NewSampler(src *Source) *Sampler {
	return &Sampler{src: src, sigmaFactor: DefaultSigmaFactor}
}

// NewSamplerSigma returns a Sampler with σ = sigmaFactor·(WCET−ACET).
func NewSamplerSigma(src *Source, sigmaFactor float64) *Sampler {
	if sigmaFactor < 0 {
		panic("exectime: negative sigma factor")
	}
	return &Sampler{src: src, sigmaFactor: sigmaFactor}
}

// Sample draws one actual execution time for a task with the given WCET and
// ACET (seconds at maximum speed): a normal variate with mean ACET,
// truncated symmetrically to [ACET − (WCET−ACET), WCET] so the mean is
// preserved, and floored at a small positive fraction of the ACET when the
// symmetric lower bound would be non-positive (tasks always execute some
// work).
func (sm *Sampler) Sample(wcet, acet float64) float64 {
	if acet >= wcet {
		return wcet // no run-time variability (α = 1)
	}
	sigma := sm.sigmaFactor * (wcet - acet)
	if sigma == 0 {
		return acet
	}
	x := acet + sigma*sm.src.NormFloat64()
	lo := acet - (wcet - acet)
	if min := 0.01 * acet; lo < min {
		lo = min
	}
	return math.Min(wcet, math.Max(lo, x))
}

// Source exposes the underlying random source, used by the simulator for
// Or-branch selection so that one seed drives an entire run.
func (sm *Sampler) Source() *Source { return sm.src }
