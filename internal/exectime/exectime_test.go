package exectime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a, b := NewSource(99), NewSource(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed sources diverged")
		}
	}
	c := NewSource(100)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewSource(99).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds look correlated")
	}
}

// TestSkipMatchesSequentialDraws proves the O(1) skip is exact: for any
// (seed, n), Reseed(seed); Skip(n) leaves the source in precisely the
// state n sequential Uint64 calls would — the property the chunked
// Monte-Carlo path's per-run seed derivation rests on.
func TestSkipMatchesSequentialDraws(t *testing.T) {
	seeds := []uint64{0, 1, 42, 0xdeadbeef, math.MaxUint64}
	for _, seed := range seeds {
		for _, n := range []uint64{0, 1, 2, 7, 63, 64, 1000, 1 << 20} {
			seq := NewSource(seed)
			for i := uint64(0); i < n; i++ {
				seq.Uint64()
			}
			var skipped Source
			skipped.Reseed(seed)
			skipped.Skip(n)
			for i := 0; i < 16; i++ {
				if got, want := skipped.Uint64(), seq.Uint64(); got != want {
					t.Fatalf("seed %d skip %d draw %d: %#x, want %#x", seed, n, i, got, want)
				}
			}
		}
	}
}

// TestSkipDiscardsSpare: a cached Box–Muller spare must not leak across a
// skip — the skipped-to position has to reproduce a fresh source exactly,
// normals included.
func TestSkipDiscardsSpare(t *testing.T) {
	var s Source
	s.Reseed(7)
	s.NormFloat64() // populates the spare
	s.Reseed(7)
	s.Skip(10)
	ref := NewSource(7)
	ref.Skip(10)
	for i := 0; i < 8; i++ {
		if got, want := s.NormFloat64(), ref.NormFloat64(); got != want {
			t.Fatalf("normal %d after skip: %g, want %g (spare leaked)", i, got, want)
		}
	}
}

// TestSeedAt pins SeedAt(seed, i) to the (i+1)-th output of
// NewSource(seed) for arbitrary inputs.
func TestSeedAt(t *testing.T) {
	f := func(seed uint64, i uint16) bool {
		s := NewSource(seed)
		for k := uint16(0); k < i; k++ {
			s.Uint64()
		}
		return SeedAt(seed, uint64(i)) == s.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(1)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g outside [0,1)", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	s := NewSource(2)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		f := s.Float64()
		sum += f
		sq += f * f
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %g, want ~%g", variance, 1.0/12)
	}
}

func TestIntn(t *testing.T) {
	s := NewSource(3)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn bucket %d has %d hits, want ~10000", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	s.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewSource(4)
	const n = 200000
	var sum, sq, kurt float64
	for i := 0; i < n; i++ {
		x := s.NormFloat64()
		sum += x
		sq += x * x
		kurt += x * x * x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
	if k := kurt / n; math.Abs(k-3) > 0.15 {
		t.Errorf("normal kurtosis = %g, want ~3", k)
	}
}

func TestFork(t *testing.T) {
	s := NewSource(5)
	a := s.Fork()
	b := s.Fork()
	// Children are distinct streams.
	equal := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Error("forked sources produce identical streams")
	}
}

func TestPick(t *testing.T) {
	s := NewSource(6)
	probs := []float64{0.2, 0.5, 0.3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Pick(probs)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Pick branch %d frequency %g, want %g", i, got, p)
		}
	}
	// Degenerate distributions still return a valid index.
	if got := s.Pick([]float64{0, 0}); got != 1 {
		t.Errorf("Pick on zero distribution = %d, want last index", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Pick(empty) should panic")
		}
	}()
	s.Pick(nil)
}

func TestSamplerBounds(t *testing.T) {
	prop := func(seed uint64, w, frac float64) bool {
		w = 1e-4 + math.Mod(math.Abs(w), 1e-1)
		frac = math.Mod(math.Abs(frac), 1)
		if frac == 0 {
			frac = 0.5
		}
		a := frac * w
		sm := NewSampler(NewSource(seed))
		for i := 0; i < 100; i++ {
			x := sm.Sample(w, a)
			if x <= 0 || x > w {
				t.Logf("Sample(%g,%g) = %g out of bounds", w, a, x)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSamplerMeanTracksACET(t *testing.T) {
	sm := NewSampler(NewSource(7))
	const w, a = 10e-3, 6e-3
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += sm.Sample(w, a)
	}
	mean := sum / n
	if math.Abs(mean-a) > 0.05*a {
		t.Errorf("sample mean %g, want ~%g", mean, a)
	}
}

func TestSamplerDegenerateCases(t *testing.T) {
	sm := NewSampler(NewSource(8))
	// α = 1: no variability.
	if got := sm.Sample(5e-3, 5e-3); got != 5e-3 {
		t.Errorf("Sample at α=1 = %g, want WCET", got)
	}
	// Zero-width sampler: returns the ACET exactly.
	sz := NewSamplerSigma(NewSource(9), 0)
	if got := sz.Sample(5e-3, 3e-3); got != 3e-3 {
		t.Errorf("zero-sigma Sample = %g, want ACET", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative sigma factor should panic")
		}
	}()
	NewSamplerSigma(NewSource(1), -1)
}
