package exectime

import (
	"math"
	"testing"
)

// TestFillNormMatchesNormFloat64 asserts bit-identical sequences between
// FillNorm and successive NormFloat64 calls, across batch sizes that
// exercise the spare-caching boundary (odd/even splits, empty fills).
func TestFillNormMatchesNormFloat64(t *testing.T) {
	for _, sizes := range [][]int{
		{1}, {2}, {3}, {4, 5}, {0, 1, 0, 2}, {7, 1, 1, 8}, {128},
		{1, 1, 1, 1, 1}, {3, 3, 3},
	} {
		a := NewSource(99)
		b := NewSource(99)
		for _, n := range sizes {
			got := make([]float64, n)
			a.FillNorm(got)
			for i := 0; i < n; i++ {
				want := b.NormFloat64()
				if got[i] != want {
					t.Fatalf("sizes %v: element %d: FillNorm %v != NormFloat64 %v", sizes, i, got[i], want)
				}
			}
		}
		// The generators must be left in identical states: interleave.
		if a.NormFloat64() != b.NormFloat64() || a.Float64() != b.Float64() {
			t.Fatalf("sizes %v: diverged state after fills", sizes)
		}
	}
}

// TestFillNormInterleaved mixes FillNorm and NormFloat64 on one source and
// checks the combined stream equals a pure NormFloat64 stream.
func TestFillNormInterleaved(t *testing.T) {
	a := NewSource(7)
	b := NewSource(7)
	var got []float64
	buf := make([]float64, 5)
	a.FillNorm(buf[:3])
	got = append(got, buf[:3]...)
	got = append(got, a.NormFloat64())
	a.FillNorm(buf[:5])
	got = append(got, buf[:5]...)
	got = append(got, a.NormFloat64(), a.NormFloat64())
	for i, g := range got {
		if want := b.NormFloat64(); g != want {
			t.Fatalf("element %d: %v != %v", i, g, want)
		}
	}
}

// TestSampleBatchMatchesSample draws random task parameter sets — including
// the no-variability (ACET = WCET) and zero-sigma edge cases that consume
// no randomness — and asserts SampleBatch equals element-wise Sample
// bit-for-bit, with both samplers ending in the same generator state.
func TestSampleBatchMatchesSample(t *testing.T) {
	for _, sigma := range []float64{DefaultSigmaFactor, 0, 0.5} {
		param := NewSource(123)
		one := NewSamplerSigma(NewSource(42), sigma)
		batch := NewSamplerSigma(NewSource(42), sigma)
		for trial := 0; trial < 200; trial++ {
			n := param.Intn(17) // includes 0-length sections
			wcet := make([]float64, n)
			acet := make([]float64, n)
			for i := 0; i < n; i++ {
				wcet[i] = 1e-3 + 9e-3*param.Float64()
				switch param.Intn(4) {
				case 0:
					acet[i] = wcet[i] // α = 1: no draw consumed
				default:
					acet[i] = wcet[i] * (0.1 + 0.9*param.Float64())
				}
			}
			got := make([]float64, n)
			batch.SampleBatch(wcet, acet, got)
			for i := 0; i < n; i++ {
				want := one.Sample(wcet[i], acet[i])
				if got[i] != want {
					t.Fatalf("sigma %g trial %d task %d: batch %v != sample %v", sigma, trial, i, got[i], want)
				}
				if got[i] <= 0 || got[i] > wcet[i] {
					t.Fatalf("sigma %g trial %d task %d: sample %v outside (0, %v]", sigma, trial, i, got[i], wcet[i])
				}
			}
		}
		// Final states must agree so mixed batch/single call sites stay
		// deterministic.
		if one.Source().Float64() != batch.Source().Float64() {
			t.Fatalf("sigma %g: generator states diverged", sigma)
		}
	}
}

// TestSampleBatchLengthMismatch asserts the documented panic.
func TestSampleBatchLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched slice lengths")
		}
	}()
	NewSampler(NewSource(1)).SampleBatch(make([]float64, 2), make([]float64, 3), make([]float64, 2))
}

// TestSampleBatchNoAllocSteadyState asserts the warmed batch path performs
// no allocation — it sits on the server's per-request hot path.
func TestSampleBatchNoAllocSteadyState(t *testing.T) {
	sm := NewSampler(NewSource(5))
	wcet := make([]float64, 64)
	acet := make([]float64, 64)
	dst := make([]float64, 64)
	for i := range wcet {
		wcet[i] = 8e-3
		acet[i] = 5e-3
	}
	sm.SampleBatch(wcet, acet, dst) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		sm.SampleBatch(wcet, acet, dst)
	})
	if allocs != 0 {
		t.Fatalf("warmed SampleBatch allocates %v per call, want 0", allocs)
	}
	if math.IsNaN(dst[0]) {
		t.Fatal("NaN sample")
	}
}
