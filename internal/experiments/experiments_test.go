package experiments

import (
	"strings"
	"testing"

	"andorsched/internal/core"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// smallRuns keeps experiment tests fast while still averaging.
const smallRuns = 8

func smallCfg() Config {
	return Config{
		Graph:     workload.ATR(workload.DefaultATRConfig()),
		Procs:     2,
		Platform:  power.IntelXScale(),
		Overheads: power.DefaultOverheads(),
		Schemes:   []core.Scheme{core.SPM, core.GSS, core.AS},
		Runs:      smallRuns,
		Seed:      1,
	}
}

func TestEnergyVsLoadBasics(t *testing.T) {
	loads := []float64{0.3, 0.6, 0.9}
	se, err := EnergyVsLoad(smallCfg(), loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(se.Points) != len(loads) {
		t.Fatalf("points = %d", len(se.Points))
	}
	for i, pt := range se.Points {
		if pt.X != loads[i] {
			t.Errorf("point %d X = %g", i, pt.X)
		}
		if pt.NPMEnergy <= 0 {
			t.Error("NPM energy must be positive")
		}
		for s, e := range pt.NormEnergy {
			if e <= 0 || e > 1.3 {
				t.Errorf("load %g %s normalized energy %g implausible", pt.X, s, e)
			}
		}
		// Deadline consistency: load = CTWorst/deadline.
		if pt.Deadline <= 0 {
			t.Error("non-positive deadline")
		}
	}
	// NPM energy decreases as load rises (less idle energy over a shorter
	// horizon) — the paper's observation about the NPM denominator.
	for i := 1; i < len(se.Points); i++ {
		if se.Points[i].NPMEnergy >= se.Points[i-1].NPMEnergy {
			t.Errorf("NPM energy not decreasing with load: %g → %g",
				se.Points[i-1].NPMEnergy, se.Points[i].NPMEnergy)
		}
	}
}

func TestEnergyVsLoadErrors(t *testing.T) {
	if _, err := EnergyVsLoad(smallCfg(), []float64{0}); err == nil {
		t.Error("want load-range error")
	}
	if _, err := EnergyVsLoad(smallCfg(), []float64{1.5}); err == nil {
		t.Error("want load-range error")
	}
	bad := smallCfg()
	bad.Procs = 0
	if _, err := EnergyVsLoad(bad, []float64{0.5}); err == nil {
		t.Error("want plan error")
	}
}

func TestEnergyVsAlphaBasics(t *testing.T) {
	cfg := smallCfg()
	cfg.Graph = workload.Synthetic()
	alphas := []float64{0.2, 0.6, 1.0}
	se, err := EnergyVsAlpha(cfg, 0.7, alphas)
	if err != nil {
		t.Fatal(err)
	}
	if len(se.Points) != 3 {
		t.Fatalf("points = %d", len(se.Points))
	}
	// α must not leak between points: the original graph is untouched.
	if cfg.Graph.NodeByName("A").ACET != 5e-3 {
		t.Error("EnergyVsAlpha mutated the input graph")
	}
	// At α = 1 there is no run-time slack from execution times; SPM's
	// normalized energy must be (nearly) α-independent while the dynamic
	// schemes lose some of their advantage relative to α = 0.2.
	first, last := se.Points[0], se.Points[2]
	if last.NormEnergy[core.GSS] <= first.NormEnergy[core.GSS] {
		t.Errorf("GSS at α=1 (%g) should consume more than at α=0.2 (%g)",
			last.NormEnergy[core.GSS], first.NormEnergy[core.GSS])
	}
	if _, err := EnergyVsAlpha(cfg, 0, alphas); err == nil {
		t.Error("want load error")
	}
}

func TestCommonRandomNumbers(t *testing.T) {
	// The same Config must reproduce the series exactly.
	a, err := EnergyVsLoad(smallCfg(), []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EnergyVsLoad(smallCfg(), []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	for s, e := range a.Points[0].NormEnergy {
		if b.Points[0].NormEnergy[s] != e {
			t.Errorf("%s differs between identical configs", s)
		}
	}
}

// TestParallelismIsDeterministic: the measured series is bit-identical for
// any worker count — per-run seeds are pinned and outputs folded in order.
func TestParallelismIsDeterministic(t *testing.T) {
	series := map[int]*Series{}
	for _, workers := range []int{1, 2, 7} {
		cfg := smallCfg()
		cfg.Runs = 24
		cfg.Workers = workers
		se, err := EnergyVsLoad(cfg, []float64{0.4, 0.8})
		if err != nil {
			t.Fatal(err)
		}
		series[workers] = se
	}
	base := series[1]
	for _, workers := range []int{2, 7} {
		got := series[workers]
		for pi := range base.Points {
			for s, e := range base.Points[pi].NormEnergy {
				if got.Points[pi].NormEnergy[s] != e {
					t.Errorf("workers=%d point %d scheme %s: %g != %g",
						workers, pi, s, got.Points[pi].NormEnergy[s], e)
				}
			}
			if got.Points[pi].CI95[core.GSS] != base.Points[pi].CI95[core.GSS] {
				t.Errorf("workers=%d: CI differs", workers)
			}
		}
	}
}

// TestClairvoyantAblation: the oracle column lower-bounds the schemes at
// every load, up to the discrete-level caveat — CLV rounds its single
// speed *up*, so a per-task mix of adjacent levels can undercut it by at
// most the quantization gap (≈3% on the Transmeta table), never more.
func TestClairvoyantAblation(t *testing.T) {
	e, err := ByID("clv")
	if err != nil {
		t.Fatal(err)
	}
	se, err := e.Run(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range se.Points {
		bound := pt.NormEnergy[core.CLV]
		for _, s := range []core.Scheme{core.SPM, core.GSS, core.SS1, core.SS2, core.AS} {
			if pt.NormEnergy[s] < bound*0.97 {
				t.Errorf("load %g: %s (%g) more than quantization below the clairvoyant bound (%g)",
					pt.X, s, pt.NormEnergy[s], bound)
			}
		}
	}
}

// TestCompareSchemes: on Transmeta at moderate load, AS saves
// significantly more energy than SPM (a large, robust gap), while a scheme
// compared against itself must show zero difference.
func TestCompareSchemes(t *testing.T) {
	plan, err := core.NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	d := plan.CTWorst / 0.6
	cmp, err := CompareSchemes(plan, core.AS, core.SPM, d, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.MeanDiff >= 0 || !cmp.Significant {
		t.Errorf("AS vs SPM: diff %g z %g — expected a significant saving", cmp.MeanDiff, cmp.Z)
	}
	self, err := CompareSchemes(plan, core.GSS, core.GSS, d, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if self.MeanDiff != 0 || self.Significant {
		t.Errorf("self-comparison: diff %g significant %v", self.MeanDiff, self.Significant)
	}
}

func TestRenderers(t *testing.T) {
	se, err := EnergyVsLoad(smallCfg(), []float64{0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	tab := se.Table()
	for _, want := range []string{"load", "SPM", "GSS", "AS", "0.4", "0.8"} {
		if !strings.Contains(tab, want) {
			t.Errorf("Table missing %q:\n%s", want, tab)
		}
	}
	csv := se.CSV()
	if !strings.Contains(csv, "GSS_ci95") || !strings.Contains(csv, "npm_energy_j") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Errorf("CSV lines = %d, want 3", lines)
	}
	ch := se.ChangesTable()
	if !strings.Contains(ch, "speed changes") {
		t.Error("ChangesTable header missing")
	}
	pt := PlatformTable(power.IntelXScale())
	for _, want := range []string{"Intel XScale", "150", "1000", "0.750", "1.800"} {
		if !strings.Contains(pt, want) {
			t.Errorf("PlatformTable missing %q:\n%s", want, pt)
		}
	}
}

// TestAllExperimentsExecute runs every registered experiment end to end at
// a tiny run count: the registry's Run closures, the figure and ablation
// sweeps and the renderers all execute without error and produce sane
// points.
func TestAllExperimentsExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			se, err := e.Run(2, 11)
			if err != nil {
				t.Fatal(err)
			}
			if len(se.Points) == 0 || len(se.Schemes) == 0 {
				t.Fatal("empty series")
			}
			for _, pt := range se.Points {
				for _, s := range se.Schemes {
					v := pt.NormEnergy[s]
					if v <= 0 || v > 1.5 {
						t.Errorf("%s @ %g: normalized energy %g implausible", s, pt.X, v)
					}
				}
			}
			if se.Table() == "" || se.CSV() == "" || se.ChartSVG(640, 300) == "" {
				t.Error("renderers failed")
			}
		})
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	SetDefaultWorkers(2)
	defer SetDefaultWorkers(0)
	a, err := EnergyVsLoad(smallCfg(), []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	SetDefaultWorkers(-5) // restores GOMAXPROCS default
	b, err := EnergyVsLoad(smallCfg(), []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	for s, v := range a.Points[0].NormEnergy {
		if b.Points[0].NormEnergy[s] != v {
			t.Errorf("default worker count changed the numbers for %s", s)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 11 {
		t.Fatalf("experiments = %d, want ≥ 11 (7 figures + 4 ablations)", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"4a", "4b", "5a", "5b", "6a", "6b", "fmin", "levels", "overhead", "procs", "clv", "structure", "slew"} {
		if !ids[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, err := ByID("4a"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("want unknown-ID error")
	}
}

// TestPaperShapes asserts the qualitative results the paper reports, on
// reduced sweeps (kept small for test time; the benches regenerate the
// full figures).
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks need a few hundred runs")
	}
	t.Run("SPM hits NPM at high load on XScale", func(t *testing.T) {
		se, err := EnergyVsLoad(Config{
			Graph: atrGraph(), Procs: 2, Platform: power.IntelXScale(),
			Overheads: power.DefaultOverheads(),
			Schemes:   []core.Scheme{core.SPM}, Runs: 20, Seed: 3,
		}, []float64{0.9})
		if err != nil {
			t.Fatal(err)
		}
		// At load 0.9 the static speed rounds up to f_max: SPM ≈ NPM.
		if got := se.Points[0].NormEnergy[core.SPM]; got < 0.99 || got > 1.01 {
			t.Errorf("SPM at load 0.9 = %g, want ≈ 1", got)
		}
	})
	t.Run("normalized energy dips then rises with load", func(t *testing.T) {
		se, err := EnergyVsLoad(Config{
			Graph: atrGraph(), Procs: 2, Platform: power.Transmeta5400(),
			Overheads: power.DefaultOverheads(),
			Schemes:   []core.Scheme{core.GSS}, Runs: 30, Seed: 4,
		}, []float64{0.1, 0.4, 1.0})
		if err != nil {
			t.Fatal(err)
		}
		lo := se.Points[0].NormEnergy[core.GSS]
		mid := se.Points[1].NormEnergy[core.GSS]
		hi := se.Points[2].NormEnergy[core.GSS]
		if !(mid < lo && mid < hi) {
			t.Errorf("GSS curve not U-shaped: %g, %g, %g", lo, mid, hi)
		}
	})
	t.Run("speculation reduces speed changes", func(t *testing.T) {
		se, err := EnergyVsLoad(Config{
			Graph: atrGraph(), Procs: 2, Platform: power.Transmeta5400(),
			Overheads: power.DefaultOverheads(),
			Schemes:   []core.Scheme{core.GSS, core.AS}, Runs: 30, Seed: 5,
		}, []float64{0.7})
		if err != nil {
			t.Fatal(err)
		}
		pt := se.Points[0]
		if pt.SpeedChanges[core.AS] >= pt.SpeedChanges[core.GSS] {
			t.Errorf("AS changes (%g) should undercut GSS (%g)",
				pt.SpeedChanges[core.AS], pt.SpeedChanges[core.GSS])
		}
	})
}
