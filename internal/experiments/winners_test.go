package experiments

import (
	"strings"
	"testing"

	"andorsched/internal/core"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

func winnerGrid(t *testing.T) [][]WinnerCell {
	t.Helper()
	cfg := Config{
		Graph:     workload.Synthetic(),
		Procs:     2,
		Platform:  power.IntelXScale(),
		Overheads: power.DefaultOverheads(),
		Schemes:   []core.Scheme{core.SPM, core.GSS, core.AS},
		Runs:      10,
		Seed:      4,
	}
	grid, err := WinnerMap(cfg, []float64{0.3, 0.6, 0.9}, []float64{0.3, 0.7, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	return grid
}

func TestWinnerMap(t *testing.T) {
	grid := winnerGrid(t)
	if len(grid) != 3 || len(grid[0]) != 3 {
		t.Fatalf("grid shape %dx%d", len(grid), len(grid[0]))
	}
	for _, row := range grid {
		for _, c := range row {
			if c.BestEnergy <= 0 || c.BestEnergy > 1.2 {
				t.Errorf("cell (%g,%g): best energy %g", c.Load, c.Alpha, c.BestEnergy)
			}
			if c.Margin < 0 {
				t.Errorf("cell (%g,%g): negative margin %g (winner not minimal)", c.Load, c.Alpha, c.Margin)
			}
			found := false
			for _, s := range []core.Scheme{core.SPM, core.GSS, core.AS} {
				if c.Best == s {
					found = true
				}
			}
			if !found {
				t.Errorf("cell winner %v not among candidates", c.Best)
			}
		}
	}
	// At low α and moderate load a dynamic scheme must beat SPM (dynamic
	// slack dominates).
	if grid[0][1].Best == core.SPM {
		t.Errorf("SPM should not win at α=0.3 load=0.6")
	}
}

func TestWinnerRenderers(t *testing.T) {
	grid := winnerGrid(t)
	tab := WinnerTable(grid)
	if !strings.Contains(tab, "alpha\\load") || !strings.Contains(tab, "0.3") {
		t.Errorf("winner table malformed:\n%s", tab)
	}
	svg := WinnerSVG(grid)
	for _, want := range []string{"<svg", "</svg>", "rect", "best scheme per"} {
		if !strings.Contains(svg, want) {
			t.Errorf("winner SVG missing %q", want)
		}
	}
	// 9 cells + legend squares.
	if got := strings.Count(svg, "<rect"); got < 9 {
		t.Errorf("winner SVG rects = %d, want ≥ 9", got)
	}
	if !strings.Contains(WinnerTable(nil), "empty") || !strings.Contains(WinnerSVG(nil), "empty") {
		t.Error("empty-map placeholders missing")
	}
}

func TestWinnerMapErrors(t *testing.T) {
	cfg := smallCfg()
	cfg.Schemes = []core.Scheme{core.GSS}
	if _, err := WinnerMap(cfg, []float64{0.5}, []float64{0.5}); err == nil {
		t.Error("want too-few-schemes error")
	}
	cfg = smallCfg()
	if _, err := WinnerMap(cfg, []float64{2}, []float64{0.5}); err == nil {
		t.Error("want load-range error")
	}
}
