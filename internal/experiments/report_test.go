package experiments

import (
	"strings"
	"testing"

	"andorsched/internal/core"
)

func TestChartSVG(t *testing.T) {
	se, err := EnergyVsLoad(smallCfg(), []float64{0.3, 0.6, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	svg := se.ChartSVG(960, 360)
	for _, want := range []string{"<svg", "</svg>", "polyline", "E/E_NPM", "load", "GSS", "SPM"} {
		if !strings.Contains(svg, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	// One polyline per scheme.
	if got := strings.Count(svg, "<polyline"); got != len(se.Schemes) {
		t.Errorf("polylines = %d, want %d", got, len(se.Schemes))
	}
	// Markers carry tooltips with the CI.
	if !strings.Contains(svg, "±") {
		t.Error("chart markers missing confidence tooltips")
	}
	// Empty series degrades gracefully.
	empty := &Series{Title: "x", XLabel: "load"}
	if !strings.Contains(empty.ChartSVG(100, 100), "empty series") {
		t.Error("empty-series placeholder missing")
	}
}

func TestHTMLReport(t *testing.T) {
	// One tiny real experiment keeps this fast.
	exp := Experiment{
		ID:    "mini",
		Title: "mini series for the report test",
		Run: func(runs int, seed uint64) (*Series, error) {
			cfg := smallCfg()
			cfg.Runs = runs
			cfg.Seed = seed
			return EnergyVsLoad(cfg, []float64{0.4, 0.8})
		},
	}
	var seen []string
	doc, err := HTMLReport([]Experiment{exp}, 4, 7, func(id string) { seen = append(seen, id) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html", "Transmeta TM5400", "Intel XScale",
		"mini series for the report test", "<svg", "speed changes per run",
		"±", "</html>",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(seen) != 1 || seen[0] != "mini" {
		t.Errorf("progress callback saw %v", seen)
	}
	// The report must be self-contained: no scripts, no fetched assets
	// (the SVG xmlns namespace identifier is not a fetch).
	for _, forbidden := range []string{"https://", "<script", "<img", "<link"} {
		if strings.Contains(doc, forbidden) {
			t.Errorf("report contains %q", forbidden)
		}
	}
}

func TestHTMLReportPropagatesErrors(t *testing.T) {
	bad := Experiment{
		ID: "bad", Title: "bad",
		Run: func(int, uint64) (*Series, error) {
			return EnergyVsLoad(smallCfg(), []float64{7}) // invalid load
		},
	}
	if _, err := HTMLReport([]Experiment{bad}, 1, 1, nil); err == nil {
		t.Error("want error")
	}
}

func TestSchemeColorsAreDistinct(t *testing.T) {
	seen := map[string]core.Scheme{}
	for _, s := range append(append([]core.Scheme(nil), core.Schemes...), core.CLV) {
		c := schemeColor(s)
		if prev, dup := seen[c]; dup {
			t.Errorf("schemes %s and %s share color %s", prev, s, c)
		}
		seen[c] = s
	}
}
