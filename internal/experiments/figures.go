package experiments

import (
	"fmt"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// Experiment is one regenerable unit of the paper's evaluation: a figure's
// data series, a platform table, or an ablation.
type Experiment struct {
	// ID is the short handle used by the CLI and benches ("4a", "6b",
	// "fmin", ...).
	ID string
	// Title describes what the paper shows.
	Title string
	// Run produces the series with the given number of simulated
	// executions per point (the paper uses 1000) and seed.
	Run func(runs int, seed uint64) (*Series, error)
}

// paperSchemes are the power-managed schemes of the paper's figures; NPM is
// the implicit baseline.
func paperSchemes() []core.Scheme {
	return []core.Scheme{core.SPM, core.GSS, core.SS1, core.SS2, core.AS}
}

// paperLoads are the load sweep values of Figures 4–5.
func paperLoads() []float64 { return sweepRange(0.1, 1.0, 9) }

// paperAlphas are the α sweep values of Figure 6.
func paperAlphas() []float64 { return sweepRange(0.1, 1.0, 9) }

// Fig6Load is the fixed load of the Figure 6 α sweep (the exact value is
// garbled in the available copy of the paper; 0.7 — a moderately loaded
// system, consistent with the figure's commentary — is used and recorded in
// DESIGN.md).
const Fig6Load = 0.7

// atrGraph builds the ATR application with the paper's measured α ≈ 0.9.
func atrGraph() *andor.Graph { return workload.ATR(workload.DefaultATRConfig()) }

func figLoad(id, platName string, platform func() *power.Platform, procs int) Experiment {
	return Experiment{
		ID: id,
		Title: fmt.Sprintf("Figure %s: normalized energy vs load, ATR, %d CPUs, %s (α≈0.9, 5µs overhead)",
			id, procs, platName),
		Run: func(runs int, seed uint64) (*Series, error) {
			return EnergyVsLoad(Config{
				Graph:     atrGraph(),
				Procs:     procs,
				Platform:  platform(),
				Overheads: power.DefaultOverheads(),
				Schemes:   paperSchemes(),
				Runs:      runs,
				Seed:      seed,
			}, paperLoads())
		},
	}
}

func figAlpha(id, platName string, platform func() *power.Platform) Experiment {
	return Experiment{
		ID: id,
		Title: fmt.Sprintf("Figure %s: normalized energy vs alpha, synthetic app, 2 CPUs, %s (load %.1f, 5µs overhead)",
			id, platName, Fig6Load),
		Run: func(runs int, seed uint64) (*Series, error) {
			return EnergyVsAlpha(Config{
				Graph:     workload.Synthetic(),
				Procs:     2,
				Platform:  platform(),
				Overheads: power.DefaultOverheads(),
				Schemes:   paperSchemes(),
				Runs:      runs,
				Seed:      seed,
			}, Fig6Load, paperAlphas())
		},
	}
}

// Figures returns the experiments reproducing the paper's figures,
// including the 4-processor ATR configuration the text reports as
// "similar results" without a figure.
func Figures() []Experiment {
	return []Experiment{
		figLoad("4a", "Transmeta TM5400", power.Transmeta5400, 2),
		figLoad("4b", "Intel XScale", power.IntelXScale, 2),
		figLoad("5a", "Transmeta TM5400", power.Transmeta5400, 6),
		figLoad("5b", "Intel XScale", power.IntelXScale, 6),
		figLoad("4p4", "Transmeta TM5400 (4 CPUs, text-only result)", power.Transmeta5400, 4),
		figAlpha("6a", "Transmeta TM5400", power.Transmeta5400),
		figAlpha("6b", "Intel XScale", power.IntelXScale),
	}
}

// All returns every experiment: figures plus ablations.
func All() []Experiment {
	return append(Figures(), Ablations()...)
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
