// Package experiments regenerates the paper's evaluation (§5): every
// figure's data series and the platform tables, plus the ablation studies
// the paper lists as future work.
//
// Each experiment produces a Series: normalized energy (scheme energy over
// NPM energy, averaged over many runs) as a function of a swept parameter —
// system load (deadline tightness) or α (the tasks' average-to-worst-case
// execution time ratio). Runs use common random numbers across schemes:
// within one run index, every scheme sees the same actual execution times
// and the same OR branch outcomes, which makes per-run normalized ratios
// well-defined and reduces variance.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/stats"
)

// Config fixes everything about an experiment except the swept parameter.
type Config struct {
	// Graph is the application. Sweeps over α clone and rescale it.
	Graph *andor.Graph
	// Procs is the processor count m.
	Procs int
	// Platform is the DVS processor model.
	Platform *power.Platform
	// Overheads are the power-management costs (the paper: 600-cycle speed
	// computation, 5 µs speed change).
	Overheads power.Overheads
	// Schemes are the power-management schemes to evaluate. NPM always
	// runs additionally as the normalization baseline.
	Schemes []core.Scheme
	// Runs is the number of simulated executions per data point (the paper
	// uses 1000).
	Runs int
	// Seed drives all randomness; the same Config yields identical series.
	Seed uint64
	// Workers bounds the goroutines simulating runs of one data point in
	// parallel; 0 means GOMAXPROCS. Results are bit-identical for any
	// worker count: per-run seeds are fixed up front and per-run outputs
	// are folded in run order.
	Workers int
}

// Point is one x-value of a series: per-scheme mean normalized energy with
// a 95% confidence half-width, plus the mean speed-change count.
type Point struct {
	// X is the swept parameter value (load or α).
	X float64
	// Deadline is the absolute deadline used at this point.
	Deadline float64
	// NormEnergy[s] is mean over runs of E_s/E_NPM.
	NormEnergy map[core.Scheme]float64
	// CI95[s] is the 95% confidence half-width of NormEnergy[s].
	CI95 map[core.Scheme]float64
	// SpeedChanges[s] is the mean number of voltage/speed transitions.
	SpeedChanges map[core.Scheme]float64
	// NPMEnergy is the mean absolute NPM energy in joules (the
	// denominator), for reference.
	NPMEnergy float64
}

// Series is one experiment's output: an ordered list of points.
type Series struct {
	// Title and XLabel describe the series for rendering.
	Title  string
	XLabel string
	// Schemes is the column order.
	Schemes []core.Scheme
	// Points are in ascending X order.
	Points []Point
}

// defaultWorkers is the process-wide fallback for Config.Workers; see
// SetDefaultWorkers.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the worker count used by experiments whose Config
// leaves Workers at zero (e.g. the registered figure experiments, whose
// configurations are fixed). n ≤ 0 restores the GOMAXPROCS default. The
// measured numbers are identical for any worker count; only wall-clock
// time changes.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// pointWorker is one goroutine's reusable run state: a simulation arena, a
// reseedable sampler and the two result holders. Every run of every scheme
// reuses these, so a data point's allocation count is O(workers), not
// O(runs).
type pointWorker struct {
	arena     *core.Arena
	src       *exectime.Source
	sampler   *exectime.Sampler
	base, res core.RunResult
}

func newPointWorker() *pointWorker {
	src := exectime.NewSource(0)
	return &pointWorker{arena: core.NewArena(), src: src, sampler: exectime.NewSampler(src)}
}

// measurePoint runs all schemes `runs` times against one plan and deadline,
// spreading runs over `workers` goroutines (Plan.RunInto is pure, so runs
// are embarrassingly parallel; per-run seeds are fixed beforehand and
// results folded in run order, keeping the output independent of
// scheduling). Each worker holds one arena; per-run outputs land in flat
// preallocated slices.
func measurePoint(plan *core.Plan, schemes []core.Scheme, x, deadline float64,
	runs int, seed uint64, workers int) (Point, error) {
	pt := Point{
		X: x, Deadline: deadline,
		NormEnergy:   make(map[core.Scheme]float64, len(schemes)),
		CI95:         make(map[core.Scheme]float64, len(schemes)),
		SpeedChanges: make(map[core.Scheme]float64, len(schemes)),
	}
	k := len(schemes)
	seeds := make([]uint64, runs)
	master := exectime.NewSource(seed)
	for r := range seeds {
		seeds[r] = master.Uint64()
	}

	norms := make([]float64, runs*k)   // E_s/E_NPM, indexed [r*k+i]
	changes := make([]float64, runs*k) // speed changes, same indexing
	npms := make([]float64, runs)      // absolute NPM energy
	errs := make([]error, runs)
	oneRun := func(w *pointWorker, r int) {
		// Reseeding before every scheme reproduces the common-random-
		// numbers discipline: within one run index every scheme sees the
		// same actual execution times and OR branch outcomes.
		w.src.Reseed(seeds[r])
		if err := plan.RunInto(core.RunConfig{
			Scheme: core.NPM, Deadline: deadline, Sampler: w.sampler,
		}, w.arena, &w.base); err != nil {
			errs[r] = fmt.Errorf("experiments: NPM run %d: %w", r, err)
			return
		}
		npms[r] = w.base.Energy()
		for i, s := range schemes {
			w.src.Reseed(seeds[r])
			if err := plan.RunInto(core.RunConfig{
				Scheme: s, Deadline: deadline, Sampler: w.sampler,
			}, w.arena, &w.res); err != nil {
				errs[r] = fmt.Errorf("experiments: %s run %d: %w", s, r, err)
				return
			}
			if w.res.LSTViolations > 0 || !w.res.MetDeadline {
				errs[r] = fmt.Errorf("experiments: %s run %d violated timing (finish %g, deadline %g, %d LST violations)",
					s, r, w.res.Finish, deadline, w.res.LSTViolations)
				return
			}
			norms[r*k+i] = w.res.Energy() / w.base.Energy()
			changes[r*k+i] = float64(w.res.SpeedChanges)
		}
	}

	if workers <= 0 {
		workers = int(defaultWorkers.Load())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		w := newPointWorker()
		for r := 0; r < runs; r++ {
			oneRun(w, r)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := newPointWorker()
				for {
					r := int(next.Add(1)) - 1
					if r >= runs {
						return
					}
					oneRun(ws, r)
				}
			}()
		}
		wg.Wait()
	}

	accs := make([]stats.Acc, k)
	chg := make([]stats.Acc, k)
	var npmAcc stats.Acc
	for r := 0; r < runs; r++ {
		if errs[r] != nil {
			return pt, errs[r]
		}
		npmAcc.Add(npms[r])
		for i := 0; i < k; i++ {
			accs[i].Add(norms[r*k+i])
			chg[i].Add(changes[r*k+i])
		}
	}
	for i, s := range schemes {
		pt.NormEnergy[s] = accs[i].Mean()
		pt.CI95[s] = accs[i].CI95()
		pt.SpeedChanges[s] = chg[i].Mean()
	}
	pt.NPMEnergy = npmAcc.Mean()
	return pt, nil
}

// Comparison is the outcome of CompareSchemes: the paired energy
// difference of two schemes on identical frames.
type Comparison struct {
	A, B core.Scheme
	// MeanDiff is mean(E_A − E_B)/E_NPM over the paired runs (normalized
	// units, negative means A saves more energy than B), CI95 its 95%
	// half-width and Z the paired z-statistic.
	MeanDiff, CI95, Z float64
	// Significant reports |Z| > 1.96.
	Significant bool
	Runs        int
}

// CompareSchemes runs two schemes on the same stream of frames (common
// random numbers) and tests whether their normalized energies differ
// significantly. It answers questions like "does adaptive speculation
// actually beat greedy slack sharing here, or is the gap noise?".
func CompareSchemes(plan *core.Plan, a, b core.Scheme, deadline float64,
	runs int, seed uint64) (Comparison, error) {
	cmp := Comparison{A: a, B: b, Runs: runs}
	var paired stats.Paired
	master := exectime.NewSource(seed)
	w := newPointWorker()
	for r := 0; r < runs; r++ {
		runSeed := master.Uint64()
		one := func(s core.Scheme) (float64, error) {
			w.src.Reseed(runSeed)
			if err := plan.RunInto(core.RunConfig{
				Scheme: s, Deadline: deadline, Sampler: w.sampler,
			}, w.arena, &w.res); err != nil {
				return 0, err
			}
			return w.res.Energy(), nil
		}
		base, err := one(core.NPM)
		if err != nil {
			return cmp, err
		}
		ea, err := one(a)
		if err != nil {
			return cmp, err
		}
		eb, err := one(b)
		if err != nil {
			return cmp, err
		}
		paired.Add(ea/base, eb/base)
	}
	cmp.MeanDiff = paired.MeanDiff()
	cmp.CI95 = paired.CI95()
	cmp.Z = paired.Z()
	cmp.Significant = paired.Significant()
	return cmp, nil
}

// EnergyVsLoad sweeps the system load — the canonical schedule length of
// the longest path divided by the deadline — producing the paper's
// Figure 4/5 style series. Loads must be in (0, 1].
func EnergyVsLoad(cfg Config, loads []float64) (*Series, error) {
	plan, err := core.NewPlan(cfg.Graph, cfg.Procs, cfg.Platform, cfg.Overheads)
	if err != nil {
		return nil, err
	}
	se := &Series{
		Title: fmt.Sprintf("%s on %d×%s: normalized energy vs load",
			cfg.Graph.Name, cfg.Procs, cfg.Platform.Name),
		XLabel:  "load",
		Schemes: cfg.Schemes,
	}
	for i, load := range loads {
		if load <= 0 || load > 1 {
			return nil, fmt.Errorf("experiments: load %g outside (0,1]", load)
		}
		d := plan.CTWorst / load
		pt, err := measurePoint(plan, cfg.Schemes, load, d, cfg.Runs, cfg.Seed+uint64(i), cfg.Workers)
		if err != nil {
			return nil, err
		}
		se.Points = append(se.Points, pt)
	}
	return se, nil
}

// EnergyVsAlpha sweeps α, the ratio of average-case to worst-case
// execution time of every task, at a fixed load — the paper's Figure 6
// series. The graph is cloned and its ACETs rescaled per point.
func EnergyVsAlpha(cfg Config, load float64, alphas []float64) (*Series, error) {
	if load <= 0 || load > 1 {
		return nil, fmt.Errorf("experiments: load %g outside (0,1]", load)
	}
	se := &Series{
		Title: fmt.Sprintf("%s on %d×%s: normalized energy vs alpha (load %.2g)",
			cfg.Graph.Name, cfg.Procs, cfg.Platform.Name, load),
		XLabel:  "alpha",
		Schemes: cfg.Schemes,
	}
	for i, alpha := range alphas {
		g := cfg.Graph.Clone()
		g.ScaleACET(alpha)
		plan, err := core.NewPlan(g, cfg.Procs, cfg.Platform, cfg.Overheads)
		if err != nil {
			return nil, err
		}
		d := plan.CTWorst / load
		pt, err := measurePoint(plan, cfg.Schemes, alpha, d, cfg.Runs, cfg.Seed+uint64(i), cfg.Workers)
		if err != nil {
			return nil, err
		}
		se.Points = append(se.Points, pt)
	}
	return se, nil
}

// sweepRange returns n+1 evenly spaced values from lo to hi inclusive.
func sweepRange(lo, hi float64, n int) []float64 {
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return out
}
