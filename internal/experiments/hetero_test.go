package experiments

import (
	"testing"

	"andorsched/internal/core"
)

// TestHeteroPlacementAblation pins the heterogeneous subsystem's headline
// property: on the big.LITTLE reference platform a non-default placement
// policy (energy-greedy) beats the fastest-first default on absolute
// energy, with zero deadline misses — measurePoint fails the whole point
// if any scheme run misses its deadline or starts a task after its LST,
// so the comparison below is only reached when every run was safe.
func TestHeteroPlacementAblation(t *testing.T) {
	var exp Experiment
	for _, e := range Ablations() {
		if e.ID == "hetero-biglittle" {
			exp = e
		}
	}
	if exp.Run == nil {
		t.Fatal("hetero-biglittle ablation not registered")
	}
	se, err := exp.Run(25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(se.Points) != 3 {
		t.Fatalf("points = %d, want 3 (one per placement policy)", len(se.Points))
	}
	ff, eg := se.Points[0], se.Points[1]
	if eg.NPMEnergy >= ff.NPMEnergy {
		t.Errorf("NPM: energy-greedy %g J ≥ fastest-first %g J; little cores should be cheaper",
			eg.NPMEnergy, ff.NPMEnergy)
	}
	for _, s := range se.Schemes {
		absFF := ff.NormEnergy[s] * ff.NPMEnergy
		absEG := eg.NormEnergy[s] * eg.NPMEnergy
		t.Logf("%-4s fastest-first %.4g J, energy-greedy %.4g J", s, absFF, absEG)
		if s == core.SPM || s == core.GSS {
			if absEG >= absFF {
				t.Errorf("%s: energy-greedy %g J ≥ fastest-first %g J", s, absEG, absFF)
			}
		}
	}
}
