package experiments

import (
	"testing"

	"andorsched/internal/core"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// TestMeasurePointAllocsConstantInRuns asserts the harness-level payoff of
// the arenas: the number of heap allocations in measurePoint is (nearly)
// independent of the run count — per-point setup allocates, per-run
// execution does not. Pre-arena, 10× the runs meant 10× the allocations.
func TestMeasurePointAllocsConstantInRuns(t *testing.T) {
	plan, err := core.NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	schemes := []core.Scheme{core.GSS, core.AS}
	deadline := plan.CTWorst * 2
	measure := func(runs int) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := measurePoint(plan, schemes, 0.5, deadline, runs, 42, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(20)
	large := measure(200)
	// The flat result slices and the final statistics folding may grow with
	// runs by a handful of allocations; the pre-arena harness grew by
	// thousands here (tens of allocations per run × 180 extra runs).
	if large > small+50 {
		t.Errorf("allocations scale with runs: %.0f at 20 runs vs %.0f at 200 runs", small, large)
	}
	t.Logf("measurePoint allocations: %.0f at 20 runs, %.0f at 200 runs", small, large)
}
