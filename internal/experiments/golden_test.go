package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"andorsched/internal/core"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGoldenSeries pins a small, fully deterministic experiment byte-for-
// byte. Any change to the engine's semantics, the policies' arithmetic,
// the RNG or the workloads shows up here; regenerate deliberately with
//
//	go test ./internal/experiments -run TestGoldenSeries -update
func TestGoldenSeries(t *testing.T) {
	se, err := EnergyVsLoad(Config{
		Graph:     workload.ATR(workload.DefaultATRConfig()),
		Procs:     2,
		Platform:  power.Transmeta5400(),
		Overheads: power.DefaultOverheads(),
		Schemes:   []core.Scheme{core.SPM, core.GSS, core.SS1, core.SS2, core.AS},
		Runs:      25,
		Seed:      2002,
		Workers:   3, // parallel on purpose: results must not depend on it
	}, []float64{0.2, 0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	got := se.CSV()
	path := filepath.Join("testdata", "golden_fig4a_small.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("series diverged from golden file %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}
