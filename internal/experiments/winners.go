package experiments

import (
	"fmt"
	"strings"

	"andorsched/internal/core"
)

// WinnerCell is one cell of a scheme-selection map: the best scheme at one
// (load, α) operating point and its margin over the runner-up.
type WinnerCell struct {
	Load, Alpha float64
	// Best is the scheme with the lowest mean normalized energy.
	Best core.Scheme
	// BestEnergy is its mean E/E_NPM; Margin is the runner-up's mean minus
	// BestEnergy (how much choosing right matters here).
	BestEnergy, Margin float64
}

// WinnerMap evaluates every scheme over a load × α grid and records which
// scheme wins each cell. It extends the paper's qualitative conclusion —
// which scheme is best depends on the operating point and the platform —
// into an operational artifact: given a system's load and measured α, read
// off the scheme to deploy. The α sweep clones and rescales the
// configuration's graph, exactly like EnergyVsAlpha.
func WinnerMap(cfg Config, loads, alphas []float64) ([][]WinnerCell, error) {
	if len(cfg.Schemes) < 2 {
		return nil, fmt.Errorf("experiments: WinnerMap needs at least two schemes")
	}
	grid := make([][]WinnerCell, len(alphas))
	for ai, alpha := range alphas {
		g := cfg.Graph.Clone()
		g.ScaleACET(alpha)
		plan, err := core.NewPlan(g, cfg.Procs, cfg.Platform, cfg.Overheads)
		if err != nil {
			return nil, err
		}
		grid[ai] = make([]WinnerCell, len(loads))
		for li, load := range loads {
			if load <= 0 || load > 1 {
				return nil, fmt.Errorf("experiments: load %g outside (0,1]", load)
			}
			d := plan.CTWorst / load
			pt, err := measurePoint(plan, cfg.Schemes, load, d, cfg.Runs,
				cfg.Seed+uint64(ai*len(loads)+li), cfg.Workers)
			if err != nil {
				return nil, err
			}
			cell := WinnerCell{Load: load, Alpha: alpha}
			best, second := -1, -1
			for si, s := range cfg.Schemes {
				e := pt.NormEnergy[s]
				switch {
				case best == -1 || e < pt.NormEnergy[cfg.Schemes[best]]:
					second = best
					best = si
				case second == -1 || e < pt.NormEnergy[cfg.Schemes[second]]:
					second = si
				}
			}
			cell.Best = cfg.Schemes[best]
			cell.BestEnergy = pt.NormEnergy[cell.Best]
			cell.Margin = pt.NormEnergy[cfg.Schemes[second]] - cell.BestEnergy
			grid[ai][li] = cell
		}
	}
	return grid, nil
}

// WinnerTable renders a winner map as text: rows are α values, columns are
// loads, cells name the winning scheme (with '*' when it wins by more than
// 1% of NPM — a margin worth acting on).
func WinnerTable(grid [][]WinnerCell) string {
	if len(grid) == 0 || len(grid[0]) == 0 {
		return "(empty winner map)\n"
	}
	var b strings.Builder
	b.WriteString("alpha\\load")
	for _, c := range grid[0] {
		fmt.Fprintf(&b, " %6.2g", c.Load)
	}
	b.WriteByte('\n')
	for _, row := range grid {
		fmt.Fprintf(&b, "%-10.2g", row[0].Alpha)
		for _, c := range row {
			name := c.Best.String()
			if c.Margin > 0.01 {
				name += "*"
			}
			fmt.Fprintf(&b, " %6s", name)
		}
		b.WriteByte('\n')
	}
	b.WriteString("(* = wins by more than 0.01 of normalized energy)\n")
	return b.String()
}

// WinnerSVG renders a winner map as an SVG heat map: one colored tile per
// (load, α) cell, colored by the winning scheme, with the cell's best
// normalized energy as its tooltip.
func WinnerSVG(grid [][]WinnerCell) string {
	if len(grid) == 0 || len(grid[0]) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40"><text x="8" y="24">empty map</text></svg>`
	}
	const (
		cell   = 52
		margin = 54
		legend = 120
	)
	rows, cols := len(grid), len(grid[0])
	width := margin + cols*cell + legend
	height := margin + rows*cell + 16
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="10">`,
		width, height)
	fmt.Fprintf(&b, `<text x="%d" y="14">best scheme per (load, α)</text>`, margin)
	seen := map[core.Scheme]bool{}
	for ri, row := range grid {
		y := margin + ri*cell
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">α=%.2g</text>`, margin-6, y+cell/2+4, row[0].Alpha)
		for ci, c := range row {
			x := margin + ci*cell
			if ri == 0 {
				fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%.2g</text>`, x+cell/2, margin-8, c.Load)
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#fff"><title>load %.2g α %.2g: %s %.4f (+%.4f margin)</title></rect>`,
				x, y, cell, cell, schemeColor(c.Best), c.Load, c.Alpha, c.Best, c.BestEnergy, c.Margin)
			fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" fill="#fff">%s</text>`,
				x+cell/2, y+cell/2+4, c.Best)
			seen[c.Best] = true
		}
	}
	// Legend of schemes that actually appear.
	li := 0
	for _, s := range append(append([]core.Scheme(nil), core.Schemes...), core.ExtendedSchemes...) {
		if !seen[s] {
			continue
		}
		y := margin + li*18
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="13" height="13" fill="%s"/>`, margin+cols*cell+16, y, schemeColor(s))
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`, margin+cols*cell+34, y+11, s)
		li++
	}
	b.WriteString(`</svg>`)
	return b.String()
}
