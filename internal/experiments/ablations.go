package experiments

import (
	"fmt"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/sim"
	"andorsched/internal/stats"
	"andorsched/internal/workload"
)

// ablationLoad is the fixed moderate load at which the ablations compare
// schemes (the region where the paper's dynamic schemes differ most).
const ablationLoad = 0.5

// Ablations returns the paper's stated future-work studies (§6: "we plan
// to experiment with different values of f_min/f_max and different number
// of speed levels") plus the sensitivity studies implied by §5: the speed-
// change overhead and the processor count.
func Ablations() []Experiment {
	return []Experiment{
		ablationFmin(),
		ablationLevels(),
		ablationOverhead(),
		ablationProcs(),
		ablationClairvoyant(),
		ablationStructure(),
		ablationSlew(),
		ablationReclaim(),
		ablationHeteroPlacement("hetero-symmetric", func() *power.Hetero { return power.SymmetricHetero(2) }),
		ablationHeteroPlacement("hetero-biglittle", power.BigLittle),
		ablationHeteroPlacement("hetero-accel", power.AccelOffload),
	}
}

// PlacementStudy is the schemes × placement-policies measurement of the
// heterogeneous ablations on an arbitrary platform: cmd/experiments
// -platform builds one for a user-supplied spec file or reference name.
func PlacementStudy(hp *power.Hetero) Experiment {
	return ablationHeteroPlacement("placement", func() *power.Hetero { return hp })
}

// heteroLoad is the load of the heterogeneous placement ablations,
// relative to the slowest placement's CT_worst. It is deliberately high:
// with lots of slack, DVS on the fast class reaches its low-voltage levels
// and placement barely matters; near the deadline the fast class is stuck
// at high voltage and routing work onto a cheaper class is the only lever
// left — the regime the placement policies are for.
const heteroLoad = 0.9

// placementPolicies is the X order of the heterogeneous placement
// ablations: X = 0 fastest-first (the default), 1 energy-greedy,
// 2 class-affinity.
func placementPolicies() []sim.PlacementPolicy {
	return []sim.PlacementPolicy{sim.FastestFirst, sim.EnergyGreedy, sim.ClassAffinity}
}

// ablationHeteroPlacement measures the schemes × placement-policies grid on
// one reference heterogeneous platform. Placement is a plan parameter —
// each policy compiles its own plan, shaping which class every task is
// pinned to — so the policies are compared at a common deadline (the
// slowest policy's CT_worst over the ablation load) at which every plan is
// feasible. NormEnergy stays normalized to the same plan's NPM run, which
// measures how much DVS slack each placement leaves; the absolute anchor
// for comparing policies against each other is NPMEnergy
// (and NormEnergy·NPMEnergy per scheme). On big.LITTLE the energy-greedy
// policy routes work onto the cheap little cores and beats fastest-first
// on absolute energy while still meeting every deadline (measurePoint
// fails the whole point on any miss or LST violation).
func ablationHeteroPlacement(id string, hetero func() *power.Hetero) Experiment {
	name := hetero().Name
	return Experiment{
		ID: id,
		Title: fmt.Sprintf("Ablation: schemes × placement policies on %s (ATR, common deadline, load %g)",
			name, heteroLoad),
		Run: func(runs int, seed uint64) (*Series, error) {
			hp := hetero()
			g := atrGraph()
			places := placementPolicies()
			plans := make([]*core.Plan, len(places))
			worst := 0.0
			for i, place := range places {
				plan, err := core.NewHeteroPlan(g, hp, power.DefaultOverheads(), place)
				if err != nil {
					return nil, err
				}
				plans[i] = plan
				if plan.CTWorst > worst {
					worst = plan.CTWorst
				}
			}
			d := worst / heteroLoad
			se := &Series{
				Title:   fmt.Sprintf("ATR on %s: energy by placement policy at a common deadline", hp.Name),
				XLabel:  "placement (0 fastest-first, 1 energy-greedy, 2 class-affinity)",
				Schemes: paperSchemes(),
			}
			for i, plan := range plans {
				// Same seed for every placement: paired comparison.
				pt, err := measurePoint(plan, se.Schemes, float64(i), d, runs, seed, 0)
				if err != nil {
					return nil, fmt.Errorf("%s placement %s: %w", hp.Name, places[i].Name(), err)
				}
				se.Points = append(se.Points, pt)
			}
			return se, nil
		},
	}
}

// ablationReclaim measures online slack reclamation under model mismatch.
// The plan is compiled assuming α = 0.5 (ATR rescaled), while the actual
// execution times are drawn around factor·ACET with the factor chosen so
// the actual α sweeps 0.1 to 1.0. When runs come in lighter than assumed,
// the static speculative floor (AS) is set too high for the slack that
// actually materializes; ORA's online estimator notices and lowers its
// floor back toward the greedy level, reclaiming the difference. With
// matched or heavier runs ORA's deadband keeps it at the AS floor, so the
// curves coincide there.
func ablationReclaim() Experiment {
	return Experiment{
		ID:    "reclaim",
		Title: "Ablation: normalized energy vs actual α under an assumed α of 0.5 (ATR, 2 CPUs, Transmeta, load 0.9)",
		Run: func(runs int, seed uint64) (*Series, error) {
			const assumed = 0.5
			g := atrGraph()
			g.ScaleACET(assumed)
			plan, err := core.NewPlan(g, 2, power.Transmeta5400(), power.DefaultOverheads())
			if err != nil {
				return nil, err
			}
			d := plan.CTWorst / 0.9
			se := &Series{
				Title:   "ATR on 2×Transmeta, plan assumes α=0.5: normalized energy vs actual α",
				XLabel:  "actual_alpha",
				Schemes: []core.Scheme{core.GSS, core.AS, core.ASP, core.ORA},
			}
			for i, actual := range []float64{0.1, 0.3, 0.5, 0.8, 1.0} {
				pt, err := measureBiasedPoint(plan, se.Schemes, actual, actual/assumed, d, runs, seed+uint64(i))
				if err != nil {
					return nil, err
				}
				se.Points = append(se.Points, pt)
			}
			return se, nil
		},
	}
}

// measureBiasedPoint is measurePoint with the sampler's average-case times
// scaled by factor (exectime.Biased), sequential — the reclaim table is
// small. Common random numbers still hold: every scheme of one run index
// replays the same seed through the same biased sampler.
func measureBiasedPoint(plan *core.Plan, schemes []core.Scheme, x, factor, deadline float64,
	runs int, seed uint64) (Point, error) {
	pt := Point{
		X: x, Deadline: deadline,
		NormEnergy:   make(map[core.Scheme]float64, len(schemes)),
		CI95:         make(map[core.Scheme]float64, len(schemes)),
		SpeedChanges: make(map[core.Scheme]float64, len(schemes)),
	}
	src := exectime.NewSource(seed)
	sampler := exectime.NewBiased(exectime.NewSampler(src), factor)
	arena := core.NewArena()
	seeds := make([]uint64, runs)
	master := exectime.NewSource(seed)
	for r := range seeds {
		seeds[r] = master.Uint64()
	}
	accs := make([]stats.Acc, len(schemes))
	chg := make([]stats.Acc, len(schemes))
	var npmAcc stats.Acc
	var base, res core.RunResult
	for r := 0; r < runs; r++ {
		src.Reseed(seeds[r])
		if err := plan.RunInto(core.RunConfig{
			Scheme: core.NPM, Deadline: deadline, Sampler: sampler,
		}, arena, &base); err != nil {
			return pt, fmt.Errorf("experiments: NPM run %d: %w", r, err)
		}
		npmAcc.Add(base.Energy())
		for i, s := range schemes {
			src.Reseed(seeds[r])
			if err := plan.RunInto(core.RunConfig{
				Scheme: s, Deadline: deadline, Sampler: sampler,
			}, arena, &res); err != nil {
				return pt, fmt.Errorf("experiments: %s run %d: %w", s, r, err)
			}
			if res.LSTViolations > 0 || !res.MetDeadline {
				return pt, fmt.Errorf("experiments: %s run %d violated timing (finish %g, deadline %g, %d LST violations)",
					s, r, res.Finish, deadline, res.LSTViolations)
			}
			accs[i].Add(res.Energy() / base.Energy())
			chg[i].Add(float64(res.SpeedChanges))
		}
	}
	for i, s := range schemes {
		pt.NormEnergy[s] = accs[i].Mean()
		pt.CI95[s] = accs[i].CI95()
		pt.SpeedChanges[s] = chg[i].Mean()
	}
	pt.NPMEnergy = npmAcc.Mean()
	return pt, nil
}

// ablationSlew enables the voltage-slew transition model of the paper's
// reference [3] (Burd & Brodersen): change cost proportional to the
// voltage swing, swept from 0 (the paper's fixed-cost model) to 400 µs/V.
// Large swings become expensive, which penalizes the greedy scheme's
// jumps between f_min and high recovery speeds more than the speculative
// schemes' small adjustments.
func ablationSlew() Experiment {
	return Experiment{
		ID:    "slew",
		Title: "Ablation: normalized energy vs voltage-slew cost (ATR, 2 CPUs, Transmeta, load 0.5)",
		Run: func(runs int, seed uint64) (*Series, error) {
			g := atrGraph() // built once per table, not per grid cell
			return pointSweep(
				"ATR on 2×Transmeta: normalized energy vs slew cost (µs per volt)",
				"slew_us_per_v", []float64{0, 50, 100, 200, 400},
				func(usPerV float64) (*core.Plan, float64, error) {
					ov := power.Overheads{
						SpeedCompCycles: 600,
						SpeedChangeTime: 5e-6,
						VoltSlewTime:    usPerV * 1e-6,
					}
					plan, err := core.NewPlan(g, 2, power.Transmeta5400(), ov)
					if err != nil {
						return nil, 0, err
					}
					return plan, plan.CTWorst / ablationLoad, nil
				}, runs, seed)
		},
	}
}

// ablationStructure characterizes sensitivity to application *shape* using
// the random-workload generator: the probability that a stage is an OR
// fork is swept from 0 (a pure AND application, the traditional model) to
// 0.9 (branch-heavy control flow). The more OR structure, the more path
// slack exists for the dynamic schemes to reclaim — the quantity the
// paper's AND/OR extension is about.
func ablationStructure() Experiment {
	return Experiment{
		ID:    "structure",
		Title: "Ablation: normalized energy vs OR-fork density (random apps, 2 CPUs, Transmeta, load 0.7)",
		Run: func(runs int, seed uint64) (*Series, error) {
			se := &Series{
				Title:   "random applications on 2×Transmeta: normalized energy vs fork probability",
				XLabel:  "fork_prob",
				Schemes: paperSchemes(),
			}
			// Averaging one random graph would measure that graph, not the
			// structure class: each point averages over several graphs.
			const graphs = 8
			perGraph := runs / graphs
			if perGraph < 1 {
				perGraph = 1
			}
			for i, forkProb := range []float64{0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9} {
				agg := Point{
					X:            forkProb,
					NormEnergy:   map[core.Scheme]float64{},
					CI95:         map[core.Scheme]float64{},
					SpeedChanges: map[core.Scheme]float64{},
				}
				for gi := 0; gi < graphs; gi++ {
					opts := andor.DefaultRandomOpts()
					opts.ForkProb = forkProb
					opts.MaxStages = 4
					g := workload.Random(seed^(uint64(gi)*0x9e37+0x5eed), opts)
					plan, err := core.NewPlan(g, 2, power.Transmeta5400(), power.DefaultOverheads())
					if err != nil {
						return nil, err
					}
					d := plan.CTWorst / 0.7
					pt, err := measurePoint(plan, se.Schemes, forkProb, d, perGraph, seed+uint64(i*graphs+gi), 0)
					if err != nil {
						return nil, err
					}
					for _, s := range se.Schemes {
						agg.NormEnergy[s] += pt.NormEnergy[s] / graphs
						agg.CI95[s] += pt.CI95[s] / graphs
						agg.SpeedChanges[s] += pt.SpeedChanges[s] / graphs
					}
					agg.NPMEnergy += pt.NPMEnergy / graphs
					agg.Deadline = d
				}
				se.Points = append(se.Points, agg)
			}
			return se, nil
		},
	}
}

// ablationClairvoyant compares the schemes against the clairvoyant
// single-speed oracle (core.CLV) over load — how much of the theoretically
// reachable saving each scheme realizes (§3.3's intuition made
// measurable). Not a figure of the paper; it quantifies the gap the
// speculative schemes are designed to close.
func ablationClairvoyant() Experiment {
	return Experiment{
		ID:    "clv",
		Title: "Ablation: schemes vs the clairvoyant single-speed bound (ATR, 2 CPUs, Transmeta)",
		Run: func(runs int, seed uint64) (*Series, error) {
			se := &Series{
				Title:   "ATR on 2×Transmeta: normalized energy vs load, with the clairvoyant bound",
				XLabel:  "load",
				Schemes: append(paperSchemes(), core.CLV, core.ASP),
			}
			plan, err := core.NewPlan(atrGraph(), 2, power.Transmeta5400(), power.DefaultOverheads())
			if err != nil {
				return nil, err
			}
			for i, load := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
				pt, err := measurePoint(plan, se.Schemes, load, plan.CTWorst/load, runs, seed+uint64(i), 0)
				if err != nil {
					return nil, err
				}
				se.Points = append(se.Points, pt)
			}
			return se, nil
		},
	}
}

// pointSweep runs one measured point per element of xs, building a fresh
// configuration each time.
func pointSweep(title, xlabel string, xs []float64,
	build func(x float64) (*core.Plan, float64, error),
	runs int, seed uint64) (*Series, error) {
	se := &Series{Title: title, XLabel: xlabel, Schemes: paperSchemes()}
	for i, x := range xs {
		plan, deadline, err := build(x)
		if err != nil {
			return nil, err
		}
		pt, err := measurePoint(plan, se.Schemes, x, deadline, runs, seed+uint64(i), 0)
		if err != nil {
			return nil, err
		}
		se.Points = append(se.Points, pt)
	}
	return se, nil
}

// ablationFmin varies the minimal speed: synthetic 16-level platforms with
// f_min/f_max from 0.1 to 0.8. The paper predicts the greedy scheme
// benefits from a high f_min (it is prevented from spending all slack
// early).
func ablationFmin() Experiment {
	return Experiment{
		ID:    "fmin",
		Title: "Ablation: normalized energy vs f_min/f_max (16 levels, ATR, 2 CPUs, load 0.5)",
		Run: func(runs int, seed uint64) (*Series, error) {
			ratios := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
			g := atrGraph() // built once per table, not per grid cell
			return pointSweep(
				"ATR on 2×synthetic platforms: normalized energy vs f_min/f_max",
				"fmin/fmax", ratios,
				func(ratio float64) (*core.Plan, float64, error) {
					plat := power.Synthetic(16, ratio*700, 700, 0.8+ratio*0.5, 1.65)
					plan, err := core.NewPlan(g, 2, plat, power.DefaultOverheads())
					if err != nil {
						return nil, 0, err
					}
					return plan, plan.CTWorst / ablationLoad, nil
				}, runs, seed)
		},
	}
}

// ablationLevels varies the number of speed levels between 200 and 700 MHz.
// The paper predicts few levels help the greedy scheme by suppressing
// frequent speed changes.
func ablationLevels() Experiment {
	return Experiment{
		ID:    "levels",
		Title: "Ablation: normalized energy vs number of speed levels (200–700MHz, ATR, 2 CPUs, load 0.5)",
		Run: func(runs int, seed uint64) (*Series, error) {
			counts := []float64{2, 3, 4, 6, 8, 16, 32}
			g := atrGraph() // built once per table, not per grid cell
			return pointSweep(
				"ATR on 2×synthetic platforms: normalized energy vs level count",
				"levels", counts,
				func(n float64) (*core.Plan, float64, error) {
					plat := power.Synthetic(int(n), 200, 700, 1.10, 1.65)
					plan, err := core.NewPlan(g, 2, plat, power.DefaultOverheads())
					if err != nil {
						return nil, 0, err
					}
					return plan, plan.CTWorst / ablationLoad, nil
				}, runs, seed)
		},
	}
}

// ablationOverhead varies the voltage/speed change cost from 0 to 500 µs
// (the paper cites 25–150 µs for contemporary hardware and uses 5 µs
// expecting technology to improve).
func ablationOverhead() Experiment {
	return Experiment{
		ID:    "overhead",
		Title: "Ablation: normalized energy vs speed-change overhead (ATR, 2 CPUs, Transmeta, load 0.5)",
		Run: func(runs int, seed uint64) (*Series, error) {
			micros := []float64{0, 5, 25, 50, 100, 250, 500}
			g := atrGraph() // built once per table, not per grid cell
			return pointSweep(
				"ATR on 2×Transmeta: normalized energy vs change overhead (µs)",
				"overhead_us", micros,
				func(us float64) (*core.Plan, float64, error) {
					ov := power.Overheads{SpeedCompCycles: 600, SpeedChangeTime: us * 1e-6}
					plan, err := core.NewPlan(g, 2, power.Transmeta5400(), ov)
					if err != nil {
						return nil, 0, err
					}
					return plan, plan.CTWorst / ablationLoad, nil
				}, runs, seed)
		},
	}
}

// ablationProcs varies the processor count. The paper: "when the number of
// processors increases, the performance of the dynamic schemes decreases
// due to the limited parallelism and the frequent idleness of the
// processors".
func ablationProcs() Experiment {
	return Experiment{
		ID:    "procs",
		Title: "Ablation: normalized energy vs processor count (ATR, Transmeta, load 0.5)",
		Run: func(runs int, seed uint64) (*Series, error) {
			ms := []float64{1, 2, 4, 6, 8}
			g := atrGraph() // built once per table, not per grid cell
			return pointSweep(
				"ATR on Transmeta: normalized energy vs processors",
				"procs", ms,
				func(m float64) (*core.Plan, float64, error) {
					plan, err := core.NewPlan(g, int(m), power.Transmeta5400(), power.DefaultOverheads())
					if err != nil {
						return nil, 0, err
					}
					return plan, plan.CTWorst / ablationLoad, nil
				}, runs, seed)
		},
	}
}
