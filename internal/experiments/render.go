package experiments

import (
	"fmt"
	"strings"

	"andorsched/internal/power"
)

// Table renders the series as an aligned text table with one row per X
// value and one column of mean normalized energy per scheme:
//
//	load     SPM      GSS      SS1      SS2      AS
//	0.10   0.4137   0.3205   0.3318   0.3268   0.3241
func (se *Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", se.Title)
	fmt.Fprintf(&b, "%-10s", se.XLabel)
	for _, s := range se.Schemes {
		fmt.Fprintf(&b, " %8s", s)
	}
	b.WriteByte('\n')
	for _, pt := range se.Points {
		fmt.Fprintf(&b, "%-10.3g", pt.X)
		for _, s := range se.Schemes {
			fmt.Fprintf(&b, " %8.4f", pt.NormEnergy[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the series as comma-separated values with a header row,
// including per-scheme confidence half-widths and speed-change counts.
func (se *Series) CSV() string {
	var b strings.Builder
	b.WriteString(se.XLabel)
	for _, s := range se.Schemes {
		fmt.Fprintf(&b, ",%s,%s_ci95,%s_changes", s, s, s)
	}
	b.WriteString(",npm_energy_j,deadline_s\n")
	for _, pt := range se.Points {
		fmt.Fprintf(&b, "%g", pt.X)
		for _, s := range se.Schemes {
			fmt.Fprintf(&b, ",%g,%g,%g", pt.NormEnergy[s], pt.CI95[s], pt.SpeedChanges[s])
		}
		fmt.Fprintf(&b, ",%g,%g\n", pt.NPMEnergy, pt.Deadline)
	}
	return b.String()
}

// ChangesTable renders the mean speed-change counts of the series.
func (se *Series) ChangesTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — mean speed changes per run\n", se.Title)
	fmt.Fprintf(&b, "%-10s", se.XLabel)
	for _, s := range se.Schemes {
		fmt.Fprintf(&b, " %8s", s)
	}
	b.WriteByte('\n')
	for _, pt := range se.Points {
		fmt.Fprintf(&b, "%-10.3g", pt.X)
		for _, s := range se.Schemes {
			fmt.Fprintf(&b, " %8.2f", pt.SpeedChanges[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PlatformTable renders a platform's operating points in the layout of the
// paper's Tables 1 and 2.
func PlatformTable(p *power.Platform) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s voltage/speed settings (%d levels)\n", p.Name, p.NumLevels())
	fmt.Fprintf(&b, "%8s %8s %10s\n", "f(MHz)", "V(V)", "P(mW)")
	for i, l := range p.Levels() {
		fmt.Fprintf(&b, "%8.0f %8.3f %10.1f\n", l.Freq/1e6, l.Volt, p.PowerAt(i)*1e3)
	}
	return b.String()
}
