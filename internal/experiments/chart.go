package experiments

import (
	"fmt"
	"math"
	"strings"

	"andorsched/internal/core"
)

// schemeColor maps schemes to stable colors across all charts.
func schemeColor(s core.Scheme) string {
	switch s {
	case core.NPM:
		return "#888888"
	case core.SPM:
		return "#c0392b"
	case core.GSS:
		return "#2471a3"
	case core.SS1:
		return "#229954"
	case core.SS2:
		return "#7d3c98"
	case core.AS:
		return "#e67e22"
	case core.CLV:
		return "#111111"
	case core.ASP:
		return "#16a085"
	case core.ORA:
		return "#d4ac0d"
	}
	return "#555555"
}

// ChartSVG renders the series as a self-contained SVG line chart —
// normalized energy against the swept parameter, one line per scheme, in
// the layout of the paper's figures. No external assets.
func (se *Series) ChartSVG(width, height int) string {
	const (
		padL, padR = 56, 110
		padT, padB = 34, 40
	)
	if len(se.Points) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="220" height="40"><text x="8" y="24">empty series</text></svg>`
	}
	plotW := float64(width - padL - padR)
	plotH := float64(height - padT - padB)

	xmin, xmax := se.Points[0].X, se.Points[len(se.Points)-1].X
	if xmax == xmin {
		xmax = xmin + 1
	}
	ymin, ymax := math.Inf(1), 0.0
	for _, pt := range se.Points {
		for _, s := range se.Schemes {
			v := pt.NormEnergy[s]
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	// Headroom and round axis bounds to tidy decimals.
	ymin = math.Max(0, math.Floor(ymin*10)/10-0.05)
	ymax = math.Min(1.3, math.Ceil(ymax*10)/10+0.05)

	x := func(v float64) float64 { return float64(padL) + plotW*(v-xmin)/(xmax-xmin) }
	y := func(v float64) float64 { return float64(padT) + plotH*(1-(v-ymin)/(ymax-ymin)) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`,
		width, height)
	title := se.Title
	if len(title) > 88 {
		title = title[:85] + "..."
	}
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="12">%s</text>`, padL, htmlEscape(title))

	// Axes and grid.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#999"/>`,
		padL, padT, plotW, plotH)
	for i := 0; i <= 5; i++ {
		yv := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`,
			padL, y(yv), float64(padL)+plotW, y(yv))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.2f</text>`, padL-6, y(yv)+4, yv)
	}
	for _, pt := range se.Points {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%.2g</text>`,
			x(pt.X), height-padB+16, pt.X)
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`,
		float64(padL)+plotW/2, height-6, htmlEscape(se.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" transform="rotate(-90 14 %.1f)" text-anchor="middle">E/E_NPM</text>`,
		float64(padT)+plotH/2, float64(padT)+plotH/2)

	// One polyline + markers per scheme, plus the legend.
	for si, s := range se.Schemes {
		color := schemeColor(s)
		var pts []string
		for _, pt := range se.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(pt.X), y(pt.NormEnergy[s])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`,
			strings.Join(pts, " "), color)
		for _, pt := range se.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.4" fill="%s"><title>%s @ %.3g: %.4f ±%.4f</title></circle>`,
				x(pt.X), y(pt.NormEnergy[s]), color, s, pt.X, pt.NormEnergy[s], pt.CI95[s])
		}
		ly := padT + 14*si
		fmt.Fprintf(&b, `<line x1="%.0f" y1="%d" x2="%.0f" y2="%d" stroke="%s" stroke-width="2"/>`,
			float64(width-padR)+10, ly+8, float64(width-padR)+30, ly+8, color)
		fmt.Fprintf(&b, `<text x="%.0f" y="%d">%s</text>`, float64(width-padR)+34, ly+12, s)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
