package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccBasics(t *testing.T) {
	var a Acc
	if a.N() != 0 || a.Mean() != 0 || a.Var() != 0 || a.StdErr() != 0 {
		t.Error("zero-value Acc not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if !near(a.Mean(), 5) {
		t.Errorf("Mean = %g, want 5", a.Mean())
	}
	// Unbiased variance of this classic sample: 32/7.
	if !near(a.Var(), 32.0/7) {
		t.Errorf("Var = %g, want %g", a.Var(), 32.0/7)
	}
	if !near(a.Stddev(), math.Sqrt(32.0/7)) {
		t.Errorf("Stddev = %g", a.Stddev())
	}
	if !near(a.StdErr(), a.Stddev()/math.Sqrt(8)) {
		t.Errorf("StdErr = %g", a.StdErr())
	}
	if !near(a.CI95(), 1.96*a.StdErr()) {
		t.Errorf("CI95 = %g", a.CI95())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %g/%g", a.Min(), a.Max())
	}
}

func TestAccSingleSample(t *testing.T) {
	var a Acc
	a.Add(3)
	if a.Mean() != 3 || a.Var() != 0 || a.Min() != 3 || a.Max() != 3 {
		t.Error("single-sample stats wrong")
	}
}

func TestMeanSlice(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !near(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
}

// TestWelfordMatchesNaive: the online algorithm agrees with the two-pass
// formula on random data.
func TestWelfordMatchesNaive(t *testing.T) {
	prop := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		for i, x := range xs {
			// Bound magnitudes to keep the naive two-pass stable.
			xs[i] = math.Mod(x, 1e6)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		var a Acc
		var sum float64
		for _, x := range xs {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var sq float64
		for _, x := range xs {
			sq += (x - mean) * (x - mean)
		}
		naiveVar := sq / float64(len(xs)-1)
		return near(a.Mean(), mean) && math.Abs(a.Var()-naiveVar) <= 1e-6*(1+naiveVar)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func near(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9+1e-9*math.Abs(b)
}
