package stats

import "math"

// Paired accumulates paired observations (a_i, b_i) — e.g. two schemes'
// energies on the same simulated frame under common random numbers — and
// summarizes the difference a−b. Pairing removes the between-frame
// variance, which is what makes small scheme differences resolvable with
// ~1000 runs.
type Paired struct {
	diff Acc
}

// Add incorporates one pair.
func (p *Paired) Add(a, b float64) { p.diff.Add(a - b) }

// N returns the number of pairs.
func (p *Paired) N() int { return p.diff.N() }

// MeanDiff returns the mean of a−b.
func (p *Paired) MeanDiff() float64 { return p.diff.Mean() }

// CI95 returns the 95% confidence half-width of the mean difference
// (normal approximation, adequate for the hundreds-to-thousands of pairs
// used here).
func (p *Paired) CI95() float64 { return p.diff.CI95() }

// Z returns the standardized mean difference (the paired z-statistic):
// mean(a−b) / stderr. Zero when fewer than two pairs or the differences
// are constant zero.
func (p *Paired) Z() float64 {
	se := p.diff.StdErr()
	if se == 0 {
		if p.diff.Mean() == 0 {
			return 0
		}
		return math.Inf(sign(p.diff.Mean()))
	}
	return p.diff.Mean() / se
}

// Significant reports whether the mean difference is distinguishable from
// zero at the 5% level (|z| > 1.96).
func (p *Paired) Significant() bool {
	z := p.Z()
	return math.Abs(z) > 1.96
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
