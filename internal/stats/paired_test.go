package stats

import (
	"math"
	"testing"
)

func TestPairedBasics(t *testing.T) {
	var p Paired
	// Constant offset of −0.1 with no noise: mean −0.1, z → −Inf style
	// (stderr 0 would be Inf, so add a little noise instead).
	offsets := []float64{-0.11, -0.09, -0.10, -0.12, -0.08}
	for i, d := range offsets {
		a := 0.5 + 0.01*float64(i)
		p.Add(a+d, a)
	}
	if p.N() != 5 {
		t.Errorf("N = %d", p.N())
	}
	if !near(p.MeanDiff(), -0.10) {
		t.Errorf("MeanDiff = %g, want -0.1", p.MeanDiff())
	}
	if !p.Significant() {
		t.Errorf("clear difference not significant (z = %g)", p.Z())
	}
	if p.Z() >= 0 {
		t.Errorf("z should be negative, got %g", p.Z())
	}
}

func TestPairedNoDifference(t *testing.T) {
	var p Paired
	for i := 0; i < 100; i++ {
		v := float64(i % 7)
		p.Add(v, v)
	}
	if p.MeanDiff() != 0 || p.Z() != 0 || p.Significant() {
		t.Errorf("identical pairs: diff %g z %g", p.MeanDiff(), p.Z())
	}
}

func TestPairedConstantNonzero(t *testing.T) {
	var p Paired
	p.Add(1, 0)
	p.Add(2, 1)
	// Differences are exactly 1 with zero variance: z is +Inf.
	if !math.IsInf(p.Z(), 1) {
		t.Errorf("z = %g, want +Inf", p.Z())
	}
	if !p.Significant() {
		t.Error("constant nonzero difference should be significant")
	}
}

func TestPairedNoiseInsignificant(t *testing.T) {
	var p Paired
	// Symmetric noise around zero: should not be significant.
	noise := []float64{0.05, -0.04, 0.03, -0.05, 0.01, -0.02, 0.04, -0.03}
	for _, d := range noise {
		p.Add(1+d, 1)
	}
	if p.Significant() {
		t.Errorf("noise flagged significant (z = %g)", p.Z())
	}
}
