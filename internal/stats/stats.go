// Package stats provides the small statistics toolkit used by the
// experiment harness: accumulation of sample means, standard deviations
// and confidence intervals, without any external dependencies.
package stats

import "math"

// Acc accumulates samples with Welford's online algorithm, which is
// numerically stable for long runs. The zero value is an empty accumulator
// ready for use.
type Acc struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (a *Acc) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the sample count.
func (a *Acc) N() int { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Acc) Mean() float64 { return a.mean }

// Min and Max return the sample extremes (0 for an empty accumulator).
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest sample seen.
func (a *Acc) Max() float64 { return a.max }

// Var returns the unbiased sample variance (0 for fewer than two samples).
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Stddev returns the unbiased sample standard deviation.
func (a *Acc) Stddev() float64 { return math.Sqrt(a.Var()) }

// StdErr returns the standard error of the mean.
func (a *Acc) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Stddev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean (adequate for the 1000-run averages used here).
func (a *Acc) CI95() float64 { return 1.96 * a.StdErr() }

// Mean returns the mean of a slice (0 for an empty slice).
func Mean(xs []float64) float64 {
	var a Acc
	for _, x := range xs {
		a.Add(x)
	}
	return a.Mean()
}
