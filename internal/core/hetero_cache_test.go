package core

import (
	"math"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/core/schedcache"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/sim"
	"andorsched/internal/workload"
)

// TestHeteroScheduleCacheDifferential pins the correctness bar for routing
// NewHeteroPlan through the section-schedule cache: across random AND/OR
// workloads × reference platforms × placement policies, compiling uncached,
// against a cold cache and against the warm cache must produce bit-identical
// plans — including the restored CanonClass pinning — and those plans must
// produce bit-identical run results under common random numbers. All
// placements share one cache so a key collision between placements (or with
// the homogeneous entries) would surface as a diverged plan.
func TestHeteroScheduleCacheDifferential(t *testing.T) {
	hps := []*power.Hetero{power.BigLittle(), power.AccelOffload(), power.SymmetricHetero(3)}
	places := []sim.PlacementPolicy{sim.FastestFirst, sim.EnergyGreedy, sim.ClassAffinity}
	ov := power.DefaultOverheads()
	cache := schedcache.New(DefaultScheduleCacheCapacity)
	for wl := 0; wl < 30; wl++ {
		g := workload.Random(uint64(wl)+1, cacheDifferentialOpts(wl))
		hp := hps[wl%len(hps)]
		for _, place := range places {
			uncached, err := NewHeteroPlanWithCache(g, hp, ov, place, nil)
			if err != nil {
				t.Fatalf("workload %d %s: uncached NewHeteroPlan: %v", wl, place.Name(), err)
			}
			missesBefore := cache.Stats().Misses
			cold, err := NewHeteroPlanWithCache(g, hp, ov, place, cache)
			if err != nil {
				t.Fatalf("workload %d %s: cold cached NewHeteroPlan: %v", wl, place.Name(), err)
			}
			if cache.Stats().Misses == missesBefore {
				t.Fatalf("workload %d %s: cold compile recorded no cache misses", wl, place.Name())
			}
			hitsBefore := cache.Stats().Hits
			warm, err := NewHeteroPlanWithCache(g, hp, ov, place, cache)
			if err != nil {
				t.Fatalf("workload %d %s: warm cached NewHeteroPlan: %v", wl, place.Name(), err)
			}
			if cache.Stats().Hits == hitsBefore {
				t.Fatalf("workload %d %s: warm compile recorded no cache hits", wl, place.Name())
			}
			if diff := eqPlans(uncached, cold); diff != "" {
				t.Fatalf("workload %d %s: cold cached plan diverged: %s", wl, place.Name(), diff)
			}
			if diff := eqPlans(uncached, warm); diff != "" {
				t.Fatalf("workload %d %s: warm cached plan diverged: %s", wl, place.Name(), diff)
			}

			cfg := RunConfig{Deadline: uncached.CTWorst / 0.5, CollectTrace: true, Validate: true}
			for _, s := range allSchemes() {
				cfg.Scheme = s
				seed := uint64(wl)*41 + uint64(s)
				cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
				ref, err := uncached.Run(cfg)
				if err != nil {
					t.Fatalf("workload %d %s %s: uncached run: %v", wl, place.Name(), s, err)
				}
				cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
				got, err := warm.Run(cfg)
				if err != nil {
					t.Fatalf("workload %d %s %s: cached run: %v", wl, place.Name(), s, err)
				}
				if diff := eqRunResults(ref, got); diff != "" {
					t.Fatalf("workload %d %s %s: cached plan's run diverged: %s", wl, place.Name(), s, diff)
				}
			}
		}
	}
	if ev := cache.Stats().Size; ev == 0 {
		t.Fatal("cache ended empty after the sweep")
	}
}

// TestHeteroCacheClassAffinityKeying pins the class-pinning part of the
// cache key: two workloads whose graphs digest identically up to their
// `@class` affinity tags must not share a section-schedule entry. Without
// ClassBits in the key, the second compile would hit the first's entry and
// inherit its placement.
func TestHeteroCacheClassAffinityKeying(t *testing.T) {
	src := "app collide\ntask a 4ms 2ms @little\ntask b 4ms 2ms\nedge a -> b\n"
	alt := "app collide\ntask a 4ms 2ms\ntask b 4ms 2ms @little\nedge a -> b\n"
	g1, err := andor.ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := andor.ParseText(alt)
	if err != nil {
		t.Fatal(err)
	}
	hp := power.BigLittle()
	ov := power.DefaultOverheads()
	cache := schedcache.New(64)
	for _, g := range []*andor.Graph{g1, g2} {
		want, err := NewHeteroPlanWithCache(g, hp, ov, sim.ClassAffinity, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewHeteroPlanWithCache(g, hp, ov, sim.ClassAffinity, cache)
		if err != nil {
			t.Fatal(err)
		}
		if diff := eqPlans(want, got); diff != "" {
			t.Fatalf("affinity-swapped workload diverged under a shared cache: %s", diff)
		}
	}
}

// relClose reports |a-b| ≤ tol·max(1,|a|,|b|): the per-class decomposition
// repeats the scalar accumulation's terms but groups them differently, so
// the sums agree only up to float re-association.
func relClose(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

// TestHeteroClassEnergyConservation pins the per-class energy breakdown:
// on heterogeneous runs the class slices are sized to the platform's class
// count and their totals sum to the existing aggregate energies (gross =
// active+overhead); homogeneous runs carry no per-class slices, so their
// serialized results are unchanged.
func TestHeteroClassEnergyConservation(t *testing.T) {
	hps := []*power.Hetero{power.BigLittle(), power.AccelOffload(), power.SymmetricHetero(2)}
	ov := power.DefaultOverheads()
	for wl := 0; wl < 12; wl++ {
		g := workload.Random(uint64(wl)+3, andor.DefaultRandomOpts())
		hp := hps[wl%len(hps)]
		plan, err := NewHeteroPlan(g, hp, ov, sim.FastestFirst)
		if err != nil {
			t.Fatalf("workload %d: %v", wl, err)
		}
		cfg := RunConfig{Deadline: plan.CTWorst / 0.5}
		for _, s := range allSchemes() {
			cfg.Scheme = s
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(uint64(wl)*7 + uint64(s)))
			res, err := plan.Run(cfg)
			if err != nil {
				t.Fatalf("workload %d %s: %v", wl, s, err)
			}
			nc := hp.NumClasses()
			if len(res.ClassGrossEnergy) != nc || len(res.ClassIdleEnergy) != nc {
				t.Fatalf("workload %d %s: class slice lengths (%d,%d), want %d",
					wl, s, len(res.ClassGrossEnergy), len(res.ClassIdleEnergy), nc)
			}
			var gross, idle float64
			for c := 0; c < nc; c++ {
				gross += res.ClassGrossEnergy[c]
				idle += res.ClassIdleEnergy[c]
			}
			if want := res.ActiveEnergy + res.OverheadEnergy; !relClose(gross, want) {
				t.Errorf("workload %d %s: Σ ClassGrossEnergy = %g, want active+overhead = %g",
					wl, s, gross, want)
			}
			if !relClose(idle, res.IdleEnergy) {
				t.Errorf("workload %d %s: Σ ClassIdleEnergy = %g, want IdleEnergy = %g",
					wl, s, idle, res.IdleEnergy)
			}
		}
	}

	// Homogeneous runs must not grow per-class slices.
	g := workload.ATR(workload.DefaultATRConfig())
	plan, err := NewPlan(g, 3, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(RunConfig{
		Scheme: GSS, Deadline: plan.CTWorst / 0.5,
		Sampler: exectime.NewSampler(exectime.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClassGrossEnergy != nil || res.ClassIdleEnergy != nil {
		t.Fatalf("homogeneous run grew per-class energy slices: %v / %v",
			res.ClassGrossEnergy, res.ClassIdleEnergy)
	}
}
