package core_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// TestPlanSharedAcrossGoroutines exercises the Plan immutability contract
// at scale: one Plan shared by many goroutines, each with its own Arena
// and reseeded Sampler, must produce exactly the results a lone goroutine
// produces for the same seeds — and must not trip the race detector, which
// is what certifies "compile once, serve concurrently" for the plan cache.
// Runs mix schemes (including the clairvoyant probe, which reuses extra
// arena state) and interleave single runs with frame streams.
func TestPlanSharedAcrossGoroutines(t *testing.T) {
	plan, err := core.NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	d := plan.CTWorst / 0.6
	schemes := []core.Scheme{core.NPM, core.SPM, core.GSS, core.SS1, core.SS2, core.AS, core.CLV, core.ASP, core.ORA}

	const goroutines = 16
	const runsPer = 60

	// Reference pass: one goroutine computes every (worker, run) result.
	type key struct{ w, r int }
	want := make(map[key]fingerprint, goroutines*runsPer)
	refArena := core.NewArena()
	refSrc := exectime.NewSource(0)
	refSampler := exectime.NewSampler(refSrc)
	var res core.RunResult
	for w := 0; w < goroutines; w++ {
		for r := 0; r < runsPer; r++ {
			seed := uint64(w)<<32 | uint64(r)
			refSrc.Reseed(seed)
			cfg := core.RunConfig{
				Scheme:   schemes[(w+r)%len(schemes)],
				Deadline: d,
				Sampler:  refSampler,
			}
			if err := plan.RunInto(cfg, refArena, &res); err != nil {
				t.Fatal(err)
			}
			want[key{w, r}] = fingerprintOf(&res)
		}
	}

	// Concurrent pass: the same seeds spread over goroutines sharing plan.
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := core.NewArena()
			src := exectime.NewSource(0)
			sampler := exectime.NewSampler(src)
			var out core.RunResult
			for r := 0; r < runsPer; r++ {
				seed := uint64(w)<<32 | uint64(r)
				src.Reseed(seed)
				cfg := core.RunConfig{
					Scheme:   schemes[(w+r)%len(schemes)],
					Deadline: d,
					Sampler:  sampler,
				}
				if err := plan.RunInto(cfg, arena, &out); err != nil {
					errs <- fmt.Errorf("worker %d run %d: %w", w, r, err)
					return
				}
				if got := fingerprintOf(&out); got != want[key{w, r}] {
					errs <- fmt.Errorf("worker %d run %d: concurrent result %+v != serial %+v", w, r, got, want[key{w, r}])
					return
				}
				// Read-only accessors race against other workers' runs.
				_ = plan.Feasible(d)
				_ = plan.SectionAvgRemaining(r % plan.NumSections())
			}
			// A stream on the same shared plan, same arena.
			src.Reseed(uint64(w) + 1)
			if _, err := plan.RunStreamArena(core.StreamConfig{
				Scheme: core.AS, Period: d, Frames: 20,
				Sampler: sampler, CarryLevels: true,
			}, arena); err != nil {
				errs <- fmt.Errorf("worker %d stream: %w", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	runtime.KeepAlive(plan)
}

// TestORASharedPlanBitIdentical pins ORA's run-scoped estimator contract:
// the online α-estimator lives in each run's Arena, never on the Plan, so
// two goroutines running ORA on one shared Plan with separate arenas must
// neither race nor couple — each goroutine's results are bit-identical to
// a serial pass over the same seeds. Low α maximizes the dynamic slack the
// estimator reacts to; a goroutine-dependent seed schedule drives the two
// estimators through different trajectories, so any state leaking through
// the Plan would desynchronize the fingerprints.
func TestORASharedPlanBitIdentical(t *testing.T) {
	g := workload.ATR(workload.DefaultATRConfig())
	g.ScaleACET(0.1)
	plan, err := core.NewPlan(g, 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	d := plan.CTWorst / 0.8
	const goroutines = 2
	const runsPer = 200

	serial := func(w int) []fingerprint {
		arena := core.NewArena()
		src := exectime.NewSource(0)
		sampler := exectime.NewSampler(src)
		var res core.RunResult
		out := make([]fingerprint, runsPer)
		for r := 0; r < runsPer; r++ {
			src.Reseed(uint64(w)*1000003 + uint64(r))
			err := plan.RunInto(core.RunConfig{
				Scheme: core.ORA, Deadline: d, Sampler: sampler,
			}, arena, &res)
			if err != nil {
				t.Errorf("worker %d run %d: %v", w, r, err)
				return out
			}
			out[r] = fingerprintOf(&res)
		}
		return out
	}

	want := make([][]fingerprint, goroutines)
	for w := range want {
		want[w] = serial(w)
	}

	got := make([][]fingerprint, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = serial(w)
		}(w)
	}
	wg.Wait()
	for w := range want {
		for r := range want[w] {
			if got[w][r] != want[w][r] {
				t.Fatalf("worker %d run %d: concurrent ORA result %+v != serial %+v — estimator state escaped the arena",
					w, r, got[w][r], want[w][r])
			}
		}
	}
	runtime.KeepAlive(plan)
}

// fingerprint condenses a RunResult into a comparable value. Exact float
// equality is intentional: the contract is bit-identical results.
type fingerprint struct {
	finish, energy float64
	speedChanges   int
	met            bool
	lst            int
	pathLen        int
}

func fingerprintOf(r *core.RunResult) fingerprint {
	return fingerprint{
		finish: r.Finish, energy: r.Energy(),
		speedChanges: r.SpeedChanges, met: r.MetDeadline,
		lst: r.LSTViolations, pathLen: len(r.Path),
	}
}
