package core

import (
	"fmt"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/core/schedcache"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// eqPlans compares two plans field by field with exact (bit-level) equality,
// including the per-section internals the cache hit path fills in. Returns
// "" when identical.
func eqPlans(a, b *Plan) string {
	if a.CTWorst != b.CTWorst || a.CTAvg != b.CTAvg {
		return fmt.Sprintf("CT: (%v,%v) vs (%v,%v)", a.CTWorst, a.CTAvg, b.CTWorst, b.CTAvg)
	}
	if a.Procs != b.Procs || a.fmax != b.fmax {
		return fmt.Sprintf("Procs/fmax: (%d,%v) vs (%d,%v)", a.Procs, a.fmax, b.Procs, b.fmax)
	}
	if a.alphaTask != b.alphaTask {
		return fmt.Sprintf("alphaTask: %v vs %v", a.alphaTask, b.alphaTask)
	}
	if len(a.secs) != len(b.secs) {
		return fmt.Sprintf("section count: %d vs %d", len(a.secs), len(b.secs))
	}
	for s := range a.secs {
		as, bs := a.secs[s], b.secs[s]
		if as.lenW != bs.lenW || as.lenA != bs.lenA {
			return fmt.Sprintf("section %d len: (%v,%v) vs (%v,%v)", s, as.lenW, as.lenA, bs.lenW, bs.lenA)
		}
		if as.remWorst != bs.remWorst || as.remAvg != bs.remAvg {
			return fmt.Sprintf("section %d rem: (%v,%v) vs (%v,%v)", s, as.remWorst, as.remAvg, bs.remWorst, bs.remAvg)
		}
		if len(as.tasks) != len(bs.tasks) {
			return fmt.Sprintf("section %d task count: %d vs %d", s, len(as.tasks), len(bs.tasks))
		}
		for i := range as.tasks {
			at, bt := &as.tasks[i], &bs.tasks[i]
			if at.relLFT != bt.relLFT {
				return fmt.Sprintf("section %d task %d relLFT: %v vs %v", s, i, at.relLFT, bt.relLFT)
			}
			if at.tmpl.Node != bt.tmpl.Node || at.tmpl.Dummy != bt.tmpl.Dummy ||
				at.tmpl.WorkW != bt.tmpl.WorkW || at.tmpl.Order != bt.tmpl.Order ||
				at.tmpl.SpecRemain != bt.tmpl.SpecRemain ||
				at.tmpl.CanonClass != bt.tmpl.CanonClass ||
				at.tmpl.Affinity != bt.tmpl.Affinity {
				return fmt.Sprintf("section %d task %d template: %+v vs %+v", s, i, at.tmpl, bt.tmpl)
			}
		}
		if len(as.computeIdx) != len(bs.computeIdx) {
			return fmt.Sprintf("section %d computeIdx: %d vs %d", s, len(as.computeIdx), len(bs.computeIdx))
		}
		for i := range as.computeIdx {
			if as.computeIdx[i] != bs.computeIdx[i] ||
				as.wcets[i] != bs.wcets[i] || as.acets[i] != bs.acets[i] {
				return fmt.Sprintf("section %d compute %d: (%d,%v,%v) vs (%d,%v,%v)", s, i,
					as.computeIdx[i], as.wcets[i], as.acets[i],
					bs.computeIdx[i], bs.wcets[i], bs.acets[i])
			}
		}
	}
	return ""
}

// cacheDifferentialOpts varies the generator so the sweep covers deep Or
// nesting, wide sections and degenerate chains, not just the default shape.
func cacheDifferentialOpts(wl int) andor.RandomOpts {
	opts := andor.DefaultRandomOpts()
	switch wl % 4 {
	case 1:
		opts.MaxDepth, opts.MaxBranches = 3, 4
	case 2:
		opts.MaxWidth, opts.MaxLayers = 8, 4
	case 3:
		opts.ForkProb, opts.MaxStages = 0.9, 5
	}
	return opts
}

// TestScheduleCacheDifferential is the ISSUE's correctness bar for the
// compile cache: across ≥50 random AND/OR workloads, compiling uncached,
// compiling against a cold cache (all misses) and recompiling against the
// now-warm cache (all hits) must produce bit-identical plans — and those
// plans must produce bit-identical run results for every scheme under
// common random numbers.
func TestScheduleCacheDifferential(t *testing.T) {
	plats := []*power.Platform{power.Transmeta5400(), power.IntelXScale()}
	cache := schedcache.New(DefaultScheduleCacheCapacity)
	for wl := 0; wl < 50; wl++ {
		g := workload.Random(uint64(wl)+1, cacheDifferentialOpts(wl))
		m := 1 + wl%4
		plat := plats[wl%2]
		ov := power.DefaultOverheads()

		uncached, err := NewPlanWithCache(g, m, plat, ov, nil)
		if err != nil {
			t.Fatalf("workload %d: uncached NewPlan: %v", wl, err)
		}
		missesBefore := cache.Stats().Misses
		cold, err := NewPlanWithCache(g, m, plat, ov, cache)
		if err != nil {
			t.Fatalf("workload %d: cold cached NewPlan: %v", wl, err)
		}
		if cache.Stats().Misses == missesBefore {
			t.Fatalf("workload %d: cold compile recorded no cache misses", wl)
		}
		hitsBefore := cache.Stats().Hits
		warm, err := NewPlanWithCache(g, m, plat, ov, cache)
		if err != nil {
			t.Fatalf("workload %d: warm cached NewPlan: %v", wl, err)
		}
		if cache.Stats().Hits == hitsBefore {
			t.Fatalf("workload %d: warm compile recorded no cache hits", wl)
		}
		if diff := eqPlans(uncached, cold); diff != "" {
			t.Fatalf("workload %d (m=%d): cold cached plan diverged: %s", wl, m, diff)
		}
		if diff := eqPlans(uncached, warm); diff != "" {
			t.Fatalf("workload %d (m=%d): warm cached plan diverged: %s", wl, m, diff)
		}

		load := 0.4 + 0.1*float64(wl%4)
		cfg := RunConfig{Deadline: uncached.CTWorst / load, CollectTrace: true}
		for _, s := range allSchemes() {
			cfg.Scheme = s
			seed := uint64(wl)*37 + uint64(s)
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
			ref, err := uncached.Run(cfg)
			if err != nil {
				t.Fatalf("workload %d %s: uncached run: %v", wl, s, err)
			}
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
			got, err := warm.Run(cfg)
			if err != nil {
				t.Fatalf("workload %d %s: cached run: %v", wl, s, err)
			}
			if diff := eqRunResults(ref, got); diff != "" {
				t.Fatalf("workload %d (m=%d) %s: cached plan's run diverged: %s", wl, m, s, diff)
			}
		}
	}
}

// TestScheduleCacheSharedAcrossSizing checks the sizing search path: probing
// ascending processor counts against one cache must match uncached probes
// bit-for-bit, and repeating the whole search must be answered from cache.
func TestScheduleCacheSharedAcrossSizing(t *testing.T) {
	g := workload.ATR(workload.DefaultATRConfig())
	plat := power.Transmeta5400()
	ov := power.DefaultOverheads()
	cache := schedcache.New(256)
	for pass := 0; pass < 2; pass++ {
		for m := 1; m <= 6; m++ {
			ref, err := NewPlanWithCache(g, m, plat, ov, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := NewPlanWithCache(g, m, plat, ov, cache)
			if err != nil {
				t.Fatal(err)
			}
			if diff := eqPlans(ref, got); diff != "" {
				t.Fatalf("pass %d m=%d: %s", pass, m, diff)
			}
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("second sizing pass produced no cache hits: %+v", st)
	}
}

// TestSetScheduleCacheCapacity exercises the process-wide switch: disabling
// and re-enabling the default cache must leave NewPlan results unchanged.
func TestSetScheduleCacheCapacity(t *testing.T) {
	defer SetScheduleCacheCapacity(DefaultScheduleCacheCapacity)
	g := workload.Random(7, andor.DefaultRandomOpts())
	plat := power.IntelXScale()
	ov := power.DefaultOverheads()

	SetScheduleCacheCapacity(0)
	if st := ScheduleCacheStats(); st != (schedcache.Stats{}) {
		t.Fatalf("disabled cache reported non-zero stats: %+v", st)
	}
	off, err := NewPlan(g, 3, plat, ov)
	if err != nil {
		t.Fatal(err)
	}
	if st := ScheduleCacheStats(); st != (schedcache.Stats{}) {
		t.Fatalf("disabled cache accumulated stats: %+v", st)
	}

	SetScheduleCacheCapacity(64)
	on1, err := NewPlan(g, 3, plat, ov)
	if err != nil {
		t.Fatal(err)
	}
	on2, err := NewPlan(g, 3, plat, ov)
	if err != nil {
		t.Fatal(err)
	}
	if diff := eqPlans(off, on1); diff != "" {
		t.Fatalf("cache-on (cold) vs cache-off: %s", diff)
	}
	if diff := eqPlans(off, on2); diff != "" {
		t.Fatalf("cache-on (warm) vs cache-off: %s", diff)
	}
	if st := ScheduleCacheStats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses after warm recompile: %+v", st)
	}
}

// FuzzNewPlanCacheDifferential fuzzes the cache correctness contract: for
// any generator seed and configuration, a warm cached compile must be
// bit-identical to an uncached one, and a representative run under common
// random numbers must agree exactly.
func FuzzNewPlanCacheDifferential(f *testing.F) {
	f.Add(uint64(1), 1, false)
	f.Add(uint64(2), 2, true)
	f.Add(uint64(17), 4, false)
	f.Add(uint64(99), 3, true)
	f.Fuzz(func(t *testing.T, seed uint64, m int, xscale bool) {
		if m < 1 || m > 8 {
			t.Skip()
		}
		plat := power.Transmeta5400()
		if xscale {
			plat = power.IntelXScale()
		}
		opts := cacheDifferentialOpts(int(seed % 4))
		g := workload.Random(seed, opts)
		ov := power.DefaultOverheads()
		ref, err := NewPlanWithCache(g, m, plat, ov, nil)
		if err != nil {
			t.Fatal(err)
		}
		cache := schedcache.New(64)
		if _, err := NewPlanWithCache(g, m, plat, ov, cache); err != nil {
			t.Fatal(err)
		}
		warm, err := NewPlanWithCache(g, m, plat, ov, cache)
		if err != nil {
			t.Fatal(err)
		}
		if diff := eqPlans(ref, warm); diff != "" {
			t.Fatalf("seed %d m=%d: warm cached plan diverged: %s", seed, m, diff)
		}
		cfg := RunConfig{Deadline: ref.CTWorst * 1.7, CollectTrace: true}
		var asRes *RunResult
		for _, s := range allSchemes() {
			cfg.Scheme = s
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
			a, err := ref.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
			b, err := warm.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if diff := eqRunResults(a, b); diff != "" {
				t.Fatalf("seed %d m=%d %s: %s", seed, m, s, diff)
			}
			if s == AS {
				asRes = a
			}
		}
		// Reclamation differential arm: ORA with a frozen α-history must
		// reproduce the AS baseline exactly on the same script.
		cfg.Scheme, cfg.ORAWeight = ORA, -1
		cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
		frozen, err := ref.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		frozen.Scheme = AS // normalize the config echo
		if diff := eqRunResults(asRes, frozen); diff != "" {
			t.Fatalf("seed %d m=%d: frozen ORA diverged from AS: %s", seed, m, diff)
		}
	})
}
