package core

import (
	"fmt"

	"andorsched/internal/andor"
	"andorsched/internal/power"
)

// MinFeasibleProcs returns the smallest processor count m ≤ maxProcs for
// which the application's canonical schedule meets the deadline, together
// with that plan. It returns an error when even maxProcs is infeasible or
// the graph is invalid.
//
// List scheduling is not monotone in the processor count in general
// (Graham's timing anomalies), so the search is linear from 1 and returns
// the first feasible count rather than assuming bisection is safe.
func MinFeasibleProcs(g *andor.Graph, platform *power.Platform, ov power.Overheads,
	deadline float64, maxProcs int) (int, *Plan, error) {
	if maxProcs < 1 {
		return 0, nil, fmt.Errorf("core: maxProcs %d must be at least 1", maxProcs)
	}
	var lastErr error
	for m := 1; m <= maxProcs; m++ {
		plan, err := NewPlan(g, m, platform, ov)
		if err != nil {
			return 0, nil, err
		}
		if plan.Feasible(deadline) {
			return m, plan, nil
		}
		lastErr = fmt.Errorf("core: %d processors: canonical worst case %g exceeds deadline %g",
			m, plan.CTWorst, deadline)
	}
	return 0, nil, fmt.Errorf("core: no feasible processor count up to %d: %w", maxProcs, lastErr)
}
