package core

import (
	"strings"
	"testing"

	"andorsched/internal/power"
	"andorsched/internal/workload"
)

func TestDescribe(t *testing.T) {
	plan, err := NewPlan(orForkGraph(), 2, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Describe(36e-3)
	for _, want := range []string{
		"CT_worst = 18.000ms",
		"CT_avg   = 9.900ms",
		"load 0.500",
		"feasible: true",
		"SPM 500MHz",
		"exit O1",
		"exit O2",
		"exit END",
		"A ", "B ", "C ", "D ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q\n%s", want, out)
		}
	}
	// D's latest finish is the deadline itself.
	if !strings.Contains(out, "36.000ms") {
		t.Errorf("Describe missing the terminal LFT:\n%s", out)
	}
	// Zero-length sections render.
	g := workload.Synthetic()
	plan2, err := NewPlan(g, 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if out := plan2.Describe(plan2.CTWorst); !strings.Contains(out, "zero-length section") {
		t.Error("Describe should mention zero-length sections for loop OR chains")
	}
}

// TestPaperWorkloadCanonicalValues pins the reconstructed workloads'
// canonical lengths (no overheads, 2 CPUs, hand-computed):
//
//	synthetic: 17 (A;B‖D;C) + 25 (H;I‖J;K) + 9 (E;L#1) + 3×4 (L#2..4)
//	           + 5 (S) + 14 (U;V) = 82ms along the longest path.
func TestPaperWorkloadCanonicalValues(t *testing.T) {
	plan, err := NewPlan(workload.Synthetic(), 2, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(plan.CTWorst, 82e-3) {
		t.Errorf("synthetic CTWorst = %g, want 82ms", plan.CTWorst)
	}
	// ATR on 2 CPUs: Detect(8) + 4-ROI branch + Report(4). The 4-ROI
	// branch list-schedules 4×(3+4×5+2)ms of pipeline work on 2 CPUs; its
	// canonical length is pinned by regression rather than by hand:
	atr, err := NewPlan(workload.ATR(workload.DefaultATRConfig()), 2, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if atr.CTWorst <= 8e-3+4e-3 || atr.CTWorst > 82e-3 {
		t.Errorf("ATR CTWorst = %g out of plausible range", atr.CTWorst)
	}
	// The ATR longest path must dominate every other path's canonical
	// length: check via per-path worst-case runs at the tightest deadline.
	for b := 0; b < 4; b++ {
		res, err := atr.Run(RunConfig{
			Scheme: NPM, Deadline: atr.CTWorst, WorstCase: true, ForceBranches: []int{b},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Finish > atr.CTWorst*(1+1e-9) {
			t.Errorf("branch %d canonical exceeds CTWorst", b)
		}
	}
}
