package core

import (
	"testing"

	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// TestMCStatsObserveAddEquivalent proves Observe and Add perform the same
// accumulation for real run results — the property that lets the serial
// path Observe results directly while the chunked path re-Adds them from
// buffered rows and still lands on bit-identical summaries.
func TestMCStatsObserveAddEquivalent(t *testing.T) {
	g := workload.ATR(workload.DefaultATRConfig())
	plan, err := NewPlan(g, 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	src := exectime.NewSource(1)
	sampler := exectime.NewSampler(src)
	arena := NewArena()
	deadline := plan.CTWorst / 0.5

	var byObserve, byAdd MCStats
	var res RunResult
	var master exectime.Source
	master.Reseed(9)
	for i := 0; i < 50; i++ {
		src.Reseed(master.Uint64())
		if err := plan.RunInto(RunConfig{Scheme: GSS, Deadline: deadline, Sampler: sampler},
			arena, &res); err != nil {
			t.Fatal(err)
		}
		byObserve.Observe(&res)
		byAdd.Add(res.Finish, res.Energy(), res.ClassGrossEnergy, res.ClassIdleEnergy,
			res.SpeedChanges, res.LSTViolations, res.MetDeadline)
	}
	if !mcStatsEqual(&byObserve, &byAdd) {
		t.Fatalf("Observe and Add diverged:\n%+v\n%+v", byObserve, byAdd)
	}
	if byObserve.Done != 50 {
		t.Fatalf("Done = %d, want 50", byObserve.Done)
	}
}

// mcStatsEqual compares two accumulators field by field (MCStats contains
// slices, so == is not available when class sums were allocated).
func mcStatsEqual(a, b *MCStats) bool {
	if a.Finish != b.Finish || a.Energy != b.Energy ||
		a.Misses != b.Misses || a.LSTViolations != b.LSTViolations ||
		a.SpeedChanges != b.SpeedChanges || a.Done != b.Done ||
		len(a.classGross) != len(b.classGross) {
		return false
	}
	for c := range a.classGross {
		if a.classGross[c] != b.classGross[c] || a.classIdle[c] != b.classIdle[c] {
			return false
		}
	}
	return true
}

// TestMCStatsRunOrderReduction: reducing per-run samples sequentially in
// run order is bit-identical regardless of which chunk buffered them —
// the numerically-stable combine the chunked serve path relies on.
func TestMCStatsRunOrderReduction(t *testing.T) {
	// Synthetic per-run samples with enough spread to expose any
	// floating-point reassociation.
	finish := make([]float64, 1000)
	energy := make([]float64, 1000)
	src := exectime.NewSource(3)
	for i := range finish {
		finish[i] = 1 + src.Float64()*1e6
		energy[i] = 1e-9 + src.Float64()
	}
	reduce := func(chunks int) MCStats {
		var m MCStats
		// Chunk boundaries differ, but the flattened visit order is always
		// global run order.
		for c := 0; c < chunks; c++ {
			lo, hi := c*len(finish)/chunks, (c+1)*len(finish)/chunks
			for i := lo; i < hi; i++ {
				m.Add(finish[i], energy[i], nil, nil, i%3, i%7, i%11 != 0)
			}
		}
		return m
	}
	want := reduce(1)
	for chunks := 2; chunks <= 8; chunks++ {
		if got := reduce(chunks); !mcStatsEqual(&got, &want) {
			t.Fatalf("%d-chunk reduction diverged from serial:\n%+v\n%+v", chunks, got, want)
		}
	}
	if want.Misses == 0 || want.LSTViolations == 0 {
		t.Fatal("test data never exercised the counters")
	}
}

// TestMCStatsClassMeans covers the heterogeneous breakdown: lazily grown,
// averaged over Done, nil for homogeneous histories.
func TestMCStatsClassMeans(t *testing.T) {
	var m MCStats
	if g, i := m.ClassMeans(); g != nil || i != nil {
		t.Fatal("empty accumulator must have nil class means")
	}
	m.Add(1, 2, nil, nil, 0, 0, true) // homogeneous run first: no growth
	m.Add(1, 2, []float64{4, 8}, []float64{2, 6}, 0, 0, true)
	m.Add(1, 2, []float64{2, 4}, []float64{4, 2}, 0, 0, true)
	gross, idle := m.ClassMeans()
	if len(gross) != 2 || len(idle) != 2 {
		t.Fatalf("class means %v %v, want 2 classes", gross, idle)
	}
	// Sums divide by Done (3), matching the serial serve path's behavior
	// for mixed histories.
	if gross[0] != 2 || gross[1] != 4 || idle[0] != 2 || idle[1] != 8.0/3 {
		t.Fatalf("class means %v %v", gross, idle)
	}
}
