package core

import (
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// TestSmokeAllSchemes runs every scheme once on both paper workloads and
// platforms as an end-to-end sanity check: deadlines met, no LST
// violations, positive energies.
func TestSmokeAllSchemes(t *testing.T) {
	builders := map[string]func() *andor.Graph{
		"atr":       func() *andor.Graph { return workload.ATR(workload.DefaultATRConfig()) },
		"synthetic": workload.Synthetic,
	}
	for _, plat := range []*power.Platform{power.Transmeta5400(), power.IntelXScale()} {
		for wname, build := range builders {
			plan, err := NewPlan(build(), 2, plat, power.DefaultOverheads())
			if err != nil {
				t.Fatalf("%s/%s: NewPlan: %v", plat.Name, wname, err)
			}
			d := plan.CTWorst / 0.5 // load 0.5
			for _, s := range Schemes {
				src := exectime.NewSource(42)
				res, err := plan.Run(RunConfig{
					Scheme: s, Deadline: d,
					Sampler: exectime.NewSampler(src),
				})
				if err != nil {
					t.Fatalf("%s/%s/%s: Run: %v", plat.Name, wname, s, err)
				}
				if !res.MetDeadline {
					t.Errorf("%s/%s/%s: missed deadline: finish %g > %g", plat.Name, wname, s, res.Finish, d)
				}
				if res.LSTViolations != 0 {
					t.Errorf("%s/%s/%s: %d LST violations", plat.Name, wname, s, res.LSTViolations)
				}
				if res.Energy() <= 0 {
					t.Errorf("%s/%s/%s: non-positive energy %g", plat.Name, wname, s, res.Energy())
				}
				t.Logf("%-14s %-9s %-3s: finish=%7.3fms/%7.3fms energy=%.4gJ changes=%d",
					plat.Name, wname, s, res.Finish*1e3, d*1e3, res.Energy(), res.SpeedChanges)
			}
		}
	}
}
