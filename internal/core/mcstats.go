package core

import "andorsched/internal/stats"

// MCStats accumulates per-run results of a Monte-Carlo experiment into the
// summary statistics the serving layer reports: Welford finish/energy
// accumulators, miss/violation/speed-change counts and lazily-grown
// per-class energy sums for heterogeneous platforms.
//
// Reduction order is part of the contract. Feeding results in global run
// order produces bit-identical floating-point summaries no matter how the
// runs were executed — serially on one worker or split into per-worker
// chunks — because the sequence of Add operations on the underlying
// accumulators is then exactly the serial sequence. Parallel Welford
// merges would be statistically equivalent but not bit-identical, and the
// serve layer's serial-vs-chunked differential tests demand the stronger
// property, so chunked callers buffer per-run samples and reduce them here
// in run order.
type MCStats struct {
	Finish, Energy stats.Acc
	Misses         int
	LSTViolations  int
	SpeedChanges   int
	Done           int

	// classGross and classIdle are per-class energy sums, allocated on the
	// first result that carries a class breakdown (homogeneous runs never
	// pay for them).
	classGross, classIdle []float64
}

// Observe folds one run result into the accumulator.
func (m *MCStats) Observe(res *RunResult) {
	m.Add(res.Finish, res.Energy(), res.ClassGrossEnergy, res.ClassIdleEnergy,
		res.SpeedChanges, res.LSTViolations, res.MetDeadline)
}

// Add folds one run's already-extracted sample into the accumulator — the
// form chunked execution uses when reducing buffered rows. The operation
// sequence is identical to Observe's, which is what keeps serial and
// chunked summaries bit-identical.
func (m *MCStats) Add(finish, energy float64, classGross, classIdle []float64,
	speedChanges, lstViolations int, metDeadline bool) {
	m.Finish.Add(finish)
	m.Energy.Add(energy)
	if n := len(classGross); n != 0 {
		if m.classGross == nil {
			m.classGross = make([]float64, n)
			m.classIdle = make([]float64, n)
		}
		for c := 0; c < n; c++ {
			m.classGross[c] += classGross[c]
			m.classIdle[c] += classIdle[c]
		}
	}
	m.SpeedChanges += speedChanges
	m.LSTViolations += lstViolations
	if !metDeadline {
		m.Misses++
	}
	m.Done++
}

// ClassMeans returns the per-class mean gross and idle energies, or
// (nil, nil) when no observed run carried a class breakdown.
func (m *MCStats) ClassMeans() (gross, idle []float64) {
	if m.classGross == nil || m.Done == 0 {
		return nil, nil
	}
	gross = make([]float64, len(m.classGross))
	idle = make([]float64, len(m.classIdle))
	for c := range m.classGross {
		gross[c] = m.classGross[c] / float64(m.Done)
		idle[c] = m.classIdle[c] / float64(m.Done)
	}
	return gross, idle
}
