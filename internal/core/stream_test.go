package core

import (
	"testing"

	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

func streamPlan(t *testing.T) *Plan {
	t.Helper()
	plan, err := NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestRunStreamBasics(t *testing.T) {
	plan := streamPlan(t)
	const frames = 50
	res, err := plan.RunStream(StreamConfig{
		Scheme: GSS, Period: plan.CTWorst / 0.6, Frames: frames,
		Sampler: exectime.NewSampler(exectime.NewSource(4)), CarryLevels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != frames || res.FinishStats.N() != frames {
		t.Errorf("frame accounting wrong: %d/%d", res.Frames, res.FinishStats.N())
	}
	if res.DeadlineMisses != 0 || res.LSTViolations != 0 {
		t.Errorf("timing violated: %d misses, %d LST violations", res.DeadlineMisses, res.LSTViolations)
	}
	if res.Energy() <= 0 {
		t.Error("non-positive stream energy")
	}
	if res.FinishStats.Max() > plan.CTWorst/0.6 {
		t.Error("a frame finished after its period")
	}
	var resid float64
	for _, v := range res.LevelTime {
		resid += v
	}
	if resid <= 0 {
		t.Error("empty residency profile")
	}
}

// TestRunStreamNPMIsFrameSum: NPM has no cross-frame state (always f_max),
// so the stream energy equals the sum of independent runs with the same
// per-frame randomness.
func TestRunStreamNPMIsFrameSum(t *testing.T) {
	plan := streamPlan(t)
	period := plan.CTWorst / 0.5
	const frames = 20
	stream, err := plan.RunStream(StreamConfig{
		Scheme: NPM, Period: period, Frames: frames,
		Sampler: exectime.NewSampler(exectime.NewSource(31)), CarryLevels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the same sampler stream frame by frame.
	sampler := exectime.NewSampler(exectime.NewSource(31))
	var sum float64
	for f := 0; f < frames; f++ {
		res, err := plan.Run(RunConfig{Scheme: NPM, Deadline: period, Sampler: sampler})
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Energy()
	}
	if !closeTo(stream.Energy(), sum) {
		t.Errorf("stream energy %g != frame sum %g", stream.Energy(), sum)
	}
}

// TestRunStreamCarryReducesChanges: carrying levels across frames avoids
// re-establishing the working speed every frame, so a GSS stream performs
// no more changes with carry than without.
func TestRunStreamCarryReducesChanges(t *testing.T) {
	plan := streamPlan(t)
	period := plan.CTWorst / 0.4
	run := func(carry bool) *StreamResult {
		res, err := plan.RunStream(StreamConfig{
			Scheme: GSS, Period: period, Frames: 100,
			Sampler: exectime.NewSampler(exectime.NewSource(8)), CarryLevels: carry,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with, without := run(true), run(false)
	if with.SpeedChanges > without.SpeedChanges {
		t.Errorf("carrying levels increased changes: %d > %d", with.SpeedChanges, without.SpeedChanges)
	}
	if with.DeadlineMisses != 0 || without.DeadlineMisses != 0 {
		t.Error("stream missed deadlines")
	}
}

func TestRunStreamAllSchemes(t *testing.T) {
	plan := streamPlan(t)
	for _, s := range append(append([]Scheme(nil), Schemes...), ExtendedSchemes...) {
		res, err := plan.RunStream(StreamConfig{
			Scheme: s, Period: plan.CTWorst / 0.7, Frames: 25,
			Sampler: exectime.NewSampler(exectime.NewSource(2)), CarryLevels: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.DeadlineMisses != 0 {
			t.Errorf("%s: %d misses", s, res.DeadlineMisses)
		}
	}
}

func TestRunStreamErrors(t *testing.T) {
	plan := streamPlan(t)
	sampler := exectime.NewSampler(exectime.NewSource(1))
	if _, err := plan.RunStream(StreamConfig{Scheme: GSS, Period: plan.CTWorst, Frames: 0, Sampler: sampler}); err == nil {
		t.Error("want frame-count error")
	}
	if _, err := plan.RunStream(StreamConfig{Scheme: GSS, Period: plan.CTWorst, Frames: 1}); err == nil {
		t.Error("want sampler error")
	}
	if _, err := plan.RunStream(StreamConfig{Scheme: GSS, Period: plan.CTWorst / 2, Frames: 1, Sampler: sampler}); err == nil {
		t.Error("want infeasible-period error")
	}
}
