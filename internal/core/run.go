package core

import (
	"fmt"
	"math"

	"andorsched/internal/andor"
	"andorsched/internal/exectime"
	"andorsched/internal/obs"
	"andorsched/internal/power"
	"andorsched/internal/sim"
)

// RunConfig parameterizes one on-line execution of a planned application.
type RunConfig struct {
	// Scheme selects the power management scheme.
	Scheme Scheme
	// Deadline is the application deadline D in seconds. Run fails if the
	// plan is infeasible for it.
	Deadline float64
	// Sampler supplies actual execution times and drives OR branch
	// selection. Required unless both WorstCase and ForceBranches cover
	// the run.
	Sampler exectime.TimeSampler
	// WorstCase, if set, makes every task consume its full WCET instead of
	// a sampled actual time (used by correctness tests).
	WorstCase bool
	// ForceBranches, if non-empty, overrides OR branch selection: the k-th
	// OR node resolved during the run takes branch ForceBranches[k]. When
	// the list is exhausted selection falls back to the sampler (or to
	// branch 0 if there is none).
	ForceBranches []int
	// CollectTrace records a Gantt entry per task execution.
	CollectTrace bool
	// Validate cross-checks every section's schedule against the machine
	// model's invariants (occupancy, precedence, order gating, duration
	// and overhead arithmetic) via sim.ValidateResult. Intended for tests;
	// costs one extra pass per section.
	Validate bool
	// Tracer, if non-nil, receives the run's structured event stream:
	// section boundaries, OR resolutions and the schemes' slack decisions
	// from this layer, plus the engine's dispatch/finish/speed-change/idle
	// events. Nil (the default) keeps the hot path free of tracing work.
	Tracer obs.Tracer
	// Metrics, if non-nil, is updated by the engine and the scheme policy
	// (see the sim.Metric* and core.Metric* names); a snapshot is attached
	// to the result.
	Metrics *obs.Metrics
	// ORAWeight tunes ORA's α-estimator and is ignored by every other
	// scheme: 0 selects DefaultORAWeight, a negative value freezes the
	// estimator (ORA then reproduces AS bit-exactly — differential tests
	// use this), and a value in (0, 1] is the EWMA weight. Values above 1
	// are rejected.
	ORAWeight float64
}

// Metrics names updated by the run driver and scheme policies.
const (
	// MetricSlackShare is the histogram of per-task slack-sharing
	// allocations (seconds beyond the worst case at f_max) computed by the
	// dynamic schemes.
	MetricSlackShare = "core.slack.share_seconds"
	// MetricSlackSteals counts pickups where a speculative floor overrode
	// the greedy slack-sharing level (counter).
	MetricSlackSteals = "core.slack.steals"
	// MetricSections counts program sections executed (counter).
	MetricSections = "core.sections"
	// MetricORResolves counts OR synchronization nodes resolved (counter).
	MetricORResolves = "core.or.resolves"
	// MetricORAAlpha is a gauge holding ORA's current α estimate —
	// refreshed after every completed section, so a snapshot taken at run
	// end reports the final estimate.
	MetricORAAlpha = "core.slack.ora_alpha"
)

// RunResult reports one on-line execution.
type RunResult struct {
	// Scheme and Deadline echo the configuration.
	Scheme   Scheme
	Deadline float64
	// Finish is the application completion time.
	Finish float64
	// MetDeadline reports Finish ≤ Deadline (up to rounding).
	MetDeadline bool
	// LSTViolations counts tasks dispatched after their latest start time.
	// Theorem 1 guarantees zero; the run driver verifies it.
	LSTViolations int

	// ActiveEnergy is the energy (joules) spent executing task work;
	// OverheadEnergy the energy of speed computations and changes;
	// IdleEnergy the energy of idle processors over the horizon
	// [0, max(Deadline, Finish)] at the platform's idle power.
	ActiveEnergy, OverheadEnergy, IdleEnergy float64
	// ClassGrossEnergy and ClassIdleEnergy decompose the energy by
	// processor class on heterogeneous runs (indexed by class):
	// ClassGrossEnergy[c] is class c's active plus overhead joules,
	// ClassIdleEnergy[c] its idle joules over the same horizon. The class
	// totals sum to ActiveEnergy+OverheadEnergy and IdleEnergy
	// respectively (up to float association). Nil on identical-processor
	// runs.
	ClassGrossEnergy, ClassIdleEnergy []float64
	// SpeedChanges counts voltage/speed transitions.
	SpeedChanges int
	// BusyTime and OverheadTime are the summed per-processor seconds.
	BusyTime, OverheadTime float64
	// LevelTime[i] is the total task-execution time spent at platform
	// level i, summed over processors (the speed residency profile).
	LevelTime []float64
	// FinalLevels is each processor's level index when the application
	// finished; a stream of frames carries it into the next frame.
	FinalLevels []int
	// Path records the OR branch decisions taken.
	Path []andor.Choice
	// Trace holds per-task execution rows when CollectTrace was set.
	Trace []sim.GanttEntry
	// Metrics is the registry snapshot taken when the run finished; nil
	// unless RunConfig.Metrics was set.
	Metrics *obs.Snapshot
}

// Energy returns the total energy consumed: active + overhead + idle.
func (r *RunResult) Energy() float64 {
	return r.ActiveEnergy + r.OverheadEnergy + r.IdleEnergy
}

// script is one run's pre-resolved execution: the sections visited, each
// task's sampled actual work, and the OR branch decisions. Resolving it up
// front decouples the random draws from the scheduling policy, so the same
// script can be replayed under different speed schedules (the clairvoyant
// bound does exactly that).
type script struct {
	sections []*secPlan
	works    [][]float64 // actual cycles, indexed [step][task]
	choices  []andor.Choice
}

// resolve walks the section graph once, sampling actual execution times
// and branch outcomes in the same order the execution consumes them. When
// the sampler supports batched draws (exectime.BatchSampler), each
// section's actual times come from one SampleBatch call — bit-identical to
// the element-wise path, just cheaper. The returned script is arena-owned;
// its per-step work slices are recycled.
func (p *Plan) resolve(cfg RunConfig, a *Arena) *script {
	sc := &a.sc
	sc.sections = sc.sections[:0]
	sc.choices = sc.choices[:0]
	var batch exectime.BatchSampler
	if !cfg.WorstCase {
		batch, _ = cfg.Sampler.(exectime.BatchSampler)
	}
	sec := p.Sections.First
	orCount := 0
	step := 0
	for {
		sp := p.secs[sec.ID]
		sc.sections = append(sc.sections, sp)
		if step < len(sc.works) {
			sc.works[step] = ensureFloats(sc.works[step], len(sp.tasks))
		} else {
			sc.works = append(sc.works, make([]float64, len(sp.tasks)))
		}
		works := sc.works[step]
		step++
		if batch != nil {
			for i := range works {
				works[i] = 0
			}
			a.batch = ensureFloats(a.batch, len(sp.computeIdx))
			batch.SampleBatch(sp.wcets, sp.acets, a.batch)
			for j, ti := range sp.computeIdx {
				works[ti] = a.batch[j] * p.fmax
			}
		} else {
			for i := range sp.tasks {
				works[i] = 0
				n := sp.tasks[i].node
				if n.Kind != andor.Compute {
					continue
				}
				if cfg.WorstCase {
					works[i] = n.WCET * p.fmax
				} else {
					works[i] = cfg.Sampler.Sample(n.WCET, n.ACET) * p.fmax
				}
			}
		}
		exit := sp.sec.Exit
		if exit == nil || len(exit.Succs()) == 0 {
			return sc
		}
		branch := p.chooseBranch(exit, orCount, cfg, a)
		orCount++
		sc.choices = append(sc.choices, andor.Choice{Or: exit, Branch: branch})
		sec = p.Sections.Branch[exit.ID][branch]
	}
}

// Run executes the application once under the configured scheme. The
// returned result is self-contained; Run may be called concurrently on the
// same Plan with independent samplers. It is a thin wrapper over RunInto
// with fresh scratch state; hot loops should hold an Arena per goroutine
// and call RunInto, which allocates nothing in the steady state.
func (p *Plan) Run(cfg RunConfig) (*RunResult, error) {
	out := new(RunResult)
	if err := p.RunInto(cfg, nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunInto is the arena-threaded form of Run: scratch state comes from a
// (nil uses fresh buffers) and the result is written into out, reusing
// out's slices. Results are bit-identical to Run for any arena reuse
// pattern. out must not alias state still needed by the caller; its
// previous contents are overwritten.
func (p *Plan) RunInto(cfg RunConfig, a *Arena, out *RunResult) error {
	d := cfg.Deadline
	if d <= 0 {
		return fmt.Errorf("core: non-positive deadline %g", d)
	}
	if !p.Feasible(d) {
		return fmt.Errorf("core: infeasible deadline %g < canonical worst case %g", d, p.CTWorst)
	}
	if cfg.Sampler == nil && !cfg.WorstCase {
		return fmt.Errorf("core: RunConfig needs a Sampler unless WorstCase is set")
	}
	if cfg.ORAWeight > 1 {
		return fmt.Errorf("core: ORAWeight %g out of range (want ≤ 1; 0 = default, < 0 = frozen)", cfg.ORAWeight)
	}
	if a == nil {
		a = NewArena()
	}
	sc := p.resolve(cfg, a)
	if cfg.Scheme == CLV {
		return p.runClairvoyant(cfg, a, sc, out)
	}
	a.pol.init(p, cfg.Scheme, d)
	a.pol.setORAWeight(cfg.ORAWeight)
	return p.execute(cfg, a, sc, &a.pol, nil, out)
}

// execute replays a resolved script under the given policy, writing into
// out. levelsOverride, if non-nil, sets the processors' initial levels (the
// clairvoyant bound starts directly at its chosen level); otherwise the
// policy's initial level is used.
func (p *Plan) execute(cfg RunConfig, a *Arena, sc *script, pol *policy, levelsOverride []int, out *RunResult) error {
	d := cfg.Deadline
	// Dynamic schemes pay the power-management overheads; NPM, SPM and the
	// clairvoyant bound perform no run-time speed computation.
	var ov power.Overheads
	if cfg.Scheme.Dynamic() {
		ov = p.Overheads
	}
	// Processors start at the scheme's initial speed: f_max for the
	// dynamic schemes and NPM, the static speed for SPM (set once before
	// release, as in [11]).
	a.levels = ensureInts(a.levels, p.Procs)
	switch {
	case levelsOverride != nil:
		copy(a.levels, levelsOverride)
	case p.Hetero != nil:
		for i := range a.levels {
			a.levels[i] = pol.initialLevelHetero(p.Hetero.ClassOf(i))
		}
	default:
		for i := range a.levels {
			a.levels[i] = pol.initialLevel()
		}
	}
	levels := a.levels
	// Heterogeneous idle energy is per-processor (classes idle at their own
	// platform's idle power), so busy/overhead time additionally accumulates
	// per processor; identical platforms keep the scalar accounting.
	if p.Hetero != nil {
		a.busyP = ensureFloats(a.busyP, p.Procs)
		a.ovhP = ensureFloats(a.ovhP, p.Procs)
		for i := 0; i < p.Procs; i++ {
			a.busyP[i] = 0
			a.ovhP[i] = 0
		}
	}

	lt := ensureFloats(out.LevelTime, p.numLevels())
	for i := range lt {
		lt[i] = 0
	}
	var classGross, classIdle []float64
	if p.Hetero != nil {
		nc := p.Hetero.NumClasses()
		classGross = ensureFloats(out.ClassGrossEnergy, nc)
		classIdle = ensureFloats(out.ClassIdleEnergy, nc)
		for i := 0; i < nc; i++ {
			classGross[i] = 0
			classIdle[i] = 0
		}
	}
	*out = RunResult{
		Scheme: cfg.Scheme, Deadline: d,
		LevelTime:        lt,
		ClassGrossEnergy: classGross,
		ClassIdleEnergy:  classIdle,
		FinalLevels:      out.FinalLevels[:0],
		Path:             out.Path[:0],
		Trace:            out.Trace[:0],
	}
	tracer := cfg.Tracer
	pol.attachObs(cfg.Tracer, cfg.Metrics)
	var cSections, cOR *obs.Counter
	if cfg.Metrics != nil {
		cSections = cfg.Metrics.Counter(MetricSections)
		cOR = cfg.Metrics.Counter(MetricORResolves)
	}
	now := 0.0
	for step, sp := range sc.sections {
		pol.resetSection(sp.sec.ID, now)
		if tracer != nil {
			tracer.Event(obs.Event{
				Kind: obs.EvSectionBegin, Time: now,
				Proc: -1, Task: -1, Node: sp.sec.ID,
				Name: fmt.Sprintf("S%d", sp.sec.ID),
			})
		}
		if cSections != nil {
			cSections.Inc()
		}
		tasks := p.runtimeTasks(a, sp, d, sc.works[step])
		sr, err := a.sim.Run(sim.Config{
			Platform:      p.Platform,
			Hetero:        p.Hetero,
			Placement:     p.Placement,
			Overheads:     ov,
			Mode:          sim.ByOrder,
			Policy:        pol,
			Start:         now,
			InitialLevels: levels,
			Tracer:        cfg.Tracer,
			Metrics:       cfg.Metrics,
		}, tasks)
		if err != nil {
			return fmt.Errorf("core: section %d: %w", sp.sec.ID, err)
		}
		if tracer != nil {
			tracer.Event(obs.Event{
				Kind: obs.EvSectionEnd, Time: sr.Finish,
				Proc: -1, Task: -1, Node: sp.sec.ID,
				Name: fmt.Sprintf("S%d", sp.sec.ID),
			})
			if step < len(sc.choices) {
				c := sc.choices[step]
				tracer.Event(obs.Event{
					Kind: obs.EvORResolve, Time: sr.Finish,
					Proc: -1, Task: -1, Node: c.Or.ID, Name: c.Or.Name,
					Branch: c.Branch,
				})
			}
		}
		if cOR != nil && step < len(sc.choices) {
			cOR.Inc()
		}
		if cfg.Validate {
			var verr error
			if p.Hetero != nil {
				verr = sim.ValidateResultHetero(p.Hetero, sim.ByOrder, now, tasks, sr)
			} else {
				verr = sim.ValidateResult(p.Platform, sim.ByOrder, now, tasks, sr)
			}
			if verr != nil {
				return fmt.Errorf("core: section %d: %w", sp.sec.ID, verr)
			}
		}
		out.ActiveEnergy += sr.ActiveEnergy
		out.OverheadEnergy += sr.OverheadEnergy
		for c := range sr.ClassActiveEnergy {
			out.ClassGrossEnergy[c] += sr.ClassActiveEnergy[c] + sr.ClassOverheadEnergy[c]
		}
		out.SpeedChanges += sr.SpeedChanges
		for i := range sr.BusyTime {
			out.BusyTime += sr.BusyTime[i]
			out.OverheadTime += sr.OverheadTime[i]
			if p.Hetero != nil {
				a.busyP[i] += sr.BusyTime[i]
				a.ovhP[i] += sr.OverheadTime[i]
			}
		}
		for _, rec := range sr.Records {
			t := tasks[rec.Task]
			out.LevelTime[rec.Level] += rec.Finish - rec.Start
			if !t.Dummy && cfg.Scheme != CLV {
				// The latest start time is class-relative on heterogeneous
				// platforms: a task's worst case on the processor that ran it
				// is WorkW over that class's effective maximum rate.
				eff := p.fmax
				if p.Hetero != nil {
					eff = p.Hetero.Class(p.Hetero.ClassOf(rec.Proc)).EffFmax()
				}
				lst := t.LFT - t.WorkW/eff
				if rec.Dispatch > lst*(1+feasTol)+feasTol {
					out.LSTViolations++
				}
			}
		}
		if cfg.CollectTrace {
			out.Trace = append(out.Trace, sim.Entries(tasks, sr.Records)...)
		}
		pol.observeSection(sp, sc.works[step])
		now = sr.Finish
		// sr.FinalLevels is owned by the engine arena and recycled by the
		// next section's run; carry the values, not the slice.
		copy(levels, sr.FinalLevels)
	}
	out.Path = append(out.Path, sc.choices...)
	out.FinalLevels = append(out.FinalLevels, levels...)

	out.Finish = now
	out.MetDeadline = now <= d*(1+feasTol)
	horizon := math.Max(d, now)
	switch {
	case p.Hetero == nil:
		idleTime := float64(p.Procs)*horizon - out.BusyTime - out.OverheadTime
		if idleTime < 0 {
			idleTime = 0
		}
		out.IdleEnergy = p.Platform.IdlePower() * idleTime
	case p.Hetero.NumClasses() == 1:
		// Uniform idle power: the per-processor decomposition collapses to
		// the scalar form (and stays bit-identical to the homogeneous path).
		idleTime := float64(p.Procs)*horizon - out.BusyTime - out.OverheadTime
		if idleTime < 0 {
			idleTime = 0
		}
		out.IdleEnergy = p.Hetero.Class(0).Plat.IdlePower() * idleTime
		out.ClassIdleEnergy[0] = out.IdleEnergy
	default:
		for i := 0; i < p.Procs; i++ {
			idle := horizon - a.busyP[i] - a.ovhP[i]
			if idle < 0 {
				idle = 0
			}
			ci := p.Hetero.ClassOf(i)
			out.IdleEnergy += p.Hetero.Class(ci).Plat.IdlePower() * idle
			out.ClassIdleEnergy[ci] += p.Hetero.Class(ci).Plat.IdlePower() * idle
		}
	}
	if cfg.Metrics != nil {
		snap := cfg.Metrics.Snapshot()
		out.Metrics = &snap
	}
	return nil
}

// runtimeTasks instantiates the section's task templates for one step of a
// script: actual works installed, latest finish times resolved against the
// deadline. The returned slice and the tasks it points to are arena-owned
// and recycled by the next section.
func (p *Plan) runtimeTasks(a *Arena, sp *secPlan, d float64, works []float64) []*sim.Task {
	n := len(sp.tasks)
	if cap(a.taskBuf) < n {
		a.taskBuf = make([]sim.Task, n)
	}
	a.taskBuf = a.taskBuf[:n]
	if cap(a.tasks) < n {
		a.tasks = make([]*sim.Task, n)
	}
	a.tasks = a.tasks[:n]
	for i := range sp.tasks {
		t := sp.tasks[i].tmpl // copy
		t.LFT = d + sp.tasks[i].relLFT
		t.WorkA = works[i]
		a.taskBuf[i] = t
		a.tasks[i] = &a.taskBuf[i]
	}
	return a.tasks
}

// chooseBranch resolves an OR node: forced branches first, then the
// sampler's distribution, then branch 0.
func (p *Plan) chooseBranch(or *andor.Node, orCount int, cfg RunConfig, a *Arena) int {
	if orCount < len(cfg.ForceBranches) {
		b := cfg.ForceBranches[orCount]
		if b >= 0 && b < len(or.Succs()) {
			return b
		}
	}
	if len(or.Succs()) == 1 {
		return 0
	}
	if cfg.Sampler != nil {
		a.probs = ensureFloats(a.probs, len(or.Succs()))
		for i := range a.probs {
			a.probs[i] = or.BranchProb(i)
		}
		return cfg.Sampler.Source().Pick(a.probs)
	}
	return 0
}

// initialLevel is the level processors hold before the first task.
func (pol *policy) initialLevel() int {
	switch pol.scheme {
	case SPM, CLV:
		return pol.fixed
	default:
		return pol.plan.Platform.MaxIndex()
	}
}

// runClairvoyant computes the single-speed oracle the paper's §3.3 intuition
// appeals to: "a clairvoyant algorithm can achieve minimal energy
// consumption ... by running all tasks with a single speed setting if the
// actual running time of every task is known". Knowing the resolved script
// (actual times and path), it measures the schedule length at f_max, picks
// the slowest level that still meets the deadline — execution scales
// exactly linearly in 1/f, barriers included — and replays the script at
// that constant speed with no power-management costs. CLV is not one of the
// paper's schemes; it bounds what speculation can hope to achieve and is
// used by the ablation benches.
//
// On heterogeneous platforms the probe runs every class flat out, and the
// stretch finish/D is applied to each class's own maximum frequency and
// quantized on its own table — a per-class uniform slowdown of the probe
// schedule, which still meets the deadline, but because each class rounds
// to its own grid the replay is a near-bound heuristic, not a provably
// minimal single speed.
func (p *Plan) runClairvoyant(cfg RunConfig, a *Arena, sc *script, out *RunResult) error {
	probeCfg := cfg
	probeCfg.CollectTrace = false
	probeCfg.Validate = false
	// The probe replay is an internal measurement, not part of the run
	// being observed: keep it out of the event stream and the metrics.
	probeCfg.Tracer = nil
	probeCfg.Metrics = nil
	if p.Hetero != nil {
		a.probePol.init(p, CLV, cfg.Deadline) // per-class maximum levels
	} else {
		a.probePol = policy{plan: p, d: cfg.Deadline, scheme: CLV, fixed: p.Platform.MaxIndex()}
	}
	if err := p.execute(probeCfg, a, sc, &a.probePol, nil, &a.probe); err != nil {
		return err
	}
	a.clvLevels = ensureInts(a.clvLevels, p.Procs)
	if p.Hetero != nil {
		a.probePol.init(p, CLV, cfg.Deadline)
		for c := 0; c < p.Hetero.NumClasses(); c++ {
			cl := p.Hetero.Class(c)
			a.probePol.clsFixed[c] = cl.Plat.QuantizeUp(cl.Plat.Max().Freq * a.probe.Finish / cfg.Deadline)
		}
		for i := range a.clvLevels {
			a.clvLevels[i] = a.probePol.clsFixed[p.Hetero.ClassOf(i)]
		}
	} else {
		idx := p.Platform.QuantizeUp(p.fmax * a.probe.Finish / cfg.Deadline)
		a.probePol = policy{plan: p, d: cfg.Deadline, scheme: CLV, fixed: idx}
		for i := range a.clvLevels {
			a.clvLevels[i] = idx
		}
	}
	return p.execute(cfg, a, sc, &a.probePol, a.clvLevels, out)
}
