package core

import (
	"fmt"
	"math"

	"andorsched/internal/andor"
	"andorsched/internal/exectime"
	"andorsched/internal/obs"
	"andorsched/internal/power"
	"andorsched/internal/sim"
)

// RunConfig parameterizes one on-line execution of a planned application.
type RunConfig struct {
	// Scheme selects the power management scheme.
	Scheme Scheme
	// Deadline is the application deadline D in seconds. Run fails if the
	// plan is infeasible for it.
	Deadline float64
	// Sampler supplies actual execution times and drives OR branch
	// selection. Required unless both WorstCase and ForceBranches cover
	// the run.
	Sampler exectime.TimeSampler
	// WorstCase, if set, makes every task consume its full WCET instead of
	// a sampled actual time (used by correctness tests).
	WorstCase bool
	// ForceBranches, if non-empty, overrides OR branch selection: the k-th
	// OR node resolved during the run takes branch ForceBranches[k]. When
	// the list is exhausted selection falls back to the sampler (or to
	// branch 0 if there is none).
	ForceBranches []int
	// CollectTrace records a Gantt entry per task execution.
	CollectTrace bool
	// Validate cross-checks every section's schedule against the machine
	// model's invariants (occupancy, precedence, order gating, duration
	// and overhead arithmetic) via sim.ValidateResult. Intended for tests;
	// costs one extra pass per section.
	Validate bool
	// Tracer, if non-nil, receives the run's structured event stream:
	// section boundaries, OR resolutions and the schemes' slack decisions
	// from this layer, plus the engine's dispatch/finish/speed-change/idle
	// events. Nil (the default) keeps the hot path free of tracing work.
	Tracer obs.Tracer
	// Metrics, if non-nil, is updated by the engine and the scheme policy
	// (see the sim.Metric* and core.Metric* names); a snapshot is attached
	// to the result.
	Metrics *obs.Metrics
}

// Metrics names updated by the run driver and scheme policies.
const (
	// MetricSlackShare is the histogram of per-task slack-sharing
	// allocations (seconds beyond the worst case at f_max) computed by the
	// dynamic schemes.
	MetricSlackShare = "core.slack.share_seconds"
	// MetricSlackSteals counts pickups where a speculative floor overrode
	// the greedy slack-sharing level (counter).
	MetricSlackSteals = "core.slack.steals"
	// MetricSections counts program sections executed (counter).
	MetricSections = "core.sections"
	// MetricORResolves counts OR synchronization nodes resolved (counter).
	MetricORResolves = "core.or.resolves"
)

// RunResult reports one on-line execution.
type RunResult struct {
	// Scheme and Deadline echo the configuration.
	Scheme   Scheme
	Deadline float64
	// Finish is the application completion time.
	Finish float64
	// MetDeadline reports Finish ≤ Deadline (up to rounding).
	MetDeadline bool
	// LSTViolations counts tasks dispatched after their latest start time.
	// Theorem 1 guarantees zero; the run driver verifies it.
	LSTViolations int

	// ActiveEnergy is the energy (joules) spent executing task work;
	// OverheadEnergy the energy of speed computations and changes;
	// IdleEnergy the energy of idle processors over the horizon
	// [0, max(Deadline, Finish)] at the platform's idle power.
	ActiveEnergy, OverheadEnergy, IdleEnergy float64
	// SpeedChanges counts voltage/speed transitions.
	SpeedChanges int
	// BusyTime and OverheadTime are the summed per-processor seconds.
	BusyTime, OverheadTime float64
	// LevelTime[i] is the total task-execution time spent at platform
	// level i, summed over processors (the speed residency profile).
	LevelTime []float64
	// FinalLevels is each processor's level index when the application
	// finished; a stream of frames carries it into the next frame.
	FinalLevels []int
	// Path records the OR branch decisions taken.
	Path []andor.Choice
	// Trace holds per-task execution rows when CollectTrace was set.
	Trace []sim.GanttEntry
	// Metrics is the registry snapshot taken when the run finished; nil
	// unless RunConfig.Metrics was set.
	Metrics *obs.Snapshot
}

// Energy returns the total energy consumed: active + overhead + idle.
func (r *RunResult) Energy() float64 {
	return r.ActiveEnergy + r.OverheadEnergy + r.IdleEnergy
}

// script is one run's pre-resolved execution: the sections visited, each
// task's sampled actual work, and the OR branch decisions. Resolving it up
// front decouples the random draws from the scheduling policy, so the same
// script can be replayed under different speed schedules (the clairvoyant
// bound does exactly that).
type script struct {
	sections []*secPlan
	works    [][]float64 // actual cycles, indexed [step][task]
	choices  []andor.Choice
}

// resolve walks the section graph once, sampling actual execution times
// and branch outcomes in the same order Run consumes them.
func (p *Plan) resolve(cfg RunConfig) *script {
	sc := &script{}
	sec := p.Sections.First
	orCount := 0
	for {
		sp := p.secs[sec.ID]
		sc.sections = append(sc.sections, sp)
		works := make([]float64, len(sp.tasks))
		for i := range sp.tasks {
			n := sp.tasks[i].node
			if n.Kind != andor.Compute {
				continue
			}
			if cfg.WorstCase {
				works[i] = n.WCET * p.fmax
			} else {
				works[i] = cfg.Sampler.Sample(n.WCET, n.ACET) * p.fmax
			}
		}
		sc.works = append(sc.works, works)
		exit := sp.sec.Exit
		if exit == nil || len(exit.Succs()) == 0 {
			return sc
		}
		branch := p.chooseBranch(exit, orCount, cfg)
		orCount++
		sc.choices = append(sc.choices, andor.Choice{Or: exit, Branch: branch})
		sec = p.Sections.Branch[exit.ID][branch]
	}
}

// Run executes the application once under the configured scheme. The
// returned result is self-contained; Run may be called concurrently on the
// same Plan with independent samplers.
func (p *Plan) Run(cfg RunConfig) (*RunResult, error) {
	d := cfg.Deadline
	if d <= 0 {
		return nil, fmt.Errorf("core: non-positive deadline %g", d)
	}
	if !p.Feasible(d) {
		return nil, fmt.Errorf("core: infeasible deadline %g < canonical worst case %g", d, p.CTWorst)
	}
	if cfg.Sampler == nil && !cfg.WorstCase {
		return nil, fmt.Errorf("core: RunConfig needs a Sampler unless WorstCase is set")
	}
	sc := p.resolve(cfg)
	if cfg.Scheme == CLV {
		return p.runClairvoyant(cfg, sc)
	}
	return p.execute(cfg, sc, newPolicy(p, cfg.Scheme, d), nil)
}

// execute replays a resolved script under the given policy. levelsOverride,
// if non-nil, sets the processors' initial levels (the clairvoyant bound
// starts directly at its chosen level); otherwise the policy's initial
// level is used.
func (p *Plan) execute(cfg RunConfig, sc *script, pol *policy, levelsOverride []int) (*RunResult, error) {
	d := cfg.Deadline
	// Dynamic schemes pay the power-management overheads; NPM, SPM and the
	// clairvoyant bound perform no run-time speed computation.
	var ov power.Overheads
	if cfg.Scheme.Dynamic() {
		ov = p.Overheads
	}
	// Processors start at the scheme's initial speed: f_max for the
	// dynamic schemes and NPM, the static speed for SPM (set once before
	// release, as in [11]).
	levels := levelsOverride
	if levels == nil {
		levels = make([]int, p.Procs)
		for i := range levels {
			levels[i] = pol.initialLevel()
		}
	}

	res := &RunResult{
		Scheme: cfg.Scheme, Deadline: d,
		LevelTime: make([]float64, p.Platform.NumLevels()),
	}
	tracer := cfg.Tracer
	pol.attachObs(cfg.Tracer, cfg.Metrics)
	var cSections, cOR *obs.Counter
	if cfg.Metrics != nil {
		cSections = cfg.Metrics.Counter(MetricSections)
		cOR = cfg.Metrics.Counter(MetricORResolves)
	}
	now := 0.0
	for step, sp := range sc.sections {
		pol.resetSection(sp.sec.ID, now)
		if tracer != nil {
			tracer.Event(obs.Event{
				Kind: obs.EvSectionBegin, Time: now,
				Proc: -1, Task: -1, Node: sp.sec.ID,
				Name: fmt.Sprintf("S%d", sp.sec.ID),
			})
		}
		if cSections != nil {
			cSections.Inc()
		}
		tasks := p.runtimeTasks(sp, d, sc.works[step])
		sr, err := sim.Run(sim.Config{
			Platform:      p.Platform,
			Overheads:     ov,
			Mode:          sim.ByOrder,
			Policy:        pol,
			Start:         now,
			InitialLevels: levels,
			Tracer:        cfg.Tracer,
			Metrics:       cfg.Metrics,
		}, tasks)
		if err != nil {
			return nil, fmt.Errorf("core: section %d: %w", sp.sec.ID, err)
		}
		if tracer != nil {
			tracer.Event(obs.Event{
				Kind: obs.EvSectionEnd, Time: sr.Finish,
				Proc: -1, Task: -1, Node: sp.sec.ID,
				Name: fmt.Sprintf("S%d", sp.sec.ID),
			})
			if step < len(sc.choices) {
				c := sc.choices[step]
				tracer.Event(obs.Event{
					Kind: obs.EvORResolve, Time: sr.Finish,
					Proc: -1, Task: -1, Node: c.Or.ID, Name: c.Or.Name,
					Branch: c.Branch,
				})
			}
		}
		if cOR != nil && step < len(sc.choices) {
			cOR.Inc()
		}
		if cfg.Validate {
			if err := sim.ValidateResult(p.Platform, sim.ByOrder, now, tasks, sr); err != nil {
				return nil, fmt.Errorf("core: section %d: %w", sp.sec.ID, err)
			}
		}
		res.ActiveEnergy += sr.ActiveEnergy
		res.OverheadEnergy += sr.OverheadEnergy
		res.SpeedChanges += sr.SpeedChanges
		for i := range sr.BusyTime {
			res.BusyTime += sr.BusyTime[i]
			res.OverheadTime += sr.OverheadTime[i]
		}
		for _, rec := range sr.Records {
			t := tasks[rec.Task]
			res.LevelTime[rec.Level] += rec.Finish - rec.Start
			if !t.Dummy && cfg.Scheme != CLV {
				lst := t.LFT - t.WorkW/p.fmax
				if rec.Dispatch > lst*(1+feasTol)+feasTol {
					res.LSTViolations++
				}
			}
		}
		if cfg.CollectTrace {
			res.Trace = append(res.Trace, sim.Entries(tasks, sr.Records)...)
		}
		now = sr.Finish
		levels = sr.FinalLevels
	}
	res.Path = sc.choices
	res.FinalLevels = levels

	res.Finish = now
	res.MetDeadline = now <= d*(1+feasTol)
	horizon := math.Max(d, now)
	idleTime := float64(p.Procs)*horizon - res.BusyTime - res.OverheadTime
	if idleTime < 0 {
		idleTime = 0
	}
	res.IdleEnergy = p.Platform.IdlePower() * idleTime
	if cfg.Metrics != nil {
		snap := cfg.Metrics.Snapshot()
		res.Metrics = &snap
	}
	return res, nil
}

// runtimeTasks instantiates the section's task templates for one step of a
// script: actual works installed, latest finish times resolved against the
// deadline.
func (p *Plan) runtimeTasks(sp *secPlan, d float64, works []float64) []*sim.Task {
	out := make([]*sim.Task, len(sp.tasks))
	for i := range sp.tasks {
		t := sp.tasks[i].tmpl // copy
		t.LFT = d + sp.tasks[i].relLFT
		t.WorkA = works[i]
		out[i] = &t
	}
	return out
}

// chooseBranch resolves an OR node: forced branches first, then the
// sampler's distribution, then branch 0.
func (p *Plan) chooseBranch(or *andor.Node, orCount int, cfg RunConfig) int {
	if orCount < len(cfg.ForceBranches) {
		b := cfg.ForceBranches[orCount]
		if b >= 0 && b < len(or.Succs()) {
			return b
		}
	}
	if len(or.Succs()) == 1 {
		return 0
	}
	if cfg.Sampler != nil {
		probs := make([]float64, len(or.Succs()))
		for i := range probs {
			probs[i] = or.BranchProb(i)
		}
		return cfg.Sampler.Source().Pick(probs)
	}
	return 0
}

// initialLevel is the level processors hold before the first task.
func (pol *policy) initialLevel() int {
	switch pol.scheme {
	case SPM, CLV:
		return pol.fixed
	default:
		return pol.plan.Platform.MaxIndex()
	}
}

// runClairvoyant computes the single-speed oracle the paper's §3.3 intuition
// appeals to: "a clairvoyant algorithm can achieve minimal energy
// consumption ... by running all tasks with a single speed setting if the
// actual running time of every task is known". Knowing the resolved script
// (actual times and path), it measures the schedule length at f_max, picks
// the slowest level that still meets the deadline — execution scales
// exactly linearly in 1/f, barriers included — and replays the script at
// that constant speed with no power-management costs. CLV is not one of the
// paper's schemes; it bounds what speculation can hope to achieve and is
// used by the ablation benches.
func (p *Plan) runClairvoyant(cfg RunConfig, sc *script) (*RunResult, error) {
	probeCfg := cfg
	probeCfg.CollectTrace = false
	probeCfg.Validate = false
	// The probe replay is an internal measurement, not part of the run
	// being observed: keep it out of the event stream and the metrics.
	probeCfg.Tracer = nil
	probeCfg.Metrics = nil
	probe := &policy{plan: p, d: cfg.Deadline, scheme: CLV, fixed: p.Platform.MaxIndex()}
	base, err := p.execute(probeCfg, sc, probe, nil)
	if err != nil {
		return nil, err
	}
	idx := p.Platform.QuantizeUp(p.fmax * base.Finish / cfg.Deadline)
	pol := &policy{plan: p, d: cfg.Deadline, scheme: CLV, fixed: idx}
	levels := make([]int, p.Procs)
	for i := range levels {
		levels[i] = idx
	}
	return p.execute(cfg, sc, pol, levels)
}
