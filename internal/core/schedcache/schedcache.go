// Package schedcache memoizes the expensive artifact of the off-line phase:
// the canonical per-section list schedules (paper §3.2). One cache entry
// holds everything a section's two canonical engine runs produce — dispatch
// orders, worst-case finish times, speculative remainders and the section
// lengths — keyed by the section's structural digest plus the scheduling
// parameters that reach the engine (processor count, maximum frequency,
// overhead pad). The same (section, m, f_max, pad) problem therefore runs
// through the simulator once per process, no matter how many times
// core.NewPlan recompiles the surrounding application: experiment grids over
// load, processor-sizing probes, serve-layer plan-cache misses on equivalent
// graphs and the CLV ablations all collapse onto one computation.
//
// The cache is sharded (16 ways, key-hash selected) so concurrent compiles
// contend on different locks, size-bounded per shard with LRU eviction, and
// safe for concurrent use. Values are immutable after Put: readers share the
// stored Schedule without copying, which is sound because the off-line phase
// only ever reads it back.
package schedcache

import (
	"container/list"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"andorsched/internal/andor"
)

// Key identifies one canonical section-scheduling problem. Two keys are
// equal exactly when the off-line phase would feed the simulation engine
// bit-identical inputs: the section digest covers structure, execution
// times and tie-break order; Procs, FMaxBits and PadBits cover the
// scheduling parameters. The platform and the power-management overheads
// enter only through f_max and the pad — the canonical schedules run at
// maximum speed with overheads disabled, so nothing else of either can
// influence the result, and platforms sharing f_max share entries.
type Key struct {
	// Section is the structural digest (andor.Section.Digest).
	Section andor.SectionDigest
	// Procs is the processor count m.
	Procs int
	// FMaxBits is math.Float64bits of the platform's maximum frequency
	// (the reference rate Hetero.RefFmax on heterogeneous platforms).
	FMaxBits uint64
	// PadBits is math.Float64bits of the per-task overhead pad
	// (power.Overheads.PadTime / PadTimeHetero).
	PadBits uint64
	// Hetero identifies the processor mix and the placement policy the
	// canonical schedules were built with: power.Hetero.Key() plus the
	// placement name. Empty for identical-processor keys. Unlike the
	// homogeneous parameters, the whole mix matters — per-class speeds,
	// power tables and counts all shape a heterogeneous canonical
	// schedule — so the platform's content hash is the only safe
	// discriminator.
	Hetero string
	// ClassBits folds the section's per-task class affinities (`@class`
	// tags resolved to class indices) into the key. The section digest
	// deliberately omits class tags — homogeneous schedules ignore them —
	// so without this, two graphs differing only in pinning would collide
	// on one heterogeneous entry. Zero on identical-processor keys.
	ClassBits uint64
}

// Schedule is one cached canonical section schedule. All slices are indexed
// by the section's local task index (the Section.Nodes order). A Schedule
// stored in a Cache is immutable: neither the cache's owner nor readers may
// modify it afterwards.
type Schedule struct {
	// LenW and LenA are the worst- and average-case canonical schedule
	// lengths (the paper's per-section PMP inputs).
	LenW, LenA float64
	// Order[i] is task i's canonical dispatch order.
	Order []int
	// FinishW[i] is task i's finish time in the worst-case canonical
	// schedule (the pre-shift latest finish time).
	FinishW []float64
	// SpecRemain[i] is the average-case canonical time from task i's
	// dispatch to the section end (the per-PMP speculation statistic).
	SpecRemain []float64
	// Classes[i] is the processor class task i's canonical schedule ran it
	// on (sim.Task.CanonClass) — the class the online phase pins the task
	// to. Nil on identical-processor entries.
	Classes []int
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Hits and Misses count Get outcomes; Evictions counts entries dropped
	// by the per-shard LRU bound.
	Hits, Misses, Evictions uint64
	// Size is the current number of cached schedules across all shards.
	Size int
	// Capacity is the configured bound across all shards.
	Capacity int
}

const numShards = 16

// Cache is a sharded, size-bounded, concurrency-safe schedule cache.
// The zero value is not usable; construct with New.
type Cache struct {
	shards   [numShards]shard
	capPer   int
	capacity int

	hits, misses, evictions atomic.Uint64
}

type shard struct {
	mu  sync.Mutex
	m   map[Key]*list.Element
	lru *list.List // of *entry, front = most recently used
}

type entry struct {
	key   Key
	sched *Schedule
}

// New returns a cache bounded to roughly capacity schedules (floored at one
// per shard, so the effective minimum is 16).
func New(capacity int) *Cache {
	capPer := (capacity + numShards - 1) / numShards
	if capPer < 1 {
		capPer = 1
	}
	c := &Cache{capPer: capPer, capacity: capPer * numShards}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// shardFor mixes the key into a shard index. The digest's first word is
// already uniform; the scalar parameters are folded in so that the same
// section at different m / f_max / pad spreads across shards.
func (c *Cache) shardFor(k Key) *shard {
	h := binary.LittleEndian.Uint64(k.Section[:8])
	h ^= uint64(k.Procs) * 0x9e3779b97f4a7c15
	h ^= k.FMaxBits * 0xbf58476d1ce4e5b9
	h ^= k.PadBits * 0x94d049bb133111eb
	h ^= k.ClassBits * 0xd6e8feb86659fd93
	for i := 0; i < len(k.Hetero); i++ {
		h = (h ^ uint64(k.Hetero[i])) * 0x100000001b3
	}
	h ^= h >> 33
	return &c.shards[h%numShards]
}

// Get returns the schedule cached under k, if any, marking it recently
// used. The returned Schedule is shared and must not be modified.
func (c *Cache) Get(k Key) (*Schedule, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.m[k]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*entry).sched, true
}

// Put stores sched under k, evicting least-recently-used entries beyond the
// shard bound. sched must not be modified after Put. Concurrent Puts of the
// same key are benign: the values are deterministic functions of the key,
// so whichever copy lands is interchangeable with the rest.
func (c *Cache) Put(k Key, sched *Schedule) {
	s := c.shardFor(k)
	s.mu.Lock()
	if el, ok := s.m[k]; ok {
		// Keep the existing, already-shared value; just refresh recency.
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.m[k] = s.lru.PushFront(&entry{key: k, sched: sched})
	var evicted uint64
	for s.lru.Len() > c.capPer {
		back := s.lru.Back()
		delete(s.m, back.Value.(*entry).key)
		s.lru.Remove(back)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Len returns the number of cached schedules.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters. Hits/misses/evictions are monotonic; Size
// is instantaneous.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.Len(),
		Capacity:  c.capacity,
	}
}
