package schedcache

import (
	"encoding/binary"
	"sync"
	"testing"

	"andorsched/internal/andor"
)

// key builds a synthetic Key whose digest encodes i, so tests can mint
// arbitrarily many distinct keys.
func key(i int, procs int) Key {
	var d andor.SectionDigest
	binary.LittleEndian.PutUint64(d[:8], uint64(i)*0x9e3779b97f4a7c15+1)
	binary.LittleEndian.PutUint64(d[8:16], uint64(i))
	return Key{Section: d, Procs: procs, FMaxBits: 0x3ff0000000000000, PadBits: 42}
}

func sched(i int) *Schedule {
	return &Schedule{LenW: float64(i), LenA: float64(i) / 2, Order: []int{i}}
}

func TestCacheGetPut(t *testing.T) {
	c := New(64)
	if _, ok := c.Get(key(1, 2)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key(1, 2), sched(1))
	got, ok := c.Get(key(1, 2))
	if !ok || got.LenW != 1 {
		t.Fatalf("Get after Put: ok=%v got=%+v", ok, got)
	}
	// Same digest, different scalar parameters: distinct entries.
	if _, ok := c.Get(key(1, 3)); ok {
		t.Fatal("m=3 hit m=2's entry")
	}
	k := key(1, 2)
	k.PadBits++
	if _, ok := c.Get(k); ok {
		t.Fatal("different pad hit the entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Size != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Duplicate Put keeps the first (already-shared) value.
	c.Put(key(1, 2), sched(99))
	if got, _ := c.Get(key(1, 2)); got.LenW != 1 {
		t.Fatalf("duplicate Put replaced value: %+v", got)
	}
}

func TestCacheEviction(t *testing.T) {
	c := New(16) // one entry per shard
	if c.Stats().Capacity != 16 {
		t.Fatalf("capacity: %+v", c.Stats())
	}
	// Insert many more keys than capacity; size must stay bounded and
	// evictions must be counted.
	for i := 0; i < 200; i++ {
		c.Put(key(i, 1), sched(i))
	}
	st := c.Stats()
	if st.Size > 16 {
		t.Fatalf("size %d exceeds capacity 16", st.Size)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions counted")
	}

	// LRU within a shard: after touching an entry, inserting a colliding
	// newer key evicts the untouched one first. Find two keys in the same
	// shard.
	c2 := New(32) // two entries per shard
	base := key(0, 1)
	var same []int
	for i := 1; len(same) < 2; i++ {
		if c2.shardFor(key(i, 1)) == c2.shardFor(base) {
			same = append(same, i)
		}
	}
	c2.Put(base, sched(0))
	c2.Put(key(same[0], 1), sched(same[0]))
	if _, ok := c2.Get(base); !ok { // touch base → most recent
		t.Fatal("base missing")
	}
	c2.Put(key(same[1], 1), sched(same[1])) // overflows the shard
	if _, ok := c2.Get(base); !ok {
		t.Fatal("recently-used entry was evicted")
	}
	if _, ok := c2.Get(key(same[0], 1)); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := New(1) // floors at one per shard
	for i := 0; i < 100; i++ {
		c.Put(key(i, 1), sched(i))
	}
	if st := c.Stats(); st.Size > 16 || st.Capacity != 16 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestCacheConcurrent hammers one small cache from many goroutines with
// overlapping key ranges so gets, puts and evictions race. Run under -race
// this is the concurrency-safety proof; the assertions check that every
// observed value is the right one for its key.
func TestCacheConcurrent(t *testing.T) {
	c := New(64)
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// 60 keys over 64 slots: most stay resident (hits) while
				// uneven shard occupancy still overflows some shards
				// (evictions).
				k := (w + i*7) % 60
				if got, ok := c.Get(key(k, 1)); ok {
					if got.LenW != float64(k) {
						t.Errorf("key %d returned schedule %v", k, got.LenW)
						return
					}
				} else {
					c.Put(key(k, 1), sched(k))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > 64 {
		t.Fatalf("size %d exceeds capacity: %+v", st.Size, st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses: %+v", st)
	}
}
