package core

import (
	"math"

	"andorsched/internal/obs"
	"andorsched/internal/power"
	"andorsched/internal/sim"
)

// feasTol absorbs floating-point noise in feasibility comparisons.
const feasTol = 1e-9

// policy implements sim.Policy for all six schemes. The zero-cost static
// schemes (NPM, SPM) use a fixed level; the dynamic schemes combine the
// greedy slack-sharing level with a scheme-specific speculative floor.
type policy struct {
	plan *Plan
	d    float64 // deadline

	scheme Scheme
	fixed  int // NPM/SPM: the constant level index

	// SS1/SS2/AS: floorAt returns the speculative floor level at time t.
	// For SS1 it is constant; for SS2 it switches from low to high at
	// switchAt; for AS it is resetSection'd at each barrier.
	floorLow, floorHigh int
	switchAt            float64

	// ASP: the remaining average-case time after the current section's
	// exit barrier, refreshed at each barrier; combined with each task's
	// SpecRemain statistic at pickup time.
	remAvgAfter float64

	// ORA: the online α-estimator that rescales AS's remaining-time
	// assumption. Part of the policy value, so it lives in the run's Arena
	// and never touches the shared Plan.
	ora oraEstimator

	// maxChange is the worst-case cost of one voltage/speed change on the
	// platform, budgeted before the target level (and thus the actual
	// voltage swing) is known.
	maxChange float64

	// Heterogeneous state, populated only when the plan was compiled by
	// NewHeteroPlan (hp non-nil): the per-class analogues of fixed,
	// floorLow/floorHigh, switchAt and maxChange, indexed by class. Level
	// indices are only meaningful relative to a class's own DVS table, so
	// every scheme quantity that is a level on identical processors becomes
	// an effective frequency here and is quantized per class. On one class
	// with Speed 1 every entry reproduces the homogeneous scalar bit-for-bit
	// (x/1.0 == x and x·1.0 == x exactly in IEEE-754).
	hp           *power.Hetero
	clsFixed     []int
	clsFloorLow  []int
	clsFloorHigh []int
	clsSwitch    []float64
	clsMaxChange []float64

	// Observability hooks, attached by the run driver; all nil by default
	// so undecorated runs pay only nil checks.
	tracer obs.Tracer
	hSlack *obs.Histogram
	cSteal *obs.Counter
	gAlpha *obs.Gauge
}

// attachObs wires the run's tracer and metrics into the policy's pickup
// path. The dynamic schemes emit a slack-share event per pickup and a
// slack-steal event when a speculative floor overrides the greedy level.
func (pol *policy) attachObs(tracer obs.Tracer, m *obs.Metrics) {
	pol.tracer = tracer
	if m != nil {
		pol.hSlack = m.Histogram(MetricSlackShare, obs.DefaultTimeBuckets)
		pol.cSteal = m.Counter(MetricSlackSteals)
		if pol.scheme == ORA {
			pol.gAlpha = m.Gauge(MetricORAAlpha)
			pol.gAlpha.Set(pol.ora.alpha)
		}
	}
}

// newPolicy builds the scheme's policy for one run with deadline d.
func newPolicy(p *Plan, scheme Scheme, d float64) *policy {
	pol := new(policy)
	pol.init(p, scheme, d)
	return pol
}

// init (re)configures pol in place for one run with deadline d, clearing
// any state left by a previous run — arenas reuse one policy value across
// runs without allocating (the per-class buffers survive the reset).
func (pol *policy) init(p *Plan, scheme Scheme, d float64) {
	clsFixed, clsFloorLow, clsFloorHigh := pol.clsFixed, pol.clsFloorLow, pol.clsFloorHigh
	clsSwitch, clsMaxChange := pol.clsSwitch, pol.clsMaxChange
	*pol = policy{plan: p, d: d, scheme: scheme}
	if p.Hetero != nil {
		pol.clsFixed, pol.clsFloorLow, pol.clsFloorHigh = clsFixed, clsFloorLow, clsFloorHigh
		pol.clsSwitch, pol.clsMaxChange = clsSwitch, clsMaxChange
		pol.initHetero(p, scheme, d)
		return
	}
	pol.maxChange = p.Overheads.MaxChangeTime(p.Platform)
	switch scheme {
	case NPM:
		pol.fixed = p.Platform.MaxIndex()
	case SPM:
		// Static power management: stretch the canonical worst case of the
		// longest path over the whole deadline, rounded up to a level.
		pol.fixed = p.Platform.QuantizeUp(p.fmax * p.CTWorst / d)
	case SS1:
		pol.floorLow = p.Platform.QuantizeUp(p.SpeculativeSpeed(d))
		pol.floorHigh = pol.floorLow
	case SS2:
		// Two-speed static speculation: run at the level just below the
		// speculative speed until T_s, then at the level just above, where
		// T_s balances the average-case work over the deadline:
		// f_low·T_s + f_high·(D − T_s) = f_max·CT_avg.
		fspec := p.SpeculativeSpeed(d)
		pol.floorLow = p.Platform.QuantizeDown(fspec)
		pol.floorHigh = p.Platform.QuantizeUp(fspec)
		if pol.floorLow == pol.floorHigh {
			pol.switchAt = 0
		} else {
			fl := p.Platform.Levels()[pol.floorLow].Freq
			fh := p.Platform.Levels()[pol.floorHigh].Freq
			pol.switchAt = d * (fh - fspec) / (fh - fl)
		}
	case AS:
		// resetSection sets the floor before the first task runs.
		pol.floorLow = p.Platform.MinIndex()
		pol.floorHigh = pol.floorLow
	case ORA:
		pol.floorLow = p.Platform.MinIndex()
		pol.floorHigh = pol.floorLow
		pol.ora.init(p, 0)
	}
}

// initHetero derives each class's scheme parameters. A static or
// speculative speed on identical processors is really a stretch factor —
// a fraction of f_max — applied to the canonical schedule; on unequal
// classes that stretch applies to each class's own table, so every scheme
// quantity becomes clsFmax·(fraction) quantized per class. Stretching each
// class by the common fraction CT/D slows the whole canonical schedule
// uniformly, which is what carries the paper's safety argument across
// (docs/MODEL.md); dividing a reference-effective frequency by Speed
// instead would over-drive slow classes and saturate them at their maxima.
func (pol *policy) initHetero(p *Plan, scheme Scheme, d float64) {
	hp := p.Hetero
	nc := hp.NumClasses()
	pol.hp = hp
	pol.clsFixed = ensureInts(pol.clsFixed, nc)
	pol.clsFloorLow = ensureInts(pol.clsFloorLow, nc)
	pol.clsFloorHigh = ensureInts(pol.clsFloorHigh, nc)
	pol.clsSwitch = ensureFloats(pol.clsSwitch, nc)
	pol.clsMaxChange = ensureFloats(pol.clsMaxChange, nc)
	for c := 0; c < nc; c++ {
		cl := hp.Class(c)
		pol.clsFixed[c] = 0
		pol.clsFloorLow[c] = 0
		pol.clsFloorHigh[c] = 0
		pol.clsSwitch[c] = 0
		pol.clsMaxChange[c] = p.Overheads.MaxChangeTime(cl.Plat)
	}
	switch scheme {
	case NPM, CLV:
		// CLV's probe pass runs flat out; runClairvoyant then installs the
		// per-class stretch of the probe's finish time.
		for c := 0; c < nc; c++ {
			pol.clsFixed[c] = hp.Class(c).Plat.MaxIndex()
		}
	case SPM:
		for c := 0; c < nc; c++ {
			cl := hp.Class(c)
			pol.clsFixed[c] = cl.Plat.QuantizeUp(cl.Plat.Max().Freq * p.CTWorst / d)
		}
	case SS1:
		for c := 0; c < nc; c++ {
			cl := hp.Class(c)
			pol.clsFloorLow[c] = cl.Plat.QuantizeUp(cl.Plat.Max().Freq * p.CTAvg / d)
			pol.clsFloorHigh[c] = pol.clsFloorLow[c]
		}
	case SS2:
		// The low/high pair and the switch point are class-local: each class
		// straddles its own speculative speed clsFmax·CT_avg/D with its own
		// levels, and switches where its own pair balances the average case.
		for c := 0; c < nc; c++ {
			cl := hp.Class(c)
			fspec := cl.Plat.Max().Freq * p.CTAvg / d
			lo := cl.Plat.QuantizeDown(fspec)
			hi := cl.Plat.QuantizeUp(fspec)
			pol.clsFloorLow[c] = lo
			pol.clsFloorHigh[c] = hi
			if lo != hi {
				fl := cl.Plat.Levels()[lo].Freq
				fh := cl.Plat.Levels()[hi].Freq
				pol.clsSwitch[c] = d * (fh - fspec) / (fh - fl)
			}
		}
	case AS:
		// resetSection sets the floors before the first task runs.
	case ORA:
		pol.ora.init(p, 0)
	}
}

// setORAWeight overrides the estimator's EWMA weight after init: w = 0
// keeps DefaultORAWeight, w < 0 freezes the estimator (ORA then reproduces
// AS exactly), and 0 < w ≤ 1 is used as-is. A no-op for other schemes.
func (pol *policy) setORAWeight(w float64) {
	if pol.scheme == ORA && w != 0 {
		pol.ora.eta = w
	}
}

// resetSection recomputes the adaptive-speculation floor when execution
// reaches the section with the given ID at time now (at the start and after
// every OR synchronization node, §4.2):
// f_spec = f_max · T_avg,remaining / (D − now).
// ORA uses the same rule with the static remaining-time assumption rescaled
// by its estimator: the measured dynamic slack of the sections behind us is
// redistributed over the sections ahead. With scale ≡ 1 (empty or frozen
// history) the arithmetic below is bit-identical to AS's.
func (pol *policy) resetSection(sectionID int, now float64) {
	switch pol.scheme {
	case AS, ORA:
		if pol.hp != nil {
			pol.resetSectionHetero(sectionID, now)
			return
		}
		left := pol.d - now
		if left <= 0 {
			pol.floorLow = pol.plan.Platform.MaxIndex()
		} else {
			rem := pol.plan.SectionAvgRemaining(sectionID)
			if pol.scheme == ORA {
				rem = pol.ora.scale() * rem
			}
			f := pol.plan.fmax * rem / left
			pol.floorLow = pol.plan.Platform.QuantizeUp(f)
		}
		pol.floorHigh = pol.floorLow
	case ASP:
		pol.remAvgAfter = pol.plan.secs[sectionID].remAvg
	}
}

// resetSectionHetero is the AS/ORA barrier rule per class: the speculative
// stretch T_avg,remaining/(D−now) applied to each class's own maximum and
// quantized on its own table.
func (pol *policy) resetSectionHetero(sectionID int, now float64) {
	left := pol.d - now
	var rem float64
	if left > 0 {
		rem = pol.plan.SectionAvgRemaining(sectionID)
		if pol.scheme == ORA {
			rem = pol.ora.scale() * rem
		}
	}
	for c := 0; c < pol.hp.NumClasses(); c++ {
		cl := pol.hp.Class(c)
		if left <= 0 {
			pol.clsFloorLow[c] = cl.Plat.MaxIndex()
		} else {
			pol.clsFloorLow[c] = cl.Plat.QuantizeUp(cl.Plat.Max().Freq * rem / left)
		}
		pol.clsFloorHigh[c] = pol.clsFloorLow[c]
	}
}

// observeSection folds one completed section's observed actual/worst-case
// execution ratios into ORA's α-estimator, in the section's deterministic
// compute-task order. works holds the section's actual cycles by task index
// (the resolved script's layout). Called by the run driver after the
// section finishes — the estimator only ever sees the past, even though the
// whole script is resolved up front. A no-op for every other scheme.
func (pol *policy) observeSection(sp *secPlan, works []float64) {
	if pol.scheme != ORA {
		return
	}
	for j, ti := range sp.computeIdx {
		w := sp.wcets[j] * pol.plan.fmax // worst-case cycles, unpadded
		if w <= 0 {
			continue
		}
		pol.ora.observe(works[ti] / w)
	}
	if pol.gAlpha != nil {
		pol.gAlpha.Set(pol.ora.alpha)
	}
}

// floorAt returns the speculative floor level for task t picked at time
// `now` (SS1/SS2/AS/ASP), or -1 when the scheme has none (GSS).
func (pol *policy) floorAt(t *sim.Task, now float64) int {
	switch pol.scheme {
	case SS1, AS, ORA:
		return pol.floorLow
	case SS2:
		if now < pol.switchAt {
			return pol.floorLow
		}
		return pol.floorHigh
	case ASP:
		// Per-PMP speculation: remaining average-case work is the task's
		// within-section PMP statistic plus the average remainder after
		// the section's barrier.
		left := pol.d - now
		if left <= 0 {
			return pol.plan.Platform.MaxIndex()
		}
		f := pol.plan.fmax * (t.SpecRemain + pol.remAvgAfter) / left
		return pol.plan.Platform.QuantizeUp(f)
	}
	return -1
}

// PickLevel implements sim.Policy.
func (pol *policy) PickLevel(t *sim.Task, now float64, cur int) int {
	switch pol.scheme {
	case NPM, SPM, CLV:
		return pol.fixed
	}
	g := pol.gssPick(t, now, cur)
	lvl := g
	if flr := pol.floorAt(t, now); flr > g {
		// The speculative floor is above the slack-sharing level. Running
		// faster is always timing-safe provided the change overhead (if
		// any) still fits the allocation.
		if flr == cur {
			lvl = cur
		} else {
			lv := pol.plan.Platform.Levels()
			ov := pol.plan.Overheads
			avail := t.LFT - now - ov.CompTime(lv[cur].Freq) - pol.maxChange
			if avail > 0 && lv[flr].Freq*avail >= t.WorkW*(1-feasTol) {
				lvl = flr
			}
		}
	}
	if pol.tracer != nil || pol.hSlack != nil {
		pol.observePick(t, now, g, lvl)
	}
	return lvl
}

// observePick emits the pickup's slack decision: the slack-sharing
// allocation beyond the task's minimum need, and — when speculation pushed
// the level above the greedy choice — a slack-steal event.
func (pol *policy) observePick(t *sim.Task, now float64, g, lvl int) {
	slack := t.LFT - now - t.WorkW/pol.plan.fmax
	if slack < 0 {
		slack = 0
	}
	if pol.hSlack != nil {
		pol.hSlack.Observe(slack)
	}
	if pol.tracer != nil {
		pol.tracer.Event(obs.Event{
			Kind: obs.EvSlackShare, Time: now,
			Proc: -1, Task: -1, Node: t.Node, Name: t.Name,
			Level: g, Prev: g, Value: slack,
		})
	}
	if lvl <= g {
		return
	}
	if pol.cSteal != nil {
		pol.cSteal.Inc()
	}
	if pol.tracer != nil {
		pol.tracer.Event(obs.Event{
			Kind: obs.EvSlackSteal, Time: now,
			Proc: -1, Task: -1, Node: t.Node, Name: t.Name,
			Level: lvl, Prev: g,
		})
	}
}

// gssPick is the greedy slack-sharing level choice with overhead
// accounting (§3.2 and [20]): the task's allocation is everything up to its
// latest finish time; after paying the speed-computation overhead (and the
// change overhead if the level would change), the slowest level that still
// covers the worst-case work is selected. If no change can be afforded the
// processor keeps its current speed when that is fast enough, and falls
// back to maximum speed otherwise.
func (pol *policy) gssPick(t *sim.Task, now float64, cur int) int {
	plat := pol.plan.Platform
	lv := plat.Levels()
	ov := pol.plan.Overheads

	availNC := t.LFT - now - ov.CompTime(lv[cur].Freq)
	needNC := math.Inf(1)
	if availNC > 0 {
		needNC = t.WorkW / availNC
	}
	curOK := lv[cur].Freq >= needNC*(1-feasTol)

	availC := availNC - pol.maxChange
	lvlC := plat.MaxIndex()
	feasC := false
	if availC > 0 {
		lvlC = plat.QuantizeUp(t.WorkW / availC)
		feasC = lv[lvlC].Freq*availC >= t.WorkW*(1-feasTol)
	}

	if curOK {
		// Slow down only if a change is affordable and strictly saves.
		if feasC && lvlC < cur {
			return lvlC
		}
		return cur
	}
	// The current level is too slow: a change is mandatory; if even the
	// change-adjusted choice cannot make it, run flat out (best effort —
	// cannot occur when the off-line padding is in effect).
	return lvlC
}

// floorAtHetero returns the speculative floor as a level index into class
// ci's own table (or -1 when the scheme has none). The static schemes read
// their precomputed per-class entries; ASP quantizes its per-pickup
// effective speed on the class's table.
func (pol *policy) floorAtHetero(t *sim.Task, now float64, cl *power.Class, ci int) int {
	switch pol.scheme {
	case SS1, AS, ORA:
		return pol.clsFloorLow[ci]
	case SS2:
		if now < pol.clsSwitch[ci] {
			return pol.clsFloorLow[ci]
		}
		return pol.clsFloorHigh[ci]
	case ASP:
		left := pol.d - now
		if left <= 0 {
			return cl.Plat.MaxIndex()
		}
		f := cl.Plat.Max().Freq * (t.SpecRemain + pol.remAvgAfter) / left
		return cl.Plat.QuantizeUp(f)
	}
	return -1
}

// PickLevelHetero implements sim.HeteroPolicy: PickLevel with every
// frequency read through the class's effective rate Speed·f and every level
// quantized on the class's own table. On one class with Speed 1 each
// expression reduces bit-identically to PickLevel's.
func (pol *policy) PickLevelHetero(t *sim.Task, now float64, cur int, ci int) int {
	switch pol.scheme {
	case NPM, SPM, CLV:
		return pol.clsFixed[ci]
	}
	cl := pol.hp.Class(ci)
	g := pol.gssPickHetero(t, now, cur, cl, ci)
	lvl := g
	if flr := pol.floorAtHetero(t, now, cl, ci); flr > g {
		if flr == cur {
			lvl = cur
		} else {
			lv := cl.Plat.Levels()
			ov := pol.plan.Overheads
			avail := t.LFT - now - ov.CompTime(lv[cur].Freq*cl.Speed) - pol.clsMaxChange[ci]
			if avail > 0 && lv[flr].Freq*cl.Speed*avail >= t.WorkW*(1-feasTol) {
				lvl = flr
			}
		}
	}
	if pol.tracer != nil || pol.hSlack != nil {
		pol.observePick(t, now, g, lvl)
	}
	return lvl
}

// gssPickHetero is gssPick on class cl's table: the task's allocation is
// unchanged (latest finish times come from the heterogeneous canonical
// schedule), but work retires at Speed·f, so the needed frequency divides
// through by the class speed before quantization.
func (pol *policy) gssPickHetero(t *sim.Task, now float64, cur int, cl *power.Class, ci int) int {
	plat := cl.Plat
	lv := plat.Levels()
	ov := pol.plan.Overheads

	availNC := t.LFT - now - ov.CompTime(lv[cur].Freq*cl.Speed)
	needNC := math.Inf(1)
	if availNC > 0 {
		needNC = t.WorkW / availNC
	}
	curOK := lv[cur].Freq*cl.Speed >= needNC*(1-feasTol)

	availC := availNC - pol.clsMaxChange[ci]
	lvlC := plat.MaxIndex()
	feasC := false
	if availC > 0 {
		lvlC = plat.QuantizeUp(t.WorkW / availC / cl.Speed)
		feasC = lv[lvlC].Freq*cl.Speed*availC >= t.WorkW*(1-feasTol)
	}

	if curOK {
		if feasC && lvlC < cur {
			return lvlC
		}
		return cur
	}
	return lvlC
}

// initialLevelHetero is initialLevel for one processor class.
func (pol *policy) initialLevelHetero(ci int) int {
	switch pol.scheme {
	case SPM, CLV:
		return pol.clsFixed[ci]
	default:
		return pol.hp.Class(ci).Plat.MaxIndex()
	}
}

var _ sim.Policy = (*policy)(nil)
var _ sim.HeteroPolicy = (*policy)(nil)

// SPMLevel returns the level index SPM would use for the given deadline —
// exposed for tests and reporting.
func (p *Plan) SPMLevel(deadline float64) power.Level {
	return p.Platform.Levels()[p.Platform.QuantizeUp(p.fmax*p.CTWorst/deadline)]
}
