package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"andorsched/internal/andor"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// chain3 is a single-processor workbench: three 4ms tasks in series with
// α = 0.5.
func chain3() *andor.Graph {
	g := andor.NewGraph("chain3")
	a := g.AddTask("T1", 4e-3, 2e-3)
	b := g.AddTask("T2", 4e-3, 2e-3)
	c := g.AddTask("T3", 4e-3, 2e-3)
	g.Chain(a, b, c)
	return g
}

// TestGSSGreedyWorstCase pins the greedy behavior exactly: on a serial
// chain with D = 2·CTWorst and worst-case actual times, GSS gives the
// whole slack to the first task (which runs at quarter speed and consumes
// it all), forcing the remaining tasks to run at maximum speed, finishing
// exactly at the deadline. This is the paper's §5 explanation for why the
// greedy scheme can lose to speculation.
func TestGSSGreedyWorstCase(t *testing.T) {
	plan, err := NewPlan(chain3(), 1, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	d := 24e-3 // 2 × 12ms
	res, err := plan.Run(RunConfig{Scheme: GSS, Deadline: d, WorstCase: true, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(res.Finish, 24e-3) {
		t.Errorf("Finish = %g, want exactly the deadline 24ms", res.Finish)
	}
	if !res.MetDeadline || res.LSTViolations != 0 {
		t.Errorf("timing violated: %+v", res)
	}
	// T1 at 250 MHz (4ms work over 16ms allocation), T2 and T3 at 1 GHz.
	wantLevels := []int{1, 3, 3}
	if len(res.Trace) != 3 {
		t.Fatalf("trace entries = %d", len(res.Trace))
	}
	for i, e := range res.Trace {
		if e.Level != wantLevels[i] {
			t.Errorf("task %d ran at level %d, want %d", i, e.Level, wantLevels[i])
		}
	}
	if res.SpeedChanges != 2 { // max→250, 250→max
		t.Errorf("SpeedChanges = %d, want 2", res.SpeedChanges)
	}
}

// TestGSSReclaimsDynamicSlack pins slack reclamation with early finishes:
// actual times equal the ACET (zero-width sampler).
func TestGSSReclaimsDynamicSlack(t *testing.T) {
	plan, err := NewPlan(chain3(), 1, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(RunConfig{
		Scheme: GSS, Deadline: 24e-3,
		Sampler:      exectime.NewSamplerSigma(exectime.NewSource(1), 0),
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// T1: 16ms allocation → 250MHz, actual 2ms work → 8ms, ends at 8.
	// T2: allocation 20−8 = 12ms for 4ms worst → 333MHz → 500MHz,
	//     actual 2ms work → 4ms, ends at 12.
	// T3: allocation 24−12 = 12ms → 500MHz, ends at 16.
	if !closeTo(res.Finish, 16e-3) {
		t.Errorf("Finish = %g, want 16ms", res.Finish)
	}
	wantLevels := []int{1, 2, 2}
	for i, e := range res.Trace {
		if e.Level != wantLevels[i] {
			t.Errorf("task %d level = %d, want %d", i, e.Level, wantLevels[i])
		}
	}
}

// TestNPMAndSPMExactTiming pins the static schemes' timing.
func TestNPMAndSPMExactTiming(t *testing.T) {
	plan, err := NewPlan(chain3(), 1, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	npm, err := plan.Run(RunConfig{Scheme: NPM, Deadline: 24e-3, WorstCase: true})
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(npm.Finish, 12e-3) || npm.SpeedChanges != 0 {
		t.Errorf("NPM finish = %g changes = %d", npm.Finish, npm.SpeedChanges)
	}
	spm, err := plan.Run(RunConfig{Scheme: SPM, Deadline: 24e-3, WorstCase: true})
	if err != nil {
		t.Fatal(err)
	}
	// SPM at 500MHz: 24ms exactly, no run-time changes.
	if !closeTo(spm.Finish, 24e-3) || spm.SpeedChanges != 0 {
		t.Errorf("SPM finish = %g changes = %d", spm.Finish, spm.SpeedChanges)
	}
	// Energy ordering: SPM (uniform half speed) beats NPM.
	if spm.Energy() >= npm.Energy() {
		t.Errorf("SPM energy %g should beat NPM %g", spm.Energy(), npm.Energy())
	}
}

// TestUniformSlowdownBeatsGreedy checks the paper's energy intuition:
// with worst-case actual times, SPM's single uniform speed consumes less
// energy than GSS's greedy speed profile on a serial chain.
func TestUniformSlowdownBeatsGreedy(t *testing.T) {
	plan, err := NewPlan(chain3(), 1, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	gss, err := plan.Run(RunConfig{Scheme: GSS, Deadline: 24e-3, WorstCase: true})
	if err != nil {
		t.Fatal(err)
	}
	spm, err := plan.Run(RunConfig{Scheme: SPM, Deadline: 24e-3, WorstCase: true})
	if err != nil {
		t.Fatal(err)
	}
	if spm.Energy() >= gss.Energy() {
		t.Errorf("uniform SPM %g should beat greedy GSS %g in the worst case", spm.Energy(), gss.Energy())
	}
}

// TestEveryPathMeetsDeadline forces every execution path of the paper's
// workloads under worst-case actual times: Theorem 1's guarantee must hold
// on all of them, for all schemes, with overheads enabled.
func TestEveryPathMeetsDeadline(t *testing.T) {
	graphs := map[string]*andor.Graph{
		"synthetic": workload.Synthetic(),
		"atr":       workload.ATR(workload.DefaultATRConfig()),
		"orfork":    orForkGraph(),
	}
	for name, g := range graphs {
		secs, err := andor.Decompose(g)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := secs.Paths(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []int{1, 2, 3} {
			plan, err := NewPlan(g, m, power.IntelXScale(), power.DefaultOverheads())
			if err != nil {
				t.Fatal(err)
			}
			d := plan.CTWorst // tightest feasible deadline
			for pi, path := range paths {
				branches := make([]int, len(path.Choices))
				for i, c := range path.Choices {
					branches[i] = c.Branch
				}
				for _, s := range Schemes {
					res, err := plan.Run(RunConfig{
						Scheme: s, Deadline: d, WorstCase: true, ForceBranches: branches,
					})
					if err != nil {
						t.Fatalf("%s m=%d path=%d %s: %v", name, m, pi, s, err)
					}
					if !res.MetDeadline {
						t.Errorf("%s m=%d path %d under %s missed: finish %g > %g",
							name, m, pi, s, res.Finish, d)
					}
					if res.LSTViolations != 0 {
						t.Errorf("%s m=%d path %d under %s: %d LST violations", name, m, pi, s, res.LSTViolations)
					}
				}
			}
		}
	}
}

// TestForcedBranchesSelectPath verifies ForceBranches drives the recorded
// path.
func TestForcedBranchesSelectPath(t *testing.T) {
	plan, err := NewPlan(orForkGraph(), 2, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		res, err := plan.Run(RunConfig{
			Scheme: GSS, Deadline: 36e-3, WorstCase: true, ForceBranches: []int{b},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Path) != 2 { // O1 fork + O2 join
			t.Fatalf("path length = %d", len(res.Path))
		}
		if res.Path[0].Branch != b {
			t.Errorf("forced branch %d, took %d", b, res.Path[0].Branch)
		}
	}
}

// TestRunErrors exercises the argument checks.
func TestRunErrors(t *testing.T) {
	plan, err := NewPlan(diamondGraph(), 2, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(RunConfig{Scheme: GSS, Deadline: 0, WorstCase: true}); err == nil {
		t.Error("want deadline error")
	}
	if _, err := plan.Run(RunConfig{Scheme: GSS, Deadline: plan.CTWorst / 2, WorstCase: true}); err == nil {
		t.Error("want infeasibility error")
	}
	if _, err := plan.Run(RunConfig{Scheme: GSS, Deadline: plan.CTWorst}); err == nil {
		t.Error("want sampler error")
	}
}

// TestEnergyAccountingConsistency: active+overhead+idle must equal the
// integral of the power profile: idle time is m·horizon − busy − overhead.
func TestEnergyAccountingConsistency(t *testing.T) {
	plan, err := NewPlan(workload.Synthetic(), 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	d := plan.CTWorst / 0.6
	res, err := plan.Run(RunConfig{
		Scheme: AS, Deadline: d,
		Sampler: exectime.NewSampler(exectime.NewSource(11)),
	})
	if err != nil {
		t.Fatal(err)
	}
	idleTime := 2*d - res.BusyTime - res.OverheadTime
	wantIdle := plan.Platform.IdlePower() * idleTime
	if !closeTo(res.IdleEnergy, wantIdle) {
		t.Errorf("IdleEnergy = %g, want %g", res.IdleEnergy, wantIdle)
	}
	if res.Energy() <= 0 || res.ActiveEnergy <= 0 {
		t.Error("energies must be positive")
	}
}

// TestDeterministicRuns: identical seeds yield identical results.
func TestDeterministicRuns(t *testing.T) {
	plan, err := NewPlan(workload.Synthetic(), 2, power.IntelXScale(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	d := plan.CTWorst / 0.5
	run := func() *RunResult {
		res, err := plan.Run(RunConfig{
			Scheme: SS2, Deadline: d,
			Sampler: exectime.NewSampler(exectime.NewSource(77)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Finish != b.Finish || a.Energy() != b.Energy() || a.SpeedChanges != b.SpeedChanges {
		t.Error("same-seed runs differ")
	}
}

// TestTheoremOneProperty is the repository's central property test: for
// random AND/OR applications, random platforms and random execution
// behavior, every scheme always meets any feasible deadline, with zero LST
// violations (Theorem 1 plus the overhead padding argument).
func TestTheoremOneProperty(t *testing.T) {
	plats := []*power.Platform{
		power.Transmeta5400(), power.IntelXScale(),
		power.Synthetic(3, 100, 600, 0.9, 1.6),
	}
	prop := func(seed uint64) bool {
		src := exectime.NewSource(seed)
		g := andor.RandomGraph(src, andor.DefaultRandomOpts())
		plat := plats[src.Intn(len(plats))]
		m := 1 + src.Intn(4)
		ov := power.Overheads{
			SpeedCompCycles: float64(src.Intn(2000)),
			SpeedChangeTime: src.Float64() * 100e-6,
			VoltSlewTime:    src.Float64() * 200e-6, // per volt
		}
		plan, err := NewPlan(g, m, plat, ov)
		if err != nil {
			t.Logf("seed %d: plan: %v", seed, err)
			return false
		}
		load := 0.25 + 0.75*src.Float64() // (0.25, 1.0)
		d := plan.CTWorst / load
		for _, s := range append(append([]Scheme(nil), Schemes...), ExtendedSchemes...) {
			res, err := plan.Run(RunConfig{
				Scheme: s, Deadline: d,
				Sampler:  exectime.NewSampler(src.Fork()),
				Validate: true, // machine-model oracle on every section
			})
			if err != nil {
				t.Logf("seed %d %s: %v", seed, s, err)
				return false
			}
			if !res.MetDeadline || res.LSTViolations != 0 {
				t.Logf("seed %d %s: finish %g deadline %g violations %d",
					seed, s, res.Finish, d, res.LSTViolations)
				return false
			}
		}
		// Worst case at the tightest deadline, too.
		for _, s := range Schemes {
			res, err := plan.Run(RunConfig{Scheme: s, Deadline: plan.CTWorst, WorstCase: true})
			if err != nil || !res.MetDeadline {
				t.Logf("seed %d %s worst-case: err=%v", seed, s, err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestTextFormatPipeline: a random application survives the full user
// journey — serialize to the .andor text format, parse it back, plan it
// and run it — with an identical off-line analysis (canonical lengths are
// determined by the graph alone).
func TestTextFormatPipeline(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		g := andor.RandomGraph(exectime.NewSource(seed), andor.DefaultRandomOpts())
		back, err := andor.ParseText(andor.FormatText(g))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p1, err := NewPlan(g, 2, power.IntelXScale(), power.DefaultOverheads())
		if err != nil {
			t.Fatal(err)
		}
		p2, err := NewPlan(back, 2, power.IntelXScale(), power.DefaultOverheads())
		if err != nil {
			t.Fatal(err)
		}
		if !closeTo(p1.CTWorst, p2.CTWorst) || !closeTo(p1.CTAvg, p2.CTAvg) {
			t.Errorf("seed %d: plans differ after text round-trip: %g/%g vs %g/%g",
				seed, p1.CTWorst, p1.CTAvg, p2.CTWorst, p2.CTAvg)
		}
		res, err := p2.Run(RunConfig{
			Scheme: AS, Deadline: p2.CTWorst / 0.7,
			Sampler: exectime.NewSampler(exectime.NewSource(seed + 1)),
		})
		if err != nil || !res.MetDeadline {
			t.Errorf("seed %d: round-tripped app failed to run: %v", seed, err)
		}
	}
}

// TestIndependentTaskSet: the predecessor paper's independent-task model
// is the degenerate AND/OR case (one section, all roots); the machinery
// handles it end to end.
func TestIndependentTaskSet(t *testing.T) {
	tasks := make([]workload.Task, 12)
	for i := range tasks {
		w := float64(i+1) * 1e-3
		tasks[i] = workload.Task{Name: fmt.Sprintf("J%d", i), WCET: w, ACET: w / 2}
	}
	g := workload.Independent("indep", tasks)
	plan, err := NewPlan(g, 3, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumSections() != 1 {
		t.Errorf("independent set should be one section, got %d", plan.NumSections())
	}
	if plan.Sections.NumPaths() != 1 {
		t.Errorf("independent set should have one path")
	}
	for _, s := range Schemes {
		res, err := plan.Run(RunConfig{
			Scheme: s, Deadline: plan.CTWorst / 0.6,
			Sampler:  exectime.NewSampler(exectime.NewSource(3)),
			Validate: true,
		})
		if err != nil || !res.MetDeadline || res.LSTViolations != 0 {
			t.Errorf("%s on independent set: %v", s, err)
		}
	}
}

// TestSchemeParse round-trips scheme names.
func TestSchemeParse(t *testing.T) {
	for _, s := range Schemes {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("want parse error")
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme String empty")
	}
	if NPM.Dynamic() || SPM.Dynamic() || !GSS.Dynamic() || !AS.Dynamic() {
		t.Error("Dynamic() wrong")
	}
}

// TestEmpiricalSamplerEndToEnd: profile-driven execution times flow through
// the whole scheduler with the timing guarantee intact.
func TestEmpiricalSamplerEndToEnd(t *testing.T) {
	dist, err := exectime.NewEmpirical([]float64{0.3, 0.35, 0.4, 0.85, 0.9, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.IntelXScale(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 20; seed++ {
		res, err := plan.Run(RunConfig{
			Scheme: GSS, Deadline: plan.CTWorst / 0.7,
			Sampler:  exectime.NewEmpiricalSampler(exectime.NewSource(seed), dist),
			Validate: true,
		})
		if err != nil || !res.MetDeadline || res.LSTViolations != 0 {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
