package core

import (
	"testing"

	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// TestClairvoyantExact pins the oracle on the serial chain: actual times
// equal to ACET give 6ms of real work; D = 24ms → the slowest feasible
// level is 250 MHz (6ms × 4 = 24ms exactly).
func TestClairvoyantExact(t *testing.T) {
	plan, err := NewPlan(chain3(), 1, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(RunConfig{
		Scheme: CLV, Deadline: 24e-3,
		Sampler:      exectime.NewSamplerSigma(exectime.NewSource(1), 0),
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(res.Finish, 24e-3) {
		t.Errorf("CLV finish = %g, want exactly 24ms", res.Finish)
	}
	if !res.MetDeadline {
		t.Error("CLV missed the deadline")
	}
	for _, e := range res.Trace {
		if e.Level != 1 {
			t.Errorf("CLV ran %q at level %d, want 1 (250MHz)", e.Name, e.Level)
		}
	}
	if res.SpeedChanges != 0 {
		t.Errorf("CLV changed speed %d times, want 0", res.SpeedChanges)
	}
	if res.OverheadEnergy != 0 || res.OverheadTime != 0 {
		t.Error("CLV must not pay power-management overheads")
	}
}

// TestClairvoyantIsALowerBound: on many random frames, the dynamic schemes
// essentially never beat the oracle's energy, and when level quantization
// lets a per-task level mix edge out the rounded-up single speed, the
// margin stays within the quantization/idle-power gap.
func TestClairvoyantIsALowerBound(t *testing.T) {
	plan, err := NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	d := plan.CTWorst / 0.6
	master := exectime.NewSource(9)
	beats, trials := 0, 0
	worstMargin := 1.0
	const frames = 200
	for f := 0; f < frames; f++ {
		seed := master.Uint64()
		clv, err := plan.Run(RunConfig{
			Scheme: CLV, Deadline: d,
			Sampler: exectime.NewSampler(exectime.NewSource(seed)),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range DynamicSchemes {
			trials++
			res, err := plan.Run(RunConfig{
				Scheme: s, Deadline: d,
				Sampler: exectime.NewSampler(exectime.NewSource(seed)),
			})
			if err != nil {
				t.Fatal(err)
			}
			if ratio := res.Energy() / clv.Energy(); ratio < 1 {
				beats++
				if ratio < worstMargin {
					worstMargin = ratio
				}
			}
		}
	}
	// The single-speed oracle is optimal for continuous speeds. With
	// discrete levels, CLV rounds its speed *up*, so a per-task mix of the
	// two adjacent levels can edge it out — but only occasionally and only
	// by the quantization gap, never substantially.
	if beats > trials/5 {
		t.Errorf("dynamic schemes beat the clairvoyant bound %d/%d times — too often", beats, trials)
	}
	if worstMargin < 0.90 {
		t.Errorf("a dynamic scheme beat the clairvoyant bound by %.1f%% — more than level quantization and idle-power interplay explain",
			(1-worstMargin)*100)
	}
	t.Logf("oracle beaten in %d/%d trials, worst margin %.2f%%", beats, trials, (1-worstMargin)*100)
}

// TestClairvoyantUsesPathKnowledge: on the orFork graph, forcing the long
// vs short branch yields different oracle levels (path slack is known to
// the oracle in advance).
func TestClairvoyantUsesPathKnowledge(t *testing.T) {
	plan, err := NewPlan(orForkGraph(), 1, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	// CTWorst (1 CPU) = 8+8+2 = 18ms. D = 36ms. Worst-case actuals:
	// long path 18ms → 500MHz; short path 15ms → 15/36 → 416MHz → 500MHz
	// too... widen: D = 60ms: long 18/60 → 300MHz→500; short 15/60 =
	// 250MHz exactly → level 1.
	long, err := plan.Run(RunConfig{Scheme: CLV, Deadline: 60e-3, WorstCase: true, ForceBranches: []int{0}, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	short, err := plan.Run(RunConfig{Scheme: CLV, Deadline: 60e-3, WorstCase: true, ForceBranches: []int{1}, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if long.Trace[0].Level != 2 {
		t.Errorf("long path level = %d, want 2 (500MHz)", long.Trace[0].Level)
	}
	if short.Trace[0].Level != 1 {
		t.Errorf("short path level = %d, want 1 (250MHz)", short.Trace[0].Level)
	}
	if !closeTo(short.Finish, 60e-3) {
		t.Errorf("short path finish = %g, want exactly 60ms", short.Finish)
	}
}

// TestLevelResidency: the residency profile sums to the busy time and
// lands on the levels the trace shows.
func TestLevelResidency(t *testing.T) {
	plan, err := NewPlan(workload.Synthetic(), 2, power.IntelXScale(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(RunConfig{
		Scheme: GSS, Deadline: plan.CTWorst / 0.5,
		Sampler: exectime.NewSampler(exectime.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LevelTime) != plan.Platform.NumLevels() {
		t.Fatalf("LevelTime has %d entries", len(res.LevelTime))
	}
	var sum float64
	for _, v := range res.LevelTime {
		if v < 0 {
			t.Error("negative residency")
		}
		sum += v
	}
	if !closeTo(sum, res.BusyTime) {
		t.Errorf("residency sum %g != busy time %g", sum, res.BusyTime)
	}
}

// TestRunValidateFlag: the machine-model oracle accepts real runs for all
// schemes including CLV.
func TestRunValidateFlag(t *testing.T) {
	plan, err := NewPlan(workload.Synthetic(), 3, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range append(append([]Scheme(nil), Schemes...), ExtendedSchemes...) {
		if _, err := plan.Run(RunConfig{
			Scheme: s, Deadline: plan.CTWorst / 0.4,
			Sampler:  exectime.NewSampler(exectime.NewSource(13)),
			Validate: true,
		}); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}
