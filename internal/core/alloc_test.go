package core

import (
	"testing"

	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// TestRunIntoZeroAllocs asserts the tentpole property at this layer: once an
// Arena has been warmed over the seeds the measurement will replay, a
// RunInto of each dynamic scheme on the ATR workload performs zero
// steady-state heap allocations.
func TestRunIntoZeroAllocs(t *testing.T) {
	plan, err := NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	d := plan.CTWorst / 0.5
	src := exectime.NewSource(0)
	sampler := exectime.NewSampler(src)
	const cycle = 20 // seeds replayed during measurement, all seen in warm-up
	for _, s := range []Scheme{GSS, SS1, SS2, AS} {
		a := NewArena()
		out := new(RunResult)
		cfg := RunConfig{Scheme: s, Deadline: d, Sampler: sampler}
		for i := 0; i < cycle; i++ { // warm-up sizes every buffer
			src.Reseed(uint64(i))
			if err := plan.RunInto(cfg, a, out); err != nil {
				t.Fatal(err)
			}
		}
		var i uint64
		allocs := testing.AllocsPerRun(100, func() {
			src.Reseed(i % cycle)
			i++
			if err := plan.RunInto(cfg, a, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warmed arena RunInto allocates %.1f times per run, want 0", s, allocs)
		}
	}
}

// TestRunStreamArenaAllocs asserts that a long stream through one arena
// allocates per stream, not per frame: the per-frame overhead of a warmed
// 400-frame stream is below one allocation per hundred frames.
func TestRunStreamArenaAllocs(t *testing.T) {
	plan, err := NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	src := exectime.NewSource(0)
	sampler := exectime.NewSampler(src)
	run := func(frames int) {
		src.Reseed(7)
		if _, err := plan.RunStreamArena(StreamConfig{
			Scheme: AS, Period: plan.CTWorst * 2, Frames: frames, Sampler: sampler,
			CarryLevels: true,
		}, a); err != nil {
			t.Fatal(err)
		}
	}
	run(400) // warm-up
	short := testing.AllocsPerRun(5, func() { run(100) })
	long := testing.AllocsPerRun(5, func() { run(400) })
	if long > short+1 { // per-stream constant, independent of frame count
		t.Errorf("allocations scale with frames: %.1f at 100 frames vs %.1f at 400", short, long)
	}
}
