package core

import (
	"testing"

	"andorsched/internal/power"
	"andorsched/internal/sim"
)

// newTestPolicy builds a policy over the chain3 plan (CTWorst = 12ms at
// 1 GHz on the pow2 platform) for direct unit tests of the speed math.
func newTestPolicy(t *testing.T, scheme Scheme, d float64, ov power.Overheads) (*Plan, *policy) {
	t.Helper()
	plan, err := NewPlan(chain3(), 1, pow2Plat(), ov)
	if err != nil {
		t.Fatal(err)
	}
	return plan, newPolicy(plan, scheme, d)
}

func simTask(workW float64, lft float64) *sim.Task {
	return &sim.Task{Name: "t", WorkW: workW, LFT: lft}
}

func TestGssPickNoOverheads(t *testing.T) {
	_, pol := newTestPolicy(t, GSS, 24e-3, power.NoOverheads())
	maxIdx := 3
	cases := []struct {
		name string
		task *sim.Task
		now  float64
		cur  int
		want int
	}{
		// 4ms of work, 16ms of allocation → 250 MHz (level 1).
		{"quarter speed", simTask(4e6*1e3*0.001, 16e-3), 0, maxIdx, 1},
		// No slack: 4ms work, 4ms allocation → f_max.
		{"no slack", simTask(4e-3*1e9, 4e-3), 0, maxIdx, 3},
		// Between levels rounds up: 4ms work over 10ms → 400 MHz → 500.
		{"round up", simTask(4e-3*1e9, 10e-3), 0, maxIdx, 2},
		// Below f_min clamps at f_min: 4ms work over 100ms → 125 MHz.
		{"fmin clamp", simTask(4e-3*1e9, 100e-3), 0, maxIdx, 0},
		// Already at the right level: stay.
		{"stay", simTask(4e-3*1e9, 16e-3), 0, 1, 1},
		// Degenerate: past the latest finish time → flat out.
		{"past lft", simTask(4e-3*1e9, 1e-3), 2e-3, 1, 3},
	}
	for _, c := range cases {
		if got := pol.gssPick(c.task, c.now, c.cur); got != c.want {
			t.Errorf("%s: gssPick = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestGssPickOverheadAccounting(t *testing.T) {
	// 1ms change overhead, no computation overhead.
	ov := power.Overheads{SpeedChangeTime: 1e-3}
	_, pol := newTestPolicy(t, GSS, 24e-3, ov)
	// 4ms work, 9ms allocation, processor at f_max. Without a change:
	// 444 MHz → 500. With the 1ms change: 4/8 = 500 MHz → still 500, so
	// the change pays off (500 < 1000).
	if got := pol.gssPick(simTask(4e-3*1e9, 9e-3), 0, 3); got != 2 {
		t.Errorf("affordable slowdown = %d, want 2", got)
	}
	// 4ms work, 4.5ms allocation at f_max: without change 888 MHz → 1000
	// (= current): stay; changing would need 4/3.5 = 1.14 GHz — impossible.
	if got := pol.gssPick(simTask(4e-3*1e9, 4.5e-3), 0, 3); got != 3 {
		t.Errorf("unaffordable slowdown = %d, want 3 (stay)", got)
	}
	// Processor at 125 MHz (level 0), 4ms work, 6ms allocation: current
	// is too slow, must speed up; after the 1ms change, 4/5 = 800 MHz →
	// f_max.
	if got := pol.gssPick(simTask(4e-3*1e9, 6e-3), 0, 0); got != 3 {
		t.Errorf("mandatory speed-up = %d, want 3", got)
	}
	// Slowing down would be feasible without the change cost but not with
	// it: 4ms work, 5.2ms allocation at 1 GHz. No change: 769 MHz → 1000
	// (current, OK). With change: 4/4.2 = 952 MHz → 1000 = current → stay.
	if got := pol.gssPick(simTask(4e-3*1e9, 5.2e-3), 0, 3); got != 3 {
		t.Errorf("change not worthwhile = %d, want 3", got)
	}
}

func TestGssPickCompOverheadUsesCurrentFreq(t *testing.T) {
	// 1e6 cycles of speed computation: 8ms at 125 MHz, 1ms at 1 GHz.
	ov := power.Overheads{SpeedCompCycles: 1e6}
	_, pol := newTestPolicy(t, GSS, 24e-3, ov)
	// At 1 GHz: allocation 9ms − 1ms comp = 8ms for 4ms work → 500 MHz.
	if got := pol.gssPick(simTask(4e-3*1e9, 9e-3), 0, 3); got != 2 {
		t.Errorf("comp overhead at fmax: got %d, want 2", got)
	}
	// At 125 MHz the same computation costs 8ms: allocation 9−8 = 1ms →
	// must run flat out (current 125 MHz is far too slow).
	if got := pol.gssPick(simTask(4e-3*1e9, 9e-3), 0, 0); got != 3 {
		t.Errorf("comp overhead at fmin: got %d, want 3", got)
	}
}

func TestSS1FloorApplies(t *testing.T) {
	// chain3: CTAvg = 6ms. D = 24ms → f_spec = 250 MHz (level 1).
	_, pol := newTestPolicy(t, SS1, 24e-3, power.NoOverheads())
	if pol.floorLow != 1 {
		t.Fatalf("SS1 floor = %d, want 1", pol.floorLow)
	}
	// GSS would pick f_min (level 0) for a task with huge allocation; the
	// speculative floor lifts it to level 1.
	if got := pol.PickLevel(simTask(4e-3*1e9, 100e-3), 0, 1); got != 1 {
		t.Errorf("SS1 PickLevel = %d, want floor 1", got)
	}
	// When GSS needs more than the floor, GSS wins.
	if got := pol.PickLevel(simTask(4e-3*1e9, 4e-3), 0, 3); got != 3 {
		t.Errorf("SS1 PickLevel under pressure = %d, want 3", got)
	}
}

func TestSS2SwitchPoint(t *testing.T) {
	// D = 30ms, CTAvg = 6ms → f_spec = 200 MHz, between 125 (lvl 0) and
	// 250 (lvl 1): T_s = D·(250−200)/(250−125) = 30ms·0.4 = 12ms.
	_, pol := newTestPolicy(t, SS2, 30e-3, power.NoOverheads())
	if pol.floorLow != 0 || pol.floorHigh != 1 {
		t.Fatalf("SS2 levels = %d/%d, want 0/1", pol.floorLow, pol.floorHigh)
	}
	if !closeTo(pol.switchAt, 12e-3) {
		t.Fatalf("SS2 T_s = %g, want 12ms", pol.switchAt)
	}
	if pol.floorAt(nil, 11e-3) != 0 || pol.floorAt(nil, 13e-3) != 1 {
		t.Error("SS2 floor does not switch at T_s")
	}
	// Exactly on a level: SS2 degenerates to a single speed.
	_, pol2 := newTestPolicy(t, SS2, 24e-3, power.NoOverheads()) // f_spec = 250
	if pol2.floorLow != pol2.floorHigh {
		t.Error("on-level SS2 should degenerate to one speed")
	}
}

func TestASResetPerSection(t *testing.T) {
	plan, err := NewPlan(orForkGraph(), 2, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	d := 39.6e-3 // CTAvg = 9.9ms → initial f_spec = 250 MHz exactly
	pol := newPolicy(plan, AS, d)
	pol.resetSection(plan.Sections.First.ID, 0)
	if pol.floorLow != 1 {
		t.Errorf("AS initial floor = %d, want 1 (250MHz)", pol.floorLow)
	}
	// After the fork took the long branch (B) at t = 20ms: remaining avg
	// = 6+1 = 7ms over 19.6ms left → 357 MHz → level 2 (500).
	bSection := plan.Sections.Branch[plan.Graph.NodeByName("O1").ID][0]
	pol.resetSection(bSection.ID, 20e-3)
	if pol.floorLow != 2 {
		t.Errorf("AS floor after OR = %d, want 2", pol.floorLow)
	}
	// Past the deadline: clamp to f_max.
	pol.resetSection(bSection.ID, d+1e-3)
	if pol.floorLow != plan.Platform.MaxIndex() {
		t.Error("AS floor past deadline should be f_max")
	}
	// Non-AS schemes ignore resetSection.
	gss := newPolicy(plan, GSS, d)
	gss.resetSection(plan.Sections.First.ID, 0)
	if gss.floorAt(nil, 0) != -1 {
		t.Error("GSS should have no speculative floor")
	}
}

func TestSpeculativeFloorRespectsChangeOverhead(t *testing.T) {
	// A deliberately huge 5ms change overhead. Note the off-line padding
	// inflates the padded CTAvg to 3×(2+5) = 21ms, so with D = 24ms the
	// SS1 speculative speed is 875 MHz → floor level 3 (f_max).
	ov := power.Overheads{SpeedChangeTime: 5e-3}
	_, pol := newTestPolicy(t, SS1, 24e-3, ov)
	if pol.floorLow != 3 {
		t.Fatalf("SS1 floor = %d, want 3 (padding-inflated CTAvg)", pol.floorLow)
	}
	// Processor at 500 MHz (level 2), 4ms work, 8.2ms allocation. GSS
	// stays at level 2 (fast enough; a change to anything is
	// unaffordable: 3.2ms left after the change cannot cover 4ms of work
	// even at f_max). The floor (level 3) wants a change the allocation
	// cannot pay for → fall back to the GSS choice.
	if got := pol.PickLevel(simTask(4e-3*1e9, 8.2e-3), 0, 2); got != 2 {
		t.Errorf("PickLevel = %d, want 2 (floor change unaffordable)", got)
	}
	// With a large allocation the change is affordable and the floor
	// applies: 4ms work, 100ms allocation at level 0 → floor level 3.
	if got := pol.PickLevel(simTask(4e-3*1e9, 100e-3), 0, 0); got != 3 {
		t.Errorf("PickLevel = %d, want 3 (floor applies)", got)
	}
}

func TestInitialLevels(t *testing.T) {
	plan, err := NewPlan(chain3(), 1, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if lvl := newPolicy(plan, SPM, 24e-3).initialLevel(); lvl != 2 {
		t.Errorf("SPM initial level = %d, want 2 (500MHz)", lvl)
	}
	if lvl := newPolicy(plan, GSS, 24e-3).initialLevel(); lvl != 3 {
		t.Errorf("GSS initial level = %d, want max", lvl)
	}
	if lvl := newPolicy(plan, NPM, 24e-3).initialLevel(); lvl != 3 {
		t.Errorf("NPM initial level = %d, want max", lvl)
	}
}
