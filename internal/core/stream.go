package core

import (
	"fmt"

	"andorsched/internal/exectime"
	"andorsched/internal/obs"
	"andorsched/internal/stats"
)

// StreamConfig describes a periodic frame-based execution of a planned
// application — the paper's motivating deployment (ATR processes a video
// stream, one frame per period, each frame's deadline being the period).
type StreamConfig struct {
	// Scheme selects the power management scheme.
	Scheme Scheme
	// Period is the frame period in seconds; each frame's deadline. Must
	// be feasible (≥ the plan's CTWorst).
	Period float64
	// Frames is the number of consecutive frames to simulate.
	Frames int
	// Sampler supplies per-frame actual execution times and branch
	// outcomes.
	Sampler exectime.TimeSampler
	// CarryLevels keeps each processor's voltage/speed setting across
	// frame boundaries (the physically accurate behavior: a processor left
	// at a low level starts the next frame there and pays a change if the
	// scheme needs a different speed). When false every frame starts at
	// the scheme's initial level, making frames exactly independent.
	CarryLevels bool
	// Tracer, if non-nil, receives the structured event stream of every
	// frame, concatenated. Frame f's events start at simulation time 0
	// again (each frame is its own run); consumers that need a global
	// clock can offset by f × Period.
	Tracer obs.Tracer
	// Metrics, if non-nil, accumulates over the whole stream; a snapshot
	// is attached to the StreamResult.
	Metrics *obs.Metrics
}

// StreamResult aggregates a frame stream.
type StreamResult struct {
	// Frames is the number of frames simulated.
	Frames int
	// ActiveEnergy, OverheadEnergy and IdleEnergy accumulate over frames;
	// idle time within each frame runs to the period boundary.
	ActiveEnergy, OverheadEnergy, IdleEnergy float64
	// SpeedChanges counts voltage/speed transitions over the stream.
	SpeedChanges int
	// DeadlineMisses counts frames finishing after the period. The
	// schemes' guarantee makes this zero whenever the period is feasible.
	DeadlineMisses int
	// LSTViolations accumulates Theorem-1 violations (always zero).
	LSTViolations int
	// FinishStats summarizes per-frame completion times (seconds).
	FinishStats stats.Acc
	// LevelTime is the stream-wide speed residency profile.
	LevelTime []float64
	// Metrics is the stream-wide registry snapshot; nil unless
	// StreamConfig.Metrics was set.
	Metrics *obs.Snapshot
}

// Energy returns the stream's total energy in joules.
func (r *StreamResult) Energy() float64 {
	return r.ActiveEnergy + r.OverheadEnergy + r.IdleEnergy
}

// RunStream simulates Frames consecutive frames under one scheme. Each
// frame is one execution of the application; its OR path and actual times
// are drawn from the sampler. With CarryLevels set, processor levels
// persist across frames. It is a thin wrapper over RunStreamArena with
// fresh scratch state.
func (p *Plan) RunStream(cfg StreamConfig) (*StreamResult, error) {
	return p.RunStreamArena(cfg, nil)
}

// RunStreamArena is the arena-threaded form of RunStream: one Arena (nil
// uses fresh buffers) serves every frame, so long streams allocate
// per-stream, not per-frame, state. Results are bit-identical to RunStream.
func (p *Plan) RunStreamArena(cfg StreamConfig, a *Arena) (*StreamResult, error) {
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("core: stream needs a positive frame count")
	}
	if cfg.Sampler == nil {
		return nil, fmt.Errorf("core: stream needs a sampler")
	}
	if !p.Feasible(cfg.Period) {
		return nil, fmt.Errorf("core: infeasible period %g < canonical worst case %g", cfg.Period, p.CTWorst)
	}
	if a == nil {
		a = NewArena()
	}
	out := &StreamResult{
		Frames:    cfg.Frames,
		LevelTime: make([]float64, p.numLevels()),
	}
	runCfg := RunConfig{
		Scheme: cfg.Scheme, Deadline: cfg.Period, Sampler: cfg.Sampler,
		Tracer: cfg.Tracer, Metrics: cfg.Metrics,
	}
	var res RunResult
	var carry []int
	for f := 0; f < cfg.Frames; f++ {
		sc := p.resolve(runCfg, a)
		var err error
		if cfg.Scheme == CLV {
			err = p.runClairvoyant(runCfg, a, sc, &res)
		} else {
			var levels []int
			if cfg.CarryLevels {
				levels = carry // nil on the first frame → scheme default
			}
			a.pol.init(p, cfg.Scheme, cfg.Period)
			err = p.execute(runCfg, a, sc, &a.pol, levels, &res)
		}
		if err != nil {
			return nil, fmt.Errorf("core: frame %d: %w", f, err)
		}
		out.ActiveEnergy += res.ActiveEnergy
		out.OverheadEnergy += res.OverheadEnergy
		out.IdleEnergy += res.IdleEnergy
		out.SpeedChanges += res.SpeedChanges
		out.LSTViolations += res.LSTViolations
		if !res.MetDeadline {
			out.DeadlineMisses++
		}
		out.FinishStats.Add(res.Finish)
		for i, v := range res.LevelTime {
			out.LevelTime[i] += v
		}
		carry = append(carry[:0], res.FinalLevels...)
	}
	if cfg.Metrics != nil {
		snap := cfg.Metrics.Snapshot()
		out.Metrics = &snap
	}
	return out, nil
}
