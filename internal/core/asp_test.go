package core

import (
	"testing"

	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// TestASPFloorExact pins the per-PMP floor arithmetic on the serial
// chain: lenA = 6ms, no barriers (remAvgAfter = 0). At t = 0 the first
// task's SpecRemain is the full 6ms; with D = 24ms the floor is
// 6/24·1 GHz = 250 MHz.
func TestASPFloorExact(t *testing.T) {
	plan, err := NewPlan(chain3(), 1, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	pol := newPolicy(plan, ASP, 24e-3)
	pol.resetSection(plan.Sections.First.ID, 0)

	sp := plan.secs[plan.Sections.First.ID]
	// SpecRemain per task: T1 dispatched at 0 (remain 6ms), T2 at 2ms
	// (remain 4ms), T3 at 4ms (remain 2ms) in the average canonical.
	wants := map[string]float64{"T1": 6e-3, "T2": 4e-3, "T3": 2e-3}
	for _, tp := range sp.tasks {
		if w := wants[tp.node.Name]; !closeTo(tp.tmpl.SpecRemain, w) {
			t.Errorf("SpecRemain[%s] = %g, want %g", tp.node.Name, tp.tmpl.SpecRemain, w)
		}
	}
	// Floor for T1 at t=0: 250 MHz (level 1).
	t1 := sp.tasks[0].tmpl
	t1.LFT = 24e-3
	if got := pol.floorAt(&t1, 0); got != 1 {
		t.Errorf("ASP floor = %d, want 1 (250MHz)", got)
	}
	// Same task picked late (t = 21ms): 6ms of average work over 3ms left
	// → f_max.
	if got := pol.floorAt(&t1, 21e-3); got != plan.Platform.MaxIndex() {
		t.Errorf("late ASP floor = %d, want max", got)
	}
	// Past the deadline: clamp.
	if got := pol.floorAt(&t1, 25e-3); got != plan.Platform.MaxIndex() {
		t.Errorf("post-deadline ASP floor = %d, want max", got)
	}
}

// TestASPMeetsDeadlinesEverywhere extends the timing guarantee to the
// extension scheme across paths and processor counts.
func TestASPMeetsDeadlinesEverywhere(t *testing.T) {
	graphs := []struct {
		name string
		m    int
	}{{"synthetic", 2}, {"synthetic", 3}, {"atr", 2}, {"atr", 6}}
	for _, c := range graphs {
		gr := workload.Synthetic()
		if c.name == "atr" {
			gr = workload.ATR(workload.DefaultATRConfig())
		}
		plan, err := NewPlan(gr, c.m, power.IntelXScale(), power.DefaultOverheads())
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 30; seed++ {
			res, err := plan.Run(RunConfig{
				Scheme: ASP, Deadline: plan.CTWorst,
				Sampler:  exectime.NewSampler(exectime.NewSource(seed)),
				Validate: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.MetDeadline || res.LSTViolations != 0 {
				t.Fatalf("%s m=%d seed %d: ASP violated timing", c.name, c.m, seed)
			}
		}
	}
}

// TestASPReducesChangesVsGSS: like the paper's OR-node speculation, the
// per-PMP variant exists to cut speed changes relative to greedy.
func TestASPReducesChangesVsGSS(t *testing.T) {
	plan, err := NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	d := plan.CTWorst / 0.7
	var gssChg, aspChg int
	for seed := uint64(0); seed < 50; seed++ {
		for _, s := range []Scheme{GSS, ASP} {
			res, err := plan.Run(RunConfig{
				Scheme: s, Deadline: d,
				Sampler: exectime.NewSampler(exectime.NewSource(seed)),
			})
			if err != nil {
				t.Fatal(err)
			}
			if s == GSS {
				gssChg += res.SpeedChanges
			} else {
				aspChg += res.SpeedChanges
			}
		}
	}
	if aspChg >= gssChg {
		t.Errorf("ASP changes (%d) should undercut GSS (%d)", aspChg, gssChg)
	}
}
