package core

import (
	"math"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/power"
)

// pow2Plat is a clean platform for exact arithmetic: 125/250/500/1000 MHz.
func pow2Plat() *power.Platform {
	return power.NewPlatform("pow2", []power.Level{
		power.MHz(125, 0.8), power.MHz(250, 1.0), power.MHz(500, 1.3), power.MHz(1000, 1.8),
	})
}

// diamondGraph: A(8/5) → {B(5/3), C(4/2)} → And → D(2/1), times in ms.
func diamondGraph() *andor.Graph {
	g := andor.NewGraph("diamond")
	a := g.AddTask("A", 8e-3, 5e-3)
	b := g.AddTask("B", 5e-3, 3e-3)
	c := g.AddTask("C", 4e-3, 2e-3)
	and := g.AddAnd("And")
	d := g.AddTask("D", 2e-3, 1e-3)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, and)
	g.AddEdge(c, and)
	g.AddEdge(and, d)
	return g
}

// orForkGraph: A(8/5) → O1 ─30%→ B(8/6) ─┐
//
//	└70%→ C(5/3) ─┴→ O2 → D(2/1).
func orForkGraph() *andor.Graph {
	g := andor.NewGraph("orfork")
	a := g.AddTask("A", 8e-3, 5e-3)
	o1 := g.AddOr("O1")
	b := g.AddTask("B", 8e-3, 6e-3)
	c := g.AddTask("C", 5e-3, 3e-3)
	o2 := g.AddOr("O2")
	d := g.AddTask("D", 2e-3, 1e-3)
	g.AddEdge(a, o1)
	g.AddEdge(o1, b)
	g.AddEdge(o1, c)
	g.SetBranchProbs(o1, 0.3, 0.7)
	g.AddEdge(b, o2)
	g.AddEdge(c, o2)
	g.AddEdge(o2, d)
	return g
}

func TestPlanDiamondCanonical(t *testing.T) {
	plan, err := NewPlan(diamondGraph(), 2, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	// Canonical on 2 CPUs at 1 GHz: A[0,8]; B[8,13] and C[8,12] parallel;
	// And at 13; D[13,15]. Average case: 5+3+1 = 9ms.
	if !closeTo(plan.CTWorst, 15e-3) {
		t.Errorf("CTWorst = %g, want 15ms", plan.CTWorst)
	}
	if !closeTo(plan.CTAvg, 9e-3) {
		t.Errorf("CTAvg = %g, want 9ms", plan.CTAvg)
	}
	if plan.NumSections() != 1 {
		t.Errorf("sections = %d", plan.NumSections())
	}
	// Dispatch orders follow the canonical schedule: A, then B before C
	// (longest first), then And, then D.
	sp := plan.secs[0]
	orderByName := map[string]int{}
	var relByName = map[string]float64{}
	for _, tp := range sp.tasks {
		orderByName[tp.node.Name] = tp.tmpl.Order
		relByName[tp.node.Name] = tp.relLFT
	}
	if !(orderByName["A"] == 0 && orderByName["B"] == 1 && orderByName["C"] == 2 &&
		orderByName["And"] == 3 && orderByName["D"] == 4) {
		t.Errorf("canonical orders = %v", orderByName)
	}
	// Latest finish times relative to the deadline: canonical finish − 15ms.
	want := map[string]float64{"A": -7e-3, "B": -2e-3, "C": -3e-3, "And": -2e-3, "D": 0}
	for name, w := range want {
		if !closeTo(relByName[name], w) {
			t.Errorf("relLFT[%s] = %g, want %g", name, relByName[name], w)
		}
	}
}

func TestPlanDiamondSingleProcessor(t *testing.T) {
	plan, err := NewPlan(diamondGraph(), 1, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	// Serial: 8+5+4+2 = 19ms.
	if !closeTo(plan.CTWorst, 19e-3) {
		t.Errorf("CTWorst = %g, want 19ms", plan.CTWorst)
	}
}

func TestPlanOrForkAggregates(t *testing.T) {
	plan, err := NewPlan(orForkGraph(), 2, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	// Longest path: A(8) + B(8) + D(2) = 18ms.
	if !closeTo(plan.CTWorst, 18e-3) {
		t.Errorf("CTWorst = %g, want 18ms", plan.CTWorst)
	}
	// Average: 5 + 0.3·6 + 0.7·3 + 1 = 9.9ms.
	if !closeTo(plan.CTAvg, 9.9e-3) {
		t.Errorf("CTAvg = %g, want 9.9ms", plan.CTAvg)
	}
	// Remaining-time PMP values per section.
	first := plan.secs[plan.Sections.First.ID]
	if !closeTo(first.remWorst, 10e-3) { // max(8,5)+2
		t.Errorf("first.remWorst = %g, want 10ms", first.remWorst)
	}
	if !closeTo(first.remAvg, 4.9e-3) { // .3·6+.7·3 + 1
		t.Errorf("first.remAvg = %g, want 4.9ms", first.remAvg)
	}
	// Per-task relative latest finish times.
	rel := map[string]float64{}
	for _, sp := range plan.secs {
		for _, tp := range sp.tasks {
			rel[tp.node.Name] = tp.relLFT
		}
	}
	want := map[string]float64{"A": -10e-3, "B": -2e-3, "C": -2e-3, "D": 0}
	for name, w := range want {
		if !closeTo(rel[name], w) {
			t.Errorf("relLFT[%s] = %g, want %g", name, rel[name], w)
		}
	}
	// SectionAvgRemaining at the first section is CTAvg.
	if !closeTo(plan.SectionAvgRemaining(plan.Sections.First.ID), 9.9e-3) {
		t.Error("SectionAvgRemaining(first) != CTAvg")
	}
	if !closeTo(plan.SectionWorstRemaining(plan.Sections.First.ID), 18e-3) {
		t.Error("SectionWorstRemaining(first) != CTWorst")
	}
}

func TestPlanPaddingInflatesCanonical(t *testing.T) {
	plat := pow2Plat()
	ov := power.Overheads{SpeedCompCycles: 0, SpeedChangeTime: 1e-3} // 1ms pad
	plan, err := NewPlan(diamondGraph(), 2, plat, ov)
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 3 tasks on the critical path gains 1ms: 15 → 18ms.
	if !closeTo(plan.CTWorst, 18e-3) {
		t.Errorf("padded CTWorst = %g, want 18ms", plan.CTWorst)
	}
}

func TestPlanFeasible(t *testing.T) {
	plan, err := NewPlan(diamondGraph(), 2, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible(plan.CTWorst) {
		t.Error("deadline == CTWorst should be feasible")
	}
	if plan.Feasible(plan.CTWorst * 0.99) {
		t.Error("deadline below CTWorst should be infeasible")
	}
	if plan.MinDeadline() != plan.CTWorst {
		t.Error("MinDeadline != CTWorst")
	}
}

func TestPlanErrors(t *testing.T) {
	g := diamondGraph()
	if _, err := NewPlan(g, 0, pow2Plat(), power.NoOverheads()); err == nil {
		t.Error("want processor-count error")
	}
	if _, err := NewPlan(g, 2, nil, power.NoOverheads()); err == nil {
		t.Error("want nil-platform error")
	}
	bad := andor.NewGraph("bad")
	bad.AddAnd("lonely")
	if _, err := NewPlan(bad, 2, pow2Plat(), power.NoOverheads()); err == nil {
		t.Error("want validation error")
	}
}

func TestSpeculativeSpeed(t *testing.T) {
	plan, err := NewPlan(orForkGraph(), 2, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	// f_spec = f_max·CT_avg/D.
	d := 19.8e-3
	if got := plan.SpeculativeSpeed(d); !closeTo(got, 500e6) {
		t.Errorf("SpeculativeSpeed = %g, want 500MHz", got)
	}
	if !math.IsInf(plan.SpeculativeSpeed(0), 1) {
		t.Error("SpeculativeSpeed(0) should be +Inf")
	}
}

func TestSPMLevel(t *testing.T) {
	plan, err := NewPlan(diamondGraph(), 2, pow2Plat(), power.NoOverheads())
	if err != nil {
		t.Fatal(err)
	}
	// CTWorst 15ms; D = 30ms → 500MHz exactly.
	if got := plan.SPMLevel(30e-3); !closeTo(got.Freq, 500e6) {
		t.Errorf("SPMLevel(30ms) = %v, want 500MHz", got)
	}
	// D = 40ms → desired 375MHz → rounds up to 500MHz.
	if got := plan.SPMLevel(40e-3); !closeTo(got.Freq, 500e6) {
		t.Errorf("SPMLevel(40ms) = %v, want 500MHz", got)
	}
	// D = 15ms → f_max.
	if got := plan.SPMLevel(15e-3); !closeTo(got.Freq, 1000e6) {
		t.Errorf("SPMLevel(15ms) = %v, want 1000MHz", got)
	}
}

func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12+1e-9*math.Abs(b)
}
