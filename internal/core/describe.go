package core

import (
	"fmt"
	"strings"
)

// Describe renders the off-line phase's results for one deadline as a
// human-readable report: per-section canonical lengths, the PMP remaining-
// time values, and each task's canonical dispatch order and latest
// start/finish times. It is what an engineer would inspect to understand
// why the scheduler chose the speeds it did (used by andorsim -plan).
func (p *Plan) Describe(deadline float64) string {
	var b strings.Builder
	if p.Hetero != nil {
		fmt.Fprintf(&b, "off-line plan: %s on %s (%d processors", p.Graph.Name, p.Hetero.Name, p.Procs)
		for c := 0; c < p.Hetero.NumClasses(); c++ {
			cl := p.Hetero.Class(c)
			fmt.Fprintf(&b, ", %d × %s ×%.2g", cl.Count, cl.Plat.Name, cl.Speed)
		}
		fmt.Fprintf(&b, ") placement %s\n", p.Placement.Name())
	} else {
		fmt.Fprintf(&b, "off-line plan: %s on %d × %s\n", p.Graph.Name, p.Procs, p.Platform.Name)
	}
	fmt.Fprintf(&b, "  canonical worst case CT_worst = %.3fms (longest path)\n", p.CTWorst*1e3)
	fmt.Fprintf(&b, "  canonical average    CT_avg   = %.3fms (probability-weighted)\n", p.CTAvg*1e3)
	fmt.Fprintf(&b, "  deadline D = %.3fms → load %.3f, feasible: %v\n",
		deadline*1e3, p.CTWorst/deadline, p.Feasible(deadline))
	if p.Hetero != nil {
		fmt.Fprintf(&b, "  speculative stretch CT_avg/D = %.3f (applied to each class's own f_max)\n",
			p.CTAvg/deadline)
	} else {
		fmt.Fprintf(&b, "  static speeds: SPM %s, speculative f_max·CT_avg/D = %.0fMHz\n",
			p.SPMLevel(deadline), p.SpeculativeSpeed(deadline)/1e6)
	}

	for _, sp := range p.secs {
		exit := "END"
		if sp.sec.Exit != nil {
			exit = sp.sec.Exit.Name
		}
		fmt.Fprintf(&b, "\nsection %d: len_w %.3fms, len_a %.3fms, after-exit worst %.3fms avg %.3fms, exit %s\n",
			sp.sec.ID, sp.lenW*1e3, sp.lenA*1e3, sp.remWorst*1e3, sp.remAvg*1e3, exit)
		if len(sp.tasks) == 0 {
			b.WriteString("  (zero-length section)\n")
			continue
		}
		// Print tasks in canonical dispatch order.
		byOrder := make([]*taskPlan, len(sp.tasks))
		for i := range sp.tasks {
			byOrder[sp.tasks[i].tmpl.Order] = &sp.tasks[i]
		}
		fmt.Fprintf(&b, "  %-4s %-14s %10s %10s %10s\n", "ord", "task", "wcet", "LST", "LFT")
		for _, tp := range byOrder {
			lft := deadline + tp.relLFT
			if tp.tmpl.Dummy {
				fmt.Fprintf(&b, "  %-4d %-14s %10s %10s %9.3fms\n",
					tp.tmpl.Order, tp.node.Name, "-", "-", lft*1e3)
				continue
			}
			lst := lft - tp.tmpl.WorkW/p.fmax
			fmt.Fprintf(&b, "  %-4d %-14s %8.3fms %8.3fms %8.3fms\n",
				tp.tmpl.Order, tp.node.Name, tp.node.WCET*1e3, lst*1e3, lft*1e3)
		}
	}
	return b.String()
}
