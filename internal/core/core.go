// Package core implements the paper's contribution: power-aware scheduling
// of AND/OR-graph real-time applications on DVS multiprocessors.
//
// It provides:
//
//   - the off-line phase (Plan / NewPlan): canonical list schedules with the
//     longest-task-first heuristic for every program section, worst- and
//     average-case completion-time aggregation over the section graph (the
//     paper's PMP values), and the recursive shifting that yields each
//     task's latest start/finish time (§3.2);
//
//   - the on-line phase (Plan.Run): the order-preserving dispatch discipline
//     with implicit greedy slack sharing, executed on the internal/sim
//     machine, under six speed-selection schemes (§3–§4):
//
//     NPM  no power management — everything at f_max;
//     SPM  static power management — one speed from static slack;
//     GSS  greedy slack sharing — per-task speed from reclaimed slack;
//     SS1  static speculation, single speed — GSS floored by f_max·CT_avg/D;
//     SS2  static speculation, two speeds — GSS floored by a low/high
//     speed pair straddling the speculative speed, switching at T_s;
//     AS   adaptive speculation — GSS floored by a speed recomputed from
//     the remaining average-case work after every OR node.
//
// Correctness (Theorem 1): whenever the canonical schedule of the longest
// path meets the deadline, every scheme's on-line execution meets it too.
// The run driver verifies the underlying invariant — no task is dispatched
// after its latest start time — and reports violations, which the test
// suite asserts never occur.
package core

import "fmt"

// Scheme identifies one of the paper's power management schemes.
type Scheme uint8

const (
	// NPM is "no power management": every task at f_max, idle at 5% of
	// maximum power. All energies are normalized to NPM in the evaluation.
	NPM Scheme = iota
	// SPM is static power management: a single statically chosen speed
	// that stretches the canonical worst case to the deadline.
	SPM
	// GSS is the paper's greedy slack sharing extended to AND/OR graphs.
	GSS
	// SS1 is static speculation with a single speculative speed.
	SS1
	// SS2 is static speculation with two speeds and a switch point.
	SS2
	// AS is adaptive speculation after each OR synchronization node.
	AS
	// CLV is the clairvoyant single-speed oracle (not one of the paper's
	// schemes): with perfect knowledge of actual execution times and the
	// taken path, run everything at the slowest constant level meeting the
	// deadline — the intuition behind speculation (§3.3) made executable.
	// It serves as a near-lower bound in ablations.
	CLV
	// ASP is adaptive speculation at every power management point (also
	// not one of the paper's schemes): the paper notes a PMP exists before
	// each node (§2.2) but speculates only after OR nodes to bound the
	// overhead; ASP recomputes the speculative speed at every task pickup
	// from the remaining average-case work, quantifying what the finer
	// granularity buys. Compare with the intra-task granularity discussion
	// of Shin et al. the paper cites.
	ASP
	// ORA is online reclamation, adaptive (not one of the paper's
	// schemes): adaptive speculation whose workload assumption is not the
	// plan's static α but an online EWMA estimate of the observed
	// actual/worst-case execution ratios, refreshed after every completed
	// section. Measured dynamic slack is thereby redistributed across the
	// *future* sections: when the run is lighter than the static average
	// predicts, the speculative floor drops toward the greedy level; when
	// it is heavier, the floor rises back toward AS's. The estimator state
	// is run-scoped (it lives in the policy inside the run's Arena), never
	// on the immutable Plan. With a frozen or empty observation history
	// ORA degenerates bit-exactly to AS. See MORA (Nelis & Goossens) and
	// Leung/Tsui in PAPERS.md for the reclamation literature this follows.
	ORA
)

// Schemes lists all schemes in presentation order.
var Schemes = []Scheme{NPM, SPM, GSS, SS1, SS2, AS}

// DynamicSchemes lists the schemes that reclaim run-time slack.
var DynamicSchemes = []Scheme{GSS, SS1, SS2, AS}

// String returns the scheme's short name as used in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case NPM:
		return "NPM"
	case SPM:
		return "SPM"
	case GSS:
		return "GSS"
	case SS1:
		return "SS1"
	case SS2:
		return "SS2"
	case AS:
		return "AS"
	case CLV:
		return "CLV"
	case ASP:
		return "ASP"
	case ORA:
		return "ORA"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// ExtendedSchemes lists this repository's additions beyond the paper: the
// clairvoyant bound, per-PMP adaptive speculation, and online slack
// reclamation.
var ExtendedSchemes = []Scheme{CLV, ASP, ORA}

// ParseScheme converts a scheme name (case-sensitive, as printed by
// String) to a Scheme. The extended schemes CLV, ASP and ORA are accepted
// in addition to the paper's six.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range append(append([]Scheme(nil), Schemes...), ExtendedSchemes...) {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q (want one of NPM SPM GSS SS1 SS2 AS CLV ASP ORA)", name)
}

// Dynamic reports whether the scheme performs run-time speed computation
// (and therefore pays the power-management overheads).
func (s Scheme) Dynamic() bool {
	return s == GSS || s == SS1 || s == SS2 || s == AS || s == ASP || s == ORA
}
