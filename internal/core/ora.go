package core

// This file implements the run-time state of the ORA scheme (online
// reclamation, adaptive): an online estimator of α, the ratio of actual to
// worst-case execution time, that adapts the speculative floor to the
// *observed* behavior of the current run instead of the plan's static
// average. The scheme itself is the AS rule with the static remaining-time
// assumption rescaled by the estimate; see policies.go (resetSection) for
// the rule and docs/MODEL.md §4 for the precise statement.

// DefaultORAWeight is the default EWMA weight η of ORA's online
// α-estimator. Small enough that one outlier task cannot swing the floor
// by a whole level, large enough that the estimate converges within a few
// sections — the horizon over which reclaimed slack can still be
// redistributed.
const DefaultORAWeight = 0.125

// oraScaleMin bounds how far below the static assumption the estimator
// may pull the speculative floor. Timing safety never depends on this
// bound (any floor is safe — see the Theorem-1 argument in policies.go);
// it only keeps a freak stretch of near-zero actual times from disabling
// speculation entirely, which would cost energy through greedy
// overspending on whatever heavy work remains.
const oraScaleMin = 0.1

// oraDeadband is the relative band below 1 inside which the estimator's
// correction is ignored. The EWMA dithers by a few percent from sampling
// noise even when the static assumption is exactly right; chasing that
// noise moves the quantized floor up and down a level, paying speed-change
// overheads for nothing. Genuinely light runs push the estimate far below
// the band, so only noise is suppressed.
const oraDeadband = 0.1

// oraEstimator is ORA's online α-estimator: an EWMA over observed
// actual/worst-case execution ratios, seeded from the plan's static
// task-level α (Σ ACET / Σ WCET over compute tasks). The zero value is
// unusable; init configures it per
// run. It lives inside the policy — and therefore inside the run's Arena —
// so its state is strictly run-scoped: the immutable Plan never sees it,
// and concurrent runs on one Plan cannot couple through it
// (TestORASharedPlanBitIdentical pins this under the race detector).
type oraEstimator struct {
	// seed is the static α the EWMA starts from; alpha is the current
	// estimate α̂.
	seed, alpha float64
	// eta is the EWMA weight; η ≤ 0 freezes the estimator, which makes
	// ORA reproduce AS bit-exactly (the differential tests rely on it).
	eta float64
	// n counts observations folded in; 0 means the history is empty and
	// the scale is exactly 1.
	n int
}

// init seeds the estimator for one run on plan p. eta = 0 selects
// DefaultORAWeight; eta < 0 freezes the estimator. The seed is the plan's
// task-level α (Σ ACET / Σ WCET), the same quantity the per-task
// observations estimate — seeding with the schedule-length ratio
// CTAvg/CTWorst would bias the correction even when the assumption is
// exactly right, because barriers and overhead padding skew that ratio
// away from the task-level one.
func (e *oraEstimator) init(p *Plan, eta float64) {
	e.seed = p.alphaTask
	e.alpha = e.seed
	if eta == 0 {
		eta = DefaultORAWeight
	}
	e.eta = eta
	e.n = 0
}

// observe folds one completed task's actual/worst-case work ratio into the
// EWMA. Ratios are clamped to [0, 1]: actual work never exceeds the padded
// worst case, so values outside only arise from degenerate inputs.
func (e *oraEstimator) observe(r float64) {
	if e.eta <= 0 {
		return // frozen: ORA keeps AS's static assumption exactly
	}
	if r < 0 {
		r = 0
	} else if r > 1 {
		r = 1
	}
	e.alpha += e.eta * (r - e.alpha)
	e.n++
}

// scale returns the factor α̂/α applied to the plan's static average-case
// remaining time, in [oraScaleMin, 1]. Exactly 1 while the history is
// empty (or the seed is degenerate), so ORA's floor arithmetic is
// bit-identical to AS's until the first observation. The correction only
// runs downward — reclamation: a lighter-than-assumed run lowers the floor
// toward the greedy level, redistributing the measured slack over the
// remaining sections. A heavier-than-assumed run returns the floor to AS's
// but never raises it above: speculating *more* work than the static
// average would trade the certain cost of running faster now against a
// bet the paper's schemes deliberately do not make, and measurements
// across both platforms show it losing at exactly the small-α points
// where reclamation matters.
func (e *oraEstimator) scale() float64 {
	if e.n == 0 || e.seed <= 0 {
		return 1
	}
	s := e.alpha / e.seed
	if s > 1-oraDeadband {
		return 1
	}
	if s < oraScaleMin {
		return oraScaleMin
	}
	return s
}
