package core

import (
	"fmt"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// This file is the deadline-safety property harness: every scheme the
// package exports (the paper's six plus CLV, ASP and ORA) is swept over a
// workload×platform×deadline case under common random numbers and held to
// the Theorem-1 obligations. New schemes ride in automatically through
// allSchemes() — adding a scheme without passing this harness breaks the
// build's tier-1 run.

// safetyCase is one workload instance for the deadline-safety harness.
type safetyCase struct {
	// name prefixes failure messages ("ATR/Transmeta α=0.5 load=0.9").
	name string
	plan *Plan
	// deadline is the run deadline; must be feasible for the plan.
	deadline float64
	// seeds drives the sweep: every scheme replays each seed's script
	// (common random numbers), so energies are exactly paired.
	seeds []uint64
}

// checkDeadlineSafety runs every scheme on the case and asserts, per
// scheme × seed: the run succeeds with the engine-level validator enabled,
// no task starts after its latest start time (Theorem 1's invariant; CLV
// replays a probed path and is exempted by the run driver), the deadline
// is met, and the energy net of power-management overheads does not exceed
// NPM's on the same script — slowing down under slack can never cost
// active-plus-idle energy; only the overheads a scheme pays for managing
// power can push it above NPM, and at extreme α the savings on near-empty
// tasks genuinely are smaller than the management cost. It returns each
// scheme's (gross) energy summed over the seeds, for aggregate
// cross-scheme assertions.
func checkDeadlineSafety(t *testing.T, arena *Arena, c safetyCase) map[Scheme]float64 {
	t.Helper()
	var res RunResult
	sums := make(map[Scheme]float64, len(allSchemes()))
	for _, seed := range c.seeds {
		npmEnergy := 0.0
		for _, s := range allSchemes() {
			err := c.plan.RunInto(RunConfig{
				Scheme: s, Deadline: c.deadline,
				Sampler:  exectime.NewSampler(exectime.NewSource(seed)),
				Validate: true,
			}, arena, &res)
			if err != nil {
				t.Fatalf("%s %s seed=%d: %v", c.name, s, seed, err)
			}
			if res.LSTViolations != 0 {
				t.Errorf("%s %s seed=%d: %d tasks started after their LST",
					c.name, s, seed, res.LSTViolations)
			}
			if !res.MetDeadline {
				t.Errorf("%s %s seed=%d: finish %g misses deadline %g",
					c.name, s, seed, res.Finish, c.deadline)
			}
			e := res.Energy()
			if s == NPM {
				npmEnergy = e
			} else if e-res.OverheadEnergy > npmEnergy*(1+1e-9) {
				t.Errorf("%s %s seed=%d: energy %g (%g net of overheads) exceeds NPM's %g on the same script",
					c.name, s, seed, e, e-res.OverheadEnergy, npmEnergy)
			}
			sums[s] += e
		}
	}
	return sums
}

// TestTheorem1InvariantSweep is the Theorem-1 table test on the paper's ATR
// application: across both processor tables, α ∈ {0.1, 0.5, 1.0}, two
// loads, several seeds and every scheme, the harness's obligations hold.
func TestTheorem1InvariantSweep(t *testing.T) {
	arena := NewArena()
	for _, plat := range []*power.Platform{power.Transmeta5400(), power.IntelXScale()} {
		for _, alpha := range []float64{0.1, 0.5, 1.0} {
			g := workload.ATR(workload.DefaultATRConfig())
			g.ScaleACET(alpha)
			plan, err := NewPlan(g, 2, plat, power.DefaultOverheads())
			if err != nil {
				t.Fatalf("%s α=%g: NewPlan: %v", plat.Name, alpha, err)
			}
			for _, load := range []float64{0.5, 0.9} {
				checkDeadlineSafety(t, arena, safetyCase{
					name:     fmt.Sprintf("ATR/%s α=%g load=%g", plat.Name, alpha, load),
					plan:     plan,
					deadline: plan.CTWorst / load,
					seeds:    []uint64{0, 1, 2},
				})
			}
		}
	}
}

// TestDeadlineSafetyRandomWorkloads is the property sweep: 50 random
// AND/OR applications × both platforms × α ∈ {0.1, 0.5, 1.0}, every scheme
// on every case, processor counts 1–4 and loads 0.5–0.8. Beyond the
// per-case obligations it asserts two aggregates per α: every scheme's
// total (gross) energy over the sweep stays at or below NPM's — power
// management pays off on average even where single overhead-dominated
// cases go the other way — and, at α = 0.1, ORA's total does not exceed
// AS's: where dynamic slack is plentiful, online reclamation must at
// least pay for itself against the static-assumption baseline.
func TestDeadlineSafetyRandomWorkloads(t *testing.T) {
	plats := []*power.Platform{power.Transmeta5400(), power.IntelXScale()}
	arena := NewArena()
	for _, alpha := range []float64{0.1, 0.5, 1.0} {
		totals := make(map[Scheme]float64, len(allSchemes()))
		for wl := 0; wl < 50; wl++ {
			opts := andor.DefaultRandomOpts()
			opts.Alpha = alpha
			g := workload.Random(uint64(wl)+1, opts)
			m := 1 + wl%4
			load := 0.5 + 0.1*float64(wl%4)
			for _, plat := range plats {
				plan, err := NewPlan(g, m, plat, power.DefaultOverheads())
				if err != nil {
					t.Fatalf("workload %d %s α=%g: NewPlan: %v", wl, plat.Name, alpha, err)
				}
				sums := checkDeadlineSafety(t, arena, safetyCase{
					name:     fmt.Sprintf("random-%d/%s (m=%d) α=%g load=%g", wl, plat.Name, m, alpha, load),
					plan:     plan,
					deadline: plan.CTWorst / load,
					seeds:    []uint64{uint64(wl) * 7, uint64(wl)*7 + 1},
				})
				for s, e := range sums {
					totals[s] += e
				}
			}
		}
		for _, s := range allSchemes() {
			if s != NPM && totals[s] > totals[NPM]*(1+1e-9) {
				t.Errorf("α=%g sweep: %s total energy %g exceeds NPM's %g",
					alpha, s, totals[s], totals[NPM])
			}
		}
		if alpha == 0.1 && totals[ORA] > totals[AS]*(1+1e-9) {
			t.Errorf("α=0.1 sweep: ORA total energy %g exceeds AS's %g — reclamation did not pay for itself",
				totals[ORA], totals[AS])
		}
	}
}
