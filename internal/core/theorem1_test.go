package core

import (
	"testing"

	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// TestTheorem1InvariantSweep is the Theorem-1 table test: across both
// processor tables, α ∈ {0.1, 0.5, 1.0}, two loads, several seeds and every
// scheme, no task starts after its latest start time and the application
// deadline is met. All runs go through a shared arena (the engine-level
// validator is also enabled, cross-checking each section's schedule against
// the machine model). CLV replays a probed path rather than dispatching
// against LSTs, so the run driver exempts it from the LST count; it still
// must meet the deadline.
func TestTheorem1InvariantSweep(t *testing.T) {
	arena := NewArena()
	var res RunResult
	for _, plat := range []*power.Platform{power.Transmeta5400(), power.IntelXScale()} {
		for _, alpha := range []float64{0.1, 0.5, 1.0} {
			g := workload.ATR(workload.DefaultATRConfig())
			g.ScaleACET(alpha)
			plan, err := NewPlan(g, 2, plat, power.DefaultOverheads())
			if err != nil {
				t.Fatalf("%s α=%g: NewPlan: %v", plat.Name, alpha, err)
			}
			for _, load := range []float64{0.5, 0.9} {
				d := plan.CTWorst / load
				for _, s := range allSchemes() {
					for seed := uint64(0); seed < 3; seed++ {
						err := plan.RunInto(RunConfig{
							Scheme: s, Deadline: d,
							Sampler:  exectime.NewSampler(exectime.NewSource(seed)),
							Validate: true,
						}, arena, &res)
						if err != nil {
							t.Fatalf("%s α=%g load=%g %s seed=%d: %v",
								plat.Name, alpha, load, s, seed, err)
						}
						if res.LSTViolations != 0 {
							t.Errorf("%s α=%g load=%g %s seed=%d: %d tasks started after their LST",
								plat.Name, alpha, load, s, seed, res.LSTViolations)
						}
						if !res.MetDeadline {
							t.Errorf("%s α=%g load=%g %s seed=%d: finish %g misses deadline %g",
								plat.Name, alpha, load, s, seed, res.Finish, d)
						}
					}
				}
			}
		}
	}
}
