package core

import (
	"fmt"
	"strings"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/sim"
	"andorsched/internal/workload"
)

// TestHeteroDegenerateDifferential pins the tentpole bit-identity contract
// at the plan level: a 1-class heterogeneous platform with Speed 1 and the
// identical-platform path produce byte-identical plans and runs — every
// scheme × 50 random workloads × both tables × every placement policy,
// traces included. Any drift in the hetero policy arithmetic (a (x·1.0)
// that stopped being exact, a reordered float expression) fails here
// before it can skew an ablation.
func TestHeteroDegenerateDifferential(t *testing.T) {
	plats := []*power.Platform{power.Transmeta5400(), power.IntelXScale()}
	places := []sim.PlacementPolicy{sim.FastestFirst, sim.EnergyGreedy, sim.ClassAffinity}
	ov := power.DefaultOverheads()
	for wl := 0; wl < 50; wl++ {
		g := workload.Random(uint64(wl)+1, andor.DefaultRandomOpts())
		m := 1 + wl%4
		plat := plats[wl%2]
		homo, err := NewPlan(g, m, plat, ov)
		if err != nil {
			t.Fatalf("workload %d: NewPlan: %v", wl, err)
		}
		hp, err := power.Homogeneous(plat, m)
		if err != nil {
			t.Fatalf("workload %d: Homogeneous: %v", wl, err)
		}
		// With one class every placement policy must reduce to the
		// homogeneous processor pick: same plan, same runs.
		var het *Plan
		for _, place := range places {
			hpl, err := NewHeteroPlan(g, hp, ov, place)
			if err != nil {
				t.Fatalf("workload %d: NewHeteroPlan(%s): %v", wl, place.Name(), err)
			}
			if homo.CTWorst != hpl.CTWorst || homo.CTAvg != hpl.CTAvg {
				t.Fatalf("workload %d (m=%d) %s: plan diverged: CTWorst %v vs %v, CTAvg %v vs %v",
					wl, m, place.Name(), homo.CTWorst, hpl.CTWorst, homo.CTAvg, hpl.CTAvg)
			}
			if het == nil || wl%3 == 1 && place == sim.EnergyGreedy || wl%3 == 2 && place == sim.ClassAffinity {
				het = hpl // rotate which placement's plan gets the full run comparison
			}
		}
		load := 0.4 + 0.1*float64(wl%4)
		cfg := RunConfig{
			Deadline:     homo.CTWorst / load,
			CollectTrace: true,
			Validate:     true,
		}
		for _, s := range allSchemes() {
			cfg.Scheme = s
			seed := uint64(wl)*31 + uint64(s)
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
			want, err := homo.Run(cfg)
			if err != nil {
				t.Fatalf("workload %d %s: identical-platform run: %v", wl, s, err)
			}
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
			got, err := het.Run(cfg)
			if err != nil {
				t.Fatalf("workload %d %s: hetero run: %v", wl, s, err)
			}
			if diff := eqRunResults(want, got); diff != "" {
				t.Fatalf("workload %d (m=%d) %s: 1-class hetero diverged from identical platform: %s",
					wl, m, s, diff)
			}
		}
	}
}

// heteroSafetyCase sweeps every scheme over one heterogeneous plan and
// asserts the Theorem-1 obligations: the run succeeds with the engine-level
// validator on, no task starts after its class-relative latest start time,
// and the deadline is met.
func heteroSafetyCase(t *testing.T, arena *Arena, name string, plan *Plan, deadline float64, seeds []uint64) {
	t.Helper()
	var res RunResult
	for _, seed := range seeds {
		for _, s := range allSchemes() {
			err := plan.RunInto(RunConfig{
				Scheme: s, Deadline: deadline,
				Sampler:  exectime.NewSampler(exectime.NewSource(seed)),
				Validate: true,
			}, arena, &res)
			if err != nil {
				t.Fatalf("%s %s seed=%d: %v", name, s, seed, err)
			}
			if res.LSTViolations != 0 {
				t.Errorf("%s %s seed=%d: %d tasks started after their LST",
					name, s, seed, res.LSTViolations)
			}
			if !res.MetDeadline {
				t.Errorf("%s %s seed=%d: finish %g misses deadline %g",
					name, s, seed, res.Finish, deadline)
			}
		}
	}
}

// TestTheorem1HeteroSweep is the deadline-safety harness on the reference
// heterogeneous platforms: every scheme × every placement policy (each
// placement compiles its own plan — placement shapes the canonical
// schedules) over the ATR application and random workloads, on big.LITTLE,
// accel-offload and the symmetric 1-class platform, at two loads and
// α ∈ {0.1, 1.0}.
func TestTheorem1HeteroSweep(t *testing.T) {
	arena := NewArena()
	refs := []*power.Hetero{power.SymmetricHetero(3), power.BigLittle(), power.AccelOffload()}
	places := []sim.PlacementPolicy{sim.FastestFirst, sim.EnergyGreedy, sim.ClassAffinity}
	ov := power.DefaultOverheads()
	for _, hp := range refs {
		for _, place := range places {
			for _, alpha := range []float64{0.1, 1.0} {
				g := workload.ATR(workload.DefaultATRConfig())
				g.ScaleACET(alpha)
				plan, err := NewHeteroPlan(g, hp, ov, place)
				if err != nil {
					t.Fatalf("%s/%s α=%g: NewHeteroPlan: %v", hp.Name, place.Name(), alpha, err)
				}
				for _, load := range []float64{0.5, 0.9} {
					heteroSafetyCase(t, arena,
						fmt.Sprintf("ATR/%s/%s α=%g load=%g", hp.Name, place.Name(), alpha, load),
						plan, plan.CTWorst/load, []uint64{0, 1})
				}
			}
			for wl := 0; wl < 12; wl++ {
				g := workload.Random(uint64(wl)+100, andor.DefaultRandomOpts())
				plan, err := NewHeteroPlan(g, hp, ov, place)
				if err != nil {
					t.Fatalf("%s/%s workload %d: NewHeteroPlan: %v", hp.Name, place.Name(), wl, err)
				}
				load := 0.5 + 0.1*float64(wl%4)
				heteroSafetyCase(t, arena,
					fmt.Sprintf("random-%d/%s/%s load=%g", wl, hp.Name, place.Name(), load),
					plan, plan.CTWorst/load, []uint64{uint64(wl) * 7})
			}
		}
	}
}

// TestHeteroAffinitySteering compiles a workload whose heavy filter stage is
// tagged `@accel` and checks that class-affinity placement actually steers
// the tagged tasks onto the accelerator class while meeting the deadline.
func TestHeteroAffinitySteering(t *testing.T) {
	hp := power.AccelOffload()
	g := andor.NewGraph("tagged")
	src := g.AddTask("src", 1e-3, 1e-3)
	var filters []*andor.Node
	for i := 0; i < 3; i++ {
		f := g.AddTask(fmt.Sprintf("filter%d", i), 8e-3, 8e-3)
		g.SetClass(f, "accel")
		g.AddEdge(src, f)
		filters = append(filters, f)
	}
	join := g.AddAnd("join")
	for _, f := range filters {
		g.AddEdge(f, join)
	}
	sink := g.AddTask("sink", 1e-3, 1e-3)
	g.AddEdge(join, sink)
	plan, err := NewHeteroPlan(g, hp, power.DefaultOverheads(), sim.ClassAffinity)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(RunConfig{
		Scheme: GSS, Deadline: plan.CTWorst * 1.5,
		WorstCase:    true,
		CollectTrace: true, Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MetDeadline || res.LSTViolations != 0 {
		t.Fatalf("met=%v lst=%d", res.MetDeadline, res.LSTViolations)
	}
	accel := hp.ClassIndex("accel")
	onAccel := 0
	for _, e := range res.Trace {
		if strings.HasPrefix(e.Name, "filter") && hp.ClassOf(e.Proc) == accel {
			onAccel++
		}
	}
	if onAccel == 0 {
		t.Fatalf("class-affinity placement put no tagged filter on the accelerator:\n%+v", res.Trace)
	}
}

// TestHeteroPlanErrors pins the compile-time misuse errors of the
// heterogeneous path and the default placement.
func TestHeteroPlanErrors(t *testing.T) {
	g := andor.NewGraph("bad")
	n := g.AddTask("A", 1e-3, 1e-3)
	g.SetClass(n, "gpu")
	if _, err := NewHeteroPlan(g, power.BigLittle(), power.DefaultOverheads(), nil); err == nil ||
		!strings.Contains(err.Error(), `no processor class "gpu"`) {
		t.Fatalf("unknown class tag not rejected: %v", err)
	}
	if _, err := NewHeteroPlan(g, nil, power.DefaultOverheads(), nil); err == nil {
		t.Fatal("nil platform not rejected")
	}

	plain := andor.NewGraph("plain")
	plain.AddTask("A", 1e-3, 1e-3)
	plan, err := NewHeteroPlan(plain, power.BigLittle(), power.DefaultOverheads(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Placement != sim.FastestFirst {
		t.Fatalf("nil placement defaulted to %v, want FastestFirst", plan.Placement)
	}
}

// TestHeteroStreamAndDescribe smoke-tests the frame-stream driver and the
// plan reporter on a heterogeneous plan (both share the homogeneous code
// path except for level-profile sizing and the platform header).
func TestHeteroStreamAndDescribe(t *testing.T) {
	plan, err := NewHeteroPlan(workload.ATR(workload.DefaultATRConfig()),
		power.BigLittle(), power.DefaultOverheads(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.RunStream(StreamConfig{
		Scheme: AS, Period: plan.CTWorst * 1.5, Frames: 5,
		Sampler:     exectime.NewSampler(exectime.NewSource(1)),
		CarryLevels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 || res.LSTViolations != 0 {
		t.Fatalf("stream: misses=%d lst=%d", res.DeadlineMisses, res.LSTViolations)
	}
	desc := plan.Describe(plan.CTWorst * 1.5)
	if !strings.Contains(desc, "big.LITTLE") {
		t.Fatalf("Describe lost the platform name:\n%s", desc)
	}
}
