package core

import (
	"math"
	"strings"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/exectime"
	"andorsched/internal/obs"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// TestORAFrozenDegeneratesToAS is the reclamation differential: ORA with a
// frozen α-history (ORAWeight < 0) must reproduce the AS baseline exactly —
// energies, finish times, level residencies, traces, everything but the
// scheme echo — across random workloads, both platforms and all α values.
// The frozen estimator's scale is exactly 1 and 1·rem == rem in IEEE
// arithmetic, so the two floor computations are the same float operations.
func TestORAFrozenDegeneratesToAS(t *testing.T) {
	plats := []*power.Platform{power.Transmeta5400(), power.IntelXScale()}
	arena := NewArena()
	var asRes, oraRes RunResult
	for wl := 0; wl < 30; wl++ {
		opts := andor.DefaultRandomOpts()
		opts.Alpha = []float64{0.1, 0.5, 1.0}[wl%3]
		g := workload.Random(uint64(wl)+1, opts)
		plan, err := NewPlan(g, 1+wl%4, plats[wl%2], power.DefaultOverheads())
		if err != nil {
			t.Fatalf("workload %d: NewPlan: %v", wl, err)
		}
		cfg := RunConfig{
			Deadline:     plan.CTWorst / 0.8,
			CollectTrace: true,
		}
		for seed := uint64(0); seed < 3; seed++ {
			cfg.Scheme, cfg.ORAWeight = AS, 0
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
			if err := plan.RunInto(cfg, arena, &asRes); err != nil {
				t.Fatalf("workload %d AS seed=%d: %v", wl, seed, err)
			}
			cfg.Scheme, cfg.ORAWeight = ORA, -1
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
			if err := plan.RunInto(cfg, arena, &oraRes); err != nil {
				t.Fatalf("workload %d frozen ORA seed=%d: %v", wl, seed, err)
			}
			oraRes.Scheme = AS // normalize the config echo; all else must match
			if diff := eqRunResults(&asRes, &oraRes); diff != "" {
				t.Fatalf("workload %d seed=%d: frozen ORA diverged from AS: %s", wl, seed, diff)
			}
		}
	}
}

// TestORAWeightValidation pins the RunConfig.ORAWeight contract: weights
// above 1 are rejected before the run starts, and the field is ignored by
// every scheme except ORA (an out-of-range weight still errors — the
// config is invalid regardless of which scheme would have read it).
func TestORAWeightValidation(t *testing.T) {
	plan, err := NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Scheme: ORA, Deadline: plan.CTWorst / 0.8,
		Sampler: exectime.NewSampler(exectime.NewSource(1)),
	}
	for _, w := range []float64{1.5, 2, math.Inf(1)} {
		cfg.ORAWeight = w
		if _, err := plan.Run(cfg); err == nil || !strings.Contains(err.Error(), "ORAWeight") {
			t.Errorf("ORAWeight=%g: want validation error, got %v", w, err)
		}
	}
	for _, w := range []float64{0, -1, DefaultORAWeight, 1} {
		cfg.ORAWeight = w
		cfg.Sampler = exectime.NewSampler(exectime.NewSource(1))
		if _, err := plan.Run(cfg); err != nil {
			t.Errorf("ORAWeight=%g: unexpected error %v", w, err)
		}
	}
	cfg.Scheme, cfg.ORAWeight = GSS, 0.25
	cfg.Sampler = exectime.NewSampler(exectime.NewSource(1))
	if _, err := plan.Run(cfg); err != nil {
		t.Errorf("GSS with ORAWeight set: unexpected error %v", err)
	}
}

// TestORAAlphaGauge checks the estimator's observability: an ORA run with
// metrics attached reports core.slack.ora_alpha, the final α estimate — a
// value in (0, 1] that a frozen run leaves at the plan's static task-level
// seed.
func TestORAAlphaGauge(t *testing.T) {
	g := workload.ATR(workload.DefaultATRConfig())
	g.ScaleACET(0.5)
	plan, err := NewPlan(g, 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Scheme: ORA, Deadline: plan.CTWorst / 0.8,
		Sampler: exectime.NewSampler(exectime.NewSource(7)),
		Metrics: obs.NewMetrics(),
	}
	res, err := plan.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.Metrics.Gauge(MetricORAAlpha)
	if !ok {
		t.Fatalf("metrics snapshot has no %s gauge", MetricORAAlpha)
	}
	if got <= 0 || got > 1 {
		t.Errorf("final α estimate %g outside (0, 1]", got)
	}

	cfg.ORAWeight = -1 // frozen: the gauge must stay at the static seed
	cfg.Sampler = exectime.NewSampler(exectime.NewSource(7))
	cfg.Metrics = obs.NewMetrics()
	res, err = plan.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frozen, ok := res.Metrics.Gauge(MetricORAAlpha)
	if !ok {
		t.Fatalf("frozen run: metrics snapshot has no %s gauge", MetricORAAlpha)
	}
	if frozen != plan.alphaTask {
		t.Errorf("frozen run: gauge %g, want the static seed %g", frozen, plan.alphaTask)
	}
}

// lightSampler models a stale plan: actual execution times are drawn
// around factor×ACET instead of the ACET the plan's speculation assumes.
type lightSampler struct {
	inner  exectime.TimeSampler
	factor float64
}

func (b lightSampler) Sample(wcet, acet float64) float64 {
	return b.inner.Sample(wcet, math.Min(wcet, b.factor*acet))
}
func (b lightSampler) Source() *exectime.Source { return b.inner.Source() }

// TestORAReclaimsUnderLighterRuns guards against ORA silently degenerating
// into AS: when actual execution times run well below the plan's static
// average-case assumption, the estimator must lower the speculative floor
// and save energy — strictly, in aggregate, on the configuration the
// reclamation ablation uses (ATR, α assumed 0.5, actuals at 0.2×, load
// 0.9). AS and ORA replay identical scripts per seed, so the comparison is
// exactly paired.
func TestORAReclaimsUnderLighterRuns(t *testing.T) {
	g := workload.ATR(workload.DefaultATRConfig())
	g.ScaleACET(0.5)
	plan, err := NewPlan(g, 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	var res RunResult
	var sumAS, sumORA float64
	cfg := RunConfig{Deadline: plan.CTWorst / 0.9}
	for seed := uint64(0); seed < 150; seed++ {
		for _, s := range []Scheme{AS, ORA} {
			cfg.Scheme = s
			cfg.Sampler = lightSampler{exectime.NewSampler(exectime.NewSource(seed)), 0.2}
			if err := plan.RunInto(cfg, arena, &res); err != nil {
				t.Fatalf("%s seed=%d: %v", s, seed, err)
			}
			if s == AS {
				sumAS += res.Energy()
			} else {
				sumORA += res.Energy()
			}
		}
	}
	if sumORA >= sumAS {
		t.Errorf("lighter-than-assumed runs: ORA total energy %g ≥ AS's %g — no slack was reclaimed",
			sumORA, sumAS)
	}
}
