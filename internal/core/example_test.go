package core_test

import (
	"fmt"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/power"
)

// Example runs the full pipeline on a serial three-task application: the
// off-line phase (canonical schedule, latest start times), then one
// worst-case execution under greedy slack sharing. With a deadline of
// twice the worst case, the greedy scheme gives all the slack to the
// first task and finishes exactly on the deadline — the behavior the
// paper's speculative schemes are designed to improve on.
func Example() {
	g := andor.NewGraph("chain")
	t1 := g.AddTask("T1", 4e-3, 2e-3)
	t2 := g.AddTask("T2", 4e-3, 2e-3)
	t3 := g.AddTask("T3", 4e-3, 2e-3)
	g.Chain(t1, t2, t3)

	plat := power.NewPlatform("demo", []power.Level{
		power.MHz(250, 1.0), power.MHz(500, 1.3), power.MHz(1000, 1.8),
	})
	plan, err := core.NewPlan(g, 1, plat, power.NoOverheads())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("canonical worst case: %.0fms\n", plan.CTWorst*1e3)

	res, err := plan.Run(core.RunConfig{
		Scheme:       core.GSS,
		Deadline:     24e-3,
		WorstCase:    true,
		CollectTrace: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("finish: %.0fms (deadline met: %v)\n", res.Finish*1e3, res.MetDeadline)
	for _, e := range res.Trace {
		fmt.Printf("%s at %.0fMHz\n", e.Name, plat.Levels()[e.Level].Freq/1e6)
	}
	// Output:
	// canonical worst case: 12ms
	// finish: 24ms (deadline met: true)
	// T1 at 250MHz
	// T2 at 1000MHz
	// T3 at 1000MHz
}

// ExamplePlan_Run_schemes compares the six schemes plus the clairvoyant
// bound on one worst-case execution.
func ExamplePlan_Run_schemes() {
	g := andor.NewGraph("chain")
	t1 := g.AddTask("T1", 4e-3, 2e-3)
	t2 := g.AddTask("T2", 4e-3, 2e-3)
	g.Chain(t1, t2)
	plat := power.NewPlatform("demo", []power.Level{
		power.MHz(250, 1.0), power.MHz(500, 1.3), power.MHz(1000, 1.8),
	})
	plan, _ := core.NewPlan(g, 1, plat, power.NoOverheads())
	for _, s := range []core.Scheme{core.NPM, core.SPM, core.GSS, core.CLV} {
		res, _ := plan.Run(core.RunConfig{Scheme: s, Deadline: 16e-3, WorstCase: true})
		fmt.Printf("%-3s finish %4.0fms changes %d\n", s, res.Finish*1e3, res.SpeedChanges)
	}
	// Output:
	// NPM finish    8ms changes 0
	// SPM finish   16ms changes 0
	// GSS finish   16ms changes 1
	// CLV finish   16ms changes 0
}
