package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"andorsched/internal/andor"
	"andorsched/internal/core/schedcache"
	"andorsched/internal/power"
	"andorsched/internal/sim"
)

// Plan is the result of the off-line phase for one application on one
// system configuration (processor count, platform, overheads). It is
// deadline-independent: the shifting step only moves schedules rigidly, so
// latest finish times are stored relative to the deadline and resolved when
// Run is called.
//
// A Plan is immutable once NewPlan returns: no method mutates it, its
// graph, its sections or its platform. It may therefore be shared freely —
// cached, handed to any number of goroutines, published through a service —
// and Run, RunInto, RunStream and the read-only accessors may be called
// concurrently on the same Plan at any scale, provided each goroutine
// brings its own Arena and Sampler (both are single-owner scratch state).
// Callers must likewise not mutate the Graph they passed to NewPlan
// afterwards. TestPlanSharedAcrossGoroutines exercises this contract under
// the race detector.
type Plan struct {
	// Graph is the application.
	Graph *andor.Graph
	// Sections is its program-section decomposition.
	Sections *andor.Sections
	// Procs is the number of processors m.
	Procs int
	// Platform is the processors' DVS model on identical-processor systems;
	// nil when the plan was compiled for a heterogeneous platform.
	Platform *power.Platform
	// Hetero is the heterogeneous machine model when the plan was compiled
	// by NewHeteroPlan; nil for identical-processor plans. Exactly one of
	// Platform and Hetero is non-nil.
	Hetero *power.Hetero
	// Placement is the placement policy the heterogeneous canonical
	// schedules were built with (nil on identical-processor plans, never nil
	// on heterogeneous ones). It is a plan parameter, not a run parameter:
	// the policy decides which class each task's canonical schedule runs it
	// on, and the online phase pins every task to that class — that pinning
	// is what carries Theorem 1's safety argument to unequal processors, so
	// two placements genuinely compare two plans (see NewHeteroPlan).
	Placement sim.PlacementPolicy
	// Overheads are the power-management costs assumed by the dynamic
	// schemes. The off-line phase pads every task's worst case by
	// Overheads.PadTime so run-time speed management can never cause a
	// deadline miss.
	Overheads power.Overheads

	// CTWorst is the canonical completion time of the longest execution
	// path (the paper's T_worst stored in the first PMP): the minimum
	// feasible deadline.
	CTWorst float64
	// CTAvg is the probability-weighted average-case completion time over
	// all execution paths (the paper's T_avg), used by the speculative
	// schemes.
	CTAvg float64

	secs []*secPlan // indexed by section ID
	fmax float64
	// alphaTask is the work-weighted mean ACET/WCET ratio over all compute
	// tasks (Σ ACET / Σ WCET), each section counted once: the task-level
	// static workload assumption ORA's online estimator is seeded from and
	// judged against. Distinct from CTAvg/CTWorst, which is a
	// schedule-length ratio skewed by barriers and overhead padding.
	alphaTask float64
}

// secPlan is the off-line data of one program section.
type secPlan struct {
	sec *andor.Section
	// lenW and lenA are the canonical schedule lengths using padded worst-
	// and average-case execution times.
	lenW, lenA float64
	// remWorst and remAvg are the completion times of the work remaining
	// after this section's exit barrier: the max (resp. probability-
	// weighted mean) over the exit Or node's branches of that branch's
	// length plus its own remainder. Zero for terminal sections. These are
	// the per-path PMP values of §2.2.
	remWorst, remAvg float64
	// tasks are the section's schedulable units in canonical dispatch
	// order; templates[i] lacks only the run-specific WorkA and LFT.
	tasks []taskPlan
	// computeIdx indexes the Compute entries of tasks, in task order, and
	// wcets/acets hold their execution-time parameters contiguously — the
	// layout batched sampling (exectime.BatchSampler) consumes when the
	// on-line phase draws a whole section's actual times in one call.
	computeIdx   []int
	wcets, acets []float64
}

// taskPlan pairs a graph node with its engine-task template.
type taskPlan struct {
	node *andor.Node
	// tmpl has Node, Name, Dummy, WorkW (padded worst-case cycles), Order,
	// Preds and Succs filled in.
	tmpl sim.Task
	// relLFT is the task's latest finish time minus the deadline (always
	// ≤ 0): LFT = D + relLFT. It equals the task's finish time in the
	// section's canonical schedule minus the worst-case time from the
	// section's start to the application's end.
	relLFT float64
}

// DefaultScheduleCacheCapacity bounds the process-wide section-schedule
// cache NewPlan consults by default. Entries are small (a few slices per
// section), so the default is generous enough that realistic workload mixes
// never evict.
const DefaultScheduleCacheCapacity = 4096

// scheduleCache is the process-wide section-schedule memoization used by
// NewPlan; see docs/COMPILE_CACHE.md. The pointer is swapped atomically so
// SetScheduleCacheCapacity is safe to call concurrently with compiles (a
// compile in flight keeps using the cache it loaded — results are identical
// either way, only amortization changes).
var scheduleCache atomic.Pointer[schedcache.Cache]

func init() {
	scheduleCache.Store(schedcache.New(DefaultScheduleCacheCapacity))
}

// SetScheduleCacheCapacity replaces the process-wide section-schedule cache
// with a fresh one bounded to n entries; n <= 0 disables caching entirely
// (every NewPlan recomputes every canonical schedule — the behavior before
// the cache existed, useful for A/B profiling). Plans are bit-identical
// with the cache on, off, or resized.
func SetScheduleCacheCapacity(n int) {
	if n <= 0 {
		scheduleCache.Store(nil)
		return
	}
	scheduleCache.Store(schedcache.New(n))
}

// ScheduleCacheStats snapshots the process-wide section-schedule cache
// counters. All-zero when the cache is disabled.
func ScheduleCacheStats() schedcache.Stats {
	c := scheduleCache.Load()
	if c == nil {
		return schedcache.Stats{}
	}
	return c.Stats()
}

// NewPlan runs the off-line phase: it validates the application, decomposes
// it into program sections, builds each section's canonical longest-task-
// first schedule on m processors at maximum speed, aggregates worst- and
// average-case completion times over the section graph, and derives each
// task's canonical dispatch order and relative latest finish time.
//
// Canonical section schedules are memoized in a process-wide cache keyed by
// the section's structural digest and the scheduling parameters, so
// recompiling the same (section, m, f_max, pad) problem skips the
// simulation runs; results are bit-identical to an uncached compile (see
// NewPlanWithCache and docs/COMPILE_CACHE.md).
//
// It returns an error if the graph is invalid or m is not positive.
// Deadline feasibility (CTWorst ≤ D) is checked by Run, which knows the
// deadline.
func NewPlan(g *andor.Graph, m int, platform *power.Platform, ov power.Overheads) (*Plan, error) {
	return NewPlanWithCache(g, m, platform, ov, scheduleCache.Load())
}

// NewHeteroPlan runs the off-line phase for a heterogeneous platform: the
// canonical longest-task-first schedules are built on the platform's actual
// processor mix (every class at its own maximum speed, processors chosen by
// the given placement policy; nil defaults to sim.FastestFirst), work is
// measured in cycles at the reference rate Hetero.RefFmax, and every task
// additionally records the class its canonical schedule ran it on. The
// online phase pins each task to that class: within a class the processors
// are identical, so the paper's Theorem-1 argument applies class by class
// and deadline safety survives unequal processors — whereas letting the
// online run migrate a task to any other class, even a faster one, admits
// Graham-style timing anomalies (docs/MODEL.md). Placement is therefore a
// plan parameter: sim.EnergyGreedy steers canonical work onto cheaper
// classes (usually lengthening CTWorst, the minimum feasible deadline, in
// exchange for energy), and sim.ClassAffinity honors `@class` tags.
//
// Task nodes tagged with a class name (andor's `@class`) must name one of
// the platform's classes; the tag becomes the task's placement affinity.
// On a 1-class platform with Speed 1 the compiled plan's runs are
// bit-identical to NewPlan on the class's platform under every placement
// policy (differential-tested).
//
// Heterogeneous canonical schedules are memoized in the same process-wide
// section cache as identical-processor ones, under a key that additionally
// carries the platform's content hash (power.Hetero.Key), the placement
// policy name and the section's class-affinity tags — the parts a
// heterogeneous schedule depends on that the structural digest omits — so
// placement-sensitive entries can never poison identical-platform ones.
// Cached compiles are bit-identical to uncached ones (differential-tested).
func NewHeteroPlan(g *andor.Graph, hp *power.Hetero, ov power.Overheads, place sim.PlacementPolicy) (*Plan, error) {
	return NewHeteroPlanWithCache(g, hp, ov, place, scheduleCache.Load())
}

// NewHeteroPlanWithCache is NewHeteroPlan against an explicit
// section-schedule cache instead of the process-wide one (the serve layer's
// shared-nothing workers each bring their own). A nil cache disables
// memoization. The compiled Plan does not retain the cache.
func NewHeteroPlanWithCache(g *andor.Graph, hp *power.Hetero, ov power.Overheads,
	place sim.PlacementPolicy, cache *schedcache.Cache) (*Plan, error) {
	if hp == nil {
		return nil, fmt.Errorf("core: nil heterogeneous platform")
	}
	if place == nil {
		place = sim.FastestFirst
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	secs, err := andor.Decompose(g)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Graph:     g,
		Sections:  secs,
		Procs:     hp.NumProcs(),
		Hetero:    hp,
		Placement: place,
		Overheads: ov,
		fmax:      hp.RefFmax(),
		secs:      make([]*secPlan, len(secs.All)),
	}
	pad := ov.PadTimeHetero(hp)
	for _, sec := range secs.All {
		sp, err := p.planSection(sec, pad, cache)
		if err != nil {
			return nil, err
		}
		p.secs[sec.ID] = sp
	}
	p.aggregate()
	for _, sp := range p.secs {
		base := sp.remWorst + sp.lenW
		for i := range sp.tasks {
			sp.tasks[i].relLFT -= base
		}
	}
	p.CTWorst = p.secs[secs.First.ID].lenW + p.secs[secs.First.ID].remWorst
	p.CTAvg = p.secs[secs.First.ID].lenA + p.secs[secs.First.ID].remAvg
	var sumW, sumA float64
	for _, sp := range p.secs {
		for j := range sp.wcets {
			sumW += sp.wcets[j]
			sumA += sp.acets[j]
		}
	}
	if sumW > 0 {
		p.alphaTask = sumA / sumW
	}
	return p, nil
}

// NewPlanWithCache is NewPlan against an explicit section-schedule cache
// instead of the process-wide one. A nil cache disables memoization. The
// compiled Plan does not retain the cache; it only reads (and populates)
// it during compilation.
func NewPlanWithCache(g *andor.Graph, m int, platform *power.Platform, ov power.Overheads,
	cache *schedcache.Cache) (*Plan, error) {
	if m <= 0 {
		return nil, fmt.Errorf("core: processor count %d must be positive", m)
	}
	if platform == nil {
		return nil, fmt.Errorf("core: nil platform")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	secs, err := andor.Decompose(g)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Graph:     g,
		Sections:  secs,
		Procs:     m,
		Platform:  platform,
		Overheads: ov,
		fmax:      platform.Max().Freq,
		secs:      make([]*secPlan, len(secs.All)),
	}
	pad := ov.PadTime(platform)
	for _, sec := range secs.All {
		sp, err := p.planSection(sec, pad, cache)
		if err != nil {
			return nil, err
		}
		p.secs[sec.ID] = sp
	}
	p.aggregate()
	for _, sp := range p.secs {
		base := sp.remWorst + sp.lenW // worst time from section start to app end
		for i := range sp.tasks {
			sp.tasks[i].relLFT -= base
		}
	}
	p.CTWorst = p.secs[secs.First.ID].lenW + p.secs[secs.First.ID].remWorst
	p.CTAvg = p.secs[secs.First.ID].lenA + p.secs[secs.First.ID].remAvg
	var sumW, sumA float64
	for _, sp := range p.secs {
		for j := range sp.wcets {
			sumW += sp.wcets[j]
			sumA += sp.acets[j]
		}
	}
	if sumW > 0 {
		p.alphaTask = sumA / sumW
	}
	return p, nil
}

// planSection builds one section's canonical schedules and task templates.
// pad is the per-task worst-case allowance for power-management overheads.
// When cache is non-nil the canonical engine runs are memoized under the
// section's structural digest: a hit reuses the cached dispatch orders,
// finish times and lengths (bit-identical to recomputing them) and skips
// both simulations.
func (p *Plan) planSection(sec *andor.Section, pad float64, cache *schedcache.Cache) (*secPlan, error) {
	sp := &secPlan{sec: sec}
	if len(sec.Nodes) == 0 {
		return sp, nil // zero-length section (Or chained to Or)
	}
	local := make(map[*andor.Node]int, len(sec.Nodes))
	for i, n := range sec.Nodes {
		local[n] = i
	}
	sp.tasks = make([]taskPlan, len(sec.Nodes))
	for i, n := range sec.Nodes {
		t := sim.Task{Node: n.ID, Name: n.Name, Dummy: n.Kind == andor.And}
		if n.Kind == andor.Compute {
			t.WorkW = (n.WCET + pad) * p.fmax
			if p.Hetero != nil && n.Class != "" {
				ci := p.Hetero.ClassIndex(n.Class)
				if ci < 0 {
					return nil, fmt.Errorf("core: task %q: platform %q has no processor class %q",
						n.Name, p.Hetero.Name, n.Class)
				}
				t.Affinity = ci + 1
			}
		}
		for _, pr := range n.Preds() {
			if j, ok := local[pr]; ok {
				t.Preds = append(t.Preds, j)
			}
			// Predecessors outside the section are Or nodes (entries);
			// the barrier discipline satisfies them implicitly.
		}
		for _, su := range n.Succs() {
			if j, ok := local[su]; ok {
				t.Succs = append(t.Succs, j)
			}
		}
		sp.tasks[i] = taskPlan{node: n, tmpl: t}
		if n.Kind == andor.Compute {
			sp.computeIdx = append(sp.computeIdx, i)
			sp.wcets = append(sp.wcets, n.WCET)
			sp.acets = append(sp.acets, n.ACET)
		}
	}

	var key schedcache.Key
	if cache != nil {
		key = schedcache.Key{
			Section:  sec.Digest(),
			Procs:    p.Procs,
			FMaxBits: math.Float64bits(p.fmax),
			PadBits:  math.Float64bits(pad),
		}
		if p.Hetero != nil {
			// The structural digest covers neither the processor mix, the
			// placement, nor the `@class` tags (homogeneous schedules ignore
			// all three); fold them in so heterogeneous entries only ever
			// match the exact same scheduling problem.
			key.Hetero = p.Hetero.Key() + "/" + p.Placement.Name()
			key.ClassBits = classAffinityBits(sp.tasks)
		}
		// The length and class-shape guards downgrade a (cryptographically
		// improbable) digest collision to a recompute rather than a corrupt
		// plan.
		if cs, ok := cache.Get(key); ok && len(cs.Order) == len(sp.tasks) &&
			(cs.Classes != nil) == (p.Hetero != nil) {
			sp.lenW, sp.lenA = cs.LenW, cs.LenA
			for i := range sp.tasks {
				sp.tasks[i].tmpl.Order = cs.Order[i]
				sp.tasks[i].relLFT = cs.FinishW[i] // made deadline-relative by NewPlan
				sp.tasks[i].tmpl.SpecRemain = cs.SpecRemain[i]
				if cs.Classes != nil {
					sp.tasks[i].tmpl.CanonClass = cs.Classes[i]
				}
			}
			return sp, nil
		}
	}

	// Worst-case canonical schedule: padded WCETs at f_max, longest task
	// first. It defines the section length, the dispatch orders and the
	// per-task canonical finish times used for shifting. On heterogeneous
	// platforms every class runs at its own maximum speed with processors
	// chosen by the plan's placement policy, and each task's canonical class
	// is recorded — the online feasibility guard pins the task there.
	canonCfg := sim.Config{Mode: sim.ByPriority, Procs: p.Procs}
	if p.Hetero != nil {
		canonCfg.Hetero = p.Hetero
		canonCfg.Placement = p.Placement
	} else {
		canonCfg.Platform = p.Platform
	}
	worst := p.canonicalTasks(sp, func(tp *taskPlan) float64 { return tp.tmpl.WorkW })
	resW, err := sim.Run(canonCfg, worst)
	if err != nil {
		return nil, fmt.Errorf("core: canonical schedule of section %d: %w", sec.ID, err)
	}
	sp.lenW = resW.Finish
	for k, rec := range resW.Records {
		sp.tasks[rec.Task].tmpl.Order = k
		sp.tasks[rec.Task].relLFT = rec.Finish // made deadline-relative by NewPlan
		if p.Hetero != nil {
			sp.tasks[rec.Task].tmpl.CanonClass = p.Hetero.ClassOf(rec.Proc)
		}
	}

	// Average-case canonical schedule: same heuristic with padded ACETs.
	// Only its length is kept (the paper's T*_k PMP values for
	// speculation).
	avg := p.canonicalTasks(sp, func(tp *taskPlan) float64 {
		if tp.node.Kind != andor.Compute {
			return 0
		}
		return (tp.node.ACET + pad) * p.fmax
	})
	resA, err := sim.Run(canonCfg, avg)
	if err != nil {
		return nil, fmt.Errorf("core: average canonical schedule of section %d: %w", sec.ID, err)
	}
	sp.lenA = resA.Finish
	// Per-task remaining average-case time within the section (the PMP
	// statistic the per-PMP speculation scheme reads): the average
	// canonical length minus the task's average canonical dispatch time.
	for _, rec := range resA.Records {
		sp.tasks[rec.Task].tmpl.SpecRemain = sp.lenA - rec.Dispatch
	}

	if cache != nil {
		cs := &schedcache.Schedule{
			LenW:       sp.lenW,
			LenA:       sp.lenA,
			Order:      make([]int, len(sp.tasks)),
			FinishW:    make([]float64, len(sp.tasks)),
			SpecRemain: make([]float64, len(sp.tasks)),
		}
		if p.Hetero != nil {
			cs.Classes = make([]int, len(sp.tasks))
		}
		for i := range sp.tasks {
			cs.Order[i] = sp.tasks[i].tmpl.Order
			cs.FinishW[i] = sp.tasks[i].relLFT
			cs.SpecRemain[i] = sp.tasks[i].tmpl.SpecRemain
			if cs.Classes != nil {
				cs.Classes[i] = sp.tasks[i].tmpl.CanonClass
			}
		}
		cache.Put(key, cs)
	}
	return sp, nil
}

// classAffinityBits hashes a section's per-task class affinities (local
// index, resolved class index) into the schedule-cache key. FNV-1a over the
// tagged tasks only: untagged sections of equal shape still share entries.
func classAffinityBits(tasks []taskPlan) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := range tasks {
		if a := tasks[i].tmpl.Affinity; a != 0 {
			h = (h ^ uint64(i)) * 0x100000001b3
			h = (h ^ uint64(a)) * 0x100000001b3
		}
	}
	return h
}

// canonicalTasks copies the section's task templates with WorkA set by
// dur (cycles), for an off-line engine run.
func (p *Plan) canonicalTasks(sp *secPlan, dur func(*taskPlan) float64) []*sim.Task {
	out := make([]*sim.Task, len(sp.tasks))
	for i := range sp.tasks {
		t := sp.tasks[i].tmpl // copy
		t.WorkA = dur(&sp.tasks[i])
		out[i] = &t
	}
	return out
}

// aggregate fills remWorst/remAvg by memoized recursion over the section
// DAG (the paper's per-PMP worst/average remaining times).
func (p *Plan) aggregate() {
	done := make([]bool, len(p.secs))
	var visit func(sp *secPlan)
	visit = func(sp *secPlan) {
		if done[sp.sec.ID] {
			return
		}
		done[sp.sec.ID] = true
		exit := sp.sec.Exit
		if exit == nil || len(exit.Succs()) == 0 {
			return // terminal section: nothing remains
		}
		branches := p.Sections.Branch[exit.ID]
		var worst, avg float64
		for i, next := range branches {
			nsp := p.secs[next.ID]
			visit(nsp)
			w := nsp.lenW + nsp.remWorst
			if w > worst {
				worst = w
			}
			avg += exit.BranchProb(i) * (nsp.lenA + nsp.remAvg)
		}
		sp.remWorst, sp.remAvg = worst, avg
	}
	for _, sp := range p.secs {
		visit(sp)
	}
}

// Feasible reports whether the application is guaranteed to meet the given
// deadline: the canonical schedule of the longest path finishes by D
// (Theorem 1's precondition).
func (p *Plan) Feasible(deadline float64) bool {
	return p.CTWorst <= deadline*(1+1e-12)
}

// MinDeadline returns the smallest feasible deadline, CTWorst.
func (p *Plan) MinDeadline() float64 { return p.CTWorst }

// SectionAvgRemaining returns, for the section with the given ID, the
// average-case time to complete the application from that section's start:
// its own average canonical length plus the probability-weighted remainder
// after its exit barrier. The adaptive speculation scheme divides this by
// the time to the deadline.
func (p *Plan) SectionAvgRemaining(sectionID int) float64 {
	sp := p.secs[sectionID]
	return sp.lenA + sp.remAvg
}

// SectionWorstRemaining returns the worst-case analogue of
// SectionAvgRemaining.
func (p *Plan) SectionWorstRemaining(sectionID int) float64 {
	sp := p.secs[sectionID]
	return sp.lenW + sp.remWorst
}

// NumSections returns the number of program sections.
func (p *Plan) NumSections() int { return len(p.secs) }

// numLevels is the size of the speed-residency profile: the platform's
// level count, or the largest class table on a heterogeneous platform
// (smaller classes simply never touch the trailing slots).
func (p *Plan) numLevels() int {
	if p.Hetero != nil {
		return p.Hetero.MaxLevels()
	}
	return p.Platform.NumLevels()
}

// SpeculativeSpeed returns the paper's static speculative speed
// f_max·CT_avg/D for the given deadline (before level quantization).
func (p *Plan) SpeculativeSpeed(deadline float64) float64 {
	if deadline <= 0 {
		return math.Inf(1)
	}
	return p.fmax * p.CTAvg / deadline
}
