package core

import (
	"testing"

	"andorsched/internal/power"
	"andorsched/internal/workload"
)

func TestMinFeasibleProcs(t *testing.T) {
	g := workload.ATR(workload.DefaultATRConfig())
	plat := power.Transmeta5400()
	ov := power.NoOverheads()

	// Establish the single- and dual-processor canonical lengths.
	p1, err := NewPlan(g, 1, plat, ov)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(g, 2, plat, ov)
	if err != nil {
		t.Fatal(err)
	}
	if p2.CTWorst >= p1.CTWorst {
		t.Fatalf("2 CPUs should shorten the ATR canonical schedule: %g vs %g", p2.CTWorst, p1.CTWorst)
	}

	// A deadline between the two: needs exactly 2 processors.
	d := (p1.CTWorst + p2.CTWorst) / 2
	m, plan, err := MinFeasibleProcs(g, plat, ov, d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 || plan.Procs != 2 {
		t.Errorf("MinFeasibleProcs = %d, want 2", m)
	}

	// A generous deadline: one processor suffices.
	m, _, err = MinFeasibleProcs(g, plat, ov, p1.CTWorst*2, 8)
	if err != nil || m != 1 {
		t.Errorf("MinFeasibleProcs = %d (%v), want 1", m, err)
	}

	// An impossible deadline: error.
	if _, _, err := MinFeasibleProcs(g, plat, ov, 1e-6, 8); err == nil {
		t.Error("want infeasibility error")
	}
	if _, _, err := MinFeasibleProcs(g, plat, ov, d, 0); err == nil {
		t.Error("want maxProcs error")
	}
}
