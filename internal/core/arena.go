package core

import "andorsched/internal/sim"

// Arena owns the per-run scratch state of the on-line phase: the engine's
// sim.Arena plus this layer's resolved script, task instantiation buffers,
// processor-level carries, branch-probability scratch, the reusable policy,
// and the clairvoyant probe result. One Arena per worker goroutine, reused
// across runs, makes steady-state Plan.RunInto calls allocation-free (with
// RunConfig.Tracer, Metrics, CollectTrace and Validate unset).
//
// An Arena is not safe for concurrent use. Results are bit-identical to the
// arena-free entry points for any reuse pattern and worker count: the arena
// recycles memory, never state.
type Arena struct {
	sim sim.Arena

	sc        script      // resolved script, slices reused across runs
	tasks     []*sim.Task // runtimeTasks output
	taskBuf   []sim.Task  // backing store for the per-section task copies
	levels    []int       // per-section level carry
	clvLevels []int       // clairvoyant initial levels
	probs     []float64   // chooseBranch scratch
	busyP     []float64   // per-processor busy seconds (heterogeneous idle energy)
	ovhP      []float64   // per-processor overhead seconds (heterogeneous idle energy)
	batch     []float64   // batched-sampling scratch (one section's times)
	pol       policy      // the run's policy, re-initialized per run
	probePol  policy      // clairvoyant probe policy
	probe     RunResult   // clairvoyant probe output
}

// NewArena returns an empty Arena. Buffers grow on first use and are
// retained across runs.
func NewArena() *Arena { return &Arena{} }

// ensureInts returns buf resized to n, reusing its backing array when the
// capacity suffices. Contents are unspecified; callers overwrite.
func ensureInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// ensureFloats is ensureInts for float64 slices.
func ensureFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
