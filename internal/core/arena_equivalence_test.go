package core

import (
	"fmt"
	"sync"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// eqRunResults compares two run results field by field with exact equality.
// Slices are compared element-wise so a nil and an empty slice are equal —
// the arena path reuses buffers and legitimately returns empty non-nil
// slices where the fresh path returns nil.
func eqRunResults(a, b *RunResult) string {
	if a.Scheme != b.Scheme || a.Deadline != b.Deadline {
		return fmt.Sprintf("config echo: (%v,%g) vs (%v,%g)", a.Scheme, a.Deadline, b.Scheme, b.Deadline)
	}
	if a.Finish != b.Finish {
		return fmt.Sprintf("Finish: %v vs %v", a.Finish, b.Finish)
	}
	if a.MetDeadline != b.MetDeadline || a.LSTViolations != b.LSTViolations {
		return fmt.Sprintf("MetDeadline/LSTViolations: (%v,%d) vs (%v,%d)",
			a.MetDeadline, a.LSTViolations, b.MetDeadline, b.LSTViolations)
	}
	if a.ActiveEnergy != b.ActiveEnergy || a.OverheadEnergy != b.OverheadEnergy ||
		a.IdleEnergy != b.IdleEnergy {
		return fmt.Sprintf("energy: (%v,%v,%v) vs (%v,%v,%v)",
			a.ActiveEnergy, a.OverheadEnergy, a.IdleEnergy,
			b.ActiveEnergy, b.OverheadEnergy, b.IdleEnergy)
	}
	if a.SpeedChanges != b.SpeedChanges {
		return fmt.Sprintf("SpeedChanges: %d vs %d", a.SpeedChanges, b.SpeedChanges)
	}
	if a.BusyTime != b.BusyTime || a.OverheadTime != b.OverheadTime {
		return fmt.Sprintf("busy/overhead: (%v,%v) vs (%v,%v)",
			a.BusyTime, a.OverheadTime, b.BusyTime, b.OverheadTime)
	}
	if len(a.LevelTime) != len(b.LevelTime) {
		return fmt.Sprintf("LevelTime length: %d vs %d", len(a.LevelTime), len(b.LevelTime))
	}
	for i := range a.LevelTime {
		if a.LevelTime[i] != b.LevelTime[i] {
			return fmt.Sprintf("LevelTime[%d]: %v vs %v", i, a.LevelTime[i], b.LevelTime[i])
		}
	}
	if len(a.FinalLevels) != len(b.FinalLevels) {
		return fmt.Sprintf("FinalLevels length: %d vs %d", len(a.FinalLevels), len(b.FinalLevels))
	}
	for i := range a.FinalLevels {
		if a.FinalLevels[i] != b.FinalLevels[i] {
			return fmt.Sprintf("FinalLevels[%d]: %d vs %d", i, a.FinalLevels[i], b.FinalLevels[i])
		}
	}
	if len(a.Path) != len(b.Path) {
		return fmt.Sprintf("Path length: %d vs %d", len(a.Path), len(b.Path))
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return fmt.Sprintf("Path[%d]: %+v vs %+v", i, a.Path[i], b.Path[i])
		}
	}
	if len(a.Trace) != len(b.Trace) {
		return fmt.Sprintf("Trace length: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			return fmt.Sprintf("Trace[%d]: %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
	return ""
}

// allSchemes is every scheme the run driver supports.
func allSchemes() []Scheme {
	return append(append([]Scheme(nil), Schemes...), ExtendedSchemes...)
}

// TestArenaEquivalenceRandomWorkloads is the arena-reuse property test: for
// random AND/OR applications, every scheme produces byte-identical results
// on a fresh, arena-free Plan.Run and on an Arena shared and reused across
// the whole sweep (50 workloads × 8 schemes = 400 reuses of one arena).
func TestArenaEquivalenceRandomWorkloads(t *testing.T) {
	plats := []*power.Platform{power.Transmeta5400(), power.IntelXScale()}
	arena := NewArena()
	var pooled RunResult
	for wl := 0; wl < 50; wl++ {
		g := workload.Random(uint64(wl)+1, andor.DefaultRandomOpts())
		m := 1 + wl%4
		plan, err := NewPlan(g, m, plats[wl%2], power.DefaultOverheads())
		if err != nil {
			t.Fatalf("workload %d: NewPlan: %v", wl, err)
		}
		load := 0.4 + 0.1*float64(wl%4)
		cfg := RunConfig{
			Deadline:     plan.CTWorst / load,
			CollectTrace: true,
		}
		for _, s := range allSchemes() {
			cfg.Scheme = s
			seed := uint64(wl)*31 + uint64(s)
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
			fresh, err := plan.Run(cfg)
			if err != nil {
				t.Fatalf("workload %d %s: fresh run: %v", wl, s, err)
			}
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
			if err := plan.RunInto(cfg, arena, &pooled); err != nil {
				t.Fatalf("workload %d %s: arena run: %v", wl, s, err)
			}
			if diff := eqRunResults(fresh, &pooled); diff != "" {
				t.Fatalf("workload %d (m=%d) %s: arena diverged from fresh run: %s",
					wl, m, s, diff)
			}
		}
	}
}

// TestArenaEquivalenceRepeatedReuse hammers one arena with 100 consecutive
// runs of the same configuration and checks each against a fresh run —
// buffer recycling must never leak state between runs.
func TestArenaEquivalenceRepeatedReuse(t *testing.T) {
	plan, err := NewPlan(workload.ATR(workload.DefaultATRConfig()), 3,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	var pooled RunResult
	for _, s := range allSchemes() {
		for rep := 0; rep < 100; rep++ {
			cfg := RunConfig{
				Scheme: s, Deadline: plan.CTWorst * 1.8, CollectTrace: true,
				Sampler: exectime.NewSampler(exectime.NewSource(uint64(rep))),
			}
			fresh, err := plan.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Sampler = exectime.NewSampler(exectime.NewSource(uint64(rep)))
			if err := plan.RunInto(cfg, arena, &pooled); err != nil {
				t.Fatal(err)
			}
			if diff := eqRunResults(fresh, &pooled); diff != "" {
				t.Fatalf("%s reuse %d: %s", s, rep, diff)
			}
		}
	}
}

// TestArenaConcurrentWorkers runs per-worker arenas in parallel (the
// experiments harness's deployment) and checks every concurrent result
// against a serial fresh-run reference. Run under -race this also proves
// arenas share no hidden state.
func TestArenaConcurrentWorkers(t *testing.T) {
	plan, err := NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.IntelXScale(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const runsPer = 25
	deadline := plan.CTWorst * 2
	// Serial reference energies, one per (worker, run) seed.
	want := make([][]float64, workers)
	for w := range want {
		want[w] = make([]float64, runsPer)
		for r := 0; r < runsPer; r++ {
			res, err := plan.Run(RunConfig{
				Scheme: AS, Deadline: deadline,
				Sampler: exectime.NewSampler(exectime.NewSource(uint64(w*runsPer + r))),
			})
			if err != nil {
				t.Fatal(err)
			}
			want[w][r] = res.Energy()
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := NewArena()
			src := exectime.NewSource(0)
			sampler := exectime.NewSampler(src)
			var res RunResult
			for r := 0; r < runsPer; r++ {
				src.Reseed(uint64(w*runsPer + r))
				if err := plan.RunInto(RunConfig{
					Scheme: AS, Deadline: deadline, Sampler: sampler,
				}, arena, &res); err != nil {
					errs[w] = err
					return
				}
				if res.Energy() != want[w][r] {
					errs[w] = fmt.Errorf("worker %d run %d: energy %v, want %v",
						w, r, res.Energy(), want[w][r])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
