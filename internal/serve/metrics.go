package serve

// Metric names registered by the server in its obs.Metrics registry and
// exported at GET /metrics (Prometheus text format; dots become
// underscores there, see obs.WritePrometheus).
const (
	// MetricRequests counts HTTP requests received (counter).
	MetricRequests = "serve.http.requests"
	// MetricErrors counts requests answered with a 4xx/5xx status
	// (counter). Queue rejections are counted separately.
	MetricErrors = "serve.http.errors"
	// MetricPanics counts handler panics recovered (counter).
	MetricPanics = "serve.http.panics"
	// MetricRejections counts requests rejected with 429 — by a full
	// admission queue or by per-tenant admission control (counter).
	MetricRejections = "serve.http.rejections"
	// MetricTenantRejections counts the subset of rejections made by
	// per-tenant admission control: rate limits, concurrency quotas and
	// run budgets, including never-satisfiable asks answered 400 (counter).
	MetricTenantRejections = "serve.tenant.rejections"
	// MetricBatchItems counts items carried by /v1/batch requests
	// (counter), admitted or not per item; compare with MetricRuns for the
	// executed work.
	MetricBatchItems = "serve.batch.items"
	// MetricLatency is the request latency histogram in seconds.
	MetricLatency = "serve.http.latency_seconds"
	// MetricQueueDepth is the admission queue's current depth (gauge).
	MetricQueueDepth = "serve.queue.depth"
	// MetricRuns counts simulated application executions performed
	// (counter): one per run of a /v1/run request, one per scheme per run
	// of a /v1/compare request.
	MetricRuns = "serve.runs"
	// MetricCacheHits counts plan-cache lookups that found an entry
	// (counter); in-flight compiles joined by later requests count as hits.
	MetricCacheHits = "serve.cache.hits"
	// MetricCacheMisses counts plan-cache lookups that triggered a compile
	// (counter).
	MetricCacheMisses = "serve.cache.misses"
	// MetricCacheEvictions counts LRU evictions (counter).
	MetricCacheEvictions = "serve.cache.evictions"
	// MetricCacheSize is the number of cached plans (gauge).
	MetricCacheSize = "serve.cache.size"

	// MetricSchedCacheHits, MetricSchedCacheMisses and
	// MetricSchedCacheEvictions mirror the process-wide section-schedule
	// cache's monotonic counters (core.ScheduleCacheStats); they are
	// refreshed on each /metrics scrape, and exported as gauges because the
	// underlying counters reset when the cache is resized.
	MetricSchedCacheHits      = "core.schedcache.hits"
	MetricSchedCacheMisses    = "core.schedcache.misses"
	MetricSchedCacheEvictions = "core.schedcache.evictions"
	// MetricSchedCacheSize is the section-schedule cache's current entry
	// count (gauge).
	MetricSchedCacheSize = "core.schedcache.size"
)

// Per-tenant counters are exported as gauges named
// "serve.tenant.<id>.admitted|rejected|inflight|runs", refreshed from the
// limiter on each /metrics scrape. The <id> segment is the tenant key
// squeezed to the metric charset by sanitizeTenant; the set of exported
// tenants is bounded by the limiter's MaxTenants LRU (gauges of evicted
// tenants stop updating but remain in the registry until restart).
func tenantMetricName(id, counter string) string {
	return "serve.tenant." + sanitizeTenant(id) + "." + counter
}

// sanitizeTenant maps a tenant key ("key:...", "ip:...") onto metric-name
// safe characters, truncated to keep pathological keys from bloating the
// exposition.
func sanitizeTenant(id string) string {
	const maxLen = 48
	b := make([]byte, 0, len(id))
	for i := 0; i < len(id) && len(b) < maxLen; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// latencyBuckets are the request-latency histogram bounds in seconds.
var latencyBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1, 2.5, 5,
}
