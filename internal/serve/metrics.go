package serve

// Metric names registered by the server in its obs.Metrics registry and
// exported at GET /metrics (Prometheus text format; dots become
// underscores there, see obs.WritePrometheus).
const (
	// MetricRequests counts HTTP requests received (counter).
	MetricRequests = "serve.http.requests"
	// MetricErrors counts requests answered with a 4xx/5xx status
	// (counter). Queue rejections are counted separately.
	MetricErrors = "serve.http.errors"
	// MetricPanics counts handler panics recovered (counter).
	MetricPanics = "serve.http.panics"
	// MetricRejections counts requests rejected with 429 — by a full
	// admission queue or by per-tenant admission control (counter).
	MetricRejections = "serve.http.rejections"
	// MetricTenantRejections counts the subset of rejections made by
	// per-tenant admission control: rate limits, concurrency quotas and
	// run budgets, including never-satisfiable asks answered 400 (counter).
	MetricTenantRejections = "serve.tenant.rejections"
	// MetricBatchItems counts items carried by /v1/batch requests
	// (counter), admitted or not per item; compare with MetricRuns for the
	// executed work.
	MetricBatchItems = "serve.batch.items"
	// MetricLatency is the request latency histogram in seconds.
	MetricLatency = "serve.http.latency_seconds"
	// MetricPhaseLatency is the per-phase latency histogram family in
	// seconds, labeled {phase="..."} with the phase constants below. Each
	// series carries a trace-ID exemplar (OpenMetrics scrapes only) linking
	// its worst recent observation to /debug/requests/{traceID}.
	MetricPhaseLatency = "serve.phase.latency_seconds"
	// MetricQueueDepth is the admission queue's current depth (gauge).
	MetricQueueDepth = "serve.queue.depth"
	// MetricQueueAge is the age of the oldest queued job in seconds
	// (gauge), refreshed by the shared stats snapshot (scrapes, /healthz,
	// /debug/requests). Zero when the queue is empty.
	MetricQueueAge = "serve.queue.age_seconds"
	// MetricRuns counts simulated application executions performed
	// (counter): one per run of a /v1/run request, one per scheme per run
	// of a /v1/compare request.
	MetricRuns = "serve.runs"
	// MetricCacheHits counts plan-cache lookups that found an entry
	// (counter); in-flight compiles joined by later requests count as hits.
	MetricCacheHits = "serve.cache.hits"
	// MetricCacheMisses counts plan-cache lookups that triggered a compile
	// (counter).
	MetricCacheMisses = "serve.cache.misses"
	// MetricCacheEvictions counts LRU evictions (counter).
	MetricCacheEvictions = "serve.cache.evictions"
	// MetricCacheSize is the number of cached plans (gauge).
	MetricCacheSize = "serve.cache.size"

	// MetricSchedCacheHits, MetricSchedCacheMisses and
	// MetricSchedCacheEvictions mirror the process-wide section-schedule
	// cache's monotonic counters (core.ScheduleCacheStats); they are
	// refreshed on each /metrics scrape, and exported as gauges because the
	// underlying counters reset when the cache is resized.
	MetricSchedCacheHits      = "core.schedcache.hits"
	MetricSchedCacheMisses    = "core.schedcache.misses"
	MetricSchedCacheEvictions = "core.schedcache.evictions"
	// MetricSchedCacheSize is the section-schedule cache's current entry
	// count (gauge).
	MetricSchedCacheSize = "core.schedcache.size"
)

// Phase names used for request trace spans and the MetricPhaseLatency
// label values. Spans with these names are recorded by the middleware,
// the handlers, the plan cache path and the worker pool; see
// docs/OBSERVABILITY.md for the span model.
const (
	// PhaseDecode is request-body JSON decoding.
	PhaseDecode = "decode"
	// PhaseAdmit is the per-tenant admission decision.
	PhaseAdmit = "admit"
	// PhaseCache is the plan-cache lookup; its detail is "hit" or "miss",
	// and on a miss the span contains the compile (PhaseCompile) it ran.
	PhaseCache = "cache"
	// PhaseCompile is an off-line plan compilation (core.NewPlan) executed
	// by this request (duplicate-suppressed joiners record a cache hit
	// instead).
	PhaseCompile = "compile"
	// PhaseQueue is the wait from pool submission to worker pickup. A job
	// cancelled while queued still records it (with no PhaseExec).
	PhaseQueue = "queue"
	// PhaseExec is a worker's execution of one pool job (for streaming
	// responses it includes row encoding, which interleaves with the
	// simulation).
	PhaseExec = "exec"
	// PhaseExecMC is one Monte-Carlo loop within a job; its n is the number
	// of runs completed. Batch requests record one per chunk, concurrently.
	PhaseExecMC = "exec.mc"
	// PhaseEncode is response encoding outside the workers (buffered JSON
	// responses, batch NDJSON emission).
	PhaseEncode = "encode"
)

// phaseNames lists every phase the server records, in pipeline order; New
// pre-resolves their histogram series so the completion path takes no
// registry lock.
var phaseNames = []string{
	PhaseDecode, PhaseAdmit, PhaseCache, PhaseCompile,
	PhaseQueue, PhaseExec, PhaseExecMC, PhaseEncode,
}

// Per-tenant counters are exported as gauges named
// "serve.tenant.<id>.admitted|rejected|inflight|runs", refreshed from the
// limiter on each /metrics scrape. The <id> segment is the tenant key
// squeezed to the metric charset by sanitizeTenant; the set of exported
// tenants is bounded by the limiter's MaxTenants LRU (gauges of evicted
// tenants stop updating but remain in the registry until restart).
func tenantMetricName(id, counter string) string {
	return "serve.tenant." + sanitizeTenant(id) + "." + counter
}

// sanitizeTenant maps a tenant key ("key:...", "ip:...") onto metric-name
// safe characters, truncated to keep pathological keys from bloating the
// exposition.
func sanitizeTenant(id string) string {
	const maxLen = 48
	b := make([]byte, 0, len(id))
	for i := 0; i < len(id) && len(b) < maxLen; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// latencyBuckets are the request-latency histogram bounds in seconds.
var latencyBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1, 2.5, 5,
}
