package serve

// Metric names registered by the server in its obs.Metrics registry and
// exported at GET /metrics (Prometheus text format; dots become
// underscores there, see obs.WritePrometheus).
const (
	// MetricRequests counts HTTP requests received (counter).
	MetricRequests = "serve.http.requests"
	// MetricErrors counts requests answered with a 4xx/5xx status
	// (counter). Queue rejections are counted separately.
	MetricErrors = "serve.http.errors"
	// MetricPanics counts handler panics recovered (counter).
	MetricPanics = "serve.http.panics"
	// MetricRejections counts requests rejected with 429 because the
	// admission queue was full (counter).
	MetricRejections = "serve.http.rejections"
	// MetricLatency is the request latency histogram in seconds.
	MetricLatency = "serve.http.latency_seconds"
	// MetricQueueDepth is the admission queue's current depth (gauge).
	MetricQueueDepth = "serve.queue.depth"
	// MetricRuns counts simulated application executions performed
	// (counter): one per run of a /v1/run request, one per scheme per run
	// of a /v1/compare request.
	MetricRuns = "serve.runs"
	// MetricCacheHits counts plan-cache lookups that found an entry
	// (counter); in-flight compiles joined by later requests count as hits.
	MetricCacheHits = "serve.cache.hits"
	// MetricCacheMisses counts plan-cache lookups that triggered a compile
	// (counter).
	MetricCacheMisses = "serve.cache.misses"
	// MetricCacheEvictions counts LRU evictions (counter).
	MetricCacheEvictions = "serve.cache.evictions"
	// MetricCacheSize is the number of cached plans (gauge).
	MetricCacheSize = "serve.cache.size"

	// MetricSchedCacheHits, MetricSchedCacheMisses and
	// MetricSchedCacheEvictions mirror the process-wide section-schedule
	// cache's monotonic counters (core.ScheduleCacheStats); they are
	// refreshed on each /metrics scrape, and exported as gauges because the
	// underlying counters reset when the cache is resized.
	MetricSchedCacheHits      = "core.schedcache.hits"
	MetricSchedCacheMisses    = "core.schedcache.misses"
	MetricSchedCacheEvictions = "core.schedcache.evictions"
	// MetricSchedCacheSize is the section-schedule cache's current entry
	// count (gauge).
	MetricSchedCacheSize = "core.schedcache.size"
)

// latencyBuckets are the request-latency histogram bounds in seconds.
var latencyBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1, 2.5, 5,
}
