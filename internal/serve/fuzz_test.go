package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fuzzStatuses are the statuses the decode path may legitimately answer.
var fuzzStatuses = map[int]bool{
	http.StatusOK:                    true,
	http.StatusBadRequest:            true,
	http.StatusRequestEntityTooLarge: true,
	http.StatusTooManyRequests:       true,
	http.StatusServiceUnavailable:    true,
}

// FuzzRunEndpoint drives arbitrary bytes through the real HTTP decode path
// of POST /v1/run — middleware, size limit, JSON decode, graph parsing and
// validation — and checks the server never panics and never answers
// outside its documented status set. The corpus seeds every .andor
// workload shipped in the repo (wrapped as request bodies) plus malformed,
// truncated and oversized inputs.
func FuzzRunEndpoint(f *testing.F) {
	// One server for the whole fuzz run; runs are capped tiny so even a
	// "valid" fuzz input finishes fast.
	s := New(Config{
		Workers:        2,
		QueueSize:      8,
		MaxBodyBytes:   1 << 18,
		MaxRuns:        4,
		RequestTimeout: 5 * time.Second,
	})
	defer s.Close()

	files, err := filepath.Glob(filepath.Join("..", "..", "workloads", "*.andor"))
	if err != nil {
		f.Fatal(err)
	}
	if len(files) == 0 {
		f.Fatal("no .andor corpus files found")
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		body, err := json.Marshal(map[string]any{"text": string(src), "runs": 1})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
		// Truncated versions of a valid body exercise every partial-JSON
		// prefix class.
		f.Add(body[:len(body)/2])
		f.Add(body[:len(body)-1])
	}
	f.Add([]byte(`{"workload":"atr","runs":2}`))
	f.Add([]byte(`{"graph":{"name":"g","nodes":[{"name":"a","kind":"compute","wcet":1,"acet":0.5}],"edges":[]}}`))
	f.Add([]byte(`{"text":"task A 1ms 1ms\ntask B 2ms"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workload":"atr"} {"workload":"atr"}`))
	f.Add([]byte(`{"text":"` + strings.Repeat("task X 1ms 1ms\\n", 64) + `"}`))
	f.Add([]byte(`{"deadline":-1e308,"load":1e-300,"workload":"atr"}`))
	f.Add([]byte(`[[[[[[[[[[`))

	panicsBefore, _ := s.Metrics().Snapshot().Counter(MetricPanics)
	if panicsBefore != 0 {
		f.Fatal("panic counter dirty before fuzzing")
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(string(data)))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		// The middleware converts panics into 500s and counts them; a
		// recovered panic is still a bug the fuzzer must surface.
		if n, _ := s.Metrics().Snapshot().Counter(MetricPanics); n != 0 {
			t.Fatalf("handler panicked on %d-byte input %q", len(data), truncate(data))
		}
		if !fuzzStatuses[w.Code] {
			t.Fatalf("status %d on input %q; body %s", w.Code, truncate(data), w.Body.String())
		}
		// Error responses must carry a JSON error message; 200s must decode
		// as a run row or stream.
		if w.Code != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("status %d with non-JSON error body %q", w.Code, w.Body.String())
			}
			return
		}
		first := w.Body.Bytes()
		if idx := strings.IndexByte(w.Body.String(), '\n'); idx >= 0 {
			first = first[:idx]
		}
		var row RunRow
		if err := json.Unmarshal(first, &row); err != nil {
			t.Fatalf("200 with undecodable first row %q: %v", truncate(first), err)
		}
	})
}

func truncate(b []byte) string {
	if len(b) > 200 {
		return fmt.Sprintf("%s... (%d bytes)", b[:200], len(b))
	}
	return string(b)
}
