package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/obs"
)

// ErrQueueFull reports that the admission queue was full; the handler maps
// it to 429 Too Many Requests with a Retry-After hint.
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrPoolClosed reports a submission after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// Worker is one pool goroutine's reusable simulation state: an arena, a
// reseedable random source and a sampler wired to it. A job owns the
// worker for its whole duration, so the steady-state request path runs on
// the zero-allocation RunInto machinery — every run reuses the same
// buffers, and per-run seeds come from reseeding Src.
type Worker struct {
	Arena   *core.Arena
	Src     *exectime.Source
	Sampler *exectime.Sampler
	// Res and Base are result holders jobs may reuse (e.g. scheme runs and
	// their NPM baseline).
	Res, Base core.RunResult
}

type job struct {
	ctx  context.Context
	fn   func(ctx context.Context, w *Worker)
	done chan struct{}
	ran  bool // set by the worker before closing done
}

// Pool is a fixed-size worker pool with a bounded admission queue. Do
// submits a job and blocks until it completes; when the queue is full it
// fails fast with ErrQueueFull (backpressure) instead of queueing
// unboundedly. Each worker holds one Worker state for its lifetime.
type Pool struct {
	jobs     chan *job
	wg       sync.WaitGroup
	closed   atomic.Bool
	inFlight atomic.Int64

	depth *obs.Gauge
}

// NewPool starts workers goroutines with a queue of the given capacity.
// workers and queue are floored at 1.
func NewPool(workers, queue int, m *obs.Metrics) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &Pool{
		jobs:  make(chan *job, queue),
		depth: m.Gauge(MetricQueueDepth),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker(uint64(i))
	}
	return p
}

func (p *Pool) worker(id uint64) {
	defer p.wg.Done()
	src := exectime.NewSource(id)
	w := &Worker{
		Arena:   core.NewArena(),
		Src:     src,
		Sampler: exectime.NewSampler(src),
	}
	for j := range p.jobs {
		p.depth.Set(float64(len(p.jobs)))
		// A job whose request already gave up (context expired while
		// queued) is skipped: its handler is gone, running it would only
		// burn the worker.
		if j.ctx.Err() == nil {
			j.fn(j.ctx, w)
			j.ran = true
		}
		close(j.done)
		p.inFlight.Add(-1)
	}
}

// Do submits fn and waits for it to finish. fn runs on a pool worker with
// exclusive use of that worker's state; it must respect ctx between units
// of work. Do returns ErrQueueFull immediately when the queue is full,
// ErrPoolClosed after Close, and ctx's error when the job was skipped
// because the context expired before a worker picked it up. A nil return
// means fn ran to completion.
func (p *Pool) Do(ctx context.Context, fn func(ctx context.Context, w *Worker)) error {
	if p.closed.Load() {
		return ErrPoolClosed
	}
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{})}
	select {
	case p.jobs <- j:
		p.inFlight.Add(1)
		p.depth.Set(float64(len(p.jobs)))
	default:
		return ErrQueueFull
	}
	<-j.done
	if !j.ran {
		if err := ctx.Err(); err != nil {
			return err
		}
		return ErrPoolClosed
	}
	return nil
}

// InFlight returns the number of jobs queued or running.
func (p *Pool) InFlight() int { return int(p.inFlight.Load()) }

// Close stops accepting jobs, lets queued and running jobs finish, and
// waits for the workers to exit. Callers must ensure no Do call starts
// after Close begins (the server guarantees this by draining HTTP
// handlers first).
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
	}
	p.wg.Wait()
}
