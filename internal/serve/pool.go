package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/obs"
)

// ErrQueueFull reports that the admission queue was full; the handler maps
// it to 429 Too Many Requests with a Retry-After hint.
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrPoolClosed reports a submission after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// Worker is one pool goroutine's reusable simulation state: an arena, a
// reseedable random source and a sampler wired to it. A job owns the
// worker for its whole duration, so the steady-state request path runs on
// the zero-allocation RunInto machinery — every run reuses the same
// buffers, and per-run seeds come from reseeding Src.
type Worker struct {
	Arena   *core.Arena
	Src     *exectime.Source
	Sampler *exectime.Sampler
	// Res and Base are result holders jobs may reuse (e.g. scheme runs and
	// their NPM baseline).
	Res, Base core.RunResult
}

type job struct {
	ctx  context.Context
	fn   func(ctx context.Context, w *Worker)
	done chan struct{}
	ran  bool // set by the worker before closing done

	// enq is the submission time; it feeds the queue-age gauge and — when
	// rec is non-nil (traced request) — the queue-wait span, recorded by
	// the worker or by the submitter if it gives up while blocked. The
	// submitter always waits on done before touching rec again, so
	// worker-side recording needs no extra synchronization.
	rec *obs.TraceRec
	enq time.Time
	// pickup is stamped by the worker just before running fn. The exec
	// span is recorded by the submitter after done closes, so it covers
	// the whole pool round trip the request experienced — execution plus
	// the handoff back to the handler's goroutine.
	pickup time.Time
}

// Pool is a fixed-size worker pool with a bounded admission queue. Do
// submits a job and blocks until it completes; when the queue is full it
// fails fast with ErrQueueFull (backpressure) instead of queueing
// unboundedly. DoWait is the blocking variant batch execution uses after
// its own admission decision. Each worker holds one Worker state for its
// lifetime.
type Pool struct {
	jobs    chan *job
	workers int
	wg      sync.WaitGroup
	closed  atomic.Bool
	// sendMu serializes job submission against Close: senders hold it
	// shared for the enqueue, Close holds it exclusively around closing the
	// channel, so a Do racing a Close gets a clean ErrPoolClosed instead of
	// a send on a closed channel.
	sendMu   sync.RWMutex
	inFlight atomic.Int64
	// svcNanos is an EWMA of observed per-job service time, fed by the
	// workers; RetryAfter turns it into a drain-rate estimate.
	svcNanos atomic.Int64

	// qtimes tracks when each currently queued job was enqueued, so
	// OldestQueueAge can report queue staleness without touching the jobs
	// themselves. Entries are added before the channel send and removed at
	// worker pickup (or on a failed send); the map never exceeds the queue
	// capacity.
	qmu    sync.Mutex
	qtimes map[*job]time.Time

	depth *obs.Gauge
}

// NewPool starts workers goroutines with a queue of the given capacity.
// workers and queue are floored at 1.
func NewPool(workers, queue int, m *obs.Metrics) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &Pool{
		jobs:    make(chan *job, queue),
		workers: workers,
		qtimes:  make(map[*job]time.Time, queue),
		depth:   m.Gauge(MetricQueueDepth),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker(uint64(i))
	}
	return p
}

func (p *Pool) worker(id uint64) {
	defer p.wg.Done()
	src := exectime.NewSource(id)
	w := &Worker{
		Arena:   core.NewArena(),
		Src:     src,
		Sampler: exectime.NewSampler(src),
	}
	for j := range p.jobs {
		p.depth.Set(float64(len(p.jobs)))
		p.dequeued(j)
		j.pickup = time.Now()
		// The queue-wait span is recorded even for jobs skipped below: a
		// cancelled-while-queued request still spent that time waiting, and
		// its handler is blocked on done, so the record is safe to touch.
		// Reusing the pickup stamp for the span's end costs no extra clock
		// read.
		j.rec.RecordSpan(PhaseQueue, j.enq, j.pickup)
		// A job whose request already gave up (context expired while
		// queued) is skipped: its handler is gone, running it would only
		// burn the worker.
		if j.ctx.Err() == nil {
			j.fn(j.ctx, w)
			j.ran = true
			p.observeService(time.Since(j.pickup))
		}
		close(j.done)
		p.inFlight.Add(-1)
	}
}

// dequeued drops j from the queue-age map at worker pickup (or on a
// failed send).
func (p *Pool) dequeued(j *job) {
	p.qmu.Lock()
	delete(p.qtimes, j)
	p.qmu.Unlock()
}

// OldestQueueAge reports how long the oldest currently queued job has been
// waiting (zero for an empty queue) — the queue-staleness companion to the
// depth gauge: a deep-but-moving queue is load, a shallow-but-old one is a
// stall.
func (p *Pool) OldestQueueAge() time.Duration {
	p.qmu.Lock()
	defer p.qmu.Unlock()
	var oldest time.Time
	for _, t := range p.qtimes {
		if oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest)
}

// observeService folds one job's duration into the drain-rate EWMA
// (α = 1/8: stable under bursty mixes, adapts within a few dozen jobs).
func (p *Pool) observeService(d time.Duration) {
	n := d.Nanoseconds()
	if n < 1 {
		n = 1
	}
	for {
		old := p.svcNanos.Load()
		next := n
		if old != 0 {
			next = old + (n-old)/8
		}
		if p.svcNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// RetryAfter estimates how long a rejected client should wait for queue
// space to appear: the queued work divided by the pool's observed drain
// rate (workers / EWMA service time), clamped to [1s, 60s]. Before any
// job has completed — or with an empty queue, where the rejection came
// from a race — there is no schedule to derive, and the estimate falls
// back to 1s.
func (p *Pool) RetryAfter() time.Duration {
	svc := p.svcNanos.Load()
	depth := len(p.jobs)
	if svc == 0 || depth == 0 {
		return time.Second
	}
	// depth+1 jobs (the queue plus the caller's own) drain at
	// workers-per-svc; round up to whole work, clamp to the header-friendly
	// band.
	wait := time.Duration((int64(depth+1)*svc + int64(p.workers) - 1) / int64(p.workers))
	if wait < time.Second {
		wait = time.Second
	}
	if wait > 60*time.Second {
		wait = 60 * time.Second
	}
	return wait
}

// Do submits fn and waits for it to finish. fn runs on a pool worker with
// exclusive use of that worker's state; it must respect ctx between units
// of work. Do returns ErrQueueFull immediately when the queue is full,
// ErrPoolClosed after Close, and ctx's error when the job was skipped
// because the context expired before a worker picked it up. A nil return
// means fn ran to completion.
func (p *Pool) Do(ctx context.Context, fn func(ctx context.Context, w *Worker)) error {
	return p.submit(ctx, fn, false)
}

// DoWait is Do without the fail-fast queue check: when the queue is full
// it blocks until space frees or ctx expires. It exists for work that has
// already passed an admission decision of its own — the items of an
// admitted /v1/batch — where a fail-fast ErrQueueFull would turn one
// accepted request into a partial failure. Like Do, callers must not
// start a DoWait after Close begins.
func (p *Pool) DoWait(ctx context.Context, fn func(ctx context.Context, w *Worker)) error {
	return p.submit(ctx, fn, true)
}

func (p *Pool) submit(ctx context.Context, fn func(ctx context.Context, w *Worker), wait bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{}), enq: time.Now()}
	j.rec = obs.TraceFromContext(ctx)
	p.sendMu.RLock()
	if p.closed.Load() {
		p.sendMu.RUnlock()
		return ErrPoolClosed
	}
	// Count the job before the enqueue becomes visible: a worker may pick
	// it up (and decrement) the instant the send completes, and the
	// increment-after-send ordering used to let InFlight read negative.
	// The queue-age entry follows the same rule: insert before the send,
	// since the worker deletes it at pickup.
	p.inFlight.Add(1)
	p.qmu.Lock()
	p.qtimes[j] = j.enq
	p.qmu.Unlock()
	if wait {
		select {
		case p.jobs <- j:
		case <-ctx.Done():
			p.inFlight.Add(-1)
			p.dequeued(j)
			p.sendMu.RUnlock()
			// The request waited for queue space it never got; that wait is
			// still queue time.
			j.rec.Record(PhaseQueue, j.enq)
			return ctx.Err()
		}
	} else {
		select {
		case p.jobs <- j:
		default:
			p.inFlight.Add(-1)
			p.dequeued(j)
			p.sendMu.RUnlock()
			return ErrQueueFull
		}
	}
	p.depth.Set(float64(len(p.jobs)))
	p.sendMu.RUnlock()
	<-j.done
	if !j.ran {
		if err := ctx.Err(); err != nil {
			return err
		}
		return ErrPoolClosed
	}
	// The exec span closes here, on the submitter's side of the handoff:
	// close(done) ordered j.pickup, and stamping the end after the wakeup
	// charges the worker→handler scheduling latency to exec rather than
	// leaving it an unattributed gap in the trace.
	j.rec.Record(PhaseExec, j.pickup)
	return nil
}

// InFlight returns the number of jobs queued or running.
func (p *Pool) InFlight() int { return int(p.inFlight.Load()) }

// Close stops accepting jobs, lets queued and running jobs finish, and
// waits for the workers to exit. A Do or DoWait racing Close observes a
// clean ErrPoolClosed: the jobs channel only closes once no submission
// holds the send lock, and later submissions see the closed flag first.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		p.sendMu.Lock()
		close(p.jobs)
		p.sendMu.Unlock()
	}
	p.wg.Wait()
}
