package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"andorsched/internal/core"
	"andorsched/internal/core/schedcache"
	"andorsched/internal/exectime"
	"andorsched/internal/obs"
)

// ErrQueueFull reports that the admission queue was full; the handler maps
// it to 429 Too Many Requests with a Retry-After hint.
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrPoolClosed reports a submission after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// Worker is one pool goroutine's reusable simulation state: an arena, a
// reseedable random source and a sampler wired to it. A job owns the
// worker for its whole duration, so the steady-state request path runs on
// the zero-allocation RunInto machinery — every run reuses the same
// buffers, and per-run seeds come from reseeding Src.
type Worker struct {
	Arena   *core.Arena
	Src     *exectime.Source
	Sampler *exectime.Sampler
	// Res and Base are result holders jobs may reuse (e.g. scheme runs and
	// their NPM baseline).
	Res, Base core.RunResult

	// pw is the pool worker this state belongs to: the owner of the plan
	// and section-schedule shards a routed job may consult. Nil for
	// Workers constructed outside a pool (tests).
	pw *poolWorker
}

type job struct {
	ctx  context.Context
	fn   func(ctx context.Context, w *Worker)
	done chan struct{}
	ran  bool // set by the worker before closing done

	// units is the job's work size in Monte-Carlo runs (1 for unit work
	// like plan compiles and single executions). It weights the service
	// EWMAs and the queued-work gauge behind RetryAfter: since one request
	// may fan out into many chunk jobs, per-job accounting would misprice
	// the queue by the fan-out factor.
	units int64

	// enq is the submission time; it feeds the queue-age gauge and — when
	// rec is non-nil (traced request) — the queue-wait span, recorded by
	// the worker or by the submitter if it gives up while blocked. The
	// submitter always waits on done before touching rec again, so
	// worker-side recording needs no extra synchronization.
	rec *obs.TraceRec
	enq time.Time
	// pickup is stamped by the worker just before running fn. The exec
	// span is recorded by the submitter after done closes, so it covers
	// the whole pool round trip the request experienced — execution plus
	// the handoff back to the handler's goroutine.
	pickup time.Time
}

// ageRing approximates per-queue wait ages without any lock: senders
// record enqueue times into a ring indexed by a post-send sequence number,
// workers bump the dequeue sequence at pickup, and the age of the oldest
// queued job is "now minus the time at the dequeue cursor" whenever the
// enqueue sequence is ahead. The two sequences are advanced on opposite
// sides of the channel operation, so a reader can observe a slot before
// its time is stored (reported as zero) or a freshly drained queue
// (sequences equal, reported as zero) — gauge-grade accuracy, with the
// two properties the debug surface relies on held exactly: a job sitting
// in the queue eventually shows a growing age, and a drained queue shows
// zero.
type ageRing struct {
	mask  uint64
	times []atomic.Int64 // UnixNano enqueue stamps
	enq   atomic.Uint64
	deq   atomic.Uint64
}

// newAgeRing sizes the ring to at least twice the queue capacity: the
// in-flight window [deq, enq) never exceeds the channel occupancy, so
// slots cannot be overwritten while still unconsumed.
func newAgeRing(capacity int) *ageRing {
	n := 1
	for n < 2*(capacity+1) {
		n <<= 1
	}
	return &ageRing{mask: uint64(n - 1), times: make([]atomic.Int64, n)}
}

func (r *ageRing) noteEnqueue(at time.Time) {
	seq := r.enq.Add(1) - 1
	r.times[seq&r.mask].Store(at.UnixNano())
}

func (r *ageRing) noteDequeue() { r.deq.Add(1) }

func (r *ageRing) age(nowNanos int64) time.Duration {
	d, e := r.deq.Load(), r.enq.Load()
	if e <= d {
		return 0
	}
	t := r.times[d&r.mask].Load()
	if t == 0 || t > nowNanos {
		return 0
	}
	return time.Duration(nowNanos - t)
}

// planEntry is one shard slot. lastHit is a plain owner-advanced tick:
// only the owning worker reads or writes it, so the recency bookkeeping
// needs no atomics at all.
type planEntry struct {
	plan    *core.Plan
	lastHit uint64
}

// planSnapshot is an immutable epoch of one shard's contents, published
// by the owner after every mutation. Cross-shard readers (compare, batch
// resolution, stats) look plans up here without any lock; they see the
// shard as of some recent generation, never a torn map. Snapshot reads do
// not refresh LRU recency — only owner-routed traffic does.
type planSnapshot struct {
	gen   uint64
	plans map[cacheKey]*core.Plan
}

// planShard is one worker's private plan cache. The entries map is
// owner-only mutable state: every insert, hit-stamp and eviction happens
// on the owning worker goroutine, serialized by that worker's job loop,
// which is what makes the warmed request path run without a single lock
// or contended atomic. Everyone else reads the published snapshot.
type planShard struct {
	cap     int
	tick    uint64
	entries map[cacheKey]*planEntry
	gen     uint64
	snap    atomic.Pointer[planSnapshot]
}

func newPlanShard(capacity int) *planShard {
	if capacity < 1 {
		capacity = 1
	}
	return &planShard{cap: capacity, entries: make(map[cacheKey]*planEntry, capacity)}
}

// publish installs a fresh immutable snapshot of the shard. Owner-only.
func (sh *planShard) publish() {
	m := make(map[cacheKey]*core.Plan, len(sh.entries))
	for k, e := range sh.entries {
		m[k] = e.plan
	}
	sh.gen++
	sh.snap.Store(&planSnapshot{gen: sh.gen, plans: m})
}

// poolWorker is one worker goroutine's identity: its private queue, its
// plan and section-schedule shards, and its stat counters. The counters
// are written (almost) exclusively by the owner — snapshot readers
// crediting a cross-shard hit are the only other writers — and merged
// into the registry's instruments only on the metrics/debug read paths.
type poolWorker struct {
	id    int
	jobs  chan *job
	ring  *ageRing
	quit  chan struct{}
	plans *planShard
	sched *schedcache.Cache

	hits, misses, evictions atomic.Int64
	// svcUnitNanos is an EWMA of this worker's observed service time per
	// work unit (α = 1/8), and jobUnits an EWMA of units per job. Keeping
	// the rate per unit — rather than per job — makes the Retry-After
	// estimate independent of how requests are chunked: a request split
	// into W chunk jobs contributes the same queued work and the same
	// drain rate as its serial form, where a per-job EWMA would overprice
	// the queue by ~W×. Single-writer: plain load/store, no CAS loop.
	svcUnitNanos atomic.Int64
	jobUnits     atomic.Int64
}

// Pool is a fixed-size worker pool with a shared bounded admission queue
// plus one private queue per worker. Do/DoWait submit to the shared queue
// (any worker picks the job up); DoOn/DoWaitOn route a job to one
// specific worker — the shard owner chosen by digest — so all mutation of
// that worker's caches stays on its goroutine. Do fails fast with
// ErrQueueFull when the shared queue is full (backpressure); the Wait
// variants block for space. Submission and shutdown synchronize through
// two atomics (a Dekker-style closed/in-flight handshake), not a lock.
type Pool struct {
	shared     chan *job
	sharedRing *ageRing
	workers    []*poolWorker
	wg         sync.WaitGroup
	closed     atomic.Bool
	closeDone  chan struct{}
	inFlight   atomic.Int64
	// unitsQueued tracks the work (in units) sitting in the queues but not
	// yet picked up — the numerator of the RetryAfter drain estimate.
	// Incremented after a successful enqueue, decremented at pickup.
	unitsQueued atomic.Int64

	// grave accumulates the per-worker cache counters folded in at Close,
	// after the workers exited: a drained pool keeps reporting the totals
	// it earned, and the merge never undercounts across a shutdown.
	grave struct {
		hits, misses, evictions atomic.Int64
	}
}

// NewPool starts `workers` goroutines with a shared queue of the given
// capacity and a per-worker plan-shard capacity totalling planCap across
// the pool. workers, queue and planCap are floored at 1.
func NewPool(workers, queue, planCap int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	if planCap < 1 {
		planCap = 1
	}
	shardCap := (planCap + workers - 1) / workers
	schedCap := core.DefaultScheduleCacheCapacity / workers
	if schedCap < 64 {
		schedCap = 64
	}
	// Private queues are small: routed jobs are picked up by a dedicated
	// owner, so depth beyond a handful only adds latency; backpressure is
	// the shared queue's job.
	wq := queue / workers
	if wq < 1 {
		wq = 1
	}
	p := &Pool{
		shared:     make(chan *job, queue),
		sharedRing: newAgeRing(queue),
		closeDone:  make(chan struct{}),
		workers:    make([]*poolWorker, workers),
	}
	for i := 0; i < workers; i++ {
		w := &poolWorker{
			id:    i,
			jobs:  make(chan *job, wq),
			ring:  newAgeRing(wq),
			quit:  make(chan struct{}),
			plans: newPlanShard(shardCap),
			sched: schedcache.New(schedCap),
		}
		p.workers[i] = w
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

func (p *Pool) worker(w *poolWorker) {
	defer p.wg.Done()
	src := exectime.NewSource(uint64(w.id))
	wk := &Worker{
		Arena:   core.NewArena(),
		Src:     src,
		Sampler: exectime.NewSampler(src),
		pw:      w,
	}
	for {
		select {
		case j := <-w.jobs:
			p.run(w, wk, j, w.ring)
		case j := <-p.shared:
			p.run(w, wk, j, p.sharedRing)
		case <-w.quit:
			// Close only closes quit after the in-flight count drained to
			// zero, so both queues are empty and will stay empty.
			return
		}
	}
}

func (p *Pool) run(w *poolWorker, wk *Worker, j *job, ring *ageRing) {
	ring.noteDequeue()
	p.unitsQueued.Add(-j.units)
	j.pickup = time.Now()
	// The queue-wait span is recorded even for jobs skipped below: a
	// cancelled-while-queued request still spent that time waiting, and
	// its handler is blocked on done, so the record is safe to touch.
	// Reusing the pickup stamp for the span's end costs no extra clock
	// read.
	j.rec.RecordSpan(PhaseQueue, j.enq, j.pickup)
	// A job whose request already gave up (context expired while queued)
	// is skipped: its handler is gone, running it would only burn the
	// worker.
	if j.ctx.Err() == nil {
		j.fn(j.ctx, wk)
		j.ran = true
		w.observeService(time.Since(j.pickup), j.units)
	}
	close(j.done)
	p.inFlight.Add(-1)
}

// observeService folds one job's duration into the worker's per-unit
// service-time and units-per-job EWMAs (α = 1/8: stable under bursty
// mixes, adapts within a few dozen jobs). Owner-only, so plain
// read-modify-writes suffice.
func (w *poolWorker) observeService(d time.Duration, units int64) {
	if units < 1 {
		units = 1
	}
	n := d.Nanoseconds() / units
	if n < 1 {
		n = 1
	}
	if old := w.svcUnitNanos.Load(); old != 0 {
		n = old + (n-old)/8
	}
	w.svcUnitNanos.Store(n)
	u := units
	if old := w.jobUnits.Load(); old != 0 {
		u = old + (u-old)/8
	}
	w.jobUnits.Store(u)
}

// QueueDepth reports the number of jobs currently sitting in the shared
// queue and every private queue.
func (p *Pool) QueueDepth() int {
	depth := len(p.shared)
	for _, w := range p.workers {
		depth += len(w.jobs)
	}
	return depth
}

// OldestQueueAge reports how long the oldest currently queued job has been
// waiting (zero for empty queues) — the queue-staleness companion to the
// depth gauge: a deep-but-moving queue is load, a shallow-but-old one is a
// stall. The age is the maximum over the shared and per-worker queues.
func (p *Pool) OldestQueueAge() time.Duration {
	now := time.Now().UnixNano()
	oldest := p.sharedRing.age(now)
	for _, w := range p.workers {
		if a := w.ring.age(now); a > oldest {
			oldest = a
		}
	}
	return oldest
}

// RetryAfter estimates how long a rejected client should wait for queue
// space to appear: the queued work — measured in run units, not jobs — at
// the pool's observed per-unit drain rate, plus one mean-sized job for the
// caller's own work, clamped to [1s, 60s]. Counting units matters once
// requests fan out into per-worker chunks: W queued chunk jobs of one
// request hold the same work as its serial form, and a per-job estimate
// learned from pre-chunking traffic would overprice them by ~W×. Before
// any job has completed — or with empty queues, where the rejection came
// from a race — there is no schedule to derive, and the estimate falls
// back to 1s.
func (p *Pool) RetryAfter() time.Duration {
	var svcUnit, meanUnits, n int64
	for _, w := range p.workers {
		if s := w.svcUnitNanos.Load(); s > 0 {
			svcUnit += s
			meanUnits += w.jobUnits.Load()
			n++
		}
	}
	queued := p.unitsQueued.Load()
	if n == 0 || (queued <= 0 && p.QueueDepth() == 0) {
		return time.Second
	}
	svcUnit /= n
	meanUnits /= n
	if meanUnits < 1 {
		meanUnits = 1
	}
	if queued < 0 {
		queued = 0 // transient decrement-before-increment races read as empty
	}
	workers := int64(len(p.workers))
	// queued+meanUnits units (the queue plus the caller's own, assumed
	// mean-sized) drain at workers-per-unit-svc; round up to whole work,
	// clamp to the header-friendly band.
	wait := time.Duration(((queued+meanUnits)*svcUnit + workers - 1) / workers)
	if wait < time.Second {
		wait = time.Second
	}
	if wait > 60*time.Second {
		wait = 60 * time.Second
	}
	return wait
}

// Do submits fn to the shared queue and waits for it to finish. fn runs on
// a pool worker with exclusive use of that worker's state; it must respect
// ctx between units of work. Do returns ErrQueueFull immediately when the
// queue is full, ErrPoolClosed after Close, and ctx's error when the job
// was skipped because the context expired before a worker picked it up. A
// nil return means fn ran to completion.
func (p *Pool) Do(ctx context.Context, fn func(ctx context.Context, w *Worker)) error {
	return p.submit(ctx, p.shared, p.sharedRing, fn, false, 1, nil)
}

// doUnits is Do with an explicit work size in run units (see job.units):
// handlers submitting multi-run work declare its size so the Retry-After
// EWMAs stay calibrated per run rather than per job.
func (p *Pool) doUnits(ctx context.Context, units int64, fn func(ctx context.Context, w *Worker)) error {
	return p.submit(ctx, p.shared, p.sharedRing, fn, false, units, nil)
}

// doOnUnits is DoOn with an explicit work size.
func (p *Pool) doOnUnits(ctx context.Context, home int, units int64, fn func(ctx context.Context, w *Worker)) error {
	w := p.workers[home]
	return p.submit(ctx, w.jobs, w.ring, fn, false, units, nil)
}

// doWaitUnits is DoWait with an explicit work size.
func (p *Pool) doWaitUnits(ctx context.Context, units int64, fn func(ctx context.Context, w *Worker)) error {
	return p.submit(ctx, p.shared, p.sharedRing, fn, true, units, nil)
}

// DoWait is Do without the fail-fast queue check: when the queue is full
// it blocks until space frees or ctx expires. It exists for work that has
// already passed an admission decision of its own — the items of an
// admitted /v1/batch — where a fail-fast ErrQueueFull would turn one
// accepted request into a partial failure. Like Do, callers must not
// start a DoWait after Close begins.
func (p *Pool) DoWait(ctx context.Context, fn func(ctx context.Context, w *Worker)) error {
	return p.submit(ctx, p.shared, p.sharedRing, fn, true, 1, nil)
}

// DoOn is Do routed to worker `home`'s private queue: fn runs on exactly
// that worker, which is what entitles it to touch the worker's plan and
// section-schedule shards without synchronization.
func (p *Pool) DoOn(ctx context.Context, home int, fn func(ctx context.Context, w *Worker)) error {
	w := p.workers[home]
	return p.submit(ctx, w.jobs, w.ring, fn, false, 1, nil)
}

// DoWaitOn is DoOn with blocking submission, for owner work downstream of
// an admission decision (plan compiles joined by batch items).
func (p *Pool) DoWaitOn(ctx context.Context, home int, fn func(ctx context.Context, w *Worker)) error {
	w := p.workers[home]
	return p.submit(ctx, w.jobs, w.ring, fn, true, 1, nil)
}

// submit enqueues fn as one job and blocks until it completes. units sizes
// the job for the Retry-After accounting (floored at 1). onEnqueue, when
// non-nil, runs exactly once right after the job lands in the queue —
// before submit blocks on completion — so a coordinator (fanOut) can learn
// that the fail-fast admission decision succeeded without waiting for the
// job to finish. It runs on the submitting goroutine and must not block.
func (p *Pool) submit(ctx context.Context, ch chan *job, ring *ageRing, fn func(ctx context.Context, w *Worker), wait bool, units int64, onEnqueue func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if units < 1 {
		units = 1
	}
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{}), enq: time.Now(), units: units}
	j.rec = obs.TraceFromContext(ctx)
	// Dekker handshake with Close: count the submission first, then check
	// the closed flag (both sequentially consistent). Close stores the
	// flag first, then reads the count — so either this submitter sees
	// closed and backs out, or Close sees the in-flight count and waits
	// for the job. No lock, and a Do racing a Close still gets a clean
	// ErrPoolClosed instead of a job no worker will drain.
	p.inFlight.Add(1)
	if p.closed.Load() {
		p.inFlight.Add(-1)
		return ErrPoolClosed
	}
	if wait {
		select {
		case ch <- j:
		case <-ctx.Done():
			p.inFlight.Add(-1)
			// The request waited for queue space it never got; that wait is
			// still queue time.
			j.rec.Record(PhaseQueue, j.enq)
			return ctx.Err()
		}
	} else {
		select {
		case ch <- j:
		default:
			p.inFlight.Add(-1)
			return ErrQueueFull
		}
	}
	ring.noteEnqueue(j.enq)
	p.unitsQueued.Add(units)
	if onEnqueue != nil {
		onEnqueue()
	}
	<-j.done
	if !j.ran {
		if err := ctx.Err(); err != nil {
			return err
		}
		return ErrPoolClosed
	}
	// The exec span closes here, on the submitter's side of the handoff:
	// close(done) ordered j.pickup, and stamping the end after the wakeup
	// charges the worker→handler scheduling latency to exec rather than
	// leaving it an unattributed gap in the trace.
	j.rec.Record(PhaseExec, j.pickup)
	return nil
}

// fanOut executes n chunk jobs of one request across the pool and blocks
// until every started job has returned. job(c) builds chunk c's function,
// units(c) its work size (nil means 1).
//
// Admission semantics mirror the serial path exactly: chunk 0 is submitted
// with the fail-fast Do path — the request's single admission decision on
// the shared queue, so a saturated pool still answers a clean 429 — and
// the remaining chunks enter with blocking DoWait only after chunk 0 is
// known to be enqueued, the way an admitted batch's items ride out
// transient queue pressure. (Without that ordering a sibling chunk could
// fill the queue first and fail its own request's admission probe.)
//
// Error handling is all-or-nothing: the first failure cancels the shared
// child context, every started chunk backs out at its next run boundary,
// and the returned error reports the failure — never a partial result. A
// nil return means every chunk ran to completion.
func (p *Pool) fanOut(ctx context.Context, n int, units func(c int) int64, job func(c int) func(context.Context, *Worker)) error {
	u := func(c int) int64 {
		if units == nil {
			return 1
		}
		return units(c)
	}
	if n <= 1 {
		return p.doUnits(ctx, u(0), job(0))
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var wg sync.WaitGroup
	// enq resolves chunk 0's admission: nil once it is enqueued, or the
	// fail-fast error if it never was.
	enq := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		enqueued := false
		errs[0] = p.submit(cctx, p.shared, p.sharedRing, job(0), false, u(0), func() {
			enqueued = true
			enq <- nil
		})
		if !enqueued {
			enq <- errs[0]
		} else if errs[0] != nil {
			cancel()
		}
	}()
	if err := <-enq; err != nil {
		wg.Wait()
		return err
	}
	for c := 1; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = p.submit(cctx, p.shared, p.sharedRing, job(c), true, u(c), nil)
			if errs[c] != nil {
				cancel()
			}
		}(c)
	}
	wg.Wait()
	// Prefer the root cause over the context.Canceled errors the cancel
	// fanned out to sibling chunks.
	var first error
	for _, err := range errs {
		if err != nil && (first == nil || errors.Is(first, context.Canceled)) {
			first = err
		}
	}
	return first
}

// InFlight returns the number of jobs queued or running.
func (p *Pool) InFlight() int { return int(p.inFlight.Load()) }

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.workers) }

// homeFor picks the worker owning key's plan-shard slot: a digest of the
// whole cache key, so identical requests land on one worker (whose warm
// shard then serves them lock-free) and distinct applications spread
// across the pool.
func (p *Pool) homeFor(key cacheKey) int {
	if len(p.workers) == 1 {
		return 0
	}
	h := binary.LittleEndian.Uint64(key.graph[:8])
	mix := func(v uint64) {
		h = (h ^ v) * 0x9e3779b97f4a7c15
		h ^= h >> 32
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 0x100000001b3
		}
	}
	mix(uint64(key.procs))
	mixStr(key.platform)
	mixStr(key.hetero)
	mixStr(key.placement)
	mix(math.Float64bits(key.ov.SpeedCompCycles))
	mix(math.Float64bits(key.ov.SpeedChangeTime))
	mix(math.Float64bits(key.ov.VoltSlewTime))
	return int(h % uint64(len(p.workers)))
}

// planFromSnapshot looks key up in the owning shard's published snapshot —
// the lock-free cross-shard read path. It returns the plan (if present)
// and the owner's index either way. A snapshot hit is credited to the
// owner's hit counter; it does not refresh the entry's LRU recency (only
// owner-routed traffic does).
func (p *Pool) planFromSnapshot(key cacheKey) (*core.Plan, int, bool) {
	home := p.homeFor(key)
	if snap := p.workers[home].plans.snap.Load(); snap != nil {
		if plan, ok := snap.plans[key]; ok {
			p.workers[home].hits.Add(1)
			return plan, home, true
		}
	}
	return nil, home, false
}

// planPeek is planFromSnapshot without the stats credit: a pure read for
// the warm /v1/run path, which attributes the hit to whichever worker
// executes the run (each worker bumps only its own counter, so the hot
// path never writes a cache line another goroutine is writing).
func (p *Pool) planPeek(key cacheKey) (*core.Plan, bool) {
	if snap := p.workers[p.homeFor(key)].plans.snap.Load(); snap != nil {
		if plan, ok := snap.plans[key]; ok {
			return plan, true
		}
	}
	return nil, false
}

// OwnerPlan resolves key in the worker's own plan shard, compiling on a
// miss. It must be called from a job routed to the shard's owner (DoOn /
// DoWaitOn with homeFor(key)): entries, recency ticks and the snapshot
// epoch are all mutated without synchronization on the owner's goroutine.
// The boolean reports a hit; a second routed request for a key whose
// compile just finished counts as a hit (the owner queue serializes
// compiles, so duplicate-compile suppression is structural). Failed
// compiles are not cached.
func (wk *Worker) OwnerPlan(key cacheKey, compile func(sched *schedcache.Cache) (*core.Plan, error)) (*core.Plan, bool, error) {
	w := wk.pw
	sh := w.plans
	sh.tick++
	if e, ok := sh.entries[key]; ok {
		e.lastHit = sh.tick
		w.hits.Add(1)
		return e.plan, true, nil
	}
	w.misses.Add(1)
	plan, err := compile(w.sched)
	if err != nil {
		return nil, false, err
	}
	sh.entries[key] = &planEntry{plan: plan, lastHit: sh.tick}
	for len(sh.entries) > sh.cap {
		var victim cacheKey
		oldest := uint64(math.MaxUint64)
		for k, e := range sh.entries {
			if e.lastHit < oldest {
				oldest, victim = e.lastHit, k
			}
		}
		delete(sh.entries, victim)
		w.evictions.Add(1)
	}
	sh.publish()
	return plan, false, nil
}

// PlanCacheStats is the merged view of the per-worker plan-shard counters
// plus the close-time graveyard. Size counts live snapshot entries.
type PlanCacheStats struct {
	Hits, Misses, Evictions, Size int64
}

// PlanCacheStats merges the graveyard with every live worker's counters.
// Reading is lock-free; the counters only move forward, so consecutive
// merges are monotonic except for a harmless transient during the Close
// fold (which the delta logic in refreshStats clamps).
func (p *Pool) PlanCacheStats() PlanCacheStats {
	s := PlanCacheStats{
		Hits:      p.grave.hits.Load(),
		Misses:    p.grave.misses.Load(),
		Evictions: p.grave.evictions.Load(),
	}
	for _, w := range p.workers {
		s.Hits += w.hits.Load()
		s.Misses += w.misses.Load()
		s.Evictions += w.evictions.Load()
		if snap := w.plans.snap.Load(); snap != nil {
			s.Size += int64(len(snap.plans))
		}
	}
	return s
}

// SchedCacheStats sums the per-worker section-schedule shard counters.
func (p *Pool) SchedCacheStats() schedcache.Stats {
	var sum schedcache.Stats
	for _, w := range p.workers {
		st := w.sched.Stats()
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Evictions += st.Evictions
		sum.Size += st.Size
		sum.Capacity += st.Capacity
	}
	return sum
}

// CachedPlans counts plans across all live shard snapshots.
func (p *Pool) CachedPlans() int {
	n := 0
	for _, w := range p.workers {
		if snap := w.plans.snap.Load(); snap != nil {
			n += len(snap.plans)
		}
	}
	return n
}

// Close stops accepting jobs, lets queued and running jobs finish, waits
// for the workers to exit, then folds the per-worker cache counters into
// the graveyard so post-shutdown stat reads still add up. The handshake
// mirrors submit's: once the closed flag is set, the in-flight count can
// only fall; when it reaches zero every queue is empty and no submitter
// can add to one, so the quit channels close with nothing stranded.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		for p.inFlight.Load() != 0 {
			time.Sleep(50 * time.Microsecond)
		}
		for _, w := range p.workers {
			close(w.quit)
		}
		p.wg.Wait()
		for _, w := range p.workers {
			p.grave.hits.Add(w.hits.Swap(0))
			p.grave.misses.Add(w.misses.Swap(0))
			p.grave.evictions.Add(w.evictions.Swap(0))
		}
		close(p.closeDone)
	}
	<-p.closeDone
}
