package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"andorsched/internal/obs"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(2, 4, obs.NewMetrics())
	defer p.Close()
	var mu sync.Mutex
	seen := 0
	for i := 0; i < 10; i++ {
		err := p.Do(context.Background(), func(ctx context.Context, w *Worker) {
			if w.Arena == nil || w.Src == nil || w.Sampler == nil {
				t.Error("worker state not initialized")
			}
			mu.Lock()
			seen++
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if seen != 10 {
		t.Fatalf("ran %d jobs, want 10", seen)
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1, obs.NewMetrics())
	defer p.Close()

	block := make(chan struct{})
	running := make(chan struct{})
	// Occupy the single worker...
	go p.Do(context.Background(), func(ctx context.Context, w *Worker) {
		close(running)
		<-block
	})
	<-running
	// ...and the single queue slot.
	queued := make(chan error, 1)
	go func() {
		queued <- p.Do(context.Background(), func(ctx context.Context, w *Worker) {})
	}()
	// Wait until the queue slot is actually taken.
	deadline := time.Now().Add(2 * time.Second)
	for p.InFlight() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queued job never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// Now the pool is saturated: submissions must fail fast.
	if err := p.Do(context.Background(), func(ctx context.Context, w *Worker) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err %v, want ErrQueueFull", err)
	}
	close(block)
	if err := <-queued; err != nil {
		t.Fatalf("queued job failed: %v", err)
	}
}

func TestPoolSkipsExpiredQueuedJobs(t *testing.T) {
	p := NewPool(1, 4, obs.NewMetrics())
	defer p.Close()

	block := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func(ctx context.Context, w *Worker) {
		close(running)
		<-block
	})
	<-running

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(ctx, func(ctx context.Context, w *Worker) { ran = true })
	}()
	for p.InFlight() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel() // the queued job's request gives up
	close(block)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if ran {
		t.Error("expired job still ran")
	}
}

func TestPoolClose(t *testing.T) {
	p := NewPool(2, 4, obs.NewMetrics())
	done := false
	if err := p.Do(context.Background(), func(ctx context.Context, w *Worker) { done = true }); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if !done {
		t.Error("job did not complete before Close returned")
	}
	if err := p.Do(context.Background(), func(ctx context.Context, w *Worker) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err after close %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolCloseDrainsQueued(t *testing.T) {
	p := NewPool(1, 8, obs.NewMetrics())
	block := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func(ctx context.Context, w *Worker) {
		close(running)
		<-block
	})
	<-running

	var mu sync.Mutex
	completed := 0
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func(ctx context.Context, w *Worker) {
				mu.Lock()
				completed++
				mu.Unlock()
			})
			if err != nil {
				t.Errorf("queued job rejected during drain: %v", err)
			}
		}()
	}
	for p.InFlight() < 6 {
		time.Sleep(time.Millisecond)
	}
	close(block)
	p.Close() // must wait for all queued jobs
	wg.Wait()
	if completed != 5 {
		t.Fatalf("%d queued jobs completed across Close, want 5", completed)
	}
}
