package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(2, 4, 16)
	defer p.Close()
	var mu sync.Mutex
	seen := 0
	for i := 0; i < 10; i++ {
		err := p.Do(context.Background(), func(ctx context.Context, w *Worker) {
			if w.Arena == nil || w.Src == nil || w.Sampler == nil {
				t.Error("worker state not initialized")
			}
			mu.Lock()
			seen++
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if seen != 10 {
		t.Fatalf("ran %d jobs, want 10", seen)
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1, 16)
	defer p.Close()

	block := make(chan struct{})
	running := make(chan struct{})
	// Occupy the single worker...
	go p.Do(context.Background(), func(ctx context.Context, w *Worker) {
		close(running)
		<-block
	})
	<-running
	// ...and the single queue slot.
	queued := make(chan error, 1)
	go func() {
		queued <- p.Do(context.Background(), func(ctx context.Context, w *Worker) {})
	}()
	// Wait until the queue slot is actually taken.
	deadline := time.Now().Add(2 * time.Second)
	for p.InFlight() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queued job never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// Now the pool is saturated: submissions must fail fast.
	if err := p.Do(context.Background(), func(ctx context.Context, w *Worker) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err %v, want ErrQueueFull", err)
	}
	close(block)
	if err := <-queued; err != nil {
		t.Fatalf("queued job failed: %v", err)
	}
}

func TestPoolSkipsExpiredQueuedJobs(t *testing.T) {
	p := NewPool(1, 4, 16)
	defer p.Close()

	block := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func(ctx context.Context, w *Worker) {
		close(running)
		<-block
	})
	<-running

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(ctx, func(ctx context.Context, w *Worker) { ran = true })
	}()
	for p.InFlight() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel() // the queued job's request gives up
	close(block)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if ran {
		t.Error("expired job still ran")
	}
}

func TestPoolClose(t *testing.T) {
	p := NewPool(2, 4, 16)
	done := false
	if err := p.Do(context.Background(), func(ctx context.Context, w *Worker) { done = true }); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if !done {
		t.Error("job did not complete before Close returned")
	}
	if err := p.Do(context.Background(), func(ctx context.Context, w *Worker) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err after close %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolCloseDrainsQueued(t *testing.T) {
	p := NewPool(1, 8, 16)
	block := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func(ctx context.Context, w *Worker) {
		close(running)
		<-block
	})
	<-running

	var mu sync.Mutex
	completed := 0
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func(ctx context.Context, w *Worker) {
				mu.Lock()
				completed++
				mu.Unlock()
			})
			if err != nil {
				t.Errorf("queued job rejected during drain: %v", err)
			}
		}()
	}
	for p.InFlight() < 6 {
		time.Sleep(time.Millisecond)
	}
	close(block)
	p.Close() // must wait for all queued jobs
	wg.Wait()
	if completed != 5 {
		t.Fatalf("%d queued jobs completed across Close, want 5", completed)
	}
}

// TestPoolCancelMidQueue is the ISSUE's admission-audit regression test:
// a request cancelled between enqueue and worker pickup must not execute
// and must settle the in-flight accounting exactly once. Run under -race
// with many concurrent submitters and a saturated pool.
func TestPoolCancelMidQueue(t *testing.T) {
	p := NewPool(2, 32, 16)
	defer p.Close()

	block := make(chan struct{})
	occupied := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go p.Do(context.Background(), func(ctx context.Context, w *Worker) {
			occupied <- struct{}{}
			<-block
		})
	}
	<-occupied
	<-occupied

	const n = 64
	type result struct {
		err  error
		runs int32 // how many times this job's fn executed
	}
	results := make([]result, n)
	cancels := make([]context.CancelFunc, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		wg.Add(1)
		go func(i int, ctx context.Context) {
			defer wg.Done()
			runs := &results[i].runs
			results[i].err = p.Do(ctx, func(ctx context.Context, w *Worker) {
				atomic.AddInt32(runs, 1)
			})
		}(i, ctx)
	}
	// Cancel every other job while the pool is still blocked, so the
	// cancellations land strictly between enqueue and pickup (for the jobs
	// that made it into the queue) or before submission.
	for i := 0; i < n; i += 2 {
		cancels[i]()
	}
	close(block)
	wg.Wait()
	for i := range cancels {
		cancels[i]()
	}

	for i := range results {
		r := &results[i]
		runs := atomic.LoadInt32(&r.runs)
		switch {
		case r.err == nil:
			if runs != 1 {
				t.Errorf("job %d: nil error but fn ran %d times, want exactly 1", i, runs)
			}
		case errors.Is(r.err, context.Canceled):
			if runs != 0 {
				t.Errorf("job %d: cancelled while queued but fn ran %d times", i, runs)
			}
		case errors.Is(r.err, ErrQueueFull):
			if runs != 0 {
				t.Errorf("job %d: rejected but fn ran %d times", i, runs)
			}
		default:
			t.Errorf("job %d: unexpected error %v", i, r.err)
		}
	}
	// Every path — ran, skipped, rejected — must settle the in-flight
	// count exactly once.
	deadline := time.Now().Add(2 * time.Second)
	for p.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight count settled at %d, want 0", p.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolDoWaitBlocksForSpace: DoWait must ride out a full queue instead
// of failing fast, and still respect cancellation while blocked.
func TestPoolDoWaitBlocksForSpace(t *testing.T) {
	p := NewPool(1, 1, 16)
	defer p.Close()

	block := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func(ctx context.Context, w *Worker) {
		close(running)
		<-block
	})
	<-running
	// Fill the single queue slot.
	queued := make(chan error, 1)
	go func() {
		queued <- p.Do(context.Background(), func(ctx context.Context, w *Worker) {})
	}()
	for p.InFlight() < 2 {
		time.Sleep(time.Millisecond)
	}

	// Do fails fast; DoWait blocks until the queue drains, then runs.
	if err := p.Do(context.Background(), func(ctx context.Context, w *Worker) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Do on full queue: %v, want ErrQueueFull", err)
	}
	ran := make(chan struct{})
	waited := make(chan error, 1)
	go func() {
		waited <- p.DoWait(context.Background(), func(ctx context.Context, w *Worker) { close(ran) })
	}()
	select {
	case err := <-waited:
		t.Fatalf("DoWait returned %v while the queue was still full", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(block)
	if err := <-waited; err != nil {
		t.Fatalf("DoWait: %v", err)
	}
	<-ran
	if err := <-queued; err != nil {
		t.Fatalf("queued Do: %v", err)
	}

	// A DoWait blocked on a full queue honors cancellation.
	block2 := make(chan struct{})
	running2 := make(chan struct{})
	go p.Do(context.Background(), func(ctx context.Context, w *Worker) {
		close(running2)
		<-block2
	})
	<-running2
	filler := make(chan error, 1)
	go func() {
		filler <- p.Do(context.Background(), func(ctx context.Context, w *Worker) {})
	}()
	for p.InFlight() < 2 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		waitErr <- p.DoWait(ctx, func(ctx context.Context, w *Worker) {
			t.Error("cancelled DoWait executed")
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-waitErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled DoWait: %v, want context.Canceled", err)
	}
	close(block2)
	if err := <-filler; err != nil {
		t.Fatalf("filler job: %v", err)
	}
}

// TestPoolRetryAfter pins the drain-rate estimator's contract: a fresh
// pool (no observations) and an empty queue both advise the 1s floor, and
// the estimate is a positive bounded duration once jobs have completed.
func TestPoolRetryAfter(t *testing.T) {
	p := NewPool(1, 4, 16)
	defer p.Close()
	if got := p.RetryAfter(); got != time.Second {
		t.Errorf("fresh pool RetryAfter %v, want the 1s fallback", got)
	}
	for i := 0; i < 8; i++ {
		if err := p.Do(context.Background(), func(ctx context.Context, w *Worker) {
			time.Sleep(200 * time.Microsecond)
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Queue empty again: still the floor.
	if got := p.RetryAfter(); got != time.Second {
		t.Errorf("idle pool RetryAfter %v, want 1s", got)
	}

	// Saturate: with a known ~5ms service EWMA and a non-empty queue the
	// estimate must stay within [1s, 60s] and scale with depth.
	block := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func(ctx context.Context, w *Worker) {
		close(running)
		<-block
	})
	<-running
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func(ctx context.Context, w *Worker) {})
		}()
	}
	for p.InFlight() < 5 {
		time.Sleep(time.Millisecond)
	}
	got := p.RetryAfter()
	if got < time.Second || got > 60*time.Second {
		t.Errorf("saturated RetryAfter %v outside [1s, 60s]", got)
	}
	close(block)
	wg.Wait()
}
