package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"andorsched/internal/core"
	"andorsched/internal/core/schedcache"
)

// TestShardedLegacyDifferential is the tentpole's correctness bar: across
// random workloads and every endpoint, the shared-nothing path must
// answer byte-for-byte what the legacy shared-cache path answers. Both
// servers see every request twice, so cold-compile and warm-cache
// responses are both covered.
func TestShardedLegacyDifferential(t *testing.T) {
	cfg := Config{Workers: 3, QueueSize: 32, CacheSize: 64}
	legacyCfg := cfg
	legacyCfg.LegacyCache = true
	sharded := newTestServer(t, cfg)
	legacy := newTestServer(t, legacyCfg)

	rng := rand.New(rand.NewSource(7))
	app := func(wl int) string {
		switch wl % 4 {
		case 0:
			return fmt.Sprintf(`"workload":"random:%d","procs":%d`, wl+1, 2+wl%3)
		case 1:
			return fmt.Sprintf(`"workload":"random:%d","procs":2,"platform":"xscale"`, wl+1)
		case 2:
			return fmt.Sprintf(`"workload":"random:%d","hetero":"biglittle","placement":"class-affinity"`, wl+1)
		default:
			return fmt.Sprintf(`"workload":"random:%d","hetero":"accel"`, wl+1)
		}
	}
	schemes := []string{"GSS", "SS1", "ORA", "AS"}
	for wl := 0; wl < 30; wl++ {
		seed := rng.Uint64()
		bodies := []struct{ path, body string }{
			{"/v1/run", fmt.Sprintf(`{%s,"scheme":%q,"seed":%d}`, app(wl), schemes[wl%len(schemes)], seed)},
			{"/v1/run", fmt.Sprintf(`{%s,"scheme":%q,"seed":%d,"runs":5}`, app(wl), schemes[wl%len(schemes)], seed)},
			{"/v1/compare", fmt.Sprintf(`{%s,"schemes":["NPM","GSS","ORA"],"runs":8,"seed":%d}`, app(wl), seed)},
			{"/v1/batch", fmt.Sprintf(`{"items":[{%s,"scheme":"GSS","seed":%d,"runs":3},{%s,"scheme":"SS2","seed":%d,"runs":2}]}`,
				app(wl), seed, app((wl+11)%30), seed+1)},
		}
		for _, req := range bodies {
			for pass := 0; pass < 2; pass++ { // cold, then warm
				ws := post(t, sharded, req.path, req.body)
				wl2 := post(t, legacy, req.path, req.body)
				if ws.Code != wl2.Code {
					t.Fatalf("workload %d %s pass %d: status sharded %d vs legacy %d\nsharded: %s\nlegacy: %s",
						wl, req.path, pass, ws.Code, wl2.Code, ws.Body.String(), wl2.Body.String())
				}
				if !bytes.Equal(ws.Body.Bytes(), wl2.Body.Bytes()) {
					t.Fatalf("workload %d %s pass %d: bodies diverged\nsharded: %s\nlegacy: %s",
						wl, req.path, pass, ws.Body.String(), wl2.Body.String())
				}
			}
		}
	}
}

// TestSnapshotPublicationRace stress-tests the epoch-published shard
// snapshots under concurrent eviction: owners churn small shards (every
// insert evicts and republished) while cross-shard readers loop over the
// snapshots. Run under -race this proves the publication protocol; the
// explicit assertions pin that generations only move forward and a
// snapshot never yields a nil plan for a present key.
func TestSnapshotPublicationRace(t *testing.T) {
	p := NewPool(2, 16, 6) // 3 plans per shard: constant eviction
	defer p.Close()
	mk := compilePlan(t)

	const nKeys = 24
	keys := make([]cacheKey, nKeys)
	for i := range keys {
		keys[i] = testKey(i)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	lastGen := make([]atomic.Uint64, len(p.workers))
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for !stop.Load() {
				k := keys[rng.Intn(nKeys)]
				home := p.homeFor(k)
				if snap := p.workers[home].plans.snap.Load(); snap != nil {
					for sk, plan := range snap.plans {
						if plan == nil {
							t.Errorf("snapshot of worker %d holds nil plan for %v", home, sk)
							stop.Store(true)
							return
						}
					}
					for {
						g := lastGen[home].Load()
						if snap.gen > g {
							if !lastGen[home].CompareAndSwap(g, snap.gen) {
								continue
							}
						} else if snap.gen < g && snap.gen != 0 {
							// A reader may observe an older snapshot than a
							// faster reader did (Load races publish), but the
							// pointer itself must never be replaced with an
							// earlier generation; re-load to check.
							if cur := p.workers[home].plans.snap.Load(); cur != nil && cur.gen < g {
								t.Errorf("worker %d snapshot generation went backwards: %d after %d", home, cur.gen, g)
								stop.Store(true)
								return
							}
						}
						break
					}
				}
				if plan, _, ok := p.planFromSnapshot(k); ok && plan == nil {
					t.Errorf("planFromSnapshot returned ok with nil plan")
					stop.Store(true)
					return
				}
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 1500; i++ {
		k := keys[rng.Intn(nKeys)]
		err := p.DoWaitOn(context.Background(), p.homeFor(k), func(ctx context.Context, wk *Worker) {
			if _, _, err := wk.OwnerPlan(k, func(*schedcache.Cache) (*core.Plan, error) { return mk() }); err != nil {
				t.Errorf("OwnerPlan: %v", err)
			}
		})
		if err != nil {
			t.Fatalf("DoWaitOn: %v", err)
		}
	}
	stop.Store(true)
	wg.Wait()

	st := p.PlanCacheStats()
	if st.Evictions == 0 {
		t.Error("stress never evicted; shard capacity too large for the test to mean anything")
	}
	if st.Hits+st.Misses == 0 {
		t.Error("stress recorded no lookups")
	}
}

// TestPoolStatsConservationOnClose pins the graveyard bugfix: draining
// the pool must not lose per-worker cache counters — the merged totals
// after Close equal the totals before it, and hits+misses account for
// every owner lookup submitted. Chunked fan-outs racing the drain must
// leave the queued-units gauge balanced too: every unit enqueued is
// eventually picked up (or never admitted), so the gauge returns to zero.
func TestPoolStatsConservationOnClose(t *testing.T) {
	p := NewPool(3, 16, 6)
	mk := compilePlan(t)
	const ops = 300
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < ops; i++ {
		k := testKey(rng.Intn(20))
		if err := p.DoWaitOn(context.Background(), p.homeFor(k), func(ctx context.Context, wk *Worker) {
			_, _, _ = wk.OwnerPlan(k, func(*schedcache.Cache) (*core.Plan, error) { return mk() })
		}); err != nil {
			t.Fatalf("DoWaitOn: %v", err)
		}
	}
	// Race chunked submissions against the drain below: their units ride
	// the same accounting the counters do.
	var fanWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		fanWG.Add(1)
		go func() {
			defer fanWG.Done()
			for i := 0; i < 50; i++ {
				_ = p.fanOut(context.Background(), 3,
					func(int) int64 { return 7 },
					func(int) func(context.Context, *Worker) {
						return func(context.Context, *Worker) {}
					})
			}
		}()
	}
	before := p.PlanCacheStats()
	if got := before.Hits + before.Misses; got != ops {
		t.Fatalf("hits+misses = %d before close, want %d", got, ops)
	}
	p.Close()
	after := p.PlanCacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses || after.Evictions != before.Evictions {
		t.Fatalf("counters changed across Close: before %+v, after %+v", before, after)
	}
	// Closing again must stay idempotent and keep the totals.
	p.Close()
	if again := p.PlanCacheStats(); again != after {
		t.Fatalf("counters changed across second Close: %+v vs %+v", again, after)
	}
	fanWG.Wait()
	if units := p.unitsQueued.Load(); units != 0 {
		t.Fatalf("queued-units gauge = %d after drain, want 0", units)
	}
}

// TestWarmRunNoServeMutexContention pins the tentpole's "zero shared
// mutable state" claim with the runtime's own instrumentation: warmed
// /v1/run requests hammered concurrently must produce no mutex-contention
// samples with a serve-package frame. (Tracing and admission are off, as
// on a tuned production path; the legacy path fails this by design — its
// shared cache mutex shows up under the same load.)
func TestWarmRunNoServeMutexContention(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueSize: 64, Trace: TraceConfig{Disabled: true}})
	body := `{"workload":"atr","procs":4,"scheme":"GSS","seed":7}`
	// Warm the shard (and every worker's arena) before profiling.
	for i := 0; i < 8; i++ {
		if w := post(t, s, "/v1/run", body); w.Code != http.StatusOK {
			t.Fatalf("warmup status %d: %s", w.Code, w.Body.String())
		}
	}
	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if w := post(t, s, "/v1/run", body); w.Code != http.StatusOK {
					t.Errorf("status %d: %s", w.Code, w.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
		t.Fatalf("reading mutex profile: %v", err)
	}
	profile := buf.String()
	for _, line := range strings.Split(profile, "\n") {
		if strings.Contains(line, "internal/serve") {
			t.Fatalf("mutex contention inside internal/serve on the warmed run path:\n%s", profile)
		}
	}
}

// TestHeteroRunClassEnergy pins the per-class energy breakdown on the
// wire: heterogeneous runs carry class slices whose totals reproduce the
// aggregate energies, and homogeneous responses don't grow new fields.
func TestHeteroRunClassEnergy(t *testing.T) {
	s := newTestServer(t, Config{})
	relClose := func(a, b float64) bool {
		scale := 1.0
		if m := a; m < 0 {
			m = -m
		}
		if ab, bb := a, b; true {
			if ab < 0 {
				ab = -ab
			}
			if bb < 0 {
				bb = -bb
			}
			if ab > scale {
				scale = ab
			}
			if bb > scale {
				scale = bb
			}
		}
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= 1e-9*scale
	}

	w := post(t, s, "/v1/run", `{"workload":"atr","hetero":"biglittle","scheme":"GSS","seed":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var row RunRow
	decodeBody(t, w, &row)
	if len(row.ClassGrossJ) != 2 || len(row.ClassIdleJ) != 2 {
		t.Fatalf("class slices (%d,%d), want (2,2): %s", len(row.ClassGrossJ), len(row.ClassIdleJ), w.Body.String())
	}
	var gross, idle float64
	for c := range row.ClassGrossJ {
		gross += row.ClassGrossJ[c]
		idle += row.ClassIdleJ[c]
	}
	if want := row.ActiveJ + row.OverheadJ; !relClose(gross, want) {
		t.Errorf("Σ class_gross_j = %g, want active+overhead = %g", gross, want)
	}
	if !relClose(idle, row.IdleJ) {
		t.Errorf("Σ class_idle_j = %g, want idle_j = %g", idle, row.IdleJ)
	}

	// Streaming summary carries the per-class means.
	w = post(t, s, "/v1/run", `{"workload":"atr","hetero":"biglittle","scheme":"GSS","seed":3,"runs":4}`)
	if w.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", w.Code, w.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	var sum RunSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil || !sum.Summary {
		t.Fatalf("last line is not a summary: %q (%v)", lines[len(lines)-1], err)
	}
	if len(sum.MeanClassGrossJ) != 2 || len(sum.MeanClassIdleJ) != 2 {
		t.Fatalf("summary class means (%d,%d), want (2,2)", len(sum.MeanClassGrossJ), len(sum.MeanClassIdleJ))
	}

	// Homogeneous responses stay free of the new fields.
	w = post(t, s, "/v1/run", `{"workload":"atr","procs":2,"scheme":"GSS","seed":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("homogeneous status %d: %s", w.Code, w.Body.String())
	}
	if strings.Contains(w.Body.String(), "class_gross_j") {
		t.Errorf("homogeneous run grew class fields: %s", w.Body.String())
	}
}
