package serve

import (
	"net/http"
	"strings"
	"testing"
)

// TestPlanHetero exercises /v1/plan with heterogeneous platforms: reference
// names and spelled-out specs compile, the response carries the class and
// placement fields, and the content-addressed cache key collapses a
// reference name onto its spelled-out spec while keeping placements apart.
func TestPlanHetero(t *testing.T) {
	s := newTestServer(t, Config{})

	w := post(t, s, "/v1/plan", `{"workload":"atr","hetero":"biglittle"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp PlanResponse
	decodeBody(t, w, &resp)
	if resp.Platform != "big.LITTLE" || resp.Classes != 2 || resp.Procs != 4 {
		t.Errorf("hetero summary: %+v", resp)
	}
	if resp.Placement != "fastest-first" {
		t.Errorf("default placement = %q", resp.Placement)
	}
	if resp.Cached {
		t.Error("first hetero compile reported as cached")
	}

	// A different placement is a different plan: no cache hit, and the
	// energy-greedy canonical schedule is no faster than fastest-first.
	w = post(t, s, "/v1/plan", `{"workload":"atr","hetero":"biglittle","placement":"energy-greedy"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var eg PlanResponse
	decodeBody(t, w, &eg)
	if eg.Cached {
		t.Error("different placement served from cache")
	}
	if eg.Placement != "energy-greedy" || eg.CTWorst < resp.CTWorst {
		t.Errorf("energy-greedy plan: %+v (fastest-first CTWorst %g)", eg, resp.CTWorst)
	}

	// An inline spec naming the same reference platform must hit the
	// fastest-first entry: the key hashes the platform's content, not the
	// request's spelling.
	w = post(t, s, "/v1/plan", `{"workload":"atr","hetero":{"name":"big.LITTLE","classes":[
		{"name":"big","count":2,"platform":"transmeta"},
		{"name":"little","count":2,"platform":"transmeta"}]}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	// (The inline spec above differs from the reference big.LITTLE — the
	// little class's table is bespoke — so only an exact content match may
	// hit. Re-posting the reference name must.)
	w = post(t, s, "/v1/plan", `{"workload":"atr","hetero":"biglittle"}`)
	var again PlanResponse
	decodeBody(t, w, &again)
	if !again.Cached {
		t.Error("repeated reference-name request not served from cache")
	}
}

// TestRunAndCompareHetero smoke-tests the execution endpoints on a
// heterogeneous platform.
func TestRunAndCompareHetero(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/run",
		`{"workload":"atr","hetero":"accel","placement":"class-affinity","scheme":"AS","load":0.5,"seed":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("run status %d: %s", w.Code, w.Body.String())
	}
	var row RunRow
	decodeBody(t, w, &row)
	if !row.MetDeadline || row.EnergyJ <= 0 {
		t.Errorf("hetero run row: %+v", row)
	}

	w = post(t, s, "/v1/compare",
		`{"workload":"atr","hetero":"biglittle","schemes":["GSS","AS"],"runs":20,"load":0.6}`)
	if w.Code != http.StatusOK {
		t.Fatalf("compare status %d: %s", w.Code, w.Body.String())
	}
	var cmp CompareResponse
	decodeBody(t, w, &cmp)
	if len(cmp.Schemes) != 2 {
		t.Fatalf("compare schemes: %+v", cmp)
	}
	for _, sc := range cmp.Schemes {
		if sc.DeadlineMisses != 0 || sc.MeanNormEnergy <= 0 || sc.MeanNormEnergy > 1 {
			t.Errorf("%s: %+v", sc.Scheme, sc)
		}
	}
}

// TestHeteroSpecErrors pins the schema-level validation of the hetero
// fields.
func TestHeteroSpecErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"placement without hetero": `{"workload":"atr","placement":"energy-greedy"}`,
		"hetero plus platform":     `{"workload":"atr","hetero":"biglittle","platform":"xscale"}`,
		"hetero plus procs":        `{"workload":"atr","hetero":"biglittle","procs":2}`,
		"unknown reference":        `{"workload":"atr","hetero":"quantum"}`,
		"unknown placement":        `{"workload":"atr","hetero":"biglittle","placement":"round-robin"}`,
		"zero speed": `{"workload":"atr","hetero":{"name":"x","classes":[
			{"name":"a","count":1,"platform":"transmeta","speed":0}]}}`,
	} {
		w := post(t, s, "/v1/plan", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, w.Code, w.Body.String())
		}
	}

	// The per-request processor bound covers hetero platforms too.
	small := newTestServer(t, Config{MaxProcs: 3})
	w := post(t, small, "/v1/plan", `{"workload":"atr","hetero":"biglittle"}`)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "limit 3") {
		t.Errorf("4-proc platform past MaxProcs 3: status %d: %s", w.Code, w.Body.String())
	}
}
