package serve

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"andorsched/internal/andor"
	"andorsched/internal/cli"
	"andorsched/internal/power"
	"andorsched/internal/sim"
	"andorsched/internal/workload"
)

// AppSpec describes the application and system configuration of a request.
// Exactly one of Graph, Text and Workload selects the application; the
// rest of the fields select the platform model.
type AppSpec struct {
	// Graph is an AND/OR graph in the andor JSON schema (see
	// graphtool -json).
	Graph json.RawMessage `json:"graph,omitempty"`
	// Text is an application in the .andor text format.
	Text string `json:"text,omitempty"`
	// Workload names a built-in application: "atr", "synthetic" or
	// "random[:seed]". File paths are deliberately not accepted over the
	// network.
	Workload string `json:"workload,omitempty"`
	// Platform is the DVS platform spec: "transmeta" (default), "xscale"
	// or "synthetic:N:fminMHz:fmaxMHz".
	Platform string `json:"platform,omitempty"`
	// Procs is the processor count m (default 2).
	Procs int `json:"procs,omitempty"`
	// Hetero selects a heterogeneous platform instead of Platform/Procs:
	// either a JSON string naming a reference platform ("symmetric",
	// "biglittle", "accel") or a power.HeteroSpec object with per-class
	// speed/power tables. The spec carries its own processor counts, so
	// Hetero is mutually exclusive with Platform and Procs. The platform is
	// content-addressed into the plan-cache key.
	Hetero json.RawMessage `json:"hetero,omitempty"`
	// Placement names the placement policy compiled into a heterogeneous
	// plan: "fastest-first" (the default), "energy-greedy" or
	// "class-affinity". Only valid together with Hetero.
	Placement string `json:"placement,omitempty"`
	// Overheads overrides the paper's default power-management costs.
	Overheads *OverheadsSpec `json:"overheads,omitempty"`
}

// OverheadsSpec is the wire form of power.Overheads.
type OverheadsSpec struct {
	SpeedCompCycles float64 `json:"speed_comp_cycles"`
	SpeedChangeUs   float64 `json:"speed_change_us"`
	VoltSlewUsPerV  float64 `json:"volt_slew_us_per_volt"`
}

// RunRequest asks for one or more on-line executions of an application.
type RunRequest struct {
	AppSpec
	// Scheme is the power-management scheme name (default "GSS").
	Scheme string `json:"scheme,omitempty"`
	// Deadline is the absolute deadline in seconds; when 0, Load applies.
	Deadline float64 `json:"deadline,omitempty"`
	// Load is the system load CT_worst/D in (0,1] (default 0.5), used when
	// Deadline is 0.
	Load float64 `json:"load,omitempty"`
	// Seed drives actual execution times and OR branches (default 0). Run
	// i's stream is drawn from a master SplitMix64 sequence seeded here, so
	// a request is reproducible run by run from its seed alone.
	Seed uint64 `json:"seed,omitempty"`
	// Runs is the Monte-Carlo run count (default 1). Runs > 1 switches the
	// response to NDJSON streaming: one JSON row per run, then a summary.
	Runs int `json:"runs,omitempty"`
	// Chunks splits the Monte-Carlo loop across up to this many pool
	// workers (0 = automatic: large-run requests fan out across the pool,
	// small ones stay serial; 1 forces the serial path). Rows, their order
	// and the trailing summary are byte-identical for every chunk count:
	// per-run seeds are derived by an O(1) skip on the master stream and
	// summaries are reduced in run order. Capped at Runs and at 64.
	Chunks int `json:"chunks,omitempty"`
	// Worst makes every task consume its full WCET (no sampling).
	Worst bool `json:"worst,omitempty"`
}

// CompareRequest asks for a common-random-numbers comparison of several
// schemes on one application.
type CompareRequest struct {
	AppSpec
	// Schemes lists scheme names; empty, or the single keyword "all",
	// means all nine (the paper's six plus CLV, ASP and ORA).
	Schemes []string `json:"schemes,omitempty"`
	// Deadline / Load: as in RunRequest.
	Deadline float64 `json:"deadline,omitempty"`
	Load     float64 `json:"load,omitempty"`
	// Runs is the number of frames per scheme (default 200).
	Runs int `json:"runs,omitempty"`
	// Chunks splits the comparison's frames across up to this many pool
	// workers (0 = automatic, 1 = serial; capped at Runs and at 64). The
	// response is byte-identical for every chunk count: per-frame CRN
	// seeds are derived by an O(1) skip on the master stream and scheme
	// statistics are reduced in frame order.
	Chunks int `json:"chunks,omitempty"`
	// Seed drives the common random numbers (default 0).
	Seed uint64 `json:"seed,omitempty"`
}

// PlanResponse summarizes a compiled plan. For a heterogeneous plan,
// Platform carries the heterogeneous platform's name, Levels the largest
// per-class DVS table, and Classes/Placement are set.
type PlanResponse struct {
	App         string  `json:"app"`
	Nodes       int     `json:"nodes"`
	Sections    int     `json:"sections"`
	Paths       int     `json:"paths"`
	Procs       int     `json:"procs"`
	Platform    string  `json:"platform"`
	Levels      int     `json:"levels"`
	Classes     int     `json:"classes,omitempty"`
	Placement   string  `json:"placement,omitempty"`
	CTWorst     float64 `json:"ct_worst_s"`
	CTAvg       float64 `json:"ct_avg_s"`
	MinDeadline float64 `json:"min_deadline_s"`
	Cached      bool    `json:"cached"`
}

// RunRow is one execution's result row.
type RunRow struct {
	Run          int     `json:"run"`
	Scheme       string  `json:"scheme"`
	DeadlineS    float64 `json:"deadline_s"`
	FinishS      float64 `json:"finish_s"`
	MetDeadline  bool    `json:"met_deadline"`
	EnergyJ      float64 `json:"energy_j"`
	ActiveJ      float64 `json:"active_j"`
	OverheadJ    float64 `json:"overhead_j"`
	IdleJ        float64 `json:"idle_j"`
	SpeedChanges int     `json:"speed_changes"`
	// ClassGrossJ and ClassIdleJ break the energy down per processor
	// class on heterogeneous platforms, indexed like the platform's class
	// list (gross = active + overhead). Absent for homogeneous runs.
	ClassGrossJ []float64 `json:"class_gross_j,omitempty"`
	ClassIdleJ  []float64 `json:"class_idle_j,omitempty"`
	Path        []int     `json:"path,omitempty"`
}

// RunSummary trails a streamed multi-run response.
type RunSummary struct {
	Summary        bool    `json:"summary"`
	Runs           int     `json:"runs"`
	Scheme         string  `json:"scheme"`
	DeadlineS      float64 `json:"deadline_s"`
	MeanEnergyJ    float64 `json:"mean_energy_j"`
	MeanFinishS    float64 `json:"mean_finish_s"`
	MaxFinishS     float64 `json:"max_finish_s"`
	DeadlineMisses int     `json:"deadline_misses"`
	LSTViolations  int     `json:"lst_violations"`
	SpeedChanges   int     `json:"speed_changes"`
	// MeanClassGrossJ and MeanClassIdleJ are the per-class means of the
	// rows' class energy breakdowns (heterogeneous platforms only).
	MeanClassGrossJ []float64 `json:"mean_class_gross_j,omitempty"`
	MeanClassIdleJ  []float64 `json:"mean_class_idle_j,omitempty"`
}

// CompareResponse reports per-scheme energies normalized to NPM under
// common random numbers.
type CompareResponse struct {
	App        string          `json:"app"`
	Runs       int             `json:"runs"`
	DeadlineS  float64         `json:"deadline_s"`
	NPMEnergyJ float64         `json:"npm_mean_energy_j"`
	Schemes    []CompareScheme `json:"schemes"`
}

// CompareScheme is one scheme's aggregate in a CompareResponse.
type CompareScheme struct {
	Scheme           string  `json:"scheme"`
	MeanNormEnergy   float64 `json:"mean_norm_energy"`
	CI95             float64 `json:"ci95"`
	MeanSpeedChanges float64 `json:"mean_speed_changes"`
	DeadlineMisses   int     `json:"deadline_misses"`
}

// apiError carries an HTTP status with a client-facing message.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// maxGraphNodes bounds accepted applications; beyond this the off-line
// phase's cost stops being interactive and a request could occupy the
// compile path for seconds.
const maxGraphNodes = 20000

// resolvedApp is resolveApp's output: the validated graph, the cache key,
// and — for heterogeneous requests — the parsed platform and the placement
// policy compiled into the plan. hp == nil means identical processors.
type resolvedApp struct {
	g     *andor.Graph
	key   cacheKey
	hp    *power.Hetero
	place sim.PlacementPolicy
}

// resolveApp turns an AppSpec into a validated graph plus the cache-key
// ingredients. The graph digest comes from the canonical text rendering,
// so equivalent submissions in different encodings share a cache entry;
// heterogeneous platforms are content-addressed the same way (power.Key),
// so a reference name and its spelled-out spec share one entry too.
func (s *Server) resolveApp(spec *AppSpec) (resolvedApp, *apiError) {
	var ra resolvedApp
	key := &ra.key

	given := 0
	for _, ok := range []bool{len(spec.Graph) > 0, spec.Text != "", spec.Workload != ""} {
		if ok {
			given++
		}
	}
	if given == 0 {
		return ra, errf(http.StatusBadRequest, "one of graph, text or workload is required")
	}
	if given > 1 {
		return ra, errf(http.StatusBadRequest, "graph, text and workload are mutually exclusive")
	}

	var g *andor.Graph
	switch {
	case len(spec.Graph) > 0:
		g = andor.NewGraph("")
		if err := json.Unmarshal(spec.Graph, g); err != nil {
			return ra, errf(http.StatusBadRequest, "graph: %v", err)
		}
		if err := g.Validate(); err != nil {
			return ra, errf(http.StatusBadRequest, "graph: %v", err)
		}
	case spec.Text != "":
		var err error
		g, err = andor.ParseText(spec.Text)
		if err != nil {
			return ra, errf(http.StatusBadRequest, "text: %v", err)
		}
	default:
		var err error
		var digest [sha256.Size]byte
		g, digest, err = memoBuiltinWorkload(spec.Workload)
		if err != nil {
			return ra, errf(http.StatusBadRequest, "%v", err)
		}
		key.graph = digest
	}
	if g.Len() > maxGraphNodes {
		return ra, errf(http.StatusBadRequest, "graph has %d nodes, limit %d", g.Len(), maxGraphNodes)
	}
	ra.g = g

	if len(spec.Hetero) > 0 {
		if spec.Platform != "" || spec.Procs != 0 {
			return ra, errf(http.StatusBadRequest,
				"hetero is mutually exclusive with platform and procs (the hetero spec carries its own processor counts)")
		}
		hp, err := power.ParseHeteroSpec(spec.Hetero)
		if err != nil {
			return ra, errf(http.StatusBadRequest, "hetero: %v", err)
		}
		if hp.NumProcs() > s.cfg.MaxProcs {
			return ra, errf(http.StatusBadRequest, "hetero platform has %d processors, limit %d",
				hp.NumProcs(), s.cfg.MaxProcs)
		}
		place, err := cli.ParsePlacement(spec.Placement)
		if err != nil {
			return ra, errf(http.StatusBadRequest, "%v", err)
		}
		ra.hp = hp
		ra.place = place
		key.hetero = hp.Key()
		key.placement = place.Name()
	} else if spec.Placement != "" {
		return ra, errf(http.StatusBadRequest, "placement requires a hetero platform")
	}

	procs := spec.Procs
	if procs == 0 {
		procs = 2
	}
	if procs < 1 || procs > s.cfg.MaxProcs {
		return ra, errf(http.StatusBadRequest, "procs %d outside [1, %d]", procs, s.cfg.MaxProcs)
	}

	platform := spec.Platform
	if platform == "" {
		platform = "transmeta"
	}
	if ra.hp == nil {
		if _, err := parsePlatformMemo(platform); err != nil {
			return ra, errf(http.StatusBadRequest, "%v", err)
		}
		key.platform = platform
		key.procs = procs
	}

	ov := power.DefaultOverheads()
	if o := spec.Overheads; o != nil {
		if o.SpeedCompCycles < 0 || o.SpeedChangeUs < 0 || o.VoltSlewUsPerV < 0 {
			return ra, errf(http.StatusBadRequest, "overheads must be non-negative")
		}
		ov = power.Overheads{
			SpeedCompCycles: o.SpeedCompCycles,
			SpeedChangeTime: o.SpeedChangeUs * 1e-6,
			VoltSlewTime:    o.VoltSlewUsPerV * 1e-6,
		}
	}

	if key.graph == ([sha256.Size]byte{}) {
		key.graph = graphDigest(g)
	}
	key.ov = ov
	return ra, nil
}

// builtinMemo caches the graph and content digest of the fixed builtin
// workloads. Building the ATR graph and hashing its canonical rendering
// costs ~1000 allocations; doing that per request would dominate the
// steady-state /v1/run path, whose simulation is allocation-free. Graphs
// here are shared across requests, which is sound for the same reason
// cached Plans are: nothing mutates a graph after construction.
// The memo is an atomic.Pointer to an immutable map, republished
// copy-on-write on insert: the name space is tiny and fixed, so the copy
// happens a bounded number of times per process, after which the warm
// request path reads it without a lock. Racing inserters may each publish
// a copy; both carry equivalent entries, so whichever lands last wins
// harmlessly.
var builtinMemo atomic.Pointer[map[string]memoEntry]

type memoEntry struct {
	g      *andor.Graph
	digest [sha256.Size]byte
}

// memoBuiltinWorkload resolves a builtin workload name, memoizing the
// fixed (parameterless) ones. Seeded random workloads are rebuilt per
// request: their name space is unbounded, and memoizing them would let a
// client grow the map without limit.
func memoBuiltinWorkload(name string) (*andor.Graph, [sha256.Size]byte, error) {
	memoizable := name == "atr" || name == "synthetic"
	if memoizable {
		if m := builtinMemo.Load(); m != nil {
			if e, ok := (*m)[name]; ok {
				return e.g, e.digest, nil
			}
		}
	}
	g, err := builtinWorkload(name)
	if err != nil {
		return nil, [sha256.Size]byte{}, err
	}
	digest := graphDigest(g)
	if memoizable {
		next := make(map[string]memoEntry, 2)
		if m := builtinMemo.Load(); m != nil {
			for k, v := range *m {
				next[k] = v
			}
		}
		next[name] = memoEntry{g: g, digest: digest}
		builtinMemo.Store(&next)
	}
	return g, digest, nil
}

// platformMemo caches the parsed named platforms. The named space is fixed
// ("transmeta", "xscale"), so the map cannot grow without bound; synthetic
// specs are parameterized by client strings and are parsed per request.
// Platforms are immutable after construction (cached Plans already share
// them), so sharing one instance across requests is sound.
// Copy-on-write like builtinMemo: lock-free reads on the warm path.
var platformMemo atomic.Pointer[map[string]*power.Platform]

// parsePlatformMemo resolves a platform spec, memoizing the named ones.
func parsePlatformMemo(spec string) (*power.Platform, error) {
	memoizable := spec == "transmeta" || spec == "xscale"
	if memoizable {
		if m := platformMemo.Load(); m != nil {
			if p, ok := (*m)[spec]; ok {
				return p, nil
			}
		}
	}
	p, err := cli.ParsePlatform(spec)
	if err != nil {
		return nil, err
	}
	if memoizable {
		next := make(map[string]*power.Platform, 2)
		if m := platformMemo.Load(); m != nil {
			for k, v := range *m {
				next[k] = v
			}
		}
		next[spec] = p
		platformMemo.Store(&next)
	}
	return p, nil
}

// builtinWorkload resolves the network-safe subset of workload names: the
// named applications only, never file paths.
func builtinWorkload(name string) (*andor.Graph, error) {
	switch {
	case name == "atr":
		return workload.ATR(workload.DefaultATRConfig()), nil
	case name == "synthetic":
		return workload.Synthetic(), nil
	case name == "random" || strings.HasPrefix(name, "random:"):
		seed := uint64(1)
		if rest, ok := strings.CutPrefix(name, "random:"); ok && rest != "" {
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("serve: bad random seed %q", rest)
			}
			seed = v
		}
		return workload.Random(seed, andor.DefaultRandomOpts()), nil
	}
	return nil, fmt.Errorf("serve: unknown workload %q (want atr, synthetic or random[:seed])", name)
}

// resolveDeadline applies the deadline/load convention shared by run and
// compare requests: an explicit deadline wins; otherwise load (default
// 0.5) stretches the plan's canonical worst case.
func resolveDeadline(ctWorst, deadline, load float64) (float64, *apiError) {
	if deadline != 0 {
		if deadline < 0 {
			return 0, errf(http.StatusBadRequest, "negative deadline %g", deadline)
		}
		if ctWorst > deadline {
			return 0, errf(http.StatusBadRequest,
				"infeasible deadline %gs < canonical worst case %gs", deadline, ctWorst)
		}
		return deadline, nil
	}
	if load == 0 {
		load = 0.5
	}
	if load < 0 || load > 1 {
		return 0, errf(http.StatusBadRequest, "load %g outside (0, 1]", load)
	}
	return ctWorst / load, nil
}
