package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"

	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/obs"
	"andorsched/internal/stats"
)

// Intra-request Monte-Carlo parallelism: a large-run /v1/run (or frame-
// heavy /v1/compare) is split into per-worker chunks of contiguous run
// ranges, executed as ordinary pool jobs (one arena per chunk, by
// construction: each chunk job owns its worker's state for its duration),
// then merged back in run order.
//
// Two invariants make the split invisible to clients:
//
//  1. Chunk-independent seeding. The serial loop draws run i's seed as the
//     i-th output of a master SplitMix64 stream. A chunk covering runs
//     [lo, hi) reproduces that exact subsequence with Reseed(seed) +
//     Skip(lo) — an O(1) state jump — so every run's random stream is
//     the same no matter how the request was chunked.
//  2. Run-order reduction. Chunks buffer per-run rows; the handler walks
//     them in run order, feeding the same core.MCStats reducer the serial
//     path uses. The floating-point operation sequence is then exactly
//     the serial one, so summaries are bit-identical — not merely close —
//     for every chunk count (differential- and fuzz-tested).
//
// Failure is all-or-nothing: any chunk error (queue rejection, context
// expiry, simulation failure) fails the whole request before a status
// line is written — a chunked stream never ends in a partial summary.

const (
	// maxRunChunks caps the explicit chunks field. It also bounds the
	// trace-span fan-out a single request can ask for (each chunk records
	// queue, exec and exec.mc spans; overflow beyond the span array is
	// counted, not lost silently — see obs.TraceRec).
	maxRunChunks = 64
	// minRunsPerChunk is the auto-chunking floor: below ~64 runs a chunk's
	// pool round trip (~10µs) stops being negligible next to its
	// simulation time (~2.4µs/run), so requests under two floors' worth
	// of runs stay serial.
	minRunsPerChunk = 64
)

// chunkCount decides how many chunks a runs-sized request splits into.
// requested > 0 is honored (capped at runs and maxRunChunks); 0 selects
// automatically: one chunk per worker, but never chunks smaller than
// minPerChunk and never more chunks than workers.
func chunkCount(runs, workers, requested, minPerChunk int) int {
	if requested > 0 {
		if requested > runs {
			requested = runs
		}
		if requested > maxRunChunks {
			requested = maxRunChunks
		}
		return requested
	}
	if workers <= 1 || runs < 2*minPerChunk {
		return 1
	}
	n := runs / minPerChunk
	if n > workers {
		n = workers
	}
	if n > maxRunChunks {
		n = maxRunChunks
	}
	return n
}

// chunkBounds returns chunk c's half-open run range under an even split of
// runs into nchunks.
func chunkBounds(runs, nchunks, c int) (lo, hi int) {
	return c * runs / nchunks, (c + 1) * runs / nchunks
}

// runChunkBuf holds one chunk's buffered per-run results. rows reuses its
// entries across requests (fillRow rewrites every field and re-slices the
// per-row slices), so a pooled buffer's steady-state cost is the fills,
// not allocations. lst carries LSTViolations, which RunRow does not (the
// wire format never exposed per-run LST counts and the summary needs
// them).
type runChunkBuf struct {
	rows []RunRow
	lst  []int
	err  error
}

// runChunkBufMaxRetained bounds the row capacity a buffer may take back
// into the pool; one-off giant requests should not pin megabytes.
const runChunkBufMaxRetained = 4096

var runChunkPool = sync.Pool{New: func() any { return new(runChunkBuf) }}

// prepare sizes the buffer for n runs and clears per-request state.
func (b *runChunkBuf) prepare(n int) {
	if cap(b.rows) >= n {
		b.rows = b.rows[:n]
	} else {
		b.rows = append(b.rows[:cap(b.rows)], make([]RunRow, n-cap(b.rows))...)
	}
	if cap(b.lst) >= n {
		b.lst = b.lst[:n]
	} else {
		b.lst = make([]int, n)
	}
	b.err = nil
}

func putRunChunkBuf(b *runChunkBuf) {
	if cap(b.rows) <= runChunkBufMaxRetained {
		runChunkPool.Put(b)
	}
}

// mcChunk builds the pool-job function for runs [lo, hi) of a chunked
// Monte-Carlo request. It mirrors monteCarlo's loop exactly — same seeding
// convention, same RunInto, same fillRow — minus the streaming callback:
// rows land in buf for the handler to merge. One exec.mc span per chunk
// records its completed-run count; chunks record concurrently into the
// request's trace, which the span array's atomic slot reservation permits.
func mcChunk(plan *core.Plan, scheme core.Scheme, deadline float64, worst bool,
	seed uint64, lo, hi int, buf *runChunkBuf) func(context.Context, *Worker) {
	return func(ctx context.Context, wk *Worker) {
		done := 0
		if rec := obs.TraceFromContext(ctx); rec != nil {
			t0 := rec.SinceStart()
			defer func() { rec.RecordOffsetN(PhaseExecMC, t0, int64(done)) }()
		}
		var master exectime.Source
		master.Reseed(seed)
		master.Skip(uint64(lo)) // run lo's seed is the lo-th master draw
		cfg := core.RunConfig{Scheme: scheme, Deadline: deadline}
		if worst {
			cfg.WorstCase = true
		} else {
			cfg.Sampler = wk.Sampler
		}
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				buf.err = err
				return
			}
			wk.Src.Reseed(master.Uint64())
			if err := plan.RunInto(cfg, wk.Arena, &wk.Res); err != nil {
				buf.err = err
				return
			}
			fillRow(&buf.rows[i-lo], i, &wk.Res)
			buf.lst[i-lo] = wk.Res.LSTViolations
			done++
		}
	}
}

// handleRunChunked is the fan-out arm of handleRun for runs > 1 and
// nchunks > 1: resolve the plan once on the handler goroutine, execute
// nchunks chunk jobs across the pool, then stream the buffered rows in run
// order with the summary reduced exactly as the serial path would. The
// response bytes are identical to the serial path's for any chunk count.
//
// Unlike the serial path — which commits its 200 before simulating and
// reports late failures as an {"error"} line — every chunk has completed
// before the first byte is written, so queue rejection, context expiry and
// simulation failure all still produce clean status codes here. The cost
// is buffering ~runs rows (bounded by MaxRuns) and losing mid-stream
// client-abandonment detection: an admitted chunked request runs to
// completion even if the client leaves, and the encode loop simply stops.
func (s *Server) handleRunChunked(w http.ResponseWriter, r *http.Request, req *RunRequest,
	scheme core.Scheme, runs, nchunks int) {
	plan, _, apiErr := s.planFor(r.Context(), &req.AppSpec)
	if apiErr != nil {
		s.writeError(w, apiErr.status, apiErr.msg)
		return
	}
	deadline, apiErr := resolveDeadline(plan.CTWorst, req.Deadline, req.Load)
	if apiErr != nil {
		s.writeError(w, apiErr.status, apiErr.msg)
		return
	}

	// One handler-side exec span brackets the whole fan-out — buffer
	// preparation, chunk admission and the wait for the last chunk — so
	// the trace stays gap-free; the chunks' own queue/exec/exec.mc spans
	// nest inside it and show where the time actually went.
	rec := obs.TraceFromContext(r.Context())
	tFan := rec.Now()

	bufs := make([]*runChunkBuf, nchunks)
	for c := range bufs {
		lo, hi := chunkBounds(runs, nchunks, c)
		bufs[c] = runChunkPool.Get().(*runChunkBuf)
		bufs[c].prepare(hi - lo)
	}
	defer func() {
		for _, b := range bufs {
			putRunChunkBuf(b)
		}
	}()

	err := s.pool.fanOut(r.Context(), nchunks,
		func(c int) int64 {
			lo, hi := chunkBounds(runs, nchunks, c)
			return int64(hi - lo)
		},
		func(c int) func(context.Context, *Worker) {
			lo, hi := chunkBounds(runs, nchunks, c)
			return mcChunk(plan, scheme, deadline, req.Worst, req.Seed, lo, hi, bufs[c])
		})
	rec.RecordDetail(PhaseExec, tFan, "fan-out")
	if err != nil {
		s.checkPoolErr(w, err)
		return
	}
	for _, b := range bufs {
		if b.err != nil {
			if r.Context().Err() != nil {
				s.writeError(w, http.StatusServiceUnavailable, "request timed out mid-run")
			} else {
				s.writeError(w, http.StatusInternalServerError, b.err.Error())
			}
			return
		}
	}
	s.runs.Add(int64(runs))

	t0 := rec.SinceStart()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	var mc core.MCStats
	cfg := core.RunConfig{Scheme: scheme, Deadline: deadline}
	emitted := 0
	for _, b := range bufs {
		for i := range b.rows {
			row := &b.rows[i]
			// Same Add sequence, in the same global run order, as the serial
			// loop's Observe calls — the summary is bit-identical by
			// construction.
			mc.Add(row.FinishS, row.EnergyJ, row.ClassGrossJ, row.ClassIdleJ,
				row.SpeedChanges, b.lst[i], row.MetDeadline)
			if enc.Encode(row) != nil {
				return // client went away; a stream without a summary is incomplete
			}
			emitted++
			if flusher != nil && emitted%256 == 0 {
				flusher.Flush()
			}
		}
	}
	sum := mcSummary(&mc, cfg)
	_ = enc.Encode(&sum)
	rec.RecordOffset(PhaseEncode, t0)
	if flusher != nil {
		flusher.Flush()
	}
}

// cmpChunkBuf buffers one compare chunk's per-frame samples: the NPM
// baseline energy per frame, and frame-major per-scheme normalized energy,
// speed-change count and miss flag. The handler reduces them in frame
// order so the response matches the serial path byte for byte.
type cmpChunkBuf struct {
	base   []float64 // [frame]
	norm   []float64 // [frame*nschemes + scheme]
	chg    []int     // same layout
	missed []bool    // same layout
	err    error
}

var cmpChunkPool = sync.Pool{New: func() any { return new(cmpChunkBuf) }}

func (b *cmpChunkBuf) prepare(frames, nschemes int) {
	n := frames * nschemes
	grow := func(s []float64, n int) []float64 {
		if cap(s) >= n {
			return s[:n]
		}
		return make([]float64, n)
	}
	b.base = grow(b.base, frames)
	b.norm = grow(b.norm, n)
	if cap(b.chg) >= n {
		b.chg = b.chg[:n]
	} else {
		b.chg = make([]int, n)
	}
	if cap(b.missed) >= n {
		b.missed = b.missed[:n]
	} else {
		b.missed = make([]bool, n)
	}
	b.err = nil
}

func putCmpChunkBuf(b *cmpChunkBuf) {
	if cap(b.norm) <= runChunkBufMaxRetained {
		cmpChunkPool.Put(b)
	}
}

// cmpChunk builds the pool job for frames [lo, hi) of a chunked compare:
// the serial CRN loop over a skipped master stream, sampling into buf.
func cmpChunk(plan *core.Plan, schemes []core.Scheme, deadline float64,
	seed uint64, lo, hi int, buf *cmpChunkBuf) func(context.Context, *Worker) {
	return func(ctx context.Context, wk *Worker) {
		var master exectime.Source
		master.Reseed(seed)
		master.Skip(uint64(lo)) // frame lo's CRN seed is the lo-th master draw
		for f := lo; f < hi; f++ {
			if err := ctx.Err(); err != nil {
				buf.err = err
				return
			}
			runSeed := master.Uint64()
			// Common random numbers: every scheme replays the same actual
			// times and branch outcomes.
			wk.Src.Reseed(runSeed)
			if err := plan.RunInto(core.RunConfig{
				Scheme: core.NPM, Deadline: deadline, Sampler: wk.Sampler,
			}, wk.Arena, &wk.Base); err != nil {
				buf.err = err
				return
			}
			base := wk.Base.Energy()
			buf.base[f-lo] = base
			for si, sc := range schemes {
				wk.Src.Reseed(runSeed)
				if err := plan.RunInto(core.RunConfig{
					Scheme: sc, Deadline: deadline, Sampler: wk.Sampler,
				}, wk.Arena, &wk.Res); err != nil {
					buf.err = err
					return
				}
				k := (f-lo)*len(schemes) + si
				buf.norm[k] = wk.Res.Energy() / base
				buf.chg[k] = wk.Res.SpeedChanges
				buf.missed[k] = !wk.Res.MetDeadline
			}
		}
	}
}

// handleCompareChunked fans a compare's frames out across the pool and
// reduces the buffered samples in frame order — the same accumulator
// sequence as the serial loop, so the response is byte-identical for any
// chunk count.
func (s *Server) handleCompareChunked(w http.ResponseWriter, r *http.Request, req *CompareRequest,
	schemes []core.Scheme, plan *core.Plan, deadline float64, runs, nchunks int) {
	// Same gap-free bracketing as handleRunChunked: one exec span from
	// buffer prep to the last chunk's completion.
	rec := obs.TraceFromContext(r.Context())
	tFan := rec.Now()
	bufs := make([]*cmpChunkBuf, nchunks)
	for c := range bufs {
		lo, hi := chunkBounds(runs, nchunks, c)
		bufs[c] = cmpChunkPool.Get().(*cmpChunkBuf)
		bufs[c].prepare(hi-lo, len(schemes))
	}
	defer func() {
		for _, b := range bufs {
			putCmpChunkBuf(b)
		}
	}()

	perFrame := int64(len(schemes) + 1)
	err := s.pool.fanOut(r.Context(), nchunks,
		func(c int) int64 {
			lo, hi := chunkBounds(runs, nchunks, c)
			return int64(hi-lo) * perFrame
		},
		func(c int) func(context.Context, *Worker) {
			lo, hi := chunkBounds(runs, nchunks, c)
			return cmpChunk(plan, schemes, deadline, req.Seed, lo, hi, bufs[c])
		})
	rec.RecordDetail(PhaseExec, tFan, "fan-out")
	if !s.checkPoolErr(w, err) {
		return
	}
	for _, b := range bufs {
		if b.err != nil {
			if r.Context().Err() != nil {
				s.writeError(w, http.StatusServiceUnavailable, "request timed out mid-run")
			} else {
				s.writeError(w, http.StatusInternalServerError, b.err.Error())
			}
			return
		}
	}
	s.runs.Add(int64(runs) * perFrame)

	// Frame-order reduction, mirroring the serial loop's accumulator
	// sequence exactly: baseline, then each scheme's norm/chg/miss.
	norm := make([]stats.Acc, len(schemes))
	chg := make([]stats.Acc, len(schemes))
	missed := make([]int, len(schemes))
	var npmEnergy stats.Acc
	for _, b := range bufs {
		frames := len(b.base)
		for f := 0; f < frames; f++ {
			npmEnergy.Add(b.base[f])
			for si := range schemes {
				k := f*len(schemes) + si
				norm[si].Add(b.norm[k])
				chg[si].Add(float64(b.chg[k]))
				if b.missed[k] {
					missed[si]++
				}
			}
		}
	}
	resp := CompareResponse{
		App: plan.Graph.Name, Runs: runs, DeadlineS: deadline,
		NPMEnergyJ: npmEnergy.Mean(),
	}
	for si, sc := range schemes {
		resp.Schemes = append(resp.Schemes, CompareScheme{
			Scheme:           sc.String(),
			MeanNormEnergy:   norm[si].Mean(),
			CI95:             norm[si].CI95(),
			MeanSpeedChanges: chg[si].Mean(),
			DeadlineMisses:   missed[si],
		})
	}
	s.writeJSONTraced(w, r, http.StatusOK, resp)
}
