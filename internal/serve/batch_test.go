package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"andorsched/internal/serve/tenant"
)

// parseBatchBody splits a batch NDJSON response into item lines and the
// trailing summary, failing the test when the summary is missing.
func parseBatchBody(t *testing.T, body string) ([]BatchItemResult, BatchSummary) {
	t.Helper()
	var items []BatchItemResult
	var sum BatchSummary
	sawSummary := false
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if sawSummary {
			t.Fatalf("data after the summary line: %q", line)
		}
		if strings.Contains(line, `"summary":true`) {
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatalf("bad summary line %q: %v", line, err)
			}
			sawSummary = true
			continue
		}
		var it BatchItemResult
		if err := json.Unmarshal([]byte(line), &it); err != nil {
			t.Fatalf("bad item line %q: %v", line, err)
		}
		items = append(items, it)
	}
	if !sawSummary {
		t.Fatalf("batch response missing its trailing summary:\n%s", body)
	}
	return items, sum
}

func TestBatchEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/batch", `{"items":[
		{"workload":"atr","scheme":"GSS","seed":7,"runs":5,"load":0.5},
		{"workload":"atr","scheme":"AS","seed":8,"runs":3,"load":0.5},
		{"workload":"synthetic","scheme":"SS1","seed":9,"load":0.5}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("content type %q, want NDJSON", ct)
	}
	items, sum := parseBatchBody(t, w.Body.String())
	if len(items) != 3 {
		t.Fatalf("%d item lines, want 3", len(items))
	}
	for i, it := range items {
		if it.Item != i {
			t.Errorf("line %d has item index %d; lines must be in item order", i, it.Item)
		}
		if it.Error != "" {
			t.Errorf("item %d failed: %s", i, it.Error)
		}
		if it.MeanEnergyJ <= 0 || it.MeanFinishS <= 0 {
			t.Errorf("item %d has implausible summary: %+v", i, it)
		}
	}
	if items[0].Runs != 5 || items[1].Runs != 3 || items[2].Runs != 1 {
		t.Errorf("run counts %d/%d/%d, want 5/3/1", items[0].Runs, items[1].Runs, items[2].Runs)
	}
	want := BatchSummary{Summary: true, Items: 3, OK: 3, Errors: 0, Runs: 9}
	if sum != want {
		t.Errorf("summary %+v, want %+v", sum, want)
	}
}

// TestBatchMatchesRunEndpoint pins the contract that a batch item is
// exactly a /v1/run request: same workload, scheme, seed and runs must
// produce the identical summary through either endpoint.
func TestBatchMatchesRunEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})

	w := post(t, s, "/v1/run", `{"workload":"atr","scheme":"GSS","seed":41,"runs":6,"load":0.5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("run status %d: %s", w.Code, w.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	var runSum RunSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &runSum); err != nil {
		t.Fatalf("run summary: %v", err)
	}

	w = post(t, s, "/v1/batch", `{"items":[{"workload":"atr","scheme":"GSS","seed":41,"runs":6,"load":0.5}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	items, _ := parseBatchBody(t, w.Body.String())
	if len(items) != 1 {
		t.Fatalf("%d items, want 1", len(items))
	}
	it := items[0]
	if it.Runs != runSum.Runs || it.MeanEnergyJ != runSum.MeanEnergyJ ||
		it.MeanFinishS != runSum.MeanFinishS || it.MaxFinishS != runSum.MaxFinishS ||
		it.DeadlineMisses != runSum.DeadlineMisses || it.SpeedChanges != runSum.SpeedChanges {
		t.Errorf("batch item %+v diverges from /v1/run summary %+v", it, runSum)
	}
}

// TestBatchItemErrorsAreIsolated: a defective item yields its own error
// line; the remaining items still execute and the response completes.
func TestBatchItemErrorsAreIsolated(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/batch", `{"items":[
		{"workload":"atr","scheme":"GSS","load":0.5},
		{"workload":"atr","scheme":"NOPE"},
		{"workload":"nonexistent","scheme":"GSS"},
		{"workload":"atr","scheme":"AS","deadline":1e-9}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	items, sum := parseBatchBody(t, w.Body.String())
	if len(items) != 4 {
		t.Fatalf("%d item lines, want 4", len(items))
	}
	if items[0].Error != "" {
		t.Errorf("healthy item failed: %s", items[0].Error)
	}
	for i := 1; i <= 3; i++ {
		if items[i].Error == "" {
			t.Errorf("defective item %d reported no error: %+v", i, items[i])
		}
	}
	if sum.OK != 1 || sum.Errors != 3 || sum.Items != 4 {
		t.Errorf("summary %+v, want 1 ok / 3 errors / 4 items", sum)
	}
}

func TestBatchValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxRuns: 50, MaxBatchItems: 4})
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"no items", `{"items":[]}`, http.StatusBadRequest},
		{"missing items", `{}`, http.StatusBadRequest},
		{"too many items", `{"items":[{"workload":"atr"},{"workload":"atr"},{"workload":"atr"},{"workload":"atr"},{"workload":"atr"}]}`, http.StatusBadRequest},
		{"item runs over cap", `{"items":[{"workload":"atr","runs":51}]}`, http.StatusBadRequest},
		{"negative runs", `{"items":[{"workload":"atr","runs":-2}]}`, http.StatusBadRequest},
		{"total runs over cap", `{"items":[{"workload":"atr","runs":30},{"workload":"atr","runs":30}]}`, http.StatusBadRequest},
		{"trailing garbage", `{"items":[{"workload":"atr"}]} extra`, http.StatusBadRequest},
		{"not json", `nope`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/batch", tc.body)
			if w.Code != tc.wantStatus {
				t.Errorf("status %d, want %d (%s)", w.Code, tc.wantStatus, w.Body.String())
			}
		})
	}
}

// TestTenantRateLimit429 drives one tenant past its bucket and checks the
// full rejection contract: 429, JSON error body, Retry-After parsing as a
// positive integer that matches the bucket's refill schedule, and
// isolation of other tenants.
func TestTenantRateLimit429(t *testing.T) {
	s := newTestServer(t, Config{Tenant: tenant.Config{
		Enabled:        true,
		RequestsPerSec: 0.5, // refill schedule of 2s ⇒ Retry-After must be 2
		Burst:          2,
	}})
	body := `{"workload":"atr","scheme":"GSS","load":0.5}`
	doAs := func(key string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body))
		req.Header.Set("X-API-Key", key)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w
	}
	for i := 0; i < 2; i++ {
		if w := doAs("alpha"); w.Code != http.StatusOK {
			t.Fatalf("request %d within burst: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	w := doAs("alpha")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", w.Code)
	}
	ra := w.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs <= 0 {
		t.Fatalf("Retry-After %q does not parse as a positive integer", ra)
	}
	if secs != 2 {
		t.Errorf("Retry-After %d, want 2 (one token at 0.5/s)", secs)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("429 body %q is not a JSON error", w.Body.String())
	}
	// A different API key has its own untouched bucket.
	if w := doAs("beta"); w.Code != http.StatusOK {
		t.Errorf("other tenant rejected: status %d", w.Code)
	}
	// The metrics endpoint exports the per-tenant counters.
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mw := httptest.NewRecorder()
	s.Handler().ServeHTTP(mw, req)
	for _, want := range []string{
		"serve_tenant_key_alpha_admitted 2",
		"serve_tenant_key_alpha_rejected 1",
		"serve_tenant_key_beta_admitted 1",
		"serve_tenant_rejections 1",
	} {
		if !strings.Contains(mw.Body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTenantRunBudget: the run bucket charges Monte-Carlo runs at
// admission, and an ask beyond the whole bucket is a 400, not a retry
// loop.
func TestTenantRunBudget(t *testing.T) {
	s := newTestServer(t, Config{Tenant: tenant.Config{
		Enabled:        true,
		RequestsPerSec: 1000,
		RunsPerSec:     100,
		RunBurst:       40,
	}})
	do := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body))
		req.Header.Set("X-API-Key", "gamma")
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w
	}
	if w := do(`{"workload":"atr","runs":40,"load":0.5}`); w.Code != http.StatusOK {
		t.Fatalf("within budget: status %d: %s", w.Code, w.Body.String())
	}
	w := do(`{"workload":"atr","runs":10,"load":0.5}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("drained budget: status %d, want 429", w.Code)
	}
	if secs, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || secs <= 0 {
		t.Fatalf("Retry-After %q not a positive integer", w.Header().Get("Retry-After"))
	}
	w = do(`{"workload":"atr","runs":41,"load":0.5}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("never-satisfiable ask: status %d, want 400", w.Code)
	}
}

// TestTenantBatchAdmission: a batch is one admission decision charging
// the sum of its items' runs.
func TestTenantBatchAdmission(t *testing.T) {
	s := newTestServer(t, Config{Tenant: tenant.Config{
		Enabled:        true,
		RequestsPerSec: 1000,
		RunsPerSec:     100,
		RunBurst:       20,
	}})
	do := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body))
		req.Header.Set("X-API-Key", "delta")
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w
	}
	if w := do(`{"items":[{"workload":"atr","runs":8,"load":0.5},{"workload":"atr","runs":8,"load":0.5}]}`); w.Code != http.StatusOK {
		t.Fatalf("batch within budget: status %d: %s", w.Code, w.Body.String())
	}
	// Budget now holds 4 run tokens: a 2×4-run batch must be rejected as a
	// whole, with a Retry-After covering the 4-token deficit.
	w := do(`{"items":[{"workload":"atr","runs":4,"load":0.5},{"workload":"atr","runs":4,"load":0.5}]}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget batch: status %d, want 429: %s", w.Code, w.Body.String())
	}
	if secs, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || secs <= 0 {
		t.Fatalf("Retry-After %q not a positive integer", w.Header().Get("Retry-After"))
	}
}

// FuzzBatchEndpoint drives arbitrary bytes through the full /v1/batch
// decode path — middleware, size limit, JSON decode, per-item validation,
// admission, execution, NDJSON encoding — and checks the server never
// panics and never answers outside its documented status set.
func FuzzBatchEndpoint(f *testing.F) {
	s := New(Config{
		Workers:        2,
		QueueSize:      8,
		MaxBodyBytes:   1 << 18,
		MaxRuns:        8,
		MaxBatchItems:  4,
		RequestTimeout: 5 * time.Second,
	})
	defer s.Close()

	f.Add([]byte(`{"items":[{"workload":"atr","scheme":"GSS","runs":2,"load":0.5}]}`))
	f.Add([]byte(`{"items":[{"workload":"atr"},{"workload":"synthetic","scheme":"AS","seed":3}]}`))
	f.Add([]byte(`{"items":[{"text":"task A 1ms 1ms"}]}`))
	f.Add([]byte(`{"items":[{"workload":"atr","runs":1000000}]}`))
	f.Add([]byte(`{"items":[]}`))
	f.Add([]byte(`{"items":[{},{},{},{},{}]}`))
	f.Add([]byte(`{"items":[{"workload":"atr"}]} trailing`))
	f.Add([]byte(`{"items":`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Add([]byte(`[{"workload":"atr"}]`))
	f.Add([]byte(`{"items":[{"graph":{"name":"g","nodes":[{"name":"a","kind":"compute","wcet":1,"acet":0.5}],"edges":[]}}]}`))
	f.Add([]byte(`{"items":[{"workload":"random:77","scheme":"SS2","runs":2}]}`))
	f.Add([]byte(`{"items":[{"workload":"atr","deadline":-5}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(string(data)))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if n, _ := s.Metrics().Snapshot().Counter(MetricPanics); n != 0 {
			t.Fatalf("handler panicked on %d-byte input %q", len(data), truncate(data))
		}
		if !fuzzStatuses[w.Code] {
			t.Fatalf("status %d on input %q; body %s", w.Code, truncate(data), w.Body.String())
		}
		if w.Code != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("status %d with non-JSON error body %q", w.Code, w.Body.String())
			}
			return
		}
		// A 200 batch is NDJSON whose last line is the completeness summary.
		lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
		var sum BatchSummary
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil || !sum.Summary {
			t.Fatalf("200 batch without summary line; body %s", w.Body.String())
		}
		if sum.Items != len(lines)-1 {
			t.Fatalf("summary items %d but %d item lines", sum.Items, len(lines)-1)
		}
	})
}

// TestBatchConcurrentTenants exercises batch + tenant admission together
// under -race: several tenants submit batches concurrently; every
// response is either a complete 200 or a clean 429.
func TestBatchConcurrentTenants(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueSize: 32, Tenant: tenant.Config{
		Enabled:        true,
		RequestsPerSec: 50,
		Burst:          10,
	}})
	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			key := fmt.Sprintf("tenant-%d", g%3)
			for i := 0; i < 5; i++ {
				body := fmt.Sprintf(`{"items":[{"workload":"atr","scheme":"GSS","seed":%d,"load":0.5},{"workload":"atr","scheme":"AS","seed":%d,"load":0.5}]}`, i, i+100)
				req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body))
				req.Header.Set("X-API-Key", key)
				w := httptest.NewRecorder()
				s.Handler().ServeHTTP(w, req)
				switch w.Code {
				case http.StatusOK:
					if !strings.Contains(w.Body.String(), `"summary":true`) {
						errs <- fmt.Errorf("200 without summary: %s", w.Body.String())
						return
					}
				case http.StatusTooManyRequests:
					if _, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil {
						errs <- fmt.Errorf("429 with bad Retry-After %q", w.Header().Get("Retry-After"))
						return
					}
				default:
					errs <- fmt.Errorf("unexpected status %d: %s", w.Code, w.Body.String())
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}
