package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"andorsched/internal/loadgen"
	"andorsched/internal/serve/tenant"
)

// startE2E binds a real listener and serves on it, returning the base URL
// and the Serve error channel.
func startE2E(t *testing.T, cfg Config) (*Server, string, chan error) {
	t.Helper()
	s := New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()
	return s, "http://" + l.Addr().String(), errc
}

// e2eSeconds returns the sustained-load duration: a quick default for the
// ordinary test run, longer when ANDORD_E2E_SECONDS is set (as
// scripts/loadtest.sh does).
func e2eSeconds(t *testing.T) time.Duration {
	if v := os.Getenv("ANDORD_E2E_SECONDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad ANDORD_E2E_SECONDS %q", v)
		}
		return time.Duration(n) * time.Second
	}
	if testing.Short() {
		return 500 * time.Millisecond
	}
	return 2 * time.Second
}

// TestE2ESustainedLoad is the issue's acceptance test: the server sustains
// a closed-loop load of ATR requests mixing all nine schemes with zero
// dropped-but-accepted requests, then drains cleanly.
func TestE2ESustainedLoad(t *testing.T) {
	s, base, errc := startE2E(t, Config{Workers: 4, QueueSize: 64})

	schemes := []string{"NPM", "SPM", "GSS", "SS1", "SS2", "AS", "CLV", "ASP", "ORA"}
	body := func(i int) []byte {
		// Every third request streams a small Monte-Carlo batch, the rest
		// are single runs; all schemes cycle through.
		runs := 1
		if i%3 == 0 {
			runs = 8
		}
		return []byte(fmt.Sprintf(
			`{"workload":"atr","scheme":%q,"runs":%d,"seed":%d,"load":0.5}`,
			schemes[i%len(schemes)], runs, i))
	}
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:         base + "/v1/run",
		Body:        body,
		Concurrency: 8,
		Duration:    e2eSeconds(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sustained load:\n%s", res)
	if res.OK == 0 {
		t.Fatal("no requests completed")
	}
	if res.Failed != 0 {
		t.Errorf("%d failed requests under sustained load", res.Failed)
	}
	if res.Incomplete != 0 {
		t.Errorf("%d accepted-but-dropped requests (incomplete streams)", res.Incomplete)
	}
	if res.OK+res.Rejected != res.Sent {
		t.Errorf("outcome accounting broken: %+v", res)
	}

	// Graceful drain: Serve must return ErrServerClosed and the port must
	// stop accepting.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if _, err := net.DialTimeout("tcp", strings.TrimPrefix(base, "http://"), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestE2EBackpressure saturates a deliberately tiny server and checks the
// full 429 contract: rejections happen, they carry Retry-After, and no
// accepted request is dropped.
func TestE2EBackpressure(t *testing.T) {
	// The explicit RequestTimeout keeps the admitted occupier streams
	// alive under -race, where the simulator runs ~100x slower than its
	// plain ~1.5M runs/s per core and the two serialized occupiers can
	// outlast the default per-request timeout.
	s, base, errc := startE2E(t, Config{
		Workers: 1, QueueSize: 1, MaxRuns: 100000, RequestTimeout: 2 * time.Minute,
	})

	// Saturate the one worker and the one queue slot with streaming
	// requests, then check a direct request is turned away correctly. The
	// occupiers must hold the server for tens of milliseconds so the
	// probe loop below gets several shots at the saturated queue: small
	// occupiers can finish before the saturation gate below even trips.
	heavy := []byte(`{"workload":"atr","scheme":"AS","runs":100000,"seed":1}`)
	client := &http.Client{Timeout: 60 * time.Second}

	// Warm the plan cache first. On a cold snapshot a request resolves
	// its plan through a blocking compile-join, so a probe sent below
	// would wait out the entire saturation window inside plan resolution
	// instead of reaching the fail-fast admission check it is meant to
	// exercise.
	if resp, err := client.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"workload":"atr","scheme":"GSS","runs":1}`)); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup status %d", resp.StatusCode)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Post(base+"/v1/run", "application/json", strings.NewReader(string(heavy)))
			if err != nil {
				t.Errorf("occupier: %v", err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("occupier status %d", resp.StatusCode)
				return
			}
			// Drain fully: the stream must end with a summary even though
			// the server was saturated while it ran.
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			last := ""
			for sc.Scan() {
				if line := strings.TrimSpace(sc.Text()); line != "" {
					last = line
				}
			}
			if !strings.Contains(last, `"summary":true`) {
				t.Errorf("occupier stream incomplete; last line %q", last)
			}
		}()
	}

	// Wait until worker + queue slot are taken. InFlight also counts the
	// occupiers' plan-compile jobs on a cold cache, so this gate alone
	// does not prove the run jobs hold the queue yet — the burst below
	// keeps probing until the occupiers are done rather than trusting a
	// single snapshot.
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.InFlight() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("server never saturated")
		}
		time.Sleep(500 * time.Microsecond)
	}
	occDone := make(chan struct{})
	go func() { wg.Wait(); close(occDone) }()

	// Burst requests for as long as the occupiers hold the server: at
	// least one must be a clean 429 with Retry-After. An admitted burst
	// blocks behind the occupiers, which only delays the next probe —
	// with both occupiers mid-run every probe finds the queue full.
	sawReject := false
	for !sawReject {
		resp, err := client.Post(base+"/v1/run", "application/json",
			strings.NewReader(`{"workload":"atr","scheme":"GSS","runs":50}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			sawReject = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After header")
			} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				t.Errorf("Retry-After %q is not a positive integer", ra)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "json") {
				t.Errorf("429 content type %q", ct)
			}
		}
		resp.Body.Close()
		if !sawReject {
			select {
			case <-occDone:
				t.Error("saturated server never answered 429")
				sawReject = true // only to exit the loop; the counter check below still fails
			default:
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	wg.Wait()

	if n, _ := s.Metrics().Snapshot().Counter(MetricRejections); !sawReject || n < 1 {
		t.Errorf("rejection counter %d", n)
	}
	shutdownE2E(t, s, errc)
}

// TestE2EMultiTenantFairness pins the point of per-tenant admission: one
// tenant driving far past its quota must not degrade a compliant tenant.
// The compliant tenant runs the same fixed workload twice — alone, then
// alongside a noisy tenant pushing roughly 10× its quota — and its
// completed-request count must stay within 10% of the solo baseline. The
// noisy tenant must see only clean 429s: rejections, never failures or
// accepted-but-dropped streams.
func TestE2EMultiTenantFairness(t *testing.T) {
	s, base, errc := startE2E(t, Config{
		Workers:   4,
		QueueSize: 64,
		Tenant: tenant.Config{
			Enabled:        true,
			RequestsPerSec: 200,
		},
	})
	defer shutdownE2E(t, s, errc)

	body := func(i int) []byte {
		return []byte(fmt.Sprintf(
			`{"workload":"atr","scheme":"GSS","runs":1,"seed":%d,"load":0.5}`, i))
	}
	header := func(key string) http.Header {
		h := http.Header{}
		h.Set("X-API-Key", key)
		return h
	}
	// The compliant tenant: a fixed request count paced at half its
	// 200/s quota, so in isolation nothing is ever rejected.
	compliant := loadgen.Config{
		URL:         base + "/v1/run",
		Body:        body,
		Concurrency: 4,
		Requests:    80,
		RPS:         100,
		Header:      header("tenant-good"),
	}

	solo, err := loadgen.Run(context.Background(), compliant)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("solo baseline:\n%s", solo)
	if solo.OK != solo.Sent || solo.Rejected != 0 {
		t.Fatalf("compliant tenant throttled in isolation: %+v", solo)
	}

	// Second pass with a noisy neighbour hammering unthrottled at high
	// concurrency — roughly an order of magnitude over its quota.
	noisyCtx, stopNoisy := context.WithCancel(context.Background())
	defer stopNoisy()
	noisyDone := make(chan *loadgen.Result, 1)
	go func() {
		res, err := loadgen.Run(noisyCtx, loadgen.Config{
			URL:         base + "/v1/run",
			Body:        body,
			Concurrency: 8,
			Duration:    30 * time.Second, // bounded by stopNoisy in practice
			Header:      header("tenant-noisy"),
		})
		if err != nil {
			t.Errorf("noisy tenant: %v", err)
		}
		noisyDone <- res
	}()

	contended, err := loadgen.Run(context.Background(), compliant)
	stopNoisy()
	if err != nil {
		t.Fatal(err)
	}
	noisy := <-noisyDone
	t.Logf("contended:\n%s", contended)
	if noisy != nil {
		t.Logf("noisy neighbour:\n%s", noisy)
	}

	if contended.Failed != 0 || contended.Incomplete != 0 {
		t.Errorf("compliant tenant saw hard failures under contention: %+v", contended)
	}
	if float64(contended.OK) < 0.9*float64(solo.OK) {
		t.Errorf("compliant tenant degraded: %d ok contended vs %d solo", contended.OK, solo.OK)
	}
	if noisy != nil {
		if noisy.Rejected == 0 {
			t.Error("noisy tenant was never rate-limited")
		}
		if noisy.Failed != 0 || noisy.Incomplete != 0 {
			t.Errorf("noisy tenant rejections were not clean 429s: %+v", noisy)
		}
	}
}

// TestE2EGracefulDrain starts a long streaming request and shuts down
// while it is in flight: the response must still complete with its
// summary, and Shutdown must not return before it does.
func TestE2EGracefulDrain(t *testing.T) {
	s, base, errc := startE2E(t, Config{Workers: 2, QueueSize: 8})

	started := make(chan struct{})
	finished := make(chan string, 1)
	go func() {
		resp, err := http.Post(base+"/v1/run", "application/json",
			strings.NewReader(`{"workload":"atr","scheme":"GSS","runs":3000,"seed":9}`))
		if err != nil {
			finished <- "request error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		close(started)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		last := ""
		for sc.Scan() {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				last = line
			}
		}
		finished <- last
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown while draining: %v", err)
	}
	select {
	case last := <-finished:
		if !strings.Contains(last, `"summary":true`) {
			t.Errorf("in-flight stream did not complete across shutdown; last line %q", last)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request never finished")
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
}

func shutdownE2E(t *testing.T, s *Server, errc chan error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
}

// TestE2ECompareAllStability pins the /v1/compare "all" contract end to
// end: the scheme set includes ORA, rows come back in the canonical
// presentation order (the paper's six then the extensions), and repeated
// calls with the same seed replay the same common random numbers — the
// response bodies are byte-identical.
func TestE2ECompareAllStability(t *testing.T) {
	s, base, errc := startE2E(t, Config{Workers: 2, QueueSize: 16})
	client := &http.Client{Timeout: 60 * time.Second}
	body := `{"workload":"atr","schemes":["all"],"runs":40,"seed":7,"load":0.6}`
	want := []string{"NPM", "SPM", "GSS", "SS1", "SS2", "AS", "CLV", "ASP", "ORA"}
	var first []byte
	for rep := 0; rep < 3; rep++ {
		resp, err := client.Post(base+"/v1/compare", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("call %d: %v", rep, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("call %d: read: %v", rep, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("call %d: status %d: %s", rep, resp.StatusCode, raw)
		}
		if rep == 0 {
			first = raw
			var cr CompareResponse
			if err := json.Unmarshal(raw, &cr); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(cr.Schemes) != len(want) {
				t.Fatalf("compare covered %d schemes, want %d", len(cr.Schemes), len(want))
			}
			for i, name := range want {
				if cr.Schemes[i].Scheme != name {
					t.Errorf("scheme row %d is %s, want %s", i, cr.Schemes[i].Scheme, name)
				}
			}
		} else if !bytes.Equal(raw, first) {
			t.Errorf("call %d: response differs from call 0 under the same seed:\n%s\nvs\n%s",
				rep, raw, first)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
}
