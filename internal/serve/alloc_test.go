package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// TestWorkerRunZeroAlloc pins the steady-state contract the pool relies
// on: a warmed worker executing the /v1/run inner loop — reseed, RunInto,
// fillRow — allocates nothing.
func TestWorkerRunZeroAlloc(t *testing.T) {
	plan, err := core.NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	src := exectime.NewSource(1)
	wk := &Worker{Arena: core.NewArena(), Src: src, Sampler: exectime.NewSampler(src)}
	cfg := core.RunConfig{Scheme: core.AS, Deadline: plan.CTWorst / 0.5, Sampler: wk.Sampler}
	var row RunRow
	seed := uint64(0)
	run := func() {
		wk.Src.Reseed(seed)
		seed++
		if err := plan.RunInto(cfg, wk.Arena, &wk.Res); err != nil {
			t.Fatal(err)
		}
		fillRow(&row, 0, &wk.Res)
	}
	for i := 0; i < 10; i++ {
		run() // warm the arena and the row's path buffer
	}
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("warmed worker run path allocates %.1f times per run, want 0", allocs)
	}
}

// TestRunRequestAllocsPerRun bounds the handler's marginal cost per
// simulated run: after warmup, growing a /v1/run request by 300 extra runs
// may only add the allocations of encoding 300 extra rows — nothing
// proportional to the application's size (ATR has ~100 tasks per frame).
func TestRunRequestAllocsPerRun(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueSize: 8})
	request := func(runs int) func() {
		body := fmt.Sprintf(`{"workload":"atr","scheme":"GSS","runs":%d,"seed":11}`, runs)
		return func() {
			req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body))
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	}
	small, large := request(50), request(350)
	small() // compile + warm the worker arena
	large()
	allocsSmall := testing.AllocsPerRun(5, small)
	allocsLarge := testing.AllocsPerRun(5, large)
	perRun := (allocsLarge - allocsSmall) / 300
	t.Logf("allocs: runs=50 %.0f, runs=350 %.0f, marginal %.2f/run", allocsSmall, allocsLarge, perRun)
	if perRun > 32 {
		t.Errorf("marginal cost %.1f allocs per simulated run; want O(row encoding), <= 32", perRun)
	}
}
