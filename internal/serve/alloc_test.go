package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

// TestWorkerRunZeroAlloc pins the steady-state contract the pool relies
// on: a warmed worker executing the /v1/run inner loop — reseed, RunInto,
// fillRow — allocates nothing.
func TestWorkerRunZeroAlloc(t *testing.T) {
	plan, err := core.NewPlan(workload.ATR(workload.DefaultATRConfig()), 2,
		power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	src := exectime.NewSource(1)
	wk := &Worker{Arena: core.NewArena(), Src: src, Sampler: exectime.NewSampler(src)}
	cfg := core.RunConfig{Scheme: core.AS, Deadline: plan.CTWorst / 0.5, Sampler: wk.Sampler}
	var row RunRow
	seed := uint64(0)
	run := func() {
		wk.Src.Reseed(seed)
		seed++
		if err := plan.RunInto(cfg, wk.Arena, &wk.Res); err != nil {
			t.Fatal(err)
		}
		fillRow(&row, 0, &wk.Res)
	}
	for i := 0; i < 10; i++ {
		run() // warm the arena and the row's path buffer
	}
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("warmed worker run path allocates %.1f times per run, want 0", allocs)
	}
}

// TestWriteJSONPooledAllocs pins the encoder pool's contract: a warmed
// writeJSON — pooled buffer, pooled encoder, one Write to the wire — stays
// within the ISSUE's ≤8 allocs/op budget (the remaining allocations are
// json.Marshal internals, not buffer churn).
func TestWriteJSONPooledAllocs(t *testing.T) {
	row := RunRow{Scheme: "GSS", DeadlineS: 0.5, FinishS: 0.4, MetDeadline: true,
		EnergyJ: 1.25, ActiveJ: 1.0, OverheadJ: 0.05, IdleJ: 0.2, SpeedChanges: 7,
		Path: []int{1, 0, 2}}
	w := newReusableRecorder()
	run := func() {
		w.reset()
		writeJSON(w, http.StatusOK, &row)
		if w.status != http.StatusOK || w.body.Len() == 0 {
			t.Fatal("writeJSON produced no response")
		}
	}
	run() // populate the pool
	if allocs := testing.AllocsPerRun(100, run); allocs > 8 {
		t.Errorf("warmed writeJSON allocates %.1f times per op, want <= 8", allocs)
	}
}

// reusableRecorder is a ResponseWriter whose header map and body buffer
// survive reset, so alloc measurements of the full handler path count the
// server's work, not the test harness's.
type reusableRecorder struct {
	hdr    http.Header
	body   bytes.Buffer
	status int
}

func newReusableRecorder() *reusableRecorder {
	return &reusableRecorder{hdr: make(http.Header, 4)}
}

func (r *reusableRecorder) Header() http.Header { return r.hdr }
func (r *reusableRecorder) WriteHeader(c int)   { r.status = c }
func (r *reusableRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(p)
}

func (r *reusableRecorder) reset() {
	for k := range r.hdr {
		delete(r.hdr, k)
	}
	r.body.Reset()
	r.status = 0
}

// TestRunRequestWarmAllocs bounds the whole warmed single-run /v1/run
// ServeHTTP path — middleware, decode, plan-cache hit, pool round trip,
// simulation, pooled encode — with a reusable request and recorder so only
// the server's own allocations are counted. The irreducible floor is
// request plumbing (context.WithTimeout, WithContext, MaxBytesReader,
// json.NewDecoder) and the pool handoff, not response encoding: the
// encoder pool removed that term (measured ~45 allocs/op before pooling).
//
// Measured twice — tracing off and on — to pin the tracing budget: the
// traced path may add at most 8 allocations (it actually adds ~4: the
// trace-ID hex string, its header value, the trace context value, and the
// phase-observation closure; the record and status writer are pooled).
func TestRunRequestWarmAllocs(t *testing.T) {
	measure := func(cfg Config) float64 {
		s := newTestServer(t, cfg)
		const body = `{"workload":"atr","scheme":"GSS","seed":11}`
		rd := strings.NewReader(body)
		req := httptest.NewRequest(http.MethodPost, "/v1/run", rd)
		w := newReusableRecorder()
		run := func() {
			rd.Reset(body)
			w.reset()
			s.Handler().ServeHTTP(w, req)
			if w.status != http.StatusOK {
				t.Fatalf("status %d: %s", w.status, w.body.String())
			}
		}
		for i := 0; i < 5; i++ {
			run() // compile the plan, warm the worker arena and the pools
		}
		return testing.AllocsPerRun(100, run)
	}
	off := measure(Config{Workers: 1, QueueSize: 8, Trace: TraceConfig{Disabled: true}})
	on := measure(Config{Workers: 1, QueueSize: 8})
	t.Logf("warmed /v1/run ServeHTTP: %.1f allocs/op untraced, %.1f traced", off, on)
	if off > 32 {
		t.Errorf("warmed untraced /v1/run allocates %.1f times per op, want <= 32", off)
	}
	if on > off+8 {
		t.Errorf("tracing adds %.1f allocs per request (%.1f -> %.1f), budget is +8",
			on-off, off, on)
	}
}

// TestRunRequestAllocsPerRun bounds the handler's marginal cost per
// simulated run: after warmup, growing a /v1/run request by 300 extra runs
// may only add the allocations of encoding 300 extra rows — nothing
// proportional to the application's size (ATR has ~100 tasks per frame).
func TestRunRequestAllocsPerRun(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueSize: 8})
	request := func(runs int) func() {
		body := fmt.Sprintf(`{"workload":"atr","scheme":"GSS","runs":%d,"seed":11}`, runs)
		return func() {
			req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body))
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	}
	small, large := request(50), request(350)
	small() // compile + warm the worker arena
	large()
	allocsSmall := testing.AllocsPerRun(5, small)
	allocsLarge := testing.AllocsPerRun(5, large)
	perRun := (allocsLarge - allocsSmall) / 300
	t.Logf("allocs: runs=50 %.0f, runs=350 %.0f, marginal %.2f/run", allocsSmall, allocsLarge, perRun)
	if perRun > 32 {
		t.Errorf("marginal cost %.1f allocs per simulated run; want O(row encoding), <= 32", perRun)
	}
}
