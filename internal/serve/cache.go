package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"sync"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/obs"
	"andorsched/internal/power"
)

// cacheKey identifies one off-line compilation: the application (by a
// canonical content hash), the platform (by its spec string), the
// processor count, and the power-management overheads. Two requests with
// the same key share one Plan. A heterogeneous request instead carries the
// platform's content hash (power.Hetero.Key — a reference name and its
// spelled-out spec collapse onto one entry) plus the placement policy,
// which is a plan parameter; platform and procs stay zero there.
type cacheKey struct {
	graph     [sha256.Size]byte
	platform  string
	procs     int
	hetero    string
	placement string
	ov        power.Overheads
}

// graphDigest hashes a graph's canonical text rendering. FormatText is
// deterministic (nodes and edges in ID order), so structurally identical
// submissions — whether they arrived as JSON, .andor text or a named
// workload — collapse onto one digest.
func graphDigest(g *andor.Graph) [sha256.Size]byte {
	return sha256.Sum256([]byte(andor.FormatText(g)))
}

// cacheEntry is one cache slot. ready is closed when plan/err are set;
// requests that find an in-flight entry wait on it instead of compiling
// the same application again (duplicate-compile suppression).
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	plan  *core.Plan
	err   error
}

// PlanCache is a bounded LRU of compiled Plans with duplicate-compile
// suppression: N concurrent requests for the same application trigger
// exactly one core.NewPlan; the rest block until it finishes. Safe for
// concurrent use. Plans are immutable (see core.Plan), so handing one
// Plan to many requests is sound.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // of *cacheEntry, front = most recently used
	byKey map[cacheKey]*list.Element

	hits, misses, evictions *obs.Counter
	size                    *obs.Gauge
}

// NewPlanCache returns a cache holding at most capacity plans (minimum 1),
// reporting to the given registry.
func NewPlanCache(capacity int, m *obs.Metrics) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	c := &PlanCache{
		cap:       capacity,
		lru:       list.New(),
		byKey:     make(map[cacheKey]*list.Element),
		hits:      m.Counter(MetricCacheHits),
		misses:    m.Counter(MetricCacheMisses),
		evictions: m.Counter(MetricCacheEvictions),
		size:      m.Gauge(MetricCacheSize),
	}
	return c
}

// Len returns the number of cached (or in-flight) entries.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// GetOrCompile returns the plan for key, compiling it with compile if
// absent. The boolean reports whether the call was served from the cache
// (including joining an in-flight compile). Failed compiles are not
// cached; every waiter of a failed compile receives the same error.
// Waiting is bounded by ctx.
func (c *PlanCache) GetOrCompile(ctx context.Context, key cacheKey, compile func() (*core.Plan, error)) (*core.Plan, bool, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		c.hits.Inc()
		select {
		case <-e.ready:
			return e.plan, true, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.byKey[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		be := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.byKey, be.key)
		c.evictions.Inc()
	}
	c.size.Set(float64(c.lru.Len()))
	c.mu.Unlock()
	c.misses.Inc()

	e.plan, e.err = compile()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		if el, ok := c.byKey[key]; ok && el.Value.(*cacheEntry) == e {
			c.lru.Remove(el)
			delete(c.byKey, key)
			c.size.Set(float64(c.lru.Len()))
		}
		c.mu.Unlock()
	}
	return e.plan, false, e.err
}
