package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/obs"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

func testKey(n int) cacheKey {
	var k cacheKey
	k.graph[0] = byte(n)
	k.graph[1] = byte(n >> 8)
	k.platform = "transmeta"
	k.procs = 2
	return k
}

func compilePlan(t testing.TB) func() (*core.Plan, error) {
	g := workload.Synthetic()
	return func() (*core.Plan, error) {
		return core.NewPlan(g, 2, power.Transmeta5400(), power.DefaultOverheads())
	}
}

// TestCacheSingleCompile is the issue's acceptance test: N concurrent
// identical submissions trigger exactly one compile; everyone gets the
// same Plan.
func TestCacheSingleCompile(t *testing.T) {
	c := NewPlanCache(8, obs.NewMetrics())
	var compiles atomic.Int64
	mk := compilePlan(t)
	compile := func() (*core.Plan, error) {
		compiles.Add(1)
		// Stretch the compile window so every goroutine is in flight
		// before it finishes.
		time.Sleep(20 * time.Millisecond)
		return mk()
	}

	const n = 64
	plans := make([]*core.Plan, n)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			p, _, err := c.GetOrCompile(context.Background(), testKey(1), compile)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			plans[i] = p
		}(i)
	}
	start.Done()
	wg.Wait()

	if got := compiles.Load(); got != 1 {
		t.Fatalf("compile ran %d times under %d concurrent requests, want exactly 1", got, n)
	}
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("goroutine %d received a different Plan pointer", i)
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	m := obs.NewMetrics()
	c := NewPlanCache(2, m)
	var compiles atomic.Int64
	mk := compilePlan(t)
	compile := func() (*core.Plan, error) { compiles.Add(1); return mk() }

	get := func(k int) {
		t.Helper()
		if _, _, err := c.GetOrCompile(context.Background(), testKey(k), compile); err != nil {
			t.Fatal(err)
		}
	}
	get(1)
	get(2)
	get(1) // refresh 1: now 2 is least recently used
	get(3) // evicts 2
	if c.Len() != 2 {
		t.Fatalf("cache length %d, want 2", c.Len())
	}
	if compiles.Load() != 3 {
		t.Fatalf("%d compiles for 3 distinct keys, want 3", compiles.Load())
	}
	get(1) // still cached
	if compiles.Load() != 3 {
		t.Error("key 1 was evicted but should have been refreshed")
	}
	get(2) // was evicted: recompiles
	if compiles.Load() != 4 {
		t.Error("evicted key 2 did not recompile")
	}
	if ev, _ := m.Snapshot().Counter(MetricCacheEvictions); ev < 1 {
		t.Errorf("eviction counter %d, want >= 1", ev)
	}
}

func TestCacheFailedCompileNotCached(t *testing.T) {
	c := NewPlanCache(8, obs.NewMetrics())
	var compiles atomic.Int64
	boom := errors.New("boom")
	fail := func() (*core.Plan, error) { compiles.Add(1); return nil, boom }

	for i := 0; i < 3; i++ {
		if _, _, err := c.GetOrCompile(context.Background(), testKey(9), fail); !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err %v, want boom", i, err)
		}
	}
	if compiles.Load() != 3 {
		t.Errorf("failed compile was cached: %d compiles, want 3", compiles.Load())
	}
	if c.Len() != 0 {
		t.Errorf("failed entries left in cache: len %d", c.Len())
	}
}

func TestCacheWaitBoundedByContext(t *testing.T) {
	c := NewPlanCache(8, obs.NewMetrics())
	slow := make(chan struct{})
	go c.GetOrCompile(context.Background(), testKey(5), func() (*core.Plan, error) {
		<-slow
		return nil, errors.New("never mind")
	})
	// Give the first goroutine time to claim the entry.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := c.GetOrCompile(ctx, testKey(5), func() (*core.Plan, error) {
		t.Error("second compile must not run")
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", err)
	}
	close(slow)
}

// TestHTTPSingleCompile drives the same property through the HTTP layer:
// concurrent identical /v1/plan requests produce one cache miss (one
// core.NewPlan) and n-1 hits.
func TestHTTPSingleCompile(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueSize: 64})
	const n = 16
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, s, "/v1/plan", `{"workload":"atr","procs":4}`)
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	// Shard counters merge into the registry on the read paths; refresh
	// like a scrape would before asserting on the snapshot.
	s.refreshStats()
	snap := s.Metrics().Snapshot()
	misses, _ := snap.Counter(MetricCacheMisses)
	hits, _ := snap.Counter(MetricCacheHits)
	if misses != 1 {
		t.Errorf("cache misses %d, want exactly 1 (duplicate-compile suppression)", misses)
	}
	if hits != n-1 {
		t.Errorf("cache hits %d, want %d", hits, n-1)
	}
}

// TestCacheKeyDistinguishesConfigs ensures the key covers everything the
// off-line phase depends on.
func TestCacheKeyDistinguishesConfigs(t *testing.T) {
	s := newTestServer(t, Config{})
	bodies := []string{
		`{"workload":"synthetic","procs":2}`,
		`{"workload":"synthetic","procs":4}`,
		`{"workload":"synthetic","procs":2,"platform":"xscale"}`,
		`{"workload":"synthetic","procs":2,"overheads":{"speed_comp_cycles":9000,"speed_change_us":30,"volt_slew_us_per_volt":100}}`,
		`{"workload":"atr","procs":2}`,
	}
	for i, body := range bodies {
		w := post(t, s, "/v1/plan", body)
		if w.Code != http.StatusOK {
			t.Fatalf("body %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	s.refreshStats()
	if misses, _ := s.Metrics().Snapshot().Counter(MetricCacheMisses); misses != int64(len(bodies)) {
		t.Errorf("%d distinct configurations produced %d misses", len(bodies), misses)
	}
	// Equivalent encodings collapse: the same graph as text hits the
	// workload's entry.
	g := workload.Synthetic()
	w := post(t, s, "/v1/plan", fmt.Sprintf(`{"text":%q,"procs":2}`, andor.FormatText(g)))
	if w.Code != http.StatusOK {
		t.Fatalf("text form: status %d: %s", w.Code, w.Body.String())
	}
	var resp PlanResponse
	decodeBody(t, w, &resp)
	if !resp.Cached {
		t.Error("text rendering of a cached workload missed the cache")
	}
}
