package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"andorsched/internal/core"
	"andorsched/internal/core/schedcache"
	"andorsched/internal/exectime"
	"andorsched/internal/obs"
	"andorsched/internal/stats"
)

// planFor resolves an AppSpec to a compiled Plan through whichever cache
// path is active. The boolean reports a cache hit.
func (s *Server) planFor(ctx context.Context, spec *AppSpec) (*core.Plan, bool, *apiError) {
	ra, apiErr := s.resolveApp(spec)
	if apiErr != nil {
		return nil, false, apiErr
	}
	return s.resolvePlan(ctx, ra)
}

// compilePlan builds ra's plan against the given section-schedule cache
// shard (nil bypasses section caching).
func buildPlan(ra resolvedApp, sched *schedcache.Cache) (*core.Plan, error) {
	if ra.hp != nil {
		return core.NewHeteroPlanWithCache(ra.g, ra.hp, ra.key.ov, ra.place, sched)
	}
	plat, err := parsePlatformMemo(ra.key.platform)
	if err != nil {
		return nil, err
	}
	// The plan compile consults a section-schedule cache: a plan-cache
	// miss on a graph whose sections were seen before (same structure at a
	// different procs/platform, or an evicted plan) skips the canonical
	// simulations.
	return core.NewPlanWithCache(ra.g, ra.key.procs, plat, ra.key.ov, sched)
}

// ownerPlan resolves ra's plan in the executing worker's own shard,
// compiling on a miss and mapping failures onto API errors. It must run
// inside a job routed to homeFor(ra.key): the shard and its recency state
// are owner-only. Safe to record trace marks here — the submitter is
// blocked on the job until it finishes.
func (s *Server) ownerPlan(ctx context.Context, wk *Worker, ra resolvedApp) (*core.Plan, bool, *apiError) {
	rec := obs.TraceFromContext(ctx)
	plan, hit, err := wk.OwnerPlan(ra.key, func(sched *schedcache.Cache) (*core.Plan, error) {
		tc := rec.SinceStart()
		defer rec.RecordOffset(PhaseCompile, tc)
		return buildPlan(ra, sched)
	})
	if hit {
		rec.MarkDetail(PhaseCache, "hit")
	} else {
		rec.MarkDetail(PhaseCache, "miss")
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, false, errf(http.StatusServiceUnavailable, "timed out waiting for plan compile")
		}
		// Compile failures are application problems (invalid graph,
		// non-positive procs): the client's fault.
		return nil, false, errf(http.StatusBadRequest, "plan: %v", err)
	}
	return plan, hit, nil
}

// resolvePlan turns a resolved app into a compiled plan. On the legacy
// path this is the shared LRU cache with single-flight compile
// suppression. On the shared-nothing path it first consults the owning
// shard's published snapshot (a lock-free read, usable from any
// goroutine); on a miss the compile is routed to the owner with a
// blocking submit — the owner queue serializes compiles for its keys, so
// duplicate-compile suppression falls out of the routing.
func (s *Server) resolvePlan(ctx context.Context, ra resolvedApp) (*core.Plan, bool, *apiError) {
	rec := obs.TraceFromContext(ctx)
	if s.cache != nil {
		plan, hit, err := s.cache.GetOrCompile(ctx, ra.key, func() (*core.Plan, error) {
			tc := rec.SinceStart()
			defer rec.RecordOffset(PhaseCompile, tc)
			if ra.hp != nil {
				return core.NewHeteroPlan(ra.g, ra.hp, ra.key.ov, ra.place)
			}
			plat, err := parsePlatformMemo(ra.key.platform)
			if err != nil {
				return nil, err
			}
			return core.NewPlan(ra.g, ra.key.procs, plat, ra.key.ov)
		})
		// The cache span wraps the whole lookup: on a miss, or a join of an
		// in-flight compile, it contains the compile time too.
		if hit {
			rec.MarkDetail(PhaseCache, "hit")
		} else {
			rec.MarkDetail(PhaseCache, "miss")
		}
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return nil, false, errf(http.StatusServiceUnavailable, "timed out waiting for plan compile")
			}
			return nil, false, errf(http.StatusBadRequest, "plan: %v", err)
		}
		return plan, hit, nil
	}
	if plan, _, ok := s.pool.planFromSnapshot(ra.key); ok {
		rec.MarkDetail(PhaseCache, "hit")
		return plan, true, nil
	}
	var plan *core.Plan
	var hit bool
	var apiErr *apiError
	err := s.pool.DoWaitOn(ctx, s.pool.homeFor(ra.key), func(ctx context.Context, wk *Worker) {
		plan, hit, apiErr = s.ownerPlan(ctx, wk, ra)
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, false, errf(http.StatusServiceUnavailable, "timed out waiting for plan compile")
		}
		return nil, false, errf(http.StatusServiceUnavailable, "plan compile unavailable: %v", err)
	}
	if apiErr != nil {
		return nil, false, apiErr
	}
	return plan, hit, nil
}

// handlePlan compiles (or fetches) a plan and returns its summary.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req struct{ AppSpec }
	if apiErr := s.decodeJSON(r, &req); apiErr != nil {
		s.writeError(w, apiErr.status, apiErr.msg)
		return
	}
	// Compiles are the most expensive thing a client can ask for; they sit
	// behind tenant admission like runs do (charging zero run tokens).
	release, ok := s.admit(w, r, 0)
	if !ok {
		return
	}
	defer release()
	plan, hit, apiErr := s.planFor(r.Context(), &req.AppSpec)
	if apiErr != nil {
		s.writeError(w, apiErr.status, apiErr.msg)
		return
	}
	resp := PlanResponse{
		App:         plan.Graph.Name,
		Nodes:       plan.Graph.Len(),
		Sections:    plan.NumSections(),
		Paths:       plan.Sections.NumPaths(),
		Procs:       plan.Procs,
		CTWorst:     plan.CTWorst,
		CTAvg:       plan.CTAvg,
		MinDeadline: plan.MinDeadline(),
		Cached:      hit,
	}
	if plan.Hetero != nil {
		resp.Platform = plan.Hetero.Name
		resp.Levels = plan.Hetero.MaxLevels()
		resp.Classes = plan.Hetero.NumClasses()
		resp.Placement = plan.Placement.Name()
	} else {
		resp.Platform = plan.Platform.Name
		resp.Levels = plan.Platform.NumLevels()
	}
	s.writeJSONTraced(w, r, http.StatusOK, resp)
}

// fillRow writes one run's result into row, reusing row.Path.
func fillRow(row *RunRow, run int, res *core.RunResult) {
	row.Run = run
	row.Scheme = res.Scheme.String()
	row.DeadlineS = res.Deadline
	row.FinishS = res.Finish
	row.MetDeadline = res.MetDeadline
	row.EnergyJ = res.Energy()
	row.ActiveJ = res.ActiveEnergy
	row.OverheadJ = res.OverheadEnergy
	row.IdleJ = res.IdleEnergy
	row.SpeedChanges = res.SpeedChanges
	// Heterogeneous runs carry per-class breakdowns; homogeneous results
	// have nil slices and the append keeps the row's nil (the fields stay
	// omitted and the warm homogeneous path stays allocation-free).
	row.ClassGrossJ = append(row.ClassGrossJ[:0], res.ClassGrossEnergy...)
	row.ClassIdleJ = append(row.ClassIdleJ[:0], res.ClassIdleEnergy...)
	row.Path = row.Path[:0]
	for _, c := range res.Path {
		row.Path = append(row.Path, c.Branch)
	}
}

// monteCarlo executes runs Monte-Carlo executions of plan on wk's state.
// Per-run seeds come from one master stream (run i's seed is the i-th
// master draw — the convention the chunked path reproduces with an O(1)
// skip), so runs are independent but the whole request is reproducible
// from seed. each (optional) observes every result and may stop the loop
// early by returning false — e.g. a streaming encoder whose client went
// away. The returned summary covers the observed prefix (Runs < runs when
// stopped early); a context expiry or simulation failure aborts with the
// error and a partial summary. Accumulation goes through core.MCStats,
// the same reducer the chunked merge path feeds in run order, which is
// what keeps serial and chunked summaries bit-identical.
func monteCarlo(ctx context.Context, wk *Worker, plan *core.Plan, cfg core.RunConfig,
	runs int, seed uint64, each func(i int, res *core.RunResult) bool) (RunSummary, error) {
	var mc core.MCStats
	if rec := obs.TraceFromContext(ctx); rec != nil {
		// One exec.mc span per Monte-Carlo loop, counting completed runs.
		// Batch and run chunks call this concurrently on one request's
		// record; span slots are reserved atomically, so that is safe.
		t0 := rec.SinceStart()
		defer func() { rec.RecordOffsetN(PhaseExecMC, t0, int64(mc.Done)) }()
	}
	var master exectime.Source
	master.Reseed(seed)
	for i := 0; i < runs; i++ {
		if err := ctx.Err(); err != nil {
			return mcSummary(&mc, cfg), err
		}
		wk.Src.Reseed(master.Uint64())
		if err := plan.RunInto(cfg, wk.Arena, &wk.Res); err != nil {
			return mcSummary(&mc, cfg), err
		}
		if each != nil && !each(i, &wk.Res) {
			return mcSummary(&mc, cfg), nil
		}
		mc.Observe(&wk.Res)
	}
	return mcSummary(&mc, cfg), nil
}

// mcSummary renders an accumulated Monte-Carlo experiment as the stream's
// trailing summary row.
func mcSummary(mc *core.MCStats, cfg core.RunConfig) RunSummary {
	rs := RunSummary{
		Summary: true, Runs: mc.Done, Scheme: cfg.Scheme.String(), DeadlineS: cfg.Deadline,
		MeanEnergyJ: mc.Energy.Mean(), MeanFinishS: mc.Finish.Mean(), MaxFinishS: mc.Finish.Max(),
		DeadlineMisses: mc.Misses, LSTViolations: mc.LSTViolations, SpeedChanges: mc.SpeedChanges,
	}
	rs.MeanClassGrossJ, rs.MeanClassIdleJ = mc.ClassMeans()
	return rs
}

// handleRun executes an application once (JSON response) or runs=N times
// (NDJSON stream: one row per run, then a summary row). The simulation
// itself runs on a pool worker's arena; this handler only decodes,
// resolves the plan and encodes.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req RunRequest
	if apiErr := s.decodeJSON(r, &req); apiErr != nil {
		s.writeError(w, apiErr.status, apiErr.msg)
		return
	}
	schemeName := req.Scheme
	if schemeName == "" {
		schemeName = "GSS"
	}
	scheme, err := core.ParseScheme(schemeName)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	runs := req.Runs
	if runs == 0 {
		runs = 1
	}
	if runs < 1 || runs > s.cfg.MaxRuns {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("runs %d outside [1, %d]", runs, s.cfg.MaxRuns))
		return
	}
	if req.Chunks < 0 || req.Chunks > maxRunChunks {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("chunks %d outside [0, %d]", req.Chunks, maxRunChunks))
		return
	}
	release, ok := s.admit(w, r, runs)
	if !ok {
		return
	}
	defer release()

	// Large-run requests fan out across the pool: per-worker chunks with
	// chunk-independent seeding, merged back in run order — byte-identical
	// to the serial path below, several workers faster. Serial execution
	// (one in-job streaming loop) remains the path for small requests,
	// single-worker pools and explicit chunks=1.
	if nchunks := chunkCount(runs, s.pool.Workers(), req.Chunks, minRunsPerChunk); nchunks > 1 {
		s.handleRunChunked(w, r, &req, scheme, runs, nchunks)
		return
	}

	// Plan resolution differs by path. The legacy path resolves on the
	// handler goroutine through the shared cache, then submits to the
	// shared queue. The shared-nothing path peeks the owning shard's
	// published snapshot (a lock-free read): a warm key yields its
	// immutable plan right here, and the run executes on ANY worker via
	// the shared queue — from admission to encode without taking a lock
	// or touching an atomic another goroutine writes (the hit is credited
	// in-job to the executing worker's own counter). Only a cold key
	// routes the whole request to the shard owner chosen by the app's
	// digest, which compiles in its private shard and publishes a new
	// snapshot; the owner queue serializes compiles for its keys, so
	// duplicate-compile suppression is structural. jobErr carries
	// resolution failures out of the job (the job returns before
	// committing any status line, so the handler can still answer
	// 400/503).
	legacy := s.cache != nil
	var ra resolvedApp
	var plan *core.Plan
	var deadline float64
	var jobErr *apiError
	if legacy {
		var apiErr *apiError
		plan, _, apiErr = s.planFor(r.Context(), &req.AppSpec)
		if apiErr != nil {
			s.writeError(w, apiErr.status, apiErr.msg)
			return
		}
		deadline, apiErr = resolveDeadline(plan.CTWorst, req.Deadline, req.Load)
		if apiErr != nil {
			s.writeError(w, apiErr.status, apiErr.msg)
			return
		}
	} else {
		var apiErr *apiError
		ra, apiErr = s.resolveApp(&req.AppSpec)
		if apiErr != nil {
			s.writeError(w, apiErr.status, apiErr.msg)
			return
		}
		if p, ok := s.pool.planPeek(ra.key); ok {
			obs.TraceFromContext(r.Context()).MarkDetail(PhaseCache, "hit")
			plan = p
			deadline, apiErr = resolveDeadline(plan.CTWorst, req.Deadline, req.Load)
			if apiErr != nil {
				s.writeError(w, apiErr.status, apiErr.msg)
				return
			}
		}
	}
	// A sharded request with its plan in hand (warm) rides the shared
	// queue like legacy traffic; only unresolved requests are routed.
	routed := !legacy && plan == nil
	if runs == 1 {
		var row RunRow
		var runErr error
		fn := func(ctx context.Context, wk *Worker) {
			p, d := plan, deadline
			if routed {
				var apiErr *apiError
				if p, _, apiErr = s.ownerPlan(ctx, wk, ra); apiErr != nil {
					jobErr = apiErr
					return
				}
				if d, apiErr = resolveDeadline(p.CTWorst, req.Deadline, req.Load); apiErr != nil {
					jobErr = apiErr
					return
				}
			} else if !legacy {
				wk.pw.hits.Add(1) // snapshot hit, credited to the executing worker
			}
			wk.Src.Reseed(req.Seed)
			cfg := core.RunConfig{Scheme: scheme, Deadline: d}
			if req.Worst {
				cfg.WorstCase = true
			} else {
				cfg.Sampler = wk.Sampler
			}
			if runErr = p.RunInto(cfg, wk.Arena, &wk.Res); runErr != nil {
				return
			}
			fillRow(&row, 0, &wk.Res)
		}
		var err error
		if routed {
			err = s.pool.DoOn(r.Context(), s.pool.homeFor(ra.key), fn)
		} else {
			err = s.pool.Do(r.Context(), fn)
		}
		if !s.checkPoolErr(w, err) {
			return
		}
		if jobErr != nil {
			s.writeError(w, jobErr.status, jobErr.msg)
			return
		}
		if runErr != nil {
			s.writeError(w, http.StatusInternalServerError, runErr.Error())
			return
		}
		s.runs.Inc()
		s.writeJSONTraced(w, r, http.StatusOK, row)
		return
	}

	// Monte-Carlo: stream NDJSON rows as they are produced, then a
	// summary. Admission happens before the status line commits — the 200
	// is only written once a worker has picked the job up (and, on the
	// sharded path, resolved the plan), so a full queue or a bad app still
	// yields a clean 429/400. After the 200, a mid-stream failure is
	// reported as an {"error": ...} line and an absent summary; clients
	// (and loadgen) treat a stream without a summary as incomplete.
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	stream := func(ctx context.Context, wk *Worker) {
		p, d := plan, deadline
		if routed {
			var apiErr *apiError
			if p, _, apiErr = s.ownerPlan(ctx, wk, ra); apiErr != nil {
				jobErr = apiErr
				return
			}
			if d, apiErr = resolveDeadline(p.CTWorst, req.Deadline, req.Load); apiErr != nil {
				jobErr = apiErr
				return
			}
		} else if !legacy {
			wk.pw.hits.Add(1) // snapshot hit, credited to the executing worker
		}
		w.WriteHeader(http.StatusOK)
		var row RunRow
		cfg := core.RunConfig{Scheme: scheme, Deadline: d}
		if req.Worst {
			cfg.WorstCase = true
		} else {
			cfg.Sampler = wk.Sampler
		}
		sum, err := monteCarlo(ctx, wk, p, cfg, runs, req.Seed,
			func(i int, res *core.RunResult) bool {
				fillRow(&row, i, res)
				if enc.Encode(&row) != nil {
					return false // client went away; stop simulating
				}
				if flusher != nil && (i+1)%256 == 0 {
					flusher.Flush()
				}
				return true
			})
		s.runs.Add(int64(sum.Runs))
		if err != nil {
			if ctx.Err() == nil {
				_ = enc.Encode(map[string]string{"error": err.Error()})
			}
			return // stream ends without a summary: client must treat as incomplete
		}
		if sum.Runs == runs { // not cut short by a gone client
			_ = enc.Encode(sum)
		}
	}
	// The job is sized in runs so the queue's Retry-After accounting sees
	// the real work behind it, serial or chunked.
	var poolErr error
	if routed {
		poolErr = s.pool.doOnUnits(r.Context(), s.pool.homeFor(ra.key), int64(runs), stream)
	} else {
		poolErr = s.pool.doUnits(r.Context(), int64(runs), stream)
	}
	if poolErr != nil {
		// The job never ran, so no status line was written: report the
		// rejection properly instead of committing a doomed 200.
		w.Header().Del("Content-Type")
		s.checkPoolErr(w, poolErr)
		return
	}
	if jobErr != nil {
		// The job bailed before the status line: resolution failed.
		w.Header().Del("Content-Type")
		s.writeError(w, jobErr.status, jobErr.msg)
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// handleCompare runs every requested scheme over the same random numbers
// and reports energies normalized to NPM.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req CompareRequest
	if apiErr := s.decodeJSON(r, &req); apiErr != nil {
		s.writeError(w, apiErr.status, apiErr.msg)
		return
	}
	schemes := make([]core.Scheme, 0, 9)
	if len(req.Schemes) == 0 || (len(req.Schemes) == 1 && req.Schemes[0] == "all") {
		schemes = append(schemes, core.Schemes...)
		schemes = append(schemes, core.ExtendedSchemes...)
	} else {
		for _, name := range req.Schemes {
			sc, err := core.ParseScheme(name)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			schemes = append(schemes, sc)
		}
	}
	runs := req.Runs
	if runs == 0 {
		runs = 200
	}
	if runs < 1 || runs*len(schemes) > s.cfg.MaxRuns {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("runs %d × %d schemes exceeds the limit of %d total executions",
				runs, len(schemes), s.cfg.MaxRuns))
		return
	}
	if req.Chunks < 0 || req.Chunks > maxRunChunks {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("chunks %d outside [0, %d]", req.Chunks, maxRunChunks))
		return
	}
	// A compare costs one NPM baseline plus one run per scheme per frame.
	release, ok := s.admit(w, r, runs*(len(schemes)+1))
	if !ok {
		return
	}
	defer release()
	plan, _, apiErr := s.planFor(r.Context(), &req.AppSpec)
	if apiErr != nil {
		s.writeError(w, apiErr.status, apiErr.msg)
		return
	}
	deadline, apiErr := resolveDeadline(plan.CTWorst, req.Deadline, req.Load)
	if apiErr != nil {
		s.writeError(w, apiErr.status, apiErr.msg)
		return
	}

	// Each frame costs one NPM baseline plus one run per scheme, so the
	// per-chunk floor is correspondingly lower than /v1/run's.
	minFrames := minRunsPerChunk / (len(schemes) + 1)
	if minFrames < 8 {
		minFrames = 8
	}
	if nchunks := chunkCount(runs, s.pool.Workers(), req.Chunks, minFrames); nchunks > 1 {
		s.handleCompareChunked(w, r, &req, schemes, plan, deadline, runs, nchunks)
		return
	}

	resp := CompareResponse{
		App: plan.Graph.Name, Runs: runs, DeadlineS: deadline,
	}
	var runErr error
	err := s.pool.doUnits(r.Context(), int64(runs*(len(schemes)+1)), func(ctx context.Context, wk *Worker) {
		norm := make([]stats.Acc, len(schemes))
		chg := make([]stats.Acc, len(schemes))
		missed := make([]int, len(schemes))
		var npmEnergy stats.Acc
		var master exectime.Source
		master.Reseed(req.Seed)
		for i := 0; i < runs; i++ {
			if ctx.Err() != nil {
				runErr = ctx.Err()
				return
			}
			runSeed := master.Uint64()
			// Common random numbers: every scheme replays the same actual
			// times and branch outcomes.
			wk.Src.Reseed(runSeed)
			if runErr = plan.RunInto(core.RunConfig{
				Scheme: core.NPM, Deadline: deadline, Sampler: wk.Sampler,
			}, wk.Arena, &wk.Base); runErr != nil {
				return
			}
			base := wk.Base.Energy()
			npmEnergy.Add(base)
			for si, sc := range schemes {
				wk.Src.Reseed(runSeed)
				if runErr = plan.RunInto(core.RunConfig{
					Scheme: sc, Deadline: deadline, Sampler: wk.Sampler,
				}, wk.Arena, &wk.Res); runErr != nil {
					return
				}
				norm[si].Add(wk.Res.Energy() / base)
				chg[si].Add(float64(wk.Res.SpeedChanges))
				if !wk.Res.MetDeadline {
					missed[si]++
				}
			}
		}
		resp.NPMEnergyJ = npmEnergy.Mean()
		for si, sc := range schemes {
			resp.Schemes = append(resp.Schemes, CompareScheme{
				Scheme:           sc.String(),
				MeanNormEnergy:   norm[si].Mean(),
				CI95:             norm[si].CI95(),
				MeanSpeedChanges: chg[si].Mean(),
				DeadlineMisses:   missed[si],
			})
		}
		s.runs.Add(int64(runs * (len(schemes) + 1)))
	})
	if !s.checkPoolErr(w, err) {
		return
	}
	if runErr != nil {
		s.writeError(w, http.StatusInternalServerError, runErr.Error())
		return
	}
	s.writeJSONTraced(w, r, http.StatusOK, resp)
}

// checkPoolErr maps pool submission failures onto responses; true means
// the job ran and the caller should proceed.
func (s *Server) checkPoolErr(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrQueueFull):
		s.writeRateLimited(w, s.pool.RetryAfter(), "server at capacity, retry later")
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, http.StatusServiceUnavailable, "request timed out before a worker was available")
	default:
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
	}
	return false
}

// handleHealthz reports liveness plus basic capacity numbers, refreshed
// through the same snapshot path the other read endpoints use.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.refreshStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"workers":        s.cfg.Workers,
		"queue_capacity": s.cfg.QueueSize,
		"in_flight":      s.pool.InFlight(),
		"queue_age_s":    s.pool.OldestQueueAge().Seconds(),
		"cached_plans":   s.cachedPlans(),
		"tenants":        s.limiter.Len(),
	})
}

// handleMetrics exposes the registry in the Prometheus text exposition
// (0.0.4) or, when the Accept header asks for it, OpenMetrics — the only
// format in which exemplars (trace IDs on the phase histograms' +Inf
// buckets) are valid. Gauges sourced outside the registry (schedule
// cache, tenants, queue) are refreshed via the shared snapshot first. The
// body is rendered through the pooled-encoder buffer so a scrape neither
// allocates per line nor streams an error-prone partial response.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshStats()
	snap := s.metrics.Snapshot()
	b := jsonBufPool.Get().(*jsonBuf)
	b.buf.Reset()
	var err error
	contentType := "text/plain; version=0.0.4; charset=utf-8"
	if acceptsOpenMetrics(r.Header.Get("Accept")) {
		contentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"
		err = obs.WriteOpenMetrics(&b.buf, snap)
	} else {
		err = obs.WritePrometheus(&b.buf, snap)
	}
	if err != nil {
		jsonBufPool.Put(b)
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(b.buf.Bytes())
	if b.buf.Cap() <= jsonBufMaxRetained {
		jsonBufPool.Put(b)
	}
}

// acceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics text format (the way Prometheus does when exemplar scraping
// is on).
func acceptsOpenMetrics(accept string) bool {
	return strings.Contains(accept, "application/openmetrics-text")
}
