package serve

import (
	"net/http"
	"strconv"

	"andorsched/internal/core"
	"andorsched/internal/obs"
)

// refreshStats re-derives every gauge whose source of truth lives outside
// the registry — the section-schedule cache (process-wide on the legacy
// path, summed across worker shards on the shared-nothing one), the
// per-tenant admission counters, and the pool's queue depth/age — and, on
// the shared-nothing path, folds the per-worker plan-shard counters into
// the registry's plan-cache instruments. It runs on every read path that
// reports this state (/metrics, /healthz, /debug/requests), so a server
// that is never scraped still answers them consistently. This is the only
// place worker-local cache counters meet shared state: request execution
// never pays for metrics aggregation.
func (s *Server) refreshStats() {
	if s.cache != nil {
		st := core.ScheduleCacheStats()
		s.metrics.Gauge(MetricSchedCacheHits).Set(float64(st.Hits))
		s.metrics.Gauge(MetricSchedCacheMisses).Set(float64(st.Misses))
		s.metrics.Gauge(MetricSchedCacheEvictions).Set(float64(st.Evictions))
		s.metrics.Gauge(MetricSchedCacheSize).Set(float64(st.Size))
	} else {
		st := s.pool.SchedCacheStats()
		s.metrics.Gauge(MetricSchedCacheHits).Set(float64(st.Hits))
		s.metrics.Gauge(MetricSchedCacheMisses).Set(float64(st.Misses))
		s.metrics.Gauge(MetricSchedCacheEvictions).Set(float64(st.Evictions))
		s.metrics.Gauge(MetricSchedCacheSize).Set(float64(st.Size))
		s.mergePlanStats()
	}
	for _, ts := range s.limiter.Snapshot() {
		s.metrics.Gauge(tenantMetricName(ts.Tenant, "admitted")).Set(float64(ts.Admitted))
		s.metrics.Gauge(tenantMetricName(ts.Tenant, "rejected")).Set(float64(ts.Rejected))
		s.metrics.Gauge(tenantMetricName(ts.Tenant, "inflight")).Set(float64(ts.Inflight))
		s.metrics.Gauge(tenantMetricName(ts.Tenant, "runs")).Set(float64(ts.Runs))
	}
	s.metrics.Gauge(MetricQueueDepth).Set(float64(s.pool.QueueDepth()))
	s.metrics.Gauge(MetricQueueAge).Set(s.pool.OldestQueueAge().Seconds())
}

// mergePlanStats credits the growth of the merged per-worker plan-shard
// counters since the last merge to the registry's monotonic plan-cache
// counters. A merge racing the Close-time graveyard fold can transiently
// observe a total below lastMerged (a worker counter already zeroed, its
// graveyard credit not yet visible); such deltas are skipped without
// advancing the high-water mark, so the next merge catches up and nothing
// is lost or double-counted.
func (s *Server) mergePlanStats() {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	st := s.pool.PlanCacheStats()
	if d := st.Hits - s.lastMerged.Hits; d > 0 {
		s.metrics.Counter(MetricCacheHits).Add(d)
		s.lastMerged.Hits = st.Hits
	}
	if d := st.Misses - s.lastMerged.Misses; d > 0 {
		s.metrics.Counter(MetricCacheMisses).Add(d)
		s.lastMerged.Misses = st.Misses
	}
	if d := st.Evictions - s.lastMerged.Evictions; d > 0 {
		s.metrics.Counter(MetricCacheEvictions).Add(d)
		s.lastMerged.Evictions = st.Evictions
	}
	s.metrics.Gauge(MetricCacheSize).Set(float64(st.Size))
}

// DebugRequests is the GET /debug/requests response: the flight
// recorder's recent ring (newest first) and the slowest retained traces
// per endpoint, plus the pool state a slow trace usually implicates.
type DebugRequests struct {
	Recent     []obs.RequestTrace            `json:"recent"`
	Slowest    map[string][]obs.RequestTrace `json:"slowest"`
	InFlight   int                           `json:"in_flight"`
	QueueDepth int                           `json:"queue_depth"`
	QueueAgeS  float64                       `json:"queue_age_s"`
	// SpansDropped counts, over the recorder's lifetime, spans that
	// overflowed some trace's fixed span array (each trace also reports
	// its own dropped_spans, but evicted traces take that with them). A
	// steadily growing total means traces here are routinely incomplete —
	// fan-out (chunked runs, large batches) writing more phases than the
	// per-trace budget holds.
	SpansDropped int64 `json:"spans_dropped_total"`
}

// handleDebugRequests serves the flight recorder's contents as JSON.
// ?limit=N bounds the recent list (default 32).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		s.writeError(w, http.StatusNotFound, "request tracing is disabled")
		return
	}
	s.refreshStats()
	limit := 32
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, DebugRequests{
		Recent:       s.flight.Recent(limit),
		Slowest:      s.flight.Slowest(),
		InFlight:     s.pool.InFlight(),
		QueueDepth:   s.pool.QueueDepth(),
		QueueAgeS:    s.pool.OldestQueueAge().Seconds(),
		SpansDropped: s.flight.DroppedSpans(),
	})
}

// handleDebugRequest serves one retained trace by ID — as JSON, or as
// Chrome trace_event JSON (open in chrome://tracing or Perfetto) with
// ?format=chrome.
func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		s.writeError(w, http.StatusNotFound, "request tracing is disabled")
		return
	}
	id := r.PathValue("traceID")
	rt, ok := s.flight.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no retained trace with that ID (evicted or never seen)")
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, rt)
	case "chrome":
		data, err := obs.ChromeTraceRequest(rt)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace-`+rt.TraceID+`.json"`)
		_, _ = w.Write(data)
	default:
		s.writeError(w, http.StatusBadRequest, "format must be json or chrome")
	}
}
