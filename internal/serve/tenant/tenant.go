// Package tenant implements per-client admission control for the serving
// layer: token-bucket rate limiting, concurrency quotas and run-count
// budgets, keyed by an API-key header or the client's remote IP. The
// scheduler's run-time policies (GSS slack sharing, the paper's on-line
// phase) assume the work they arbitrate was admitted fairly; without
// per-tenant admission one noisy load generator starves every other
// client behind a single global 429 queue. The limiter sits in front of
// the worker pool: an over-quota request is rejected before it costs a
// compile or a queue slot, with a Retry-After computed exactly from the
// bucket's refill schedule rather than a constant.
//
// Design notes:
//
//   - Every tenant holds two token buckets — one denominated in requests,
//     one in simulation runs — plus an in-flight counter. A request is
//     admitted only when all three constraints pass; nothing is deducted
//     on rejection, so a rejected burst does not push the retry horizon
//     further out.
//   - State is bounded: at most MaxTenants tenants are tracked, evicting
//     the least-recently-seen. Eviction forgets bucket debt, which is the
//     safe direction (a returning tenant starts with a full bucket).
//   - The limiter is a single mutex around a map + intrusive LRU list.
//     Admission is a few float operations; the serving layer's request
//     rate (~10k/s) is far below the point where the lock matters.
package tenant

import (
	"container/list"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// Config parameterizes a Limiter. The zero value disables admission
// control entirely (New returns nil); set Enabled to activate it with the
// documented defaults.
type Config struct {
	// Enabled activates per-tenant admission control.
	Enabled bool
	// KeyHeader names the header whose value identifies the tenant
	// (default "X-API-Key"). Requests without the header fall back to the
	// remote IP. Set ByIPOnly to ignore headers entirely.
	KeyHeader string
	// ByIPOnly keys every request by remote IP, ignoring KeyHeader —
	// useful when the service fronts untrusted clients that could forge
	// arbitrary header values to escape their bucket.
	ByIPOnly bool
	// RequestsPerSec is each tenant's sustained request rate (default 100).
	RequestsPerSec float64
	// Burst is the request bucket's capacity (default RequestsPerSec,
	// floored at 1): the largest instantaneous burst a tenant may send.
	Burst float64
	// MaxInflight caps a tenant's concurrently admitted requests
	// (0 = unlimited).
	MaxInflight int
	// RunsPerSec is each tenant's sustained simulation-run budget
	// (0 = unlimited). A request asking for N Monte-Carlo runs consumes N
	// run tokens at admission, so one tenant cannot monopolize the workers
	// with a few huge requests while staying under its request rate.
	RunsPerSec float64
	// RunBurst is the run bucket's capacity (default 10×RunsPerSec).
	RunBurst float64
	// MaxTenants bounds the tracked-tenant map (default 1024); beyond it
	// the least-recently-seen tenant is forgotten.
	MaxTenants int
}

func (c Config) withDefaults() Config {
	if c.KeyHeader == "" {
		c.KeyHeader = "X-API-Key"
	}
	if c.RequestsPerSec <= 0 {
		c.RequestsPerSec = 100
	}
	if c.Burst <= 0 {
		c.Burst = math.Max(c.RequestsPerSec, 1)
	}
	if c.RunsPerSec > 0 && c.RunBurst <= 0 {
		c.RunBurst = 10 * c.RunsPerSec
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	return c
}

// Decision reports one admission attempt's outcome.
type Decision struct {
	// OK means the request was admitted; the caller must call the
	// accompanying release exactly once when the request finishes.
	OK bool
	// Tenant is the resolved tenant key the decision applied to.
	Tenant string
	// RetryAfter is the exact wait until the rejecting constraint could
	// pass, computed from the bucket refill schedule (zero when OK, one
	// second when the constraint has no schedule, i.e. a concurrency cap).
	RetryAfter time.Duration
	// Reason is a client-facing explanation of a rejection.
	Reason string
	// Never marks an ask no amount of waiting satisfies (a run count
	// larger than the whole run bucket); callers should answer 400, not
	// 429.
	Never bool
}

// state is one tenant's admission state. Buckets are refilled lazily on
// access from the elapsed wall-clock time.
type state struct {
	key       string
	elem      *list.Element
	last      time.Time // last refill
	reqTokens float64
	runTokens float64
	inflight  int

	admitted int64
	rejected int64
	runs     int64 // run tokens charged by admitted requests
}

// Limiter applies per-tenant admission control. A nil *Limiter admits
// everything (all methods are nil-safe), so callers can hold one pointer
// regardless of configuration.
type Limiter struct {
	cfg Config
	now func() time.Time // injected for tests

	mu      sync.Mutex
	tenants map[string]*state
	lru     *list.List // front = most recently seen
}

// New returns a Limiter for cfg, or nil when cfg.Enabled is false.
func New(cfg Config) *Limiter {
	if !cfg.Enabled {
		return nil
	}
	return &Limiter{
		cfg:     cfg.withDefaults(),
		now:     time.Now,
		tenants: make(map[string]*state),
		lru:     list.New(),
	}
}

// Config returns the limiter's effective (defaulted) configuration.
func (l *Limiter) Config() Config {
	if l == nil {
		return Config{}
	}
	return l.cfg
}

// KeyFromRequest resolves the tenant key of an HTTP request: the
// configured API-key header when present (and not ByIPOnly), else the
// remote IP. Keys are prefixed by their origin ("key:", "ip:") so an
// API key that happens to look like an address cannot collide with one.
func (l *Limiter) KeyFromRequest(r *http.Request) string {
	if l == nil {
		return ""
	}
	if !l.cfg.ByIPOnly {
		if v := r.Header.Get(l.cfg.KeyHeader); v != "" {
			return "key:" + v
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "ip:" + host
}

// Admit decides whether a request consuming runs simulation runs may
// proceed. On admission it returns release, which the caller must invoke
// exactly once when the request completes (it decrements the tenant's
// in-flight count); release is idempotent. On rejection release is nil
// and the Decision carries the retry schedule.
func (l *Limiter) Admit(key string, runs int) (Decision, func()) {
	if l == nil {
		return Decision{OK: true, Tenant: key}, func() {}
	}
	if runs < 0 {
		runs = 0
	}
	now := l.now()

	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.tenant(key, now)
	l.refill(st, now)

	// A run ask exceeding the whole bucket can never be admitted: waiting
	// only refills up to RunBurst.
	if l.cfg.RunsPerSec > 0 && float64(runs) > l.cfg.RunBurst {
		st.rejected++
		return Decision{
			Tenant: key, Never: true,
			Reason: fmt.Sprintf("request asks for %d runs, tenant run burst is %g", runs, l.cfg.RunBurst),
		}, nil
	}
	if l.cfg.MaxInflight > 0 && st.inflight >= l.cfg.MaxInflight {
		st.rejected++
		// Concurrency has no refill schedule; the caller falls back to its
		// drain-rate estimate (or 1s).
		return Decision{
			Tenant: key, RetryAfter: time.Second,
			Reason: fmt.Sprintf("tenant concurrency quota (%d in flight) exhausted", l.cfg.MaxInflight),
		}, nil
	}
	var wait time.Duration
	if st.reqTokens < 1 {
		wait = tokenWait(1-st.reqTokens, l.cfg.RequestsPerSec)
	}
	if l.cfg.RunsPerSec > 0 && st.runTokens < float64(runs) {
		if w := tokenWait(float64(runs)-st.runTokens, l.cfg.RunsPerSec); w > wait {
			wait = w
		}
	}
	if wait > 0 {
		st.rejected++
		return Decision{
			Tenant: key, RetryAfter: wait,
			Reason: "tenant rate limit exceeded, retry later",
		}, nil
	}

	st.reqTokens--
	if l.cfg.RunsPerSec > 0 {
		st.runTokens -= float64(runs)
	}
	st.inflight++
	st.admitted++
	st.runs += int64(runs)
	released := false
	release := func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if !released {
			released = true
			st.inflight--
		}
	}
	return Decision{OK: true, Tenant: key}, release
}

// tokenWait is the exact time a bucket refilling at rate tokens/s needs
// to cover a deficit.
func tokenWait(deficit, rate float64) time.Duration {
	return time.Duration(math.Ceil(deficit / rate * 1e9))
}

// tenant returns key's state, creating it (and evicting the
// least-recently-seen tenant beyond MaxTenants) as needed. Callers hold
// l.mu.
func (l *Limiter) tenant(key string, now time.Time) *state {
	if st, ok := l.tenants[key]; ok {
		l.lru.MoveToFront(st.elem)
		return st
	}
	if len(l.tenants) >= l.cfg.MaxTenants {
		oldest := l.lru.Back()
		victim := oldest.Value.(*state)
		l.lru.Remove(oldest)
		delete(l.tenants, victim.key)
	}
	st := &state{
		key:       key,
		last:      now,
		reqTokens: l.cfg.Burst,
		runTokens: l.cfg.RunBurst,
	}
	st.elem = l.lru.PushFront(st)
	l.tenants[key] = st
	return st
}

// refill tops up st's buckets for the time elapsed since the last refill.
// Callers hold l.mu.
func (l *Limiter) refill(st *state, now time.Time) {
	dt := now.Sub(st.last).Seconds()
	if dt <= 0 {
		return
	}
	st.last = now
	st.reqTokens = math.Min(l.cfg.Burst, st.reqTokens+dt*l.cfg.RequestsPerSec)
	if l.cfg.RunsPerSec > 0 {
		st.runTokens = math.Min(l.cfg.RunBurst, st.runTokens+dt*l.cfg.RunsPerSec)
	}
}

// Stats is one tenant's counters as of a Snapshot.
type Stats struct {
	// Tenant is the prefixed tenant key ("key:..." or "ip:...").
	Tenant string
	// Admitted and Rejected count admission decisions; Runs totals the run
	// tokens charged by admitted requests; Inflight is the current
	// concurrency.
	Admitted, Rejected, Runs int64
	Inflight                 int
}

// Snapshot returns every tracked tenant's counters, most recently seen
// first. Evicted tenants are absent (their counters are forgotten with
// their buckets).
func (l *Limiter) Snapshot() []Stats {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Stats, 0, len(l.tenants))
	for e := l.lru.Front(); e != nil; e = e.Next() {
		st := e.Value.(*state)
		out = append(out, Stats{
			Tenant: st.key, Admitted: st.admitted, Rejected: st.rejected,
			Runs: st.runs, Inflight: st.inflight,
		})
	}
	return out
}

// Len reports the number of tracked tenants.
func (l *Limiter) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.tenants)
}
