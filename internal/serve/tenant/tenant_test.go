package tenant

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock makes bucket arithmetic exact in tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestLimiter(t *testing.T, cfg Config) (*Limiter, *fakeClock) {
	t.Helper()
	cfg.Enabled = true
	l := New(cfg)
	if l == nil {
		t.Fatal("New returned nil for enabled config")
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l.now = clk.now
	return l, clk
}

func TestDisabledConfigReturnsNil(t *testing.T) {
	if l := New(Config{}); l != nil {
		t.Fatal("New with Enabled=false should return nil")
	}
	// The nil limiter admits everything and never panics.
	var l *Limiter
	d, release := l.Admit("anyone", 1000)
	if !d.OK {
		t.Error("nil limiter rejected a request")
	}
	release()
	if l.Snapshot() != nil || l.Len() != 0 {
		t.Error("nil limiter reported state")
	}
}

func TestRequestBucketRetryAfterExact(t *testing.T) {
	l, clk := newTestLimiter(t, Config{RequestsPerSec: 10, Burst: 2})

	for i := 0; i < 2; i++ {
		d, release := l.Admit("key:a", 0)
		if !d.OK {
			t.Fatalf("admit %d within burst rejected: %+v", i, d)
		}
		release()
	}
	// Bucket empty: the deficit is exactly one token = 100ms at 10/s.
	d, _ := l.Admit("key:a", 0)
	if d.OK {
		t.Fatal("admit beyond burst succeeded")
	}
	if d.RetryAfter != 100*time.Millisecond {
		t.Errorf("RetryAfter %v, want exactly 100ms", d.RetryAfter)
	}
	// Waiting less than the advertised schedule still rejects…
	clk.advance(50 * time.Millisecond)
	if d, _ := l.Admit("key:a", 0); d.OK {
		t.Error("admitted before the advertised RetryAfter elapsed")
	}
	// …waiting it out admits (49.99ms remain short of the original 100).
	clk.advance(51 * time.Millisecond)
	d, release := l.Admit("key:a", 0)
	if !d.OK {
		t.Fatalf("rejected after the advertised RetryAfter elapsed: %+v", d)
	}
	release()
}

func TestRunBudget(t *testing.T) {
	l, clk := newTestLimiter(t, Config{RequestsPerSec: 1000, RunsPerSec: 100, RunBurst: 50})

	d, release := l.Admit("key:a", 50)
	if !d.OK {
		t.Fatalf("full-burst run ask rejected: %+v", d)
	}
	release()
	// Run bucket drained: one run costs 1/100s of refill.
	d, _ = l.Admit("key:a", 1)
	if d.OK {
		t.Fatal("over-budget run ask admitted")
	}
	if d.RetryAfter != 10*time.Millisecond {
		t.Errorf("RetryAfter %v, want exactly 10ms (1 run token at 100/s)", d.RetryAfter)
	}
	clk.advance(10 * time.Millisecond)
	if d, release := l.Admit("key:a", 1); !d.OK {
		t.Fatalf("rejected after refill: %+v", d)
	} else {
		release()
	}
	// An ask beyond the whole bucket is never satisfiable.
	d, _ = l.Admit("key:a", 51)
	if d.OK || !d.Never {
		t.Fatalf("runs > RunBurst should be Never, got %+v", d)
	}
}

func TestRejectionDeductsNothing(t *testing.T) {
	l, clk := newTestLimiter(t, Config{RequestsPerSec: 10, Burst: 1})
	if d, release := l.Admit("key:a", 0); !d.OK {
		t.Fatal("first admit rejected")
	} else {
		release()
	}
	// Hammering while empty must not push the horizon out: after 100ms the
	// tenant gets its token back regardless of how many rejections landed.
	for i := 0; i < 50; i++ {
		if d, _ := l.Admit("key:a", 0); d.OK {
			t.Fatal("admitted while bucket empty")
		}
	}
	clk.advance(100 * time.Millisecond)
	if d, release := l.Admit("key:a", 0); !d.OK {
		t.Fatalf("rejections consumed tokens: %+v", d)
	} else {
		release()
	}
}

func TestMaxInflight(t *testing.T) {
	l, _ := newTestLimiter(t, Config{RequestsPerSec: 1000, MaxInflight: 2})

	_, rel1 := l.Admit("key:a", 0)
	d2, _ := l.Admit("key:a", 0)
	if !d2.OK {
		t.Fatal("second admit under quota rejected")
	}
	d3, _ := l.Admit("key:a", 0)
	if d3.OK {
		t.Fatal("admit beyond concurrency quota succeeded")
	}
	if d3.RetryAfter <= 0 {
		t.Error("concurrency rejection must still advise a positive RetryAfter")
	}
	// Another tenant is unaffected.
	if d, release := l.Admit("key:b", 0); !d.OK {
		t.Fatal("other tenant rejected")
	} else {
		release()
	}
	rel1()
	rel1() // release is idempotent
	if d, release := l.Admit("key:a", 0); !d.OK {
		t.Fatalf("slot not freed by release: %+v", d)
	} else {
		release()
	}
}

func TestTenantsIsolated(t *testing.T) {
	l, _ := newTestLimiter(t, Config{RequestsPerSec: 10, Burst: 1})
	if d, release := l.Admit("key:a", 0); !d.OK {
		t.Fatal("a rejected")
	} else {
		release()
	}
	if d, _ := l.Admit("key:a", 0); d.OK {
		t.Fatal("a's burst not consumed")
	}
	// b has its own bucket.
	if d, release := l.Admit("key:b", 0); !d.OK {
		t.Fatal("b rejected because of a's consumption")
	} else {
		release()
	}
}

func TestKeyFromRequest(t *testing.T) {
	l, _ := newTestLimiter(t, Config{})
	r := httptest.NewRequest("POST", "/v1/run", nil)
	r.RemoteAddr = "192.0.2.7:5123"
	if got := l.KeyFromRequest(r); got != "ip:192.0.2.7" {
		t.Errorf("no header: key %q, want ip:192.0.2.7", got)
	}
	r.Header.Set("X-API-Key", "alpha")
	if got := l.KeyFromRequest(r); got != "key:alpha" {
		t.Errorf("with header: key %q, want key:alpha", got)
	}

	byIP, _ := newTestLimiter(t, Config{ByIPOnly: true})
	if got := byIP.KeyFromRequest(r); got != "ip:192.0.2.7" {
		t.Errorf("ByIPOnly ignores headers: key %q, want ip:192.0.2.7", got)
	}

	custom, _ := newTestLimiter(t, Config{KeyHeader: "X-Tenant"})
	r.Header.Set("X-Tenant", "beta")
	if got := custom.KeyFromRequest(r); got != "key:beta" {
		t.Errorf("custom header: key %q, want key:beta", got)
	}
}

func TestMaxTenantsLRUEviction(t *testing.T) {
	l, _ := newTestLimiter(t, Config{MaxTenants: 4})
	for i := 0; i < 10; i++ {
		_, release := l.Admit(fmt.Sprintf("key:t%d", i), 0)
		release()
	}
	if n := l.Len(); n != 4 {
		t.Fatalf("tracking %d tenants, want 4", n)
	}
	// The survivors are the four most recently seen.
	snap := l.Snapshot()
	if len(snap) != 4 || snap[0].Tenant != "key:t9" || snap[3].Tenant != "key:t6" {
		t.Errorf("unexpected survivors: %+v", snap)
	}
}

func TestSnapshotCounters(t *testing.T) {
	l, _ := newTestLimiter(t, Config{RequestsPerSec: 1000, RunsPerSec: 1000, RunBurst: 100, MaxInflight: 1})
	_, rel := l.Admit("key:a", 30) // admitted, holds the inflight slot
	if d, _ := l.Admit("key:a", 1); d.OK {
		t.Fatal("second concurrent admit succeeded")
	}
	snap := l.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d tenants, want 1", len(snap))
	}
	got := snap[0]
	want := Stats{Tenant: "key:a", Admitted: 1, Rejected: 1, Runs: 30, Inflight: 1}
	if got != want {
		t.Errorf("stats %+v, want %+v", got, want)
	}
	rel()
	if s := l.Snapshot()[0]; s.Inflight != 0 {
		t.Errorf("inflight %d after release, want 0", s.Inflight)
	}
}

// TestConcurrentAdmission exercises the limiter under -race: many
// goroutines over a handful of tenants, checking the inflight accounting
// converges to zero and admitted+rejected covers every attempt.
func TestConcurrentAdmission(t *testing.T) {
	l, _ := newTestLimiter(t, Config{RequestsPerSec: 1e9, Burst: 1e9, MaxInflight: 4})
	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("key:t%d", g%3)
			for i := 0; i < perG; i++ {
				if d, release := l.Admit(key, 1); d.OK {
					release()
				}
			}
		}(g)
	}
	wg.Wait()
	var attempts int64
	for _, s := range l.Snapshot() {
		if s.Inflight != 0 {
			t.Errorf("tenant %s inflight %d after quiesce, want 0", s.Tenant, s.Inflight)
		}
		attempts += s.Admitted + s.Rejected
	}
	if attempts != goroutines*perG {
		t.Errorf("admitted+rejected = %d, want %d", attempts, goroutines*perG)
	}
}
