package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/obs"
)

// BatchRequest carries many small run requests in one HTTP round trip, so
// N Monte-Carlo experiments cost one connection, one admission decision
// and one response instead of N of each.
type BatchRequest struct {
	// Items are independent run requests (same shape as /v1/run bodies);
	// each item's runs (default 1) aggregate into its summary line rather
	// than streaming rows.
	Items []RunRequest `json:"items"`
}

// BatchItemResult is one item's line in the NDJSON response: either an
// execution summary (Error empty) or a per-item failure. Item indexes
// refer to the request's items array; lines are emitted in item order.
type BatchItemResult struct {
	Item  int    `json:"item"`
	Error string `json:"error,omitempty"`
	// The remaining fields mirror RunSummary for a successful item.
	Runs           int     `json:"runs,omitempty"`
	Scheme         string  `json:"scheme,omitempty"`
	DeadlineS      float64 `json:"deadline_s,omitempty"`
	MeanEnergyJ    float64 `json:"mean_energy_j,omitempty"`
	MeanFinishS    float64 `json:"mean_finish_s,omitempty"`
	MaxFinishS     float64 `json:"max_finish_s,omitempty"`
	DeadlineMisses int     `json:"deadline_misses,omitempty"`
	LSTViolations  int     `json:"lst_violations,omitempty"`
	SpeedChanges   int     `json:"speed_changes,omitempty"`
	// Per-class energy means, heterogeneous items only (see RunSummary).
	MeanClassGrossJ []float64 `json:"mean_class_gross_j,omitempty"`
	MeanClassIdleJ  []float64 `json:"mean_class_idle_j,omitempty"`
}

// BatchSummary is the trailing line of a batch response; its presence is
// the completeness marker clients (and loadgen) already rely on for
// /v1/run streams.
type BatchSummary struct {
	Summary bool `json:"summary"`
	Items   int  `json:"items"`
	OK      int  `json:"ok"`
	Errors  int  `json:"errors"`
	Runs    int  `json:"runs"`
}

// batchSeedBase seeds the derivation of per-item default seeds: item i of
// a batch whose items omit their seed runs with exectime.SeedAt(
// batchSeedBase, i). Fixed so seedless batches are reproducible across
// processes; arbitrary otherwise.
const batchSeedBase = 0x8f1c_33d9_5b24_a6e7

// batchItem is one item after validation: ready to execute, or already
// failed with its error line.
type batchItem struct {
	plan *core.Plan
	cfg  core.RunConfig
	runs int
	seed uint64
	res  BatchItemResult
}

// handleBatch executes every item of the request across the worker pool
// and answers one NDJSON stream of per-item summaries plus a trailing
// batch summary. The whole batch passes tenant admission once (charging
// the sum of its items' runs), then items are executed in parallel with
// blocking pool submission — an admitted batch rides out queue contention
// instead of failing partway. Item-level application errors (bad scheme,
// infeasible deadline, unknown workload) become per-item error lines, not
// request failures; request-level errors (malformed JSON, size/count/run
// caps, admission) keep their usual statuses.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req BatchRequest
	if apiErr := s.decodeJSON(r, &req); apiErr != nil {
		s.writeError(w, apiErr.status, apiErr.msg)
		return
	}
	if len(req.Items) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch has no items")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d items, limit %d", len(req.Items), s.cfg.MaxBatchItems))
		return
	}
	s.batchItems.Add(int64(len(req.Items)))
	totalRuns := 0
	for i := range req.Items {
		runs := req.Items[i].Runs
		if runs == 0 {
			runs = 1
		}
		if runs < 1 || runs > s.cfg.MaxRuns {
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("item %d: runs %d outside [1, %d]", i, runs, s.cfg.MaxRuns))
			return
		}
		totalRuns += runs
		if totalRuns > s.cfg.MaxRuns {
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch totals more than %d runs", s.cfg.MaxRuns))
			return
		}
	}
	release, ok := s.admit(w, r, totalRuns)
	if !ok {
		return
	}
	defer release()

	// Resolve every item up front: scheme, plan (through the cache, so a
	// batch of one workload compiles once) and deadline. Failures become
	// the item's line; the rest of the batch proceeds.
	items := make([]batchItem, len(req.Items))
	for i := range req.Items {
		it := &items[i]
		it.res.Item = i
		spec := &req.Items[i]
		schemeName := spec.Scheme
		if schemeName == "" {
			schemeName = "GSS"
		}
		scheme, err := core.ParseScheme(schemeName)
		if err != nil {
			it.res.Error = err.Error()
			continue
		}
		plan, _, apiErr := s.planFor(r.Context(), &spec.AppSpec)
		if apiErr != nil {
			if apiErr.status == http.StatusServiceUnavailable {
				// A compile timeout is a request-level condition (the batch's
				// context is gone), not an item defect.
				s.writeError(w, apiErr.status, apiErr.msg)
				return
			}
			it.res.Error = apiErr.msg
			continue
		}
		deadline, apiErr := resolveDeadline(plan.CTWorst, spec.Deadline, spec.Load)
		if apiErr != nil {
			it.res.Error = apiErr.msg
			continue
		}
		it.plan = plan
		// The sampler is bound per worker at execution time; here only the
		// scheme, deadline and worst-case mode are fixed.
		it.cfg = core.RunConfig{Scheme: scheme, Deadline: deadline, WorstCase: spec.Worst}
		it.runs = spec.Runs
		if it.runs == 0 {
			it.runs = 1
		}
		it.seed = spec.Seed
		if it.seed == 0 {
			// Items that do not pick a seed get distinct, deterministic
			// per-item defaults. Sharing /v1/run's literal default (0) across
			// the batch made every seedless item replay one random stream:
			// a batch of "independent" replications silently returned N
			// copies of the same experiment. (Seed 0 therefore cannot be
			// requested explicitly in a batch item; any other value is used
			// verbatim, and resubmitting the same batch reproduces the same
			// per-item streams.)
			it.seed = exectime.SeedAt(batchSeedBase, uint64(i))
		}
	}

	// Execute in parallel across the pool. Items are striped into one
	// chunk per worker — one pool job per chunk, not per item — so the
	// dispatch cost (goroutine, queue round-trip, completion channel) is
	// paid ~workers times per batch instead of ~items times. Blocking
	// submission (DoWait) keeps an admitted batch from failing on
	// transient queue pressure.
	valid := make([]*batchItem, 0, len(items))
	for i := range items {
		if items[i].plan != nil {
			valid = append(valid, &items[i])
		}
	}
	chunks := s.pool.Workers()
	if chunks > len(valid) {
		chunks = len(valid)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		executed int64
	)
	for c := 0; c < chunks; c++ {
		lo, hi := c*len(valid)/chunks, (c+1)*len(valid)/chunks
		chunk := valid[lo:hi]
		chunkUnits := int64(0)
		for _, it := range chunk {
			chunkUnits += int64(it.runs)
		}
		wg.Add(1)
		go func(chunk []*batchItem, chunkUnits int64) {
			defer wg.Done()
			err := s.pool.doWaitUnits(r.Context(), chunkUnits, func(ctx context.Context, wk *Worker) {
				done := int64(0)
				defer func() {
					mu.Lock()
					executed += done
					mu.Unlock()
				}()
				for _, it := range chunk {
					if ctx.Err() != nil {
						return // request-level failure, handled below
					}
					cfg := it.cfg
					if !cfg.WorstCase {
						cfg.Sampler = wk.Sampler
					}
					sum, err := monteCarlo(ctx, wk, it.plan, cfg, it.runs, it.seed, nil)
					done += int64(sum.Runs)
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						it.res.Error = err.Error()
						continue
					}
					it.res = BatchItemResult{
						Item: it.res.Item, Runs: sum.Runs, Scheme: sum.Scheme,
						DeadlineS: sum.DeadlineS, MeanEnergyJ: sum.MeanEnergyJ,
						MeanFinishS: sum.MeanFinishS, MaxFinishS: sum.MaxFinishS,
						DeadlineMisses: sum.DeadlineMisses, LSTViolations: sum.LSTViolations,
						SpeedChanges:    sum.SpeedChanges,
						MeanClassGrossJ: sum.MeanClassGrossJ, MeanClassIdleJ: sum.MeanClassIdleJ,
					}
				}
			})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(chunk, chunkUnits)
	}
	wg.Wait()
	s.runs.Add(executed)
	if err := r.Context().Err(); err != nil {
		// The batch's own deadline expired (or the client left) mid-flight;
		// nothing has been written, so report it properly.
		s.writeError(w, http.StatusServiceUnavailable, "batch timed out before completing")
		return
	}
	if firstErr != nil {
		s.checkPoolErr(w, firstErr)
		return
	}

	// All items settled: commit the 200 and stream the lines in item
	// order, then the completeness marker.
	rec := obs.TraceFromContext(r.Context())
	t0 := rec.SinceStart()
	defer rec.RecordOffset(PhaseEncode, t0)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	sum := BatchSummary{Summary: true, Items: len(items)}
	for i := range items {
		if items[i].res.Error != "" {
			sum.Errors++
		} else {
			sum.OK++
			sum.Runs += items[i].res.Runs
		}
		if enc.Encode(&items[i].res) != nil {
			return // client went away; the missing summary marks it incomplete
		}
	}
	_ = enc.Encode(sum)
}
