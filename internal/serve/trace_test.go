package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"andorsched/internal/obs"
	"andorsched/internal/serve/tenant"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)

// TestTraceIDOnAllResponses pins the header contract: every response from
// the /v1 endpoints — success or failure — carries an X-Trace-Id.
func TestTraceIDOnAllResponses(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"plan-ok", "/v1/plan", `{"workload":"atr","procs":2}`, http.StatusOK},
		{"plan-bad-json", "/v1/plan", `{`, http.StatusBadRequest},
		{"run-ok", "/v1/run", `{"workload":"atr","scheme":"GSS"}`, http.StatusOK},
		{"run-stream-ok", "/v1/run", `{"workload":"atr","scheme":"GSS","runs":3}`, http.StatusOK},
		{"run-bad-scheme", "/v1/run", `{"workload":"atr","scheme":"NOPE"}`, http.StatusBadRequest},
		{"run-bad-runs", "/v1/run", `{"workload":"atr","runs":-2}`, http.StatusBadRequest},
		{"compare-ok", "/v1/compare", `{"workload":"atr","schemes":["GSS"],"runs":2}`, http.StatusOK},
		{"compare-bad", "/v1/compare", `{"workload":"atr","schemes":["NOPE"]}`, http.StatusBadRequest},
		{"batch-ok", "/v1/batch", `{"items":[{"workload":"atr","scheme":"GSS"}]}`, http.StatusOK},
		{"batch-empty", "/v1/batch", `{"items":[]}`, http.StatusBadRequest},
		{"run-unknown-workload", "/v1/run", `{"workload":"no-such-app"}`, http.StatusBadRequest},
	}
	seen := map[string]bool{}
	for _, tc := range cases {
		w := post(t, s, tc.path, tc.body)
		if w.Code != tc.wantStatus {
			t.Errorf("%s: status %d, want %d: %s", tc.name, w.Code, tc.wantStatus, w.Body.String())
		}
		id := w.Header().Get("X-Trace-Id")
		if !traceIDRe.MatchString(id) {
			t.Errorf("%s: X-Trace-Id %q is not 32 hex digits", tc.name, id)
			continue
		}
		if seen[id] {
			t.Errorf("%s: trace ID %s repeated across requests", tc.name, id)
		}
		seen[id] = true
	}

	// Method-not-allowed responses are traced too (the middleware runs
	// before the method gate).
	req := httptest.NewRequest(http.MethodGet, "/v1/run", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run: status %d, want 405", w.Code)
	}
	if id := w.Header().Get("X-Trace-Id"); !traceIDRe.MatchString(id) {
		t.Errorf("405 response X-Trace-Id %q", id)
	}
}

// TestInboundTraceparent checks W3C trace-context adoption: the response
// echoes the inbound trace ID and the retained trace records the caller's
// span as its parent.
func TestInboundTraceparent(t *testing.T) {
	s := newTestServer(t, Config{})
	const parent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req := httptest.NewRequest(http.MethodPost, "/v1/run",
		strings.NewReader(`{"workload":"atr","scheme":"GSS"}`))
	req.Header.Set("Traceparent", parent)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if id := w.Header().Get("X-Trace-Id"); id != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("X-Trace-Id %q did not adopt the inbound trace ID", id)
	}
	rt, ok := s.flight.Get("0af7651916cd43dd8448eb211c80319c")
	if !ok {
		t.Fatal("trace not retained")
	}
	if rt.ParentSpan != "b7ad6b7169203331" {
		t.Errorf("parent span %q, want b7ad6b7169203331", rt.ParentSpan)
	}
}

// spanCoverage returns the fraction of the trace's wall-clock covered by
// the union of its span intervals.
func spanCoverage(rt obs.RequestTrace) float64 {
	if rt.DurationUS <= 0 || len(rt.Spans) == 0 {
		return 0
	}
	type iv struct{ lo, hi float64 }
	ivs := make([]iv, 0, len(rt.Spans))
	for _, sp := range rt.Spans {
		ivs = append(ivs, iv{sp.StartUS, sp.StartUS + sp.DurUS})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	covered, end := 0.0, ivs[0].lo
	for _, v := range ivs {
		if v.lo > end {
			end = v.lo
		}
		if v.hi > end {
			covered += v.hi - end
			end = v.hi
		}
	}
	return covered / rt.DurationUS
}

// TestTraceRetrievalAndCoverage drives a warmed streaming /v1/run,
// retrieves its trace from /debug/requests/{traceID} (JSON and Chrome
// forms) and requires the phase spans to cover ≥95% of the request's
// wall-clock.
func TestTraceRetrievalAndCoverage(t *testing.T) {
	s := newTestServer(t, Config{})
	warm := post(t, s, "/v1/run", `{"workload":"atr","scheme":"GSS"}`)
	if warm.Code != http.StatusOK {
		t.Fatalf("warmup status %d: %s", warm.Code, warm.Body.String())
	}
	w := post(t, s, "/v1/run", `{"workload":"atr","scheme":"GSS","runs":200,"seed":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	id := w.Header().Get("X-Trace-Id")

	req := httptest.NewRequest(http.MethodGet, "/debug/requests/"+id, nil)
	dw := httptest.NewRecorder()
	s.Handler().ServeHTTP(dw, req)
	if dw.Code != http.StatusOK {
		t.Fatalf("GET /debug/requests/%s: status %d: %s", id, dw.Code, dw.Body.String())
	}
	var rt obs.RequestTrace
	decodeBody(t, dw, &rt)
	if rt.TraceID != id || rt.Endpoint != "/v1/run" || rt.Status != http.StatusOK {
		t.Fatalf("trace = %+v", rt)
	}
	phases := map[string]bool{}
	for _, sp := range rt.Spans {
		phases[sp.Phase] = true
	}
	for _, want := range []string{PhaseDecode, PhaseCache, PhaseQueue, PhaseExec, PhaseExecMC} {
		if !phases[want] {
			t.Errorf("trace missing phase %q: %+v", want, rt.Spans)
		}
	}
	if cov := spanCoverage(rt); cov < 0.95 {
		t.Errorf("phase spans cover %.1f%% of wall-clock, want >= 95%%: %+v", 100*cov, rt.Spans)
	}

	// Chrome export of the same trace.
	req = httptest.NewRequest(http.MethodGet, "/debug/requests/"+id+"?format=chrome", nil)
	cw := httptest.NewRecorder()
	s.Handler().ServeHTTP(cw, req)
	if cw.Code != http.StatusOK {
		t.Fatalf("chrome export: status %d: %s", cw.Code, cw.Body.String())
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	decodeBody(t, cw, &tf)
	names := map[string]bool{}
	for _, e := range tf.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"/v1/run", PhaseExec, PhaseQueue} {
		if !names[want] {
			t.Errorf("chrome export missing slice %q", want)
		}
	}

	// The listing endpoint sees it too.
	req = httptest.NewRequest(http.MethodGet, "/debug/requests", nil)
	lw := httptest.NewRecorder()
	s.Handler().ServeHTTP(lw, req)
	if lw.Code != http.StatusOK {
		t.Fatalf("GET /debug/requests: status %d", lw.Code)
	}
	var list DebugRequests
	decodeBody(t, lw, &list)
	if len(list.Recent) == 0 || len(list.Slowest["/v1/run"]) == 0 {
		t.Errorf("debug listing empty: %+v", list)
	}

	// An unknown ID is a 404; a malformed one too.
	for _, bad := range []string{strings.Repeat("0", 31) + "1", "zz"} {
		req = httptest.NewRequest(http.MethodGet, "/debug/requests/"+bad, nil)
		bw := httptest.NewRecorder()
		s.Handler().ServeHTTP(bw, req)
		if bw.Code != http.StatusNotFound {
			t.Errorf("GET /debug/requests/%s: status %d, want 404", bad, bw.Code)
		}
	}
}

// TestTracingDisabled checks the opt-out: no header, no flight recorder,
// /debug/requests answers 404.
func TestTracingDisabled(t *testing.T) {
	s := newTestServer(t, Config{Trace: TraceConfig{Disabled: true}})
	w := post(t, s, "/v1/run", `{"workload":"atr","scheme":"GSS"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if id := w.Header().Get("X-Trace-Id"); id != "" {
		t.Errorf("disabled tracing still set X-Trace-Id %q", id)
	}
	req := httptest.NewRequest(http.MethodGet, "/debug/requests", nil)
	dw := httptest.NewRecorder()
	s.Handler().ServeHTTP(dw, req)
	if dw.Code != http.StatusNotFound {
		t.Errorf("GET /debug/requests with tracing disabled: status %d, want 404", dw.Code)
	}
}

// collectPhases returns the recorded phase names of a live record.
func collectPhases(rec *obs.TraceRec) []string {
	var out []string
	rec.VisitSpans(func(phase string, _, _ time.Duration, _ string, _ int64) {
		out = append(out, phase)
	})
	return out
}

// TestQueueWaitCancellation pins the satellite contract: a job cancelled
// while queued records a queue-wait span but no execution span, and the
// pool's gauges return to zero. Run under -race it also proves the
// record handoff between submitter and worker is clean.
func TestQueueWaitCancellation(t *testing.T) {
	p := NewPool(1, 4, 16)
	defer p.Close()
	f := obs.NewFlight(8, 2)

	// Occupy the single worker.
	block := make(chan struct{})
	runningA := make(chan struct{})
	doneA := make(chan error, 1)
	go func() {
		doneA <- p.Do(context.Background(), func(ctx context.Context, wk *Worker) {
			close(runningA)
			<-block
		})
	}()
	<-runningA

	// Queue a traced job, then cancel it before the worker frees up.
	rec := f.Start("/v1/run", "", time.Now())
	ctx, cancel := context.WithCancel(obs.ContextWithTrace(context.Background(), rec))
	queued := make(chan error, 1)
	go func() {
		queued <- p.Do(ctx, func(ctx context.Context, wk *Worker) {
			t.Error("cancelled job executed")
		})
	}()
	// Wait until the job is visibly queued, then cancel and release the
	// worker so it drains the dead job.
	for i := 0; p.OldestQueueAge() == 0; i++ {
		if i > 1000 {
			t.Fatal("job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(block)
	if err := <-queued; err != context.Canceled {
		t.Fatalf("cancelled Do returned %v, want context.Canceled", err)
	}
	if err := <-doneA; err != nil {
		t.Fatalf("blocking job failed: %v", err)
	}

	phases := collectPhases(rec)
	if len(phases) != 1 || phases[0] != PhaseQueue {
		t.Errorf("cancelled-while-queued job recorded %v, want exactly [queue]", phases)
	}
	if n := p.InFlight(); n != 0 {
		t.Errorf("InFlight = %d after drain, want 0", n)
	}
	if age := p.OldestQueueAge(); age != 0 {
		t.Errorf("OldestQueueAge = %v after drain, want 0", age)
	}
}

// TestQueueWaitCancelledBeforeSend covers the DoWait blocked-send path: a
// caller that gives up while waiting for queue space still records its
// wait as queue time, and the queue-age map is cleaned up.
func TestQueueWaitCancelledBeforeSend(t *testing.T) {
	p := NewPool(1, 1, 16)
	defer p.Close()
	f := obs.NewFlight(8, 2)

	block := make(chan struct{})
	runningA := make(chan struct{})
	doneA := make(chan error, 1)
	go func() {
		doneA <- p.Do(context.Background(), func(ctx context.Context, wk *Worker) {
			close(runningA)
			<-block
		})
	}()
	<-runningA
	// Fill the 1-slot queue.
	doneB := make(chan error, 1)
	go func() {
		doneB <- p.DoWait(context.Background(), func(ctx context.Context, wk *Worker) {})
	}()
	for i := 0; p.InFlight() < 2; i++ {
		if i > 1000 {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// A traced DoWait now blocks on the send; cancel it there.
	rec := f.Start("/v1/batch", "", time.Now())
	ctx, cancel := context.WithCancel(obs.ContextWithTrace(context.Background(), rec))
	blocked := make(chan error, 1)
	go func() {
		blocked <- p.DoWait(ctx, func(ctx context.Context, wk *Worker) {
			t.Error("cancelled job executed")
		})
	}()
	time.Sleep(10 * time.Millisecond) // let it reach the blocking send
	cancel()
	if err := <-blocked; err != context.Canceled {
		t.Fatalf("cancelled DoWait returned %v, want context.Canceled", err)
	}
	close(block)
	if err := <-doneA; err != nil {
		t.Fatalf("blocking job failed: %v", err)
	}
	if err := <-doneB; err != nil {
		t.Fatalf("queued job failed: %v", err)
	}

	phases := collectPhases(rec)
	if len(phases) != 1 || phases[0] != PhaseQueue {
		t.Errorf("cancelled-before-send job recorded %v, want exactly [queue]", phases)
	}
	if n := p.InFlight(); n != 0 {
		t.Errorf("InFlight = %d after drain, want 0", n)
	}
	if age := p.OldestQueueAge(); age != 0 {
		t.Errorf("OldestQueueAge = %v after drain, want 0", age)
	}
}

// TestMetricsContentTypeAndExemplars pins the exposition contracts: the
// default scrape is 0.0.4 with an explicit charset and no exemplars; an
// OpenMetrics Accept gets the OpenMetrics content type, the phase
// histograms' trace-ID exemplars, and the # EOF terminator.
func TestMetricsContentTypeAndExemplars(t *testing.T) {
	s := newTestServer(t, Config{})
	run := post(t, s, "/v1/run", `{"workload":"atr","scheme":"GSS"}`)
	if run.Code != http.StatusOK {
		t.Fatalf("run status %d", run.Code)
	}
	id := run.Header().Get("X-Trace-Id")

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("scrape status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type %q", ct)
	}
	body := w.Body.String()
	if !strings.Contains(body, `serve_phase_latency_seconds_bucket{phase="exec",`) {
		t.Errorf("scrape missing phase histogram:\n%s", body)
	}
	if strings.Contains(body, "# {") {
		t.Error("0.0.4 exposition carries exemplars")
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if ct := w.Header().Get("Content-Type"); ct != "application/openmetrics-text; version=1.0.0; charset=utf-8" {
		t.Errorf("OpenMetrics Content-Type %q", ct)
	}
	om := w.Body.String()
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("OpenMetrics body does not end with # EOF")
	}
	if !strings.Contains(om, `# {trace_id="`+id+`"}`) {
		t.Errorf("OpenMetrics scrape missing the run's exemplar (trace %s):\n%s", id, om)
	}
}

// TestScrapeFreeTenantState pins the satellite fix: tenant gauges are
// refreshed by any stats-reading endpoint (here /healthz), not only by
// /metrics scrapes.
func TestScrapeFreeTenantState(t *testing.T) {
	s := newTestServer(t, Config{Tenant: tenant.Config{Enabled: true, RequestsPerSec: 1000}})
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/run",
			strings.NewReader(`{"workload":"atr","scheme":"GSS"}`))
		req.Header.Set("X-API-Key", "acme")
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}

	// No /metrics scrape has happened; /healthz must still refresh the
	// tenant gauges.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
	snap := s.Metrics().Snapshot()
	admitted, ok := snap.Gauge(tenantMetricName("key:acme", "admitted"))
	if !ok || admitted != 3 {
		t.Errorf("tenant admitted gauge = %v (present=%v), want 3 without a scrape", admitted, ok)
	}
	inflight, _ := snap.Gauge(tenantMetricName("key:acme", "inflight"))
	if inflight != 0 {
		t.Errorf("tenant inflight gauge = %v, want 0", inflight)
	}
}
