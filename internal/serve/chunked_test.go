package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChunkCount pins the splitting policy: explicit chunk counts are
// honored within caps, auto-chunking engages only when the pool and the
// request are both big enough.
func TestChunkCount(t *testing.T) {
	cases := []struct {
		runs, workers, requested, minPer, want int
	}{
		{1000, 4, 0, 64, 4},                 // auto: one chunk per worker
		{1000, 1, 0, 64, 1},                 // single worker: chunking buys nothing
		{100, 4, 0, 64, 1},                  // under 2×floor: stay serial
		{128, 4, 0, 64, 2},                  // exactly 2×floor: 2 chunks of 64
		{192, 4, 0, 64, 3},                  // floor limits chunks below workers
		{1000, 128, 0, 64, 15},              // floor limits wide pools too
		{100000, 128, 0, 64, 64},            // maxRunChunks cap on auto
		{1000, 4, 1, 64, 1},                 // explicit serial
		{1000, 4, 7, 64, 7},                 // explicit beats worker count
		{5, 4, 8, 64, 5},                    // explicit capped at runs
		{100000, 4, 1000, 64, maxRunChunks}, // explicit capped at maxRunChunks
	}
	for _, tc := range cases {
		if got := chunkCount(tc.runs, tc.workers, tc.requested, tc.minPer); got != tc.want {
			t.Errorf("chunkCount(%d, %d, %d, %d) = %d, want %d",
				tc.runs, tc.workers, tc.requested, tc.minPer, got, tc.want)
		}
	}
	// Bounds must cover every run exactly once, in order.
	for _, nc := range []int{1, 2, 3, 7, 8} {
		next := 0
		for c := 0; c < nc; c++ {
			lo, hi := chunkBounds(1000, nc, c)
			if lo != next || hi < lo {
				t.Fatalf("chunkBounds(1000, %d, %d) = [%d, %d), want lo %d", nc, c, lo, hi, next)
			}
			next = hi
		}
		if next != 1000 {
			t.Fatalf("chunkBounds(1000, %d, ...) covered %d runs", nc, next)
		}
	}
}

// TestChunkedRunDifferential is the issue's gate: for every scheme, on
// homogeneous and heterogeneous platforms, a chunked /v1/run must answer
// the byte-for-byte identical NDJSON body — every row and the summary —
// as the serial (chunks:1) form of the same request, for every chunk
// count. Not statistically equivalent: identical.
func TestChunkedRunDifferential(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueSize: 64})
	schemes := []string{"NPM", "SPM", "GSS", "SS1", "SS2", "AS", "CLV", "ASP", "ORA"}
	platforms := []string{
		`"workload":"atr"`,
		`"workload":"atr","hetero":"biglittle","placement":"class-affinity"`,
	}
	runsCases := []int{1, 7, 100, 1000}
	chunkCases := []int{0, 2, 3, 5, 8} // 0 = auto

	for _, plat := range platforms {
		for _, scheme := range schemes {
			for _, runs := range runsCases {
				serialBody := ""
				for _, chunks := range append([]int{1}, chunkCases...) {
					body := fmt.Sprintf(`{%s,"scheme":%q,"runs":%d,"seed":12345,"chunks":%d}`,
						plat, scheme, runs, chunks)
					w := post(t, s, "/v1/run", body)
					if w.Code != http.StatusOK {
						t.Fatalf("%s: status %d: %s", body, w.Code, w.Body.String())
					}
					if chunks == 1 {
						serialBody = w.Body.String()
						continue
					}
					if got := w.Body.String(); got != serialBody {
						t.Fatalf("%s diverged from serial response\nchunked: %s\nserial:  %s",
							body, truncateDiff(got, serialBody), truncateDiff(serialBody, got))
					}
				}
			}
		}
	}
}

// truncateDiff returns the neighborhood of the first difference, so a
// differential failure points at the divergent row instead of dumping two
// megabyte bodies.
func truncateDiff(got, want string) string {
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	hi := i + 120
	if hi > len(got) {
		hi = len(got)
	}
	return fmt.Sprintf("...byte %d: %q", i, got[lo:hi])
}

// TestChunkedRunDefaultSeed covers the seed-omitted form: the master
// stream defaults to seed 0 and chunking must preserve that too.
func TestChunkedRunDefaultSeed(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueSize: 64})
	serial := post(t, s, "/v1/run", `{"workload":"atr","scheme":"AS","runs":300,"chunks":1}`)
	if serial.Code != http.StatusOK {
		t.Fatalf("serial status %d", serial.Code)
	}
	auto := post(t, s, "/v1/run", `{"workload":"atr","scheme":"AS","runs":300}`)
	if auto.Code != http.StatusOK {
		t.Fatalf("auto status %d", auto.Code)
	}
	if serial.Body.String() != auto.Body.String() {
		t.Fatal("auto-chunked seedless run diverged from serial")
	}
}

// TestChunkedRunValidation: the chunks field is validated like the other
// request knobs — negative or over-cap values are a 400, not a clamp.
func TestChunkedRunValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, body := range []string{
		`{"workload":"atr","runs":100,"chunks":-1}`,
		fmt.Sprintf(`{"workload":"atr","runs":100,"chunks":%d}`, maxRunChunks+1),
		`{"workload":"atr","schemes":["GSS"],"runs":10,"chunks":-3}`,
	} {
		path := "/v1/run"
		if strings.Contains(body, "schemes") {
			path = "/v1/compare"
		}
		if w := post(t, s, path, body); w.Code != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", path, body, w.Code)
		}
	}
}

// TestChunkedCompareDifferential: /v1/compare under frame chunking must
// reproduce the serial response byte for byte — the CRN pairing of NPM
// baseline and scheme replays inside each frame survives the split.
func TestChunkedCompareDifferential(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueSize: 64})
	bodies := []string{
		`{"workload":"atr","schemes":["GSS","AS","ORA"],"runs":%d,"seed":7,"chunks":%d}`,
		`{"workload":"atr","hetero":"biglittle","schemes":["AS","ASP"],"runs":%d,"seed":7,"chunks":%d}`,
	}
	for _, tpl := range bodies {
		for _, runs := range []int{1, 40, 300} {
			serial := post(t, s, "/v1/compare", fmt.Sprintf(tpl, runs, 1))
			if serial.Code != http.StatusOK {
				t.Fatalf("serial compare status %d: %s", serial.Code, serial.Body.String())
			}
			for _, chunks := range []int{0, 2, 5, 8} {
				w := post(t, s, "/v1/compare", fmt.Sprintf(tpl, runs, chunks))
				if w.Code != http.StatusOK {
					t.Fatalf("chunked compare status %d: %s", w.Code, w.Body.String())
				}
				if w.Body.String() != serial.Body.String() {
					t.Fatalf("compare runs=%d chunks=%d diverged from serial\nchunked: %s\nserial:  %s",
						runs, chunks, w.Body.String(), serial.Body.String())
				}
			}
		}
	}
}

// FuzzChunkedRunDifferential fuzzes the serial/chunked equivalence: any
// two chunk counts of the same request must produce identical bodies.
func FuzzChunkedRunDifferential(f *testing.F) {
	f.Add(uint8(0), uint16(100), uint64(1), uint8(1), uint8(4), false)
	f.Add(uint8(5), uint16(300), uint64(42), uint8(2), uint8(7), true)
	f.Add(uint8(8), uint16(1), uint64(0), uint8(1), uint8(8), false)
	f.Add(uint8(3), uint16(129), uint64(1<<63), uint8(3), uint8(5), true)

	s := New(Config{Workers: 4, QueueSize: 64, RequestTimeout: 30 * time.Second})
	f.Cleanup(s.Close)
	schemes := []string{"NPM", "SPM", "GSS", "SS1", "SS2", "AS", "CLV", "ASP", "ORA"}

	f.Fuzz(func(t *testing.T, schemeIdx uint8, runs uint16, seed uint64, chunksA, chunksB uint8, hetero bool) {
		scheme := schemes[int(schemeIdx)%len(schemes)]
		nruns := int(runs)%500 + 1
		plat := `"workload":"atr"`
		if hetero {
			plat = `"workload":"atr","hetero":"biglittle"`
		}
		req := func(chunks int) string {
			body := fmt.Sprintf(`{%s,"scheme":%q,"runs":%d,"seed":%d,"chunks":%d}`,
				plat, scheme, nruns, seed, chunks)
			w := post(t, s, "/v1/run", body)
			if w.Code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", body, w.Code, w.Body.String())
			}
			return w.Body.String()
		}
		a := req(int(chunksA)%maxRunChunks + 1)
		b := req(int(chunksB)%maxRunChunks + 1)
		if a != b {
			t.Fatalf("chunk counts %d and %d disagree for scheme=%s runs=%d seed=%d",
				int(chunksA)%maxRunChunks+1, int(chunksB)%maxRunChunks+1, scheme, nruns, seed)
		}
	})
}

// TestFanOutAllOrNothing races chunked execution against Pool.Close: every
// fanOut call must either run all its chunks (nil error) or fail as a
// whole — a nil return with missing chunk work would be a partial summary
// presented as a complete one. Run under -race this also audits the
// submit/Close handshake along the new fan-out path.
func TestFanOutAllOrNothing(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		p := NewPool(3, 2, 8)
		const requests = 8
		const chunks = 4
		var wg sync.WaitGroup
		results := make([]error, requests)
		counts := make([]atomic.Int64, requests)
		for r := 0; r < requests; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[r] = p.fanOut(context.Background(), chunks, nil,
					func(c int) func(context.Context, *Worker) {
						return func(ctx context.Context, wk *Worker) {
							time.Sleep(50 * time.Microsecond)
							counts[r].Add(1)
						}
					})
			}()
		}
		time.Sleep(time.Duration(iter%5) * 100 * time.Microsecond)
		p.Close()
		wg.Wait()
		for r := 0; r < requests; r++ {
			if results[r] == nil && counts[r].Load() != chunks {
				t.Fatalf("iter %d request %d: fanOut returned nil with %d/%d chunks executed",
					iter, r, counts[r].Load(), chunks)
			}
		}
	}
}

// TestFanOutCancellation: cancelling the request context mid-fan-out
// fails the whole request, and running chunks observe the cancellation
// instead of simulating to completion.
func TestFanOutCancellation(t *testing.T) {
	p := NewPool(2, 8, 8)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 4)
	var sawCancel atomic.Int32
	errc := make(chan error, 1)
	go func() {
		errc <- p.fanOut(ctx, 4, nil,
			func(c int) func(context.Context, *Worker) {
				return func(ctx context.Context, wk *Worker) {
					started <- struct{}{}
					<-ctx.Done()
					sawCancel.Add(1)
				}
			})
	}()
	<-started // at least one chunk is running
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("fanOut returned nil for a cancelled request")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fanOut did not return after cancellation")
	}
	if sawCancel.Load() == 0 {
		t.Error("no running chunk observed the cancellation")
	}
}

// TestFanOutAdmission pins the 429 semantics of the chunked path: when the
// shared queue cannot take even the first chunk, fanOut fails fast with
// ErrQueueFull — one admission decision for the whole request, like the
// serial path — rather than blocking or half-submitting.
func TestFanOutAdmission(t *testing.T) {
	p := NewPool(1, 1, 8)
	defer p.Close()
	gate := make(chan struct{})
	var wg sync.WaitGroup
	// Occupy the worker and the only queue slot.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.DoWait(context.Background(), func(ctx context.Context, wk *Worker) { <-gate })
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.QueueDepth() < 1 || p.InFlight() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("pool never saturated")
		}
		time.Sleep(100 * time.Microsecond)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- p.fanOut(context.Background(), 4, nil,
			func(c int) func(context.Context, *Worker) {
				return func(ctx context.Context, wk *Worker) {}
			})
	}()
	select {
	case err := <-errc:
		if err != ErrQueueFull {
			t.Fatalf("fanOut on full queue: %v, want ErrQueueFull", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fanOut blocked on a full queue instead of failing fast")
	}
	close(gate)
	wg.Wait()
}

// TestRetryAfterCountsUnits is the S2 regression: the Retry-After estimate
// must be derived from work units (runs), not job counts. With chunk
// fan-out a queue of W chunk jobs holds one request's work; a per-job
// estimate learned from whole-request jobs would overprice it by ~W×.
func TestRetryAfterCountsUnits(t *testing.T) {
	p := NewPool(2, 8, 8)
	defer p.Close()
	gate := make(chan struct{})
	var wg sync.WaitGroup
	// Pin both workers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.DoWait(context.Background(), func(ctx context.Context, wk *Worker) { <-gate })
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.InFlight() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never pinned")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Queue four single-unit chunk-style jobs.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.doWaitUnits(context.Background(), 1, func(ctx context.Context, wk *Worker) {})
		}()
	}
	for p.QueueDepth() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Teach the workers a history of 8-unit jobs at 100ms/unit — i.e. the
	// pool has been running 8-chunk requests whose chunks take 800ms each.
	for _, w := range p.workers {
		w.svcUnitNanos.Store(int64(100 * time.Millisecond))
		w.jobUnits.Store(8)
	}
	// Per-unit math: (4 queued units + 8 mean units) × 100ms ÷ 2 workers
	// = 600ms → floors to 1s. The old per-job estimate ((4+1) jobs ×
	// 800ms ÷ 2 = 2s) would tell the client to stay away twice as long as
	// the queue actually needs.
	if got := p.RetryAfter(); got != time.Second {
		t.Errorf("RetryAfter = %v, want 1s (unit-derived estimate)", got)
	}
	// Sanity: with genuinely heavy queued work the estimate scales up.
	p.unitsQueued.Add(100)
	if got := p.RetryAfter(); got < 5*time.Second {
		t.Errorf("RetryAfter = %v with 104 queued units at 100ms/unit, want ≥5s", got)
	}
	p.unitsQueued.Add(-100)
	close(gate)
	wg.Wait()
}

// TestChunkedTraceSpans is the S3 check for the default fan-out: a traced
// chunked run must record one exec.mc span per chunk with its run count,
// and drop nothing at default chunk widths.
func TestChunkedTraceSpans(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueSize: 64})
	w := post(t, s, "/v1/run", `{"workload":"atr","scheme":"GSS","runs":1000,"seed":3,"chunks":8}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	id := w.Header().Get("X-Trace-Id")
	rt, ok := s.flight.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	if rt.DroppedSpans != 0 {
		t.Errorf("default chunked fan-out dropped %d spans", rt.DroppedSpans)
	}
	mcSpans, mcRuns := 0, int64(0)
	for _, sp := range rt.Spans {
		if sp.Phase == PhaseExecMC {
			mcSpans++
			mcRuns += sp.N
		}
	}
	if mcSpans != 8 {
		t.Errorf("exec.mc spans = %d, want one per chunk (8)", mcSpans)
	}
	if mcRuns != 1000 {
		t.Errorf("exec.mc span run counts total %d, want 1000", mcRuns)
	}
	if got := s.flight.DroppedSpans(); got != 0 {
		t.Errorf("recorder-lifetime dropped spans = %d, want 0", got)
	}
}

// TestSpanOverflowCounted is the S3 overflow side: a request recording
// more spans than the per-trace array holds must surface the overflow in
// its trace and in /debug/requests' lifetime total instead of losing it
// silently.
func TestSpanOverflowCounted(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueSize: 16, MaxBatchItems: 128})
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"workload":"atr","scheme":"GSS","seed":%d}`, i+1)
	}
	sb.WriteString(`]}`)
	w := post(t, s, "/v1/batch", sb.String())
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	id := w.Header().Get("X-Trace-Id")
	rt, ok := s.flight.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	if rt.DroppedSpans == 0 {
		t.Fatal("100-item traced batch did not overflow the span array; overflow path untested")
	}
	req := httptest.NewRequest(http.MethodGet, "/debug/requests", nil)
	dw := httptest.NewRecorder()
	s.Handler().ServeHTTP(dw, req)
	if dw.Code != http.StatusOK {
		t.Fatalf("/debug/requests status %d", dw.Code)
	}
	var dbg DebugRequests
	if err := json.Unmarshal(dw.Body.Bytes(), &dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.SpansDropped < int64(rt.DroppedSpans) {
		t.Errorf("spans_dropped_total = %d, below the single trace's %d",
			dbg.SpansDropped, rt.DroppedSpans)
	}
}

// TestBatchDistinctDefaultSeeds is the S1 regression: items that omit
// their seed must run distinct random streams — before the fix they all
// replayed stream 0 and a batch of "independent" replications returned N
// identical summaries.
func TestBatchDistinctDefaultSeeds(t *testing.T) {
	s := newTestServer(t, Config{MaxBatchItems: 8})
	body := `{"items":[
		{"workload":"atr","scheme":"AS","runs":20},
		{"workload":"atr","scheme":"AS","runs":20},
		{"workload":"atr","scheme":"AS","runs":20}]}`
	w := post(t, s, "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	first := w.Body.String()
	var items []BatchItemResult
	for _, line := range strings.Split(strings.TrimSpace(first), "\n") {
		if strings.Contains(line, `"summary"`) {
			continue
		}
		var it BatchItemResult
		if err := json.Unmarshal([]byte(line), &it); err != nil {
			t.Fatal(err)
		}
		if it.Error != "" {
			t.Fatalf("item %d: %s", it.Item, it.Error)
		}
		items = append(items, it)
	}
	if len(items) != 3 {
		t.Fatalf("%d item lines, want 3", len(items))
	}
	if items[0].MeanEnergyJ == items[1].MeanEnergyJ && items[1].MeanEnergyJ == items[2].MeanEnergyJ {
		t.Error("seedless items produced identical summaries: shared random stream")
	}
	// Deterministic: the same seedless batch replays the same per-item
	// streams.
	if again := post(t, s, "/v1/batch", body); again.Body.String() != first {
		t.Error("resubmitted seedless batch diverged: per-item defaults are not deterministic")
	}
}

// TestBatchExplicitSeedMatchesRun: an item with an explicit seed must
// summarize exactly as /v1/run with that seed — the batch path adds no
// seed skew of its own.
func TestBatchExplicitSeedMatchesRun(t *testing.T) {
	s := newTestServer(t, Config{MaxBatchItems: 8})
	w := post(t, s, "/v1/batch",
		`{"items":[{"workload":"atr","scheme":"GSS","runs":50,"seed":99},
		           {"workload":"atr","scheme":"GSS","runs":50,"seed":99}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	var a, b BatchItemResult
	if err := json.Unmarshal([]byte(lines[0]), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &b); err != nil {
		t.Fatal(err)
	}
	if a.MeanEnergyJ != b.MeanEnergyJ || a.MeanFinishS != b.MeanFinishS {
		t.Errorf("same explicit seed, different summaries: %+v vs %+v", a, b)
	}

	rw := post(t, s, "/v1/run", `{"workload":"atr","scheme":"GSS","runs":50,"seed":99}`)
	if rw.Code != http.StatusOK {
		t.Fatalf("run status %d", rw.Code)
	}
	runLines := strings.Split(strings.TrimSpace(rw.Body.String()), "\n")
	var sum RunSummary
	if err := json.Unmarshal([]byte(runLines[len(runLines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if a.MeanEnergyJ != sum.MeanEnergyJ || a.MeanFinishS != sum.MeanFinishS ||
		a.DeadlineMisses != sum.DeadlineMisses {
		t.Errorf("batch item (seed 99) %+v != /v1/run summary %+v", a, sum)
	}
}

// TestChunkedRunRetryAfterBound: a 429 produced while the pool digests
// chunked work must carry a Retry-After derived from the actual queued
// units — single-digit seconds here, not a W×-inflated figure.
func TestChunkedRunRetryAfterBound(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueSize: 2})
	// Warm the plan (and the service-time EWMAs) so rejections below use
	// learned rates.
	if w := post(t, s, "/v1/run", `{"workload":"atr","scheme":"GSS","runs":2000,"chunks":2}`); w.Code != http.StatusOK {
		t.Fatalf("warmup status %d", w.Code)
	}
	// Saturate with chunked requests in the background, then collect a
	// rejection. Requests are sized to hold the queue for tens of
	// milliseconds each: the closed-loop senders keep the 2-slot queue
	// full almost continuously once all four are in flight.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				post(t, s, "/v1/run", `{"workload":"atr","scheme":"AS","runs":40000,"chunks":2}`)
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("never saw a 429 under chunked saturation")
		}
		w := post(t, s, "/v1/run", `{"workload":"atr","scheme":"GSS","runs":200,"chunks":2}`)
		if w.Code != http.StatusTooManyRequests {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		ra := w.Header().Get("Retry-After")
		secs := 0
		if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil {
			t.Fatalf("Retry-After %q not an integer", ra)
		}
		// The estimate is load- and machine-dependent (an oversubscribed
		// CI box honestly reports slow per-unit rates), so the e2e check
		// pins the plumbing and the documented clamp; the exact
		// unit-derived arithmetic is pinned by TestRetryAfterCountsUnits.
		if secs < 1 || secs > 60 {
			t.Errorf("Retry-After %ds outside the documented [1, 60]s clamp", secs)
		}
		return
	}
}
