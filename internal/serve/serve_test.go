package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a Server with small, test-friendly capacities.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 16
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// post runs one POST through the full middleware stack.
func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func decodeBody(t *testing.T, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
}

func TestPlanEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/plan", `{"workload":"atr","procs":2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp PlanResponse
	decodeBody(t, w, &resp)
	if resp.Nodes == 0 || resp.Sections == 0 || resp.CTWorst <= 0 {
		t.Errorf("implausible plan summary: %+v", resp)
	}
	if resp.CTAvg > resp.CTWorst {
		t.Errorf("CTAvg %g > CTWorst %g", resp.CTAvg, resp.CTWorst)
	}
	if resp.Cached {
		t.Error("first compile reported as cached")
	}

	// The same application again must come from the cache.
	w = post(t, s, "/v1/plan", `{"workload":"atr","procs":2}`)
	var again PlanResponse
	decodeBody(t, w, &again)
	if !again.Cached {
		t.Error("second identical request not served from cache")
	}
	if again.CTWorst != resp.CTWorst {
		t.Errorf("cached plan differs: %g vs %g", again.CTWorst, resp.CTWorst)
	}
}

func TestRunSingleDeterministic(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"workload":"synthetic","scheme":"GSS","load":0.5,"seed":7}`
	w1 := post(t, s, "/v1/run", body)
	if w1.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w1.Code, w1.Body.String())
	}
	var row RunRow
	decodeBody(t, w1, &row)
	if row.Scheme != "GSS" || row.FinishS <= 0 || row.EnergyJ <= 0 {
		t.Errorf("implausible row: %+v", row)
	}
	if !row.MetDeadline {
		t.Errorf("GSS missed the deadline: %+v", row)
	}
	// Same seed, same everything: responses must be byte-identical.
	w2 := post(t, s, "/v1/run", body)
	if w1.Body.String() != w2.Body.String() {
		t.Errorf("same seed produced different responses:\n%s\n%s", w1.Body, w2.Body)
	}
	// A different seed must (for this workload) produce a different run.
	w3 := post(t, s, "/v1/run", `{"workload":"synthetic","scheme":"GSS","load":0.5,"seed":8}`)
	if w1.Body.String() == w3.Body.String() {
		t.Error("different seeds produced identical responses")
	}
}

func TestRunWorstCase(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/run", `{"workload":"synthetic","scheme":"NPM","load":0.8,"worst":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var row RunRow
	decodeBody(t, w, &row)
	if !row.MetDeadline {
		t.Errorf("worst case under a feasible deadline must meet it: %+v", row)
	}
	if row.FinishS > row.DeadlineS {
		t.Errorf("finish %g beyond deadline %g", row.FinishS, row.DeadlineS)
	}
}

func TestRunStreamNDJSON(t *testing.T) {
	s := newTestServer(t, Config{})
	const runs = 50
	w := post(t, s, "/v1/run", `{"workload":"synthetic","scheme":"AS","runs":50,"seed":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != runs+1 {
		t.Fatalf("got %d lines, want %d rows + summary", len(lines), runs)
	}
	for i, line := range lines[:runs] {
		var row RunRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if row.Run != i {
			t.Fatalf("row %d has run index %d", i, row.Run)
		}
	}
	var sum RunSummary
	if err := json.Unmarshal([]byte(lines[runs]), &sum); err != nil {
		t.Fatalf("summary: %v", err)
	}
	if !sum.Summary || sum.Runs != runs {
		t.Errorf("bad summary: %+v", sum)
	}
	if sum.MeanEnergyJ <= 0 || sum.MaxFinishS <= 0 {
		t.Errorf("implausible summary stats: %+v", sum)
	}
}

func TestCompareEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/compare",
		`{"workload":"synthetic","schemes":["NPM","GSS","AS"],"runs":30,"load":0.5,"seed":5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp CompareResponse
	decodeBody(t, w, &resp)
	if len(resp.Schemes) != 3 {
		t.Fatalf("got %d schemes", len(resp.Schemes))
	}
	if resp.Schemes[0].Scheme != "NPM" || resp.Schemes[0].MeanNormEnergy != 1 {
		t.Errorf("NPM must normalize to exactly 1: %+v", resp.Schemes[0])
	}
	for _, sc := range resp.Schemes {
		if sc.MeanNormEnergy <= 0 || sc.MeanNormEnergy > 1.5 {
			t.Errorf("%s: implausible normalized energy %g", sc.Scheme, sc.MeanNormEnergy)
		}
		if sc.DeadlineMisses != 0 {
			t.Errorf("%s: %d deadline misses", sc.Scheme, sc.DeadlineMisses)
		}
	}
	// The dynamic scheme must beat NPM on energy under slack.
	if gss := resp.Schemes[1]; gss.MeanNormEnergy >= 1 {
		t.Errorf("GSS norm energy %g not below NPM", gss.MeanNormEnergy)
	}
}

func TestCompareDefaultsToAllSchemes(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, body := range []string{
		`{"workload":"synthetic","runs":5}`,
		`{"workload":"synthetic","runs":5,"schemes":["all"]}`,
	} {
		w := post(t, s, "/v1/compare", body)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", body, w.Code, w.Body.String())
		}
		var resp CompareResponse
		decodeBody(t, w, &resp)
		if len(resp.Schemes) != 9 {
			t.Errorf("%s: compare covered %d schemes, want all 9", body, len(resp.Schemes))
		}
	}
}

func TestValidationErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		status           int
	}{
		{"no app", "/v1/run", `{}`, 400},
		{"two apps", "/v1/run", `{"workload":"atr","text":"task A 1ms 1ms"}`, 400},
		{"bad workload", "/v1/run", `{"workload":"../../etc/passwd"}`, 400},
		{"file path workload", "/v1/run", `{"workload":"workloads/atr.andor"}`, 400},
		{"bad scheme", "/v1/run", `{"workload":"atr","scheme":"TURBO"}`, 400},
		{"bad platform", "/v1/run", `{"workload":"atr","platform":"pentium"}`, 400},
		{"bad procs", "/v1/run", `{"workload":"atr","procs":-3}`, 400},
		{"huge procs", "/v1/run", `{"workload":"atr","procs":1000}`, 400},
		{"bad load", "/v1/run", `{"workload":"atr","load":1.5}`, 400},
		{"infeasible deadline", "/v1/run", `{"workload":"atr","deadline":1e-9}`, 400},
		{"negative deadline", "/v1/run", `{"workload":"atr","deadline":-1}`, 400},
		{"negative overheads", "/v1/run", `{"workload":"atr","overheads":{"speed_change_us":-1}}`, 400},
		{"excess runs", "/v1/run", `{"workload":"atr","runs":1000000000}`, 400},
		{"negative runs", "/v1/run", `{"workload":"atr","runs":-5}`, 400},
		{"malformed json", "/v1/run", `{"workload":`, 400},
		{"trailing garbage", "/v1/run", `{"workload":"atr"} extra`, 400},
		{"bad graph json", "/v1/plan", `{"graph":{"nodes":"nope"}}`, 400},
		{"invalid text", "/v1/plan", `{"text":"task A"}`, 400},
		{"compare bad scheme", "/v1/compare", `{"workload":"atr","schemes":["bogus"]}`, 400},
		{"compare excess total", "/v1/compare", `{"workload":"atr","runs":999999}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, tc.path, tc.body)
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
			var e struct {
				Error string `json:"error"`
			}
			decodeBody(t, w, &e)
			if e.Error == "" {
				t.Error("error response without error message")
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, path := range []string{"/v1/plan", "/v1/run", "/v1/compare"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d", path, w.Code)
		}
		if allow := w.Header().Get("Allow"); allow != http.MethodPost {
			t.Errorf("GET %s: Allow %q", path, allow)
		}
	}
}

func TestOversizedBody(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 1024})
	big := `{"workload":"atr","text":"` + strings.Repeat("x", 4096) + `"}`
	w := post(t, s, "/v1/run", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", w.Code, w.Body.String())
	}
}

func TestPanicRecovery(t *testing.T) {
	s := newTestServer(t, Config{})
	s.mux.HandleFunc("/boom", s.wrap("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	req := httptest.NewRequest(http.MethodGet, "/boom", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if n, _ := s.Metrics().Snapshot().Counter(MetricPanics); n != 1 {
		t.Errorf("panic counter %d, want 1", n)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{Workers: 3, QueueSize: 9})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var h map[string]any
	decodeBody(t, w, &h)
	if h["status"] != "ok" {
		t.Errorf("status field %v", h["status"])
	}
	if h["workers"].(float64) != 3 || h["queue_capacity"].(float64) != 9 {
		t.Errorf("capacity numbers wrong: %v", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	post(t, s, "/v1/run", `{"workload":"synthetic"}`)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"serve_http_requests", "serve_http_latency_seconds_bucket",
		"serve_runs", "serve_cache_misses",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
}
