// Package serve exposes the scheduler as a long-running HTTP/JSON service:
// the off-line phase (core.NewPlan) runs once per distinct application and
// is memoized in an LRU plan cache with duplicate-compile suppression,
// while on-line executions run on a bounded worker pool whose workers each
// own a core.Arena and a reseedable exectime source — the steady-state
// request path is the same zero-allocation machinery the experiment
// harness uses.
//
// Endpoints:
//
//	POST /v1/plan     compile (or fetch) a plan, return its summary
//	POST /v1/run      execute an application once, or runs=N times with
//	                  NDJSON row streaming and a trailing summary
//	POST /v1/batch    execute many small run requests in one round trip,
//	                  answered as NDJSON per-item summaries
//	POST /v1/compare  compare schemes under common random numbers
//	GET  /healthz     liveness + basic capacity numbers
//	GET  /metrics     Prometheus text exposition of the obs registry
//
// Robustness: per-request timeouts, request body size limits, input
// validation mapped to 400s, a bounded admission queue answering 429 with
// a Retry-After derived from queue depth and the observed drain rate,
// optional per-tenant admission control (token-bucket rate limits,
// concurrency quotas and run budgets — see the tenant package), panic
// recovery, and graceful drain on Shutdown (in-flight requests complete,
// the listener closes first). See docs/SERVER.md.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"andorsched/internal/obs"
	"andorsched/internal/serve/tenant"
)

// Config parameterizes a Server. The zero value gets sensible defaults
// from New.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueSize bounds the admission queue (default 64). When the queue is
	// full, requests are rejected with 429.
	QueueSize int
	// CacheSize bounds the plan cache (default 128 plans).
	CacheSize int
	// RequestTimeout bounds each request end to end (default 15s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxRuns bounds the runs of a single /v1/run or /v1/compare request
	// (default 100000).
	MaxRuns int
	// MaxProcs bounds the procs a request may ask for (default 64).
	MaxProcs int
	// MaxBatchItems bounds the items of a single /v1/batch request
	// (default 256). The total runs of a batch are separately bounded by
	// MaxRuns.
	MaxBatchItems int
	// Tenant configures per-client admission control (rate limits,
	// concurrency quotas, run budgets). The zero value disables it.
	Tenant tenant.Config
	// Metrics receives the server's instruments; a fresh registry is
	// created when nil.
	Metrics *obs.Metrics
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 100000
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 64
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	return c
}

// Server is the scheduling service. Create with New, expose via Handler
// (for tests or custom listeners) or Serve/ListenAndServe, stop with
// Shutdown (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	cache   *PlanCache
	pool    *Pool
	limiter *tenant.Limiter // nil when admission control is disabled
	mux     *http.ServeMux
	httpSrv *http.Server
	start   time.Time

	requests    *obs.Counter
	errors      *obs.Counter
	panics      *obs.Counter
	rejections  *obs.Counter
	tenantRejNo *obs.Counter
	runs        *obs.Counter
	batchItems  *obs.Counter
	latency     *obs.Histogram
}

// New builds a Server from cfg (zero value fine) without binding a port.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := cfg.Metrics
	s := &Server{
		cfg:         cfg,
		metrics:     m,
		cache:       NewPlanCache(cfg.CacheSize, m),
		pool:        NewPool(cfg.Workers, cfg.QueueSize, m),
		limiter:     tenant.New(cfg.Tenant),
		mux:         http.NewServeMux(),
		start:       time.Now(),
		requests:    m.Counter(MetricRequests),
		errors:      m.Counter(MetricErrors),
		panics:      m.Counter(MetricPanics),
		rejections:  m.Counter(MetricRejections),
		tenantRejNo: m.Counter(MetricTenantRejections),
		runs:        m.Counter(MetricRuns),
		batchItems:  m.Counter(MetricBatchItems),
		latency:     m.Histogram(MetricLatency, latencyBuckets),
	}
	s.mux.HandleFunc("/v1/plan", s.wrap(s.handlePlan))
	s.mux.HandleFunc("/v1/run", s.wrap(s.handleRun))
	s.mux.HandleFunc("/v1/batch", s.wrap(s.handleBatch))
	s.mux.HandleFunc("/v1/compare", s.wrap(s.handleCompare))
	s.mux.HandleFunc("/healthz", s.wrap(s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.wrap(s.handleMetrics))
	return s
}

// Handler returns the server's root handler (middleware included).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's registry.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Cache returns the plan cache (exposed for tests and health output).
func (s *Server) Cache() *PlanCache { return s.cache }

// wrap is the per-request middleware: counting, latency, panic recovery,
// body size limit and the request timeout.
func (s *Server) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		startReq := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				s.errors.Inc()
				// Best effort: if the handler already wrote, this is a no-op
				// on the status line but still terminates the response.
				http.Error(w, `{"error":"internal server error"}`, http.StatusInternalServerError)
			}
			s.latency.Observe(time.Since(startReq).Seconds())
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		h(w, r)
	}
}

// Serve accepts connections on l until Shutdown or Close. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s.httpSrv.Serve(l)
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains gracefully: the listener closes (new connections are
// refused), in-flight requests run to completion within ctx, then the
// worker pool stops. Safe to call without a listener (Handler-only use);
// it then just stops the pool.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.pool.Close()
	return err
}

// Close stops the pool without waiting for in-flight HTTP requests. For
// tests that use Handler directly.
func (s *Server) Close() {
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.pool.Close()
}

// jsonBuf pairs a reusable buffer with an encoder bound to it, pooled so
// the steady-state response path allocates neither. Encoding into the
// buffer (rather than straight to the ResponseWriter) also means an encode
// failure can still become a clean 500 — nothing has been written yet —
// and lets net/http set Content-Length instead of chunking.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{
	New: func() any {
		b := &jsonBuf{}
		b.enc = json.NewEncoder(&b.buf)
		return b
	},
}

// jsonBufMaxRetained bounds the buffers returned to the pool: a rare huge
// response (a long path trace, a wide compare) should not pin its backing
// array for the life of the process.
const jsonBufMaxRetained = 64 << 10

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b := jsonBufPool.Get().(*jsonBuf)
	b.buf.Reset()
	if err := b.enc.Encode(v); err != nil {
		jsonBufPool.Put(b)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(b.buf.Bytes())
	if b.buf.Cap() <= jsonBufMaxRetained {
		jsonBufPool.Put(b)
	}
}

// writeError writes a JSON error body and counts it. 429s go through
// writeRateLimited instead, which owes the client a Retry-After.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.errors.Inc()
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeRateLimited answers 429 with a Retry-After derived from the actual
// schedule that rejected the request — a tenant bucket's refill time or
// the pool's queue-drain estimate — rounded up to whole seconds (the
// header's integer form) with a 1s floor.
func (s *Server) writeRateLimited(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	s.errors.Inc()
	s.rejections.Inc()
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": msg})
}

// admit runs the per-tenant admission decision for a request consuming
// runs simulation runs. It returns a release to defer (always non-nil)
// and whether the request may proceed; on rejection the response has been
// written. With admission control disabled every request passes.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, runs int) (func(), bool) {
	if s.limiter == nil {
		return func() {}, true
	}
	dec, release := s.limiter.Admit(s.limiter.KeyFromRequest(r), runs)
	if dec.OK {
		return release, true
	}
	s.tenantRejNo.Inc()
	if dec.Never {
		// No amount of waiting satisfies this ask; a 429 would have the
		// client retry forever.
		s.writeError(w, http.StatusBadRequest, dec.Reason)
		return func() {}, false
	}
	s.writeRateLimited(w, dec.RetryAfter, dec.Reason)
	return func() {}, false
}

// decodeJSON decodes the request body into v, mapping the failure modes
// onto statuses: malformed input → 400, oversized body → 413.
func (s *Server) decodeJSON(r *http.Request, v any) *apiError {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		if strings.Contains(err.Error(), "request body too large") {
			return errf(http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		}
		return errf(http.StatusBadRequest, "invalid JSON body: %v", err)
	}
	// Reject trailing garbage: a truncated or concatenated body is a
	// client bug better surfaced than ignored.
	if dec.More() {
		return errf(http.StatusBadRequest, "trailing data after JSON body")
	}
	return nil
}

// requirePost gates an endpoint to POST.
func (s *Server) requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed", r.Method))
		return false
	}
	return true
}
