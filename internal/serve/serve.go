// Package serve exposes the scheduler as a long-running HTTP/JSON service:
// the off-line phase (core.NewPlan) runs once per distinct application and
// is memoized in an LRU plan cache with duplicate-compile suppression,
// while on-line executions run on a bounded worker pool whose workers each
// own a core.Arena and a reseedable exectime source — the steady-state
// request path is the same zero-allocation machinery the experiment
// harness uses.
//
// Endpoints:
//
//	POST /v1/plan     compile (or fetch) a plan, return its summary
//	POST /v1/run      execute an application once, or runs=N times with
//	                  NDJSON row streaming and a trailing summary
//	POST /v1/batch    execute many small run requests in one round trip,
//	                  answered as NDJSON per-item summaries
//	POST /v1/compare  compare schemes under common random numbers
//	GET  /healthz     liveness + basic capacity numbers
//	GET  /metrics     Prometheus text exposition of the obs registry
//
// Robustness: per-request timeouts, request body size limits, input
// validation mapped to 400s, a bounded admission queue answering 429 with
// a Retry-After derived from queue depth and the observed drain rate,
// optional per-tenant admission control (token-bucket rate limits,
// concurrency quotas and run budgets — see the tenant package), panic
// recovery, and graceful drain on Shutdown (in-flight requests complete,
// the listener closes first). See docs/SERVER.md.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"andorsched/internal/obs"
	"andorsched/internal/serve/tenant"
)

// Config parameterizes a Server. The zero value gets sensible defaults
// from New.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueSize bounds the admission queue (default 64). When the queue is
	// full, requests are rejected with 429.
	QueueSize int
	// CacheSize bounds the plan cache (default 128 plans).
	CacheSize int
	// RequestTimeout bounds each request end to end (default 15s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxRuns bounds the runs of a single /v1/run or /v1/compare request
	// (default 100000).
	MaxRuns int
	// MaxProcs bounds the procs a request may ask for (default 64).
	MaxProcs int
	// MaxBatchItems bounds the items of a single /v1/batch request
	// (default 256). The total runs of a batch are separately bounded by
	// MaxRuns.
	MaxBatchItems int
	// LegacyCache selects the pre-sharding serve path: one mutex-guarded
	// LRU plan cache with single-flight compile suppression, and every job
	// submitted to the shared pool queue. The default (false) is the
	// shared-nothing path — per-worker plan and section-schedule shards
	// with digest routing. The two paths answer byte-identically; the flag
	// exists for differential testing and as an escape hatch.
	LegacyCache bool
	// Tenant configures per-client admission control (rate limits,
	// concurrency quotas, run budgets). The zero value disables it.
	Tenant tenant.Config
	// Trace configures request-scoped tracing and the flight recorder. The
	// zero value ENABLES tracing with default retention — every request
	// gets an X-Trace-Id and phase spans; set Trace.Disabled to opt out.
	Trace TraceConfig
	// Metrics receives the server's instruments; a fresh registry is
	// created when nil.
	Metrics *obs.Metrics
}

// TraceConfig parameterizes request tracing (see docs/OBSERVABILITY.md).
type TraceConfig struct {
	// Disabled turns request tracing off entirely: no trace IDs, no
	// X-Trace-Id header, no flight recorder (/debug/requests answers 404),
	// no phase histograms. The request path then carries a nil trace
	// record, whose methods collapse to pointer comparisons.
	Disabled bool
	// RingSize is the flight recorder's recent-trace ring capacity
	// (default obs.DefaultFlightRing).
	RingSize int
	// SlowestPerEndpoint is how many slowest traces each endpoint retains
	// beyond the ring (default obs.DefaultFlightSlowest).
	SlowestPerEndpoint int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 100000
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 64
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	return c
}

// Server is the scheduling service. Create with New, expose via Handler
// (for tests or custom listeners) or Serve/ListenAndServe, stop with
// Shutdown (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	// cache is the legacy shared plan cache; nil on the shared-nothing
	// path, where plans live in per-worker shards inside the pool.
	cache *PlanCache
	pool  *Pool

	// statsMu guards the sharded-mode merge of per-worker cache counters
	// into the registry's monotonic instruments (refreshStats); lastMerged
	// remembers the totals already credited so each merge adds only the
	// delta. Read paths only — never touched by request execution.
	statsMu    sync.Mutex
	lastMerged PlanCacheStats
	limiter *tenant.Limiter // nil when admission control is disabled
	mux     *http.ServeMux
	httpSrv *http.Server
	start   time.Time

	requests    *obs.Counter
	errors      *obs.Counter
	panics      *obs.Counter
	rejections  *obs.Counter
	tenantRejNo *obs.Counter
	runs        *obs.Counter
	batchItems  *obs.Counter
	latency     *obs.Histogram

	// flight retains completed request traces (nil when Trace.Disabled).
	flight *obs.Flight
	// phaseHist maps each known phase to its pre-resolved series of the
	// MetricPhaseLatency family. Built once in New, read-only afterwards.
	phaseHist map[string]*obs.Histogram
}

// New builds a Server from cfg (zero value fine) without binding a port.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := cfg.Metrics
	s := &Server{
		cfg:         cfg,
		metrics:     m,
		pool:        NewPool(cfg.Workers, cfg.QueueSize, cfg.CacheSize),
		limiter:     tenant.New(cfg.Tenant),
		mux:         http.NewServeMux(),
		start:       time.Now(),
		requests:    m.Counter(MetricRequests),
		errors:      m.Counter(MetricErrors),
		panics:      m.Counter(MetricPanics),
		rejections:  m.Counter(MetricRejections),
		tenantRejNo: m.Counter(MetricTenantRejections),
		runs:        m.Counter(MetricRuns),
		batchItems:  m.Counter(MetricBatchItems),
		latency:     m.Histogram(MetricLatency, latencyBuckets),
	}
	if cfg.LegacyCache {
		s.cache = NewPlanCache(cfg.CacheSize, m)
	}
	if !cfg.Trace.Disabled {
		s.flight = obs.NewFlight(cfg.Trace.RingSize, cfg.Trace.SlowestPerEndpoint)
		s.phaseHist = make(map[string]*obs.Histogram, len(phaseNames))
		for _, phase := range phaseNames {
			s.phaseHist[phase] = m.LabeledHistogram(MetricPhaseLatency, "phase", phase, latencyBuckets)
		}
	}
	s.mux.HandleFunc("/v1/plan", s.wrap("/v1/plan", s.handlePlan))
	s.mux.HandleFunc("/v1/run", s.wrap("/v1/run", s.handleRun))
	s.mux.HandleFunc("/v1/batch", s.wrap("/v1/batch", s.handleBatch))
	s.mux.HandleFunc("/v1/compare", s.wrap("/v1/compare", s.handleCompare))
	// Introspection endpoints are wrapped (timeout, panic recovery, counts)
	// but not traced: a metrics scraper or debug poll shouldn't churn the
	// flight recorder's ring.
	s.mux.HandleFunc("/healthz", s.wrap("", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.wrap("", s.handleMetrics))
	s.mux.HandleFunc("GET /debug/requests", s.wrap("", s.handleDebugRequests))
	s.mux.HandleFunc("GET /debug/requests/{traceID}", s.wrap("", s.handleDebugRequest))
	return s
}

// Handler returns the server's root handler (middleware included).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's registry.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Cache returns the legacy plan cache (nil on the shared-nothing path,
// where plans live in per-worker shards — see Pool.CachedPlans).
func (s *Server) Cache() *PlanCache { return s.cache }

// cachedPlans counts currently cached plans on whichever path is active.
func (s *Server) cachedPlans() int {
	if s.cache != nil {
		return s.cache.Len()
	}
	return s.pool.CachedPlans()
}

// statusWriter captures the response status for the request trace. It
// passes Flush through so NDJSON streaming keeps working behind it. The
// status field may be written by a pool worker (streaming handlers commit
// the 200 from inside the job) and is read by the middleware only after
// the job's done channel closed, which orders the accesses.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusWriterPool recycles statusWriters; the traced request path reuses
// one instead of allocating.
var statusWriterPool = sync.Pool{New: func() any { return &statusWriter{} }}

// wrap is the per-request middleware: counting, latency, panic recovery,
// body size limit, the request timeout, and — for endpoints with a
// non-empty name — request tracing: the trace record starts before the
// handler (adopting an inbound W3C traceparent or generating a fresh
// trace ID, echoed in X-Trace-Id), rides the request context through the
// pipeline collecting phase spans, and lands in the flight recorder and
// the phase histograms afterwards. With tracing disabled (or endpoint "")
// the path is the pre-tracing one: no extra allocations, no header.
func (s *Server) wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		startReq := time.Now()
		var rec *obs.TraceRec
		var sw *statusWriter
		if endpoint != "" && s.flight != nil {
			rec = s.flight.Start(endpoint, r.Header.Get("Traceparent"), startReq)
			w.Header().Set("X-Trace-Id", rec.ID())
			sw = statusWriterPool.Get().(*statusWriter)
			sw.ResponseWriter, sw.status = w, 0
			w = sw
		}
		defer func() {
			status := 0
			if p := recover(); p != nil {
				s.panics.Inc()
				s.errors.Inc()
				// Best effort: if the handler already wrote, this is a no-op
				// on the status line but still terminates the response.
				http.Error(w, `{"error":"internal server error"}`, http.StatusInternalServerError)
				status = http.StatusInternalServerError
			}
			s.latency.Observe(time.Since(startReq).Seconds())
			if rec != nil {
				if status == 0 {
					if status = sw.status; status == 0 {
						status = http.StatusOK // nothing written: implicit 200
					}
				}
				sw.ResponseWriter = nil
				statusWriterPool.Put(sw)
				s.observePhases(rec)
				s.flight.Finish(rec, status)
			}
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(obs.ContextWithTrace(ctx, rec))
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		h(w, r)
	}
}

// observePhases feeds a completed trace's spans into the per-phase
// latency histograms, offering the trace ID as the exemplar.
func (s *Server) observePhases(rec *obs.TraceRec) {
	// The arrival time stands in for "now" on the exemplar: its only
	// consumers are the 60s retention TTL and the scrape timestamp, both
	// indifferent to a request-duration skew, and it saves a clock read.
	now := rec.StartTime()
	id := rec.ID()
	rec.VisitSpans(func(phase string, _, dur time.Duration, _ string, _ int64) {
		h := s.phaseHist[phase]
		if h == nil {
			// Unknown phase (future producer): resolve through the registry.
			h = s.metrics.LabeledHistogram(MetricPhaseLatency, "phase", phase, latencyBuckets)
		}
		h.ObserveExemplar(dur.Seconds(), id, now)
	})
}

// Serve accepts connections on l until Shutdown or Close. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s.httpSrv.Serve(l)
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains gracefully: the listener closes (new connections are
// refused), in-flight requests run to completion within ctx, then the
// worker pool stops. Safe to call without a listener (Handler-only use);
// it then just stops the pool.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.pool.Close()
	return err
}

// Close stops the pool without waiting for in-flight HTTP requests. For
// tests that use Handler directly.
func (s *Server) Close() {
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.pool.Close()
}

// jsonBuf pairs a reusable buffer with an encoder bound to it, pooled so
// the steady-state response path allocates neither. Encoding into the
// buffer (rather than straight to the ResponseWriter) also means an encode
// failure can still become a clean 500 — nothing has been written yet —
// and lets net/http set Content-Length instead of chunking.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{
	New: func() any {
		b := &jsonBuf{}
		b.enc = json.NewEncoder(&b.buf)
		return b
	},
}

// jsonBufMaxRetained bounds the buffers returned to the pool: a rare huge
// response (a long path trace, a wide compare) should not pin its backing
// array for the life of the process.
const jsonBufMaxRetained = 64 << 10

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b := jsonBufPool.Get().(*jsonBuf)
	b.buf.Reset()
	if err := b.enc.Encode(v); err != nil {
		jsonBufPool.Put(b)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(b.buf.Bytes())
	if b.buf.Cap() <= jsonBufMaxRetained {
		jsonBufPool.Put(b)
	}
}

// writeJSONTraced is writeJSON with an encode span on the request's
// trace record.
func (s *Server) writeJSONTraced(w http.ResponseWriter, r *http.Request, status int, v any) {
	rec := obs.TraceFromContext(r.Context())
	t0 := rec.SinceStart()
	writeJSON(w, status, v)
	rec.RecordOffset(PhaseEncode, t0)
}

// writeError writes a JSON error body and counts it. 429s go through
// writeRateLimited instead, which owes the client a Retry-After.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.errors.Inc()
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeRateLimited answers 429 with a Retry-After derived from the actual
// schedule that rejected the request — a tenant bucket's refill time or
// the pool's queue-drain estimate — rounded up to whole seconds (the
// header's integer form) with a 1s floor.
func (s *Server) writeRateLimited(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	s.errors.Inc()
	s.rejections.Inc()
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": msg})
}

// admit runs the per-tenant admission decision for a request consuming
// runs simulation runs. It returns a release to defer (always non-nil)
// and whether the request may proceed; on rejection the response has been
// written. With admission control disabled every request passes.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, runs int) (func(), bool) {
	if s.limiter == nil {
		return func() {}, true
	}
	rec := obs.TraceFromContext(r.Context())
	dec, release := s.limiter.Admit(s.limiter.KeyFromRequest(r), runs)
	rec.MarkDetail(PhaseAdmit, dec.Tenant)
	if dec.OK {
		return release, true
	}
	s.tenantRejNo.Inc()
	if dec.Never {
		// No amount of waiting satisfies this ask; a 429 would have the
		// client retry forever.
		s.writeError(w, http.StatusBadRequest, dec.Reason)
		return func() {}, false
	}
	s.writeRateLimited(w, dec.RetryAfter, dec.Reason)
	return func() {}, false
}

// decodeJSON decodes the request body into v, mapping the failure modes
// onto statuses: malformed input → 400, oversized body → 413.
func (s *Server) decodeJSON(r *http.Request, v any) *apiError {
	rec := obs.TraceFromContext(r.Context())
	defer rec.Mark(PhaseDecode)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		if strings.Contains(err.Error(), "request body too large") {
			return errf(http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		}
		return errf(http.StatusBadRequest, "invalid JSON body: %v", err)
	}
	// Reject trailing garbage: a truncated or concatenated body is a
	// client bug better surfaced than ignored.
	if dec.More() {
		return errf(http.StatusBadRequest, "trailing data after JSON body")
	}
	return nil
}

// requirePost gates an endpoint to POST.
func (s *Server) requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed", r.Method))
		return false
	}
	return true
}
