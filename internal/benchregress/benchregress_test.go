package benchregress

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: andorsched
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure4aEnergyVsLoadATR2Transmeta-8   	     121	   9772644 ns/op	         0.4935 AS@mid	         0.5150 GSS@mid	  373952 B/op	    1961 allocs/op
BenchmarkRunGSSSyntheticArena-8               	  495724	      2312 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineScaling/tasks=64/procs=2-8     	  300000	      4000 ns/op	 1000000 tasks/s	    2048 B/op	      19 allocs/op
PASS
ok  	andorsched	10.1s
`

func TestParseGoBench(t *testing.T) {
	got, err := ParseGoBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Metrics{
		"BenchmarkFigure4aEnergyVsLoadATR2Transmeta": {NsPerOp: 9772644, BPerOp: 373952, AllocsPerOp: 1961},
		"BenchmarkRunGSSSyntheticArena":              {NsPerOp: 2312},
		"BenchmarkEngineScaling/tasks=64/procs=2":    {NsPerOp: 4000, BPerOp: 2048, AllocsPerOp: 19},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s: got %+v, want %+v", name, got[name], w)
		}
	}
}

func TestParseGoBenchAveragesRepeats(t *testing.T) {
	out := "BenchmarkX-8 10 100 ns/op 40 B/op 2 allocs/op\n" +
		"BenchmarkX-8 10 300 ns/op 80 B/op 4 allocs/op\n"
	got, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if m := got["BenchmarkX"]; m != (Metrics{NsPerOp: 200, BPerOp: 60, AllocsPerOp: 3}) {
		t.Errorf("average: got %+v", m)
	}
}

func TestParseGoBenchRejectsEmpty(t *testing.T) {
	if _, err := ParseGoBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("want error on output with no benchmark lines")
	}
}

func TestCompare(t *testing.T) {
	base := &Report{
		Schema: Schema,
		Benchmarks: map[string]Metrics{
			"BenchmarkA": {NsPerOp: 100000, BPerOp: 4096, AllocsPerOp: 50},
			"BenchmarkB": {NsPerOp: 2000, BPerOp: 0, AllocsPerOp: 0},
			"BenchmarkC": {NsPerOp: 5000, BPerOp: 100, AllocsPerOp: 3},
		},
	}
	cur := map[string]Metrics{
		// Within band: +10% time, same allocs.
		"BenchmarkA": {NsPerOp: 110000, BPerOp: 4096, AllocsPerOp: 50},
		// Zero baseline: the absolute slack admits a few stray allocs but
		// not a real reintroduction.
		"BenchmarkB": {NsPerOp: 2100, BPerOp: 64, AllocsPerOp: 40},
		// BenchmarkC missing from the current run.
	}
	regs := Compare(base, cur, 0.20)
	var labels []string
	for _, r := range regs {
		labels = append(labels, r.Benchmark+"/"+r.Metric)
	}
	want := []string{"BenchmarkB/allocs/op", "BenchmarkC/missing"}
	if strings.Join(labels, ",") != strings.Join(want, ",") {
		t.Errorf("regressions %v, want %v", labels, want)
	}
	if len(Compare(base, map[string]Metrics{
		"BenchmarkA": {NsPerOp: 90000, BPerOp: 100, AllocsPerOp: 1},
		"BenchmarkB": {NsPerOp: 1000},
		"BenchmarkC": {NsPerOp: 5500, BPerOp: 110, AllocsPerOp: 3},
	}, 0.20)) != 0 {
		t.Error("improvements must not be flagged")
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	rep := &Report{
		Schema:     Schema,
		Note:       "test",
		Benchmarks: map[string]Metrics{"BenchmarkA": {NsPerOp: 1, BPerOp: 2, AllocsPerOp: 3}},
		PreArena:   map[string]Metrics{"BenchmarkA": {NsPerOp: 10, BPerOp: 20, AllocsPerOp: 30}},
	}
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != rep.Note || got.Benchmarks["BenchmarkA"] != rep.Benchmarks["BenchmarkA"] ||
		got.PreArena["BenchmarkA"] != rep.PreArena["BenchmarkA"] {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if err := (&Report{Schema: "other/v9"}).Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("want error on unknown schema")
	}
}

func TestParseGoBenchByCPU(t *testing.T) {
	const sweep = `goos: linux
BenchmarkServeRunWarmParallel     	   26138	     13301 ns/op	    2944 B/op	      30 allocs/op
BenchmarkServeRunWarmParallel-2   	   25971	     15222 ns/op	    2945 B/op	      30 allocs/op
BenchmarkServeRunWarmParallel-4   	   22633	     22655 ns/op	    2950 B/op	      30 allocs/op
BenchmarkServeRunWarmParallel-4   	   22633	     22755 ns/op	    2950 B/op	      30 allocs/op
PASS
`
	got, err := ParseGoBenchByCPU(strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	table := got["BenchmarkServeRunWarmParallel"]
	if len(got) != 1 || len(table) != 3 {
		t.Fatalf("parsed %v, want one benchmark with 3 cpu points", got)
	}
	if table["1"].NsPerOp != 13301 || table["2"].NsPerOp != 15222 {
		t.Errorf("cpu points: %+v", table)
	}
	if table["4"].NsPerOp != 22705 { // repeats averaged per (name, procs) cell
		t.Errorf("cpu=4 not averaged: %+v", table["4"])
	}
}

func TestScalingRoundTripAndCompareIgnoresIt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	rep := &Report{
		Schema:     Schema,
		Benchmarks: map[string]Metrics{"BenchmarkA": {NsPerOp: 1}},
		Scaling: map[string]map[string]Metrics{
			"BenchmarkServeRunWarmParallel": {"1": {NsPerOp: 100}, "4": {NsPerOp: 30}},
		},
	}
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scaling["BenchmarkServeRunWarmParallel"]["4"].NsPerOp != 30 {
		t.Errorf("scaling table did not round trip: %+v", got.Scaling)
	}
	// The scaling table is a record of the measuring machine, never a gate:
	// a current run with no scaling data must not be flagged.
	if regs := Compare(got, map[string]Metrics{"BenchmarkA": {NsPerOp: 1}}, 0.2); len(regs) != 0 {
		t.Errorf("Compare flagged scaling-only data: %v", regs)
	}
}
