// Package benchregress turns `go test -bench -benchmem` output into a
// schema-stable JSON report (BENCH.json at the repository root) and compares
// two reports under a tolerance band. It backs scripts/bench.sh and the
// env-gated regression guard test, so a change that reintroduces per-run
// allocations or a large slowdown fails loudly instead of silently rotting.
package benchregress

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the report layout. Bump only with a loader that still
// reads every previously committed version.
const Schema = "andorsched-bench/v1"

// Metrics are the three stable columns of a -benchmem benchmark line.
// Custom b.ReportMetric columns (tasks/s, frames/s, scheme@mid …) are
// intentionally excluded: they vary per benchmark and would make the schema
// unstable.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the persisted benchmark baseline.
type Report struct {
	// Schema is always the Schema constant.
	Schema string `json:"schema"`
	// Note is free-form provenance (machine, flags, date).
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// measured metrics.
	Benchmarks map[string]Metrics `json:"benchmarks"`
	// PreArena optionally preserves historical numbers from before the
	// zero-allocation arenas, for the before/after record. Compare ignores
	// it.
	PreArena map[string]Metrics `json:"pre_arena,omitempty"`
	// Scaling records per-core throughput tables: benchmark name →
	// GOMAXPROCS → metrics, from a `-cpu 1,2,4` sweep of the parallel
	// serve benchmarks (scripts/bench.sh scaling stage). It is a record of
	// the measuring machine, not a gate — Compare ignores it; the
	// conditional multi-core gate lives in scripts/loadtest.sh, which
	// only enforces speedup ratios when the host has the cores.
	Scaling map[string]map[string]Metrics `json:"scaling,omitempty"`
}

// ParseGoBench reads `go test -bench -benchmem` output and returns the
// metrics per benchmark. The `-N` GOMAXPROCS suffix is stripped from names;
// repeated lines for one benchmark (-count > 1) are averaged. Lines that are
// not benchmark results are ignored.
func ParseGoBench(r io.Reader) (map[string]Metrics, error) {
	sums := map[string]Metrics{}
	counts := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count → not a result line
		}
		var m Metrics
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		s := sums[name]
		s.NsPerOp += m.NsPerOp
		s.BPerOp += m.BPerOp
		s.AllocsPerOp += m.AllocsPerOp
		sums[name] = s
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sums) == 0 {
		return nil, fmt.Errorf("benchregress: no benchmark lines found")
	}
	for name, s := range sums {
		n := float64(counts[name])
		sums[name] = Metrics{NsPerOp: s.NsPerOp / n, BPerOp: s.BPerOp / n, AllocsPerOp: s.AllocsPerOp / n}
	}
	return sums, nil
}

// ParseGoBenchByCPU reads `go test -bench -cpu 1,2,4` output keeping the
// GOMAXPROCS dimension: benchmark name → procs (the stripped `-N` suffix,
// "1" when absent) → metrics. Repeated lines per (name, procs) cell are
// averaged, mirroring ParseGoBench.
func ParseGoBenchByCPU(r io.Reader) (map[string]map[string]Metrics, error) {
	sums := map[string]map[string]Metrics{}
	counts := map[string]map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, procs := fields[0], "1"
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name, procs = name[:i], name[i+1:]
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count → not a result line
		}
		var m Metrics
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if sums[name] == nil {
			sums[name] = map[string]Metrics{}
			counts[name] = map[string]int{}
		}
		s := sums[name][procs]
		s.NsPerOp += m.NsPerOp
		s.BPerOp += m.BPerOp
		s.AllocsPerOp += m.AllocsPerOp
		sums[name][procs] = s
		counts[name][procs]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sums) == 0 {
		return nil, fmt.Errorf("benchregress: no benchmark lines found")
	}
	for name, byProcs := range sums {
		for procs, s := range byProcs {
			n := float64(counts[name][procs])
			byProcs[procs] = Metrics{NsPerOp: s.NsPerOp / n, BPerOp: s.BPerOp / n, AllocsPerOp: s.AllocsPerOp / n}
		}
		sums[name] = byProcs
	}
	return sums, nil
}

// Load reads a Report from a JSON file and checks its schema.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchregress: %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("benchregress: %s: schema %q, want %q", path, rep.Schema, Schema)
	}
	return &rep, nil
}

// Save writes a Report as deterministic, indented JSON.
func (rep *Report) Save(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Regression is one metric of one benchmark exceeding its tolerance band.
type Regression struct {
	Benchmark string
	Metric    string // "ns/op", "B/op", "allocs/op", or "missing"
	Base      float64
	Current   float64
	Limit     float64 // the band's upper edge that was exceeded
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but not in current run", r.Benchmark)
	}
	return fmt.Sprintf("%s: %s %.6g exceeds %.6g (baseline %.6g)",
		r.Benchmark, r.Metric, r.Current, r.Limit, r.Base)
}

// Absolute slack added on top of the relative tolerance, so near-zero
// baselines (0 allocs/op, sub-microsecond ops) are not flagged by noise of
// a handful of units.
const (
	slackNs     = 200.0
	slackBytes  = 128.0
	slackAllocs = 8.0
)

// Compare flags every benchmark in base whose current metrics exceed
// base×(1+tol) plus a small absolute slack, and every baseline benchmark
// missing from cur. Improvements and benchmarks new in cur are never
// flagged; PreArena is ignored. Results are sorted by benchmark name.
func Compare(base *Report, cur map[string]Metrics, tol float64) []Regression {
	var regs []Regression
	check := func(name, metric string, b, c, slack float64) {
		limit := b*(1+tol) + slack
		if c > limit {
			regs = append(regs, Regression{Benchmark: name, Metric: metric, Base: b, Current: c, Limit: limit})
		}
	}
	for name, b := range base.Benchmarks {
		c, ok := cur[name]
		if !ok {
			regs = append(regs, Regression{Benchmark: name, Metric: "missing"})
			continue
		}
		check(name, "ns/op", b.NsPerOp, c.NsPerOp, slackNs)
		check(name, "B/op", b.BPerOp, c.BPerOp, slackBytes)
		check(name, "allocs/op", b.AllocsPerOp, c.AllocsPerOp, slackAllocs)
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Benchmark != regs[j].Benchmark {
			return regs[i].Benchmark < regs[j].Benchmark
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}
