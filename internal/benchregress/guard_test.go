package benchregress

import (
	"os"
	"strconv"
	"testing"
)

// TestGuardAgainstCommittedBaseline compares a fresh benchmark run against
// the committed BENCH.json with a ±20% tolerance band. It is env-gated so
// the default test suite stays deterministic on any machine:
//
//	ANDORSCHED_BENCH_NEW=/path/to/bench-output.txt go test ./internal/benchregress -run Guard
//
// scripts/bench.sh check wires this up end to end. ANDORSCHED_BENCH_TOL
// overrides the tolerance (fractional, default 0.20).
func TestGuardAgainstCommittedBaseline(t *testing.T) {
	newPath := os.Getenv("ANDORSCHED_BENCH_NEW")
	if newPath == "" {
		t.Skip("set ANDORSCHED_BENCH_NEW to a fresh `go test -bench -benchmem` output file (see scripts/bench.sh)")
	}
	tol := 0.20
	if s := os.Getenv("ANDORSCHED_BENCH_TOL"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 {
			t.Fatalf("bad ANDORSCHED_BENCH_TOL %q", s)
		}
		tol = v
	}
	base, err := Load("../../BENCH.json")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(newPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cur, err := ParseGoBench(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range Compare(base, cur, tol) {
		t.Error(reg)
	}
}
