// Package loadgen is a closed-loop HTTP load generator for the andord
// service: a fixed set of workers issue requests back to back (optionally
// paced to a target aggregate rate), classify every response, and report
// latency percentiles. It is used by cmd/andorload and by the serve
// package's end-to-end tests, which is why classification knows the
// service's streaming convention: a 200 NDJSON response without a trailing
// summary line is an Incomplete — the server accepted the request and then
// failed to deliver all of it, the one outcome a correct server never
// produces.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"andorsched/internal/obs"
)

// Config parameterizes one load run.
type Config struct {
	// URL is the full target URL (e.g. http://host:port/v1/run).
	URL string
	// Body produces the i-th request body. Required.
	Body func(i int) []byte
	// Concurrency is the number of closed-loop workers (default 4).
	Concurrency int
	// Requests caps the total requests issued. 0 means run until Duration
	// elapses (one of the two must be set).
	Requests int
	// Duration bounds the run in time when Requests is 0.
	Duration time.Duration
	// RPS paces the aggregate request rate; 0 means unthrottled. Pacing
	// relies on a timer tick per request, so rates above roughly 1e6
	// (sub-microsecond intervals) degrade toward unthrottled: the interval
	// is clamped to 1ns and the ticker simply cannot fire that fast.
	RPS float64
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
	// Header holds extra headers set on every request (e.g. an X-API-Key
	// identifying the tenant). Content-Type is always application/json.
	Header http.Header
	// Trace sends a fresh W3C traceparent with every request and records
	// the server's X-Trace-Id answers, so a load run can be correlated
	// with the server's flight recorder: Result.SlowestTraceID names the
	// trace of the slowest successful request, ready to be fetched from
	// GET /debug/requests/{id}.
	Trace bool
}

// Result aggregates a run's outcomes. Every issued request lands in
// exactly one of OK, Rejected, Failed or Incomplete.
type Result struct {
	// Sent is the number of requests issued.
	Sent int
	// OK are complete 2xx responses (for NDJSON: summary line present).
	OK int
	// Rejected are 429s: correct backpressure, not errors.
	Rejected int
	// Failed are transport errors and unexpected statuses.
	Failed int
	// Incomplete are accepted (200) streaming responses missing their
	// trailing summary — dropped-but-accepted work. Always zero for a
	// correct server.
	Incomplete int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// SlowestTraceID is the X-Trace-Id of the slowest OK request, when
	// Config.Trace was set and the server answered with trace IDs.
	SlowestTraceID string
	// SlowestLatency is that request's latency.
	SlowestLatency time.Duration
	// Traced counts OK responses that carried an X-Trace-Id.
	Traced int

	latencies []time.Duration // successful (OK) request latencies, sorted
}

// Percentile returns the p-th latency percentile (0 < p <= 100) over OK
// requests, or 0 when none succeeded.
func (r *Result) Percentile(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	idx := int(float64(len(r.latencies))*p/100) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.latencies) {
		idx = len(r.latencies) - 1
	}
	return r.latencies[idx]
}

// Throughput returns completed (OK) requests per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// String renders the standard report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests   %d in %.2fs (%.1f ok/s)\n", r.Sent, r.Elapsed.Seconds(), r.Throughput())
	fmt.Fprintf(&b, "ok         %d\n", r.OK)
	fmt.Fprintf(&b, "rejected   %d (429 backpressure)\n", r.Rejected)
	fmt.Fprintf(&b, "failed     %d\n", r.Failed)
	fmt.Fprintf(&b, "incomplete %d (accepted but not fully delivered)\n", r.Incomplete)
	if len(r.latencies) > 0 {
		fmt.Fprintf(&b, "latency    p50 %s  p95 %s  p99 %s  max %s\n",
			r.Percentile(50).Round(time.Microsecond),
			r.Percentile(95).Round(time.Microsecond),
			r.Percentile(99).Round(time.Microsecond),
			r.latencies[len(r.latencies)-1].Round(time.Microsecond))
	}
	if r.SlowestTraceID != "" {
		fmt.Fprintf(&b, "slowest    trace %s (%s)\n",
			r.SlowestTraceID, r.SlowestLatency.Round(time.Microsecond))
	}
	return b.String()
}

// outcome classifies one response.
type outcome int

const (
	outOK outcome = iota
	outRejected
	outFailed
	outIncomplete
)

// classify inspects a response body according to the service conventions.
func classify(status int, contentType string, body []byte) outcome {
	switch {
	case status == http.StatusTooManyRequests:
		return outRejected
	case status < 200 || status > 299:
		return outFailed
	}
	if !strings.Contains(contentType, "ndjson") {
		return outOK
	}
	// Streaming response: complete iff the last line is the summary and no
	// error line interrupted the stream.
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) == 0 {
		return outIncomplete
	}
	last := lines[len(lines)-1]
	if !bytes.Contains(last, []byte(`"summary":true`)) {
		return outIncomplete
	}
	for _, line := range lines {
		if bytes.Contains(line, []byte(`"error"`)) {
			return outIncomplete
		}
	}
	return outOK
}

// Run executes the load according to cfg until the request budget, the
// duration or ctx expires, whichever comes first.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.URL == "" || cfg.Body == nil {
		return nil, fmt.Errorf("loadgen: URL and Body are required")
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: one of Requests or Duration must be set")
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 4
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	// Pacing: a token channel refilled at RPS. Unthrottled runs use a
	// closed (always-ready) channel.
	var tokens chan struct{}
	if cfg.RPS > 0 {
		tokens = make(chan struct{}, workers)
		interval := time.Duration(float64(time.Second) / cfg.RPS)
		if interval < time.Nanosecond {
			// Very high RPS rounds the interval to zero, which would panic
			// time.NewTicker. Clamp to the minimum representable tick; such
			// rates are effectively unthrottled anyway.
			interval = time.Nanosecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		go func() {
			for {
				select {
				case <-ticker.C:
					select {
					case tokens <- struct{}{}:
					default: // workers lagging; drop the token
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	var next atomic.Int64
	type shard struct {
		ok, rejected, failed, incomplete int
		lat                              []time.Duration
		traced                           int
		slowID                           string
		slowLat                          time.Duration
	}
	shards := make([]shard, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if cfg.Requests > 0 && i >= cfg.Requests {
					return
				}
				if tokens != nil {
					select {
					case <-tokens:
					case <-ctx.Done():
						return
					}
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL,
					bytes.NewReader(cfg.Body(i)))
				if err != nil {
					sh.failed++
					continue
				}
				for k, vs := range cfg.Header {
					for _, v := range vs {
						req.Header.Add(k, v)
					}
				}
				req.Header.Set("Content-Type", "application/json")
				if cfg.Trace {
					req.Header.Set("Traceparent", obs.Traceparent(obs.NewTraceID(), obs.NewSpanID()))
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return // shutdown race, not a server failure
					}
					sh.failed++
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					sh.failed++
					continue
				}
				switch classify(resp.StatusCode, resp.Header.Get("Content-Type"), body) {
				case outOK:
					sh.ok++
					lat := time.Since(t0)
					sh.lat = append(sh.lat, lat)
					if id := resp.Header.Get("X-Trace-Id"); id != "" {
						sh.traced++
						if lat > sh.slowLat {
							sh.slowLat, sh.slowID = lat, id
						}
					}
				case outRejected:
					sh.rejected++
				case outIncomplete:
					sh.incomplete++
				default:
					sh.failed++
				}
			}
		}(&shards[wkr])
	}
	wg.Wait()

	res := &Result{Elapsed: time.Since(start)}
	for i := range shards {
		sh := &shards[i]
		res.OK += sh.ok
		res.Rejected += sh.rejected
		res.Failed += sh.failed
		res.Incomplete += sh.incomplete
		res.Traced += sh.traced
		if sh.slowLat > res.SlowestLatency {
			res.SlowestLatency, res.SlowestTraceID = sh.slowLat, sh.slowID
		}
		res.latencies = append(res.latencies, sh.lat...)
	}
	res.Sent = res.OK + res.Rejected + res.Failed + res.Incomplete
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	return res, nil
}
