package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"andorsched/internal/obs"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name, ct, body string
		status         int
		want           outcome
	}{
		{"plain ok", "application/json", `{"run":0}`, 200, outOK},
		{"rejected", "application/json", `{"error":"full"}`, 429, outRejected},
		{"server error", "application/json", `{"error":"x"}`, 500, outFailed},
		{"bad request", "application/json", `{"error":"x"}`, 400, outFailed},
		{"ndjson complete", "application/x-ndjson",
			"{\"run\":0}\n{\"summary\":true,\"runs\":1}\n", 200, outOK},
		{"ndjson truncated", "application/x-ndjson",
			"{\"run\":0}\n{\"run\":1}\n", 200, outIncomplete},
		{"ndjson error line", "application/x-ndjson",
			"{\"run\":0}\n{\"error\":\"queue full\"}\n", 200, outIncomplete},
		{"ndjson empty", "application/x-ndjson", "", 200, outIncomplete},
	}
	for _, tc := range cases {
		if got := classify(tc.status, tc.ct, []byte(tc.body)); got != tc.want {
			t.Errorf("%s: classify = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestRunClosedLoop(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n%5 == 0 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprintln(w, `{"run":0}`)
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		URL:         srv.URL,
		Body:        func(i int) []byte { return []byte(`{}`) },
		Concurrency: 4,
		Requests:    100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 100 {
		t.Errorf("sent %d, want 100", res.Sent)
	}
	if res.OK+res.Rejected != 100 || res.Failed != 0 || res.Incomplete != 0 {
		t.Errorf("unexpected outcome mix: %+v", res)
	}
	if res.Rejected != 20 {
		t.Errorf("rejected %d, want 20", res.Rejected)
	}
	if res.Percentile(50) <= 0 || res.Percentile(99) < res.Percentile(50) {
		t.Errorf("implausible percentiles: p50=%v p99=%v", res.Percentile(50), res.Percentile(99))
	}
	if res.String() == "" {
		t.Error("empty report")
	}
}

func TestRunDurationBounded(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{}`)
	}))
	defer srv.Close()
	start := time.Now()
	res, err := Run(context.Background(), Config{
		URL:         srv.URL,
		Body:        func(i int) []byte { return []byte(`{}`) },
		Concurrency: 2,
		Duration:    200 * time.Millisecond,
		RPS:         50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("duration-bounded run took %v", el)
	}
	if res.Sent == 0 {
		t.Error("no requests issued")
	}
	// 50 RPS over 200ms is ~10 requests; allow broad slack but catch an
	// unthrottled runaway.
	if res.Sent > 40 {
		t.Errorf("pacing ineffective: %d requests in 200ms at 50 RPS", res.Sent)
	}
}

func TestRunExtremeRPS(t *testing.T) {
	// Regression: RPS high enough that time.Second/RPS rounds to a zero
	// interval used to panic time.NewTicker. The clamp makes such rates
	// effectively unthrottled; the run must still complete normally.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{}`)
	}))
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		URL:         srv.URL,
		Body:        func(i int) []byte { return []byte(`{}`) },
		Concurrency: 2,
		Requests:    20,
		RPS:         2e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 20 || res.OK != 20 {
		t.Errorf("sent=%d ok=%d, want 20/20", res.Sent, res.OK)
	}
}

func TestRunSetsHeaders(t *testing.T) {
	var gotKey atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotKey.Store(r.Header.Get("X-API-Key"))
		fmt.Fprintln(w, `{}`)
	}))
	defer srv.Close()
	hdr := http.Header{}
	hdr.Set("X-API-Key", "tenant-a")
	res, err := Run(context.Background(), Config{
		URL:      srv.URL,
		Body:     func(i int) []byte { return []byte(`{}`) },
		Requests: 4,
		Header:   hdr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 4 {
		t.Errorf("ok=%d, want 4", res.OK)
	}
	if k, _ := gotKey.Load().(string); k != "tenant-a" {
		t.Errorf("X-API-Key = %q, want tenant-a", k)
	}
}

func TestRunTrace(t *testing.T) {
	// A tracing run sends a valid traceparent on every request; the slowest
	// OK response's X-Trace-Id is surfaced for the /debug/requests lookup.
	var slow atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tid, _, ok := obs.ParseTraceparent(r.Header.Get("Traceparent"))
		if !ok {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprintln(w, `{"error":"missing traceparent"}`)
			return
		}
		if slow.Add(1) == 7 {
			time.Sleep(50 * time.Millisecond) // make one request the clear slowest
			w.Header().Set("X-Trace-Id", "feed000000000000000000000000beef")
		} else {
			w.Header().Set("X-Trace-Id", tid.String())
		}
		fmt.Fprintln(w, `{}`)
	}))
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		URL:      srv.URL,
		Body:     func(i int) []byte { return []byte(`{}`) },
		Requests: 12,
		Trace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 12 || res.Traced != 12 {
		t.Errorf("ok=%d traced=%d, want 12/12", res.OK, res.Traced)
	}
	if res.SlowestTraceID != "feed000000000000000000000000beef" {
		t.Errorf("slowest trace %q, want the delayed request's ID", res.SlowestTraceID)
	}
	if res.SlowestLatency < 50*time.Millisecond {
		t.Errorf("slowest latency %v, want >= 50ms", res.SlowestLatency)
	}
	if !strings.Contains(res.String(), res.SlowestTraceID) {
		t.Error("report does not mention the slowest trace ID")
	}
}

func TestRunNoTraceByDefault(t *testing.T) {
	var sawTraceparent atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Traceparent") != "" {
			sawTraceparent.Store(true)
		}
		fmt.Fprintln(w, `{}`)
	}))
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		URL:      srv.URL,
		Body:     func(i int) []byte { return []byte(`{}`) },
		Requests: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawTraceparent.Load() {
		t.Error("untraced run sent a traceparent header")
	}
	if res.SlowestTraceID != "" || res.Traced != 0 {
		t.Errorf("untraced run reported traces: %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("no error for empty config")
	}
	if _, err := Run(context.Background(), Config{URL: "http://x", Body: func(int) []byte { return nil }}); err == nil {
		t.Error("no error without a stop condition")
	}
}
