// Package cli holds the flag-value parsers shared by the command-line
// tools in cmd/: workload, platform, machine and placement selection by
// name.
package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"andorsched/internal/andor"
	"andorsched/internal/power"
	"andorsched/internal/sim"
	"andorsched/internal/workload"
)

// ParseWorkload resolves a -workload flag value:
//
//	atr             the ATR application with default parameters
//	synthetic       the paper's Figure 3 application
//	random[:seed]   a random AND/OR application (default seed 1)
//	<path>.json     a graph serialized by graphtool -json
//	<path>.andor    a graph in the .andor text format (see graphtool -andor)
func ParseWorkload(spec string) (*andor.Graph, error) {
	switch {
	case spec == "atr":
		return workload.ATR(workload.DefaultATRConfig()), nil
	case spec == "synthetic":
		return workload.Synthetic(), nil
	case spec == "random" || strings.HasPrefix(spec, "random:"):
		seed := uint64(1)
		if rest, ok := strings.CutPrefix(spec, "random:"); ok && rest != "" {
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cli: bad random seed %q: %v", rest, err)
			}
			seed = v
		}
		return workload.Random(seed, andor.DefaultRandomOpts()), nil
	case strings.HasSuffix(spec, ".json"):
		data, err := os.ReadFile(spec)
		if err != nil {
			return nil, fmt.Errorf("cli: %v", err)
		}
		g := andor.NewGraph("")
		if err := json.Unmarshal(data, g); err != nil {
			return nil, fmt.Errorf("cli: %s: %v", spec, err)
		}
		if err := g.Validate(); err != nil {
			return nil, err
		}
		return g, nil
	case strings.HasSuffix(spec, ".andor"):
		data, err := os.ReadFile(spec)
		if err != nil {
			return nil, fmt.Errorf("cli: %v", err)
		}
		g, err := andor.ParseText(string(data))
		if err != nil {
			return nil, fmt.Errorf("cli: %s: %w", spec, err)
		}
		return g, nil
	}
	return nil, fmt.Errorf("cli: unknown workload %q (want atr, synthetic, random[:seed], a .json file or an .andor file)", spec)
}

// ParsePlatform resolves a -platform flag value:
//
//	transmeta                      Transmeta Crusoe TM5400 (Table 1)
//	xscale                         Intel XScale (Table 2)
//	synthetic:N:fminMHz:fmaxMHz    N evenly spaced levels (volts 0.8–1.8)
func ParsePlatform(spec string) (*power.Platform, error) {
	switch {
	case spec == "transmeta":
		return power.Transmeta5400(), nil
	case spec == "xscale":
		return power.IntelXScale(), nil
	case strings.HasPrefix(spec, "synthetic:"):
		parts := strings.Split(spec, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("cli: synthetic platform wants synthetic:N:fminMHz:fmaxMHz")
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("cli: bad level count %q", parts[1])
		}
		fmin, err1 := strconv.ParseFloat(parts[2], 64)
		fmax, err2 := strconv.ParseFloat(parts[3], 64)
		if err1 != nil || err2 != nil || fmin <= 0 || fmax <= fmin {
			return nil, fmt.Errorf("cli: bad synthetic frequency range %q:%q", parts[2], parts[3])
		}
		return power.Synthetic(n, fmin, fmax, 0.8, 1.8), nil
	}
	return nil, fmt.Errorf("cli: unknown platform %q (want transmeta, xscale or synthetic:N:fmin:fmax)", spec)
}

// ParseMachine resolves a -platform flag value that may name either machine
// model. Exactly one of the results is non-nil:
//
//	transmeta, xscale, synthetic:...   identical processors (ParsePlatform)
//	symmetric, biglittle, accel        reference heterogeneous platforms
//	<path>.json                        a heterogeneous platform spec file
//	                                   (power.HeteroSpec JSON)
func ParseMachine(spec string) (*power.Platform, *power.Hetero, error) {
	if plat, err := ParsePlatform(spec); err == nil {
		return plat, nil, nil
	}
	if strings.HasSuffix(spec, ".json") {
		data, err := os.ReadFile(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("cli: %v", err)
		}
		hp, err := power.ParseHeteroSpec(data)
		if err != nil {
			return nil, nil, fmt.Errorf("cli: %s: %w", spec, err)
		}
		return nil, hp, nil
	}
	if hp, err := power.ReferenceHetero(spec); err == nil {
		return nil, hp, nil
	}
	return nil, nil, fmt.Errorf("cli: unknown platform %q (want transmeta, xscale, synthetic:N:fmin:fmax, symmetric, biglittle, accel, or a .json platform spec file)", spec)
}

// ParsePlacement resolves a -placement flag value to a placement policy for
// heterogeneous plans. The empty string and each policy's canonical name
// are accepted, plus short aliases:
//
//	fastest-first | fastest | ""   sim.FastestFirst (the default)
//	energy-greedy | energy         sim.EnergyGreedy
//	class-affinity | affinity      sim.ClassAffinity
func ParsePlacement(name string) (sim.PlacementPolicy, error) {
	switch name {
	case "", "fastest-first", "fastest":
		return sim.FastestFirst, nil
	case "energy-greedy", "energy":
		return sim.EnergyGreedy, nil
	case "class-affinity", "affinity":
		return sim.ClassAffinity, nil
	}
	return nil, fmt.Errorf("cli: unknown placement policy %q (want fastest-first, energy-greedy or class-affinity)", name)
}
