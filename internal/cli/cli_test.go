package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"andorsched/internal/andor"
	"andorsched/internal/workload"
)

func TestParseWorkloadBuiltins(t *testing.T) {
	for _, spec := range []string{"atr", "synthetic", "random", "random:9"} {
		g, err := ParseWorkload(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", spec, err)
		}
	}
	// Seeds select different random graphs.
	a, _ := ParseWorkload("random:1")
	b, _ := ParseWorkload("random:2")
	if a.Len() == b.Len() && a.TotalWCET() == b.TotalWCET() {
		t.Error("different random seeds produced an identical graph (suspicious)")
	}
}

func TestParseWorkloadJSONFile(t *testing.T) {
	dir := t.TempDir()
	g := workload.Synthetic()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "app.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ParseWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() {
		t.Error("JSON file round-trip changed the graph")
	}
}

func TestParseWorkloadAndorFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "app.andor")
	src := andor.FormatText(workload.Synthetic())
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ParseWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "synthetic-fig3" {
		t.Errorf("name = %q", g.Name)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	for _, spec := range []string{
		"", "bogus", "random:x", "/does/not/exist.json", "/does/not/exist.andor",
	} {
		if _, err := ParseWorkload(spec); err == nil {
			t.Errorf("%q: want error", spec)
		}
	}
	// A JSON file holding an invalid graph is rejected.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"name":"x","nodes":[{"name":"o","kind":"or"}],"edges":[]}`), 0o644)
	if _, err := ParseWorkload(bad); err == nil {
		t.Error("invalid graph file accepted")
	}
}

func TestParsePlatform(t *testing.T) {
	p, err := ParsePlatform("transmeta")
	if err != nil || p.NumLevels() != 16 {
		t.Errorf("transmeta: %v %v", p, err)
	}
	p, err = ParsePlatform("xscale")
	if err != nil || p.NumLevels() != 5 {
		t.Errorf("xscale: %v %v", p, err)
	}
	p, err = ParsePlatform("synthetic:4:100:400")
	if err != nil || p.NumLevels() != 4 || p.Min().Freq != 100e6 {
		t.Errorf("synthetic: %v %v", p, err)
	}
	for _, spec := range []string{
		"", "pentium", "synthetic:4:100", "synthetic:x:100:400",
		"synthetic:4:400:100", "synthetic:4:abc:400",
	} {
		if _, err := ParsePlatform(spec); err == nil {
			t.Errorf("%q: want error", spec)
		}
	}
}

func TestParseMachine(t *testing.T) {
	plat, hp, err := ParseMachine("transmeta")
	if err != nil || plat == nil || hp != nil {
		t.Errorf("transmeta: plat=%v hetero=%v err=%v", plat, hp, err)
	}
	for spec, classes := range map[string]int{"symmetric": 1, "biglittle": 2, "accel": 2} {
		plat, hp, err := ParseMachine(spec)
		if err != nil || plat != nil || hp == nil {
			t.Fatalf("%s: plat=%v hetero=%v err=%v", spec, plat, hp, err)
		}
		if hp.NumClasses() != classes {
			t.Errorf("%s: %d classes, want %d", spec, hp.NumClasses(), classes)
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "machine.json")
	spec := `{"name":"lab","classes":[
		{"name":"fast","count":1,"platform":"transmeta"},
		{"name":"slow","count":2,"speed":0.5,"platform":"xscale"}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	_, hp, err = ParseMachine(path)
	if err != nil || hp == nil {
		t.Fatalf("spec file: hetero=%v err=%v", hp, err)
	}
	if hp.Name != "lab" || hp.NumProcs() != 3 {
		t.Errorf("spec file parsed to %q with %d procs", hp.Name, hp.NumProcs())
	}

	for _, spec := range []string{"", "pentium", "/does/not/exist.json"} {
		if _, _, err := ParseMachine(spec); err == nil {
			t.Errorf("%q: want error", spec)
		}
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"classes":[{"name":"x","count":1,"platform":"transmeta","speed":-1}]}`), 0o644)
	if _, _, err := ParseMachine(bad); err == nil {
		t.Error("negative class speed accepted")
	}
}

func TestParsePlacement(t *testing.T) {
	for name, want := range map[string]string{
		"":               "fastest-first",
		"fastest":        "fastest-first",
		"fastest-first":  "fastest-first",
		"energy":         "energy-greedy",
		"energy-greedy":  "energy-greedy",
		"affinity":       "class-affinity",
		"class-affinity": "class-affinity",
	} {
		p, err := ParsePlacement(name)
		if err != nil || p.Name() != want {
			t.Errorf("%q: got %v, %v; want %s", name, p, err, want)
		}
	}
	if _, err := ParsePlacement("round-robin"); err == nil {
		t.Error("unknown placement accepted")
	}
}
