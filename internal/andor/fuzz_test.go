package andor

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON checks that arbitrary bytes never panic the JSON decoder
// and that everything surviving Unmarshal+Validate round-trips and
// decomposes cleanly.
func FuzzGraphJSON(f *testing.F) {
	seed, err := json.Marshal(RandomGraph(&fakeRand{state: 1}, DefaultRandomOpts()))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"name":"x","nodes":[{"name":"a","kind":"compute","wcet":1,"acet":1}],"edges":[]}`))
	f.Add([]byte(`{"name":"x","nodes":[],"edges":[[0,0]]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // malformed input rejected: fine
		}
		if err := g.Validate(); err != nil {
			return // structurally invalid: fine
		}
		// Valid graphs must decompose, enumerate, clone and re-encode.
		s, err := Decompose(&g)
		if err != nil {
			t.Fatalf("validated graph failed to decompose: %v", err)
		}
		_ = s.NumPaths()
		c := g.Clone()
		if c.Len() != g.Len() {
			t.Fatal("clone changed size")
		}
		if _, err := json.Marshal(&g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		_ = g.DOT()
	})
}

// FuzzDecompose drives the decomposition with structured inputs: random
// node kinds and edges from fuzz bytes. Decompose must either reject the
// graph with an error or produce a consistent section cover — never panic.
func FuzzDecompose(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		g := NewGraph("fuzz")
		n := int(data[0]%12) + 1
		nodes := make([]*Node, n)
		for i := 0; i < n; i++ {
			kind := data[(i+1)%len(data)] % 3
			switch kind {
			case 0:
				nodes[i] = g.AddTask("t", 1e-3, 0.5e-3)
			case 1:
				nodes[i] = g.AddAnd("a")
			default:
				nodes[i] = g.AddOr("o")
			}
		}
		// Forward edges only (keeps the graph acyclic), selected by bits.
		bit := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				idx := 1 + bit/8
				if idx >= len(data) {
					break
				}
				if data[idx]>>(bit%8)&1 == 1 {
					g.AddEdge(nodes[i], nodes[j])
				}
				bit++
			}
		}
		// Assign uniform probabilities to multi-successor Or nodes so
		// probability errors don't mask structural ones.
		for _, nd := range g.Nodes() {
			if nd.Kind == Or && len(nd.Succs()) > 1 {
				probs := make([]float64, len(nd.Succs()))
				for i := range probs {
					probs[i] = 1 / float64(len(probs))
				}
				g.SetBranchProbs(nd, probs...)
			}
		}
		s, err := Decompose(g)
		if err != nil {
			return // rejected: fine
		}
		// Accepted graphs must cover every non-Or node exactly once.
		for _, nd := range g.Nodes() {
			if nd.Kind != Or && s.SectionOf[nd.ID] == nil {
				t.Fatalf("accepted decomposition misses node %d", nd.ID)
			}
		}
	})
}

// FuzzParseText drives arbitrary bytes through the .andor text parser —
// the same path the serve package exposes over the network — and checks
// the round-trip property on everything that parses: FormatText must
// render a form that reparses to a graph of identical shape.
func FuzzParseText(f *testing.F) {
	f.Add("task A 1ms 0.5ms\ntask B 2ms 1ms\nedge A -> B")
	f.Add(FormatText(RandomGraph(&fakeRand{state: 3}, DefaultRandomOpts())))
	f.Add("or O\ntask A 1ms 1ms\nedge O -> A\nprob O 100%")
	f.Add("loop L 1ms 1ms : 0.5 0.5")
	f.Add("# comment only")
	f.Add("task A 1ms")
	f.Add("edge A -> B")
	f.Add("task A 1ms 1ms\ntask A 1ms 1ms")
	f.Add("task A 1ms 1ms @accel\ntask B 2ms 1ms @big")
	f.Add("task A 1ms 1ms @")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseText(src)
		if err != nil {
			return // rejected input: fine
		}
		// ParseText validates, so the graph must decompose or be rejected
		// for a documented structural reason — never panic.
		if err := g.Validate(); err != nil {
			t.Fatalf("ParseText returned an invalid graph: %v", err)
		}
		text := FormatText(g)
		back, err := ParseText(text)
		if err != nil {
			t.Fatalf("format→parse failed: %v\n%s", err, text)
		}
		if back.Len() != g.Len() {
			t.Fatalf("round-trip changed node count: %d vs %d", back.Len(), g.Len())
		}
		for _, n := range g.Nodes() {
			bn := back.NodeByName(n.Name)
			if bn == nil || bn.Kind != n.Kind || len(bn.Succs()) != len(n.Succs()) {
				t.Fatalf("round-trip changed node %q", n.Name)
			}
			if bn.Class != n.Class {
				t.Fatalf("round-trip changed node %q class %q to %q", n.Name, n.Class, bn.Class)
			}
		}
		// Unit scaling in the text form may perturb times by 1 ulp, so
		// exact text equality is too strong; totals must agree to within
		// floating-point noise.
		if w, bw := g.TotalWCET(), back.TotalWCET(); bw < w*(1-1e-12) || bw > w*(1+1e-12) {
			t.Fatalf("round-trip changed total WCET: %g vs %g", w, bw)
		}
	})
}
