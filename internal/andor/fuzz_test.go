package andor

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON checks that arbitrary bytes never panic the JSON decoder
// and that everything surviving Unmarshal+Validate round-trips and
// decomposes cleanly.
func FuzzGraphJSON(f *testing.F) {
	seed, err := json.Marshal(RandomGraph(&fakeRand{state: 1}, DefaultRandomOpts()))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"name":"x","nodes":[{"name":"a","kind":"compute","wcet":1,"acet":1}],"edges":[]}`))
	f.Add([]byte(`{"name":"x","nodes":[],"edges":[[0,0]]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // malformed input rejected: fine
		}
		if err := g.Validate(); err != nil {
			return // structurally invalid: fine
		}
		// Valid graphs must decompose, enumerate, clone and re-encode.
		s, err := Decompose(&g)
		if err != nil {
			t.Fatalf("validated graph failed to decompose: %v", err)
		}
		_ = s.NumPaths()
		c := g.Clone()
		if c.Len() != g.Len() {
			t.Fatal("clone changed size")
		}
		if _, err := json.Marshal(&g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		_ = g.DOT()
	})
}

// FuzzDecompose drives the decomposition with structured inputs: random
// node kinds and edges from fuzz bytes. Decompose must either reject the
// graph with an error or produce a consistent section cover — never panic.
func FuzzDecompose(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		g := NewGraph("fuzz")
		n := int(data[0]%12) + 1
		nodes := make([]*Node, n)
		for i := 0; i < n; i++ {
			kind := data[(i+1)%len(data)] % 3
			switch kind {
			case 0:
				nodes[i] = g.AddTask("t", 1e-3, 0.5e-3)
			case 1:
				nodes[i] = g.AddAnd("a")
			default:
				nodes[i] = g.AddOr("o")
			}
		}
		// Forward edges only (keeps the graph acyclic), selected by bits.
		bit := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				idx := 1 + bit/8
				if idx >= len(data) {
					break
				}
				if data[idx]>>(bit%8)&1 == 1 {
					g.AddEdge(nodes[i], nodes[j])
				}
				bit++
			}
		}
		// Assign uniform probabilities to multi-successor Or nodes so
		// probability errors don't mask structural ones.
		for _, nd := range g.Nodes() {
			if nd.Kind == Or && len(nd.Succs()) > 1 {
				probs := make([]float64, len(nd.Succs()))
				for i := range probs {
					probs[i] = 1 / float64(len(probs))
				}
				g.SetBranchProbs(nd, probs...)
			}
		}
		s, err := Decompose(g)
		if err != nil {
			return // rejected: fine
		}
		// Accepted graphs must cover every non-Or node exactly once.
		for _, nd := range g.Nodes() {
			if nd.Kind != Or && s.SectionOf[nd.ID] == nil {
				t.Fatalf("accepted decomposition misses node %d", nd.ID)
			}
		}
	})
}
