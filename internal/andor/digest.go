package andor

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
)

// SectionDigest is a structural fingerprint of a program section: two
// sections with equal digests present the off-line phase with bit-identical
// scheduling problems. It covers everything the canonical list scheduler
// consumes — each node's kind, WCET and ACET, the intra-section dependence
// edges (as local indices), and the relative order of node IDs (the
// longest-task-first tie-break) — and deliberately nothing else: names,
// absolute node IDs and inter-graph position do not enter, so the digest is
// stable across graph re-parses, clones and loop expansion.
type SectionDigest [sha256.Size]byte

// Digest computes the section's structural fingerprint. It is deterministic
// and depends only on the section's scheduling-relevant content (see
// SectionDigest). Zero-length sections all share the zero problem and hash
// to the same digest. The result is memoized on the (immutable) section.
func (s *Section) Digest() SectionDigest {
	if d := s.digest.Load(); d != nil {
		return *d
	}
	d := s.computeDigest()
	s.digest.Store(&d)
	return d
}

func (s *Section) computeDigest() SectionDigest {
	// Local index of each member node, in Nodes order (the order the
	// off-line phase enumerates tasks in).
	local := make(map[*Node]int, len(s.Nodes))
	for i, n := range s.Nodes {
		local[n] = i
	}
	// Rank of each node's ID within the section. The canonical scheduler
	// breaks priority ties by node ID; only the relative order matters, so
	// hashing ranks instead of raw IDs keeps the digest stable when the
	// same structure appears at different ID offsets.
	idRank := make([]int, len(s.Nodes))
	byID := make([]int, len(s.Nodes))
	for i := range byID {
		byID[i] = i
	}
	sort.Slice(byID, func(a, b int) bool { return s.Nodes[byID[a]].ID < s.Nodes[byID[b]].ID })
	for rank, i := range byID {
		idRank[i] = rank
	}

	buf := make([]byte, 0, 8+len(s.Nodes)*48)
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	u64(uint64(len(s.Nodes)))
	for i, n := range s.Nodes {
		u64(uint64(n.Kind))
		u64(wcetBits(n))
		u64(acetBits(n))
		u64(uint64(idRank[i]))
		// Intra-section edges only: predecessors outside the section are
		// Or entries the barrier discipline satisfies implicitly, exactly
		// as the off-line phase treats them.
		buf = appendLocalEdges(buf, local, n.pred)
		buf = appendLocalEdges(buf, local, n.succ)
	}
	return sha256.Sum256(buf)
}

// wcetBits and acetBits return the exact IEEE-754 bit patterns the off-line
// phase consumes, so the digest distinguishes values that differ only in the
// last ulp (the cache contract is bit-identical schedules, not approximately
// equal ones). Non-compute nodes contribute fixed zeros.
func wcetBits(n *Node) uint64 {
	if n.Kind != Compute {
		return 0
	}
	return math.Float64bits(n.WCET)
}

func acetBits(n *Node) uint64 {
	if n.Kind != Compute {
		return 0
	}
	return math.Float64bits(n.ACET)
}

// appendLocalEdges appends the count and local indices of the edge
// endpoints that lie inside the section, in declaration order.
func appendLocalEdges(buf []byte, local map[*Node]int, nodes []*Node) []byte {
	cnt := 0
	for _, m := range nodes {
		if _, ok := local[m]; ok {
			cnt++
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cnt))
	for _, m := range nodes {
		if j, ok := local[m]; ok {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(j))
		}
	}
	return buf
}
