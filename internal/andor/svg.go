package andor

import (
	"fmt"
	"sort"
	"strings"
)

// SVG renders the graph as a self-contained SVG drawing using a simple
// layered layout (nodes at their depth, ordered to follow their
// predecessors), so applications can be visualized without Graphviz.
// Computation nodes are rounded rectangles labeled "name wcet/acet" (ms),
// And nodes diamonds, Or nodes double circles; Or branch edges carry their
// probabilities.
func (g *Graph) SVG() string {
	order, ok := g.TopoOrder()
	if !ok || len(order) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="220" height="40"><text x="8" y="24">invalid graph</text></svg>`
	}
	// Layer = longest-chain depth.
	depth := make([]int, g.Len())
	maxDepth := 0
	for _, n := range order {
		d := 0
		for _, p := range n.Preds() {
			if depth[p.ID]+1 > d {
				d = depth[p.ID] + 1
			}
		}
		depth[n.ID] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	layers := make([][]*Node, maxDepth+1)
	for _, n := range order {
		layers[depth[n.ID]] = append(layers[depth[n.ID]], n)
	}
	// Order nodes within a layer by the mean position of their
	// predecessors (one barycenter pass keeps most edges short).
	pos := make([]float64, g.Len())
	for li, layer := range layers {
		if li > 0 {
			sort.SliceStable(layer, func(a, b int) bool {
				return bary(layer[a], pos) < bary(layer[b], pos)
			})
		}
		for i, n := range layer {
			pos[n.ID] = float64(i)
		}
	}

	const (
		nodeW, nodeH = 110, 34
		gapX, gapY   = 28, 56
		margin       = 24
	)
	width := 0
	for _, layer := range layers {
		if w := len(layer)*(nodeW+gapX) - gapX; w > width {
			width = w
		}
	}
	width += 2 * margin
	height := (maxDepth+1)*(nodeH+gapY) - gapY + 2*margin

	x := func(n *Node) float64 {
		layer := layers[depth[n.ID]]
		total := len(layer)*(nodeW+gapX) - gapX
		offset := (width - total) / 2
		return float64(offset) + pos[n.ID]*(nodeW+gapX) + nodeW/2
	}
	y := func(n *Node) float64 {
		return float64(margin) + float64(depth[n.ID])*(nodeH+gapY) + nodeH/2
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="10">`,
		width, height)
	// Edges first so nodes draw on top.
	for _, n := range g.Nodes() {
		for i, s := range n.Succs() {
			fmt.Fprintf(&b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#99a" stroke-width="1"/>`,
				x(n), y(n)+nodeH/2, x(s), y(s)-nodeH/2)
			if n.Kind == Or && len(n.Succs()) > 1 {
				mx, my := (x(n)+x(s))/2, (y(n)+y(s))/2
				fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" fill="#667">%.0f%%</text>`,
					mx+3, my, n.BranchProb(i)*100)
			}
		}
	}
	for _, n := range g.Nodes() {
		cx, cy := x(n), y(n)
		switch n.Kind {
		case Compute:
			fmt.Fprintf(&b, `<rect x="%.0f" y="%.0f" width="%d" height="%d" rx="6" fill="#eaf1fb" stroke="#456"/>`,
				cx-nodeW/2, cy-nodeH/2, nodeW, nodeH)
			fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" text-anchor="middle">%s</text>`, cx, cy-2, svgEscape(n.Name))
			fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" text-anchor="middle" fill="#567">%.3g/%.3g ms</text>`,
				cx, cy+11, n.WCET*1e3, n.ACET*1e3)
		case And:
			fmt.Fprintf(&b, `<polygon points="%.0f,%.0f %.0f,%.0f %.0f,%.0f %.0f,%.0f" fill="#fdf3d8" stroke="#a85"/>`,
				cx, cy-nodeH/2, cx+nodeW/3, cy, cx, cy+nodeH/2, cx-nodeW/3, cy)
			fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" text-anchor="middle">%s</text>`, cx, cy+4, svgEscape(n.Name))
		case Or:
			fmt.Fprintf(&b, `<ellipse cx="%.0f" cy="%.0f" rx="%d" ry="%d" fill="#fde8e8" stroke="#a55"/>`,
				cx, cy, nodeW/3, nodeH/2)
			fmt.Fprintf(&b, `<ellipse cx="%.0f" cy="%.0f" rx="%d" ry="%d" fill="none" stroke="#a55"/>`,
				cx, cy, nodeW/3-3, nodeH/2-3)
			fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" text-anchor="middle">%s</text>`, cx, cy+4, svgEscape(n.Name))
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func bary(n *Node, pos []float64) float64 {
	if len(n.Preds()) == 0 {
		return 0
	}
	var sum float64
	for _, p := range n.Preds() {
		sum += pos[p.ID]
	}
	return sum / float64(len(n.Preds()))
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
