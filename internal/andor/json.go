package andor

import (
	"encoding/json"
	"fmt"
)

// jsonGraph is the wire form of a Graph.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges [][2]int   `json:"edges"`
}

type jsonNode struct {
	Name  string    `json:"name"`
	Kind  string    `json:"kind"`
	WCET  float64   `json:"wcet,omitempty"`
	ACET  float64   `json:"acet,omitempty"`
	Class string    `json:"class,omitempty"`
	Probs []float64 `json:"probs,omitempty"`
}

// MarshalJSON encodes the graph as {"name", "nodes", "edges"} with node
// kinds spelled out ("compute", "and", "or"), execution times in seconds,
// edges as [from, to] ID pairs, and Or branch probabilities stored on the
// Or node in successor order.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name, Nodes: make([]jsonNode, g.Len())}
	for _, n := range g.nodes {
		jg.Nodes[n.ID] = jsonNode{
			Name: n.Name, Kind: n.Kind.String(),
			WCET: n.WCET, ACET: n.ACET, Class: n.Class,
			Probs: n.prob,
		}
		for _, s := range n.succ {
			jg.Edges = append(jg.Edges, [2]int{n.ID, s.ID})
		}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously encoded by MarshalJSON into g,
// replacing its contents. The decoded graph is not validated; call Validate
// afterwards.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	fresh := NewGraph(jg.Name)
	for i, jn := range jg.Nodes {
		var n *Node
		switch jn.Kind {
		case "compute":
			if jn.WCET <= 0 || jn.ACET <= 0 || jn.ACET > jn.WCET {
				return fmt.Errorf("andor: node %d (%q): invalid times wcet=%g acet=%g", i, jn.Name, jn.WCET, jn.ACET)
			}
			n = fresh.AddTask(jn.Name, jn.WCET, jn.ACET)
			n.Class = jn.Class
		case "and":
			n = fresh.AddAnd(jn.Name)
		case "or":
			n = fresh.AddOr(jn.Name)
		default:
			return fmt.Errorf("andor: node %d (%q): unknown kind %q", i, jn.Name, jn.Kind)
		}
		if jn.Probs != nil {
			n.prob = append([]float64(nil), jn.Probs...)
		}
	}
	for _, e := range jg.Edges {
		if e[0] < 0 || e[0] >= fresh.Len() || e[1] < 0 || e[1] >= fresh.Len() {
			return fmt.Errorf("andor: edge %v references unknown node", e)
		}
		fresh.AddEdge(fresh.nodes[e[0]], fresh.nodes[e[1]])
	}
	// Field-wise, not *g = *fresh: Graph carries atomic memo fields that
	// must not be copied. Replacing the nodes resets the memo.
	g.Name = fresh.Name
	g.nodes = fresh.nodes
	g.invalidate()
	return nil
}
