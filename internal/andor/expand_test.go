package andor

import "testing"

func TestExpandLoopStructure(t *testing.T) {
	g := NewGraph("loop")
	entry, exit := ExpandLoop(g, "L", 4e-3, 2e-3, []float64{0.50, 0.20, 0.05, 0.25})
	if entry.Name != "L#1" || entry.Kind != Compute {
		t.Errorf("entry = %v", entry)
	}
	if exit.Name != "L.join" || exit.Kind != Or {
		t.Errorf("exit = %v", exit)
	}
	// 4 bodies + 3 decision ORs + 1 join.
	if g.Len() != 8 {
		t.Errorf("loop nodes = %d, want 8", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The decision ORs' continue probabilities must reproduce the
	// iteration distribution: P(stop after 1) = 0.5.
	o1 := g.NodeByName("L.it1")
	if !close(o1.BranchProb(0), 0.5) {
		t.Errorf("P(stop@1) = %g, want 0.5", o1.BranchProb(0))
	}
	// P(stop after 2 | reached 2) = 0.2/0.5 = 0.4.
	o2 := g.NodeByName("L.it2")
	if !close(o2.BranchProb(0), 0.4) {
		t.Errorf("P(stop@2) = %g, want 0.4", o2.BranchProb(0))
	}
	// P(stop after 3 | reached 3) = 0.05/0.30.
	o3 := g.NodeByName("L.it3")
	if !close(o3.BranchProb(0), 0.05/0.30) {
		t.Errorf("P(stop@3) = %g, want %g", o3.BranchProb(0), 0.05/0.30)
	}
}

func TestExpandLoopSingleIteration(t *testing.T) {
	g := NewGraph("loop1")
	entry, exit := ExpandLoop(g, "L", 1e-3, 1e-3, []float64{1})
	if entry == nil || exit == nil || g.Len() != 2 {
		t.Fatalf("single-iteration loop: %d nodes", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExpandLoopFuncMultiTaskBody(t *testing.T) {
	g := NewGraph("loopbody")
	entry, exit := ExpandLoopFunc(g, "L", []float64{0.6, 0.4}, func(iter int) (*Node, *Node) {
		a := g.AddTask("a", 1e-3, 1e-3)
		b := g.AddTask("b", 2e-3, 1e-3)
		g.AddEdge(a, b)
		return a, b
	})
	end := g.AddTask("end", 1e-3, 1e-3)
	g.AddEdge(exit, end)
	_ = entry
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := s.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d", len(paths))
	}
}

func TestExpandLoopPanics(t *testing.T) {
	g := NewGraph("bad")
	mustPanic(t, func() { ExpandLoop(g, "L", 1, 1, nil) })
	mustPanic(t, func() { ExpandLoop(g, "L", 1, 1, []float64{0.5, 0.6}) })
	mustPanic(t, func() { ExpandLoop(g, "L", 1, 1, []float64{-0.5, 1.5}) })
	// Body entry with a pre-existing predecessor is rejected.
	g2 := NewGraph("bad2")
	pre := g2.AddTask("pre", 1, 1)
	mustPanic(t, func() {
		ExpandLoopFunc(g2, "L", []float64{1}, func(int) (*Node, *Node) {
			x := g2.AddTask("x", 1, 1)
			g2.AddEdge(pre, x)
			return x, x
		})
	})
}
