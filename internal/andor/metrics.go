package andor

import "fmt"

// Metrics summarizes an application graph's structure and workload for
// reports and the graphtool CLI.
type Metrics struct {
	// Tasks, AndNodes, OrNodes and Edges count the graph's elements.
	Tasks, AndNodes, OrNodes, Edges int
	// TotalWCET and TotalACET sum all computation nodes (seconds); note
	// that one execution runs only one path's subset.
	TotalWCET, TotalACET float64
	// CriticalPathWCET is the longest WCET-weighted chain with every
	// branch treated as present (a structural lower bound on any single
	// path's schedule; the scheduler computes exact per-path values).
	CriticalPathWCET float64
	// MeanAlpha is the task-count-weighted mean ACET/WCET ratio.
	MeanAlpha float64
	// Sections and Paths come from the program-section decomposition.
	Sections, Paths int
	// MaxSectionTasks is the largest section's node count.
	MaxSectionTasks int
	// Depth is the longest chain measured in nodes (including dummies).
	Depth int
	// StructuralParallelism is TotalWCET / CriticalPathWCET: the average
	// width an infinite machine could exploit if every branch executed.
	StructuralParallelism float64
	// ExpectedWork is the probability-weighted WCET work of one execution
	// (averaging over paths).
	ExpectedWork float64
}

// ComputeMetrics analyzes a validated graph. It returns an error if the
// graph does not decompose into sections.
func ComputeMetrics(g *Graph) (Metrics, error) {
	var m Metrics
	for _, n := range g.Nodes() {
		m.Edges += len(n.Succs())
		switch n.Kind {
		case Compute:
			m.Tasks++
			m.TotalWCET += n.WCET
			m.TotalACET += n.ACET
			m.MeanAlpha += n.ACET / n.WCET
		case And:
			m.AndNodes++
		case Or:
			m.OrNodes++
		}
	}
	if m.Tasks > 0 {
		m.MeanAlpha /= float64(m.Tasks)
	}
	m.CriticalPathWCET = g.CriticalPathWCET()
	if m.CriticalPathWCET > 0 {
		m.StructuralParallelism = m.TotalWCET / m.CriticalPathWCET
	}

	// Depth in nodes over a topological pass.
	order, ok := g.TopoOrder()
	if !ok {
		return m, fmt.Errorf("andor: graph %q contains a cycle", g.Name)
	}
	depth := make([]int, g.Len())
	for _, n := range order {
		d := 1
		for _, p := range n.Preds() {
			if depth[p.ID]+1 > d {
				d = depth[p.ID] + 1
			}
		}
		depth[n.ID] = d
		if d > m.Depth {
			m.Depth = d
		}
	}

	s, err := Decompose(g)
	if err != nil {
		return m, err
	}
	m.Sections = len(s.All)
	m.Paths = s.NumPaths()
	for _, sec := range s.All {
		if len(sec.Nodes) > m.MaxSectionTasks {
			m.MaxSectionTasks = len(sec.Nodes)
		}
	}

	// Expected work: probability-weighted per-path WCET sums, computed on
	// the section DAG by memoized recursion (cheap even with exponentially
	// many paths).
	memo := make(map[*Section]float64)
	var expect func(sec *Section) float64
	expect = func(sec *Section) float64 {
		if v, ok := memo[sec]; ok {
			return v
		}
		v := sec.WCETSum()
		if sec.Exit != nil && len(sec.Exit.Succs()) > 0 {
			for i, next := range s.Branch[sec.Exit.ID] {
				v += sec.Exit.BranchProb(i) * expect(next)
			}
		}
		memo[sec] = v
		return v
	}
	m.ExpectedWork = expect(s.First)
	return m, nil
}
