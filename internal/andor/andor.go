// Package andor implements the extended AND/OR graph application model of
// Zhu, AbouGhazaleh, Mossé and Melhem, "Power Aware Scheduling for AND/OR
// Graphs in Multi-Processor Real-Time Systems" (ICPP 2002), section 2.1.
//
// An application is a directed acyclic graph whose vertices are either
// computation nodes or dummy synchronization nodes:
//
//   - A Compute node carries a worst-case execution time (WCET) and an
//     average-case execution time (ACET), both expressed in seconds at the
//     maximum processor speed.
//   - An And node becomes ready when all of its predecessors have finished;
//     all of its successors depend on it. It exposes parallelism.
//   - An Or node becomes ready when any one of its predecessors finishes,
//     and exactly one of its successors executes after it, chosen according
//     to the branch probabilities annotated on the outgoing edges. It
//     encodes data-dependent control flow (different execution paths).
//
// Following the paper's simplification, an Or node cannot be processed
// concurrently with other work: all processors synchronize (drain) at an Or
// node. Execution therefore decomposes into "program sections" — AND-only
// subgraphs separated by Or nodes — which this package computes (see
// Sections). The application as a whole carries a deadline, supplied to the
// scheduler rather than stored on the graph.
//
// Loops are not representable directly (the graph has no back edges); use
// ExpandLoop to unroll a loop with a known maximum iteration count and an
// iteration-count probability distribution into an equivalent Or structure,
// as described in section 2.1 of the paper.
package andor

import "fmt"

// Kind discriminates the three vertex kinds of the extended AND/OR model.
type Kind uint8

const (
	// Compute is a real task with WCET/ACET attributes.
	Compute Kind = iota
	// And is a dummy synchronization node that waits for all predecessors.
	And
	// Or is a dummy synchronization node that waits for one predecessor and
	// selects one successor (a global synchronization point).
	Or
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case And:
		return "and"
	case Or:
		return "or"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Node is a vertex of an AND/OR graph. Nodes are created through the Graph
// methods (AddTask, AddAnd, AddOr) and must not be shared between graphs.
type Node struct {
	// ID is the node's index in its Graph, assigned at creation, stable for
	// the graph's lifetime and usable as a dense array index.
	ID int
	// Name is a human-readable label used in traces, DOT output and errors.
	Name string
	// Kind is the vertex kind.
	Kind Kind
	// WCET is the worst-case execution time in seconds at maximum processor
	// speed. Zero for synchronization nodes.
	WCET float64
	// ACET is the average-case execution time in seconds at maximum
	// processor speed. Zero for synchronization nodes.
	ACET float64
	// Class is the node's preferred processor class on heterogeneous
	// platforms (the `@class` tag of the .andor format). Empty means no
	// preference; homogeneous schedulers ignore it. Set via
	// Graph.SetClass so the graph's memoized analyses are invalidated.
	Class string

	succ []*Node
	pred []*Node
	// prob, on an Or node, holds the branch probability of each successor,
	// parallel to succ. Nil on other kinds and on Or nodes with a single
	// successor (implicitly probability 1).
	prob []float64
}

// Succs returns the node's successors. The returned slice is owned by the
// graph and must not be modified.
func (n *Node) Succs() []*Node { return n.succ }

// Preds returns the node's predecessors. The returned slice is owned by the
// graph and must not be modified.
func (n *Node) Preds() []*Node { return n.pred }

// BranchProb returns the probability that successor i is taken after this
// Or node. It panics if the node is not an Or node or i is out of range.
// For an Or node with a single successor it returns 1.
func (n *Node) BranchProb(i int) float64 {
	if n.Kind != Or {
		panic(fmt.Sprintf("andor: BranchProb on %s node %q", n.Kind, n.Name))
	}
	if i < 0 || i >= len(n.succ) {
		panic(fmt.Sprintf("andor: BranchProb index %d out of range on %q", i, n.Name))
	}
	if n.prob == nil {
		return 1
	}
	return n.prob[i]
}

// IsSource reports whether the node has no predecessors.
func (n *Node) IsSource() bool { return len(n.pred) == 0 }

// IsSink reports whether the node has no successors.
func (n *Node) IsSink() bool { return len(n.succ) == 0 }

// String returns a compact description such as "B(5ms/3ms)" or "O1[or]".
func (n *Node) String() string {
	switch n.Kind {
	case Compute:
		return fmt.Sprintf("%s(%.4g/%.4g)", n.Name, n.WCET, n.ACET)
	default:
		return fmt.Sprintf("%s[%s]", n.Name, n.Kind)
	}
}
