package andor

import (
	"strings"
	"testing"
)

func TestGraphSVG(t *testing.T) {
	g := orFork(t)
	svg := g.SVG()
	for _, want := range []string{
		"<svg", "</svg>",
		"rect",    // compute nodes
		"ellipse", // or nodes
		"30%",     // branch probability label
		"A", "B", "C", "D", "O1", "O2",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// And nodes render as diamonds (polygons).
	gd, _, _, _, _, _ := diamond(t)
	if !strings.Contains(gd.SVG(), "polygon") {
		t.Error("And node diamond missing")
	}
	// Every node drawn exactly once: count <rect for compute nodes.
	if got := strings.Count(svg, "<rect"); got != 4 {
		t.Errorf("rects = %d, want 4", got)
	}
	// One line per edge.
	if got := strings.Count(svg, "<line"); got != 6 {
		t.Errorf("edges = %d, want 6", got)
	}
}

func TestGraphSVGLargeWorkloads(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := RandomGraph(&fakeRand{state: seed}, DefaultRandomOpts())
		svg := g.SVG()
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
			t.Fatalf("seed %d: malformed SVG", seed)
		}
		// Exactly one shape per node.
		shapes := strings.Count(svg, "<rect") + strings.Count(svg, "<polygon") +
			strings.Count(svg, "<ellipse")/2 // or nodes draw two ellipses
		// The /2 assumes all ellipses are or-node pairs.
		var ors int
		for _, n := range g.Nodes() {
			if n.Kind == Or {
				ors++
			}
		}
		if strings.Count(svg, "<ellipse") != 2*ors {
			t.Errorf("seed %d: ellipse count %d for %d or nodes", seed, strings.Count(svg, "<ellipse"), ors)
		}
		if shapes != g.Len() {
			t.Errorf("seed %d: %d shapes for %d nodes", seed, shapes, g.Len())
		}
	}
}

func TestGraphSVGEscapesNames(t *testing.T) {
	g := NewGraph("esc")
	g.AddTask("a<b&c", 1e-3, 1e-3)
	svg := g.SVG()
	if strings.Contains(svg, "a<b") {
		t.Error("name not escaped")
	}
	if !strings.Contains(svg, "a&lt;b&amp;c") {
		t.Error("escaped name missing")
	}
}
