package andor

import (
	"fmt"
	"sync/atomic"
)

// Graph is a mutable AND/OR application graph. Build it with AddTask,
// AddAnd, AddOr, AddEdge and SetBranchProbs, then call Validate before
// handing it to a scheduler. A Graph is not safe for concurrent mutation;
// once built and validated it may be shared read-only between goroutines.
//
// Validation and section decomposition are memoized on the graph: the
// first successful Validate / Decompose records its result, every mutating
// method discards it, and repeated compiles of an unchanged graph (sizing
// searches, experiment grids) skip both passes. The memo fields are
// atomics so concurrent read-only users — several NewPlan calls on one
// shared graph — stay race-free.
type Graph struct {
	// Name labels the application in traces and reports.
	Name  string
	nodes []*Node

	validated atomic.Bool
	secs      atomic.Pointer[Sections]
}

// invalidate discards the memoized validation and decomposition after a
// mutation.
func (g *Graph) invalidate() {
	g.validated.Store(false)
	g.secs.Store(nil)
}

// NewGraph returns an empty graph with the given application name.
func NewGraph(name string) *Graph {
	return &Graph{Name: name}
}

// Len returns the number of nodes in the graph.
func (g *Graph) Len() int { return len(g.nodes) }

// Nodes returns all nodes in creation (ID) order. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Node returns the node with the given ID. It panics on out-of-range IDs.
func (g *Graph) Node(id int) *Node {
	return g.nodes[id]
}

// NodeByName returns the first node with the given name, or nil.
func (g *Graph) NodeByName(name string) *Node {
	for _, n := range g.nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

func (g *Graph) add(n *Node) *Node {
	g.invalidate()
	n.ID = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return n
}

// AddTask adds a computation node with the given worst-case and
// average-case execution times (seconds at maximum speed).
// It panics if wcet <= 0 or acet is outside (0, wcet]; use Validate for
// error reporting on programmatically built graphs instead of relying on
// this programming-error check.
func (g *Graph) AddTask(name string, wcet, acet float64) *Node {
	if wcet <= 0 || acet <= 0 || acet > wcet {
		panic(fmt.Sprintf("andor: task %q has invalid times wcet=%g acet=%g", name, wcet, acet))
	}
	return g.add(&Node{Name: name, Kind: Compute, WCET: wcet, ACET: acet})
}

// AddAnd adds an AND synchronization node.
func (g *Graph) AddAnd(name string) *Node {
	return g.add(&Node{Name: name, Kind: And})
}

// AddOr adds an OR synchronization node. If the node ends up with more than
// one successor, branch probabilities must be assigned with SetBranchProbs.
func (g *Graph) AddOr(name string) *Node {
	return g.add(&Node{Name: name, Kind: Or})
}

// AddEdge adds the dependence edge from → to, meaning `to` depends on
// `from`. Duplicate edges and self-loops panic (they are always bugs in the
// builder, never data-dependent).
func (g *Graph) AddEdge(from, to *Node) {
	g.invalidate()
	if from == to {
		panic(fmt.Sprintf("andor: self-loop on %q", from.Name))
	}
	for _, s := range from.succ {
		if s == to {
			panic(fmt.Sprintf("andor: duplicate edge %q -> %q", from.Name, to.Name))
		}
	}
	from.succ = append(from.succ, to)
	to.pred = append(to.pred, from)
}

// Chain adds edges linking each node to the next: Chain(a,b,c) adds a→b and
// b→c. It is a convenience for building pipelines.
func (g *Graph) Chain(nodes ...*Node) {
	for i := 1; i < len(nodes); i++ {
		g.AddEdge(nodes[i-1], nodes[i])
	}
}

// SetBranchProbs assigns the probability of each successor branch of an Or
// node, in successor order (the order the edges were added). It panics if
// or is not an Or node or the count does not match the successor count;
// probability values themselves are checked by Validate.
func (g *Graph) SetBranchProbs(or *Node, probs ...float64) {
	if or.Kind != Or {
		panic(fmt.Sprintf("andor: SetBranchProbs on %s node %q", or.Kind, or.Name))
	}
	if len(probs) != len(or.succ) {
		panic(fmt.Sprintf("andor: SetBranchProbs on %q: %d probs for %d successors",
			or.Name, len(probs), len(or.succ)))
	}
	g.invalidate()
	or.prob = append([]float64(nil), probs...)
}

// SetClass tags a computation node with a preferred processor class for
// heterogeneous platforms (see Node.Class). It panics on synchronization
// nodes, which are placement-free.
func (g *Graph) SetClass(n *Node, class string) {
	if n.Kind != Compute {
		panic(fmt.Sprintf("andor: SetClass on %s node %q", n.Kind, n.Name))
	}
	g.invalidate()
	n.Class = class
}

// Sources returns the nodes without predecessors (the application roots).
func (g *Graph) Sources() []*Node {
	var roots []*Node
	for _, n := range g.nodes {
		if n.IsSource() {
			roots = append(roots, n)
		}
	}
	return roots
}

// Sinks returns the nodes without successors.
func (g *Graph) Sinks() []*Node {
	var sinks []*Node
	for _, n := range g.nodes {
		if n.IsSink() {
			sinks = append(sinks, n)
		}
	}
	return sinks
}

// ComputeNodes returns all computation nodes in ID order.
func (g *Graph) ComputeNodes() []*Node {
	var tasks []*Node
	for _, n := range g.nodes {
		if n.Kind == Compute {
			tasks = append(tasks, n)
		}
	}
	return tasks
}

// TotalWCET returns the sum of all computation nodes' worst-case execution
// times — an upper bound on the total work of any single execution path.
func (g *Graph) TotalWCET() float64 {
	var sum float64
	for _, n := range g.nodes {
		sum += n.WCET
	}
	return sum
}

// TotalACET returns the sum of all computation nodes' average-case
// execution times.
func (g *Graph) TotalACET() float64 {
	var sum float64
	for _, n := range g.nodes {
		sum += n.ACET
	}
	return sum
}

// ScaleACET sets every computation node's ACET to alpha times its WCET,
// clamped to (0, WCET]. It is used by experiments that sweep the
// average-to-worst-case ratio α of an application. Alpha must be in (0, 1].
func (g *Graph) ScaleACET(alpha float64) {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("andor: ScaleACET alpha %g outside (0,1]", alpha))
	}
	g.invalidate()
	for _, n := range g.nodes {
		if n.Kind == Compute {
			n.ACET = alpha * n.WCET
		}
	}
}

// Clone returns a deep copy of the graph. The copy's nodes have the same
// IDs, names, kinds, attributes and edges as the original's, so analyses
// performed on the clone (e.g. ACET scaling sweeps) do not disturb the
// original.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Name)
	for _, n := range g.nodes {
		c.add(&Node{Name: n.Name, Kind: n.Kind, WCET: n.WCET, ACET: n.ACET, Class: n.Class})
	}
	for _, n := range g.nodes {
		cn := c.nodes[n.ID]
		for _, s := range n.succ {
			cn.succ = append(cn.succ, c.nodes[s.ID])
		}
		for _, p := range n.pred {
			cn.pred = append(cn.pred, c.nodes[p.ID])
		}
		if n.prob != nil {
			cn.prob = append([]float64(nil), n.prob...)
		}
	}
	return c
}
