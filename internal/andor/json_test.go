package andor

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := orFork(t)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Len() != orig.Len() {
		t.Fatalf("roundtrip changed shape: %q %d", back.Name, back.Len())
	}
	for i := range orig.Nodes() {
		a, b := orig.Node(i), back.Node(i)
		if a.Name != b.Name || a.Kind != b.Kind || a.WCET != b.WCET || a.ACET != b.ACET {
			t.Errorf("node %d differs after roundtrip", i)
		}
		if len(a.Succs()) != len(b.Succs()) {
			t.Errorf("node %d successor count differs", i)
		}
	}
	o1 := back.NodeByName("O1")
	if !close(o1.BranchProb(0), 0.3) || !close(o1.BranchProb(1), 0.7) {
		t.Error("branch probabilities lost in roundtrip")
	}
	if err := back.Validate(); err != nil {
		t.Errorf("roundtripped graph invalid: %v", err)
	}
}

func TestJSONRoundTripRandom(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		orig := RandomGraph(&fakeRand{state: seed}, DefaultRandomOpts())
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("seed %d: roundtripped graph invalid: %v", seed, err)
		}
		if back.TotalWCET() != orig.TotalWCET() {
			t.Errorf("seed %d: total WCET changed", seed)
		}
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	cases := []string{
		`{"name":"x","nodes":[{"name":"a","kind":"martian"}],"edges":[]}`,
		`{"name":"x","nodes":[{"name":"a","kind":"compute","wcet":0,"acet":0}],"edges":[]}`,
		`{"name":"x","nodes":[{"name":"a","kind":"compute","wcet":1,"acet":2}],"edges":[]}`,
		`{"name":"x","nodes":[{"name":"a","kind":"and"}],"edges":[[0,7]]}`,
		`{not json`,
	}
	for _, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestDOT(t *testing.T) {
	g := orFork(t)
	dot := g.DOT()
	for _, want := range []string{
		"digraph", "shape=doublecircle", "shape=ellipse", "30%", "70%", "->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// And nodes render as diamonds.
	gd, _, _, _, _, _ := diamond(t)
	if !strings.Contains(gd.DOT(), "shape=diamond") {
		t.Error("DOT output missing diamond for And node")
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	t.Run("good", func(t *testing.T) {
		g := orFork(t)
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
	})
	t.Run("missing probs", func(t *testing.T) {
		g := NewGraph("noprobs")
		a := g.AddTask("a", 1, 1)
		o := g.AddOr("o")
		b := g.AddTask("b", 1, 1)
		c := g.AddTask("c", 1, 1)
		g.AddEdge(a, o)
		g.AddEdge(o, b)
		g.AddEdge(o, c)
		if err := g.Validate(); err == nil {
			t.Error("want missing-probabilities error")
		}
	})
	t.Run("probs not summing", func(t *testing.T) {
		g := NewGraph("badsum")
		a := g.AddTask("a", 1, 1)
		o := g.AddOr("o")
		b := g.AddTask("b", 1, 1)
		c := g.AddTask("c", 1, 1)
		g.AddEdge(a, o)
		g.AddEdge(o, b)
		g.AddEdge(o, c)
		g.SetBranchProbs(o, 0.5, 0.6)
		if err := g.Validate(); err == nil {
			t.Error("want probability-sum error")
		}
	})
	t.Run("negative prob", func(t *testing.T) {
		g := NewGraph("negprob")
		a := g.AddTask("a", 1, 1)
		o := g.AddOr("o")
		b := g.AddTask("b", 1, 1)
		c := g.AddTask("c", 1, 1)
		g.AddEdge(a, o)
		g.AddEdge(o, b)
		g.AddEdge(o, c)
		g.SetBranchProbs(o, -0.5, 1.5)
		if err := g.Validate(); err == nil {
			t.Error("want negative-probability error")
		}
	})
	t.Run("isolated and", func(t *testing.T) {
		g := NewGraph("isoand")
		g.AddTask("a", 1, 1)
		g.AddAnd("x")
		if err := g.Validate(); err == nil {
			t.Error("want isolated-And error")
		}
	})
	t.Run("or without preds", func(t *testing.T) {
		g := NewGraph("orphanor")
		g.AddTask("a", 1, 1)
		o := g.AddOr("o")
		b := g.AddTask("b", 1, 1)
		g.AddEdge(o, b)
		if err := g.Validate(); err == nil {
			t.Error("want or-without-preds error")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if err := NewGraph("e").Validate(); err == nil {
			t.Error("want empty-graph error")
		}
	})
}
