package andor

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Section is a maximal AND-only program section: the computation and And
// nodes executed between two Or synchronization points (or between the
// application's start/end and an Or node). Because all processors
// synchronize at Or nodes, sections execute one at a time, and the off-line
// phase of the scheduler builds one canonical schedule per section (paper
// §3.2).
type Section struct {
	// ID indexes the section in Sections.All.
	ID int
	// Entries are the section's entry nodes: the application roots for the
	// first section, or the single successor of an Or branch otherwise.
	// Empty for a zero-length section (an Or branch leading directly to
	// another Or node).
	Entries []*Node
	// Nodes lists the section's Compute and And nodes in topological order.
	Nodes []*Node
	// Exit is the Or node that terminates the section, or nil if the
	// section ends the application.
	Exit *Node

	// digest memoizes Digest(). Sections are immutable once Decompose
	// returns, so the first computed value is final; the atomic makes the
	// benign compute-twice race safe under concurrent compiles.
	digest atomic.Pointer[SectionDigest]
}

// WCETSum returns the total worst-case work (seconds at maximum speed) of
// the section's computation nodes.
func (s *Section) WCETSum() float64 {
	var sum float64
	for _, n := range s.Nodes {
		sum += n.WCET
	}
	return sum
}

// ACETSum returns the total average-case work of the section's computation
// nodes.
func (s *Section) ACETSum() float64 {
	var sum float64
	for _, n := range s.Nodes {
		sum += n.ACET
	}
	return sum
}

// Sections is the decomposition of an AND/OR graph into program sections
// separated by Or nodes, plus the branching structure connecting them. It
// is produced by Decompose and is immutable afterwards.
type Sections struct {
	// Graph is the graph the decomposition was computed from.
	Graph *Graph
	// All lists every section; All[i].ID == i. The first section has ID 0.
	All []*Section
	// First is the section containing the application roots (ID 0).
	First *Section
	// Branch[or.ID][i] is the section executed when Or node `or` selects
	// its i-th successor. Indexed by node ID; nil entries for non-Or nodes.
	Branch [][]*Section
	// SectionOf[node.ID] is the section containing the (non-Or) node;
	// nil for Or nodes.
	SectionOf []*Section
}

// Decompose splits the graph into program sections. It returns an error if
// the graph violates the structural restrictions of the paper's model:
//
//   - the graph must be a non-empty DAG;
//   - from a section's entries, forward traversal (stopping at Or nodes)
//     must reach at most one Or node — the section's exit — so that all
//     processors can synchronize at a single point;
//   - every dependence edge must stay within one section or be incident to
//     an Or node: a non-entry node may not depend on nodes outside its
//     section (such an edge would cross a synchronization barrier, or worse,
//     reference a sibling branch that never executes);
//   - the successor of an Or branch must have that Or node as its only
//     predecessor (it is the entry of a fresh section).
func Decompose(g *Graph) (*Sections, error) {
	// A successful decomposition is memoized on the graph (discarded by any
	// mutating Graph method): Sections are immutable, so every compile of
	// an unchanged graph can share one instance.
	if s := g.secs.Load(); s != nil {
		return s, nil
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("andor: graph %q is empty", g.Name)
	}
	topo, ok := g.TopoOrder()
	if !ok {
		return nil, fmt.Errorf("andor: graph %q contains a cycle", g.Name)
	}
	topoIdx := make([]int, g.Len())
	for i, n := range topo {
		topoIdx[n.ID] = i
	}

	s := &Sections{
		Graph:     g,
		Branch:    make([][]*Section, g.Len()),
		SectionOf: make([]*Section, g.Len()),
	}
	// Memoize sections by their single entry node (branch sections) and
	// zero-length sections by their exit Or node, so joins share sections.
	byEntry := make(map[*Node]*Section)
	byEmptyExit := make(map[*Node]*Section)

	var build func(entries []*Node) (*Section, error)
	build = func(entries []*Node) (*Section, error) {
		sec := &Section{ID: len(s.All), Entries: entries}
		s.All = append(s.All, sec)

		entrySet := make(map[*Node]bool, len(entries))
		for _, e := range entries {
			entrySet[e] = true
		}
		members := make(map[*Node]bool)
		var exits []*Node
		stack := append([]*Node(nil), entries...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v.Kind == Or {
				dup := false
				for _, e := range exits {
					if e == v {
						dup = true
					}
				}
				if !dup {
					exits = append(exits, v)
				}
				continue
			}
			if members[v] {
				continue
			}
			members[v] = true
			stack = append(stack, v.succ...)
		}
		if len(exits) > 1 {
			names := make([]string, len(exits))
			for i, e := range exits {
				names[i] = e.Name
			}
			return nil, fmt.Errorf("andor: section starting at %v reaches %d OR nodes %v; processors can only synchronize at one",
				sectionEntryNames(entries), len(exits), names)
		}
		if len(exits) == 1 {
			sec.Exit = exits[0]
		}

		// Membership checks: non-entry nodes must depend only on section
		// members; entry nodes are checked by the caller.
		for v := range members {
			if entrySet[v] {
				continue
			}
			for _, p := range v.pred {
				if !members[p] {
					return nil, fmt.Errorf("andor: edge %q -> %q crosses a section boundary",
						p.Name, v.Name)
				}
			}
		}

		sec.Nodes = make([]*Node, 0, len(members))
		for v := range members {
			sec.Nodes = append(sec.Nodes, v)
		}
		sort.Slice(sec.Nodes, func(i, j int) bool {
			return topoIdx[sec.Nodes[i].ID] < topoIdx[sec.Nodes[j].ID]
		})
		for _, v := range sec.Nodes {
			if s.SectionOf[v.ID] != nil {
				return nil, fmt.Errorf("andor: node %q belongs to two sections", v.Name)
			}
			s.SectionOf[v.ID] = sec
		}

		if sec.Exit != nil {
			if err := buildBranches(sec.Exit, s, byEntry, byEmptyExit, build); err != nil {
				return nil, err
			}
		}
		return sec, nil
	}

	roots := g.Sources()
	if len(roots) == 0 {
		return nil, fmt.Errorf("andor: graph %q has no source nodes", g.Name)
	}
	for _, r := range roots {
		if r.Kind == Or {
			return nil, fmt.Errorf("andor: root node %q is an OR node; the application must start with computation or AND nodes", r.Name)
		}
	}
	first, err := build(roots)
	if err != nil {
		return nil, err
	}
	s.First = first

	// Every node must be covered: non-Or nodes by a section, Or nodes by
	// having their branches resolved.
	for _, n := range g.nodes {
		if n.Kind == Or {
			if s.Branch[n.ID] == nil && len(n.succ) > 0 {
				return nil, fmt.Errorf("andor: OR node %q is unreachable from the roots", n.Name)
			}
			continue
		}
		if s.SectionOf[n.ID] == nil {
			return nil, fmt.Errorf("andor: node %q is unreachable from the roots", n.Name)
		}
	}
	g.secs.Store(s)
	return s, nil
}

// buildBranches resolves the sections reached by each successor branch of an
// Or node, memoizing shared join sections.
func buildBranches(or *Node, s *Sections, byEntry, byEmptyExit map[*Node]*Section,
	build func([]*Node) (*Section, error)) error {
	if s.Branch[or.ID] != nil {
		return nil
	}
	branches := make([]*Section, len(or.succ))
	s.Branch[or.ID] = branches // set before recursing; DAG guarantees no revisit loop
	for i, succ := range or.succ {
		if succ.Kind == Or {
			// Zero-length section: the branch leads directly to another
			// barrier.
			sec, ok := byEmptyExit[succ]
			if !ok {
				sec = &Section{ID: len(s.All), Exit: succ}
				s.All = append(s.All, sec)
				byEmptyExit[succ] = sec
				if err := buildBranches(succ, s, byEntry, byEmptyExit, build); err != nil {
					return err
				}
			}
			branches[i] = sec
			continue
		}
		if sec, ok := byEntry[succ]; ok {
			branches[i] = sec
			continue
		}
		if len(succ.pred) != 1 {
			return fmt.Errorf("andor: node %q follows OR node %q but has %d predecessors; a branch entry may only depend on its OR node",
				succ.Name, or.Name, len(succ.pred))
		}
		sec, err := build([]*Node{succ})
		if err != nil {
			return err
		}
		byEntry[succ] = sec
		branches[i] = sec
	}
	return nil
}

func sectionEntryNames(entries []*Node) []string {
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names
}
