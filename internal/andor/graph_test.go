package andor

import (
	"strings"
	"testing"
)

// diamond builds A → {B, C} → And → D, a minimal AND-parallel graph.
func diamond(t *testing.T) (*Graph, *Node, *Node, *Node, *Node, *Node) {
	t.Helper()
	g := NewGraph("diamond")
	a := g.AddTask("A", 8e-3, 5e-3)
	b := g.AddTask("B", 5e-3, 3e-3)
	c := g.AddTask("C", 4e-3, 2e-3)
	and := g.AddAnd("And")
	d := g.AddTask("D", 2e-3, 1e-3)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, and)
	g.AddEdge(c, and)
	g.AddEdge(and, d)
	return g, a, b, c, and, d
}

// orFork builds A → O1 ─30%→ B ─┐
//
//	└70%→ C ─┴→ O2 → D  (Figure 1b's shape).
func orFork(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph("orfork")
	a := g.AddTask("A", 8e-3, 5e-3)
	o1 := g.AddOr("O1")
	b := g.AddTask("B", 8e-3, 6e-3)
	c := g.AddTask("C", 5e-3, 3e-3)
	o2 := g.AddOr("O2")
	d := g.AddTask("D", 2e-3, 1e-3)
	g.AddEdge(a, o1)
	g.AddEdge(o1, b)
	g.AddEdge(o1, c)
	g.SetBranchProbs(o1, 0.3, 0.7)
	g.AddEdge(b, o2)
	g.AddEdge(c, o2)
	g.AddEdge(o2, d)
	return g
}

func TestGraphBasics(t *testing.T) {
	g, a, b, c, and, d := diamond(t)
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	if g.Node(a.ID) != a {
		t.Error("Node(id) did not return the node")
	}
	if g.NodeByName("C") != c {
		t.Error("NodeByName failed")
	}
	if g.NodeByName("nope") != nil {
		t.Error("NodeByName on missing name should be nil")
	}
	if got := g.Sources(); len(got) != 1 || got[0] != a {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != d {
		t.Errorf("Sinks = %v", got)
	}
	if got := g.ComputeNodes(); len(got) != 4 {
		t.Errorf("ComputeNodes count = %d, want 4", len(got))
	}
	if !a.IsSource() || a.IsSink() || !d.IsSink() {
		t.Error("IsSource/IsSink wrong")
	}
	if len(and.Preds()) != 2 || len(and.Succs()) != 1 {
		t.Error("And node arity wrong")
	}
	if len(b.Preds()) != 1 || b.Preds()[0] != a {
		t.Error("edge bookkeeping wrong")
	}
	_ = c
}

func TestTotalAndScaleACET(t *testing.T) {
	g, _, _, _, _, _ := diamond(t)
	if got, want := g.TotalWCET(), 19e-3; !close(got, want) {
		t.Errorf("TotalWCET = %g, want %g", got, want)
	}
	if got, want := g.TotalACET(), 11e-3; !close(got, want) {
		t.Errorf("TotalACET = %g, want %g", got, want)
	}
	g.ScaleACET(0.5)
	if got, want := g.TotalACET(), 9.5e-3; !close(got, want) {
		t.Errorf("TotalACET after ScaleACET(0.5) = %g, want %g", got, want)
	}
	mustPanic(t, func() { g.ScaleACET(0) })
	mustPanic(t, func() { g.ScaleACET(1.5) })
}

func TestAddTaskRejectsBadTimes(t *testing.T) {
	g := NewGraph("bad")
	mustPanic(t, func() { g.AddTask("x", 0, 0) })
	mustPanic(t, func() { g.AddTask("x", 1, 0) })
	mustPanic(t, func() { g.AddTask("x", 1, 2) })
}

func TestAddEdgeRejectsDuplicatesAndSelfLoops(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddTask("a", 1, 1)
	b := g.AddTask("b", 1, 1)
	g.AddEdge(a, b)
	mustPanic(t, func() { g.AddEdge(a, b) })
	mustPanic(t, func() { g.AddEdge(a, a) })
}

func TestBranchProb(t *testing.T) {
	g := orFork(t)
	o1 := g.NodeByName("O1")
	if got := o1.BranchProb(0); !close(got, 0.3) {
		t.Errorf("BranchProb(0) = %g", got)
	}
	if got := o1.BranchProb(1); !close(got, 0.7) {
		t.Errorf("BranchProb(1) = %g", got)
	}
	o2 := g.NodeByName("O2")
	if got := o2.BranchProb(0); got != 1 {
		t.Errorf("single-successor BranchProb = %g, want 1", got)
	}
	mustPanic(t, func() { o1.BranchProb(2) })
	mustPanic(t, func() { g.NodeByName("A").BranchProb(0) })
}

func TestSetBranchProbsChecks(t *testing.T) {
	g := orFork(t)
	o1 := g.NodeByName("O1")
	mustPanic(t, func() { g.SetBranchProbs(o1, 0.5) }) // wrong count
	a := g.NodeByName("A")
	mustPanic(t, func() { g.SetBranchProbs(a, 1.0) }) // not an Or
}

func TestClone(t *testing.T) {
	g := orFork(t)
	c := g.Clone()
	if c.Len() != g.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), g.Len())
	}
	for _, n := range g.Nodes() {
		cn := c.Node(n.ID)
		if cn.Name != n.Name || cn.Kind != n.Kind || cn.WCET != n.WCET || cn.ACET != n.ACET {
			t.Fatalf("clone node %q differs", n.Name)
		}
		if len(cn.Succs()) != len(n.Succs()) || len(cn.Preds()) != len(n.Preds()) {
			t.Fatalf("clone node %q edges differ", n.Name)
		}
		if cn == n {
			t.Fatal("clone shares nodes with original")
		}
	}
	// Mutating the clone must not affect the original.
	c.ScaleACET(0.1)
	if g.NodeByName("A").ACET != 5e-3 {
		t.Error("ScaleACET on clone mutated original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestChain(t *testing.T) {
	g := NewGraph("chain")
	a := g.AddTask("a", 1, 1)
	b := g.AddTask("b", 1, 1)
	c := g.AddTask("c", 1, 1)
	g.Chain(a, b, c)
	if len(a.Succs()) != 1 || len(b.Succs()) != 1 || len(b.Preds()) != 1 || len(c.Preds()) != 1 {
		t.Error("Chain did not add edges a→b→c")
	}
}

func TestNodeAndKindString(t *testing.T) {
	g := orFork(t)
	if s := g.NodeByName("A").String(); !strings.Contains(s, "A(") {
		t.Errorf("compute String = %q", s)
	}
	if s := g.NodeByName("O1").String(); !strings.Contains(s, "[or]") {
		t.Errorf("or String = %q", s)
	}
	if Compute.String() != "compute" || And.String() != "and" || Or.String() != "or" {
		t.Error("Kind.String wrong")
	}
	if !strings.Contains(Kind(9).String(), "kind(9)") {
		t.Error("unknown Kind.String wrong")
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12+1e-9*abs(b)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
