package andor

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestClassTagRoundTrip pins the `@class` affinity tag through the text and
// JSON forms, and that class-free graphs render byte-identically to the
// pre-tag format (content-addressed digests must not move).
func TestClassTagRoundTrip(t *testing.T) {
	src := "app demo\ntask A 1ms 0.5ms @accel\ntask B 2ms 1ms\nedge A -> B\n"
	g, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NodeByName("A").Class; got != "accel" {
		t.Fatalf("A class %q, want accel", got)
	}
	if got := g.NodeByName("B").Class; got != "" {
		t.Fatalf("B class %q, want none", got)
	}

	text := FormatText(g)
	if !strings.Contains(text, "task A 1ms 500us @accel") {
		t.Fatalf("FormatText dropped the class tag:\n%s", text)
	}
	if strings.Contains(text, "task B 2ms 1ms @") {
		t.Fatalf("FormatText invented a class tag for B:\n%s", text)
	}
	back, err := ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.NodeByName("A").Class != "accel" || back.NodeByName("B").Class != "" {
		t.Fatal("text round-trip changed class tags")
	}

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var jg Graph
	if err := json.Unmarshal(data, &jg); err != nil {
		t.Fatal(err)
	}
	if jg.NodeByName("A").Class != "accel" || jg.NodeByName("B").Class != "" {
		t.Fatal("JSON round-trip changed class tags")
	}

	// Clone must carry the tag.
	if g.Clone().NodeByName("A").Class != "accel" {
		t.Fatal("Clone dropped the class tag")
	}

	// A bare "@" or non-@ fifth token is a parse error, not a class.
	for _, bad := range []string{"task X 1ms 1ms @", "task X 1ms 1ms accel"} {
		if _, err := ParseText(bad); err == nil {
			t.Fatalf("parser accepted %q", bad)
		}
	}
}

// TestSetClassInvalidates checks that tagging a node discards the graph's
// memoized analyses (the tag changes what heterogeneous plans compile).
func TestSetClassInvalidates(t *testing.T) {
	g := NewGraph("g")
	n := g.AddTask("A", 1e-3, 1e-3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.validated.Load() {
		t.Fatal("Validate did not memoize")
	}
	g.SetClass(n, "accel")
	if g.validated.Load() {
		t.Fatal("SetClass left the validation memo in place")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetClass on an And node did not panic")
		}
	}()
	g.SetClass(g.AddAnd("sync"), "accel")
}
