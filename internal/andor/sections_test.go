package andor

import (
	"testing"
)

func TestDecomposeSingleSection(t *testing.T) {
	g, _, _, _, _, _ := diamond(t)
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.All) != 1 {
		t.Fatalf("sections = %d, want 1", len(s.All))
	}
	sec := s.First
	if sec.Exit != nil {
		t.Errorf("terminal section has exit %v", sec.Exit)
	}
	if len(sec.Nodes) != 5 {
		t.Errorf("section nodes = %d, want 5", len(sec.Nodes))
	}
	if got, want := sec.WCETSum(), 19e-3; !close(got, want) {
		t.Errorf("WCETSum = %g, want %g", got, want)
	}
	if got, want := sec.ACETSum(), 11e-3; !close(got, want) {
		t.Errorf("ACETSum = %g, want %g", got, want)
	}
	// Topological order within the section.
	pos := map[*Node]int{}
	for i, n := range sec.Nodes {
		pos[n] = i
	}
	for _, n := range sec.Nodes {
		for _, p := range n.Preds() {
			if pos[p] >= pos[n] {
				t.Errorf("section order violates precedence %q -> %q", p.Name, n.Name)
			}
		}
	}
}

func TestDecomposeOrFork(t *testing.T) {
	g := orFork(t)
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	// Sections: {A}, {B}, {C}, {D}.
	if len(s.All) != 4 {
		t.Fatalf("sections = %d, want 4", len(s.All))
	}
	if s.First.Exit != g.NodeByName("O1") {
		t.Errorf("first section exit = %v", s.First.Exit)
	}
	o1 := g.NodeByName("O1")
	branches := s.Branch[o1.ID]
	if len(branches) != 2 {
		t.Fatalf("O1 branches = %d", len(branches))
	}
	if branches[0].Nodes[0] != g.NodeByName("B") || branches[1].Nodes[0] != g.NodeByName("C") {
		t.Error("branch sections wrong")
	}
	if branches[0].Exit != g.NodeByName("O2") || branches[1].Exit != g.NodeByName("O2") {
		t.Error("branches must exit at the join O2")
	}
	o2 := g.NodeByName("O2")
	after := s.Branch[o2.ID]
	if len(after) != 1 || after[0].Nodes[0] != g.NodeByName("D") {
		t.Error("section after join wrong")
	}
	if after[0].Exit != nil {
		t.Error("final section should be terminal")
	}
	// SectionOf coverage.
	for _, n := range g.Nodes() {
		if n.Kind == Or {
			if s.SectionOf[n.ID] != nil {
				t.Errorf("Or node %q assigned to a section", n.Name)
			}
			continue
		}
		if s.SectionOf[n.ID] == nil {
			t.Errorf("node %q not assigned to a section", n.Name)
		}
	}
}

func TestDecomposeOrChain(t *testing.T) {
	// A → O1 ─→ O2 → B : an Or branch leading directly to another Or gives
	// a zero-length section.
	g := NewGraph("orchain")
	a := g.AddTask("A", 1e-3, 1e-3)
	o1 := g.AddOr("O1")
	o2 := g.AddOr("O2")
	b := g.AddTask("B", 1e-3, 1e-3)
	g.AddEdge(a, o1)
	g.AddEdge(o1, o2)
	g.AddEdge(o2, b)
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	br := s.Branch[o1.ID]
	if len(br) != 1 || len(br[0].Nodes) != 0 || br[0].Exit != o2 {
		t.Fatalf("empty section between Or nodes not built: %+v", br)
	}
}

func TestDecomposeTerminalOr(t *testing.T) {
	// A → O1 with no successors: a terminal barrier is allowed.
	g := NewGraph("terminalor")
	a := g.AddTask("A", 1e-3, 1e-3)
	o1 := g.AddOr("O1")
	g.AddEdge(a, o1)
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.First.Exit != o1 {
		t.Error("first section should exit at O1")
	}
	if got := s.Branch[o1.ID]; len(got) != 0 {
		t.Errorf("terminal Or should have no branches, got %d", len(got))
	}
}

func TestDecomposeSharedJoinSectionIsMemoized(t *testing.T) {
	g := orFork(t)
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	o2 := g.NodeByName("O2")
	// Both O1 branches exit at O2; the section after O2 must be a single
	// shared object.
	if s.Branch[o2.ID][0] == nil {
		t.Fatal("join continuation missing")
	}
	count := 0
	for _, sec := range s.All {
		if len(sec.Nodes) == 1 && sec.Nodes[0] == g.NodeByName("D") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("join section duplicated %d times", count)
	}
}

func TestDecomposeErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := Decompose(NewGraph("empty")); err == nil {
			t.Error("want error")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		g := NewGraph("cycle")
		a := g.AddTask("a", 1, 1)
		b := g.AddTask("b", 1, 1)
		a.succ = append(a.succ, b)
		b.pred = append(b.pred, a)
		b.succ = append(b.succ, a)
		a.pred = append(a.pred, b)
		if _, err := Decompose(g); err == nil {
			t.Error("want cycle error")
		}
	})
	t.Run("two exits", func(t *testing.T) {
		// A → O1, A → B → O2: one section reaching two OR nodes.
		g := NewGraph("twoexits")
		a := g.AddTask("A", 1, 1)
		b := g.AddTask("B", 1, 1)
		o1 := g.AddOr("O1")
		o2 := g.AddOr("O2")
		c := g.AddTask("C", 1, 1)
		d := g.AddTask("D", 1, 1)
		g.AddEdge(a, o1)
		g.AddEdge(a, b)
		g.AddEdge(b, o2)
		g.AddEdge(o1, c)
		g.AddEdge(o2, d)
		if _, err := Decompose(g); err == nil {
			t.Error("want multiple-exit error")
		}
	})
	t.Run("or root", func(t *testing.T) {
		g := NewGraph("orroot")
		o := g.AddOr("O")
		a := g.AddTask("A", 1, 1)
		g.AddEdge(o, a)
		if _, err := Decompose(g); err == nil {
			t.Error("want or-root error")
		}
	})
	t.Run("branch entry with extra pred", func(t *testing.T) {
		// B follows O1 but also depends on A directly: crosses the barrier.
		g := NewGraph("extrapred")
		a := g.AddTask("A", 1, 1)
		o1 := g.AddOr("O1")
		b := g.AddTask("B", 1, 1)
		g.AddEdge(a, o1)
		g.AddEdge(a, b)
		g.AddEdge(o1, b)
		if _, err := Decompose(g); err == nil {
			t.Error("want branch-entry error")
		}
	})
	t.Run("cross-branch edge", func(t *testing.T) {
		// An edge from one OR branch into the other: the target could wait
		// forever on a task that never executes.
		g := NewGraph("crossbranch")
		a := g.AddTask("A", 1, 1)
		o1 := g.AddOr("O1")
		b := g.AddTask("B", 1, 1)
		c := g.AddTask("C", 1, 1)
		c2 := g.AddTask("C2", 1, 1)
		g.AddEdge(a, o1)
		g.AddEdge(o1, b)
		g.AddEdge(o1, c)
		g.SetBranchProbs(o1, 0.5, 0.5)
		g.AddEdge(c, c2)
		g.AddEdge(b, c2)
		if _, err := Decompose(g); err == nil {
			t.Error("want cross-section error")
		}
	})
}
