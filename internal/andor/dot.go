package andor

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz DOT format. Computation nodes are
// ellipses labeled "name\nwcet/acet" (milliseconds), And nodes diamonds and
// Or nodes double circles, matching the paper's Figure 1 conventions. Or
// branch edges are labeled with their probabilities.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n")
	for _, n := range g.nodes {
		switch n.Kind {
		case Compute:
			fmt.Fprintf(&b, "  n%d [shape=ellipse, label=\"%s\\n%.3g/%.3g ms\"];\n",
				n.ID, n.Name, n.WCET*1e3, n.ACET*1e3)
		case And:
			fmt.Fprintf(&b, "  n%d [shape=diamond, label=%q];\n", n.ID, n.Name)
		case Or:
			fmt.Fprintf(&b, "  n%d [shape=doublecircle, label=%q];\n", n.ID, n.Name)
		}
	}
	for _, n := range g.nodes {
		for i, s := range n.succ {
			if n.Kind == Or && len(n.succ) > 1 {
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.0f%%\"];\n", n.ID, s.ID, n.BranchProb(i)*100)
			} else {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", n.ID, s.ID)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
