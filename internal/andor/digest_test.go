package andor

import (
	"testing"
)

// digestTestSections builds A → O1 ─→ (B → {C, D} → And → E) / (F) → O2 → G:
// a fork whose first branch is an AND-parallel diamond section. alpha scales
// every ACET so tests can perturb execution times without touching
// structure. Rebuilding from scratch simulates a graph re-parse: fresh node
// pointers and IDs, identical structure.
func digestTestSections(t *testing.T, alpha float64) []*Section {
	t.Helper()
	g := NewGraph("digest")
	a := g.AddTask("A", 8e-3, alpha*8e-3)
	o1 := g.AddOr("O1")
	b := g.AddTask("B", 6e-3, alpha*6e-3)
	c := g.AddTask("C", 5e-3, alpha*5e-3)
	d := g.AddTask("D", 4e-3, alpha*4e-3)
	and := g.AddAnd("J")
	e := g.AddTask("E", 3e-3, alpha*3e-3)
	f := g.AddTask("F", 7e-3, alpha*7e-3)
	o2 := g.AddOr("O2")
	tail := g.AddTask("G", 2e-3, alpha*2e-3)
	g.AddEdge(a, o1)
	g.AddEdge(o1, b)
	g.AddEdge(b, c)
	g.AddEdge(b, d)
	g.AddEdge(c, and)
	g.AddEdge(d, and)
	g.AddEdge(and, e)
	g.AddEdge(e, o2)
	g.AddEdge(o1, f)
	g.AddEdge(f, o2)
	g.SetBranchProbs(o1, 0.4, 0.6)
	g.AddEdge(o2, tail)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	secs, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	return secs.All
}

// TestSectionDigestStableAcrossRebuild checks the cache's keying contract:
// rebuilding the identical application from scratch (fresh node IDs and
// pointers) reproduces every section digest, and digests are deterministic
// within one graph.
func TestSectionDigestStableAcrossRebuild(t *testing.T) {
	first := digestTestSections(t, 0.5)
	second := digestTestSections(t, 0.5)
	if len(first) != len(second) {
		t.Fatalf("section counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Digest() != second[i].Digest() {
			t.Fatalf("section %d digest changed across rebuild", i)
		}
		if first[i].Digest() != first[i].Digest() {
			t.Fatalf("section %d digest not deterministic", i)
		}
	}
}

// TestSectionDigestSensitivity checks that every scheduling-relevant input
// perturbs the digest — execution times and precedence structure — and that
// distinct sections of one application never share an entry.
func TestSectionDigestSensitivity(t *testing.T) {
	base := digestTestSections(t, 0.5)

	// ACET change (same WCETs, same structure) must change the digests of
	// the sections containing compute tasks: the average-case canonical
	// schedule depends on ACETs.
	perturbed := digestTestSections(t, 0.6)
	changed := false
	for i := range base {
		if base[i].Digest() != perturbed[i].Digest() {
			changed = true
		}
	}
	if !changed {
		t.Fatal("ACET perturbation left all section digests unchanged")
	}

	// Distinct (non-empty, non-identical) sections must have distinct
	// digests.
	seen := make(map[SectionDigest]int)
	for i, s := range base {
		if len(s.Nodes) == 0 {
			continue
		}
		if j, dup := seen[s.Digest()]; dup {
			t.Fatalf("sections %d and %d share a digest", j, i)
		}
		seen[s.Digest()] = i
	}

	// Structural change with identical node multiset: serialize the
	// diamond's parallel arms (B → C → D → And → E). The canonical schedule
	// differs, so the digest must too.
	g := NewGraph("digest-serial")
	a := g.AddTask("A", 8e-3, 4e-3)
	o1 := g.AddOr("O1")
	b := g.AddTask("B", 6e-3, 3e-3)
	c := g.AddTask("C", 5e-3, 2.5e-3)
	d := g.AddTask("D", 4e-3, 2e-3)
	and := g.AddAnd("J")
	e := g.AddTask("E", 3e-3, 1.5e-3)
	f := g.AddTask("F", 7e-3, 3.5e-3)
	o2 := g.AddOr("O2")
	tail := g.AddTask("G", 2e-3, 1e-3)
	g.AddEdge(a, o1)
	g.AddEdge(o1, b)
	g.AddEdge(b, c)
	g.AddEdge(c, d)
	g.AddEdge(d, and)
	g.AddEdge(and, e)
	g.AddEdge(e, o2)
	g.AddEdge(o1, f)
	g.AddEdge(f, o2)
	g.SetBranchProbs(o1, 0.4, 0.6)
	g.AddEdge(o2, tail)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	secs, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range secs.All {
		if len(s.Nodes) != 5 { // the serialized diamond section
			continue
		}
		for i, bsec := range base {
			if len(bsec.Nodes) == len(s.Nodes) && bsec.Digest() == s.Digest() {
				t.Fatalf("serialized diamond collides with base section %d", i)
			}
		}
	}
}
