package andor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// This file implements the ".andor" text format: a small line-oriented
// language for authoring AND/OR applications without writing Go, read by
// ParseText and written by FormatText. Example:
//
//	# ATR-like fragment                (comments run to end of line)
//	app demo
//
//	task Detect  8ms 5ms               # name, WCET, ACET (s/ms/us suffix)
//	task Filter  6ms 4ms @accel        # optional processor-class affinity
//	or   Branch
//	task Fast 3ms 2ms
//	task Slow 9ms 7ms
//	or   Done
//	task Report 2ms 1ms
//
//	edge Detect -> Branch
//	edge Branch -> Fast Slow           # fan-out shorthand
//	prob Branch 70% 30%                # branch probabilities, order of edges
//	edge Fast Slow -> Done             # fan-in shorthand
//	edge Done -> Report
//
//	loop Retry 4ms 2ms : 50% 20% 5% 25%   # unrolled loop; creates Retry#k
//	edge Report -> Retry#1                # loop entry is <name>#1
//	                                      # loop exit is <name>.join
//
// Directives: app, task, and, or, edge, chain (chain A B C ≡ A→B→C),
// prob, loop. Durations accept the suffixes s, ms, us/µs. Probabilities
// accept "30%" or "0.3". A '#' starts a comment only at the beginning of a
// line or after whitespace, so loop-generated names like "Retry#1" remain
// addressable.

// stripComment removes a trailing comment: a '#' at the start of the line
// or preceded by whitespace. A '#' inside a token (the unrolled-loop names
// such as "Retry#1") is part of the name.
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] == '#' && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t') {
			return line[:i]
		}
	}
	return line
}

// ParseText parses the .andor format. The returned graph is validated.
func ParseText(src string) (*Graph, error) {
	g := NewGraph("unnamed")
	p := &textParser{g: g, nodes: map[string]*Node{}}
	for i, raw := range strings.Split(src, "\n") {
		fields := strings.Fields(stripComment(raw))
		if len(fields) == 0 {
			continue
		}
		if err := p.directive(fields); err != nil {
			return nil, fmt.Errorf("andor: line %d: %w", i+1, err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

type textParser struct {
	g     *Graph
	nodes map[string]*Node
}

// validName rejects names that cannot survive a format round-trip: invalid
// UTF-8 is transcoded to U+FFFD by every encoder in the system (text, JSON,
// DOT), so such a name would silently change identity.
func validName(name string) error {
	if !utf8.ValidString(name) {
		return fmt.Errorf("name %q is not valid UTF-8", name)
	}
	return nil
}

func (p *textParser) define(name string, n *Node) error {
	if err := validName(name); err != nil {
		return err
	}
	if _, dup := p.nodes[name]; dup {
		return fmt.Errorf("node %q defined twice", name)
	}
	p.nodes[name] = n
	return nil
}

func (p *textParser) lookup(name string) (*Node, error) {
	n, ok := p.nodes[name]
	if !ok {
		return nil, fmt.Errorf("unknown node %q", name)
	}
	return n, nil
}

func (p *textParser) directive(f []string) error {
	switch f[0] {
	case "app":
		if len(f) != 2 {
			return fmt.Errorf("app wants one name")
		}
		if err := validName(f[1]); err != nil {
			return err
		}
		p.g.Name = f[1]
		return nil

	case "task":
		if len(f) != 4 && len(f) != 5 {
			return fmt.Errorf("task wants: task NAME WCET ACET [@CLASS]")
		}
		w, err := parseDuration(f[2])
		if err != nil {
			return err
		}
		a, err := parseDuration(f[3])
		if err != nil {
			return err
		}
		if w <= 0 || a <= 0 || a > w {
			return fmt.Errorf("task %q needs 0 < ACET ≤ WCET, got %v/%v", f[1], f[2], f[3])
		}
		n := p.g.AddTask(f[1], w, a)
		if len(f) == 5 {
			// Optional processor-class affinity tag for heterogeneous
			// platforms: "@accel" prefers the class named "accel".
			if len(f[4]) < 2 || f[4][0] != '@' {
				return fmt.Errorf("task %q class tag %q must be @CLASS", f[1], f[4])
			}
			class := f[4][1:]
			if err := validName(class); err != nil {
				return err
			}
			p.g.SetClass(n, class)
		}
		return p.define(f[1], n)

	case "and":
		if len(f) != 2 {
			return fmt.Errorf("and wants one name")
		}
		return p.define(f[1], p.g.AddAnd(f[1]))

	case "or":
		if len(f) != 2 {
			return fmt.Errorf("or wants one name")
		}
		return p.define(f[1], p.g.AddOr(f[1]))

	case "edge":
		// edge A [B C] -> X [Y Z]: full bipartite between sources and
		// targets.
		arrow := -1
		for i, tok := range f {
			if tok == "->" {
				arrow = i
			}
		}
		if arrow < 2 || arrow == len(f)-1 {
			return fmt.Errorf("edge wants: edge SRC... -> DST...")
		}
		for _, sn := range f[1:arrow] {
			src, err := p.lookup(sn)
			if err != nil {
				return err
			}
			for _, dn := range f[arrow+1:] {
				dst, err := p.lookup(dn)
				if err != nil {
					return err
				}
				if src == dst {
					return fmt.Errorf("self-loop on %q", sn)
				}
				for _, s := range src.Succs() {
					if s == dst {
						return fmt.Errorf("duplicate edge %q -> %q", sn, dn)
					}
				}
				p.g.AddEdge(src, dst)
			}
		}
		return nil

	case "chain":
		if len(f) < 3 {
			return fmt.Errorf("chain wants at least two nodes")
		}
		prev, err := p.lookup(f[1])
		if err != nil {
			return err
		}
		for _, name := range f[2:] {
			next, err := p.lookup(name)
			if err != nil {
				return err
			}
			p.g.AddEdge(prev, next)
			prev = next
		}
		return nil

	case "prob":
		if len(f) < 3 {
			return fmt.Errorf("prob wants: prob ORNAME p1 p2 ...")
		}
		or, err := p.lookup(f[1])
		if err != nil {
			return err
		}
		if or.Kind != Or {
			return fmt.Errorf("%q is not an OR node", f[1])
		}
		probs := make([]float64, len(f)-2)
		for i, tok := range f[2:] {
			v, err := parseProb(tok)
			if err != nil {
				return err
			}
			probs[i] = v
		}
		if len(probs) != len(or.Succs()) {
			return fmt.Errorf("%q has %d successors but %d probabilities (declare edges first)",
				f[1], len(or.Succs()), len(probs))
		}
		p.g.SetBranchProbs(or, probs...)
		return nil

	case "loop":
		// loop NAME WCET ACET : p1 p2 ... pN  (N = max iterations)
		colon := -1
		for i, tok := range f {
			if tok == ":" {
				colon = i
			}
		}
		if colon != 4 || colon == len(f)-1 {
			return fmt.Errorf("loop wants: loop NAME WCET ACET : p1 p2 ...")
		}
		if err := validName(f[1]); err != nil {
			return err
		}
		w, err := parseDuration(f[2])
		if err != nil {
			return err
		}
		a, err := parseDuration(f[3])
		if err != nil {
			return err
		}
		probs := make([]float64, len(f)-colon-1)
		var sum float64
		for i, tok := range f[colon+1:] {
			v, err := parseProb(tok)
			if err != nil {
				return err
			}
			probs[i] = v
			sum += v
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			return fmt.Errorf("loop %q iteration probabilities sum to %g, want 1", f[1], sum)
		}
		if w <= 0 || a <= 0 || a > w {
			return fmt.Errorf("loop %q needs 0 < ACET ≤ WCET", f[1])
		}
		entry, exit := ExpandLoop(p.g, f[1], w, a, probs)
		// Register the generated names so edges can target them.
		for _, n := range p.g.Nodes() {
			if strings.HasPrefix(n.Name, f[1]+"#") || strings.HasPrefix(n.Name, f[1]+".") {
				if _, taken := p.nodes[n.Name]; !taken {
					p.nodes[n.Name] = n
				}
			}
		}
		_ = entry
		_ = exit
		return nil
	}
	return fmt.Errorf("unknown directive %q", f[0])
}

// parseDuration parses "8ms", "600us", "0.5s" into seconds.
func parseDuration(tok string) (float64, error) {
	unit := 1.0
	num := tok
	switch {
	case strings.HasSuffix(tok, "ms"):
		unit, num = 1e-3, tok[:len(tok)-2]
	case strings.HasSuffix(tok, "us"):
		unit, num = 1e-6, tok[:len(tok)-2]
	case strings.HasSuffix(tok, "µs"):
		unit, num = 1e-6, strings.TrimSuffix(tok, "µs")
	case strings.HasSuffix(tok, "s"):
		unit, num = 1, tok[:len(tok)-1]
	default:
		return 0, fmt.Errorf("duration %q needs a unit (s, ms, us)", tok)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", tok)
	}
	return v * unit, nil
}

// parseProb parses "30%" or "0.3".
func parseProb(tok string) (float64, error) {
	scale := 1.0
	num := tok
	if strings.HasSuffix(tok, "%") {
		scale, num = 0.01, tok[:len(tok)-1]
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad probability %q", tok)
	}
	v *= scale
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %q outside [0,1]", tok)
	}
	return v, nil
}

// FormatText renders a graph in the .andor format, parseable by ParseText.
// Loops that were expanded programmatically are emitted as their unrolled
// nodes (the loop shorthand is input sugar only).
func FormatText(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "app %s\n\n", sanitizeName(g.Name))
	for _, n := range g.Nodes() {
		switch n.Kind {
		case Compute:
			// The class tag is emitted only when present, so class-free
			// graphs render byte-identically to before the tag existed
			// (their content-addressed digests are stable).
			if n.Class != "" {
				fmt.Fprintf(&b, "task %s %s %s @%s\n", sanitizeName(n.Name),
					formatDuration(n.WCET), formatDuration(n.ACET), sanitizeName(n.Class))
				continue
			}
			fmt.Fprintf(&b, "task %s %s %s\n", sanitizeName(n.Name), formatDuration(n.WCET), formatDuration(n.ACET))
		case And:
			fmt.Fprintf(&b, "and %s\n", sanitizeName(n.Name))
		case Or:
			fmt.Fprintf(&b, "or %s\n", sanitizeName(n.Name))
		}
	}
	b.WriteByte('\n')
	for _, n := range g.Nodes() {
		if len(n.Succs()) == 0 {
			continue
		}
		names := make([]string, len(n.Succs()))
		for i, s := range n.Succs() {
			names[i] = sanitizeName(s.Name)
		}
		fmt.Fprintf(&b, "edge %s -> %s\n", sanitizeName(n.Name), strings.Join(names, " "))
	}
	var ors []*Node
	for _, n := range g.Nodes() {
		if n.Kind == Or && len(n.Succs()) > 1 {
			ors = append(ors, n)
		}
	}
	sort.Slice(ors, func(i, j int) bool { return ors[i].ID < ors[j].ID })
	if len(ors) > 0 {
		b.WriteByte('\n')
	}
	for _, or := range ors {
		fmt.Fprintf(&b, "prob %s", sanitizeName(or.Name))
		for i := range or.Succs() {
			fmt.Fprintf(&b, " %g", or.BranchProb(i))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatDuration(sec float64) string {
	switch {
	case sec >= 1:
		return strconv.FormatFloat(sec, 'g', -1, 64) + "s"
	case sec >= 1e-3:
		return strconv.FormatFloat(sec*1e3, 'g', -1, 64) + "ms"
	default:
		return strconv.FormatFloat(sec*1e6, 'g', -1, 64) + "us"
	}
}

// sanitizeName replaces whitespace (which the line format cannot quote)
// with underscores. '#' is fine mid-token (comments require a preceding
// space).
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' {
			return '_'
		}
		return r
	}, name)
}
