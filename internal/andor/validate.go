package andor

import (
	"fmt"
	"math"
)

// Validate checks that the graph is a well-formed AND/OR application:
//
//   - non-empty and acyclic;
//   - computation nodes have 0 < ACET <= WCET;
//   - And nodes have at least one predecessor and one successor (a dummy
//     node with neither would be an isolated vertex);
//   - Or nodes with more than one successor carry branch probabilities that
//     are non-negative and sum to 1 (within 1e-9);
//   - the graph decomposes into program sections (see Decompose for the
//     structural rules that encode the paper's "all processors synchronize
//     at an OR node" restriction).
//
// It returns the first violation found, or nil.
//
// A successful validation is memoized: re-validating an unmodified graph
// (every NewPlan call validates) is free. Any mutating Graph method
// discards the memo.
func (g *Graph) Validate() error {
	if g.validated.Load() {
		return nil
	}
	if g.Len() == 0 {
		return fmt.Errorf("andor: graph %q is empty", g.Name)
	}
	if _, ok := g.TopoOrder(); !ok {
		return fmt.Errorf("andor: graph %q contains a cycle", g.Name)
	}
	for _, n := range g.nodes {
		switch n.Kind {
		case Compute:
			if n.WCET <= 0 {
				return fmt.Errorf("andor: task %q has non-positive WCET %g", n.Name, n.WCET)
			}
			if n.ACET <= 0 || n.ACET > n.WCET {
				return fmt.Errorf("andor: task %q has ACET %g outside (0, WCET=%g]", n.Name, n.ACET, n.WCET)
			}
		case And:
			if len(n.pred) == 0 || len(n.succ) == 0 {
				return fmt.Errorf("andor: AND node %q must have predecessors and successors (has %d/%d)",
					n.Name, len(n.pred), len(n.succ))
			}
		case Or:
			if len(n.pred) == 0 {
				return fmt.Errorf("andor: OR node %q has no predecessors", n.Name)
			}
			if len(n.succ) > 1 {
				if n.prob == nil {
					return fmt.Errorf("andor: OR node %q has %d successors but no branch probabilities",
						n.Name, len(n.succ))
				}
				var sum float64
				for i, p := range n.prob {
					if p < 0 {
						return fmt.Errorf("andor: OR node %q branch %d has negative probability %g", n.Name, i, p)
					}
					sum += p
				}
				if math.Abs(sum-1) > 1e-9 {
					return fmt.Errorf("andor: OR node %q branch probabilities sum to %g, want 1", n.Name, sum)
				}
			}
		default:
			return fmt.Errorf("andor: node %q has unknown kind %d", n.Name, n.Kind)
		}
	}
	if _, err := Decompose(g); err != nil {
		return err
	}
	g.validated.Store(true)
	return nil
}
