package andor

import "fmt"

// Rand is the source of randomness the graph generator draws from. It is
// satisfied by exectime.Source (and by math/rand.Rand), keeping this
// package free of a concrete RNG dependency.
type Rand interface {
	// Float64 returns a uniform value in [0, 1).
	Float64() float64
	// Intn returns a uniform value in [0, n). It panics if n <= 0.
	Intn(n int) int
}

// RandomOpts parameterizes RandomGraph. The zero value is not useful; start
// from DefaultRandomOpts.
type RandomOpts struct {
	// MaxDepth bounds the nesting depth of Or forks.
	MaxDepth int
	// ForkProb is the probability that a stage is an Or fork rather than a
	// plain section.
	ForkProb float64
	// MaxBranches is the maximum number of successors of a fork Or node
	// (at least 2).
	MaxBranches int
	// MaxStages is the maximum number of stages (section or fork) composed
	// in sequence at each level.
	MaxStages int
	// MaxLayers and MaxWidth bound a section's internal AND-parallel
	// structure: up to MaxLayers layers with up to MaxWidth tasks each.
	MaxLayers, MaxWidth int
	// WCETMin and WCETMax bound task worst-case execution times (seconds).
	WCETMin, WCETMax float64
	// Alpha is the ACET/WCET ratio of generated tasks.
	Alpha float64
}

// DefaultRandomOpts returns generation parameters that produce applications
// of roughly the paper's scale: a handful of sections with 2–3-way Or
// branching and sections of up to a dozen tasks with millisecond-range
// execution times.
func DefaultRandomOpts() RandomOpts {
	return RandomOpts{
		MaxDepth:    2,
		ForkProb:    0.5,
		MaxBranches: 3,
		MaxStages:   3,
		MaxLayers:   3,
		MaxWidth:    4,
		WCETMin:     1e-3,
		WCETMax:     10e-3,
		Alpha:       0.6,
	}
}

// RandomGraph generates a random valid AND/OR application: a sequence of
// stages, each either a plain AND section or an Or fork whose branches are
// themselves (recursively) stage sequences joined by an Or node. The result
// always passes Validate; generation is deterministic given the Rand state.
func RandomGraph(r Rand, opts RandomOpts) *Graph {
	g := NewGraph("random")
	gen := &randomGen{g: g, r: r, o: opts}

	// First stage is always a plain section so the roots are tasks.
	sinks := gen.section(nil, true)
	n := 1 + r.Intn(opts.MaxStages)
	for i := 1; i < n; i++ {
		sinks = gen.stage(sinks, 0)
	}
	return g
}

type randomGen struct {
	g    *Graph
	r    Rand
	o    RandomOpts
	seq  int
	orID int
}

func (gen *randomGen) task() *Node {
	gen.seq++
	w := gen.o.WCETMin + gen.r.Float64()*(gen.o.WCETMax-gen.o.WCETMin)
	return gen.g.AddTask(fmt.Sprintf("t%d", gen.seq), w, gen.o.Alpha*w)
}

// section builds a plain AND section. If entry is non-nil, the section hangs
// off that Or node through a single entry task; if multiRoot is set (first
// section only) it may have several root tasks. It returns the section's
// sink nodes.
func (gen *randomGen) section(entry *Node, multiRoot bool) []*Node {
	var created, prev []*Node
	layers := 1 + gen.r.Intn(gen.o.MaxLayers)
	for l := 0; l < layers; l++ {
		width := 1 + gen.r.Intn(gen.o.MaxWidth)
		if l == 0 && !multiRoot {
			width = 1 // branch sections have a single entry node
		}
		cur := make([]*Node, width)
		for i := range cur {
			cur[i] = gen.task()
			created = append(created, cur[i])
			if l == 0 {
				if entry != nil {
					gen.g.AddEdge(entry, cur[i])
				}
				continue
			}
			// Every task depends on at least one task of the previous
			// layer; extra dependences are added at random.
			p := prev[gen.r.Intn(len(prev))]
			gen.g.AddEdge(p, cur[i])
			for _, q := range prev {
				if q != p && gen.r.Float64() < 0.3 {
					gen.g.AddEdge(q, cur[i])
				}
			}
		}
		prev = cur
	}
	// The section's sinks are its tasks without successors; layered
	// construction can leave earlier-layer tasks childless, which is fine —
	// they are sinks too.
	var sinks []*Node
	for _, n := range created {
		if len(n.succ) == 0 {
			sinks = append(sinks, n)
		}
	}
	return sinks
}

// stage appends one stage after the given sink set: with probability
// ForkProb an Or fork with 2..MaxBranches branches re-joined by an Or node,
// otherwise an Or barrier followed by a plain section. It returns the new
// sink set.
func (gen *randomGen) stage(sinks []*Node, depth int) []*Node {
	gen.orID++
	or := gen.g.AddOr(fmt.Sprintf("O%d", gen.orID))
	for _, s := range sinks {
		gen.g.AddEdge(s, or)
	}
	if depth < gen.o.MaxDepth && gen.r.Float64() < gen.o.ForkProb {
		branches := 2 + gen.r.Intn(gen.o.MaxBranches-1)
		gen.orID++
		join := gen.g.AddOr(fmt.Sprintf("O%d", gen.orID))
		probs := make([]float64, branches)
		var sum float64
		for i := range probs {
			probs[i] = 0.1 + gen.r.Float64()
			sum += probs[i]
		}
		for i := range probs {
			probs[i] /= sum
		}
		for i := 0; i < branches; i++ {
			for _, s := range gen.branchBody(or, depth+1) {
				gen.g.AddEdge(s, join)
			}
		}
		gen.g.SetBranchProbs(or, probs...)
		// Optionally continue with a section after the join.
		if gen.r.Float64() < 0.5 {
			return gen.section(join, false)
		}
		return []*Node{join}
	}
	return gen.section(or, false)
}

// branchBody builds one branch of a fork: a section, optionally followed by
// nested stages. It returns the branch's sink nodes (to wire into the join).
func (gen *randomGen) branchBody(fork *Node, depth int) []*Node {
	sinks := gen.section(fork, false)
	if depth < gen.o.MaxDepth {
		n := gen.r.Intn(2)
		for i := 0; i < n; i++ {
			sinks = gen.stage(sinks, depth)
		}
	}
	return sinks
}
