package andor

import (
	"math"
	"strings"
	"testing"
)

func TestPathsSingle(t *testing.T) {
	g, _, _, _, _, _ := diamond(t)
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := s.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	p := paths[0]
	if p.Prob != 1 || len(p.Choices) != 0 || len(p.Sections) != 1 {
		t.Errorf("unexpected path %+v", p)
	}
	if !close(p.WCETSum(), 19e-3) || !close(p.ACETSum(), 11e-3) {
		t.Errorf("path sums wrong: %g/%g", p.WCETSum(), p.ACETSum())
	}
	if s.NumPaths() != 1 {
		t.Errorf("NumPaths = %d", s.NumPaths())
	}
}

func TestPathsOrFork(t *testing.T) {
	g := orFork(t)
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := s.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	var sum float64
	for _, p := range paths {
		sum += p.Prob
		if len(p.Sections) != 3 { // {A}, branch, {D}
			t.Errorf("path sections = %d, want 3", len(p.Sections))
		}
		if len(p.Choices) != 2 { // O1 fork + O2 join
			t.Errorf("path choices = %d, want 2", len(p.Choices))
		}
	}
	if !close(sum, 1) {
		t.Errorf("path probabilities sum to %g", sum)
	}
	if s.NumPaths() != 2 {
		t.Errorf("NumPaths = %d", s.NumPaths())
	}
	if str := paths[0].String(); !strings.Contains(str, "O1/0") || !strings.Contains(str, "p=0.3") {
		t.Errorf("path String = %q", str)
	}
	// WCET of branch-0 path: A(8) + B(8) + D(2).
	if !close(paths[0].WCETSum(), 18e-3) {
		t.Errorf("branch-0 WCETSum = %g", paths[0].WCETSum())
	}
	if !close(paths[1].WCETSum(), 15e-3) {
		t.Errorf("branch-1 WCETSum = %g", paths[1].WCETSum())
	}
}

func TestPathsLimit(t *testing.T) {
	g := orFork(t)
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Paths(1); err == nil {
		t.Error("want ErrTooManyPaths")
	}
	if paths, err := s.Paths(2); err != nil || len(paths) != 2 {
		t.Errorf("Paths(2) = %d paths, err %v", len(paths), err)
	}
}

func TestNumPathsExponentialGraphIsLinearTime(t *testing.T) {
	// A chain of k independent binary OR diamonds has 2^k paths; NumPaths
	// must still answer via memoization.
	g := NewGraph("expo")
	prev := g.AddTask("t0", 1e-3, 1e-3)
	const k = 20
	for i := 0; i < k; i++ {
		or := g.AddOr("O" + string(rune('a'+i)))
		g.AddEdge(prev, or)
		l := g.AddTask("l"+string(rune('a'+i)), 1e-3, 1e-3)
		r := g.AddTask("r"+string(rune('a'+i)), 1e-3, 1e-3)
		g.AddEdge(or, l)
		g.AddEdge(or, r)
		g.SetBranchProbs(or, 0.5, 0.5)
		join := g.AddOr("J" + string(rune('a'+i)))
		g.AddEdge(l, join)
		g.AddEdge(r, join)
		next := g.AddTask("t"+string(rune('1'+i)), 1e-3, 1e-3)
		g.AddEdge(join, next)
		prev = next
	}
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.NumPaths(), 1<<k; got != want {
		t.Errorf("NumPaths = %d, want %d", got, want)
	}
	if _, err := s.Paths(100); err == nil {
		t.Error("Paths should hit the limit")
	}
}

func TestCriticalPathWCET(t *testing.T) {
	g, _, _, _, _, _ := diamond(t)
	// A(8) + B(5) + D(2) = 15ms (And node weightless).
	if got := g.CriticalPathWCET(); !close(got, 15e-3) {
		t.Errorf("CriticalPathWCET = %g, want 15ms", got)
	}
}

func TestTopoOrder(t *testing.T) {
	g, _, _, _, _, _ := diamond(t)
	order, ok := g.TopoOrder()
	if !ok || len(order) != g.Len() {
		t.Fatalf("TopoOrder failed: ok=%v len=%d", ok, len(order))
	}
	pos := map[*Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, n := range g.Nodes() {
		for _, s := range n.Succs() {
			if pos[s] <= pos[n] {
				t.Errorf("topo order violates %q -> %q", n.Name, s.Name)
			}
		}
	}
	// Cyclic graph: not ok.
	bad := NewGraph("cyc")
	a := bad.AddTask("a", 1, 1)
	b := bad.AddTask("b", 1, 1)
	a.succ = append(a.succ, b)
	b.pred = append(b.pred, a)
	b.succ = append(b.succ, a)
	a.pred = append(a.pred, b)
	if _, ok := bad.TopoOrder(); ok {
		t.Error("cycle not detected")
	}
	if bad.CriticalPathWCET() != 0 {
		t.Error("CriticalPathWCET on cycle should be 0")
	}
}

func TestPathProbabilitiesSumToOneOnLoops(t *testing.T) {
	g := NewGraph("loop")
	entry, exit := ExpandLoop(g, "L", 2e-3, 1e-3, []float64{0.5, 0.25, 0.25})
	end := g.AddTask("end", 1e-3, 1e-3)
	g.AddEdge(exit, end)
	_ = entry
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := s.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("loop paths = %d, want 3", len(paths))
	}
	var sum float64
	wantProbs := map[int]float64{1: 0.5, 2: 0.25, 3: 0.25}
	for _, p := range paths {
		sum += p.Prob
		// Count loop bodies on the path via WCET: k iterations cost
		// k·2ms + 1ms.
		k := int(math.Round((p.WCETSum() - 1e-3) / 2e-3))
		if !close(p.Prob, wantProbs[k]) {
			t.Errorf("path with %d iterations has prob %g, want %g", k, p.Prob, wantProbs[k])
		}
	}
	if !close(sum, 1) {
		t.Errorf("loop path probabilities sum to %g", sum)
	}
}
