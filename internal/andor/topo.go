package andor

// TopoOrder returns the graph's nodes in a topological order (every node
// after all of its predecessors). The order is deterministic: among nodes
// whose predecessors are all placed, the one with the smallest ID goes
// first. It returns false if the graph contains a cycle.
func (g *Graph) TopoOrder() ([]*Node, bool) {
	n := len(g.nodes)
	indeg := make([]int, n)
	for _, v := range g.nodes {
		indeg[v.ID] = len(v.pred)
	}
	// A simple ordered frontier. Graph sizes here are small (at most a few
	// thousand nodes), so an O(V²) scan would also do; we keep a sorted
	// insertion for determinism with O(V·width) behaviour.
	var frontier []*Node
	push := func(v *Node) {
		i := len(frontier)
		frontier = append(frontier, nil)
		for i > 0 && frontier[i-1].ID > v.ID {
			frontier[i] = frontier[i-1]
			i--
		}
		frontier[i] = v
	}
	for _, v := range g.nodes {
		if indeg[v.ID] == 0 {
			push(v)
		}
	}
	order := make([]*Node, 0, n)
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, v)
		for _, s := range v.succ {
			indeg[s.ID]--
			if indeg[s.ID] == 0 {
				push(s)
			}
		}
	}
	return order, len(order) == n
}

// reachableForward returns the set of nodes reachable from the given seeds
// (inclusive), optionally stopping traversal at Or nodes (the Or node itself
// is included but its successors are not followed).
func reachableForward(seeds []*Node, stopAtOr bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	stack := append([]*Node(nil), seeds...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		if stopAtOr && v.Kind == Or {
			continue
		}
		stack = append(stack, v.succ...)
	}
	return seen
}

// CriticalPathWCET returns the length in seconds of the longest
// WCET-weighted path through the graph, treating Or branches like And
// branches (i.e. the structural worst case with every branch present). It is
// a quick lower bound on the canonical schedule length of the longest
// execution path; the scheduler's section analysis computes the exact value.
// It returns 0 for cyclic graphs.
func (g *Graph) CriticalPathWCET() float64 {
	order, ok := g.TopoOrder()
	if !ok {
		return 0
	}
	finish := make([]float64, len(g.nodes))
	var longest float64
	for _, v := range order {
		var start float64
		for _, p := range v.pred {
			if finish[p.ID] > start {
				start = finish[p.ID]
			}
		}
		finish[v.ID] = start + v.WCET
		if finish[v.ID] > longest {
			longest = finish[v.ID]
		}
	}
	return longest
}
