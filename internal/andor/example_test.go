package andor_test

import (
	"fmt"

	"andorsched/internal/andor"
)

// Example builds the paper's Figure 1b OR structure — a branch where only
// one of two tasks executes — and inspects its program sections and
// execution paths.
func Example() {
	g := andor.NewGraph("figure1b")
	a := g.AddTask("A", 8e-3, 5e-3)
	o3 := g.AddOr("O3")
	f := g.AddTask("F", 8e-3, 6e-3)
	gg := g.AddTask("G", 5e-3, 3e-3)
	o4 := g.AddOr("O4")
	done := g.AddTask("Done", 2e-3, 1e-3)
	g.AddEdge(a, o3)
	g.AddEdge(o3, f)
	g.AddEdge(o3, gg)
	g.SetBranchProbs(o3, 0.30, 0.70)
	g.AddEdge(f, o4)
	g.AddEdge(gg, o4)
	g.AddEdge(o4, done)
	if err := g.Validate(); err != nil {
		fmt.Println("invalid:", err)
		return
	}

	s, _ := andor.Decompose(g)
	fmt.Printf("sections: %d, paths: %d\n", len(s.All), s.NumPaths())
	paths, _ := s.Paths(0)
	for _, p := range paths {
		fmt.Printf("p=%.2f worst=%.0fms\n", p.Prob, p.WCETSum()*1e3)
	}
	// Output:
	// sections: 4, paths: 2
	// p=0.30 worst=18ms
	// p=0.70 worst=15ms
}

// ExampleExpandLoop unrolls a loop that runs 1–3 times into its OR-graph
// equivalent (§2.1 of the paper).
func ExampleExpandLoop() {
	g := andor.NewGraph("loop")
	entry, exit := andor.ExpandLoop(g, "Retry", 4e-3, 2e-3, []float64{0.5, 0.3, 0.2})
	fmt.Println("entry:", entry.Name, "exit:", exit.Name)
	s, _ := andor.Decompose(g)
	fmt.Println("paths:", s.NumPaths())
	// The continue probability after the first iteration is
	// P(more than 1 iteration) = 0.5.
	o1 := g.NodeByName("Retry.it1")
	fmt.Printf("P(stop after 1) = %.2f\n", o1.BranchProb(0))
	// Output:
	// entry: Retry#1 exit: Retry.join
	// paths: 3
	// P(stop after 1) = 0.50
}

// ExampleParseText reads an application from the .andor text format.
func ExampleParseText() {
	g, err := andor.ParseText(`
app demo
task Produce 4ms 2ms
task Consume 2ms 1ms
edge Produce -> Consume
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d nodes, total WCET %.0fms\n", g.Name, g.Len(), g.TotalWCET()*1e3)
	// Output:
	// demo: 2 nodes, total WCET 6ms
}
