package andor

import (
	"testing"
	"testing/quick"
)

// fakeRand is a deterministic Rand for generator tests.
type fakeRand struct{ state uint64 }

func (f *fakeRand) next() uint64 {
	f.state += 0x9e3779b97f4a7c15
	z := f.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
func (f *fakeRand) Float64() float64 { return float64(f.next()>>11) / (1 << 53) }
func (f *fakeRand) Intn(n int) int   { return int(f.next() % uint64(n)) }

// TestRandomGraphAlwaysValid is the central generator property: every
// generated graph passes Validate (and therefore decomposes into sections)
// for any seed.
func TestRandomGraphAlwaysValid(t *testing.T) {
	prop := func(seed uint64) bool {
		g := RandomGraph(&fakeRand{state: seed}, DefaultRandomOpts())
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := RandomGraph(&fakeRand{state: 7}, DefaultRandomOpts())
	b := RandomGraph(&fakeRand{state: 7}, DefaultRandomOpts())
	if a.Len() != b.Len() {
		t.Fatalf("same seed produced different sizes: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Nodes() {
		na, nb := a.Node(i), b.Node(i)
		if na.Name != nb.Name || na.Kind != nb.Kind || na.WCET != nb.WCET {
			t.Fatalf("node %d differs between same-seed graphs", i)
		}
	}
}

func TestRandomGraphPathProbabilitiesSumToOne(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		g := RandomGraph(&fakeRand{state: seed}, DefaultRandomOpts())
		s, err := Decompose(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		paths, err := s.Paths(10000)
		if err != nil {
			continue // combinatorial blowup is fine; NumPaths covers it
		}
		var sum float64
		for _, p := range paths {
			sum += p.Prob
		}
		if !close(sum, 1) {
			t.Errorf("seed %d: path probabilities sum to %g", seed, sum)
		}
	}
}

func TestRandomGraphRespectsTimeBounds(t *testing.T) {
	opts := DefaultRandomOpts()
	opts.WCETMin, opts.WCETMax = 2e-3, 3e-3
	opts.Alpha = 0.5
	g := RandomGraph(&fakeRand{state: 3}, opts)
	for _, n := range g.ComputeNodes() {
		if n.WCET < opts.WCETMin || n.WCET > opts.WCETMax {
			t.Errorf("task %q WCET %g outside [%g,%g]", n.Name, n.WCET, opts.WCETMin, opts.WCETMax)
		}
		if !close(n.ACET, 0.5*n.WCET) {
			t.Errorf("task %q ACET %g not α·WCET", n.Name, n.ACET)
		}
	}
}
