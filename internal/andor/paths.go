package andor

import (
	"fmt"
	"strings"
)

// Choice records one branch decision: Or node `Or` selected its Branch-th
// successor.
type Choice struct {
	Or     *Node
	Branch int
}

// Path is one complete execution path of an AND/OR application: the ordered
// list of sections executed, the branch choices that produced it, and the
// path's a-priori probability (the product of its branch probabilities).
type Path struct {
	Sections []*Section
	Choices  []Choice
	Prob     float64
}

// WCETSum returns the total worst-case work along the path.
func (p *Path) WCETSum() float64 {
	var sum float64
	for _, s := range p.Sections {
		sum += s.WCETSum()
	}
	return sum
}

// ACETSum returns the total average-case work along the path.
func (p *Path) ACETSum() float64 {
	var sum float64
	for _, s := range p.Sections {
		sum += s.ACETSum()
	}
	return sum
}

// String renders the path as "S0 -O1/2-> S3 -O4/1-> S5 (p=0.21)".
func (p *Path) String() string {
	var b strings.Builder
	for i, s := range p.Sections {
		if i > 0 {
			c := p.Choices[i-1]
			fmt.Fprintf(&b, " -%s/%d-> ", c.Or.Name, c.Branch)
		}
		fmt.Fprintf(&b, "S%d", s.ID)
	}
	fmt.Fprintf(&b, " (p=%.4g)", p.Prob)
	return b.String()
}

// ErrTooManyPaths is returned by Paths when the number of execution paths
// exceeds the given limit.
var ErrTooManyPaths = fmt.Errorf("andor: execution path count exceeds limit")

// Paths enumerates every execution path of the decomposition, depth-first
// in branch order, up to limit paths (limit <= 0 means no limit). The path
// probabilities of a valid graph sum to 1.
func (s *Sections) Paths(limit int) ([]*Path, error) {
	var out []*Path
	var walk func(sec *Section, secs []*Section, choices []Choice, prob float64) error
	walk = func(sec *Section, secs []*Section, choices []Choice, prob float64) error {
		secs = append(secs, sec)
		if sec.Exit == nil || len(sec.Exit.succ) == 0 {
			if limit > 0 && len(out) >= limit {
				return ErrTooManyPaths
			}
			out = append(out, &Path{
				Sections: append([]*Section(nil), secs...),
				Choices:  append([]Choice(nil), choices...),
				Prob:     prob,
			})
			return nil
		}
		or := sec.Exit
		for i, next := range s.Branch[or.ID] {
			if err := walk(next, secs, append(choices, Choice{or, i}), prob*or.BranchProb(i)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(s.First, nil, nil, 1); err != nil {
		return nil, err
	}
	return out, nil
}

// NumPaths returns the number of execution paths without materializing
// them. Shared join sections are memoized, so this is linear in the number
// of sections even when the path count is exponential.
func (s *Sections) NumPaths() int {
	memo := make(map[*Section]int)
	var count func(sec *Section) int
	count = func(sec *Section) int {
		if c, ok := memo[sec]; ok {
			return c
		}
		if sec.Exit == nil || len(sec.Exit.succ) == 0 {
			memo[sec] = 1
			return 1
		}
		total := 0
		for _, next := range s.Branch[sec.Exit.ID] {
			total += count(next)
		}
		memo[sec] = total
		return total
	}
	return count(s.First)
}
