package andor

import (
	"fmt"
	"math"
)

// ExpandLoopFunc unrolls a loop with a bounded iteration count into the
// equivalent Or structure described in §2.1 of the paper. iterProbs[k] is
// the probability that the loop executes exactly k+1 iterations; the
// probabilities must sum to 1 and the last must be reachable (the loop runs
// at least once and at most len(iterProbs) times).
//
// body is called once per unrolled iteration (1-based) and must create the
// iteration's subgraph inside g, returning its entry node (which must have
// no predecessors yet and must remain the only entry) and its exit node.
//
// The generated structure is:
//
//	body(1) → O₁ ─exit──────────────┐
//	           └cont→ body(2) → O₂ ─┤→ Join (Or)
//	                     ⋮           │
//	                  body(N) ──────┘
//
// where Oₖ continues with conditional probability P(N>k)/P(N≥k). The
// returned entry is body(1)'s entry (connect the loop's predecessors to it,
// or leave it as an application root) and the returned exit is the Join Or
// node (connect it to the loop's successor, or leave it as a sink).
func ExpandLoopFunc(g *Graph, name string, iterProbs []float64,
	body func(iter int) (entry, exit *Node)) (entry, exit *Node) {
	n := len(iterProbs)
	if n == 0 {
		panic(fmt.Sprintf("andor: ExpandLoopFunc(%q): empty iteration distribution", name))
	}
	var sum float64
	for k, p := range iterProbs {
		if p < 0 {
			panic(fmt.Sprintf("andor: ExpandLoopFunc(%q): negative probability for %d iterations", name, k+1))
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("andor: ExpandLoopFunc(%q): iteration probabilities sum to %g, want 1", name, sum))
	}

	join := g.AddOr(name + ".join")
	// tail[k] = P(N >= k+1 iterations).
	tail := sum
	var first *Node
	var prevOr *Node // the "continue" Or of the previous iteration
	for k := 0; k < n; k++ {
		e, x := body(k + 1)
		if len(e.Preds()) != 0 {
			panic(fmt.Sprintf("andor: ExpandLoopFunc(%q): body %d entry %q already has predecessors", name, k+1, e.Name))
		}
		if first == nil {
			first = e
		}
		if prevOr != nil {
			g.AddEdge(prevOr, e)
		}
		if k == n-1 {
			// Last iteration: no decision left, go straight to the join.
			g.AddEdge(x, join)
			break
		}
		or := g.AddOr(fmt.Sprintf("%s.it%d", name, k+1))
		g.AddEdge(x, or)
		// Successor order: exit first (edge to join), continue second
		// (edge added at the top of the next loop turn).
		g.AddEdge(or, join)
		pStop := iterProbs[k] / tail
		tail -= iterProbs[k]
		prevOr = or
		// prob for [exit, continue]; continue edge appended next turn, so
		// record now and rely on SetBranchProbs length check afterwards.
		or.prob = []float64{pStop, 1 - pStop}
	}
	return first, join
}

// ExpandLoop is the single-task convenience form of ExpandLoopFunc: the
// loop body is one computation task with the given per-iteration WCET and
// ACET. Iteration k's task is named "<name>#k".
func ExpandLoop(g *Graph, name string, wcet, acet float64, iterProbs []float64) (entry, exit *Node) {
	return ExpandLoopFunc(g, name, iterProbs, func(iter int) (*Node, *Node) {
		t := g.AddTask(fmt.Sprintf("%s#%d", name, iter), wcet, acet)
		return t, t
	})
}
