package andor

import (
	"testing"
)

const demoSrc = `
# ATR-like fragment
app demo

task Detect  8ms 5ms
or   Branch
task Fast 3ms 2ms
task Slow 9ms 7ms
or   Done
task Report 2ms 1ms

edge Detect -> Branch
edge Branch -> Fast Slow       # fan-out shorthand
prob Branch 70% 30%
edge Fast Slow -> Done         # fan-in shorthand
edge Done -> Report
`

func TestParseText(t *testing.T) {
	g, err := ParseText(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "demo" {
		t.Errorf("name = %q", g.Name)
	}
	if g.Len() != 6 {
		t.Fatalf("nodes = %d, want 6", g.Len())
	}
	d := g.NodeByName("Detect")
	if d.WCET != 8e-3 || d.ACET != 5e-3 {
		t.Errorf("Detect times = %g/%g", d.WCET, d.ACET)
	}
	br := g.NodeByName("Branch")
	if br.Kind != Or || len(br.Succs()) != 2 {
		t.Fatalf("Branch wrong: %v", br)
	}
	if !close(br.BranchProb(0), 0.7) || !close(br.BranchProb(1), 0.3) {
		t.Error("probabilities wrong")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestParseTextChainAndLoop(t *testing.T) {
	src := `
app loopy
task A 1ms 1ms
task B 2ms 1ms
task C 1ms 0.5ms
chain A B C
or End
edge C -> End
loop Retry 4ms 2ms : 50% 20% 5% 25%   # entry Retry#1, exit Retry.join
edge End -> Retry#1
task Final 1ms 1ms
edge Retry.join -> Final
`
	g, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeByName("Retry#1") == nil || g.NodeByName("Retry#4") == nil {
		t.Fatal("loop bodies missing")
	}
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPaths() != 4 {
		t.Errorf("paths = %d, want 4", s.NumPaths())
	}
	// The chain directive wired A→B→C.
	if g.NodeByName("B").Preds()[0] != g.NodeByName("A") {
		t.Error("chain wiring wrong")
	}
	// An unconnected loop is simply another root: still a valid graph.
	if _, err := ParseText("task A 1ms 1ms\nloop L 1ms 1ms : 1.0\n"); err != nil {
		t.Errorf("parallel loop root should be valid: %v", err)
	}
}

func TestParseTextLoopWiring(t *testing.T) {
	// Wire the loop via the chain directive using generated names fetched
	// after parsing a standalone loop app.
	src := `
app justloop
loop Retry 4ms 2ms : 0.5 0.2 0.05 0.25
`
	g, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeByName("Retry#1") == nil || g.NodeByName("Retry.join") == nil {
		t.Fatal("loop nodes missing")
	}
	s, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPaths() != 4 {
		t.Errorf("loop paths = %d, want 4", s.NumPaths())
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frobnicate A",
		"task arity":        "task A 1ms",
		"bad duration":      "task A 1 2",
		"bad acet":          "task A 1ms 2ms",
		"dup node":          "task A 1ms 1ms\ntask A 1ms 1ms",
		"and arity":         "and",
		"edge no arrow":     "task A 1ms 1ms\ntask B 1ms 1ms\nedge A B",
		"edge unknown":      "task A 1ms 1ms\nedge A -> Z",
		"edge self":         "task A 1ms 1ms\nedge A -> A",
		"edge dup":          "task A 1ms 1ms\ntask B 1ms 1ms\nedge A -> B\nedge A -> B",
		"chain short":       "task A 1ms 1ms\nchain A",
		"prob non-or":       "task A 1ms 1ms\nprob A 1",
		"prob unknown":      "prob Z 1",
		"prob count":        "task A 1ms 1ms\nor O\ntask B 1ms 1ms\nedge A -> O\nedge O -> B\nprob O 0.5 0.5",
		"bad prob":          "task A 1ms 1ms\nor O\nedge A -> O\nprob O 150%",
		"loop sum":          "loop L 1ms 1ms : 0.5 0.2",
		"loop colon":        "loop L 1ms 1ms 0.5 0.5",
		"bad percent":       "task A 1ms 1ms\nor O\nedge A -> O\nprob O x%",
	}
	for name, src := range cases {
		if _, err := ParseText(src); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		}
	}
}

func TestFormatTextRoundTrip(t *testing.T) {
	orig := orFork(t)
	text := FormatText(orig)
	back, err := ParseText(text)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, text)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round-trip changed size: %d vs %d", back.Len(), orig.Len())
	}
	for _, n := range orig.Nodes() {
		bn := back.NodeByName(n.Name)
		if bn == nil || bn.Kind != n.Kind || bn.WCET != n.WCET || bn.ACET != n.ACET {
			t.Errorf("node %q lost in round-trip", n.Name)
		}
		if bn != nil && len(bn.Succs()) != len(n.Succs()) {
			t.Errorf("node %q edges changed", n.Name)
		}
	}
	o1 := back.NodeByName("O1")
	if !close(o1.BranchProb(0), 0.3) {
		t.Error("probabilities lost in round-trip")
	}
}

func TestFormatTextRoundTripRandom(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		orig := RandomGraph(&fakeRand{state: seed}, DefaultRandomOpts())
		back, err := ParseText(FormatText(orig))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Unit scaling in the text form may perturb times by 1 ulp.
		if back.Len() != orig.Len() || !close(back.TotalWCET(), orig.TotalWCET()) {
			t.Errorf("seed %d: round-trip changed the graph", seed)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestParseDurations(t *testing.T) {
	cases := map[string]float64{
		"1s": 1, "0.5s": 0.5, "8ms": 8e-3, "600us": 600e-6, "2µs": 2e-6,
	}
	for tok, want := range cases {
		got, err := parseDuration(tok)
		if err != nil || !close(got, want) {
			t.Errorf("parseDuration(%q) = %g, %v", tok, got, err)
		}
	}
	for _, tok := range []string{"5", "xms", "", "ms"} {
		if _, err := parseDuration(tok); err == nil {
			t.Errorf("parseDuration(%q) should fail", tok)
		}
	}
}

func TestComputeMetrics(t *testing.T) {
	g := orFork(t)
	m, err := ComputeMetrics(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tasks != 4 || m.OrNodes != 2 || m.AndNodes != 0 || m.Edges != 6 {
		t.Errorf("counts wrong: %+v", m)
	}
	if !close(m.TotalWCET, 23e-3) {
		t.Errorf("TotalWCET = %g", m.TotalWCET)
	}
	// Critical path treating both branches as present: A + B + D = 18ms.
	if !close(m.CriticalPathWCET, 18e-3) {
		t.Errorf("CriticalPathWCET = %g", m.CriticalPathWCET)
	}
	if m.Sections != 4 || m.Paths != 2 {
		t.Errorf("sections/paths = %d/%d", m.Sections, m.Paths)
	}
	// Expected work: A(8) + 0.3·8 + 0.7·5 + D(2) = 15.9ms.
	if !close(m.ExpectedWork, 15.9e-3) {
		t.Errorf("ExpectedWork = %g, want 15.9ms", m.ExpectedWork)
	}
	// Depth in nodes: A → O1 → B → O2 → D = 5.
	if m.Depth != 5 {
		t.Errorf("Depth = %d, want 5", m.Depth)
	}
	if m.MeanAlpha <= 0 || m.MeanAlpha > 1 {
		t.Errorf("MeanAlpha = %g", m.MeanAlpha)
	}
}
